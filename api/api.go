// Package api is the shared typed surface of the tamsimd serving
// protocol: request and response documents, job lifecycle states, the
// NDJSON event stream, and the structured error envelope. It is the
// single source of truth for the wire format — the server
// (internal/server), the shard coordinator (internal/shard), the CLI
// client (cmd/sweepctl) and the load generator (cmd/loadgen) all
// marshal and unmarshal through these types, so a field added here is
// visible end to end and no component re-declares struct literals or
// emits map[string]any documents.
//
// The package is deliberately a leaf: plain data, no simulator
// imports. Validation and default resolution live with the server
// (which owns the program registry and cache-geometry rules); clients
// may submit sparse documents and rely on server-side normalization.
//
// See api.md at the repository root for the endpoint-by-endpoint
// protocol reference.
package api

import "encoding/json"

// CacheSpec is one cache geometry in wire form.
type CacheSpec struct {
	SizeKB     int `json:"size_kb"`
	BlockBytes int `json:"block_bytes"`
	Assoc      int `json:"assoc"`
}

// WorkloadSpec names one benchmark instance in wire form.
type WorkloadSpec struct {
	Program string `json:"program"`
	Arg     int    `json:"arg,omitempty"`
}

// RunRequest submits one simulation: a benchmark at a problem size under
// one implementation, evaluated against a set of cache geometries.
// Zero-valued fields take the server defaults (the paper's argument for
// the program, MD, an 8K 4-way 64-byte cache, penalties 12/24/48).
type RunRequest struct {
	Program         string      `json:"program"`
	Arg             int         `json:"arg,omitempty"`
	Impl            string      `json:"impl,omitempty"`
	Caches          []CacheSpec `json:"caches,omitempty"`
	Penalties       []int       `json:"penalties,omitempty"`
	MaxInstructions uint64      `json:"max_instructions,omitempty"`
}

// SweepRequest submits a parameter-space sweep: workloads × impls ×
// cache geometries, the experiments.Sweep grid over HTTP. Scale picks a
// preset workload list ("quick" reduced sizes, "paper" the full Table 2
// arguments) when Workloads is empty.
type SweepRequest struct {
	Scale      string         `json:"scale,omitempty"`
	Workloads  []WorkloadSpec `json:"workloads,omitempty"`
	SizesKB    []int          `json:"sizes_kb,omitempty"`
	Assocs     []int          `json:"assocs,omitempty"`
	BlockBytes int            `json:"block_bytes,omitempty"`
	Penalties  []int          `json:"penalties,omitempty"`
	Impls      []string       `json:"impls,omitempty"`
	// Detail adds per-geometry cache statistics to each run summary —
	// the shard coordinator requires it to reassemble a distributed
	// sweep.
	Detail bool `json:"detail,omitempty"`
}

// CycleCount is total execution cycles under one miss penalty.
type CycleCount struct {
	Penalty int    `json:"penalty"`
	Cycles  uint64 `json:"cycles"`
}

// CacheResult reports one geometry's misses and derived cycle counts.
type CacheResult struct {
	CacheSpec
	IMisses    uint64       `json:"i_misses"`
	DMisses    uint64       `json:"d_misses"`
	Writebacks uint64       `json:"writebacks"`
	Cycles     []CycleCount `json:"cycles"`
}

// RunResult is the final document of a run job: the simulation summary
// plus per-geometry cache statistics.
type RunResult struct {
	Program      string        `json:"program"`
	Arg          int           `json:"arg"`
	Impl         string        `json:"impl"`
	Instructions uint64        `json:"instructions"`
	Reads        uint64        `json:"reads"`
	Writes       uint64        `json:"writes"`
	Threads      uint64        `json:"threads"`
	Quanta       uint64        `json:"quanta"`
	TPQ          float64       `json:"tpq"`
	IPT          float64       `json:"ipt"`
	IPQ          float64       `json:"ipq"`
	Caches       []CacheResult `json:"caches"`
}

// SweepRunSummary is one (workload, implementation) outcome within a
// sweep result: granularity only; per-geometry detail stays in the
// ratio tables.
type SweepRunSummary struct {
	Program      string  `json:"program"`
	Arg          int     `json:"arg"`
	Impl         string  `json:"impl"`
	Instructions uint64  `json:"instructions"`
	TPQ          float64 `json:"tpq"`
	IPT          float64 `json:"ipt"`
	IPQ          float64 `json:"ipq"`
	// Caches is present when the request set detail: per-geometry miss
	// statistics in geometry index order.
	Caches []CacheResult `json:"caches,omitempty"`
}

// Table2Row mirrors experiments.Table2Row in wire form.
type Table2Row struct {
	Program string  `json:"program"`
	TPQMD   float64 `json:"tpq_md"`
	TPQAM   float64 `json:"tpq_am"`
	IPTMD   float64 `json:"ipt_md"`
	IPTAM   float64 `json:"ipt_am"`
	IPQMD   float64 `json:"ipq_md"`
	IPQAM   float64 `json:"ipq_am"`
	Ratio12 float64 `json:"ratio_12"`
	Ratio24 float64 `json:"ratio_24"`
	Ratio48 float64 `json:"ratio_48"`
}

// SweepResult is the final document of a sweep job.
type SweepResult struct {
	Workloads []WorkloadSpec    `json:"workloads"`
	Geoms     []CacheSpec       `json:"geoms"`
	Runs      []SweepRunSummary `json:"runs"`
	// Table2 is present when the sweep covers the 8K 4-way geometry
	// (the paper's Table 2 reference point) and both MD and AM.
	Table2 []Table2Row `json:"table2,omitempty"`
}

// JobState is a job's lifecycle phase.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Terminal reports whether the state is final: the job will never emit
// another event or change state again.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobStatus is the wire form of a job's current state
// (GET /v1/runs/{id} and the list views).
type JobStatus struct {
	ID     string          `json:"id"`
	Kind   string          `json:"kind"`
	Tenant string          `json:"tenant,omitempty"`
	State  JobState        `json:"state"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}
