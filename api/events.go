package api

import "encoding/json"

// Every line a job streams (POST /v1/runs, POST /v1/sweeps, and
// GET ...?stream=1 replays) is the JSON encoding of exactly one of the
// *Event structs below, discriminated by its "type" field. Streams
// always open with EventAccepted and close with exactly one terminal
// line: EventResult, EventError or EventCanceled. Everything in
// between is progress; its ordering under concurrency is
// nondeterministic and never affects the final result document.
const (
	EventAccepted  = "accepted"  // job registered; first line of every stream
	EventStarted   = "started"   // job acquired a worker slot
	EventSimulated = "simulated" // run jobs: simulation finished, replay begins
	EventGeometry  = "geometry"  // run jobs: one cache geometry replayed
	EventRun       = "run"       // sweep jobs: one (workload, impl) unit finished
	EventShard     = "shard"     // sweep jobs: coordinator lease/retry/requeue activity
	EventCached    = "cached"    // result served from the fleet result cache
	EventResult    = "result"    // terminal: the final result document
	EventError     = "error"     // terminal: the job failed
	EventCanceled  = "canceled"  // terminal: the job was canceled
)

// AcceptedEvent opens every job stream.
type AcceptedEvent struct {
	Type string `json:"type"`
	ID   string `json:"id"`
	Kind string `json:"kind"`
}

// Accepted returns the stream-opening event for a job.
func Accepted(id, kind string) AcceptedEvent {
	return AcceptedEvent{Type: EventAccepted, ID: id, Kind: kind}
}

// StartedEvent reports the job leaving the queue; QueueMS is the time
// it waited for a worker slot.
type StartedEvent struct {
	Type    string `json:"type"`
	ID      string `json:"id"`
	QueueMS int64  `json:"queue_ms"`
}

// Started returns the queue-departure event for a job.
func Started(id string, queueMS int64) StartedEvent {
	return StartedEvent{Type: EventStarted, ID: id, QueueMS: queueMS}
}

// SimulatedEvent reports a run job's simulation phase finishing.
// CacheHit says the compiled artifact came from the code cache.
type SimulatedEvent struct {
	Type         string `json:"type"`
	ID           string `json:"id"`
	Instructions uint64 `json:"instructions"`
	CacheHit     bool   `json:"cache_hit"`
}

// Simulated returns a run job's simulation-complete event.
func Simulated(id string, instructions uint64, cacheHit bool) SimulatedEvent {
	return SimulatedEvent{Type: EventSimulated, ID: id, Instructions: instructions, CacheHit: cacheHit}
}

// GeometryEvent reports one cache geometry's replay within a run job.
// Index is the geometry's position in the request's caches list.
type GeometryEvent struct {
	Type       string    `json:"type"`
	ID         string    `json:"id"`
	Index      int       `json:"index"`
	Cache      CacheSpec `json:"cache"`
	IMisses    uint64    `json:"i_misses"`
	DMisses    uint64    `json:"d_misses"`
	Writebacks uint64    `json:"writebacks"`
}

// RunProgressEvent reports one completed (workload, impl) unit within a
// sweep job. Source, when present, says where the unit's recording came
// from: "local", "peer", "recorded", or "checkpoint" (restored from a
// journaled unit checkpoint after a restart, not re-run).
type RunProgressEvent struct {
	Type    string `json:"type"`
	ID      string `json:"id"`
	Done    int    `json:"done"`
	Total   int    `json:"total"`
	Program string `json:"program"`
	Arg     int    `json:"arg"`
	Impl    string `json:"impl"`
	Source  string `json:"source,omitempty"`
}

// ShardEvent relays one coordinator lifecycle notification on a
// distributed sweep's stream: Event is the coordinator's event kind
// ("register", "lease", "retry", "requeue", "hedge", "breaker-open",
// "local", "done"), Shard the unit index (-1 for worker-level events).
type ShardEvent struct {
	Type    string `json:"type"`
	ID      string `json:"id"`
	Event   string `json:"event"`
	Shard   int    `json:"shard"`
	Worker  string `json:"worker"`
	Attempt int    `json:"attempt"`
	Error   string `json:"error,omitempty"`
}

// CachedEvent reports that the job's result was served from the fleet
// result cache instead of fresh execution. Source is "local", "peer",
// or "coalesced" (a concurrent identical job executed it); Key is the
// result's content address.
type CachedEvent struct {
	Type   string `json:"type"`
	ID     string `json:"id"`
	Source string `json:"source"`
	Key    string `json:"key"`
}

// Cached returns a result-cache-hit event.
func Cached(id, source, key string) CachedEvent {
	return CachedEvent{Type: EventCached, ID: id, Source: source, Key: key}
}

// ResultEvent is the successful terminal line: Result is the job's
// final document (RunResult or SweepResult).
type ResultEvent struct {
	Type   string          `json:"type"`
	ID     string          `json:"id"`
	Result json.RawMessage `json:"result"`
}

// Result returns the successful terminal event for a job.
func Result(id string, result json.RawMessage) ResultEvent {
	return ResultEvent{Type: EventResult, ID: id, Result: result}
}

// FailureEvent is a terminal error or cancellation line (Type is
// EventError or EventCanceled).
type FailureEvent struct {
	Type  string `json:"type"`
	ID    string `json:"id"`
	Error string `json:"error"`
}

// Failure returns a terminal failure event of the given type.
func Failure(typ, id, errMsg string) FailureEvent {
	return FailureEvent{Type: typ, ID: id, Error: errMsg}
}

// Event is the decode-side union of every stream line: unmarshal any
// NDJSON line into it and branch on Type. Fields outside the line's
// own set stay zero.
type Event struct {
	Type string `json:"type"`
	ID   string `json:"id"`

	Kind         string          `json:"kind"`          // accepted
	QueueMS      int64           `json:"queue_ms"`      // started
	Instructions uint64          `json:"instructions"`  // simulated
	CacheHit     bool            `json:"cache_hit"`     // simulated
	Index        int             `json:"index"`         // geometry
	Cache        *CacheSpec      `json:"cache"`         // geometry
	IMisses      uint64          `json:"i_misses"`      // geometry
	DMisses      uint64          `json:"d_misses"`      // geometry
	Writebacks   uint64          `json:"writebacks"`    // geometry
	Done         int             `json:"done"`          // run
	Total        int             `json:"total"`         // run
	Program      string          `json:"program"`       // run
	Arg          int             `json:"arg"`           // run
	Impl         string          `json:"impl"`          // run
	Source       string          `json:"source"`        // run, cached
	Key          string          `json:"key"`           // cached
	Event        string          `json:"event"`         // shard
	Shard        int             `json:"shard"`         // shard
	Worker       string          `json:"worker"`        // shard
	Attempt      int             `json:"attempt"`       // shard
	Error        string          `json:"error"`         // shard, error, canceled
	Result       json.RawMessage `json:"result"`        // result
}

// Terminal reports whether the event ends its job's stream.
func (e *Event) Terminal() bool {
	return e.Type == EventResult || e.Type == EventError || e.Type == EventCanceled
}
