package api

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestEventRoundTrip marshals every typed event and decodes it through
// the union: the discriminator and every payload field must survive.
func TestEventRoundTrip(t *testing.T) {
	cases := []struct {
		event any
		check func(t *testing.T, e Event)
	}{
		{Accepted("r-000001", "run"), func(t *testing.T, e Event) {
			if e.Type != EventAccepted || e.ID != "r-000001" || e.Kind != "run" {
				t.Errorf("accepted = %+v", e)
			}
		}},
		{Started("r-000001", 42), func(t *testing.T, e Event) {
			if e.Type != EventStarted || e.QueueMS != 42 {
				t.Errorf("started = %+v", e)
			}
		}},
		{Simulated("r-000001", 123456, true), func(t *testing.T, e Event) {
			if e.Type != EventSimulated || e.Instructions != 123456 || !e.CacheHit {
				t.Errorf("simulated = %+v", e)
			}
		}},
		{GeometryEvent{Type: EventGeometry, ID: "r-000001", Index: 0,
			Cache: CacheSpec{SizeKB: 8, BlockBytes: 64, Assoc: 4},
			IMisses: 7, DMisses: 9, Writebacks: 3}, func(t *testing.T, e Event) {
			if e.Type != EventGeometry || e.Index != 0 || e.Cache == nil ||
				e.Cache.SizeKB != 8 || e.IMisses != 7 || e.DMisses != 9 || e.Writebacks != 3 {
				t.Errorf("geometry = %+v", e)
			}
		}},
		{RunProgressEvent{Type: EventRun, ID: "s-000002", Done: 1, Total: 4,
			Program: "ss", Arg: 40, Impl: "MD", Source: "peer"}, func(t *testing.T, e Event) {
			if e.Type != EventRun || e.Done != 1 || e.Total != 4 || e.Program != "ss" ||
				e.Arg != 40 || e.Impl != "MD" || e.Source != "peer" {
				t.Errorf("run = %+v", e)
			}
		}},
		{ShardEvent{Type: EventShard, ID: "s-000002", Event: "lease", Shard: 3,
			Worker: "http://w1", Attempt: 2, Error: "boom"}, func(t *testing.T, e Event) {
			if e.Type != EventShard || e.Event != "lease" || e.Shard != 3 ||
				e.Worker != "http://w1" || e.Attempt != 2 || e.Error != "boom" {
				t.Errorf("shard = %+v", e)
			}
		}},
		{Cached("s-000002", "local", "abc123"), func(t *testing.T, e Event) {
			if e.Type != EventCached || e.Source != "local" || e.Key != "abc123" {
				t.Errorf("cached = %+v", e)
			}
		}},
		{Result("r-000001", json.RawMessage(`{"x":1}`)), func(t *testing.T, e Event) {
			if e.Type != EventResult || string(e.Result) != `{"x":1}` || !e.Terminal() {
				t.Errorf("result = %+v", e)
			}
		}},
		{Failure(EventError, "r-000001", "bad"), func(t *testing.T, e Event) {
			if e.Type != EventError || e.Error != "bad" || !e.Terminal() {
				t.Errorf("error = %+v", e)
			}
		}},
		{Failure(EventCanceled, "r-000001", "client went away"), func(t *testing.T, e Event) {
			if e.Type != EventCanceled || !e.Terminal() {
				t.Errorf("canceled = %+v", e)
			}
		}},
	}
	for _, c := range cases {
		b, err := json.Marshal(c.event)
		if err != nil {
			t.Fatal(err)
		}
		var e Event
		if err := json.Unmarshal(b, &e); err != nil {
			t.Fatalf("decode %s: %v", b, err)
		}
		c.check(t, e)
	}
}

// TestGeometryIndexZeroSurvives guards against an omitempty regression:
// the first geometry's index is 0 and must still appear on the wire.
func TestGeometryIndexZeroSurvives(t *testing.T) {
	b, _ := json.Marshal(GeometryEvent{Type: EventGeometry, ID: "r-1"})
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["index"]; !ok {
		t.Fatalf("geometry event dropped index 0: %s", b)
	}
}

// TestErrorEnvelope round-trips the structured envelope and checks the
// synthesized fallback for plain-text bodies.
func TestErrorEnvelope(t *testing.T) {
	env := ErrorEnvelope{Error: NewError(CodeQuotaExhausted, "tenant bob over quota")}
	b, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	got := DecodeError(429, b)
	if got.Code != CodeQuotaExhausted || !got.Retryable || got.Status != 429 {
		t.Fatalf("decoded envelope = %+v", got)
	}
	if got.Error() != "quota_exhausted: tenant bob over quota" {
		t.Fatalf("Error() = %q", got.Error())
	}

	// Foreign daemon: plain text body, classify by status.
	for _, c := range []struct {
		status    int
		code      ErrorCode
		retryable bool
	}{
		{400, CodeBadRequest, false},
		{401, CodeUnauthorized, false},
		{404, CodeNotFound, false},
		{413, CodeTooLarge, false},
		{429, CodeQuotaExhausted, true},
		{500, CodeInternal, true},
		{503, CodeUnavailable, true},
	} {
		e := DecodeError(c.status, []byte("plain text"))
		if e.Code != c.code || e.Retryable != c.retryable {
			t.Errorf("status %d: code %q retryable %v, want %q %v",
				c.status, e.Code, e.Retryable, c.code, c.retryable)
		}
	}
	if e := DecodeError(500, nil); e.Message != "HTTP 500" {
		t.Errorf("empty body message = %q", e.Message)
	}
}

// TestRetryableDerivation: NewError must agree with the code table.
func TestRetryableDerivation(t *testing.T) {
	for code, want := range map[ErrorCode]bool{
		CodeBadRequest: false, CodeUnauthorized: false, CodeNotFound: false,
		CodeTooLarge: false, CodeQuotaExhausted: true, CodeUnavailable: true,
		CodeInternal: true,
	} {
		if got := NewError(code, "x").Retryable; got != want {
			t.Errorf("NewError(%q).Retryable = %v, want %v", code, got, want)
		}
	}
}

// TestRequestSparseness: a minimal request marshals without noise, so
// journaled normalized requests stay compact and stable.
func TestRequestSparseness(t *testing.T) {
	b, _ := json.Marshal(RunRequest{Program: "ss"})
	if string(b) != `{"program":"ss"}` {
		t.Errorf("sparse run request = %s", b)
	}
	var rt SweepRequest
	full := SweepRequest{
		Scale:     "quick",
		Workloads: []WorkloadSpec{{Program: "ss", Arg: 40}},
		SizesKB:   []int{1, 8}, Assocs: []int{1, 4}, BlockBytes: 64,
		Penalties: []int{12, 24, 48}, Impls: []string{"md", "am"}, Detail: true,
	}
	b, _ = json.Marshal(full)
	if err := json.Unmarshal(b, &rt); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full, rt) {
		t.Errorf("sweep request did not round-trip:\n%+v\n%+v", full, rt)
	}
}

// TestJobStatusTenantOmitted: statuses from a daemon without tenancy
// must not grow a tenant field.
func TestJobStatusTenantOmitted(t *testing.T) {
	b, _ := json.Marshal(JobStatus{ID: "r-1", Kind: "run", State: StateDone})
	var m map[string]any
	json.Unmarshal(b, &m)
	if _, ok := m["tenant"]; ok {
		t.Fatalf("anonymous status leaked a tenant field: %s", b)
	}
}
