package api

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// ErrorCode classifies an HTTP-level failure. Clients branch on the
// code (and the Retryable bit), never on status text.
type ErrorCode string

const (
	// CodeBadRequest: the request document is malformed or fails
	// validation. Resubmitting the same bytes will fail the same way.
	CodeBadRequest ErrorCode = "bad_request"
	// CodeUnauthorized: the request carried no API key, or an unknown
	// one, against a daemon with tenancy enabled.
	CodeUnauthorized ErrorCode = "unauthorized"
	// CodeNotFound: no such job, recording or result (or the
	// addressed resource belongs to another tenant).
	CodeNotFound ErrorCode = "not_found"
	// CodeQuotaExhausted: the tenant is over its concurrent-job or
	// jobs-per-minute quota. The response carries a Retry-After header;
	// retry after it elapses.
	CodeQuotaExhausted ErrorCode = "quota_exhausted"
	// CodeTooLarge: the request or uploaded payload exceeds the
	// daemon's size bounds.
	CodeTooLarge ErrorCode = "too_large"
	// CodeUnavailable: the daemon cannot take the job right now
	// (shutting down, dependency unreachable). Safe to retry.
	CodeUnavailable ErrorCode = "unavailable"
	// CodeInternal: an unexpected server-side failure. Safe to retry —
	// deterministic simulation failures surface as stream "error"
	// events, not HTTP statuses.
	CodeInternal ErrorCode = "internal"
	// CodeDeadlineExceeded: the job ran past the daemon's -job-timeout
	// watchdog and was killed. It also prefixes the terminal stream
	// "error" event of a watchdog-killed job, where it marks the one
	// stream failure another worker may legitimately retry — the job
	// may have wedged on daemon-local state, not deterministically.
	CodeDeadlineExceeded ErrorCode = "deadline_exceeded"
)

// retryableCode says whether a request failing with the code may
// succeed if resubmitted unchanged.
func retryableCode(c ErrorCode) bool {
	switch c {
	case CodeQuotaExhausted, CodeUnavailable, CodeInternal:
		return true
	}
	return false
}

// Error is the structured error document every non-2xx response body
// carries, wrapped in an envelope: {"error": {"code": ..., "message":
// ..., "retryable": ...}}.
type Error struct {
	Code      ErrorCode `json:"code"`
	Message   string    `json:"message"`
	Retryable bool      `json:"retryable"`
	// Status is the HTTP status the error arrived with; decode-side
	// only, never serialized.
	Status int `json:"-"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// NewError returns an Error with Retryable derived from the code.
func NewError(code ErrorCode, message string) *Error {
	return &Error{Code: code, Message: message, Retryable: retryableCode(code)}
}

// ErrorEnvelope is the wire shape of an error response body.
type ErrorEnvelope struct {
	Error *Error `json:"error"`
}

// DecodeError interprets a non-2xx response: the structured envelope
// when the body carries one, otherwise a synthesized Error whose code
// and retryability derive from the HTTP status (so clients of older or
// foreign daemons still branch uniformly). The returned Error is never
// nil.
func DecodeError(status int, body []byte) *Error {
	var env ErrorEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error != nil && env.Error.Code != "" {
		env.Error.Status = status
		return env.Error
	}
	code := CodeInternal
	switch {
	case status == 401 || status == 403:
		code = CodeUnauthorized
	case status == 404:
		code = CodeNotFound
	case status == 413:
		code = CodeTooLarge
	case status == 429:
		code = CodeQuotaExhausted
	case status == 503:
		code = CodeUnavailable
	case status >= 400 && status < 500:
		code = CodeBadRequest
	}
	msg := strings.TrimSpace(string(body))
	if msg == "" {
		msg = "HTTP " + strconv.Itoa(status)
	}
	return &Error{Code: code, Message: msg, Retryable: retryableCode(code), Status: status}
}
