package jmtam

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestRunContextPreCancelled checks an already-cancelled context stops
// a run before any compilation happens.
func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, MD, Benchmark("ss", 30), Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunContextCancelMidRun cancels a large simulation shortly after
// it starts and checks the step loop notices within its check interval
// rather than running the benchmark to completion.
func TestRunContextCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := RunContext(ctx, MD, Benchmark("ss", 3000), Options{},
		CacheConfig{SizeBytes: 8 * 1024, BlockBytes: 64, Assoc: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// ss 3000 takes far longer than this uncancelled; generous bound to
	// stay robust on slow CI machines.
	if d := time.Since(start); d > 30*time.Second {
		t.Errorf("cancelled run returned after %v", d)
	}
}

// TestSweepExecuteContextCancelled checks the sweep engine surfaces a
// cancelled context instead of executing its grid.
func TestSweepExecuteContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sw := NewQuickSweep()
	sw.SizesKB = []int{8}
	sw.Assocs = []int{4}
	if _, err := sw.ExecuteContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestDeprecatedNewSinkShim keeps the original boolean constructor
// working for existing callers.
func TestDeprecatedNewSinkShim(t *testing.T) {
	if s := NewSinkWithEvents(false); s.Metrics == nil || s.Events != nil {
		t.Error("NewSinkWithEvents(false) should be metrics-only")
	}
	if s := NewSinkWithEvents(true); s.Metrics == nil || s.Events == nil {
		t.Error("NewSinkWithEvents(true) should carry an event buffer")
	}
}
