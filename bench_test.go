package jmtam

// One benchmark per evaluation artifact of the paper. Each bench
// regenerates its table or figure end-to-end (simulation + cache fan-out
// + derivation) over the reduced "quick" workloads so the full suite
// completes in seconds; run the cmd/experiments binary with -scale paper
// for the paper-size runs recorded in EXPERIMENTS.md.

import (
	"testing"

	"jmtam/internal/core"
	"jmtam/internal/experiments"
)

// benchSweep executes the standard sweep once and reports a headline
// metric so regressions in the result (not just the runtime) are
// visible.
func benchSweep(b *testing.B, metric func(d *experiments.Dataset) float64, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		ds, err := experiments.DefaultSweep(experiments.QuickWorkloads()).Execute()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(metric(ds), name)
	}
}

// BenchmarkTable2 regenerates Table 2 and reports the geometric-mean
// MD/AM cycle ratio at the paper's headline configuration (8K 4-way,
// miss 24).
func BenchmarkTable2(b *testing.B) {
	benchSweep(b, func(d *experiments.Dataset) float64 {
		rows := experiments.Table2(d)
		if len(rows) != 6 {
			b.Fatalf("Table 2 has %d rows", len(rows))
		}
		return d.GeoMeanRatio(8, 4, 24)
	}, "geomean-ratio")
}

// BenchmarkFigure3 regenerates the geometric-mean ratio curves.
func BenchmarkFigure3(b *testing.B) {
	benchSweep(b, func(d *experiments.Dataset) float64 {
		f := experiments.Figure3(d)
		return f[48][0].Ratios[3] // direct-mapped, 8K, miss 48
	}, "dm-8k-m48")
}

// BenchmarkFigure4 regenerates the per-program 4-way curves.
func BenchmarkFigure4(b *testing.B) {
	benchSweep(b, func(d *experiments.Dataset) float64 {
		f := experiments.Figure4(d)
		series := f[24]
		return series[len(series)-1].Ratios[3] // geomean at 8K
	}, "geomean-8k-m24")
}

// BenchmarkFigure5 regenerates the per-program direct-mapped curves.
func BenchmarkFigure5(b *testing.B) {
	benchSweep(b, func(d *experiments.Dataset) float64 {
		f := experiments.Figure5(d)
		series := f[24]
		return series[len(series)-1].Ratios[3]
	}, "geomean-8k-m24")
}

// BenchmarkFigure6 regenerates the direct-mapped geomeans excluding SS.
func BenchmarkFigure6(b *testing.B) {
	benchSweep(b, func(d *experiments.Dataset) float64 {
		return experiments.Figure6(d)[1].Ratios[3]
	}, "noss-8k-m24")
}

// BenchmarkAccessRatios regenerates the §3.1 reference-count comparison
// and reports the mean MD/AM fetch ratio (paper: 0.77).
func BenchmarkAccessRatios(b *testing.B) {
	benchSweep(b, func(d *experiments.Dataset) float64 {
		rows := experiments.AccessRatios(d)
		return rows[len(rows)-1].Fetches
	}, "fetch-ratio")
}

// BenchmarkFigure2 runs the enabled/unenabled AM ablation.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.EnabledAblation(experiments.QuickWorkloads(), core.Options{}, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].TPQEnabled, "mmt-tpq-enabled")
	}
}

// BenchmarkBlockSweep runs the block-size ablation (8-64 byte lines).
func BenchmarkBlockSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.BlockSweep(experiments.QuickWorkloads(), core.Options{}, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].Ratio, "ratio-64B")
	}
}

// BenchmarkSimulator measures raw simulation throughput (simulated
// instructions per second) per benchmark and implementation, without
// cache fan-out.
func BenchmarkSimulator(b *testing.B) {
	for _, name := range BenchmarkNames() {
		for _, impl := range []Impl{MD, AM} {
			b.Run(name+"/"+impl.String(), func(b *testing.B) {
				var instrs uint64
				for i := 0; i < b.N; i++ {
					res, err := Run(impl, Benchmark(name, quickArg(name)), Options{})
					if err != nil {
						b.Fatal(err)
					}
					instrs += res.Instructions
				}
				b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "sim-instrs/s")
			})
		}
	}
}

// BenchmarkCacheFanout measures the cost of feeding the full 24-geometry
// cache grid during simulation.
func BenchmarkCacheFanout(b *testing.B) {
	sw := experiments.DefaultSweep(nil)
	var geoms []CacheConfig
	for _, kb := range sw.SizesKB {
		for _, a := range sw.Assocs {
			geoms = append(geoms, CacheConfig{SizeBytes: kb * 1024, BlockBytes: 64, Assoc: a})
		}
	}
	for i := 0; i < b.N; i++ {
		if _, err := Run(MD, Benchmark("ss", 100), Options{}, geoms...); err != nil {
			b.Fatal(err)
		}
	}
}

func quickArg(name string) int {
	for _, w := range experiments.QuickWorkloads() {
		if w.Name == name {
			return w.Arg
		}
	}
	return 0
}
