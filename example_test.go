package jmtam_test

import (
	"fmt"
	"log"

	"jmtam"
)

// ExampleRun compares the two implementations on selection sort, the
// paper's coarsest-grained benchmark.
func ExampleRun() {
	geom := jmtam.CacheConfig{SizeBytes: 8 * 1024, BlockBytes: 64, Assoc: 4}
	md, err := jmtam.Run(jmtam.MD, jmtam.Benchmark("ss", 100), jmtam.Options{}, geom)
	if err != nil {
		log.Fatal(err)
	}
	am, err := jmtam.Run(jmtam.AM, jmtam.Benchmark("ss", 100), jmtam.Options{}, geom)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("MD executed fewer instructions:", md.Instructions < am.Instructions)
	fmt.Println("whole sort is one quantum:", md.Quanta == 1)
	fmt.Println("MD wins on cycles at miss=24:", md.Cycles(0, 24) < am.Cycles(0, 24))
	// Output:
	// MD executed fewer instructions: true
	// whole sort is one quantum: true
	// MD wins on cycles at miss=24: true
}

// ExampleCompareAt computes the paper's headline metric for quicksort.
func ExampleCompareAt() {
	geom := jmtam.CacheConfig{SizeBytes: 8 * 1024, BlockBytes: 64, Assoc: 4}
	ratio, err := jmtam.CompareAt(func() *jmtam.Program { return jmtam.Benchmark("qs", 100) },
		geom, 24, jmtam.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("message-driven implementation wins:", ratio < 1)
	// Output:
	// message-driven implementation wins: true
}

// ExampleBenchmarkNames lists the paper's six benchmarks in Table 2
// order.
func ExampleBenchmarkNames() {
	for _, n := range jmtam.BenchmarkNames() {
		fmt.Println(n)
	}
	// Output:
	// mmt
	// qs
	// dtw
	// paraffins
	// wavefront
	// ss
}
