// Custom: write a brand-new TAM program against the public API — the
// classic fine-grained doubly-recursive Fibonacci — and run it under
// both implementations. Every recursive call is its own activation, so
// fib is even finer-grained than the paper's quicksort.
package main

import (
	"flag"
	"fmt"
	"log"

	"jmtam"
)

// fibProgram builds fib(n) as a TAM program. Codeblock "fib" has frame
// slots 0=n, 1=return inlet, 2=return frame, 3=a, 4=b, 5=child frame,
// and one entry count (the sum thread waits for both recursive results).
func fibProgram(n int64) *jmtam.Program {
	fib := &jmtam.Codeblock{Name: "fib", NumCounts: 1, InitCounts: []int64{2}, NumSlots: 6}
	var tCheck, tSend1, tSend2, tSum *jmtam.Thread
	var iC1, iC2, iA, iB *jmtam.Inlet
	var start *jmtam.Inlet

	reply := func(b *jmtam.Body, valReg uint8) {
		b.LDSlot(0, 1)
		b.LDSlot(1, 2)
		b.SendMsgDyn(0, 1, valReg)
		b.ReleaseFrame()
		b.Stop()
	}

	tCheck = fib.AddThread("check", -1, func(b *jmtam.Body) {
		b.LDSlot(2, 0) // n
		b.MovI(1, 2)
		b.BGE(2, 1, "fib.recurse")
		reply(b, 2) // fib(0)=0, fib(1)=1
		b.Case("fib.recurse")
		b.FAlloc(fib, iC1)
		b.Stop()
	})
	tSend1 = fib.AddThread("send1", -1, func(b *jmtam.Body) {
		b.ReloadArg(0, 5)
		b.BeginMsg(start)
		b.SendW(0)
		b.LDSlot(1, 0)
		b.SubI(1, 1, 1)
		b.SendW(1) // n-1
		b.InletAddr(1, iA)
		b.SendW(1)
		b.SendW(6) // this frame
		b.SendE()
		b.FAlloc(fib, iC2)
		b.Stop()
	})
	tSend1.DirectOnly = true
	tSend2 = fib.AddThread("send2", -1, func(b *jmtam.Body) {
		b.ReloadArg(0, 5)
		b.BeginMsg(start)
		b.SendW(0)
		b.LDSlot(1, 0)
		b.SubI(1, 1, 2)
		b.SendW(1) // n-2
		b.InletAddr(1, iB)
		b.SendW(1)
		b.SendW(6)
		b.SendE()
		b.Stop()
	})
	tSend2.DirectOnly = true
	tSum = fib.AddThread("sum", 0, func(b *jmtam.Body) {
		b.LDSlot(0, 3)
		b.LDSlot(1, 4)
		b.Add(2, 0, 1)
		reply(b, 2)
	})

	iC1 = fib.AddInlet("child1", func(b *jmtam.Body) {
		b.TakeArg(0, 5, 0, tSend1)
		b.PostEnd(tSend1)
	})
	iC2 = fib.AddInlet("child2", func(b *jmtam.Body) {
		b.TakeArg(0, 5, 0, tSend2)
		b.PostEnd(tSend2)
	})
	iA = fib.AddInlet("a", func(b *jmtam.Body) {
		b.Arg(0, 0)
		b.STSlot(3, 0)
		b.PostEnd(tSum)
	})
	iB = fib.AddInlet("b", func(b *jmtam.Body) {
		b.Arg(0, 0)
		b.STSlot(4, 0)
		b.PostEnd(tSum)
	})
	start = fib.AddInlet("start", func(b *jmtam.Body) {
		b.Arg(0, 0)
		b.STSlot(0, 0)
		b.Arg(0, 1)
		b.STSlot(1, 0)
		b.Arg(0, 2)
		b.STSlot(2, 0)
		b.PostEnd(tCheck)
	})

	// Driver: kick off the root call and capture the result.
	main := &jmtam.Codeblock{Name: "fibmain", NumSlots: 2}
	var tGo *jmtam.Thread
	var iGotF, iDone *jmtam.Inlet
	var mainStart *jmtam.Inlet
	tGo = main.AddThread("go", -1, func(b *jmtam.Body) {
		b.FAlloc(fib, iGotF)
		b.Stop()
	})
	tKick := main.AddThread("kick", -1, func(b *jmtam.Body) {
		b.ReloadArg(0, 1)
		b.BeginMsg(start)
		b.SendW(0)
		b.LDSlot(1, 0)
		b.SendW(1)
		b.InletAddr(1, iDone)
		b.SendW(1)
		b.SendW(6)
		b.SendE()
		b.Stop()
	})
	tKick.DirectOnly = true
	iGotF = main.AddInlet("gotframe", func(b *jmtam.Body) {
		b.TakeArg(0, 1, 0, tKick)
		b.PostEnd(tKick)
	})
	iDone = main.AddInlet("done", func(b *jmtam.Body) {
		b.Arg(0, 0)
		b.StoreResult(0, 0)
		b.EndInlet()
	})
	mainStart = main.AddInlet("start", func(b *jmtam.Body) {
		b.Arg(0, 0)
		b.STSlot(0, 0)
		b.PostEnd(tGo)
	})

	return &jmtam.Program{
		Name:   fmt.Sprintf("fib-%d", n),
		Blocks: []*jmtam.Codeblock{main, fib},
		Setup: func(h *jmtam.Host) error {
			f := h.AllocFrame(main)
			return h.Start(mainStart, f, jmtam.Int(n))
		},
		Verify: func(h *jmtam.Host) error {
			want := fibRef(n)
			if got := h.Result(0).AsInt(); got != want {
				return fmt.Errorf("fib(%d) = %d, want %d", n, got, want)
			}
			return nil
		},
	}
}

func fibRef(n int64) int64 {
	a, b := int64(0), int64(1)
	for ; n > 0; n-- {
		a, b = b, a+b
	}
	return a
}

func main() {
	n := flag.Int64("n", 15, "fib argument")
	flag.Parse()

	geom := jmtam.CacheConfig{SizeBytes: 8 * 1024, BlockBytes: 64, Assoc: 4}
	fmt.Printf("fib(%d) as a custom TAM program\n\n", *n)
	for _, impl := range []jmtam.Impl{jmtam.MD, jmtam.AM} {
		res, err := jmtam.Run(impl, fibProgram(*n), jmtam.Options{}, geom)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-3v instructions=%8d threads=%6d TPQ=%5.1f cycles(miss=24)=%9d\n",
			impl, res.Instructions, res.Threads, res.TPQ, res.Cycles(0, 24))
	}
}
