// Granularity: reproduce the left half of Table 2 — threads per
// quantum, instructions per thread and instructions per quantum for all
// six benchmarks under both implementations — and demonstrate the
// paper's observation that the benchmarks span four orders of magnitude
// of scheduling granularity.
package main

import (
	"flag"
	"fmt"
	"log"

	"jmtam"
)

func main() {
	paper := flag.Bool("paper", false, "use the paper's (slow) problem sizes")
	flag.Parse()

	sizes := map[string]int{"mmt": 10, "qs": 60, "dtw": 8, "paraffins": 10, "wavefront": 16, "ss": 60}
	if *paper {
		sizes = nil // Benchmark(name, 0) selects the paper argument
	}

	fmt.Printf("%-10s  %8s %8s  %7s %7s  %9s %9s\n",
		"Program", "TPQ(MD)", "TPQ(AM)", "IPT(MD)", "IPT(AM)", "IPQ(MD)", "IPQ(AM)")
	for _, name := range jmtam.BenchmarkNames() {
		var row [2]*jmtam.Result
		for i, impl := range []jmtam.Impl{jmtam.MD, jmtam.AM} {
			res, err := jmtam.Run(impl, jmtam.Benchmark(name, sizes[name]), jmtam.Options{})
			if err != nil {
				log.Fatal(err)
			}
			row[i] = res
		}
		fmt.Printf("%-10s  %8.1f %8.1f  %7.1f %7.1f  %9.1f %9.1f\n",
			name, row[0].TPQ, row[1].TPQ, row[0].IPT, row[1].IPT, row[0].IPQ, row[1].IPQ)
	}
	fmt.Println("\nThe programs are ordered so threads-per-quantum increases down the")
	fmt.Println("table; the paper shows the MD/AM cycle ratio falls as TPQ rises.")
}
