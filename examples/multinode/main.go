// Multinode: the J-Machine is a multicomputer, and the simulated MDP
// engine supports multi-node execution through the mesh network in
// internal/netsim. This example runs a parallel tree-style reduction
// across a mesh: node 0 scatters one work item to every other node,
// each node computes locally (sum of squares of a range) and replies,
// and node 0 accumulates.
//
// The TAM backends also run multi-node (tamsim -nodes N, or
// Options.Nodes through the jmtam façade): core compiles mesh-aware
// runtime code with distributed frame placement and remote I-structure
// handlers. This example goes one level lower, exercising the mesh
// substrate with a hand-written message-driven program — exactly the
// style the MD implementation is built from.
package main

import (
	"flag"
	"fmt"
	"log"

	"jmtam/internal/asm"
	"jmtam/internal/cluster"
	"jmtam/internal/isa"
	"jmtam/internal/machine"
	"jmtam/internal/mem"
	"jmtam/internal/netsim"
	"jmtam/internal/word"
)

const (
	gResult = mem.SysDataBase + 0x100
	gAccum  = mem.SysDataBase + 0x104
	gCount  = mem.SysDataBase + 0x108
	gNPeers = mem.SysDataBase + 0x10c
	gDone   = mem.SysDataBase + 0x110
)

// build assembles the shared code image: a scatter loop on node 0, a
// worker handler computing sum(i^2) for i in [lo, hi), and a gather
// handler accumulating partial sums.
func build() (*machine.CodeStore, *asm.Segment) {
	sys := asm.NewSys()
	sys.Halt()
	u := asm.NewUser()

	// worker: [h, lo, hi, replyNode]
	u.Label("worker")
	u.LD(0, isa.RMsg, 4) // lo
	u.LD(1, isa.RMsg, 8) // hi
	u.MovI(2, 0)         // acc
	u.Label("w.loop")
	u.BGE(0, 1, "w.done")
	u.Mul(7, 0, 0)
	u.Add(2, 2, 7)
	u.AddI(0, 0, 1)
	u.BR("w.loop")
	u.Label("w.done")
	u.LD(1, isa.RMsg, 12)
	u.MsgI(machine.Low)
	u.MsgDest(1)
	u.SendWALabel("gather")
	u.SendW(2)
	u.SendE()
	u.Suspend()

	// gather: [h, partial]
	u.Label("gather")
	u.LD(0, isa.RMsg, 4)
	u.LDAbs(1, gAccum)
	u.Add(1, 1, 0)
	u.STAbs(gAccum, 1)
	u.LDAbs(0, gCount)
	u.AddI(0, 0, 1)
	u.STAbs(gCount, 0)
	u.LDAbs(2, gNPeers)
	u.BNE(0, 2, "g.more")
	u.STAbs(gResult, 1)
	u.MovI(0, 1)
	u.STAbs(gDone, 0)
	u.Label("g.more")
	u.Suspend()

	// scatter: [h, peer, chunk] — send [peer*chunk, (peer+1)*chunk) to
	// node peer, then self-forward for the next peer.
	u.Label("scatter")
	u.LD(0, isa.RMsg, 4) // peer
	u.LDAbs(1, gNPeers)
	u.BGT(0, 1, "s.done")
	u.LD(2, isa.RMsg, 8) // chunk
	u.Mul(7, 0, 2)       // lo = peer*chunk... uses peer index 1-based
	u.MsgI(machine.Low)
	u.MsgDest(0)
	u.SendWALabel("worker")
	u.SendW(7)
	u.Add(7, 7, 2)
	u.SendW(7)
	u.SendWI(0) // reply to node 0
	u.SendE()
	u.AddI(0, 0, 1)
	u.MsgI(machine.Low)
	u.SendWALabel("scatter")
	u.SendW(0)
	u.SendW(2)
	u.SendE()
	u.Label("s.done")
	u.Suspend()

	if err := sys.Finish(); err != nil {
		log.Fatal(err)
	}
	if err := u.Finish(); err != nil {
		log.Fatal(err)
	}
	return machine.NewCodeStore(sys.Code(), u.Code()), u
}

func main() {
	nodes := flag.Int("nodes", 8, "number of mesh nodes (including node 0)")
	chunk := flag.Int64("chunk", 1000, "work items per node")
	flag.Parse()

	code, u := build()
	ms := make([]*machine.Machine, *nodes)
	for i := range ms {
		ms[i] = machine.NewMachine(mem.NewDefault(), code, machine.Config{MaxInstructions: 100_000_000})
	}
	ms[0].Mem.Store(gNPeers, word.Int(int64(*nodes-1)))

	c, err := cluster.New(ms, netsim.DefaultConfig(*nodes))
	if err != nil {
		log.Fatal(err)
	}
	if err := ms[0].Inject(machine.Low, []word.Word{
		word.Ptr(u.Addr("scatter")), word.Int(1), word.Int(*chunk),
	}); err != nil {
		log.Fatal(err)
	}
	if err := c.Run(0); err != nil {
		log.Fatal(err)
	}

	got := ms[0].Mem.LoadInt(gResult)
	var want int64
	for p := int64(1); p < int64(*nodes); p++ {
		for i := p * *chunk; i < (p+1)**chunk; i++ {
			want += i * i
		}
	}
	fmt.Printf("sum of squares over [%d, %d) on %d nodes = %d (want %d)\n",
		*chunk, int64(*nodes)**chunk, *nodes, got, want)
	fmt.Printf("elapsed: %d ticks; network: %d messages, %d words, max %d in flight\n",
		c.Tick(), c.Net.Sent, c.Net.WordsSent, c.Net.MaxInFlight)
	var instrs uint64
	for _, m := range ms {
		instrs += m.Instructions()
	}
	fmt.Printf("total instructions across nodes: %d\n", instrs)
	if got != want {
		log.Fatal("WRONG RESULT")
	}
}
