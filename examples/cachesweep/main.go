// Cachesweep: evaluate one benchmark across the paper's cache parameter
// space (sizes 1K-128K, associativities 1/2/4) and chart the MD/AM cycle
// ratio — a single-program slice of Figures 4 and 5.
package main

import (
	"flag"
	"fmt"
	"log"

	"jmtam"
	"jmtam/internal/experiments"
	"jmtam/internal/report"
)

func main() {
	prog := flag.String("prog", "qs", "benchmark: mmt|qs|dtw|paraffins|wavefront|ss")
	arg := flag.Int("arg", 0, "problem size (0 = paper argument)")
	penalty := flag.Int("penalty", 24, "miss penalty in cycles")
	flag.Parse()

	sw := jmtam.NewQuickSweep()
	// Narrow the sweep to the one requested workload.
	for _, w := range experiments.PaperWorkloads() {
		if w.Name == *prog {
			if *arg != 0 {
				w.Arg = *arg
			}
			sw.Workloads = []jmtam.Workload{w}
		}
	}
	if len(sw.Workloads) != 1 {
		log.Fatalf("unknown benchmark %q", *prog)
	}

	ds, err := sw.Execute()
	if err != nil {
		log.Fatal(err)
	}

	var series []jmtam.Series
	for _, a := range sw.Assocs {
		s := jmtam.Series{Label: fmt.Sprintf("%d-way", a), SizesKB: sw.SizesKB}
		for _, kb := range sw.SizesKB {
			s.Ratios = append(s.Ratios, ds.Ratio(sw.Workloads[0].Name, kb, a, *penalty))
		}
		series = append(series, s)
	}
	title := fmt.Sprintf("%s %d: MD/AM cycle ratio vs cache size (miss=%d cycles)",
		sw.Workloads[0].Name, sw.Workloads[0].Arg, *penalty)
	fmt.Print(report.Chart(title, series))
}
