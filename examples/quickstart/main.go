// Quickstart: run one benchmark under both TAM implementations and
// compare instruction counts, granularity and cycles — the smallest
// possible use of the public API.
package main

import (
	"fmt"
	"log"

	"jmtam"
)

func main() {
	// The paper's headline cache configuration: separate 8-Kbyte 4-way
	// set-associative instruction and data caches with 64-byte blocks.
	geom := jmtam.CacheConfig{SizeBytes: 8 * 1024, BlockBytes: 64, Assoc: 4}

	fmt.Println("selection sort (SS 100) under the two TAM implementations")
	fmt.Println()
	for _, impl := range []jmtam.Impl{jmtam.MD, jmtam.AM} {
		// Programs are single-use: build a fresh instance per run.
		res, err := jmtam.Run(impl, jmtam.Benchmark("ss", 100), jmtam.Options{}, geom)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-3v instructions=%8d  threads/quantum=%7.1f  cycles(miss=24)=%9d\n",
			impl, res.Instructions, res.TPQ, res.Cycles(0, 24))
	}

	fmt.Println()
	ratio, err := jmtam.CompareAt(func() *jmtam.Program { return jmtam.Benchmark("ss", 100) },
		geom, 24, jmtam.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MD/AM cycle ratio at %v, miss=24: %.2f (below 1.0 means the\n", geom, ratio)
	fmt.Println("message-driven implementation wins, the paper's central finding)")
}
