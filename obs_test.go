package jmtam

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sort"
	"testing"
)

// traceFile mirrors the Chrome trace-event JSON shape for parsing.
type traceFile struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Cat  string          `json:"cat"`
	Ts   uint64          `json:"ts"`
	Dur  uint64          `json:"dur"`
	Pid  int32           `json:"pid"`
	Tid  int32           `json:"tid"`
	ID   uint64          `json:"id"`
	Args json.RawMessage `json:"args"`
}

func runWithSink(t *testing.T, impl Impl, withEvents bool) (*Result, *Sink) {
	t.Helper()
	var opts []SinkOption
	if withEvents {
		opts = append(opts, WithEvents())
	}
	snk := NewSink(opts...)
	res, err := Run(impl, Benchmark("qs", 16), Options{Obs: snk},
		CacheConfig{SizeBytes: 8 * 1024, BlockBytes: 64, Assoc: 4})
	if err != nil {
		t.Fatal(err)
	}
	return res, snk
}

// TestSinkInvariance checks the tentpole guarantee: attaching a sink
// (with or without the event buffer) leaves every simulation result —
// instruction counts, granularity, references, cache misses — identical
// to the uninstrumented run.
func TestSinkInvariance(t *testing.T) {
	for _, impl := range []Impl{AM, MD} {
		base, err := Run(impl, Benchmark("qs", 16), Options{},
			CacheConfig{SizeBytes: 8 * 1024, BlockBytes: 64, Assoc: 4})
		if err != nil {
			t.Fatal(err)
		}
		metricsOnly, _ := runWithSink(t, impl, false)
		full, _ := runWithSink(t, impl, true)
		if !reflect.DeepEqual(base, metricsOnly) {
			t.Errorf("%v: result changed with metrics sink:\nbase %+v\nsink %+v",
				impl, base, metricsOnly)
		}
		if !reflect.DeepEqual(base, full) {
			t.Errorf("%v: result changed with event sink:\nbase %+v\nsink %+v",
				impl, base, full)
		}
	}
}

// TestSinkMetricsPopulated checks that one instrumented run fills the
// metric families the paper's analysis needs.
func TestSinkMetricsPopulated(t *testing.T) {
	_, snk := runWithSink(t, AM, false)
	r := snk.Metrics
	for _, h := range []string{"quantum.threads", "quantum.instrs",
		"queue.depth.high", "queue.wait.high", "handler.latency.high",
		"inlet.latency"} {
		if r.Histogram(h).Count() == 0 {
			t.Errorf("histogram %s empty after AM qs run", h)
		}
	}
	for _, c := range []string{"instrs.total", "post.calls", "pri.switches",
		"tam.threads", "tam.quanta"} {
		if r.Counter(c).Value() == 0 {
			t.Errorf("counter %s zero after AM qs run", c)
		}
	}
	if got, want := r.Counter("tam.quanta").Value(),
		r.Histogram("quantum.threads").Count(); got != want {
		t.Errorf("tam.quanta = %d but quantum.threads histogram has %d samples", got, want)
	}
}

// TestPerfettoRoundTrip exports a real run's timeline and re-parses it
// with encoding/json, checking the invariants a trace viewer relies on:
// flow starts and finishes pair by id, instants carry a scope, and the
// duration events on every track nest (stack discipline — a span that
// starts inside another ends inside it too).
func TestPerfettoRoundTrip(t *testing.T) {
	_, snk := runWithSink(t, AM, true)

	var buf bytes.Buffer
	if err := snk.Events.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var tf traceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("exported trace does not parse: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}

	byPh := map[string][]traceEvent{}
	for _, e := range tf.TraceEvents {
		byPh[e.Ph] = append(byPh[e.Ph], e)
	}
	for _, ph := range []string{"M", "X", "i", "s", "f"} {
		if len(byPh[ph]) == 0 {
			t.Errorf("no %q events in exported trace", ph)
		}
	}

	// Flow events must pair: every finish has a start with the same id.
	starts := map[uint64]int{}
	for _, e := range byPh["s"] {
		starts[e.ID]++
	}
	for _, e := range byPh["f"] {
		if starts[e.ID] == 0 {
			t.Errorf("flow finish id %d has no start", e.ID)
		}
	}

	// Duration events must nest per track.
	type span struct{ ts, end uint64 }
	tracks := map[[2]int32][]span{}
	for _, e := range byPh["X"] {
		k := [2]int32{e.Pid, e.Tid}
		tracks[k] = append(tracks[k], span{e.Ts, e.Ts + e.Dur})
	}
	for k, spans := range tracks {
		sort.Slice(spans, func(i, j int) bool {
			if spans[i].ts != spans[j].ts {
				return spans[i].ts < spans[j].ts
			}
			return spans[i].end > spans[j].end // outer span first
		})
		var stack []span
		for _, s := range spans {
			for len(stack) > 0 && stack[len(stack)-1].end <= s.ts {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 && s.end > stack[len(stack)-1].end {
				t.Fatalf("track %v: span [%d,%d) overlaps enclosing span ending at %d",
					k, s.ts, s.end, stack[len(stack)-1].end)
			}
			stack = append(stack, s)
		}
	}
}

// TestSweepCollectMetrics checks the façade knob: a sweep with
// CollectMetrics set attaches a registry to every run.
func TestSweepCollectMetrics(t *testing.T) {
	sw := NewQuickSweep()
	sw.Workloads = sw.Workloads[:1]
	sw.SizesKB = []int{8}
	sw.Assocs = []int{4}
	sw.CollectMetrics = true
	ds, err := sw.Execute()
	if err != nil {
		t.Fatal(err)
	}
	geomPre := ds.Geoms[0].String() + ": "
	for _, byImpl := range ds.Runs {
		for _, r := range byImpl {
			if r.Metrics == nil {
				t.Fatalf("%s/%v: no metrics collected", r.Workload.Name, r.Impl)
			}
			if r.Metrics.Counter("instrs.total").Value() != r.Instructions {
				t.Errorf("%s/%v: instrs.total %d != Instructions %d",
					r.Workload.Name, r.Impl,
					r.Metrics.Counter("instrs.total").Value(), r.Instructions)
			}
			if r.Metrics.Counter(geomPre+"cache.miss.fetch.sys-code").Value()+
				r.Metrics.Counter(geomPre+"cache.miss.fetch.user-code").Value() == 0 {
				t.Errorf("%s/%v: no miss attribution recorded", r.Workload.Name, r.Impl)
			}
		}
	}
}
