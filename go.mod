module jmtam

go 1.22
