// Command loadgen is a closed-loop load harness for a tamsimd front
// door. It drives concurrent simulation jobs from one or more tenants,
// measures completed-job throughput and latency percentiles from both
// sides (exact client-observed, and estimated from the daemon's
// /metricz log2 histograms), and can assert a service-level objective
// so CI can gate on serving behavior:
//
//	loadgen -addr http://127.0.0.1:8347 -duration 10s
//	loadgen -tenants 'alice:key-a:4,bob:key-b:4' -expect-429 bob
//	loadgen -kind mix -variants 3 -slo-p99-ms 2000 -min-qps 1
//
// Before loading, loadgen polls the daemon's /readyz (readiness, not
// liveness) for up to -ready-timeout: a daemon still replaying its
// journal or already draining would make every measurement a lie, so
// an unready target exits 2 (setup error) instead of failing the SLO.
//
// Each tenant runs N closed-loop workers: submit a job, stream its
// NDJSON events to the terminal line, record the outcome, repeat until
// the deadline. Workers cycle through -variants distinct request
// descriptors (problem sizes), so the mix exercises both fresh
// execution and — once every descriptor has been seen — the fleet
// result cache; "cached" stream events are counted per tenant. A 429
// quota rejection is an expected outcome for an over-provisioned
// tenant, counted separately and retried after a short pause.
//
// The exit status is the assertion verdict: 0 when every requested
// assertion (-slo-p99-ms, -min-qps, -expect-429, -expect-cache-hits)
// holds, 1 otherwise, with the failures listed in the JSON summary.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"jmtam/api"
	"jmtam/internal/core"
)

type tenantSpec struct {
	name    string
	key     string
	workers int
}

// parseTenants parses -tenants: comma-separated name:key:workers
// triples. The key may be empty when the daemon runs untenanted.
func parseTenants(s string) ([]tenantSpec, error) {
	var specs []tenantSpec
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("bad tenant %q (want name:key:workers)", part)
		}
		var workers int
		if _, err := fmt.Sscanf(fields[2], "%d", &workers); err != nil || workers < 1 {
			return nil, fmt.Errorf("bad worker count in %q", part)
		}
		specs = append(specs, tenantSpec{name: fields[0], key: fields[1], workers: workers})
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("no tenants")
	}
	return specs, nil
}

// tenantStats accumulates one tenant's outcomes across its workers.
type tenantStats struct {
	mu        sync.Mutex
	requests  int
	ok        int
	cached    int
	http429   int
	errors    int
	latencies []float64 // ms, completed jobs only
	variant   atomic.Uint64
}

type tenantSummary struct {
	Requests int     `json:"requests"`
	OK       int     `json:"ok"`
	Cached   int     `json:"cached"`
	HTTP429  int     `json:"http_429"`
	Errors   int     `json:"errors"`
	QPS      float64 `json:"qps"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

func (t *tenantStats) summary(elapsed time.Duration) tenantSummary {
	t.mu.Lock()
	defer t.mu.Unlock()
	return tenantSummary{
		Requests: t.requests,
		OK:       t.ok,
		Cached:   t.cached,
		HTTP429:  t.http429,
		Errors:   t.errors,
		QPS:      float64(t.ok) / elapsed.Seconds(),
		P50Ms:    percentile(t.latencies, 50),
		P99Ms:    percentile(t.latencies, 99),
	}
}

// serverSummary is what loadgen reads back from /metricz after the
// run: result-cache traffic and the daemon-side job latency
// percentiles estimated from the log2 histograms.
type serverSummary struct {
	ResultsServed uint64 `json:"results_served"`
	ResultsHits   uint64 `json:"results_hits"`
	RunP50Ms      uint64 `json:"run_p50_ms,omitempty"`
	RunP99Ms      uint64 `json:"run_p99_ms,omitempty"`
	SweepP50Ms    uint64 `json:"sweep_p50_ms,omitempty"`
	SweepP99Ms    uint64 `json:"sweep_p99_ms,omitempty"`
}

type summary struct {
	DurationSec float64                  `json:"duration_sec"`
	Tenants     map[string]tenantSummary `json:"tenants"`
	Overall     tenantSummary            `json:"overall"`
	Server      serverSummary            `json:"server"`
	Failures    []string                 `json:"failures,omitempty"`
}

var (
	addr     = flag.String("addr", "http://127.0.0.1:8347", "tamsimd base URL")
	tenants  = flag.String("tenants", "local::2", "comma-separated name:key:workers (empty key = untenanted daemon)")
	duration = flag.Duration("duration", 10*time.Second, "load window")
	kind     = flag.String("kind", "run", "job mix: run|sweep|mix")
	variants = flag.Int("variants", 4, "distinct request descriptors cycled per tenant")
	argBase  = flag.Int("arg-base", 8, "smallest problem size; variant v uses arg-base+v")
	sloP99   = flag.Float64("slo-p99-ms", 0, "assert overall client p99 <= this (0 = off)")
	minQPS   = flag.Float64("min-qps", 0, "assert overall completed-job QPS >= this (0 = off)")
	want429  = flag.String("expect-429", "", "assert this tenant saw at least one quota rejection")
	wantHits = flag.Bool("expect-cache-hits", false, "assert at least one job was served from the result cache")
	readyFor = flag.Duration("ready-timeout", 10*time.Second, "wait this long for the daemon's /readyz before loading (0 = skip preflight)")
	out      = flag.String("o", "", "write the JSON summary here (default stdout)")
	implsArg = flag.String("impls", "am", "comma-separated backends the generated jobs run (known: "+strings.Join(core.BackendNames(), ", ")+")")

	// implNames is the validated -impls list; run jobs use the first
	// entry and sweep jobs the full list.
	implNames []string
)

// awaitReady polls /readyz until the daemon reports ready or the
// timeout passes. Loading a daemon that is still recovering its
// journal — or already draining — measures the wrong thing, so an
// unready daemon is a setup error (exit 2), not an SLO failure.
func awaitReady(base string, timeout time.Duration) error {
	if timeout <= 0 {
		return nil
	}
	deadline := time.Now().Add(timeout)
	last := "no response"
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			last = fmt.Sprintf("%s: %s", resp.Status, bytes.TrimSpace(body))
		} else {
			last = err.Error()
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon not ready after %s (%s)", timeout, last)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func main() {
	flag.Parse()
	specs, err := parseTenants(*tenants)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(2)
	}
	if *kind != "run" && *kind != "sweep" && *kind != "mix" {
		fmt.Fprintln(os.Stderr, "loadgen: -kind must be run|sweep|mix")
		os.Exit(2)
	}
	impls, err := core.ParseImpls(*implsArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(2)
	}
	implNames = make([]string, len(impls))
	for i, impl := range impls {
		implNames[i] = impl.Name()
	}

	base := strings.TrimRight(*addr, "/")
	if err := awaitReady(base, *readyFor); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(2)
	}
	stats := make(map[string]*tenantStats, len(specs))
	for _, sp := range specs {
		stats[sp.name] = &tenantStats{}
	}

	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for _, sp := range specs {
		for w := 0; w < sp.workers; w++ {
			wg.Add(1)
			go func(sp tenantSpec, w int) {
				defer wg.Done()
				worker(base, sp, w, stats[sp.name], deadline)
			}(sp, w)
		}
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)

	sum := summary{
		DurationSec: elapsed.Seconds(),
		Tenants:     make(map[string]tenantSummary, len(specs)),
	}
	var all tenantStats
	for name, st := range stats {
		ts := st.summary(elapsed)
		sum.Tenants[name] = ts
		all.requests += ts.Requests
		all.ok += ts.OK
		all.cached += ts.Cached
		all.http429 += ts.HTTP429
		all.errors += ts.Errors
		st.mu.Lock()
		all.latencies = append(all.latencies, st.latencies...)
		st.mu.Unlock()
	}
	sum.Overall = all.summary(elapsed)
	sum.Server = scrapeServer(base)

	if *sloP99 > 0 && sum.Overall.P99Ms > *sloP99 {
		sum.Failures = append(sum.Failures, fmt.Sprintf("p99 %.1fms exceeds SLO %.1fms", sum.Overall.P99Ms, *sloP99))
	}
	if *minQPS > 0 && sum.Overall.QPS < *minQPS {
		sum.Failures = append(sum.Failures, fmt.Sprintf("QPS %.2f below floor %.2f", sum.Overall.QPS, *minQPS))
	}
	if *want429 != "" {
		if ts, ok := sum.Tenants[*want429]; !ok || ts.HTTP429 == 0 {
			sum.Failures = append(sum.Failures, fmt.Sprintf("tenant %q saw no quota rejections", *want429))
		}
	}
	if *wantHits && sum.Overall.Cached == 0 && sum.Server.ResultsServed == 0 {
		sum.Failures = append(sum.Failures, "no result-cache hits observed")
	}

	doc, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(2)
	}
	doc = append(doc, '\n')
	if *out == "" {
		os.Stdout.Write(doc)
	} else if err := os.WriteFile(*out, doc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(2)
	}
	if len(sum.Failures) > 0 {
		for _, f := range sum.Failures {
			fmt.Fprintln(os.Stderr, "loadgen: FAIL:", f)
		}
		os.Exit(1)
	}
}

// worker is one closed-loop client: submit, stream to terminal,
// record, repeat. The variant counter is shared per tenant, so its
// workers spread across the descriptor space instead of racing each
// other on one key (those would still coalesce, which is fine — but
// spreading exercises more of the cache).
func worker(base string, sp tenantSpec, w int, st *tenantStats, deadline time.Time) {
	job := w
	for time.Now().Before(deadline) {
		v := int(st.variant.Add(1)) % *variants
		k := *kind
		if k == "mix" {
			if job%4 == 3 { // one sweep per four runs: sweeps are heavier
				k = "sweep"
			} else {
				k = "run"
			}
		}
		job++
		oneJob(base, sp, k, *argBase+v, st)
	}
}

// request builds the variant's descriptor. Problem sizes stay small
// (selection sort of arg elements) so a closed loop completes many
// jobs; distinct args give distinct result-cache keys.
func request(kind string, arg int) ([]byte, string) {
	if kind == "sweep" {
		req := api.SweepRequest{
			Workloads: []api.WorkloadSpec{{Program: "ss", Arg: arg}},
			SizesKB:   []int{8},
			Penalties: []int{12},
			Impls:     implNames,
		}
		b, _ := json.Marshal(req)
		return b, "/v1/sweeps"
	}
	req := api.RunRequest{Program: "ss", Arg: arg, Impl: implNames[0], Penalties: []int{12}}
	b, _ := json.Marshal(req)
	return b, "/v1/runs"
}

// oneJob submits one job and follows its stream to the terminal event.
func oneJob(base string, sp tenantSpec, kind string, arg int, st *tenantStats) {
	body, path := request(kind, arg)
	st.mu.Lock()
	st.requests++
	st.mu.Unlock()

	begin := time.Now()
	req, err := http.NewRequest(http.MethodPost, base+path, bytes.NewReader(body))
	if err != nil {
		record(st, func() { st.errors++ })
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if sp.key != "" {
		req.Header.Set("Authorization", "Bearer "+sp.key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		record(st, func() { st.errors++ })
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		limited, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		apiErr := api.DecodeError(resp.StatusCode, limited)
		if resp.StatusCode == http.StatusTooManyRequests || apiErr.Code == api.CodeQuotaExhausted {
			record(st, func() { st.http429++ })
			// Back off briefly; the point of an over-quota tenant is to
			// collect 429s, not to hot-spin the front door.
			time.Sleep(50 * time.Millisecond)
		} else {
			record(st, func() { st.errors++ })
		}
		return
	}

	cached := false
	done := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev api.Event
		if json.Unmarshal(line, &ev) != nil {
			continue
		}
		if ev.Type == api.EventCached {
			cached = true
		}
		if ev.Terminal() {
			done = ev.Type == api.EventResult
			break
		}
	}
	ms := float64(time.Since(begin)) / float64(time.Millisecond)
	record(st, func() {
		if !done {
			st.errors++
			return
		}
		st.ok++
		if cached {
			st.cached++
		}
		st.latencies = append(st.latencies, ms)
	})
}

func record(st *tenantStats, f func()) {
	st.mu.Lock()
	defer st.mu.Unlock()
	f()
}

// scrapeServer reads /metricz (auth-exempt) and distills the serving
// counters and daemon-side latency estimates the summary reports.
func scrapeServer(base string) serverSummary {
	var sv serverSummary
	resp, err := http.Get(base + "/metricz")
	if err != nil {
		return sv
	}
	defer resp.Body.Close()
	var doc metricsDoc
	if json.NewDecoder(resp.Body).Decode(&doc) != nil {
		return sv
	}
	sv.ResultsServed = doc.Counters["results.served"]
	sv.ResultsHits = doc.Counters["results.hits"]
	if h, ok := doc.Histograms["job.latency.ms.run"]; ok {
		sv.RunP50Ms, sv.RunP99Ms = h.Percentile(50), h.Percentile(99)
	}
	if h, ok := doc.Histograms["job.latency.ms.sweep"]; ok {
		sv.SweepP50Ms, sv.SweepP99Ms = h.Percentile(50), h.Percentile(99)
	}
	return sv
}
