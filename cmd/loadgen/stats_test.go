package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestPercentileNearestRank(t *testing.T) {
	samples := []float64{50, 10, 40, 20, 30} // unsorted on purpose
	cases := []struct {
		p    float64
		want float64
	}{
		{50, 30},
		{99, 50},
		{100, 50},
		{1, 10},
	}
	for _, c := range cases {
		if got := percentile(samples, c.p); got != c.want {
			t.Errorf("percentile(%v) = %g, want %g", c.p, got, c.want)
		}
	}
	if got := percentile(nil, 99); got != 0 {
		t.Errorf("percentile of no samples = %g, want 0", got)
	}
	if samples[0] != 50 {
		t.Error("percentile sorted the caller's slice")
	}
}

func TestHistogramPercentileUpperBound(t *testing.T) {
	// 10 observations: 4 in [1,1], 4 in [2,3], 2 in [8,15].
	h := histogram{
		Count: 10, MinV: 1, MaxV: 12,
		Buckets: []bucket{
			{Lo: 1, Hi: 1, Count: 4},
			{Lo: 2, Hi: 3, Count: 4},
			{Lo: 8, Hi: 15, Count: 2},
		},
	}
	if got := h.Percentile(50); got != 3 {
		t.Errorf("p50 = %d, want 3 (upper bound of the bucket reaching rank 5)", got)
	}
	// p99 lands in the top bucket, whose bound exceeds the recorded max:
	// clamp to max so the estimate never invents latency beyond what was
	// seen.
	if got := h.Percentile(99); got != 12 {
		t.Errorf("p99 = %d, want max 12", got)
	}
	if got := (histogram{}).Percentile(99); got != 0 {
		t.Errorf("empty histogram p99 = %d, want 0", got)
	}
}

func TestMetricsDocParsesRegistryOutput(t *testing.T) {
	// A fragment in the exact shape obs.Registry.WriteJSON emits.
	doc := `{
  "counters": {
    "results.hits": 3,
    "results.served": 2
  },
  "gauges": {
    "tenant.alice.running": {"value": 1, "min": 0, "max": 4}
  },
  "histograms": {
    "job.latency.ms.run": {"count": 2, "sum": 30, "min": 10, "max": 20, "mean": 15.000, "buckets": [{"lo": 8, "hi": 15, "count": 1}, {"lo": 16, "hi": 31, "count": 1}]}
  }
}`
	var m metricsDoc
	if err := json.NewDecoder(strings.NewReader(doc)).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Counters["results.hits"] != 3 || m.Counters["results.served"] != 2 {
		t.Errorf("counters = %v", m.Counters)
	}
	h := m.Histograms["job.latency.ms.run"]
	if h.Count != 2 || len(h.Buckets) != 2 {
		t.Fatalf("histogram = %+v", h)
	}
	if got := h.Percentile(99); got != 20 {
		t.Errorf("p99 = %d, want clamped max 20", got)
	}
}

func TestParseTenants(t *testing.T) {
	specs, err := parseTenants("alice:key-a:4, bob:key-b:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0] != (tenantSpec{"alice", "key-a", 4}) || specs[1] != (tenantSpec{"bob", "key-b", 1}) {
		t.Errorf("specs = %+v", specs)
	}
	if specs, err = parseTenants("local::2"); err != nil || specs[0].key != "" {
		t.Errorf("empty key: specs=%+v err=%v", specs, err)
	}
	for _, bad := range []string{"", "a:b", "a:b:0", "a:b:x"} {
		if _, err := parseTenants(bad); err == nil {
			t.Errorf("parseTenants(%q) accepted", bad)
		}
	}
}
