package main

import (
	"math"
	"sort"
)

// percentile returns the p-th percentile (0 < p <= 100) of samples by
// the nearest-rank method. Samples need not be sorted; the slice is
// not modified. Zero samples yield 0.
func percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// metricsDoc mirrors the daemon's /metricz document (obs.Registry
// WriteJSON format).
type metricsDoc struct {
	Counters   map[string]uint64    `json:"counters"`
	Histograms map[string]histogram `json:"histograms"`
}

type histogram struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	MinV    uint64   `json:"min"`
	MaxV    uint64   `json:"max"`
	Mean    float64  `json:"mean"`
	Buckets []bucket `json:"buckets"`
}

type bucket struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// Percentile estimates the p-th percentile from the histogram's sparse
// log2 buckets: the upper bound of the first bucket where the
// cumulative count reaches ceil(p/100 * N), clamped to the recorded
// max. An upper-bound estimate can only over-report a latency, so an
// SLO that passes against it also holds for the true distribution.
func (h histogram) Percentile(p float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	target := uint64(math.Ceil(p / 100 * float64(h.Count)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for _, b := range h.Buckets {
		cum += b.Count
		if cum >= target {
			if b.Hi > h.MaxV {
				return h.MaxV
			}
			return b.Hi
		}
	}
	return h.MaxV
}
