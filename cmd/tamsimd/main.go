// Command tamsimd serves simulation and sweep jobs over HTTP/JSON:
//
//	tamsimd -addr :8347
//	curl -sN localhost:8347/v1/runs -d '{"program":"ss","arg":60,"impl":"md"}'
//	curl -s  localhost:8347/metricz
//
// POST /v1/runs submits one simulation (program, size, implementation,
// cache geometries, miss penalties) and streams NDJSON progress events
// — one per completed cache geometry — followed by the final result
// document. POST /v1/sweeps does the same for a parameter-space grid.
// Submit with ?detach=1 to get the job id immediately instead of
// streaming; then GET /v1/runs/{id} polls status (add ?stream=1 to
// follow the event stream) and DELETE /v1/runs/{id} cancels.
//
// Jobs execute on a bounded in-process worker pool (-workers) and
// compiled program artifacts are cached per (program, size,
// implementation), so repeat jobs skip code generation. GET /metricz
// exposes the server-wide metrics registry: job counts by outcome,
// queue and pool gauges, code-cache hit rates and per-kind job latency
// histograms.
//
// Distributed sweeps: -shard-workers farms each sweep's (workload,
// impl) shards out to remote tamsimd workers with leases, retries,
// backoff, hedging and circuit breaking, degrading to local execution
// when no worker is reachable. Start the leaves with -worker (a plain
// serving node, conventionally journal-less) and point the coordinator
// at them:
//
//	tamsimd -worker -addr :8348
//	tamsimd -worker -addr :8349
//	tamsimd -addr :8347 -journal /var/lib/tamsimd/journal.ndjson \
//	        -shard-workers http://127.0.0.1:8348,http://127.0.0.1:8349
//
// -journal write-ahead journals every job state transition (fsynced
// NDJSON); a restarted daemon re-queues incomplete jobs under their
// original IDs and still serves results for completed ones. Sweeps
// also checkpoint every finished (workload, impl) unit, so a daemon
// killed mid-sweep resumes from its last checkpoint instead of
// starting over — the resumed result document is byte-identical to an
// uninterrupted run. -journal-max-bytes bounds the file: past the
// bound it is compacted in place (terminal jobs fold into snapshot
// lines, live jobs keep their checkpoints).
//
// Resilience: -job-timeout arms a per-job watchdog that kills any job
// running past the deadline (terminal "error" event prefixed
// deadline_exceeded, admission slot released). -scrub-interval starts
// a background integrity scrubber over the disk store: every blob's
// checksum is verified, corrupt blobs are quarantined (renamed .bad,
// never served) and transparently re-fetched from peers or
// re-recorded. On SIGTERM/SIGINT the daemon drains gracefully:
// /readyz flips to 503 (so load balancers and coordinators route
// elsewhere), new submissions are refused, running sweeps checkpoint,
// and the process exits within -drain-timeout. /healthz stays
// liveness-only; poll /readyz for routability.
//
// Recording store: every daemon keeps a content-addressed store of
// compacted trace recordings keyed by the (program, arg, impl, nodes,
// placement) descriptor, so repeat sweeps replay instead of
// re-simulating. -store-mem bounds the in-memory tier (negative
// disables the store), -store-dir adds a disk tier that survives
// restarts, and -store-peers lists peer daemons to consult — and push
// freshly recorded traces to — before simulating from scratch.
// Recordings move over GET/PUT /v1/recordings/{key} (compacted bytes,
// ETag = key, Range supported). Point each worker's -store-peers at
// the coordinator and the fleet records each unit at most once:
//
//	tamsimd -worker -addr :8348 -store-peers http://127.0.0.1:8347
//	tamsimd -worker -addr :8349 -store-peers http://127.0.0.1:8347
//	tamsimd -addr :8347 -store-dir /var/lib/tamsimd/store \
//	        -shard-workers http://127.0.0.1:8348,http://127.0.0.1:8349
//
// The -chaos-* flags wrap the coordinator's outbound transport in
// internal/faultnet's seeded fault injector (drops, 5xxs, mid-stream
// disconnects, latency spikes) for end-to-end robustness drills.
//
// Tenancy: -api-keys names a file of `<key> <tenant> [max_concurrent]
// [jobs_per_minute] [burst]` lines. With it set, every request outside
// /healthz, /metricz and the fleet-internal blob endpoints needs
// `Authorization: Bearer <key>`; submissions pass the tenant's
// token-bucket admission controller (429 + Retry-After past quota) and
// tenants see exactly their own jobs. Leaf workers conventionally run
// without -api-keys — the front door guards the edge, the fleet behind
// it is one trust domain.
//
// Result cache: identical normalized requests are served from a
// content-addressed result cache (byte-identical to fresh execution)
// shared fleet-wide over GET/PUT /v1/results/{key} with the same peer
// list as the recording store. -results-mem bounds its memory tier
// (negative disables); with -store-dir set the disk tier lives under
// <store-dir>/results.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"jmtam/internal/faultnet"
	"jmtam/internal/server"
	"jmtam/internal/shard"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8347", "listen address (use :0 for an ephemeral port)")
	workers := flag.Int("workers", 0, "max concurrently executing jobs (0 = GOMAXPROCS)")
	replayPar := flag.Int("replay-parallel", 1, "cache-replay workers within one job")
	cacheEntries := flag.Int("cache-entries", 32, "compiled-program cache capacity")
	maxInstrs := flag.Uint64("max-instructions", 0, "default per-job instruction budget (0 = 2e9)")
	journalPath := flag.String("journal", "", "write-ahead job journal path (empty = no journal)")
	journalMaxBytes := flag.Int64("journal-max-bytes", 0, "compact the journal past this size (0 = 64 MiB, negative = unbounded)")
	jobTimeout := flag.Duration("job-timeout", 0, "kill any job running longer than this (0 = no watchdog)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for running jobs on SIGTERM before forced exit")
	scrubInterval := flag.Duration("scrub-interval", 0, "background disk-store integrity scrub period (0 = no scrubber)")
	storeDir := flag.String("store-dir", "", "recording store disk tier (empty = memory only)")
	storeMem := flag.Int64("store-mem", 0, "recording store memory budget in bytes (0 = 256 MiB, negative = store disabled)")
	storePeers := flag.String("store-peers", "", "comma-separated peer daemon base URLs to consult for recordings")
	resultsMem := flag.Int64("results-mem", 0, "result cache memory budget in bytes (0 = 64 MiB, negative = cache disabled)")
	apiKeys := flag.String("api-keys", "", "API-key file enabling tenancy: <key> <tenant> [max_concurrent] [jobs_per_minute] [burst] per line")
	workerMode := flag.Bool("worker", false, "run as a leaf worker (ignores -journal and -shard-workers)")
	shardWorkers := flag.String("shard-workers", "", "comma-separated worker base URLs; farm sweeps out to them")
	leaseTimeout := flag.Duration("lease-timeout", 0, "per-shard lease before re-queue (0 = 2m)")
	hedgeAfter := flag.Duration("hedge-after", 0, "straggler hedge delay (0 = no hedging)")
	chaosSeed := flag.Uint64("chaos-seed", 1, "fault-injection seed")
	chaosDrop := flag.Float64("chaos-drop", 0, "probability a coordinator request is dropped")
	chaos5xx := flag.Float64("chaos-5xx", 0, "probability a coordinator request gets a synthetic 503")
	chaosDisconnect := flag.Float64("chaos-disconnect", 0, "probability a response stream is cut mid-body")
	chaosSpike := flag.Float64("chaos-spike", 0, "probability a request is delayed by -chaos-spike-ms")
	chaosSpikeMS := flag.Int("chaos-spike-ms", 250, "latency spike duration in milliseconds")
	flag.Parse()

	log.SetOutput(os.Stdout)
	log.SetPrefix("tamsimd: ")

	cfg := server.Config{
		Workers:                *workers,
		ReplayParallelism:      *replayPar,
		CacheEntries:           *cacheEntries,
		DefaultMaxInstructions: *maxInstrs,
		StoreDir:               *storeDir,
		StoreMemBytes:          *storeMem,
		ResultMemBytes:         *resultsMem,
		JobTimeout:             *jobTimeout,
		ScrubInterval:          *scrubInterval,
	}
	if *apiKeys != "" {
		tenants, err := server.LoadTenants(*apiKeys)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Tenants = tenants
		log.Printf("tenancy: %s", *apiKeys)
	}
	for _, u := range strings.Split(*storePeers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			cfg.StorePeers = append(cfg.StorePeers, u)
		}
	}
	if *workerMode {
		log.Print("worker mode: serving shards, no journal, no fan-out")
	} else {
		cfg.JournalPath = *journalPath
		cfg.JournalMaxBytes = *journalMaxBytes
		if *shardWorkers != "" {
			for _, u := range strings.Split(*shardWorkers, ",") {
				if u = strings.TrimSpace(u); u != "" {
					cfg.ShardWorkers = append(cfg.ShardWorkers, u)
				}
			}
			cfg.Shard = shard.Config{
				LeaseTimeout: *leaseTimeout,
				HedgeAfter:   *hedgeAfter,
				Seed:         *chaosSeed,
			}
			if *chaosDrop > 0 || *chaos5xx > 0 || *chaosDisconnect > 0 || *chaosSpike > 0 {
				cfg.Shard.Transport = faultnet.NewTransport(nil, faultnet.Plan{
					Seed:       *chaosSeed,
					Drop:       *chaosDrop,
					Err5xx:     *chaos5xx,
					Disconnect: *chaosDisconnect,
					SpikeProb:  *chaosSpike,
					Spike:      time.Duration(*chaosSpikeMS) * time.Millisecond,
				})
				log.Printf("chaos: injecting faults on the coordinator transport (seed %d)", *chaosSeed)
			}
			log.Printf("coordinating sweeps across %d workers", len(cfg.ShardWorkers))
		}
	}
	srv, err := server.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on http://%s", ln.Addr())

	hs := &http.Server{
		Handler: srv.Handler(),
		// NDJSON job streams are long-lived by design, so there is no
		// WriteTimeout here; per-write deadlines inside the stream loop
		// bound stalled subscribers instead. These two cap what a client
		// can pin without ever sending or between requests.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Print("draining: refusing new jobs, waiting for running ones")
		// Drain first: /readyz goes 503 so routers steer elsewhere, new
		// submissions are refused, and running jobs get up to
		// -drain-timeout to finish (sweeps checkpoint as they go, so
		// whatever doesn't finish resumes after restart).
		dCtx, dCancel := context.WithTimeout(context.Background(), *drainTimeout)
		srv.Drain(dCtx)
		dCancel()
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(shCtx)
	}()
	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	fmt.Println("tamsimd: bye")
}
