// Command tamsimd serves simulation and sweep jobs over HTTP/JSON:
//
//	tamsimd -addr :8347
//	curl -sN localhost:8347/v1/runs -d '{"program":"ss","arg":60,"impl":"md"}'
//	curl -s  localhost:8347/metricz
//
// POST /v1/runs submits one simulation (program, size, implementation,
// cache geometries, miss penalties) and streams NDJSON progress events
// — one per completed cache geometry — followed by the final result
// document. POST /v1/sweeps does the same for a parameter-space grid.
// Submit with ?detach=1 to get the job id immediately instead of
// streaming; then GET /v1/runs/{id} polls status (add ?stream=1 to
// follow the event stream) and DELETE /v1/runs/{id} cancels.
//
// Jobs execute on a bounded in-process worker pool (-workers) and
// compiled program artifacts are cached per (program, size,
// implementation), so repeat jobs skip code generation. GET /metricz
// exposes the server-wide metrics registry: job counts by outcome,
// queue and pool gauges, code-cache hit rates and per-kind job latency
// histograms.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"jmtam/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8347", "listen address (use :0 for an ephemeral port)")
	workers := flag.Int("workers", 0, "max concurrently executing jobs (0 = GOMAXPROCS)")
	replayPar := flag.Int("replay-parallel", 1, "cache-replay workers within one job")
	cacheEntries := flag.Int("cache-entries", 32, "compiled-program cache capacity")
	maxInstrs := flag.Uint64("max-instructions", 0, "default per-job instruction budget (0 = 2e9)")
	flag.Parse()

	log.SetOutput(os.Stdout)
	log.SetPrefix("tamsimd: ")

	srv := server.New(server.Config{
		Workers:                *workers,
		ReplayParallelism:      *replayPar,
		CacheEntries:           *cacheEntries,
		DefaultMaxInstructions: *maxInstrs,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on http://%s", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Print("shutting down")
		srv.Close() // cancel outstanding jobs so streams terminate
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(shCtx)
	}()
	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	fmt.Println("tamsimd: bye")
}
