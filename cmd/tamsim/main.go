// Command tamsim runs one benchmark under one TAM implementation and
// reports instruction counts, granularity and cache behaviour:
//
//	tamsim -prog ss -arg 100 -impl md
//	tamsim -prog mmt -arg 20 -impl am -cache 8 -assoc 4 -block 64
//	tamsim -prog qs -impl md -cache 1,8,64 -assoc 1,4 -parallel 4
//	tamsim -prog qs -impl am -dump
//
// -cache, -assoc and -block accept comma-separated lists; every
// combination is evaluated. The simulation runs once, recording its
// reference stream, and the recording is replayed through each geometry
// on a worker pool bounded by -parallel (0 = GOMAXPROCS).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"jmtam"
	"jmtam/internal/cache"
	"jmtam/internal/core"
	"jmtam/internal/experiments"
	"jmtam/internal/isa"
	"jmtam/internal/parallel"
	"jmtam/internal/programs"
	"jmtam/internal/trace"
)

func main() {
	prog := flag.String("prog", "ss", "benchmark: mmt|qs|dtw|paraffins|wavefront|ss")
	arg := flag.Int("arg", 0, "problem size (0 = paper argument)")
	implName := flag.String("impl", "md", "implementation: am|md|am-enabled|oam")
	sizesKB := flag.String("cache", "8", "cache size(s) in Kbytes (I and D), comma-separated")
	assocs := flag.String("assoc", "4", "set associativity list, comma-separated")
	blocks := flag.String("block", "64", "block size(s) in bytes, comma-separated")
	par := flag.Int("parallel", 0, "concurrent trace replays (0 = GOMAXPROCS)")
	dump := flag.Bool("dump", false, "print disassembly instead of running")
	hist := flag.Bool("hist", false, "also print the quantum-size histogram and instruction mix")
	flag.Parse()

	var impl core.Impl
	switch *implName {
	case "am":
		impl = core.ImplAM
	case "md":
		impl = core.ImplMD
	case "am-enabled":
		impl = core.ImplAMEnabled
	case "oam":
		impl = core.ImplOAM
	default:
		fail(fmt.Errorf("unknown -impl %q", *implName))
	}

	spec, err := programs.ByName(*prog)
	if err != nil {
		fail(err)
	}
	n := *arg
	if n == 0 {
		n = spec.Arg
	}

	if *dump {
		sim, err := core.Build(impl, spec.Build(n), core.Options{})
		if err != nil {
			fail(err)
		}
		fmt.Println("; --- system code ---")
		fmt.Print(sim.RT.Sys.Dump())
		fmt.Println("; --- user code ---")
		fmt.Print(sim.RT.User.Dump())
		return
	}

	geoms, err := geometries(*sizesKB, *assocs, *blocks)
	if err != nil {
		fail(err)
	}
	sim, err := core.Build(impl, spec.Build(n), core.Options{})
	if err != nil {
		fail(err)
	}
	rec := &trace.Recording{}
	sim.Tracer = rec
	if err := sim.Run(); err != nil {
		fail(err)
	}

	// Replay the recorded stream through every geometry concurrently.
	caches := make([]experiments.CacheStats, len(geoms))
	err = parallel.ForEach(*par, len(geoms), func(i int) error {
		p, err := rec.ReplayPair(geoms[i])
		if err != nil {
			return err
		}
		caches[i] = experiments.CacheStats{
			Config:     p.I.Config(),
			IMisses:    p.I.Stats().Misses,
			DMisses:    p.D.Stats().Misses,
			Writebacks: p.D.Stats().Writebacks,
		}
		return nil
	})
	if err != nil {
		fail(err)
	}
	res := resultOf(sim, rec, caches)

	fmt.Printf("%s %d under %v\n", spec.Name, n, impl)
	fmt.Printf("  %s\n\n", spec.Doc)
	fmt.Printf("  instructions      %12d\n", res.Instructions)
	fmt.Printf("  data reads        %12d\n", res.Reads)
	fmt.Printf("  data writes       %12d\n", res.Writes)
	fmt.Printf("  threads           %12d\n", res.Threads)
	fmt.Printf("  quanta            %12d\n", res.Quanta)
	fmt.Printf("  threads/quantum   %12.1f\n", res.TPQ)
	fmt.Printf("  instrs/thread     %12.1f\n", res.IPT)
	fmt.Printf("  instrs/quantum    %12.1f\n", res.IPQ)
	fmt.Printf("  trace             %12d refs (%d KB recorded)\n", rec.Len(), rec.Bytes()/1024)
	for i, c := range res.Caches {
		fmt.Printf("\n  cache %v\n", c.Config)
		fmt.Printf("  I-misses          %12d\n", c.IMisses)
		fmt.Printf("  D-misses          %12d\n", c.DMisses)
		fmt.Printf("  writebacks        %12d\n", c.Writebacks)
		for _, p := range []int{12, 24, 48} {
			fmt.Printf("  cycles (miss=%2d)  %12d\n", p, res.Cycles(i, p))
		}
	}

	if *hist {
		fmt.Println("\n  quantum-size histogram (threads per quantum, log2 buckets)")
		for b, count := range sim.Gran.QuantumHist {
			if count == 0 {
				continue
			}
			lo := 1 << b
			hi := 1<<(b+1) - 1
			fmt.Printf("    %6d-%-8d %10d\n", lo, hi, count)
		}
		fmt.Printf("    largest quantum: %d threads\n", sim.Gran.MaxQuantum)
		fmt.Println("\n  dynamic opcode counts (top 12)")
		type oc struct {
			op    isa.Op
			count uint64
		}
		counts := sim.M.OpCounts()
		var all []oc
		for op := isa.Op(0); op < isa.NumOps; op++ {
			if counts[op] > 0 {
				all = append(all, oc{op, counts[op]})
			}
		}
		sort.Slice(all, func(i, j int) bool { return all[i].count > all[j].count })
		if len(all) > 12 {
			all = all[:12]
		}
		for _, e := range all {
			fmt.Printf("    %-8v %10d (%4.1f%%)\n", e.op, e.count,
				100*float64(e.count)/float64(res.Instructions))
		}
	}
}

// geometries expands the comma-separated -cache/-assoc/-block lists into
// every combination, size-major.
func geometries(sizesKB, assocs, blocks string) ([]cache.Config, error) {
	parse := func(flagName, list string) ([]int, error) {
		var vs []int
		for _, f := range strings.Split(list, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, fmt.Errorf("bad -%s value %q", flagName, f)
			}
			vs = append(vs, v)
		}
		return vs, nil
	}
	kbs, err := parse("cache", sizesKB)
	if err != nil {
		return nil, err
	}
	as, err := parse("assoc", assocs)
	if err != nil {
		return nil, err
	}
	bs, err := parse("block", blocks)
	if err != nil {
		return nil, err
	}
	var geoms []cache.Config
	for _, kb := range kbs {
		for _, a := range as {
			for _, b := range bs {
				g := cache.Config{SizeBytes: kb * 1024, BlockBytes: b, Assoc: a}
				if err := g.Validate(); err != nil {
					return nil, err
				}
				geoms = append(geoms, g)
			}
		}
	}
	return geoms, nil
}

// resultOf converts a finished simulation into the public Result shape.
func resultOf(sim *core.Sim, rec *trace.Recording, caches []experiments.CacheStats) *jmtam.Result {
	return &jmtam.Result{
		Program:      sim.Prog.Name,
		Impl:         sim.Impl,
		Instructions: sim.M.Instructions(),
		Reads:        rec.TotalReads(),
		Writes:       rec.TotalWrites(),
		Threads:      sim.Gran.Threads,
		Quanta:       sim.Gran.Quanta,
		TPQ:          sim.Gran.TPQ(),
		IPT:          sim.Gran.IPT(),
		IPQ:          sim.Gran.IPQ(),
		Caches:       caches,
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tamsim:", err)
	os.Exit(1)
}
