// Command tamsim runs one benchmark under one TAM implementation and
// reports instruction counts, granularity and cache behaviour:
//
//	tamsim -prog ss -arg 100 -impl md
//	tamsim -prog mmt -arg 20 -impl am -cache 8 -assoc 4 -block 64
//	tamsim -prog qs -impl md -cache 1,8,64 -assoc 1,4 -parallel 4
//	tamsim -prog qs -impl am -dump
//	tamsim -prog wavefront -impl am -nodes 4 -placement round-robin
//
// -cache, -assoc and -block accept comma-separated lists; every
// combination is evaluated. The simulation runs once, recording its
// reference stream, and the recording is replayed through each geometry
// on a worker pool bounded by -parallel (0 = GOMAXPROCS).
//
// With -nodes N (a power of two, at most 64) the benchmark runs
// unmodified on an N-node mesh: the runtime compiles mesh-aware code,
// frames are spread by the -placement policy, and remote I-structure
// requests travel the network as active messages. Each node records
// its own reference stream and owns a private cache pair per geometry;
// misses are summed.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"jmtam"
	"jmtam/internal/cache"
	"jmtam/internal/core"
	"jmtam/internal/experiments"
	"jmtam/internal/isa"
	"jmtam/internal/machine"
	"jmtam/internal/mem"
	"jmtam/internal/obs"
	"jmtam/internal/parallel"
	"jmtam/internal/programs"
	"jmtam/internal/report"
	"jmtam/internal/trace"
)

func main() {
	prog := flag.String("prog", "ss", "benchmark: mmt|qs|dtw|paraffins|wavefront|ss")
	arg := flag.Int("arg", 0, "problem size (0 = paper argument)")
	implName := flag.String("impl", "md", "backend: "+strings.Join(core.BackendNames(), "|"))
	sizesKB := flag.String("cache", "8", "cache size(s) in Kbytes (I and D), comma-separated")
	assocs := flag.String("assoc", "4", "set associativity list, comma-separated")
	blocks := flag.String("block", "64", "block size(s) in bytes, comma-separated")
	par := flag.Int("parallel", 0, "concurrent trace replays (0 = GOMAXPROCS)")
	dump := flag.Bool("dump", false, "print disassembly instead of running")
	hist := flag.Bool("hist", false, "also print the quantum-size histogram and instruction mix")
	eventsOut := flag.String("events", "", "write a Perfetto/Chrome trace-event timeline (JSON) to this file")
	metricsOut := flag.String("metrics", "", "write the observability metrics registry (JSON) to this file")
	nodes := flag.Int("nodes", 1, "mesh node count (power of two, at most 64); >1 runs the multi-node TAM runtime")
	placementName := flag.String("placement", "round-robin", "frame placement policy for -nodes > 1: round-robin|local")
	pairedQW := flag.Bool("paired-queue-writes", false, "model the MDP's two-word-per-cycle queue write-through (halves charged queue-buffer writes)")
	flag.Parse()

	impl, err := core.ParseImpl(*implName)
	if err != nil {
		fail(err)
	}

	placement, err := core.ParsePlacement(*placementName)
	if err != nil {
		fail(err)
	}

	spec, err := programs.ByName(*prog)
	if err != nil {
		fail(err)
	}
	n := *arg
	if n == 0 {
		n = spec.Arg
	}

	if *dump {
		c, err := core.Compile(impl, spec.Build(n),
			core.Options{Nodes: *nodes, Placement: placement})
		if err != nil {
			fail(err)
		}
		fmt.Println("; --- system code ---")
		fmt.Print(c.RT.Sys.Dump())
		fmt.Println("; --- user code ---")
		fmt.Print(c.RT.User.Dump())
		return
	}

	geoms, err := geometries(*sizesKB, *assocs, *blocks)
	if err != nil {
		fail(err)
	}

	if *nodes > 1 {
		runCluster(impl, placement, spec, n, *nodes, *pairedQW, geoms, *par, *hist,
			*eventsOut, *metricsOut)
		return
	}
	var opt core.Options
	opt.PairedQueueWrites = *pairedQW
	var sink *obs.Sink
	if *eventsOut != "" || *metricsOut != "" || *hist {
		var oo []obs.Option
		if *eventsOut != "" {
			oo = append(oo, obs.WithEvents())
		}
		sink = obs.New(oo...)
		opt.Obs = sink
	}
	sim, err := core.Build(impl, spec.Build(n), opt)
	if err != nil {
		fail(err)
	}
	rec := &trace.Recording{}
	sim.Tracer = rec
	// NIC-offload backends split the trace by execution locus: inlets
	// and system handlers record into their own stream and replay
	// against the NIC engine's private cache pair.
	var nicRec *trace.Recording
	if impl.Caps().NICInlets {
		nicRec = &trace.Recording{}
		sim.NICTracer = nicRec
	}
	if err := sim.Run(); err != nil {
		fail(err)
	}

	// Replay the recorded stream through every geometry concurrently.
	// With a sink attached, each replay also attributes misses by cause
	// and class; the attributions fold into the registry serially.
	caches := make([]experiments.CacheStats, len(geoms))
	mcs := make([]trace.MissCounts, len(geoms))
	err = parallel.ForEach(*par, len(geoms), func(i int) error {
		p, err := trace.NewPair(geoms[i])
		if err != nil {
			return err
		}
		if sink != nil {
			mcs[i] = rec.ReplayObserved(p)
		} else {
			rec.Replay(p)
		}
		caches[i] = experiments.CacheStats{
			Config:     p.I.Config(),
			IMisses:    p.I.Stats().Misses,
			DMisses:    p.D.Stats().Misses,
			Writebacks: p.D.Stats().Writebacks,
		}
		return nil
	})
	if err != nil {
		fail(err)
	}
	if sink != nil {
		for i := range mcs {
			label := ""
			if len(geoms) > 1 {
				label = geoms[i].String()
			}
			mcs[i].AddTo(sink.Metrics, label)
		}
		if sink.Events != nil && len(geoms) > 0 {
			// Miss-density counter track: per-1K-instruction I/D cache
			// miss samples at the first geometry, on the same
			// instruction clock as the scheduler spans, so conflict-miss
			// bursts line up with the quanta they occur in.
			if _, err := rec.MissDensityTrack(sink.Events, int32(sim.M.Node()), geoms[0], 1000); err != nil {
				fail(err)
			}
			if nicRec != nil {
				// A second labeled track for the NIC engine's stream at
				// its own geometry, so handler-side miss bursts are
				// visually separable from compute misses.
				if _, err := nicRec.MissDensityTrackLabeled(sink.Events, int32(sim.M.Node()),
					experiments.NICGeom(opt), 1000, "nic"); err != nil {
					fail(err)
				}
			}
		}
		// The recording replaced the inline collector; fold its
		// per-class reference counts into the registry here.
		for cls := mem.Class(0); cls < mem.NumClasses; cls++ {
			name := cls.String()
			sink.Metrics.Counter("ref.fetch." + name).Add(rec.Fetches[cls])
			sink.Metrics.Counter("ref.read." + name).Add(rec.Reads[cls])
			sink.Metrics.Counter("ref.write." + name).Add(rec.Writes[cls])
		}
	}
	res := resultOf(sim, rec, caches)

	// Replay the NIC engine's stream (if any) against its private
	// geometry; the cycle model then takes the slower of the two engines
	// per geometry, as the experiments package does.
	var nic *experiments.NICStats
	if nicRec != nil {
		ng := experiments.NICGeom(opt)
		p, err := trace.NewPair(ng)
		if err != nil {
			fail(err)
		}
		nicRec.Replay(p)
		nic = &experiments.NICStats{
			Instructions: sim.M.HighInstructions(),
			Config:       ng,
			IMisses:      p.I.Stats().Misses,
			DMisses:      p.D.Stats().Misses,
			Writebacks:   p.D.Stats().Writebacks,
		}
	}
	cycles := func(i, p int) uint64 {
		if nic == nil {
			return res.Cycles(i, p)
		}
		compute := res.Instructions - nic.Instructions + uint64(p)*(caches[i].IMisses+caches[i].DMisses)
		n := nic.Instructions + uint64(p)*(nic.IMisses+nic.DMisses)
		if n > compute {
			return n
		}
		return compute
	}

	fmt.Printf("%s %d under %v\n", spec.Name, n, impl)
	fmt.Printf("  %s\n\n", spec.Doc)
	fmt.Printf("  instructions      %12d\n", res.Instructions)
	fmt.Printf("  data reads        %12d\n", res.Reads)
	fmt.Printf("  data writes       %12d\n", res.Writes)
	fmt.Printf("  threads           %12d\n", res.Threads)
	fmt.Printf("  quanta            %12d\n", res.Quanta)
	fmt.Printf("  threads/quantum   %12.1f\n", res.TPQ)
	fmt.Printf("  instrs/thread     %12.1f\n", res.IPT)
	fmt.Printf("  instrs/quantum    %12.1f\n", res.IPQ)
	fmt.Printf("  trace             %12d refs (%d KB recorded)\n", rec.Len(), rec.Bytes()/1024)
	for i, c := range res.Caches {
		fmt.Printf("\n  cache %v\n", c.Config)
		fmt.Printf("  I-misses          %12d\n", c.IMisses)
		fmt.Printf("  D-misses          %12d\n", c.DMisses)
		fmt.Printf("  writebacks        %12d\n", c.Writebacks)
		for _, p := range []int{12, 24, 48} {
			fmt.Printf("  cycles (miss=%2d)  %12d\n", p, cycles(i, p))
		}
	}
	if nic != nil {
		fmt.Printf("\n  nic engine (private cache %v)\n", nic.Config)
		fmt.Printf("  instructions      %12d\n", nic.Instructions)
		fmt.Printf("  trace             %12d refs\n", nicRec.Len())
		fmt.Printf("  I-misses          %12d\n", nic.IMisses)
		fmt.Printf("  D-misses          %12d\n", nic.DMisses)
		fmt.Printf("  writebacks        %12d\n", nic.Writebacks)
	}

	if *hist {
		fmt.Println()
		fmt.Print(indent(report.Histogram(
			"quantum-size histogram (threads per quantum)", &sim.Gran.QuantumHist), "  "))
		fmt.Print(indent(report.Histogram(
			"quantum-length histogram (instructions per quantum)", &sim.Gran.QuantumInstrs), "  "))
		fmt.Printf("    largest quantum: %d threads\n", sim.Gran.MaxQuantum())
		fmt.Println("\n  dynamic opcode counts (top 12)")
		type oc struct {
			op    isa.Op
			count uint64
		}
		counts := sim.M.OpCounts()
		var all []oc
		for op := isa.Op(0); op < isa.NumOps; op++ {
			if counts[op] > 0 {
				all = append(all, oc{op, counts[op]})
			}
		}
		sort.Slice(all, func(i, j int) bool { return all[i].count > all[j].count })
		if len(all) > 12 {
			all = all[:12]
		}
		for _, e := range all {
			fmt.Printf("    %-8v %10d (%4.1f%%)\n", e.op, e.count,
				100*float64(e.count)/float64(res.Instructions))
		}
	}

	if *metricsOut != "" {
		if err := writeFile(*metricsOut, func(w *os.File) error {
			return sink.Metrics.WriteJSON(w)
		}); err != nil {
			fail(err)
		}
		fmt.Printf("\nmetrics written to %s\n", *metricsOut)
	}
	if *eventsOut != "" {
		if err := writeFile(*eventsOut, func(w *os.File) error {
			return sink.Events.WriteJSON(w)
		}); err != nil {
			fail(err)
		}
		fmt.Printf("events written to %s (%d records; load in https://ui.perfetto.dev)\n",
			*eventsOut, sink.Events.Len())
	}
}

// runCluster executes the benchmark on an N-node mesh and reports the
// aggregate statistics, elapsed lockstep time, per-node instruction
// counts and the network traffic breakdown.
func runCluster(impl core.Impl, placement core.Placement, spec programs.Spec, arg, nodes int, pairedQW bool, geoms []cache.Config, par int, hist bool, eventsOut, metricsOut string) {
	opt := core.Options{Nodes: nodes, Placement: placement, PairedQueueWrites: pairedQW}
	var sink *obs.Sink
	if eventsOut != "" || metricsOut != "" || hist {
		var oo []obs.Option
		if eventsOut != "" {
			oo = append(oo, obs.WithEvents())
		}
		sink = obs.New(oo...)
		opt.Obs = sink
	}
	cs, err := core.BuildCluster(impl, spec.Build(arg), opt)
	if err != nil {
		fail(err)
	}
	recs := make([]*trace.Recording, cs.Nodes)
	cs.Tracers = make([]machine.Tracer, cs.Nodes)
	for k := range recs {
		recs[k] = &trace.Recording{}
		cs.Tracers[k] = recs[k]
	}
	// NIC-offload backends record each node's high-priority stream
	// separately; it replays against the node's private NIC cache pair.
	var nicRecs []*trace.Recording
	if impl.Caps().NICInlets {
		nicRecs = make([]*trace.Recording, cs.Nodes)
		cs.NICTracers = make([]machine.Tracer, cs.Nodes)
		for k := range nicRecs {
			nicRecs[k] = &trace.Recording{}
			cs.NICTracers[k] = nicRecs[k]
		}
	}
	if err := cs.Run(); err != nil {
		fail(err)
	}

	// Each node owns a private cache pair per geometry; misses sum.
	caches := make([]experiments.CacheStats, len(geoms))
	err = parallel.ForEach(par, len(geoms), func(i int) error {
		st := experiments.CacheStats{Config: geoms[i]}
		for _, rec := range recs {
			p, err := trace.NewPair(geoms[i])
			if err != nil {
				return err
			}
			rec.Replay(p)
			st.Config = p.I.Config()
			st.IMisses += p.I.Stats().Misses
			st.DMisses += p.D.Stats().Misses
			st.Writebacks += p.D.Stats().Writebacks
		}
		caches[i] = st
		return nil
	})
	if err != nil {
		fail(err)
	}

	var reads, writes, refs, traceBytes uint64
	for _, rec := range recs {
		reads += rec.TotalReads()
		writes += rec.TotalWrites()
		refs += uint64(rec.Len())
		traceBytes += uint64(rec.Bytes())
	}
	if sink != nil {
		// The recordings replaced the inline collectors; fold their
		// per-class reference counts into the registry here.
		for cls := mem.Class(0); cls < mem.NumClasses; cls++ {
			name := cls.String()
			for _, rec := range recs {
				sink.Metrics.Counter("ref.fetch." + name).Add(rec.Fetches[cls])
				sink.Metrics.Counter("ref.read." + name).Add(rec.Reads[cls])
				sink.Metrics.Counter("ref.write." + name).Add(rec.Writes[cls])
			}
		}
		if sink.Events != nil && len(geoms) > 0 {
			// Per-node miss-density counter tracks at the first geometry.
			for k, rec := range recs {
				if _, err := rec.MissDensityTrack(sink.Events, int32(k), geoms[0], 1000); err != nil {
					fail(err)
				}
			}
			for k, rec := range nicRecs {
				if _, err := rec.MissDensityTrackLabeled(sink.Events, int32(k),
					experiments.NICGeom(opt), 1000, "nic"); err != nil {
					fail(err)
				}
			}
		}
	}

	// Sum the per-node NIC streams (if any) through private pairs of the
	// NIC geometry; the cycle lines below then take the slower engine.
	var nic *experiments.NICStats
	if nicRecs != nil {
		ng := experiments.NICGeom(opt)
		nic = &experiments.NICStats{Config: ng}
		for _, m := range cs.C.Machines {
			nic.Instructions += m.HighInstructions()
		}
		for _, rec := range nicRecs {
			p, err := trace.NewPair(ng)
			if err != nil {
				fail(err)
			}
			rec.Replay(p)
			nic.IMisses += p.I.Stats().Misses
			nic.DMisses += p.D.Stats().Misses
			nic.Writebacks += p.D.Stats().Writebacks
		}
	}

	g := cs.MergedGran()
	instrs := cs.Instructions()
	cycles := func(i, p int) uint64 {
		c := instrs + uint64(p)*(caches[i].IMisses+caches[i].DMisses)
		if nic == nil {
			return c
		}
		c -= nic.Instructions
		if n := nic.Instructions + uint64(p)*(nic.IMisses+nic.DMisses); n > c {
			return n
		}
		return c
	}
	fmt.Printf("%s %d under %v on %d nodes (%v placement)\n", spec.Name, arg, impl, cs.Nodes, placement)
	fmt.Printf("  %s\n\n", spec.Doc)
	fmt.Printf("  instructions      %12d\n", instrs)
	for k, m := range cs.C.Machines {
		fmt.Printf("    node %-2d         %12d\n", k, m.Instructions())
	}
	fmt.Printf("  elapsed ticks     %12d\n", cs.Ticks())
	fmt.Printf("  data reads        %12d\n", reads)
	fmt.Printf("  data writes       %12d\n", writes)
	fmt.Printf("  threads           %12d\n", g.Threads)
	fmt.Printf("  quanta            %12d\n", g.Quanta)
	fmt.Printf("  threads/quantum   %12.1f\n", g.TPQ())
	fmt.Printf("  instrs/thread     %12.1f\n", g.IPT())
	fmt.Printf("  instrs/quantum    %12.1f\n", g.IPQ())
	fmt.Printf("  trace             %12d refs (%d KB recorded)\n", refs, traceBytes/1024)
	fmt.Printf("  net messages      %12d delivered (%d words sent)\n",
		cs.C.Net.Delivered, cs.C.Net.WordsSent)
	if sink != nil {
		for _, name := range sink.Metrics.CounterNames() {
			if strings.HasPrefix(name, "net.class.") || strings.HasPrefix(name, "net.latency.") {
				fmt.Printf("    %-16s%12d\n", strings.TrimPrefix(name, "net."),
					sink.Metrics.Counter(name).Value())
			}
		}
	}
	for i, c := range caches {
		fmt.Printf("\n  cache %v (per node)\n", c.Config)
		fmt.Printf("  I-misses          %12d\n", c.IMisses)
		fmt.Printf("  D-misses          %12d\n", c.DMisses)
		fmt.Printf("  writebacks        %12d\n", c.Writebacks)
		for _, p := range []int{12, 24, 48} {
			fmt.Printf("  cycles (miss=%2d)  %12d\n", p, cycles(i, p))
		}
	}
	if nic != nil {
		fmt.Printf("\n  nic engines (private cache %v per node)\n", nic.Config)
		fmt.Printf("  instructions      %12d\n", nic.Instructions)
		fmt.Printf("  I-misses          %12d\n", nic.IMisses)
		fmt.Printf("  D-misses          %12d\n", nic.DMisses)
		fmt.Printf("  writebacks        %12d\n", nic.Writebacks)
	}

	if hist {
		fmt.Println()
		fmt.Print(indent(report.Histogram(
			"quantum-size histogram (threads per quantum)", &g.QuantumHist), "  "))
		fmt.Print(indent(report.Histogram(
			"quantum-length histogram (instructions per quantum)", &g.QuantumInstrs), "  "))
	}

	if metricsOut != "" {
		if err := writeFile(metricsOut, func(w *os.File) error {
			return sink.Metrics.WriteJSON(w)
		}); err != nil {
			fail(err)
		}
		fmt.Printf("\nmetrics written to %s\n", metricsOut)
	}
	if eventsOut != "" {
		if err := writeFile(eventsOut, func(w *os.File) error {
			return sink.Events.WriteJSON(w)
		}); err != nil {
			fail(err)
		}
		fmt.Printf("events written to %s (%d records; load in https://ui.perfetto.dev)\n",
			eventsOut, sink.Events.Len())
	}
}

// writeFile creates path and streams fn's output into it.
func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// indent prefixes every non-empty line of s.
func indent(s, prefix string) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		if l != "" {
			lines[i] = prefix + l
		}
	}
	return strings.Join(lines, "\n")
}

// geometries expands the comma-separated -cache/-assoc/-block lists into
// every combination, size-major.
func geometries(sizesKB, assocs, blocks string) ([]cache.Config, error) {
	parse := func(flagName, list string) ([]int, error) {
		var vs []int
		for _, f := range strings.Split(list, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, fmt.Errorf("bad -%s value %q", flagName, f)
			}
			vs = append(vs, v)
		}
		return vs, nil
	}
	kbs, err := parse("cache", sizesKB)
	if err != nil {
		return nil, err
	}
	as, err := parse("assoc", assocs)
	if err != nil {
		return nil, err
	}
	bs, err := parse("block", blocks)
	if err != nil {
		return nil, err
	}
	var geoms []cache.Config
	for _, kb := range kbs {
		for _, a := range as {
			for _, b := range bs {
				g := cache.Config{SizeBytes: kb * 1024, BlockBytes: b, Assoc: a}
				if err := g.Validate(); err != nil {
					return nil, err
				}
				geoms = append(geoms, g)
			}
		}
	}
	return geoms, nil
}

// resultOf converts a finished simulation into the public Result shape.
func resultOf(sim *core.Sim, rec *trace.Recording, caches []experiments.CacheStats) *jmtam.Result {
	return &jmtam.Result{
		Program:      sim.Prog.Name,
		Impl:         sim.Impl,
		Instructions: sim.M.Instructions(),
		Reads:        rec.TotalReads(),
		Writes:       rec.TotalWrites(),
		Threads:      sim.Gran.Threads,
		Quanta:       sim.Gran.Quanta,
		TPQ:          sim.Gran.TPQ(),
		IPT:          sim.Gran.IPT(),
		IPQ:          sim.Gran.IPQ(),
		Caches:       caches,
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tamsim:", err)
	os.Exit(1)
}
