// Command tamsim runs one benchmark under one TAM implementation and
// reports instruction counts, granularity and cache behaviour:
//
//	tamsim -prog ss -arg 100 -impl md
//	tamsim -prog mmt -arg 20 -impl am -cache 8 -assoc 4 -block 64
//	tamsim -prog qs -impl am -dump
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"jmtam"
	"jmtam/internal/cache"
	"jmtam/internal/core"
	"jmtam/internal/experiments"
	"jmtam/internal/isa"
	"jmtam/internal/programs"
)

func main() {
	prog := flag.String("prog", "ss", "benchmark: mmt|qs|dtw|paraffins|wavefront|ss")
	arg := flag.Int("arg", 0, "problem size (0 = paper argument)")
	implName := flag.String("impl", "md", "implementation: am|md|am-enabled|oam")
	sizeKB := flag.Int("cache", 8, "cache size in Kbytes (I and D)")
	assoc := flag.Int("assoc", 4, "set associativity")
	block := flag.Int("block", 64, "block size in bytes")
	dump := flag.Bool("dump", false, "print disassembly instead of running")
	hist := flag.Bool("hist", false, "also print the quantum-size histogram and instruction mix")
	flag.Parse()

	var impl core.Impl
	switch *implName {
	case "am":
		impl = core.ImplAM
	case "md":
		impl = core.ImplMD
	case "am-enabled":
		impl = core.ImplAMEnabled
	case "oam":
		impl = core.ImplOAM
	default:
		fail(fmt.Errorf("unknown -impl %q", *implName))
	}

	spec, err := programs.ByName(*prog)
	if err != nil {
		fail(err)
	}
	n := *arg
	if n == 0 {
		n = spec.Arg
	}

	if *dump {
		sim, err := core.Build(impl, spec.Build(n), core.Options{})
		if err != nil {
			fail(err)
		}
		fmt.Println("; --- system code ---")
		fmt.Print(sim.RT.Sys.Dump())
		fmt.Println("; --- user code ---")
		fmt.Print(sim.RT.User.Dump())
		return
	}

	geom := cache.Config{SizeBytes: *sizeKB * 1024, BlockBytes: *block, Assoc: *assoc}
	sim, err := core.Build(impl, spec.Build(n), core.Options{})
	if err != nil {
		fail(err)
	}
	if _, err := sim.Collector.AddPair(geom); err != nil {
		fail(err)
	}
	if err := sim.Run(); err != nil {
		fail(err)
	}
	res := resultOf(sim, geom)

	fmt.Printf("%s %d under %v\n", spec.Name, n, impl)
	fmt.Printf("  %s\n\n", spec.Doc)
	fmt.Printf("  instructions      %12d\n", res.Instructions)
	fmt.Printf("  data reads        %12d\n", res.Reads)
	fmt.Printf("  data writes       %12d\n", res.Writes)
	fmt.Printf("  threads           %12d\n", res.Threads)
	fmt.Printf("  quanta            %12d\n", res.Quanta)
	fmt.Printf("  threads/quantum   %12.1f\n", res.TPQ)
	fmt.Printf("  instrs/thread     %12.1f\n", res.IPT)
	fmt.Printf("  instrs/quantum    %12.1f\n\n", res.IPQ)
	c := res.Caches[0]
	fmt.Printf("  cache %v\n", c.Config)
	fmt.Printf("  I-misses          %12d\n", c.IMisses)
	fmt.Printf("  D-misses          %12d\n", c.DMisses)
	fmt.Printf("  writebacks        %12d\n", c.Writebacks)
	for _, p := range []int{12, 24, 48} {
		fmt.Printf("  cycles (miss=%2d)  %12d\n", p, res.Cycles(0, p))
	}

	if *hist {
		fmt.Println("\n  quantum-size histogram (threads per quantum, log2 buckets)")
		for b, count := range sim.Gran.QuantumHist {
			if count == 0 {
				continue
			}
			lo := 1 << b
			hi := 1<<(b+1) - 1
			fmt.Printf("    %6d-%-8d %10d\n", lo, hi, count)
		}
		fmt.Printf("    largest quantum: %d threads\n", sim.Gran.MaxQuantum)
		fmt.Println("\n  dynamic opcode counts (top 12)")
		type oc struct {
			op    isa.Op
			count uint64
		}
		counts := sim.M.OpCounts()
		var all []oc
		for op := isa.Op(0); op < isa.NumOps; op++ {
			if counts[op] > 0 {
				all = append(all, oc{op, counts[op]})
			}
		}
		sort.Slice(all, func(i, j int) bool { return all[i].count > all[j].count })
		if len(all) > 12 {
			all = all[:12]
		}
		for _, e := range all {
			fmt.Printf("    %-8v %10d (%4.1f%%)\n", e.op, e.count,
				100*float64(e.count)/float64(res.Instructions))
		}
	}
}

// resultOf converts a finished simulation into the public Result shape.
func resultOf(sim *core.Sim, geom cache.Config) *jmtam.Result {
	res := &jmtam.Result{
		Program:      sim.Prog.Name,
		Impl:         sim.Impl,
		Instructions: sim.M.Instructions(),
		Reads:        sim.Collector.TotalReads(),
		Writes:       sim.Collector.TotalWrites(),
		Threads:      sim.Gran.Threads,
		Quanta:       sim.Gran.Quanta,
		TPQ:          sim.Gran.TPQ(),
		IPT:          sim.Gran.IPT(),
		IPQ:          sim.Gran.IPQ(),
	}
	for _, pr := range sim.Collector.Pairs {
		res.Caches = append(res.Caches, experiments.CacheStats{
			Config:     pr.I.Config(),
			IMisses:    pr.I.Stats().Misses,
			DMisses:    pr.D.Stats().Misses,
			Writebacks: pr.D.Stats().Writebacks,
		})
	}
	return res
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tamsim:", err)
	os.Exit(1)
}
