// Command benchjson regenerates Table 2 as a timed benchmark and writes
// the headline numbers to a machine-readable JSON file, so successive
// commits leave a comparable perf trail:
//
//	benchjson                      # writes BENCH_table2.json
//	benchjson -o /tmp/bench.json -scale paper
//	benchjson -distributed 2       # same sweep through the shard coordinator
//	benchjson -recording-bytes     # add packed vs compacted trace sizes
//	benchjson -o /tmp/b.json -baseline BENCH_table2.json -max-regress 10%
//
// The "quick" scale (the default) matches BenchmarkTable2 in the root
// package; "paper" runs the full benchmark arguments. With -distributed N
// the sweep is farmed out across N in-process tamsimd workers over
// loopback HTTP — same numbers, plus the coordinator and serving
// overhead in the timing.
//
// With -baseline, the fresh numbers are compared against a committed
// result file: the run fails (exit 1) when ms/op exceeds the baseline
// by more than -max-regress, or when any ratio column drifts at all —
// ratios are deterministic, so any change is a correctness bug, not
// noise. CI runs this as the perf gate.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"

	"jmtam/internal/cache"
	"jmtam/internal/core"
	"jmtam/internal/experiments"
	"jmtam/internal/server"
	"jmtam/internal/shard"
	"jmtam/internal/stats"
	"jmtam/internal/trace"
)

// result is the schema of BENCH_table2.json.
type result struct {
	Scale string `json:"scale"`
	// Distributed is the worker count when the sweep ran through the
	// shard coordinator; absent for the in-process path.
	Distributed int     `json:"distributed,omitempty"`
	MsPerOp     float64 `json:"ms_per_op"`
	// GeomeanRatio maps miss penalty (cycles) to the geometric-mean
	// MD/AM cycle ratio at the headline 8K 4-way geometry.
	GeomeanRatio map[string]float64 `json:"geomean_md_am_ratio_8k_4way"`
	// PerProgram maps workload name to its MD/AM ratio at miss 24.
	PerProgram map[string]float64 `json:"md_am_ratio_8k_4way_m24"`
	// BackendGeomean maps every registered non-MD backend's wire name
	// to the geometric-mean MD-relative cycle ratio (MD cycles over the
	// backend's; >1 means the backend wins) at 8K 4-way, miss 24. The
	// perf gate ignores it: new backends join the trail here without
	// perturbing the gated MD/AM columns above.
	BackendGeomean map[string]float64 `json:"md_relative_geomean_8k_4way_m24,omitempty"`
	// RecordingBytes tracks trace compaction per (workload, impl) when
	// run with -recording-bytes; absent otherwise. The perf gate ignores
	// it — sizes inform, they do not gate.
	RecordingBytes []recordingSize `json:"recording_bytes,omitempty"`
}

// recordingSize is one workload's trace footprint: packed 4 B/ref
// versus the compacted wire form.
type recordingSize struct {
	Program      string  `json:"program"`
	Impl         string  `json:"impl"`
	Refs         int     `json:"refs"`
	PackedBytes  int     `json:"packed_bytes"`
	CompactBytes int     `json:"compact_bytes"`
	Ratio        float64 `json:"ratio"`
}

func main() {
	out := flag.String("o", "BENCH_table2.json", "output file")
	scale := flag.String("scale", "quick", "workload scale: quick|paper")
	distributed := flag.Int("distributed", 0, "farm the sweep across N in-process workers over loopback HTTP (0 = run in-process)")
	baseline := flag.String("baseline", "", "committed result file to compare against (perf gate)")
	maxRegress := flag.String("max-regress", "10%", "ms/op regression tolerance vs -baseline, e.g. 10%")
	recBytes := flag.Bool("recording-bytes", false, "record each workload once per impl and report packed vs compacted trace sizes")
	flag.Parse()

	var ws []experiments.Workload
	switch *scale {
	case "quick":
		ws = experiments.QuickWorkloads()
	case "paper":
		ws = experiments.PaperWorkloads()
	default:
		fmt.Fprintf(os.Stderr, "benchjson: unknown -scale %q\n", *scale)
		os.Exit(1)
	}

	res := result{
		Scale:        *scale,
		Distributed:  *distributed,
		GeomeanRatio: map[string]float64{},
		PerProgram:   map[string]float64{},
	}
	if *distributed > 0 {
		benchDistributed(&res, ws, *distributed)
	} else {
		benchLocal(&res, ws)
	}
	if *recBytes {
		measureRecordingBytes(&res, ws)
	}
	measureBackendGeomean(&res, ws)

	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %.1f ms/op, geomean ratio (miss 24) %.4f\n",
		*out, res.MsPerOp, res.GeomeanRatio["miss24"])

	if *baseline != "" {
		if err := compareBaseline(&res, *baseline, *maxRegress); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: perf gate:", err)
			os.Exit(1)
		}
		fmt.Printf("perf gate: within %s of %s\n", *maxRegress, *baseline)
	}
}

// compareBaseline enforces the perf gate: ms/op may exceed the baseline
// by at most the given percentage, and every ratio present in both
// results must match exactly — the sweep is deterministic, so ratio
// drift means the simulator or cache model changed behavior.
func compareBaseline(res *result, path, tolerance string) error {
	pct, err := strconv.ParseFloat(strings.TrimSuffix(tolerance, "%"), 64)
	if err != nil || pct < 0 {
		return fmt.Errorf("bad -max-regress %q", tolerance)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base result
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if base.Scale != res.Scale {
		return fmt.Errorf("scale mismatch: baseline %q vs run %q", base.Scale, res.Scale)
	}
	if limit := base.MsPerOp * (1 + pct/100); res.MsPerOp > limit {
		return fmt.Errorf("ms/op regressed: %.1f vs baseline %.1f (limit %.1f)",
			res.MsPerOp, base.MsPerOp, limit)
	}
	for k, want := range base.GeomeanRatio {
		if got, ok := res.GeomeanRatio[k]; ok && got != want {
			return fmt.Errorf("geomean ratio %s drifted: %v vs baseline %v", k, got, want)
		}
	}
	for k, want := range base.PerProgram {
		if got, ok := res.PerProgram[k]; ok && got != want {
			return fmt.Errorf("per-program ratio %s drifted: %v vs baseline %v", k, got, want)
		}
	}
	return nil
}

func benchLocal(res *result, ws []experiments.Workload) {
	var ds *experiments.Dataset
	br := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var err error
			ds, err = experiments.DefaultSweep(ws).Execute()
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
		}
	})
	res.MsPerOp = float64(br.NsPerOp()) / 1e6
	for _, p := range ds.Sweep.Penalties {
		res.GeomeanRatio[fmt.Sprintf("miss%d", p)] = ds.GeoMeanRatio(8, 4, p)
	}
	for _, w := range ds.Sweep.Workloads {
		res.PerProgram[w.Name] = ds.Ratio(w.Name, 8, 4, 24)
	}
}

// measureBackendGeomean runs every registered backend once per
// workload at the headline geometry and records the untimed,
// ungated MD-relative geomean ratios (see result.BackendGeomean).
func measureBackendGeomean(res *result, ws []experiments.Workload) {
	geoms := []cache.Config{{SizeBytes: 8 * 1024, BlockBytes: 64, Assoc: 4}}
	ratios := map[string][]float64{}
	for _, w := range ws {
		md, err := experiments.RunOne(w, core.ImplMD, geoms, core.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		mdCycles := md.Cycles(0, 24, false)
		for _, b := range core.Backends() {
			if b.Impl == core.ImplMD {
				continue
			}
			r, err := experiments.RunOne(w, b.Impl, geoms, core.Options{})
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
			if c := r.Cycles(0, 24, false); c > 0 {
				ratios[b.Name] = append(ratios[b.Name], float64(mdCycles)/float64(c))
			}
		}
	}
	res.BackendGeomean = map[string]float64{}
	for name, xs := range ratios {
		res.BackendGeomean[name] = stats.GeoMean(xs)
	}
}

// measureRecordingBytes simulates each (workload, impl) once and
// reports the packed versus compacted trace footprint — the
// compaction win tracked alongside ms/op.
func measureRecordingBytes(res *result, ws []experiments.Workload) {
	for _, w := range ws {
		for _, impl := range []core.Impl{core.ImplMD, core.ImplAM} {
			_, rec, err := experiments.RecordOne(w, impl, core.Options{})
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
			info, err := trace.CompactStat(rec.Compact())
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
			res.RecordingBytes = append(res.RecordingBytes, recordingSize{
				Program:      w.Name,
				Impl:         impl.String(),
				Refs:         info.Refs,
				PackedBytes:  info.PackedBytes,
				CompactBytes: info.CompactBytes,
				Ratio:        info.Ratio(),
			})
		}
	}
}

// benchDistributed times the same grid through the shard coordinator
// against n in-process tamsimd workers on loopback HTTP, then derives
// the ratio tables from the position-indexed unit results.
func benchDistributed(res *result, ws []experiments.Workload, n int) {
	sw := experiments.DefaultSweep(ws)
	spec := &shard.Spec{
		SizesKB:    sw.SizesKB,
		Assocs:     sw.Assocs,
		BlockBytes: sw.BlockBytes,
		Penalties:  sw.Penalties,
		Impls:      []string{"md", "am"},
	}
	for _, w := range ws {
		spec.Workloads = append(spec.Workloads, shard.Workload{Program: w.Name, Arg: w.Arg})
	}
	var workers []string
	for i := 0; i < n; i++ {
		srv, err := server.New(server.Config{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		defer srv.Close()
		workers = append(workers, ts.URL)
	}
	coord := shard.New(shard.Config{Workers: workers})

	var units []shard.UnitResult
	br := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var err error
			units, err = coord.Run(context.Background(), spec)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
		}
	})
	res.MsPerOp = float64(br.NsPerOp()) / 1e6

	g84 := -1
	for i, g := range spec.CacheConfigs() {
		if g.SizeBytes == 8*1024 && g.Assoc == 4 {
			g84 = i
			break
		}
	}
	cycles := func(u shard.UnitResult, p int) uint64 {
		c := u.Caches[g84]
		return u.Instructions + uint64(p)*(c.IMisses+c.DMisses)
	}
	// Units are workload-major, impl-minor and spec.Impls is [md, am].
	for _, p := range spec.Penalties {
		var xs []float64
		for wi := range spec.Workloads {
			md, am := units[2*wi], units[2*wi+1]
			r := float64(cycles(md, p)) / float64(cycles(am, p))
			xs = append(xs, r)
			if p == 24 {
				res.PerProgram[md.Program] = r
			}
		}
		res.GeomeanRatio[fmt.Sprintf("miss%d", p)] = stats.GeoMean(xs)
	}
}
