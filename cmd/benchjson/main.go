// Command benchjson regenerates Table 2 as a timed benchmark and writes
// the headline numbers to a machine-readable JSON file, so successive
// commits leave a comparable perf trail:
//
//	benchjson                      # writes BENCH_table2.json
//	benchjson -o /tmp/bench.json -scale paper
//
// The "quick" scale (the default) matches BenchmarkTable2 in the root
// package; "paper" runs the full benchmark arguments.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"jmtam/internal/experiments"
)

// result is the schema of BENCH_table2.json.
type result struct {
	Scale   string  `json:"scale"`
	MsPerOp float64 `json:"ms_per_op"`
	// GeomeanRatio maps miss penalty (cycles) to the geometric-mean
	// MD/AM cycle ratio at the headline 8K 4-way geometry.
	GeomeanRatio map[string]float64 `json:"geomean_md_am_ratio_8k_4way"`
	// PerProgram maps workload name to its MD/AM ratio at miss 24.
	PerProgram map[string]float64 `json:"md_am_ratio_8k_4way_m24"`
}

func main() {
	out := flag.String("o", "BENCH_table2.json", "output file")
	scale := flag.String("scale", "quick", "workload scale: quick|paper")
	flag.Parse()

	var ws []experiments.Workload
	switch *scale {
	case "quick":
		ws = experiments.QuickWorkloads()
	case "paper":
		ws = experiments.PaperWorkloads()
	default:
		fmt.Fprintf(os.Stderr, "benchjson: unknown -scale %q\n", *scale)
		os.Exit(1)
	}

	var ds *experiments.Dataset
	br := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var err error
			ds, err = experiments.DefaultSweep(ws).Execute()
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
		}
	})

	res := result{
		Scale:        *scale,
		MsPerOp:      float64(br.NsPerOp()) / 1e6,
		GeomeanRatio: map[string]float64{},
		PerProgram:   map[string]float64{},
	}
	for _, p := range ds.Sweep.Penalties {
		res.GeomeanRatio[fmt.Sprintf("miss%d", p)] = ds.GeoMeanRatio(8, 4, p)
	}
	for _, w := range ds.Sweep.Workloads {
		res.PerProgram[w.Name] = ds.Ratio(w.Name, 8, 4, 24)
	}

	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %.1f ms/op, geomean ratio (miss 24) %.4f\n",
		*out, res.MsPerOp, res.GeomeanRatio["miss24"])
}
