// Command obsdiff renders two tamsimd metrics dumps side by side with
// deltas, so a before/after pair of /metricz scrapes — around a load
// run, a chaos drill, or a daemon restart — reads as one table instead
// of two walls of JSON:
//
//	curl -s localhost:8347/metricz > before.json
//	...run the experiment...
//	obsdiff before.json http://127.0.0.1:8347/metricz
//
// Each argument is a file path or an http(s) URL (fetched live).
// Counters and gauges print value → value with the delta; histograms
// print count, mean and the p50/p99 estimated from their sparse log2
// buckets. By default only rows that changed are shown; -all prints
// every metric in either dump, and -match filters rows to those whose
// name contains a substring:
//
//	obsdiff -match journal before.json after.json
//	obsdiff -all before.json after.json
//
// Exit status: 0 on success (even when nothing changed — the diff is a
// report, not an assertion), 2 on a fetch or parse failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"
)

// doc mirrors the obs.Registry WriteJSON document /metricz serves.
type doc struct {
	Counters   map[string]uint64    `json:"counters"`
	Gauges     map[string]gauge     `json:"gauges"`
	Histograms map[string]histogram `json:"histograms"`
}

type gauge struct {
	Value int64 `json:"value"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
}

type histogram struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Min     uint64   `json:"min"`
	Max     uint64   `json:"max"`
	Mean    float64  `json:"mean"`
	Buckets []bucket `json:"buckets"`
}

type bucket struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// percentile estimates the p-th percentile from the sparse log2
// buckets: the upper bound of the first bucket where the cumulative
// count reaches ceil(p/100 * N), clamped to the recorded max.
func (h histogram) percentile(p float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	target := uint64(math.Ceil(p / 100 * float64(h.Count)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for _, b := range h.Buckets {
		cum += b.Count
		if cum >= target {
			if b.Hi > h.Max {
				return h.Max
			}
			return b.Hi
		}
	}
	return h.Max
}

// load reads a metrics document from a file path or an http(s) URL.
func load(src string) (*doc, error) {
	var r io.ReadCloser
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		c := &http.Client{Timeout: 10 * time.Second}
		resp, err := c.Get(src)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, fmt.Errorf("%s: %s", src, resp.Status)
		}
		r = resp.Body
	} else {
		f, err := os.Open(src)
		if err != nil {
			return nil, err
		}
		r = f
	}
	defer r.Close()
	var d doc
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("%s: %w", src, err)
	}
	return &d, nil
}

// unionKeys returns the sorted union of both maps' keys, filtered by
// the -match substring.
func unionKeys[V any](a, b map[string]V, match string) []string {
	set := make(map[string]struct{}, len(a)+len(b))
	for k := range a {
		set[k] = struct{}{}
	}
	for k := range b {
		set[k] = struct{}{}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		if match == "" || strings.Contains(k, match) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// delta renders a signed difference, "" when zero.
func delta(d int64) string {
	if d == 0 {
		return ""
	}
	return fmt.Sprintf("%+d", d)
}

var (
	all   = flag.Bool("all", false, "print unchanged metrics too")
	match = flag.String("match", "", "only metrics whose name contains this substring")
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: obsdiff [-all] [-match substr] <before> <after>")
		fmt.Fprintln(os.Stderr, "  each argument is a /metricz JSON file or an http(s) URL")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	before, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "obsdiff:", err)
		os.Exit(2)
	}
	after, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "obsdiff:", err)
		os.Exit(2)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	changed := 0

	fmt.Fprintf(w, "COUNTER\tBEFORE\tAFTER\tDELTA\n")
	for _, k := range unionKeys(before.Counters, after.Counters, *match) {
		a, b := before.Counters[k], after.Counters[k]
		if a == b && !*all {
			continue
		}
		if a != b {
			changed++
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%s\n", k, a, b, delta(int64(b)-int64(a)))
	}

	fmt.Fprintf(w, "\nGAUGE\tBEFORE\tAFTER\tDELTA\tRANGE AFTER\n")
	for _, k := range unionKeys(before.Gauges, after.Gauges, *match) {
		a, b := before.Gauges[k], after.Gauges[k]
		if a == b && !*all {
			continue
		}
		if a != b {
			changed++
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%s\t[%d, %d]\n", k, a.Value, b.Value, delta(b.Value-a.Value), b.Min, b.Max)
	}

	fmt.Fprintf(w, "\nHISTOGRAM\tCOUNT\tΔCOUNT\tMEAN\tP50\tP99\tMAX\n")
	for _, k := range unionKeys(before.Histograms, after.Histograms, *match) {
		a, b := before.Histograms[k], after.Histograms[k]
		if a.Count == b.Count && a.Sum == b.Sum && !*all {
			continue
		}
		if a.Count != b.Count || a.Sum != b.Sum {
			changed++
		}
		fmt.Fprintf(w, "%s\t%d→%d\t%s\t%.1f→%.1f\t%d\t%d\t%d\n",
			k, a.Count, b.Count, delta(int64(b.Count)-int64(a.Count)),
			a.Mean, b.Mean, b.percentile(50), b.percentile(99), b.Max)
	}

	w.Flush()
	fmt.Printf("\n%d metric(s) changed\n", changed)
}
