// Command sweepctl drives a tamsimd daemon's sweep API from the shell:
//
//	sweepctl                                  # submit the quick grid, follow progress
//	sweepctl -scale paper -o table2.json      # full Table 2 grid, result to a file
//	sweepctl -f req.json -detail              # submit a hand-written request
//	sweepctl -status s-000001                 # poll one job
//	sweepctl -cancel s-000001                 # cancel one job
//	sweepctl -metricz                         # dump the daemon's metrics registry
//
// Submissions stream the job's NDJSON events: progress lines (including
// the coordinator's per-shard lease/retry/re-queue events when the
// daemon is sharding across workers) go to stderr, the final result
// document to stdout or -o. With -detach the job ID is printed
// immediately instead and the job keeps running on the daemon.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8347", "tamsimd base URL")
	scale := flag.String("scale", "quick", "workload scale when no -f request: quick|paper")
	reqFile := flag.String("f", "", "sweep request JSON file (\"-\" = stdin; overrides -scale)")
	detail := flag.Bool("detail", false, "request per-geometry miss statistics in the result")
	detach := flag.Bool("detach", false, "submit and print the job ID instead of streaming")
	out := flag.String("o", "", "write the final result document here (default stdout)")
	status := flag.String("status", "", "print one job's status and exit")
	cancel := flag.String("cancel", "", "cancel one job and exit")
	metricz := flag.Bool("metricz", false, "print the daemon's /metricz registry and exit")
	flag.Parse()

	base := strings.TrimRight(*addr, "/")
	switch {
	case *metricz:
		get(base + "/metricz")
	case *status != "":
		get(base + "/v1/runs/" + *status)
	case *cancel != "":
		del(base + "/v1/runs/" + *cancel)
	default:
		submit(base, *scale, *reqFile, *detail, *detach, *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweepctl:", err)
	os.Exit(1)
}

func get(url string) {
	resp, err := http.Get(url)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(os.Stdout, resp.Body)
	if resp.StatusCode != http.StatusOK {
		os.Exit(1)
	}
}

func del(url string) {
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(os.Stdout, resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		os.Exit(1)
	}
}

func buildRequest(scale, reqFile string, detail bool) ([]byte, error) {
	var req map[string]any
	switch reqFile {
	case "":
		req = map[string]any{"scale": scale}
	case "-":
		b, err := io.ReadAll(os.Stdin)
		if err != nil {
			return nil, err
		}
		if err := json.Unmarshal(b, &req); err != nil {
			return nil, err
		}
	default:
		b, err := os.ReadFile(reqFile)
		if err != nil {
			return nil, err
		}
		if err := json.Unmarshal(b, &req); err != nil {
			return nil, err
		}
	}
	if detail {
		req["detail"] = true
	}
	return json.Marshal(req)
}

func submit(base, scale, reqFile string, detail, detach bool, out string) {
	body, err := buildRequest(scale, reqFile, detail)
	if err != nil {
		fatal(err)
	}
	url := base + "/v1/sweeps"
	if detach {
		url += "?detach=1"
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		io.Copy(os.Stderr, resp.Body)
		os.Exit(1)
	}
	if detach {
		io.Copy(os.Stdout, resp.Body)
		return
	}

	// Follow the NDJSON stream: narrate progress on stderr, capture the
	// terminal line.
	var result json.RawMessage
	var terminal string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var ev struct {
			Type   string          `json:"type"`
			Error  string          `json:"error"`
			Result json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			fatal(fmt.Errorf("bad stream line %q: %w", line, err))
		}
		switch ev.Type {
		case "result":
			terminal, result = ev.Type, ev.Result
		case "error", "canceled":
			terminal = ev.Type
			fmt.Fprintf(os.Stderr, "sweepctl: job %s: %s\n", ev.Type, ev.Error)
		default:
			fmt.Fprintf(os.Stderr, "%s\n", line)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if terminal != "result" {
		os.Exit(1)
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, result, "", "  "); err != nil {
		fatal(err)
	}
	buf.WriteByte('\n')
	if out == "" {
		os.Stdout.Write(buf.Bytes())
		return
	}
	if err := os.WriteFile(out, buf.Bytes(), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sweepctl: result written to %s\n", out)
}
