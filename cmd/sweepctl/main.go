// Command sweepctl drives a tamsimd daemon's sweep API from the shell:
//
//	sweepctl                                  # submit the quick grid, follow progress
//	sweepctl -scale paper -o table2.json      # full Table 2 grid, result to a file
//	sweepctl -f req.json -detail              # submit a hand-written request
//	sweepctl -key $TAMSIM_KEY                 # authenticate against a tenanted daemon
//	sweepctl -status s-000001                 # poll one job
//	sweepctl -cancel s-000001                 # cancel one job
//	sweepctl -metricz                         # dump the daemon's metrics registry
//
// Requests and stream events are the root api package's types end to
// end. Submissions stream the job's NDJSON events: progress lines
// (including the coordinator's per-shard lease/retry/re-queue events
// when the daemon is sharding across workers, and "cached" lines when
// the fleet result cache serves the job) go to stderr, the final
// result document to stdout or -o. With -detach the job ID is printed
// immediately instead and the job keeps running on the daemon.
//
// Failures branch on the daemon's structured error envelope: a
// retryable rejection (quota_exhausted, unavailable, internal)
// resubmits after the server's Retry-After (or a short default) up to
// -retries times; bad_request and friends fail immediately.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"jmtam/api"
	"jmtam/internal/core"
)

var apiKey string

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8347", "tamsimd base URL")
	scale := flag.String("scale", "quick", "workload scale when no -f request: quick|paper")
	reqFile := flag.String("f", "", "sweep request JSON file (\"-\" = stdin; overrides -scale)")
	detail := flag.Bool("detail", false, "request per-geometry miss statistics in the result")
	detach := flag.Bool("detach", false, "submit and print the job ID instead of streaming")
	out := flag.String("o", "", "write the final result document here (default stdout)")
	status := flag.String("status", "", "print one job's status and exit")
	cancel := flag.String("cancel", "", "cancel one job and exit")
	metricz := flag.Bool("metricz", false, "print the daemon's /metricz registry and exit")
	key := flag.String("key", os.Getenv("TAMSIM_API_KEY"), "API key for a tenanted daemon (default $TAMSIM_API_KEY)")
	retries := flag.Int("retries", 4, "max resubmissions of a retryable rejection (quota, unavailable)")
	implsArg := flag.String("impls", "", "comma-separated backends to sweep (known: "+strings.Join(core.BackendNames(), ", ")+"; empty = daemon default md,am)")
	flag.Parse()
	apiKey = *key

	impls, err := implList(*implsArg)
	if err != nil {
		fatal(err)
	}

	base := strings.TrimRight(*addr, "/")
	switch {
	case *metricz:
		get(base + "/metricz")
	case *status != "":
		get(base + "/v1/runs/" + *status)
	case *cancel != "":
		del(base + "/v1/runs/" + *cancel)
	default:
		submit(base, *scale, *reqFile, impls, *detail, *detach, *out, *retries)
	}
}

// implList validates -impls against the backend registry before the
// request leaves the client, so typos fail with the full list of known
// backends instead of a round-trip to the daemon.
func implList(arg string) ([]string, error) {
	if arg == "" {
		return nil, nil
	}
	impls, err := core.ParseImpls(arg)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(impls))
	for i, impl := range impls {
		names[i] = impl.Name()
	}
	return names, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweepctl:", err)
	os.Exit(1)
}

// do sends req with the API key attached and decodes a non-2xx
// response into the structured error.
func do(req *http.Request) (*http.Response, *api.Error) {
	if apiKey != "" {
		req.Header.Set("Authorization", "Bearer "+apiKey)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, &api.Error{Code: api.CodeUnavailable, Message: err.Error(), Retryable: true}
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return resp, nil
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	apiErr := api.DecodeError(resp.StatusCode, body)
	apiErr.Status = resp.StatusCode
	retryAfter = resp.Header.Get("Retry-After")
	return nil, apiErr
}

// retryAfter holds the last response's Retry-After header; sweepctl is
// a single-flight CLI, so a package-level slot is fine.
var retryAfter string

func retryDelay(attempt int) time.Duration {
	if secs, err := strconv.Atoi(retryAfter); err == nil && secs > 0 {
		return time.Duration(secs) * time.Second
	}
	return time.Duration(attempt+1) * time.Second
}

func get(url string) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		fatal(err)
	}
	resp, apiErr := do(req)
	if apiErr != nil {
		fatal(apiErr)
	}
	defer resp.Body.Close()
	io.Copy(os.Stdout, resp.Body)
}

func del(url string) {
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		fatal(err)
	}
	resp, apiErr := do(req)
	if apiErr != nil {
		fatal(apiErr)
	}
	defer resp.Body.Close()
	io.Copy(os.Stdout, resp.Body)
}

// buildRequest assembles the typed sweep request: the -scale preset,
// or a request document from a file/stdin (strictly validated against
// api.SweepRequest — unknown fields are an error here, not on the
// daemon).
func buildRequest(scale, reqFile string, impls []string, detail bool) ([]byte, error) {
	var req api.SweepRequest
	switch reqFile {
	case "":
		req.Scale = scale
	default:
		var raw []byte
		var err error
		if reqFile == "-" {
			raw, err = io.ReadAll(os.Stdin)
		} else {
			raw, err = os.ReadFile(reqFile)
		}
		if err != nil {
			return nil, err
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return nil, fmt.Errorf("%s: %w", reqFile, err)
		}
	}
	if len(impls) > 0 {
		req.Impls = impls
	}
	if detail {
		req.Detail = true
	}
	return json.Marshal(req)
}

func submit(base, scale, reqFile string, impls []string, detail, detach bool, out string, retries int) {
	body, err := buildRequest(scale, reqFile, impls, detail)
	if err != nil {
		fatal(err)
	}
	url := base + "/v1/sweeps"
	if detach {
		url += "?detach=1"
	}
	var resp *http.Response
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		var apiErr *api.Error
		resp, apiErr = do(req)
		if apiErr == nil {
			break
		}
		if !apiErr.Retryable || attempt >= retries {
			fatal(apiErr)
		}
		d := retryDelay(attempt)
		fmt.Fprintf(os.Stderr, "sweepctl: %s; retrying in %s (%d/%d)\n", apiErr, d, attempt+1, retries)
		time.Sleep(d)
	}
	defer resp.Body.Close()
	if detach {
		io.Copy(os.Stdout, resp.Body)
		return
	}

	// Follow the NDJSON stream: narrate progress on stderr, capture the
	// terminal line.
	var result json.RawMessage
	var terminal string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var ev api.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			fatal(fmt.Errorf("bad stream line %q: %w", line, err))
		}
		switch ev.Type {
		case api.EventResult:
			terminal, result = ev.Type, ev.Result
		case api.EventError, api.EventCanceled:
			terminal = ev.Type
			fmt.Fprintf(os.Stderr, "sweepctl: job %s: %s\n", ev.Type, ev.Error)
		case api.EventCached:
			fmt.Fprintf(os.Stderr, "sweepctl: result served from %s cache (%s)\n", ev.Source, ev.Key[:12])
		default:
			fmt.Fprintf(os.Stderr, "%s\n", line)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if terminal != api.EventResult {
		os.Exit(1)
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, result, "", "  "); err != nil {
		fatal(err)
	}
	buf.WriteByte('\n')
	if out == "" {
		os.Stdout.Write(buf.Bytes())
		return
	}
	if err := os.WriteFile(out, buf.Bytes(), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sweepctl: result written to %s\n", out)
}
