// Command experiments regenerates the paper's evaluation artifacts:
//
//	experiments -run all -scale quick
//	experiments -run table2 -scale paper
//	experiments -run figure5
//
// Artifacts: table1 (TAM construct mapping), table2 (granularity and
// cycle ratios), figure2 (enabled/unenabled AM ablation), figure3-6
// (MD/AM cycle-ratio charts), accessratios (§3.1), blocksweep (block-size
// ablation), assocsweep (associativity ablation up to 16-way).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"jmtam"
	"jmtam/internal/cache"
	"jmtam/internal/core"
	"jmtam/internal/experiments"
	"jmtam/internal/report"
)

func main() {
	runArg := flag.String("run", "all", "artifact to regenerate: table1|table2|figure2|figure3|figure4|figure5|figure6|accessratios|blocksweep|assocsweep|victimsweep|mdopt|oam|classes|mix|penalties|noderatio|all")
	scale := flag.String("scale", "quick", "problem sizes: quick|paper")
	format := flag.String("format", "text", "figure output: text (ASCII charts) | csv (figure,penalty,series,sizeKB,ratio rows)")
	par := flag.Int("parallel", 0, "concurrent simulations and trace replays (0 = GOMAXPROCS); results are identical at any setting")
	metricsDir := flag.String("metrics-dir", "", "collect per-run observability metrics during the sweep and write one registry JSON dump per (workload, implementation) into this directory")
	nodes := flag.Int("nodes", 1, "mesh node count for the cache sweep artifacts (power of two, at most 64); >1 runs every workload on an N-node mesh (e.g. Table 2 at N=4)")
	placementName := flag.String("placement", "round-robin", "frame placement policy for -nodes > 1: round-robin|local")
	implsArg := flag.String("impls", "md,am,offload,aa", "comma-separated backends for the noderatio and victimsweep artifacts (known: "+strings.Join(core.BackendNames(), ", ")+")")
	flag.Parse()

	placement, err := core.ParsePlacement(*placementName)
	if err != nil {
		check(err)
	}

	impls, err := core.ParseImpls(*implsArg)
	if err != nil {
		check(err)
	}

	var ws []experiments.Workload
	switch *scale {
	case "quick":
		ws = experiments.QuickWorkloads()
	case "paper":
		ws = experiments.PaperWorkloads()
	default:
		fmt.Fprintf(os.Stderr, "unknown -scale %q\n", *scale)
		os.Exit(2)
	}

	want := func(name string) bool { return *runArg == "all" || *runArg == name }
	needSweep := false
	for _, n := range []string{"table2", "figure3", "figure4", "figure5", "figure6", "accessratios", "penalties"} {
		if want(n) {
			needSweep = true
		}
	}

	if want("table1") {
		fmt.Println("Table 1: mapping of TAM constructs to the J-Machine")
		fmt.Printf("%-22s  %-34s  %s\n", "TAM Mechanism", "AM Implementation", "MD Implementation")
		fmt.Println(strings.Repeat("-", 92))
		for _, r := range core.Mapping() {
			fmt.Printf("%-22s  %-34s  %s\n", r.Mechanism, r.AM, r.MD)
		}
		fmt.Println()
	}

	if needSweep {
		sweep := experiments.DefaultSweep(ws)
		sweep.Parallelism = *par
		sweep.CollectMetrics = *metricsDir != ""
		sweep.Options.Nodes = *nodes
		sweep.Options.Placement = placement
		meshNote := ""
		if *nodes > 1 {
			meshNote = fmt.Sprintf(" on %d-node meshes", *nodes)
		}
		fmt.Printf("running sweep over %d workloads x %d backends x %d cache geometries%s...\n\n",
			len(ws), len(sweep.Impls), len(sweep.SizesKB)*len(sweep.Assocs), meshNote)
		ds, err := sweep.Execute()
		check(err)
		if *metricsDir != "" {
			check(dumpMetrics(*metricsDir, ds))
		}
		if want("table2") {
			fmt.Println("Table 2: granularity and MD/AM cycle ratios (8K 4-way, miss 12/24/48)")
			fmt.Print(jmtam.ReportTable2(ds))
			fmt.Println()
		}
		if want("penalties") {
			pens := []int{12, 24, 48, 96, 192, 384, 768}
			series := experiments.PenaltySweep(ds, 32, 4, pens)
			fmt.Print(report.ChartUnits("Penalty sweep: MD/AM ratio vs miss penalty (32K 4-way)", series, ""))
			for _, w := range ws {
				p := experiments.CrossoverPenalty(ds, w.Name, 32, 4, pens)
				if p > 0 {
					fmt.Printf("  %s: AM overtakes MD at miss penalty >= %d cycles\n", w.Name, p)
				} else {
					fmt.Printf("  %s: MD wins at every candidate penalty\n", w.Name)
				}
			}
			fmt.Println()
		}
		if want("accessratios") {
			fmt.Println("§3.1: MD accesses as a fraction of AM's (paper: 86% / 87% / 77%)")
			fmt.Print(jmtam.ReportAccessRatios(ds))
			fmt.Println()
		}
		if *format == "csv" {
			fmt.Println("figure,penalty,series,sizeKB,ratio")
			if want("figure3") {
				emitCSV("figure3", experiments.Figure3(ds))
			}
			if want("figure4") {
				emitCSV("figure4", experiments.Figure4(ds))
			}
			if want("figure5") {
				emitCSV("figure5", experiments.Figure5(ds))
			}
			if want("figure6") {
				for _, s := range experiments.Figure6(ds) {
					for i, kb := range s.SizesKB {
						fmt.Printf("figure6,,%s,%d,%.6f\n", s.Label, kb, s.Ratios[i])
					}
				}
			}
		} else {
			if want("figure3") {
				fmt.Print(jmtam.ReportFigure3(ds))
			}
			if want("figure4") {
				fmt.Print(jmtam.ReportFigure4(ds))
			}
			if want("figure5") {
				fmt.Print(jmtam.ReportFigure5(ds))
			}
			if want("figure6") {
				fmt.Print(jmtam.ReportFigure6(ds))
			}
		}
	}

	if want("figure2") {
		rows, err := experiments.EnabledAblation(ws, core.Options{}, *par)
		check(err)
		fmt.Println("Figure 2 ablation: unenabled vs enabled AM (uniprocessor anomaly)")
		fmt.Print(report.Enabled(rows))
		fmt.Println()
	}

	if want("blocksweep") {
		rows, err := experiments.BlockSweep(ws, core.Options{}, *par)
		check(err)
		fmt.Println("Block-size ablation (8K 4-way, miss 24; paper used 64B blocks)")
		fmt.Print(report.Blocks(rows))
		fmt.Println()
	}

	if want("assocsweep") {
		rows, err := experiments.AssocSweep(ws, core.Options{}, *par)
		check(err)
		fmt.Println("Associativity ablation (8K/64B, miss 24; residual gap at 16-way is not conflict misses)")
		fmt.Print(report.Assocs(rows))
		fmt.Println()
	}

	if want("victimsweep") {
		rows, err := experiments.VictimSweep(ws, impls, nil, core.Options{}, *par)
		check(err)
		fmt.Println("Victim-cache ablation (8K direct-mapped + N-entry victim buffer, 64B blocks)")
		fmt.Print(report.Victims(rows))
		fmt.Println()
	}

	if want("mdopt") {
		rows, err := experiments.MDOptAblation(ws, core.Options{}, *par)
		check(err)
		fmt.Println("§2.3 optimization ablation: MD with vs without the static optimizations")
		fmt.Print(report.MDOpt(rows))
		fmt.Println()
	}

	if want("classes") {
		rows, err := experiments.ClassBreakdown(ws, core.Options{}, *par)
		check(err)
		fmt.Println("System/user reference mix (§3.1 memory division)")
		fmt.Print(report.Classes(rows))
		fmt.Println()
	}

	if want("mix") {
		rows, err := experiments.InstructionMix(ws, core.Options{}, *par)
		check(err)
		fmt.Println("Dynamic instruction mix")
		fmt.Print(report.Mix(rows))
		fmt.Println()
	}

	if want("noderatio") {
		geom := cache.Config{SizeBytes: 8 * 1024, BlockBytes: 64, Assoc: 4}
		counts := []int{1, 2, 4, 8}
		opt := core.Options{Placement: placement}
		rows, err := experiments.NodeRatioSweep(ws, impls, counts, geom, 24, opt, *par)
		check(err)
		fmt.Println("Multi-node: MD-relative cycle ratio vs node count (8K 4-way per node, miss 24)")
		fmt.Print(report.NodeRatios(rows))
		fmt.Println()
		hops, err := experiments.HopLatencySweep(ws, impls, 4, []uint64{1, 2, 4, 8, 16}, opt, *par)
		check(err)
		fmt.Println("Multi-node: MD-relative elapsed-tick ratio vs per-hop delay (4 nodes)")
		fmt.Print(report.HopLatency(hops))
		fmt.Println()
	}

	if want("oam") {
		rows, err := experiments.OAMComparison(ws, core.Options{}, *par)
		check(err)
		fmt.Println("Optimistic-AM hybrid (§2.4 / [KWW+94]): MD vs OAM vs AM (8K 4-way, miss 24)")
		fmt.Print(report.OAM(rows))
	}
}

// dumpMetrics writes one registry JSON dump per (workload,
// implementation) run of the sweep into dir, named
// <workload>_<impl>.json.
func dumpMetrics(dir string, ds *experiments.Dataset) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, w := range ds.Sweep.Workloads {
		for impl, r := range ds.Runs[w.Name] {
			if r == nil || r.Metrics == nil {
				continue
			}
			path := filepath.Join(dir, fmt.Sprintf("%s_%s.json", w.Name, impl))
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := r.Metrics.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
	return nil
}

// emitCSV prints one figure's series as CSV rows.
func emitCSV(name string, byPenalty map[int][]jmtam.Series) {
	pens := make([]int, 0, len(byPenalty))
	for p := range byPenalty {
		pens = append(pens, p)
	}
	sort.Ints(pens)
	for _, p := range pens {
		for _, s := range byPenalty[p] {
			for i, kb := range s.SizesKB {
				fmt.Printf("%s,%d,%s,%d,%.6f\n", name, p, s.Label, kb, s.Ratios[i])
			}
		}
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
