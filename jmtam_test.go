package jmtam

import (
	"strings"
	"testing"
)

func TestBenchmarkNames(t *testing.T) {
	names := BenchmarkNames()
	want := []string{"mmt", "qs", "dtw", "paraffins", "wavefront", "ss"}
	if len(names) != len(want) {
		t.Fatalf("got %d names, want %d", len(names), len(want))
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("names[%d] = %q, want %q", i, names[i], n)
		}
	}
}

func TestRunVerifies(t *testing.T) {
	res, err := Run(MD, Benchmark("ss", 30), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions == 0 || res.Threads == 0 {
		t.Errorf("empty result: %+v", res)
	}
}

func TestRunWithCaches(t *testing.T) {
	geoms := []CacheConfig{
		{SizeBytes: 1024, BlockBytes: 64, Assoc: 1},
		{SizeBytes: 8192, BlockBytes: 64, Assoc: 4},
	}
	res, err := Run(AM, Benchmark("qs", 40), Options{}, geoms...)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Caches) != 2 {
		t.Fatalf("got %d cache results, want 2", len(res.Caches))
	}
	small := res.Cycles(0, 24)
	big := res.Cycles(1, 24)
	if small < big {
		t.Errorf("1K cache cycles %d < 8K cache cycles %d", small, big)
	}
	if res.Cycles(1, 48) < res.Cycles(1, 12) {
		t.Error("higher miss penalty produced fewer cycles")
	}
}

func TestCompareAt(t *testing.T) {
	geom := CacheConfig{SizeBytes: 8192, BlockBytes: 64, Assoc: 4}
	ratio, err := CompareAt(func() *Program { return Benchmark("ss", 60) }, geom, 24, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ratio <= 0 || ratio >= 1.2 {
		t.Errorf("SS MD/AM ratio = %.2f, expected MD to win (paper: 0.86)", ratio)
	}
}

func TestBenchmarkPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Benchmark(\"nope\") did not panic")
		}
	}()
	Benchmark("nope", 1)
}

func TestQuickSweepReports(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short mode")
	}
	sw := NewQuickSweep()
	ds, err := sw.Execute()
	if err != nil {
		t.Fatal(err)
	}
	table := ReportTable2(ds)
	for _, name := range BenchmarkNames() {
		if !strings.Contains(table, name) {
			t.Errorf("Table 2 missing %s:\n%s", name, table)
		}
	}
	for _, s := range []string{ReportFigure3(ds), ReportFigure4(ds), ReportFigure5(ds), ReportFigure6(ds)} {
		if !strings.Contains(s, "legend:") {
			t.Error("figure rendering missing legend")
		}
	}
	if r := ds.GeoMeanRatio(8, 4, 12); r <= 0 || r >= 1 {
		t.Errorf("geomean ratio at 8K/4-way/12 = %.2f; MD should win (paper Figure 3)", r)
	}
	// Direct-mapped caches favour MD (paper §3.3.2).
	if dm, sa := ds.GeoMeanRatio(8, 1, 24), ds.GeoMeanRatio(8, 4, 24); dm >= sa {
		t.Errorf("direct-mapped ratio %.3f not below 4-way ratio %.3f", dm, sa)
	}
	// AM gains as the miss penalty grows (paper §3.3).
	if r12, r48 := ds.GeoMeanRatio(8, 4, 12), ds.GeoMeanRatio(8, 4, 48); r48 <= r12 {
		t.Errorf("ratio at miss 48 (%.3f) not above ratio at miss 12 (%.3f)", r48, r12)
	}
}

func TestWordHelpers(t *testing.T) {
	if Int(5).AsInt() != 5 || Float(1.5).AsFloat() != 1.5 || Ptr(64).Addr() != 64 {
		t.Error("word helpers broken")
	}
}

func TestBuildFacade(t *testing.T) {
	sim, err := Build(MD, Benchmark("ss", 20), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Collector.AddPair(CacheConfig{SizeBytes: 1024, BlockBytes: 64, Assoc: 1}); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNewPaperSweepShape(t *testing.T) {
	sw := NewPaperSweep()
	if len(sw.Workloads) != 6 || len(sw.SizesKB) != 8 || len(sw.Assocs) != 3 {
		t.Errorf("paper sweep shape wrong: %+v", sw)
	}
	if sw.BlockBytes != 64 {
		t.Errorf("block = %d", sw.BlockBytes)
	}
	for _, w := range sw.Workloads {
		if w.Name == "mmt" && w.Arg != 50 {
			t.Errorf("paper mmt arg = %d", w.Arg)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(MD, Benchmark("ss", 10), Options{},
		CacheConfig{SizeBytes: 3, BlockBytes: 64, Assoc: 1}); err == nil {
		t.Error("bad geometry accepted")
	}
	if _, err := Run(MD, Benchmark("ss", 10), Options{MaxInstructions: 5}); err == nil {
		t.Error("instruction limit not surfaced")
	}
}
