package programs

import (
	"fmt"

	"jmtam/internal/core"
	"jmtam/internal/word"
)

// Paraffins builds the paraffins benchmark [AHN88]: counting the
// distinct isomers of the paraffins C_k H_{2k+2} for k = 1..n.
//
// The computation follows the classic radical/centroid decomposition.
// rad[s] counts the radicals of size s (rooted trees whose root bonds up
// to three sub-radicals):
//
//	rad[0] = 1
//	rad[s] = sum over i<=j<=k, i+j+k = s-1 of multiset(rad[i],rad[j],rad[k])
//
// and the paraffin count p(n) decomposes around the centroid: an atom
// bonding four radicals of size <= floor((n-1)/2) summing to n-1, plus —
// for even n — a centroid bond joining an unordered pair of radicals of
// size exactly n/2.
//
// One activation computes each rad[s] and each p(n); all activations are
// spawned eagerly and sequence themselves purely through split-phase
// fetches of the shared rad[] I-structure vector (a fetch of a
// not-yet-computed count simply defers), which makes paraffins the most
// dataflow-ish of the six benchmarks.
func Paraffins(n int) *core.Program {
	if n < 1 {
		panic("paraffins: n must be >= 1")
	}

	// --- radical codeblock: computes rad[s] --------------------------------
	// Slots: 0=s, 1=radBase, 2=i, 3=j, 4=k, 5=acc, 6..8=r values.
	radcb := &core.Codeblock{
		Name: "rad", NumCounts: 1, InitCounts: []int64{3}, NumSlots: 9,
	}
	var rIter, rTerm *core.Thread
	var rIn [3]*core.Inlet

	rIter = radcb.AddThread("iter", -1, func(b *core.Body) {
		b.LDSlot(0, 0) // s
		b.SubI(0, 0, 1)
		b.LDSlot(1, 2) // i
		b.Sub(0, 0, 1)
		b.LDSlot(2, 3) // j
		b.Sub(0, 0, 2) // k = s-1-i-j
		b.BLT(0, 2, "rad.advi")
		// Valid term (i, j, k): fetch the three radical counts.
		b.STSlot(4, 0) // k
		b.SetCountImm(0, 3)
		b.MulI(0, 1, 4)
		b.LDSlot(5, 1) // radBase
		b.Add(0, 0, 5)
		b.IFetch(0, rIn[0]) // rad[i]
		b.LDSlot(0, 3)
		b.MulI(0, 0, 4)
		b.Add(0, 0, 5)
		b.IFetch(0, rIn[1]) // rad[j]
		b.LDSlot(0, 4)
		b.MulI(0, 0, 4)
		b.Add(0, 0, 5)
		b.IFetch(0, rIn[2]) // rad[k]
		b.Stop()
		b.Case("rad.advi")
		// j exhausted for this i: advance i, reset j.
		b.AddI(1, 1, 1)
		b.STSlot(2, 1)
		b.STSlot(3, 1) // j = i
		b.MulI(1, 1, 3)
		b.LDSlot(0, 0)
		b.SubI(0, 0, 1)
		b.BLE(1, 0, "rad.goon") // 3i <= s-1: more terms
		// Finished: rad[s] = acc.
		b.LDSlot(0, 0)
		b.MulI(0, 0, 4)
		b.LDSlot(1, 1)
		b.Add(0, 0, 1)
		b.LDSlot(1, 5)
		b.IStore(0, 1)
		b.ReleaseFrame()
		b.Stop()
		b.Case("rad.goon")
		b.ForkEnd(rIter)
	})

	// multisetWalk emits the run-length multiset-coefficient walk over
	// the sorted sizes in sizeSlots with radical counts in rSlots,
	// accumulating the product into R0 (initialized to 1). Uses
	// R1=prev, R2=m, R5=z, R7=r.
	multisetWalk := func(b *core.Body, tag string, sizeSlots, rSlots []int) {
		b.MovI(0, 1)
		b.MovI(1, -1)
		b.MovI(2, 0)
		for u := range sizeSlots {
			lnew := fmt.Sprintf("%s.new%d", tag, u)
			lcalc := fmt.Sprintf("%s.calc%d", tag, u)
			b.LDSlot(5, sizeSlots[u])
			b.LDSlot(7, rSlots[u])
			b.BNE(5, 1, lnew)
			b.AddI(2, 2, 1)
			b.BR(lcalc)
			b.Case(lnew)
			b.MovI(2, 1)
			b.Mov(1, 5)
			b.Case(lcalc)
			// acc = acc * (r + m - 1) / m  (exact: builds C(r+m-1, m))
			b.Add(7, 7, 2)
			b.SubI(7, 7, 1)
			b.Mul(0, 0, 7)
			b.Div(0, 0, 2)
		}
	}

	rTerm = radcb.AddThread("term", 0, func(b *core.Body) {
		multisetWalk(b, "rad.ms", []int{2, 3, 4}, []int{6, 7, 8})
		b.LDSlot(1, 5)
		b.Add(1, 1, 0)
		b.STSlot(5, 1) // acc += term
		b.LDSlot(1, 3)
		b.AddI(1, 1, 1)
		b.STSlot(3, 1) // j++
		b.ForkEnd(rIter)
	})

	for u := 0; u < 3; u++ {
		slot := 6 + u
		rIn[u] = radcb.AddInlet(fmt.Sprintf("r%d", u), func(b *core.Body) {
			b.Arg(0, 0)
			b.STSlot(slot, 0)
			b.PostEnd(rTerm)
		})
	}
	var rInit *core.Thread
	rInit = radcb.AddThread("init", -1, func(b *core.Body) {
		b.MovI(0, 0)
		b.STSlot(2, 0) // i = 0
		b.STSlot(3, 0) // j = 0
		b.STSlot(5, 0) // acc = 0
		b.ForkEnd(rIter)
	})
	radStart := radcb.AddInlet("start", func(b *core.Body) {
		b.Arg(0, 0)
		b.STSlot(0, 0) // s
		b.Arg(0, 1)
		b.STSlot(1, 0) // radBase
		b.PostEnd(rInit)
	})

	// --- paraffin codeblock: computes p(nn) ---------------------------------
	// Slots: 0=nn, 1=radBase, 2=presBase, 3=i, 4=j, 5=k, 6=l, 7=acc,
	// 8=bound, 9..12=r values.
	parcb := &core.Codeblock{
		Name: "par", NumCounts: 1, InitCounts: []int64{4}, NumSlots: 13,
	}
	var pIter, pTerm, pBond, pFinish *core.Thread
	var pIn [4]*core.Inlet
	var iBond *core.Inlet

	pIter = parcb.AddThread("iter", -1, func(b *core.Body) {
		b.LDSlot(0, 0) // nn
		b.SubI(0, 0, 1)
		b.LDSlot(1, 3) // i
		b.Sub(0, 0, 1)
		b.LDSlot(2, 4) // j
		b.Sub(0, 0, 2)
		b.LDSlot(5, 5) // k
		b.Sub(0, 0, 5) // l = nn-1-i-j-k
		b.BLT(0, 5, "par.advj")
		b.LDSlot(7, 8) // bound
		b.BGT(0, 7, "par.inck")
		// Valid term (i, j, k, l).
		b.STSlot(6, 0) // l
		b.SetCountImm(0, 4)
		b.LDSlot(7, 1) // radBase
		b.MulI(0, 1, 4)
		b.Add(0, 0, 7)
		b.IFetch(0, pIn[0])
		b.MulI(0, 2, 4)
		b.Add(0, 0, 7)
		b.IFetch(0, pIn[1])
		b.MulI(0, 5, 4)
		b.Add(0, 0, 7)
		b.IFetch(0, pIn[2])
		b.LDSlot(0, 6)
		b.MulI(0, 0, 4)
		b.Add(0, 0, 7)
		b.IFetch(0, pIn[3])
		b.Stop()
		b.Case("par.inck")
		// l > bound: k is too small; increase k.
		b.AddI(5, 5, 1)
		b.STSlot(5, 5)
		b.ForkEnd(pIter)
		b.Case("par.advj")
		// k exhausted: advance j, reset k; maybe advance i.
		b.AddI(2, 2, 1)
		b.STSlot(4, 2)
		b.STSlot(5, 2) // k = j
		b.Mov(0, 2)
		b.MulI(0, 0, 3)
		b.Add(0, 0, 1) // i + 3j
		b.LDSlot(7, 0)
		b.SubI(7, 7, 1)
		b.BLE(0, 7, "par.goon")
		b.AddI(1, 1, 1)
		b.STSlot(3, 1)
		b.STSlot(4, 1) // j = i
		b.STSlot(5, 1) // k = i
		b.MulI(0, 1, 4)
		b.BLE(0, 7, "par.goon") // 4i <= nn-1
		b.ForkEnd(pFinish)
		b.Case("par.goon")
		b.ForkEnd(pIter)
	})

	pTerm = parcb.AddThread("term", 0, func(b *core.Body) {
		multisetWalk(b, "par.ms", []int{3, 4, 5, 6}, []int{9, 10, 11, 12})
		b.LDSlot(1, 7)
		b.Add(1, 1, 0)
		b.STSlot(7, 1) // acc += term
		b.LDSlot(5, 5)
		b.AddI(5, 5, 1)
		b.STSlot(5, 5) // k++
		b.ForkEnd(pIter)
	})

	pFinish = parcb.AddThread("finish", -1, func(b *core.Body) {
		b.LDSlot(0, 0)
		b.AndI(1, 0, 1)
		b.BZ(1, "par.even")
		b.ForkEnd(pBond) // odd sizes have no centroid bond; pBond stores
		b.Case("par.even")
		// Fetch rad[nn/2] for the centroid-bond term.
		b.ShrI(0, 0, 1)
		b.MulI(0, 0, 4)
		b.LDSlot(1, 1)
		b.Add(0, 0, 1)
		b.IFetch(0, iBond)
		b.Stop()
	})

	// pBond adds the centroid-bond pairs (even nn) and stores p(nn).
	// For odd nn it is forked directly with no bond value; slot 9 = -1
	// signals "no bond" and is set by pFinish? Instead the bond value
	// arrives via iBond only for even nn; for odd nn pBond is entered
	// through the fork with slot 9 untouched, so the store path is
	// selected by re-testing parity.
	pBond = parcb.AddThread("bond", -1, func(b *core.Body) {
		b.LDSlot(0, 0)
		b.AndI(1, 0, 1)
		b.BNZ(1, "par.store")
		// acc += r*(r+1)/2 where r = rad[nn/2] (in slot 9).
		b.LDSlot(1, 9)
		b.AddI(2, 1, 1)
		b.Mul(1, 1, 2)
		b.MovI(2, 2)
		b.Div(1, 1, 2)
		b.LDSlot(2, 7)
		b.Add(2, 2, 1)
		b.STSlot(7, 2)
		b.Case("par.store")
		b.LDSlot(0, 0)
		b.MulI(0, 0, 4)
		b.LDSlot(1, 2) // presBase
		b.Add(0, 0, 1)
		b.LDSlot(1, 7)
		b.IStore(0, 1)
		b.ReleaseFrame()
		b.Stop()
	})

	for u := 0; u < 4; u++ {
		slot := 9 + u
		pIn[u] = parcb.AddInlet(fmt.Sprintf("r%d", u), func(b *core.Body) {
			b.Arg(0, 0)
			b.STSlot(slot, 0)
			b.PostEnd(pTerm)
		})
	}
	iBond = parcb.AddInlet("bondr", func(b *core.Body) {
		b.Arg(0, 0)
		b.STSlot(9, 0)
		b.PostEnd(pBond)
	})
	var pInit *core.Thread
	pInit = parcb.AddThread("init", -1, func(b *core.Body) {
		b.MovI(0, 0)
		b.STSlot(3, 0) // i = 0
		b.STSlot(4, 0) // j = 0
		b.STSlot(5, 0) // k = 0
		b.STSlot(7, 0) // acc = 0
		b.LDSlot(1, 0)
		b.SubI(1, 1, 1)
		b.ShrI(1, 1, 1) // bound = (nn-1)/2 (== nn/2-1 for even nn)
		b.STSlot(8, 1)
		b.ForkEnd(pIter)
	})
	parStart := parcb.AddInlet("start", func(b *core.Body) {
		b.Arg(0, 0)
		b.STSlot(0, 0) // nn
		b.Arg(0, 1)
		b.STSlot(1, 0) // radBase
		b.Arg(0, 2)
		b.STSlot(2, 0) // presBase
		b.PostEnd(pInit)
	})

	// --- main spawner --------------------------------------------------------
	// Slots: 0=radBase, 1=presBase, 2=nmax, 3=s, 4=child frame.
	main := &core.Codeblock{Name: "parmain", NumSlots: 5}
	var tInit, tAllocR, tSendR, tParInit, tAllocP, tSendP *core.Thread
	var iGotR, iGotP *core.Inlet

	tInit = main.AddThread("init", -1, func(b *core.Body) {
		b.MovI(0, 1)
		b.STSlot(3, 0) // s = 1
		b.ForkEnd(tAllocR)
	})
	tAllocR = main.AddThread("allocr", -1, func(b *core.Body) {
		b.LDSlot(0, 3)
		b.LDSlot(1, 2)
		b.BGT(0, 1, "parmain.radsdone")
		b.FAlloc(radcb, iGotR)
		b.Stop()
		b.Case("parmain.radsdone")
		b.ForkEnd(tParInit)
	})
	tSendR = main.AddThread("sendr", -1, func(b *core.Body) {
		b.ReloadArg(0, 4)
		b.LDSlot(1, 3) // s
		b.LDSlot(2, 0) // radBase
		b.SendMsg(radStart, 0, 1, 2)
		b.AddI(1, 1, 1)
		b.STSlot(3, 1)
		b.ForkEnd(tAllocR)
	})
	tSendR.DirectOnly = true
	tParInit = main.AddThread("parinit", -1, func(b *core.Body) {
		b.MovI(0, 1)
		b.STSlot(3, 0)
		b.ForkEnd(tAllocP)
	})
	tAllocP = main.AddThread("allocp", -1, func(b *core.Body) {
		b.LDSlot(0, 3)
		b.LDSlot(1, 2)
		b.BGT(0, 1, "parmain.alldone")
		b.FAlloc(parcb, iGotP)
		b.Stop()
		b.Case("parmain.alldone")
		b.MovI(0, 1)
		b.StoreResult(0, 0)
		b.Stop()
	})
	tSendP = main.AddThread("sendp", -1, func(b *core.Body) {
		b.ReloadArg(0, 4)
		b.LDSlot(1, 3)
		b.LDSlot(2, 0)
		b.LDSlot(5, 1)
		b.SendMsg(parStart, 0, 1, 2, 5)
		b.LDSlot(1, 3)
		b.AddI(1, 1, 1)
		b.STSlot(3, 1)
		b.ForkEnd(tAllocP)
	})
	tSendP.DirectOnly = true

	iGotR = main.AddInlet("gotr", func(b *core.Body) {
		b.TakeArg(0, 4, 0, tSendR)
		b.PostEnd(tSendR)
	})
	iGotP = main.AddInlet("gotp", func(b *core.Body) {
		b.TakeArg(0, 4, 0, tSendP)
		b.PostEnd(tSendP)
	})
	mainStart := main.AddInlet("start", func(b *core.Body) {
		b.Arg(0, 0)
		b.STSlot(0, 0)
		b.Arg(0, 1)
		b.STSlot(1, 0)
		b.Arg(0, 2)
		b.STSlot(2, 0)
		b.PostEnd(tInit)
	})

	var presBase uint32
	return &core.Program{
		Name:   fmt.Sprintf("paraffins-%d", n),
		Blocks: []*core.Codeblock{main, radcb, parcb},
		Setup: func(h *core.Host) error {
			radBase := h.AllocIStruct(n + 1)
			presBase = h.AllocIStruct(n + 1)
			h.PokeInt(radBase, 1) // rad[0] = 1
			f := h.AllocFrame(main)
			return h.Start(mainStart, f,
				word.Ptr(radBase), word.Ptr(presBase), word.Int(int64(n)))
		},
		Verify: func(h *core.Host) error {
			if h.Result(0).AsInt() != 1 {
				return fmt.Errorf("paraffins: completion flag not set")
			}
			want := ParaffinsRef(n)
			for k := 1; k <= n; k++ {
				cell := h.Peek(presBase + uint32(4*k))
				if !cell.IsPresent() {
					return fmt.Errorf("paraffins: p(%d) never computed", k)
				}
				if got := cell.AsInt(); got != want[k] {
					return fmt.Errorf("paraffins: p(%d) = %d, want %d", k, got, want[k])
				}
			}
			return nil
		},
	}
}

// ParaffinsRef computes the paraffin isomer counts in pure Go using the
// same radical/centroid recurrences. For n = 13 the counts are
// 1,1,1,2,3,5,9,18,35,75,159,355,802 (OEIS A000602 from k=1).
func ParaffinsRef(n int) []int64 {
	rad := make([]int64, n+1)
	rad[0] = 1
	multiset := func(sizes []int) int64 {
		acc := int64(1)
		prev, m := -1, int64(0)
		for _, z := range sizes {
			if z == prev {
				m++
			} else {
				m = 1
				prev = z
			}
			acc = acc * (rad[z] + m - 1) / m
		}
		return acc
	}
	for s := 1; s <= n; s++ {
		var sum int64
		for i := 0; 3*i <= s-1; i++ {
			for j := i; i+2*j <= s-1; j++ {
				k := s - 1 - i - j
				if k < j {
					continue
				}
				sum += multiset([]int{i, j, k})
			}
		}
		rad[s] = sum
	}
	p := make([]int64, n+1)
	for nn := 1; nn <= n; nn++ {
		bound := (nn - 1) / 2
		var sum int64
		for i := 0; 4*i <= nn-1; i++ {
			for j := i; i+3*j <= nn-1; j++ {
				for k := j; ; k++ {
					l := nn - 1 - i - j - k
					if l < k {
						break
					}
					if l > bound {
						continue
					}
					sum += multiset([]int{i, j, k, l})
				}
			}
		}
		if nn%2 == 0 {
			r := rad[nn/2]
			sum += r * (r + 1) / 2
		}
		p[nn] = sum
	}
	return p
}
