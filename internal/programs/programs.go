// Package programs provides the paper's six benchmark programs,
// hand-compiled from their Id originals into the TAM intermediate
// representation of package core: matrix multiply (MMT), quicksort (QS),
// discrete time warp (DTW), paraffins, wavefront, and selection sort
// (SS). Each builder is parameterized by problem size; the paper's
// arguments are MMT 50, QS 100, DTW 10, paraffins 13, wavefront 40 and
// SS 100.
//
// Every program verifies its simulated result against a pure-Go
// reference implementation, so the test suite catches any divergence
// between the two backends and the semantics of the source programs.
package programs

import (
	"fmt"
	"sort"

	"jmtam/internal/core"
)

// Spec names a benchmark with its default (paper) argument.
type Spec struct {
	Name  string
	Arg   int
	Build func(arg int) *core.Program
	// Doc describes the workload in one line.
	Doc string
}

// All returns the paper's six benchmarks in Table 2 order (increasing
// threads-per-quantum), with the paper's arguments.
func All() []Spec {
	return []Spec{
		{"mmt", 50, MMT, "matrix multiply: multiplies two float matrices and sums the product's elements"},
		{"qs", 100, QS, "quicksort: sorts an array of pseudo-random integers"},
		{"dtw", 10, DTW, "discrete time warp: dynamic-programming alignment of two float sequences"},
		{"paraffins", 13, Paraffins, "paraffins: enumerates the distinct isomers of paraffins"},
		{"wavefront", 40, Wavefront, "wavefront: successive matrix where each element depends on north and west values"},
		{"ss", 100, SS, "selection sort: sorts an array of integers originally in reverse order"},
	}
}

// ByName returns the named benchmark spec.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("programs: unknown benchmark %q", name)
}

// Names lists the benchmark names in Table 2 order.
func Names() []string {
	specs := All()
	ns := make([]string, len(specs))
	for i, s := range specs {
		ns[i] = s.Name
	}
	sort.Strings(ns)
	return ns
}
