package programs

import "testing"

// Builders validate their size arguments eagerly (they panic, since a
// bad size is a programming error, not a runtime condition).
func TestBuildersRejectBadSizes(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"mmt odd", func() { MMT(7) }},
		{"mmt zero", func() { MMT(0) }},
		{"wavefront 1", func() { Wavefront(1) }},
		{"dtw 1", func() { DTW(1) }},
		{"paraffins 0", func() { Paraffins(0) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", c.name)
				}
			}()
			c.f()
		})
	}
}

func TestQSInputDeterministic(t *testing.T) {
	a := qsInput(50)
	b := qsInput(50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("qs input not deterministic")
		}
	}
	// Values are bounded as documented (important for the partition
	// vectors' duplicate behaviour).
	for _, v := range a {
		if v < 0 || v >= 500 {
			t.Fatalf("qs input value %d out of range", v)
		}
	}
}

func TestMMTRefMatchesNaive(t *testing.T) {
	// mmtRef must equal a differently-ordered naive computation — the
	// inputs are small integers so float addition is exact.
	n := 6
	a, b := mmtInputs(n)
	var total float64
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			for k := n - 1; k >= 0; k-- {
				total += a[i*n+k] * b[k*n+j]
			}
		}
	}
	if got := mmtRef(n); got != total {
		t.Errorf("mmtRef = %g, naive = %g", got, total)
	}
}
