package programs

import (
	"testing"

	"jmtam/internal/core"
)

func TestQS(t *testing.T) {
	for _, impl := range testImpls {
		t.Run(impl.String(), func(t *testing.T) {
			run(t, impl, QS(80))
		})
	}
}

func TestQSSizes(t *testing.T) {
	// Exercise the recursion edge cases: tiny arrays, duplicates-heavy
	// arrays (the generator produces values in [0, 10n), so small n has
	// many collisions).
	for _, n := range []int{1, 2, 3, 5, 17} {
		if err := buildRun(core.ImplMD, QS(n)); err != nil {
			t.Errorf("qs %d: %v", n, err)
		}
	}
}

func TestMMT(t *testing.T) {
	for _, impl := range testImpls {
		t.Run(impl.String(), func(t *testing.T) {
			run(t, impl, MMT(8))
		})
	}
}

func TestParaffins(t *testing.T) {
	for _, impl := range testImpls {
		t.Run(impl.String(), func(t *testing.T) {
			run(t, impl, Paraffins(13)) // the paper's argument; verified vs known counts
		})
	}
}

func TestParaffinsRefKnownCounts(t *testing.T) {
	want := []int64{0, 1, 1, 1, 2, 3, 5, 9, 18, 35, 75, 159, 355, 802}
	got := ParaffinsRef(13)
	for k := 1; k <= 13; k++ {
		if got[k] != want[k] {
			t.Errorf("paraffins ref p(%d) = %d, want %d", k, got[k], want[k])
		}
	}
}

func TestSSSizes(t *testing.T) {
	for _, n := range []int{2, 3, 10} {
		if err := buildRun(core.ImplAM, SS(n)); err != nil {
			t.Errorf("ss %d: %v", n, err)
		}
	}
}

func TestWavefrontSizes(t *testing.T) {
	for _, n := range []int{2, 3, 7} {
		if err := buildRun(core.ImplMD, Wavefront(n)); err != nil {
			t.Errorf("wavefront %d: %v", n, err)
		}
	}
}

func TestDTWSizes(t *testing.T) {
	for _, n := range []int{2, 3, 10} {
		if err := buildRun(core.ImplOAM, DTW(n)); err != nil {
			t.Errorf("dtw %d: %v", n, err)
		}
	}
}

// TestDeterminism: two independent runs of the same workload must agree
// on every counter — the simulator is bit-for-bit reproducible.
func TestDeterminism(t *testing.T) {
	snapshot := func() (uint64, uint64, uint64, uint64) {
		sim, err := core.Build(core.ImplMD, QS(50), core.Options{MaxInstructions: 50_000_000})
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return sim.M.Instructions(), sim.Collector.TotalReads(),
			sim.Collector.TotalWrites(), sim.Gran.Quanta
	}
	i1, r1, w1, q1 := snapshot()
	i2, r2, w2, q2 := snapshot()
	if i1 != i2 || r1 != r2 || w1 != w2 || q1 != q2 {
		t.Errorf("nondeterministic run: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			i1, r1, w1, q1, i2, r2, w2, q2)
	}
}

// TestRegistry checks the benchmark registry's integrity.
func TestRegistry(t *testing.T) {
	if _, err := ByName("mmt"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("unknown name accepted")
	}
	if got := len(Names()); got != 6 {
		t.Errorf("Names() has %d entries", got)
	}
	for _, s := range All() {
		if s.Doc == "" {
			t.Errorf("%s has no doc line", s.Name)
		}
	}
}

// TestQuantumHistogram: SS is one giant quantum; QS is many small ones.
func TestQuantumHistogram(t *testing.T) {
	ss := run(t, core.ImplMD, SS(40))
	var ssBuckets int
	for _, c := range ss.Gran.QuantumHist.Buckets {
		if c > 0 {
			ssBuckets++
		}
	}
	if ssBuckets != 1 || ss.Gran.MaxQuantum() < 500 {
		t.Errorf("SS histogram unexpected: %v (max %d)", ss.Gran.QuantumHist.Buckets, ss.Gran.MaxQuantum())
	}
	qs := run(t, core.ImplMD, QS(60))
	// Small quanta: one or two threads (buckets 1 and 2).
	if qs.Gran.QuantumHist.Buckets[1]+qs.Gran.QuantumHist.Buckets[2] == 0 {
		t.Errorf("QS has no small quanta: %v", qs.Gran.QuantumHist.Buckets)
	}
}

func buildRun(impl core.Impl, p *core.Program) error {
	sim, err := core.Build(impl, p, core.Options{MaxInstructions: 100_000_000})
	if err != nil {
		return err
	}
	return sim.Run()
}
