package programs

import (
	"fmt"
	"sort"

	"jmtam/internal/core"
	"jmtam/internal/isa"
	"jmtam/internal/rng"
	"jmtam/internal/word"
)

// QS builds quicksort over n pseudo-random integers, in the functional
// style of the Id original: each recursive call is its own activation
// that reads its input through split-phase fetches, partitions into
// freshly heap-allocated less/greater-or-equal vectors, writes the pivot
// into its slice of the result vector, and spawns two child activations.
// The fine-grained recursion with one fetch per element gives QS a low
// threads-per-quantum (Table 2: 4.5 MD / 5.7 AM).
//
// qs frame slots: 0=src, 1=n, 2=dst, 3=retInlet, 4=retFrame, 5=pivot,
// 6=j, 7=nl, 8=ng, 9=less, 10=geq, 11=tmp, 12=child frame.
func QS(n int) *core.Program {
	qs := &core.Codeblock{
		Name: "qs", NumCounts: 2, InitCounts: []int64{3, 2}, NumSlots: 13,
	}
	var tCheck, tSingle, tLoopInit, tPLoop, tPart, tSpawn, tSend1, tSend2, tDone *core.Thread
	var iSingle, iPivot, iLess, iGeq, iElem, iC1, iC2, iDone *core.Inlet
	var qsStart *core.Inlet

	// reply sends the completion message to the parent continuation and
	// releases the frame.
	reply := func(b *core.Body) {
		b.LDSlot(0, 3)
		b.LDSlot(1, 4)
		b.MovI(2, 0)
		b.SendMsgDyn(0, 1, 2)
		b.ReleaseFrame()
		b.Stop()
	}

	tCheck = qs.AddThread("check", -1, func(b *core.Body) {
		b.LDSlot(0, 1) // n
		b.BNZ(0, "qs.check.some")
		reply(b)
		b.Case("qs.check.some")
		b.MovI(1, 1)
		b.BNE(0, 1, "qs.check.many")
		b.LDSlot(0, 0) // src
		b.IFetch(0, iSingle)
		b.Stop()
		b.Case("qs.check.many")
		b.SetCountImm(0, 3)
		b.LDSlot(0, 0)
		b.IFetch(0, iPivot) // pivot = src[0]
		b.LDSlot(0, 1)
		b.SubI(0, 0, 1) // n-1 words for each partition vector
		b.HAlloc(0, iLess)
		b.HAlloc(0, iGeq)
		b.Stop()
	})

	tSingle = qs.AddThread("single", -1, func(b *core.Body) {
		b.ReloadArg(0, 11)
		b.LDSlot(1, 2) // dst
		b.ST(1, 0, 0)
		reply(b)
	})
	tSingle.DirectOnly = true

	tLoopInit = qs.AddThread("loopinit", 0, func(b *core.Body) {
		b.MovI(0, 1)
		b.STSlot(6, 0) // j = 1
		b.MovI(0, 0)
		b.STSlot(7, 0) // nl = 0
		b.STSlot(8, 0) // ng = 0
		b.ForkEnd(tPLoop)
	})

	tPLoop = qs.AddThread("ploop", -1, func(b *core.Body) {
		b.LDSlot(0, 6) // j
		b.LDSlot(1, 1) // n
		b.BLT(0, 1, "qs.ploop.more")
		b.ForkEnd(tSpawn)
		b.Case("qs.ploop.more")
		b.MulI(0, 0, 4)
		b.LDSlot(1, 0) // src
		b.Add(0, 0, 1)
		b.IFetch(0, iElem)
		b.Stop()
	})

	tPart = qs.AddThread("part", -1, func(b *core.Body) {
		b.ReloadArg(0, 11) // element value
		b.LDSlot(1, 5)     // pivot
		b.BLT(0, 1, "qs.part.less")
		b.LDSlot(1, 10) // geq
		b.LDSlot(2, 8)  // ng
		b.MulI(5, 2, 4)
		b.Add(1, 1, 5)
		b.ST(1, 0, 0)
		b.AddI(2, 2, 1)
		b.STSlot(8, 2)
		b.BR("qs.part.next")
		b.Case("qs.part.less")
		b.LDSlot(1, 9) // less
		b.LDSlot(2, 7) // nl
		b.MulI(5, 2, 4)
		b.Add(1, 1, 5)
		b.ST(1, 0, 0)
		b.AddI(2, 2, 1)
		b.STSlot(7, 2)
		b.Case("qs.part.next")
		b.LDSlot(1, 6)
		b.AddI(1, 1, 1)
		b.STSlot(6, 1)
		b.ForkEnd(tPLoop)
	})
	tPart.DirectOnly = true

	tSpawn = qs.AddThread("spawn", -1, func(b *core.Body) {
		// dst[nl] = pivot, then allocate the first child.
		b.LDSlot(0, 5)
		b.LDSlot(1, 2)
		b.LDSlot(2, 7)
		b.MulI(5, 2, 4)
		b.Add(1, 1, 5)
		b.ST(1, 0, 0)
		b.FAlloc(qs, iC1)
		b.Stop()
	})

	tSend1 = qs.AddThread("send1", -1, func(b *core.Body) {
		b.ReloadArg(0, 12) // child frame
		b.BeginMsg(qsStart)
		b.SendW(0)
		b.LDSlot(1, 9)
		b.SendW(1) // src = less
		b.LDSlot(1, 7)
		b.SendW(1) // n = nl
		b.LDSlot(1, 2)
		b.SendW(1) // dst
		b.InletAddr(1, iDone)
		b.SendW(1)
		b.SendW(isa.RFP)
		b.SendE()
		b.FAlloc(qs, iC2)
		b.Stop()
	})
	tSend1.DirectOnly = true

	tSend2 = qs.AddThread("send2", -1, func(b *core.Body) {
		b.ReloadArg(0, 12)
		b.BeginMsg(qsStart)
		b.SendW(0)
		b.LDSlot(1, 10)
		b.SendW(1) // src = geq
		b.LDSlot(1, 8)
		b.SendW(1)     // n = ng
		b.LDSlot(1, 2) // dst + (nl+1)*4
		b.LDSlot(2, 7)
		b.AddI(2, 2, 1)
		b.MulI(2, 2, 4)
		b.Add(1, 1, 2)
		b.SendW(1)
		b.InletAddr(1, iDone)
		b.SendW(1)
		b.SendW(isa.RFP)
		b.SendE()
		b.Stop()
	})
	tSend2.DirectOnly = true

	tDone = qs.AddThread("done", 1, func(b *core.Body) {
		reply(b)
	})

	iSingle = qs.AddInlet("i_single", func(b *core.Body) {
		b.TakeArg(0, 11, 0, tSingle)
		b.PostEnd(tSingle)
	})
	iPivot = qs.AddInlet("pivot", func(b *core.Body) {
		b.Arg(0, 0)
		b.STSlot(5, 0)
		b.PostEnd(tLoopInit)
	})
	iLess = qs.AddInlet("less", func(b *core.Body) {
		b.Arg(0, 0)
		b.STSlot(9, 0)
		b.PostEnd(tLoopInit)
	})
	iGeq = qs.AddInlet("geq", func(b *core.Body) {
		b.Arg(0, 0)
		b.STSlot(10, 0)
		b.PostEnd(tLoopInit)
	})
	iElem = qs.AddInlet("elem", func(b *core.Body) {
		b.TakeArg(0, 11, 0, tPart)
		b.PostEnd(tPart)
	})
	iC1 = qs.AddInlet("child1", func(b *core.Body) {
		b.TakeArg(0, 12, 0, tSend1)
		b.PostEnd(tSend1)
	})
	iC2 = qs.AddInlet("child2", func(b *core.Body) {
		b.TakeArg(0, 12, 0, tSend2)
		b.PostEnd(tSend2)
	})
	iDone = qs.AddInlet("i_done", func(b *core.Body) {
		b.PostEnd(tDone)
	})
	qsStart = qs.AddInlet("start", func(b *core.Body) {
		// args: src, n, dst, retInlet, retFrame
		b.Arg(0, 0)
		b.STSlot(0, 0)
		b.Arg(0, 1)
		b.STSlot(1, 0)
		b.Arg(0, 2)
		b.STSlot(2, 0)
		b.Arg(0, 3)
		b.STSlot(3, 0)
		b.Arg(0, 4)
		b.STSlot(4, 0)
		b.PostEnd(tCheck)
	})

	// Driver codeblock. Slots: 0=src, 1=n, 2=dst, 3=child frame.
	main := &core.Codeblock{Name: "qsmain", NumSlots: 4}
	var tGo, tKick *core.Thread
	var iGotF, iAllDone *core.Inlet
	tGo = main.AddThread("go", -1, func(b *core.Body) {
		b.FAlloc(qs, iGotF)
		b.Stop()
	})
	tKick = main.AddThread("kick", -1, func(b *core.Body) {
		b.ReloadArg(0, 3)
		b.BeginMsg(qsStart)
		b.SendW(0)
		b.LDSlot(1, 0)
		b.SendW(1)
		b.LDSlot(1, 1)
		b.SendW(1)
		b.LDSlot(1, 2)
		b.SendW(1)
		b.InletAddr(1, iAllDone)
		b.SendW(1)
		b.SendW(isa.RFP)
		b.SendE()
		b.Stop()
	})
	tKick.DirectOnly = true
	iGotF = main.AddInlet("gotframe", func(b *core.Body) {
		b.TakeArg(0, 3, 0, tKick)
		b.PostEnd(tKick)
	})
	iAllDone = main.AddInlet("alldone", func(b *core.Body) {
		b.MovI(0, 1)
		b.StoreResult(0, 0)
		b.EndInlet()
	})
	mainStart := main.AddInlet("start", func(b *core.Body) {
		b.Arg(0, 0)
		b.STSlot(0, 0)
		b.Arg(0, 1)
		b.STSlot(1, 0)
		b.Arg(0, 2)
		b.STSlot(2, 0)
		b.PostEnd(tGo)
	})

	input := qsInput(n)
	var dst uint32
	return &core.Program{
		Name:   fmt.Sprintf("qs-%d", n),
		Blocks: []*core.Codeblock{main, qs},
		Setup: func(h *core.Host) error {
			src := h.AllocData(n)
			dst = h.AllocData(n)
			for i, v := range input {
				h.PokeInt(src+uint32(4*i), v)
			}
			f := h.AllocFrame(main)
			return h.Start(mainStart, f,
				word.Ptr(src), word.Int(int64(n)), word.Ptr(dst))
		},
		Verify: func(h *core.Host) error {
			if h.Result(0).AsInt() != 1 {
				return fmt.Errorf("qs: completion flag not set")
			}
			want := append([]int64(nil), input...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			for i := 0; i < n; i++ {
				if got := h.Peek(dst + uint32(4*i)).AsInt(); got != want[i] {
					return fmt.Errorf("qs: dst[%d] = %d, want %d", i, got, want[i])
				}
			}
			return nil
		},
	}
}

// qsInput generates the deterministic pseudo-random input array.
func qsInput(n int) []int64 {
	src := rng.New(0x5EED00F5)
	in := make([]int64, n)
	for i := range in {
		in[i] = int64(src.Intn(10 * n))
	}
	return in
}
