package programs

import (
	"fmt"

	"jmtam/internal/core"
	"jmtam/internal/isa"
	"jmtam/internal/word"
)

// DTW builds the discrete-time-warp benchmark: dynamic-programming
// alignment of two length-n float sequences, the kernel of the
// speech-processing application in the paper. The DP recurrence is
//
//	D[i][j] = |x[i]-y[j]| + min(D[i-1][j], D[i][j-1], D[i-1][j-1])
//
// with the first row precomputed as a boundary. Each row is an
// activation; every cell needs two split-phase fetches (the north value
// from the previous row and y[j]), synchronized by an entry count of two
// that is re-armed each iteration — finer-grained than wavefront's single
// fetch per cell, giving DTW its mid-table granularity (TPQ 5.3/6.0).
//
// Row frame slots: 0=r, 1=n, 2=dBase, 3=yBase, 4=xval, 5=j, 6=west,
// 7=nw, 8=north, 9=yval, 10=parent inlet, 11=parent frame.
func DTW(n int) *core.Program {
	if n < 2 {
		panic("dtw: n must be >= 2")
	}

	row := &core.Codeblock{
		Name: "dtwrow", NumCounts: 1, InitCounts: []int64{2}, NumSlots: 12,
	}
	var tInitJ, tStep, tCell *core.Thread
	var iX, iNorth, iY *core.Inlet

	tInitJ = row.AddThread("initj", -1, func(b *core.Body) {
		b.MovI(0, 0)
		b.STSlot(5, 0) // j = 0
		b.ForkEnd(tStep)
	})

	// Issue the two split-phase fetches for cell j.
	tStep = row.AddThread("step", -1, func(b *core.Body) {
		b.SetCountImm(0, 2)
		// north: D[r-1][j]
		b.LDSlot(0, 0) // r
		b.SubI(0, 0, 1)
		b.LDSlot(1, 1) // n
		b.Mul(0, 0, 1)
		b.LDSlot(1, 5) // j
		b.Add(0, 0, 1)
		b.MulI(0, 0, 4)
		b.LDSlot(2, 2) // dBase
		b.Add(0, 0, 2)
		b.IFetch(0, iNorth)
		// y[j]
		b.MulI(1, 1, 4)
		b.LDSlot(2, 3) // yBase
		b.Add(1, 1, 2)
		b.IFetch(1, iY)
		b.Stop()
	})

	tCell = row.AddThread("cell", 0, func(b *core.Body) {
		// cost = |x - y[j]|
		b.LDSlot(0, 4) // x
		b.LDSlot(1, 9) // y
		b.FSub(1, 0, 1)
		b.MovF(2, 0.0)
		b.FBLE(2, 1, "dtwrow.abs")
		b.FNeg(1, 1)
		b.Case("dtwrow.abs")
		b.LDSlot(0, 8) // north
		b.LDSlot(5, 5) // j
		b.BZ(5, "dtwrow.first")
		// min(north, west, nw)
		b.Mov(7, 0)
		b.LDSlot(2, 6) // west
		b.FBLE(7, 2, "dtwrow.m1")
		b.Mov(7, 2)
		b.Case("dtwrow.m1")
		b.LDSlot(2, 7) // nw
		b.FBLE(7, 2, "dtwrow.m2")
		b.Mov(7, 2)
		b.Case("dtwrow.m2")
		b.FAdd(2, 1, 7) // value
		b.BR("dtwrow.store")
		b.Case("dtwrow.first")
		b.FAdd(2, 1, 0) // value = cost + north
		b.Case("dtwrow.store")
		b.STSlot(7, 0) // nw = north (for next j)
		b.STSlot(6, 2) // west = value
		// D[r][j] = value
		b.LDSlot(0, 0) // r
		b.LDSlot(1, 1) // n
		b.Mul(0, 0, 1)
		b.Add(0, 0, 5)
		b.MulI(0, 0, 4)
		b.LDSlot(1, 2)
		b.Add(0, 0, 1)
		b.IStore(0, 2)
		b.AddI(5, 5, 1)
		b.STSlot(5, 5)
		b.LDSlot(1, 1)
		b.BLT(5, 1, "dtwrow.more")
		b.LDSlot(0, 10)
		b.LDSlot(1, 11)
		b.SendMsgDyn(0, 1, 2)
		b.ReleaseFrame()
		b.Stop()
		b.Case("dtwrow.more")
		b.ForkEnd(tStep)
	})

	iX = row.AddInlet("x", func(b *core.Body) {
		b.Arg(0, 0)
		b.STSlot(4, 0)
		b.PostEnd(tInitJ)
	})
	iNorth = row.AddInlet("north", func(b *core.Body) {
		b.Arg(0, 0)
		b.STSlot(8, 0)
		b.PostEnd(tCell)
	})
	iY = row.AddInlet("y", func(b *core.Body) {
		b.Arg(0, 0)
		b.STSlot(9, 0)
		b.PostEnd(tCell)
	})
	rowStart := row.AddInlet("start", func(b *core.Body) {
		// args: r, n, dBase, xBase, yBase, parentInlet, parentFrame
		b.Arg(0, 0)
		b.STSlot(0, 0)
		b.Arg(0, 1)
		b.STSlot(1, 0)
		b.Arg(0, 2)
		b.STSlot(2, 0)
		b.Arg(0, 4)
		b.STSlot(3, 0)
		b.Arg(0, 5)
		b.STSlot(10, 0)
		b.Arg(0, 6)
		b.STSlot(11, 0)
		// Fetch x[r] before entering the cell loop.
		b.Arg(0, 3) // xBase
		b.Arg(1, 0) // r
		b.MulI(1, 1, 4)
		b.Add(0, 0, 1)
		b.IFetch(0, iX)
		b.EndInlet()
	})

	// Main codeblock. Slots: 0=n, 1=dBase, 2=xBase, 3=yBase, 4=r,
	// 5=doneCount, 6=child frame.
	main := &core.Codeblock{Name: "dtwmain", NumSlots: 7}
	var tMainInit, tAlloc, tSend, tCount *core.Thread
	var iGotF, iRowDone, iFinal *core.Inlet

	tMainInit = main.AddThread("init", -1, func(b *core.Body) {
		b.MovI(0, 1)
		b.STSlot(4, 0)
		b.MovI(0, 0)
		b.STSlot(5, 0)
		b.ForkEnd(tAlloc)
	})
	tAlloc = main.AddThread("alloc", -1, func(b *core.Body) {
		b.LDSlot(0, 4)
		b.LDSlot(1, 0)
		b.BGE(0, 1, "dtwmain.spawned")
		b.FAlloc(row, iGotF)
		b.Stop()
		b.Case("dtwmain.spawned")
		b.Stop()
	})
	tSend = main.AddThread("send", -1, func(b *core.Body) {
		b.ReloadArg(0, 6) // child frame
		b.BeginMsg(rowStart)
		b.SendW(0) // destination frame
		b.LDSlot(1, 4)
		b.SendW(1) // r
		b.LDSlot(1, 0)
		b.SendW(1) // n
		b.LDSlot(1, 1)
		b.SendW(1) // dBase
		b.LDSlot(1, 2)
		b.SendW(1) // xBase
		b.LDSlot(1, 3)
		b.SendW(1) // yBase
		b.InletAddr(1, iRowDone)
		b.SendW(1)
		b.SendW(isa.RFP)
		b.SendE()
		b.LDSlot(1, 4)
		b.AddI(1, 1, 1)
		b.STSlot(4, 1)
		b.ForkEnd(tAlloc)
	})
	tSend.DirectOnly = true
	tCount = main.AddThread("count", -1, func(b *core.Body) {
		b.LDSlot(0, 5)
		b.AddI(0, 0, 1)
		b.STSlot(5, 0)
		b.LDSlot(1, 0)
		b.SubI(1, 1, 1)
		b.BEQ(0, 1, "dtwmain.alldone")
		b.Stop()
		b.Case("dtwmain.alldone")
		b.LDSlot(0, 0)
		b.Mul(1, 0, 0)
		b.SubI(1, 1, 1)
		b.MulI(1, 1, 4)
		b.LDSlot(0, 1)
		b.Add(0, 0, 1)
		b.IFetch(0, iFinal)
		b.Stop()
	})
	tCount.DirectOnly = true

	iGotF = main.AddInlet("gotframe", func(b *core.Body) {
		b.TakeArg(0, 6, 0, tSend)
		b.PostEnd(tSend)
	})
	iRowDone = main.AddInlet("rowdone", func(b *core.Body) {
		b.PostEnd(tCount)
	})
	iFinal = main.AddInlet("final", func(b *core.Body) {
		b.Arg(0, 0)
		b.StoreResult(0, 0)
		b.EndInlet()
	})
	mainStart := main.AddInlet("start", func(b *core.Body) {
		b.Arg(0, 0)
		b.STSlot(0, 0)
		b.Arg(0, 1)
		b.STSlot(1, 0)
		b.Arg(0, 2)
		b.STSlot(2, 0)
		b.Arg(0, 3)
		b.STSlot(3, 0)
		b.PostEnd(tMainInit)
	})

	var dBase, xBase, yBase uint32
	return &core.Program{
		Name:   fmt.Sprintf("dtw-%d", n),
		Blocks: []*core.Codeblock{main, row},
		Setup: func(h *core.Host) error {
			x, y := dtwInputs(n)
			dBase = h.AllocIStruct(n * n)
			xBase = h.AllocData(n)
			yBase = h.AllocData(n)
			for i := 0; i < n; i++ {
				h.PokeFloat(xBase+uint32(4*i), x[i])
				h.PokeFloat(yBase+uint32(4*i), y[i])
			}
			// Boundary row 0.
			ref := dtwRef(n)
			for j := 0; j < n; j++ {
				h.PokeFloat(dBase+uint32(4*j), ref[0][j])
			}
			f := h.AllocFrame(main)
			return h.Start(mainStart, f,
				word.Int(int64(n)), word.Ptr(dBase), word.Ptr(xBase), word.Ptr(yBase))
		},
		Verify: func(h *core.Host) error {
			ref := dtwRef(n)
			got := h.Result(0).AsFloat()
			if want := ref[n-1][n-1]; got != want {
				return fmt.Errorf("dtw: D[%d][%d] = %g, want %g", n-1, n-1, got, want)
			}
			return nil
		},
	}
}

// dtwInputs generates the two deterministic input sequences.
func dtwInputs(n int) (x, y []float64) {
	x = make([]float64, n)
	y = make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = float64((i*7)%10) / 2
		y[i] = float64((i*3)%10) / 2
	}
	return
}

// dtwRef computes the reference DP matrix with the exact operation
// structure of the simulated code (conditional negation for |.|,
// sequential min with <= comparisons), so floats match bit-for-bit.
func dtwRef(n int) [][]float64 {
	x, y := dtwInputs(n)
	cost := func(i, j int) float64 {
		c := x[i] - y[j]
		if !(0.0 <= c) {
			c = -c
		}
		return c
	}
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	d[0][0] = cost(0, 0)
	for j := 1; j < n; j++ {
		d[0][j] = d[0][j-1] + cost(0, j)
	}
	for i := 1; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == 0 {
				d[i][0] = cost(i, 0) + d[i-1][0]
				continue
			}
			m := d[i-1][j]
			if !(m <= d[i][j-1]) {
				m = d[i][j-1]
			}
			if !(m <= d[i-1][j-1]) {
				m = d[i-1][j-1]
			}
			d[i][j] = cost(i, j) + m
		}
	}
	return d
}
