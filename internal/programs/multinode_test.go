package programs

import (
	"fmt"
	"testing"

	"jmtam/internal/core"
	"jmtam/internal/machine"
	"jmtam/internal/trace"
)

// smallArgs are reduced benchmark arguments for multi-node tests.
var smallArgs = map[string]int{
	"mmt": 8, "qs": 24, "dtw": 4, "paraffins": 8, "wavefront": 8, "ss": 16,
}

var multinodeImpls = []core.Impl{core.ImplAM, core.ImplMD}

// recordingSig flattens a reference recording into comparable values.
func recordingSig(r *trace.Recording) []uint64 {
	sig := make([]uint64, 0, r.Len())
	r.Do(func(k trace.Kind, addr uint32) {
		sig = append(sig, uint64(k)<<32|uint64(addr))
	})
	return sig
}

// TestMultinodeSmoke runs every benchmark unmodified on 1-, 2- and
// 4-node meshes under both TAM backends; each run's Verify checks the
// result against the pure-Go reference.
func TestMultinodeSmoke(t *testing.T) {
	for _, spec := range All() {
		for _, impl := range multinodeImpls {
			for _, n := range []int{1, 2, 4} {
				cs, err := core.BuildCluster(impl, spec.Build(smallArgs[spec.Name]),
					core.Options{Nodes: n, MaxInstructions: 50_000_000})
				if err != nil {
					t.Fatalf("%s/%s n=%d build: %v", spec.Name, impl, n, err)
				}
				if err := cs.Run(); err != nil {
					t.Errorf("%s/%s n=%d run: %v", spec.Name, impl, n, err)
					continue
				}
				t.Logf("%s/%s n=%d instrs=%d ticks=%d", spec.Name, impl, n, cs.Instructions(), cs.Ticks())
			}
		}
	}
}

// TestClusterN1MatchesUniprocessor asserts the tentpole's
// no-regression property: a 1-node cluster executes the byte-identical
// reference stream as the uniprocessor simulator for every benchmark
// under both backends. Multi-node code generation is gated behind
// nodes > 1 and the lockstep driver adds no work, so nothing may
// diverge — not the instruction count, not a single fetch/read/write
// address, not the result.
func TestClusterN1MatchesUniprocessor(t *testing.T) {
	for _, spec := range All() {
		for _, impl := range multinodeImpls {
			spec, impl := spec, impl
			t.Run(fmt.Sprintf("%s/%s", spec.Name, impl.Short()), func(t *testing.T) {
				t.Parallel()
				uni, err := core.Build(impl, spec.Build(smallArgs[spec.Name]), core.Options{})
				if err != nil {
					t.Fatalf("build uni: %v", err)
				}
				uniRec := &trace.Recording{}
				uni.Tracer = uniRec
				if err := uni.Run(); err != nil {
					t.Fatalf("run uni: %v", err)
				}

				cs, err := core.BuildCluster(impl, spec.Build(smallArgs[spec.Name]),
					core.Options{Nodes: 1})
				if err != nil {
					t.Fatalf("build cluster: %v", err)
				}
				clRec := &trace.Recording{}
				cs.Tracers = []machine.Tracer{clRec}
				if err := cs.Run(); err != nil {
					t.Fatalf("run cluster: %v", err)
				}

				if got, want := cs.Instructions(), uni.M.Instructions(); got != want {
					t.Errorf("instructions: cluster %d, uniprocessor %d", got, want)
				}
				us, c1 := recordingSig(uniRec), recordingSig(clRec)
				if len(us) != len(c1) {
					t.Fatalf("reference stream length: cluster %d, uniprocessor %d", len(c1), len(us))
				}
				for i := range us {
					if us[i] != c1[i] {
						t.Fatalf("reference stream diverges at entry %d of %d: cluster %#x, uniprocessor %#x",
							i, len(us), c1[i], us[i])
					}
				}
				if got, want := cs.Host.Result(0), uni.Host.Result(0); got != want {
					t.Errorf("result: cluster %v, uniprocessor %v", got, want)
				}
			})
		}
	}
}

// multinodeFingerprint runs one benchmark on a 4-node mesh and returns
// its fingerprint: elapsed lockstep ticks plus per-node instruction
// counts and reference streams.
func multinodeFingerprint(t *testing.T, spec Spec, impl core.Impl) (ticks uint64, instrs []uint64, sigs [][]uint64) {
	t.Helper()
	const nodes = 4
	cs, err := core.BuildCluster(impl, spec.Build(smallArgs[spec.Name]),
		core.Options{Nodes: nodes, MaxInstructions: 50_000_000})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	recs := make([]*trace.Recording, nodes)
	cs.Tracers = make([]machine.Tracer, nodes)
	for k := range recs {
		recs[k] = &trace.Recording{}
		cs.Tracers[k] = recs[k]
	}
	if err := cs.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	for k, m := range cs.C.Machines {
		instrs = append(instrs, m.Instructions())
		sigs = append(sigs, recordingSig(recs[k]))
	}
	return cs.Ticks(), instrs, sigs
}

// TestMultinodeDeterministic asserts that a 4-node run is exactly
// reproducible: three runs per benchmark/backend, executed inside
// parallel subtests so the host Go scheduler varies between
// repetitions, must yield identical ticks, per-node instruction counts
// and per-node reference streams.
func TestMultinodeDeterministic(t *testing.T) {
	for _, spec := range All() {
		for _, impl := range multinodeImpls {
			spec, impl := spec, impl
			t.Run(fmt.Sprintf("%s/%s", spec.Name, impl.Short()), func(t *testing.T) {
				t.Parallel()
				ticks0, instrs0, sigs0 := multinodeFingerprint(t, spec, impl)
				for rep := 1; rep < 3; rep++ {
					ticks, instrs, sigs := multinodeFingerprint(t, spec, impl)
					if ticks != ticks0 {
						t.Fatalf("rep %d: ticks %d, want %d", rep, ticks, ticks0)
					}
					for k := range instrs0 {
						if instrs[k] != instrs0[k] {
							t.Fatalf("rep %d: node %d instrs %d, want %d", rep, k, instrs[k], instrs0[k])
						}
						if len(sigs[k]) != len(sigs0[k]) {
							t.Fatalf("rep %d: node %d stream length %d, want %d",
								rep, k, len(sigs[k]), len(sigs0[k]))
						}
						for i := range sigs0[k] {
							if sigs[k][i] != sigs0[k][i] {
								t.Fatalf("rep %d: node %d stream diverges at entry %d", rep, k, i)
							}
						}
					}
				}
			})
		}
	}
}
