package programs

import (
	"fmt"

	"jmtam/internal/core"
	"jmtam/internal/isa"
	"jmtam/internal/word"
)

// mmtUnroll is the inner-loop unrolling factor of the dot-product
// kernel: each step thread issues 2*mmtUnroll split-phase fetches and
// the synchronizing multiply-accumulate thread performs mmtUnroll
// multiply-adds. The paper's MMT has by far the largest instructions
// per thread (84-90) of the six benchmarks; the unrolled kernel
// reproduces that profile. n must be divisible by mmtUnroll.
const mmtUnroll = 2

// MMT builds matrix multiply test: C = A x B over n x n float matrices,
// returning the sum of the elements of C. Matrix elements are small
// integers represented as floats, so every partial sum is exact and the
// result is independent of the order in which row sums arrive.
//
// One activation computes each row of C; each dot product proceeds in
// groups of mmtUnroll via split-phase fetches of A[i][k..k+4] and
// B[k..k+4][j], synchronized by an entry count of 10 re-armed per group.
//
// Row frame slots: 0=i, 1=n, 2=aBase, 3=bBase, 4=rowSum, 5=j, 6=k,
// 7=acc, 8=parent inlet, 9=parent frame, 10-14=A values, 15-19=B values.
func MMT(n int) *core.Program {
	if n < mmtUnroll || n%mmtUnroll != 0 {
		panic(fmt.Sprintf("mmt: n must be a positive multiple of %d", mmtUnroll))
	}

	row := &core.Codeblock{
		Name: "mrow", NumCounts: 1, InitCounts: []int64{2 * mmtUnroll}, NumSlots: 20,
	}
	var tRowInit, tColInit, tStep, tMac *core.Thread
	var iA, iB [mmtUnroll]*core.Inlet

	tRowInit = row.AddThread("rowinit", -1, func(b *core.Body) {
		b.MovF(0, 0)
		b.STSlot(4, 0) // rowSum = 0
		b.MovI(0, 0)
		b.STSlot(5, 0) // j = 0
		b.ForkEnd(tColInit)
	})
	tColInit = row.AddThread("colinit", -1, func(b *core.Body) {
		b.MovF(0, 0)
		b.STSlot(7, 0) // acc = 0
		b.MovI(0, 0)
		b.STSlot(6, 0) // k = 0
		b.ForkEnd(tStep)
	})

	// Issue the 2*mmtUnroll fetches for one dot-product group.
	tStep = row.AddThread("step", -1, func(b *core.Body) {
		b.SetCountImm(0, 2*mmtUnroll)
		// &A[i][k]: aBase + (i*n + k)*4, consecutive elements 4 apart.
		b.LDSlot(0, 0) // i
		b.LDSlot(1, 1) // n
		b.Mul(0, 0, 1)
		b.LDSlot(2, 6) // k
		b.Add(0, 0, 2)
		b.MulI(0, 0, 4)
		b.LDSlot(2, 2) // aBase
		b.Add(0, 0, 2)
		for u := 0; u < mmtUnroll; u++ {
			if u > 0 {
				b.AddI(0, 0, 4)
			}
			b.IFetch(0, iA[u])
		}
		// &B[k][j]: bBase + (k*n + j)*4, consecutive elements n*4 apart.
		b.LDSlot(1, 6) // k
		b.LDSlot(2, 1) // n
		b.Mul(1, 1, 2)
		b.LDSlot(5, 5) // j
		b.Add(1, 1, 5)
		b.MulI(1, 1, 4)
		b.LDSlot(5, 3) // bBase
		b.Add(1, 1, 5)
		b.MulI(2, 2, 4) // stride = n*4
		for u := 0; u < mmtUnroll; u++ {
			if u > 0 {
				b.Add(1, 1, 2)
			}
			b.IFetch(1, iB[u])
		}
		b.Stop()
	})

	// Multiply-accumulate the group, then advance k, j, or finish.
	tMac = row.AddThread("mac", 0, func(b *core.Body) {
		b.LDSlot(0, 7) // acc
		for u := 0; u < mmtUnroll; u++ {
			b.LDSlot(1, 10+u)
			b.LDSlot(2, 15+u)
			b.FMul(1, 1, 2)
			b.FAdd(0, 0, 1)
		}
		b.LDSlot(1, 6) // k
		b.AddI(1, 1, mmtUnroll)
		b.STSlot(6, 1)
		b.LDSlot(2, 1) // n
		b.BGE(1, 2, "mrow.eldone")
		b.STSlot(7, 0) // acc
		b.ForkEnd(tStep)
		b.Case("mrow.eldone")
		// C[i][j] complete: rowSum += acc.
		b.LDSlot(1, 4)
		b.FAdd(1, 1, 0)
		b.STSlot(4, 1)
		b.LDSlot(1, 5) // j
		b.AddI(1, 1, 1)
		b.STSlot(5, 1)
		b.BGE(1, 2, "mrow.rowdone")
		b.ForkEnd(tColInit)
		b.Case("mrow.rowdone")
		b.LDSlot(0, 8) // parent inlet
		b.LDSlot(1, 9) // parent frame
		b.LDSlot(2, 4) // rowSum
		b.SendMsgDyn(0, 1, 2)
		b.ReleaseFrame()
		b.Stop()
	})

	for u := 0; u < mmtUnroll; u++ {
		slotA, slotB := 10+u, 15+u
		iA[u] = row.AddInlet(fmt.Sprintf("a%d", u), func(b *core.Body) {
			b.Arg(0, 0)
			b.STSlot(slotA, 0)
			b.PostEnd(tMac)
		})
		iB[u] = row.AddInlet(fmt.Sprintf("b%d", u), func(b *core.Body) {
			b.Arg(0, 0)
			b.STSlot(slotB, 0)
			b.PostEnd(tMac)
		})
	}
	rowStart := row.AddInlet("start", func(b *core.Body) {
		// args: i, n, aBase, bBase, parentInlet, parentFrame
		b.Arg(0, 0)
		b.STSlot(0, 0)
		b.Arg(0, 1)
		b.STSlot(1, 0)
		b.Arg(0, 2)
		b.STSlot(2, 0)
		b.Arg(0, 3)
		b.STSlot(3, 0)
		b.Arg(0, 4)
		b.STSlot(8, 0)
		b.Arg(0, 5)
		b.STSlot(9, 0)
		b.PostEnd(tRowInit)
	})

	// Main codeblock. Slots: 0=n, 1=aBase, 2=bBase, 3=i, 4=doneCount,
	// 5=total, 6=child frame.
	main := &core.Codeblock{Name: "mmtmain", NumSlots: 7}
	var tMainInit, tAlloc, tSend, tFinish *core.Thread
	var iGotF, iRowSum *core.Inlet

	tMainInit = main.AddThread("init", -1, func(b *core.Body) {
		b.MovI(0, 0)
		b.STSlot(3, 0)
		b.STSlot(4, 0)
		b.MovF(0, 0)
		b.STSlot(5, 0)
		b.ForkEnd(tAlloc)
	})
	tAlloc = main.AddThread("alloc", -1, func(b *core.Body) {
		b.LDSlot(0, 3)
		b.LDSlot(1, 0)
		b.BGE(0, 1, "mmtmain.spawned")
		b.FAlloc(row, iGotF)
		b.Stop()
		b.Case("mmtmain.spawned")
		b.Stop()
	})
	tSend = main.AddThread("send", -1, func(b *core.Body) {
		b.ReloadArg(0, 6) // child frame
		b.BeginMsg(rowStart)
		b.SendW(0)
		b.LDSlot(1, 3)
		b.SendW(1) // i
		b.LDSlot(1, 0)
		b.SendW(1) // n
		b.LDSlot(1, 1)
		b.SendW(1) // aBase
		b.LDSlot(1, 2)
		b.SendW(1) // bBase
		b.InletAddr(1, iRowSum)
		b.SendW(1)
		b.SendW(isa.RFP)
		b.SendE()
		b.LDSlot(1, 3)
		b.AddI(1, 1, 1)
		b.STSlot(3, 1)
		b.ForkEnd(tAlloc)
	})
	tSend.DirectOnly = true
	tFinish = main.AddThread("finish", -1, func(b *core.Body) {
		b.LDSlot(0, 5)
		b.StoreResult(0, 0)
		b.Stop()
	})
	tFinish.DirectOnly = true

	iGotF = main.AddInlet("gotframe", func(b *core.Body) {
		b.TakeArg(0, 6, 0, tSend)
		b.PostEnd(tSend)
	})
	// Row sums are accumulated in the inlet itself: inlets at one
	// priority level are serialized, so the read-modify-write is atomic
	// under both backends.
	iRowSum = main.AddInlet("rowsum", func(b *core.Body) {
		b.Arg(0, 0)
		b.LDSlot(1, 5)
		b.FAdd(1, 1, 0)
		b.STSlot(5, 1)
		b.LDSlot(0, 4)
		b.AddI(0, 0, 1)
		b.STSlot(4, 0)
		b.LDSlot(1, 0)
		b.BNE(0, 1, "mmtmain.notall")
		b.PostEnd(tFinish)
		b.Case("mmtmain.notall")
		b.EndInlet()
	})
	mainStart := main.AddInlet("start", func(b *core.Body) {
		b.Arg(0, 0)
		b.STSlot(0, 0)
		b.Arg(0, 1)
		b.STSlot(1, 0)
		b.Arg(0, 2)
		b.STSlot(2, 0)
		b.PostEnd(tMainInit)
	})

	return &core.Program{
		Name:   fmt.Sprintf("mmt-%d", n),
		Blocks: []*core.Codeblock{main, row},
		Setup: func(h *core.Host) error {
			a, bm := mmtInputs(n)
			aBase := h.AllocIStruct(n * n)
			bBase := h.AllocIStruct(n * n)
			for i := 0; i < n*n; i++ {
				h.PokeFloat(aBase+uint32(4*i), a[i])
				h.PokeFloat(bBase+uint32(4*i), bm[i])
			}
			f := h.AllocFrame(main)
			return h.Start(mainStart, f,
				word.Int(int64(n)), word.Ptr(aBase), word.Ptr(bBase))
		},
		Verify: func(h *core.Host) error {
			got := h.Result(0).AsFloat()
			if want := mmtRef(n); got != want {
				return fmt.Errorf("mmt: sum = %g, want %g", got, want)
			}
			return nil
		},
	}
}

// mmtInputs generates the two deterministic matrices (small integers as
// floats, so all arithmetic is exact).
func mmtInputs(n int) (a, b []float64) {
	a = make([]float64, n*n)
	b = make([]float64, n*n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			a[i*n+k] = float64((i+k)%7 + 1)
			b[i*n+k] = float64((i*3+k)%5 + 1)
		}
	}
	return
}

// mmtRef computes the reference result sum(A x B).
func mmtRef(n int) float64 {
	a, b := mmtInputs(n)
	var total float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc float64
			for k := 0; k < n; k++ {
				acc += a[i*n+k] * b[k*n+j]
			}
			total += acc
		}
	}
	return total
}
