package programs

import (
	"fmt"

	"jmtam/internal/core"
	"jmtam/internal/word"
)

// SS builds selection sort over n integers originally in reverse order.
//
// The Id original is loop code making only three procedure calls in its
// whole execution (paper §3.2), giving extremely high frame locality: the
// entire sort is a single activation whose loop iterations are
// self-forking threads, so nearly every thread lands in the same quantum
// (Table 2 reports TPQ in the thousands). The array is a local mutable
// vector accessed with direct loads and stores, matching the inlined
// local-structure access the Berkeley compiler performed.
//
// Frame slots: 0=base, 1=n, 2=i, 3=j, 4=minIdx, 5=minVal.
func SS(n int) *core.Program {
	cb := &core.Codeblock{Name: "ss", NumSlots: 6}
	var tInit, tOuter, tInner, tSwap, tDone *core.Thread

	tInit = cb.AddThread("init", -1, func(b *core.Body) {
		b.MovI(0, 0)
		b.STSlot(2, 0) // i = 0
		b.ForkEnd(tOuter)
	})

	// Outer loop: select the minimum of A[i..n-1].
	tOuter = cb.AddThread("outer", -1, func(b *core.Body) {
		b.LDSlot(0, 2) // i
		b.LDSlot(1, 1) // n
		b.SubI(1, 1, 1)
		b.BGE(0, 1, "ss.outer.done") // i >= n-1
		// minIdx = i; minVal = A[i]; j = i+1
		b.STSlot(4, 0)
		b.LDSlot(1, 0) // base
		b.MulI(2, 0, 4)
		b.Add(1, 1, 2)
		b.LD(1, 1, 0) // A[i]
		b.STSlot(5, 1)
		b.AddI(0, 0, 1)
		b.STSlot(3, 0) // j = i+1
		b.ForkEnd(tInner)
		b.Case("ss.outer.done")
		b.ForkEnd(tDone)
	})

	// Inner loop: one comparison per thread.
	tInner = cb.AddThread("inner", -1, func(b *core.Body) {
		b.LDSlot(0, 3) // j
		b.LDSlot(1, 1) // n
		b.BGE(0, 1, "ss.inner.done")
		b.LDSlot(1, 0) // base
		b.MulI(2, 0, 4)
		b.Add(1, 1, 2)
		b.LD(1, 1, 0)  // A[j]
		b.LDSlot(2, 5) // minVal
		b.BGE(1, 2, "ss.inner.next")
		b.STSlot(5, 1) // minVal = A[j]
		b.STSlot(4, 0) // minIdx = j
		b.Case("ss.inner.next")
		b.AddI(0, 0, 1)
		b.STSlot(3, 0)
		b.ForkEnd(tInner)
		b.Case("ss.inner.done")
		b.ForkEnd(tSwap)
	})

	// Swap A[i] and A[minIdx], advance i.
	tSwap = cb.AddThread("swap", -1, func(b *core.Body) {
		b.LDSlot(0, 0) // base
		b.LDSlot(1, 2) // i
		b.MulI(1, 1, 4)
		b.Add(1, 0, 1) // &A[i]
		b.LDSlot(2, 4) // minIdx
		b.MulI(2, 2, 4)
		b.Add(2, 0, 2) // &A[minIdx]
		b.LD(0, 1, 0)  // A[i]
		b.LD(5, 2, 0)  // A[minIdx]
		b.ST(1, 0, 5)
		b.ST(2, 0, 0)
		b.LDSlot(0, 2)
		b.AddI(0, 0, 1)
		b.STSlot(2, 0)
		b.ForkEnd(tOuter)
	})

	tDone = cb.AddThread("done", -1, func(b *core.Body) {
		b.MovI(0, 1)
		b.StoreResult(0, 0)
		b.Stop()
	})

	start := cb.AddInlet("start", func(b *core.Body) {
		b.Arg(0, 0)
		b.STSlot(0, 0) // base
		b.Arg(0, 1)
		b.STSlot(1, 0) // n
		b.PostEnd(tInit)
	})

	var base uint32
	return &core.Program{
		Name:   fmt.Sprintf("ss-%d", n),
		Blocks: []*core.Codeblock{cb},
		Setup: func(h *core.Host) error {
			base = h.AllocData(n)
			for i := 0; i < n; i++ {
				h.PokeInt(base+uint32(4*i), int64(n-i)) // reverse order
			}
			f := h.AllocFrame(cb)
			return h.Start(start, f, word.Ptr(base), word.Int(int64(n)))
		},
		Verify: func(h *core.Host) error {
			if h.Result(0).AsInt() != 1 {
				return fmt.Errorf("ss: completion flag not set")
			}
			for i := 0; i < n; i++ {
				if got := h.Peek(base + uint32(4*i)).AsInt(); got != int64(i+1) {
					return fmt.Errorf("ss: A[%d] = %d, want %d", i, got, i+1)
				}
			}
			return nil
		},
	}
}
