package programs

import (
	"testing"

	"jmtam/internal/core"
)

var testImpls = []core.Impl{core.ImplAM, core.ImplMD, core.ImplAMEnabled, core.ImplOAM}

// run builds and runs prog under impl, failing the test on any error
// (including result verification).
func run(t *testing.T, impl core.Impl, prog *core.Program) *core.Sim {
	t.Helper()
	sim, err := core.Build(impl, prog, core.Options{MaxInstructions: 200_000_000})
	if err != nil {
		t.Fatalf("Build(%v, %s): %v", impl, prog.Name, err)
	}
	if err := sim.Run(); err != nil {
		t.Fatalf("Run(%v, %s): %v", impl, prog.Name, err)
	}
	return sim
}

func TestSS(t *testing.T) {
	for _, impl := range testImpls {
		t.Run(impl.String(), func(t *testing.T) {
			sim := run(t, impl, SS(50))
			// SS is one giant activation: TPQ must be very large.
			if tpq := sim.Gran.TPQ(); tpq < 100 {
				t.Errorf("SS TPQ = %.1f, want >= 100", tpq)
			}
		})
	}
}

func TestWavefront(t *testing.T) {
	for _, impl := range testImpls {
		t.Run(impl.String(), func(t *testing.T) {
			sim := run(t, impl, Wavefront(12))
			if tpq := sim.Gran.TPQ(); tpq < 8 {
				t.Errorf("wavefront TPQ = %.1f, want >= 8", tpq)
			}
		})
	}
}

func TestDTW(t *testing.T) {
	for _, impl := range testImpls {
		t.Run(impl.String(), func(t *testing.T) {
			run(t, impl, DTW(8))
		})
	}
}
