package programs

import (
	"testing"

	"jmtam/internal/core"
)

// quick builds reduced-size instances of all six benchmarks, preserving
// their granularity ordering, for fast shape tests.
func quick() []Spec {
	return []Spec{
		{"mmt", 10, MMT, ""},
		{"qs", 60, QS, ""},
		{"dtw", 8, DTW, ""},
		{"paraffins", 10, Paraffins, ""},
		{"wavefront", 16, Wavefront, ""},
		{"ss", 60, SS, ""},
	}
}

// TestTable2Shape verifies the granularity relationships of Table 2:
// threads per quantum is (weakly) increasing across the benchmark order
// MMT -> ... -> SS, with wavefront and SS far coarser than the rest, and
// the MD implementation always executes fewer instructions than AM.
func TestTable2Shape(t *testing.T) {
	type res struct {
		name   string
		tpq    [2]float64
		instrs [2]uint64
	}
	var rs []res
	for _, s := range quick() {
		r := res{name: s.Name}
		for i, impl := range []core.Impl{core.ImplMD, core.ImplAM} {
			sim := run(t, impl, s.Build(s.Arg))
			r.tpq[i] = sim.Gran.TPQ()
			r.instrs[i] = sim.M.Instructions()
		}
		rs = append(rs, r)
	}
	for _, r := range rs {
		if r.instrs[0] >= r.instrs[1] {
			t.Errorf("%s: MD executed %d instructions >= AM's %d", r.name, r.instrs[0], r.instrs[1])
		}
	}
	// Coarse ordering: wavefront much coarser than the fine-grained
	// four; SS coarser still.
	fineMax := 0.0
	for _, r := range rs[:4] {
		if r.tpq[0] > fineMax {
			fineMax = r.tpq[0]
		}
	}
	wfront, ss := rs[4], rs[5]
	if wfront.tpq[0] < 2*fineMax {
		t.Errorf("wavefront TPQ %.1f not well above fine-grained max %.1f", wfront.tpq[0], fineMax)
	}
	if ss.tpq[0] < 5*wfront.tpq[0] {
		t.Errorf("SS TPQ %.1f not far above wavefront %.1f", ss.tpq[0], wfront.tpq[0])
	}
}

// TestAccessRatios verifies §3.1: on average the MD implementation
// performs fewer reads, writes and instruction fetches than AM (the
// paper reports 86%, 87% and 77%).
func TestAccessRatios(t *testing.T) {
	var sumR, sumW, sumF float64
	var n int
	for _, s := range quick() {
		md := run(t, core.ImplMD, s.Build(s.Arg))
		am := run(t, core.ImplAM, s.Build(s.Arg))
		sumR += float64(md.Collector.TotalReads()) / float64(am.Collector.TotalReads())
		sumW += float64(md.Collector.TotalWrites()) / float64(am.Collector.TotalWrites())
		sumF += float64(md.Collector.TotalFetches()) / float64(am.Collector.TotalFetches())
		n++
	}
	r, w, f := sumR/float64(n), sumW/float64(n), sumF/float64(n)
	if r >= 1.0 || w >= 1.0 || f >= 1.0 {
		t.Errorf("MD/AM access ratios reads=%.2f writes=%.2f fetches=%.2f; all must be < 1", r, w, f)
	}
	if f >= r {
		t.Logf("note: fetch ratio %.2f not below read ratio %.2f (paper has fetches lowest)", f, r)
	}
}

// TestPaperArgsRun exercises every benchmark at its paper argument under
// both backends (the long MMT run is reduced when -short).
func TestPaperArgsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-size runs skipped in -short mode")
	}
	for _, s := range All() {
		arg := s.Arg
		if s.Name == "mmt" {
			arg = 20 // full 50 takes ~10s per backend; covered by benches
		}
		for _, impl := range []core.Impl{core.ImplMD, core.ImplAM} {
			run(t, impl, s.Build(arg))
		}
	}
}
