package programs

import (
	"fmt"

	"jmtam/internal/core"
	"jmtam/internal/isa"
	"jmtam/internal/word"
)

// wavefrontIters is the number of successive matrices computed, per the
// benchmark description: "computes successive matrices in which each
// element depends on a function of north and west values of the previous
// and current matrix".
const wavefrontIters = 2

// Wavefront builds the wavefront benchmark over an n x n float matrix:
//
//	cur[i][j] = cur[i-1][j] + 0.5*cur[i][j-1] + 0.25*prev[i][j]
//
// iterated wavefrontIters times with double buffering; the first row and
// column are fixed at 1.0.
//
// Each row of each iteration is one activation. A row starts only after
// its predecessor row finishes, so all its dependencies are complete and
// cells are computed with direct local reads, one self-forking thread
// per cell. The whole row therefore runs as one long quantum —
// wavefront is the paper's second-coarsest benchmark (Table 2: TPQ 43.9
// MD / 65.2 AM), and the one where the MD implementation's lower
// instruction count pays off at every cache size.
//
// Row frame slots: 0=r, 1=n, 2=prevBase, 3=curBase, 4=j, 5=west,
// 6=retInlet, 7=retFrame.
func Wavefront(n int) *core.Program {
	if n < 2 {
		panic("wavefront: n must be >= 2")
	}

	row := &core.Codeblock{Name: "wfrow", NumSlots: 9}
	var tRowInit, tCell, tSendNext *core.Thread
	var iNextF *core.Inlet
	var rowStart *core.Inlet

	tRowInit = row.AddThread("init", -1, func(b *core.Body) {
		b.MovI(0, 1)
		b.STSlot(4, 0) // j = 1
		b.MovF(0, 1.0)
		b.STSlot(5, 0) // west = cur[r][0] = 1.0
		b.ForkEnd(tCell)
	})

	// One cell per thread: val = north + 0.5*west + 0.25*prev.
	tCell = row.AddThread("cell", -1, func(b *core.Body) {
		// north = cur[(r-1)*n + j]
		b.LDSlot(0, 0) // r
		b.LDSlot(1, 1) // n
		b.Mul(0, 0, 1)
		b.LDSlot(2, 4) // j
		b.Add(0, 0, 2) // r*n + j
		b.MulI(2, 0, 4)
		b.LDSlot(5, 3) // curBase
		b.Add(2, 2, 5) // &cur[r][j]
		b.MulI(1, 1, 4)
		b.Sub(1, 2, 1) // &cur[r-1][j]
		b.LD(1, 1, 0)  // north
		b.LDSlot(7, 5) // west
		b.MovF(5, 0.5)
		b.FMul(7, 7, 5)
		b.FAdd(1, 1, 7) // north + 0.5*west
		b.MulI(0, 0, 4)
		b.LDSlot(7, 2) // prevBase
		b.Add(0, 0, 7)
		b.LD(0, 0, 0) // prev[r][j]
		b.MovF(5, 0.25)
		b.FMul(0, 0, 5)
		b.FAdd(1, 1, 0) // value
		b.ST(2, 0, 1)   // cur[r][j] = value
		b.STSlot(5, 1)  // west = value
		b.LDSlot(0, 4)
		b.AddI(0, 0, 1)
		b.STSlot(4, 0) // j++
		b.LDSlot(1, 1)
		b.BLT(0, 1, "wfrow.more")
		// Row complete. The last row notifies the iteration
		// continuation; other rows allocate and start their successor
		// directly, so control stays in row frames and each row runs
		// as one long quantum.
		b.LDSlot(0, 0) // r
		b.AddI(0, 0, 1)
		b.BLT(0, 1, "wfrow.chain")
		b.LDSlot(0, 6)
		b.LDSlot(1, 7)
		b.SendMsgDyn(0, 1, 2)
		b.ReleaseFrame()
		b.Stop()
		b.Case("wfrow.chain")
		b.FAlloc(row, iNextF)
		b.Stop()
		b.Case("wfrow.more")
		b.ForkEnd(tCell)
	})

	tSendNext = row.AddThread("sendnext", -1, func(b *core.Body) {
		b.ReloadArg(0, 8) // successor frame
		b.BeginMsg(rowStart)
		b.SendW(0)
		b.LDSlot(1, 0)
		b.AddI(1, 1, 1)
		b.SendW(1) // r+1
		b.LDSlot(1, 1)
		b.SendW(1) // n
		b.LDSlot(1, 2)
		b.SendW(1) // prevBase
		b.LDSlot(1, 3)
		b.SendW(1) // curBase
		b.LDSlot(1, 6)
		b.SendW(1) // iteration continuation inlet
		b.LDSlot(1, 7)
		b.SendW(1) // iteration continuation frame
		b.SendE()
		b.ReleaseFrame()
		b.Stop()
	})
	tSendNext.DirectOnly = true

	iNextF = row.AddInlet("nextframe", func(b *core.Body) {
		b.TakeArg(0, 8, 0, tSendNext)
		b.PostEnd(tSendNext)
	})

	rowStart = row.AddInlet("start", func(b *core.Body) {
		// args: r, n, prevBase, curBase, retInlet, retFrame
		b.Arg(0, 0)
		b.STSlot(0, 0)
		b.Arg(0, 1)
		b.STSlot(1, 0)
		b.Arg(0, 2)
		b.STSlot(2, 0)
		b.Arg(0, 3)
		b.STSlot(3, 0)
		b.Arg(0, 4)
		b.STSlot(6, 0)
		b.Arg(0, 5)
		b.STSlot(7, 0)
		b.PostEnd(tRowInit)
	})

	// Main codeblock starts each iteration's first row and advances
	// iterations when the last row reports in. Slots: 0=n, 1=prevBase,
	// 2=curBase, 3=t, 4=child frame, 5=iters.
	main := &core.Codeblock{Name: "wfmain", NumSlots: 6}
	var tMainInit, tStartIter, tSendRow, tIterDone *core.Thread
	var iGotF, iIterDone *core.Inlet

	tMainInit = main.AddThread("init", -1, func(b *core.Body) {
		b.MovI(0, 0)
		b.STSlot(3, 0) // t = 0
		b.ForkEnd(tStartIter)
	})
	tStartIter = main.AddThread("startiter", -1, func(b *core.Body) {
		b.FAlloc(row, iGotF)
		b.Stop()
	})
	tSendRow = main.AddThread("sendrow", -1, func(b *core.Body) {
		b.ReloadArg(0, 4) // child frame
		b.BeginMsg(rowStart)
		b.SendW(0)
		b.MovI(1, 1)
		b.SendW(1) // r = 1
		b.LDSlot(1, 0)
		b.SendW(1) // n
		b.LDSlot(1, 1)
		b.SendW(1) // prevBase
		b.LDSlot(1, 2)
		b.SendW(1) // curBase
		b.InletAddr(1, iIterDone)
		b.SendW(1)
		b.SendW(isa.RFP)
		b.SendE()
		b.Stop()
	})
	tSendRow.DirectOnly = true
	tIterDone = main.AddThread("iterdone", -1, func(b *core.Body) {
		b.LDSlot(0, 3)
		b.AddI(0, 0, 1)
		b.STSlot(3, 0) // t++
		b.LDSlot(1, 5) // iters
		b.BGE(0, 1, "wfmain.alldone")
		// Swap buffers, start the next iteration.
		b.LDSlot(0, 1)
		b.LDSlot(1, 2)
		b.STSlot(1, 1)
		b.STSlot(2, 0)
		b.ForkEnd(tStartIter)
		b.Case("wfmain.alldone")
		// Result = cur[n-1][n-1] (direct local read).
		b.LDSlot(0, 0)
		b.Mul(1, 0, 0)
		b.SubI(1, 1, 1)
		b.MulI(1, 1, 4)
		b.LDSlot(0, 2)
		b.Add(0, 0, 1)
		b.LD(0, 0, 0)
		b.StoreResult(0, 0)
		b.Stop()
	})
	tIterDone.DirectOnly = true

	iGotF = main.AddInlet("gotframe", func(b *core.Body) {
		b.TakeArg(0, 4, 0, tSendRow)
		b.PostEnd(tSendRow)
	})
	iIterDone = main.AddInlet("i_iterdone", func(b *core.Body) {
		b.PostEnd(tIterDone)
	})
	mainStart := main.AddInlet("start", func(b *core.Body) {
		b.Arg(0, 0)
		b.STSlot(0, 0) // n
		b.Arg(0, 1)
		b.STSlot(1, 0) // prevBase
		b.Arg(0, 2)
		b.STSlot(2, 0) // curBase
		b.Arg(0, 3)
		b.STSlot(5, 0) // iters
		b.PostEnd(tMainInit)
	})

	var bufA, bufB uint32
	return &core.Program{
		Name:   fmt.Sprintf("wavefront-%d", n),
		Blocks: []*core.Codeblock{main, row},
		Setup: func(h *core.Host) error {
			bufA = h.AllocData(n * n)
			bufB = h.AllocData(n * n)
			// prev (bufA) starts as all ones; cur (bufB) has fixed
			// boundaries.
			for i := 0; i < n*n; i++ {
				h.PokeFloat(bufA+uint32(4*i), 1.0)
			}
			for j := 0; j < n; j++ {
				h.PokeFloat(bufB+uint32(4*j), 1.0)
				h.PokeFloat(bufB+uint32(4*(j*n)), 1.0)
			}
			f := h.AllocFrame(main)
			return h.Start(mainStart, f,
				word.Int(int64(n)), word.Ptr(bufA), word.Ptr(bufB),
				word.Int(wavefrontIters))
		},
		Verify: func(h *core.Host) error {
			got := h.Result(0).AsFloat()
			if want := wavefrontRef(n); got != want {
				return fmt.Errorf("wavefront: result = %g, want %g", got, want)
			}
			return nil
		},
	}
}

// wavefrontRef computes the final corner value in pure Go with the exact
// operation structure of the simulated code.
func wavefrontRef(n int) float64 {
	prev := make([]float64, n*n)
	cur := make([]float64, n*n)
	for i := range prev {
		prev[i] = 1.0
	}
	for j := 0; j < n; j++ {
		cur[j] = 1.0
		cur[j*n] = 1.0
	}
	for t := 0; t < wavefrontIters; t++ {
		if t > 0 {
			prev, cur = cur, prev
			// Boundaries of the (re)used buffer are already 1.0: row 0
			// and column 0 are never overwritten.
		}
		for r := 1; r < n; r++ {
			west := 1.0
			for j := 1; j < n; j++ {
				north := cur[(r-1)*n+j]
				v := north + 0.5*west
				v = v + 0.25*prev[r*n+j]
				cur[r*n+j] = v
				west = v
			}
		}
	}
	return cur[n*n-1]
}
