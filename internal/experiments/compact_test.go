package experiments

import (
	"bytes"
	"context"
	"sync/atomic"
	"testing"

	"jmtam/internal/cache"
	"jmtam/internal/core"
	"jmtam/internal/trace"
)

// TestCompactRatioBenchmarks is the compaction acceptance bar: on all
// six dataflow benchmarks, under both implementations, the compacted
// recording must be at most 40% of the packed 4 B/ref size.
func TestCompactRatioBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates all benchmarks")
	}
	for _, w := range QuickWorkloads() {
		for _, impl := range []core.Impl{core.ImplMD, core.ImplAM} {
			_, rec, err := RecordOne(w, impl, core.Options{})
			if err != nil {
				t.Fatalf("%s/%s: %v", w.Name, impl, err)
			}
			data := rec.Compact()
			packed := 4 * rec.Len()
			ratio := float64(len(data)) / float64(packed)
			t.Logf("%-10s %-3s refs=%9d packed=%9d compact=%9d ratio=%.3f",
				w.Name, impl, rec.Len(), packed, len(data), ratio)
			if ratio > 0.40 {
				t.Errorf("%s/%s: compact ratio %.3f exceeds 0.40", w.Name, impl, ratio)
			}
		}
	}
}

// TestStreamReplayMatchesDirect asserts the full compact → decompact /
// stream → replay pipeline reproduces the direct path's cache
// statistics exactly, for a real benchmark trace across a geometry
// grid.
func TestStreamReplayMatchesDirect(t *testing.T) {
	var geoms []cache.Config
	for _, kb := range []int{1, 8, 64} {
		for _, a := range []int{1, 4} {
			geoms = append(geoms, cache.Config{SizeBytes: kb * 1024, BlockBytes: 64, Assoc: a})
		}
	}
	for _, impl := range []core.Impl{core.ImplMD, core.ImplAM} {
		r, rec, err := RecordOne(Workload{"dtw", 8}, impl, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := ReplayFanOut(r, rec, geoms, 1); err != nil {
			t.Fatal(err)
		}
		data := rec.Compact()

		// Decompacted recording, replayed the ordinary way.
		dec, err := trace.Decompact(data)
		if err != nil {
			t.Fatal(err)
		}
		rDec := &Run{}
		if err := ReplayFanOut(rDec, dec, geoms, 1); err != nil {
			t.Fatal(err)
		}

		// Streamed through a Reader, at two fan-out widths.
		for _, par := range []int{1, 3} {
			streamed, err := ReplayStreamFanOutContext(context.Background(), func() (*trace.Reader, error) {
				return trace.NewReader(bytes.NewReader(data))
			}, geoms, par)
			if err != nil {
				t.Fatal(err)
			}
			for g := range geoms {
				if streamed[g] != r.Caches[g] {
					t.Fatalf("%s par=%d geom %d: streamed %+v, direct %+v", impl, par, g, streamed[g], r.Caches[g])
				}
				if rDec.Caches[g] != r.Caches[g] {
					t.Fatalf("%s geom %d: decompacted %+v, direct %+v", impl, g, rDec.Caches[g], r.Caches[g])
				}
			}
		}
	}
}

// TestSweepOnRecordingBytes checks the live-footprint hook: deltas sum
// to zero once the sweep completes and the peak is positive.
func TestSweepOnRecordingBytes(t *testing.T) {
	var live, peak, calls atomic.Int64
	sw := &Sweep{
		Workloads:  []Workload{{"dtw", 8}},
		SizesKB:    []int{8},
		Assocs:     []int{4},
		BlockBytes: 64,
		Penalties:  []int{24},
		OnRecordingBytes: func(delta int64) {
			calls.Add(1)
			v := live.Add(delta)
			for {
				p := peak.Load()
				if v <= p || peak.CompareAndSwap(p, v) {
					break
				}
			}
		},
	}
	if _, err := sw.Execute(); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 4 { // 2 impls × (+ and −)
		t.Fatalf("hook called %d times, want 4", calls.Load())
	}
	if live.Load() != 0 {
		t.Fatalf("live bytes = %d after sweep, want 0", live.Load())
	}
	if peak.Load() <= 0 {
		t.Fatalf("peak bytes = %d, want > 0", peak.Load())
	}
}

// TestCompactStatFields pins the size accounting benchjson's
// -recording-bytes column reports.
func TestCompactStatFields(t *testing.T) {
	r := &trace.Recording{}
	for i := uint32(0); i < 1000; i++ {
		r.Fetch(0x2000 + i*4)
	}
	info, err := trace.CompactStat(r.Compact())
	if err != nil {
		t.Fatal(err)
	}
	if info.Refs != 1000 || info.PackedBytes != 4000 || info.Ratio() >= 0.05 {
		t.Fatalf("info = %+v (ratio %.3f)", info, info.Ratio())
	}
}
