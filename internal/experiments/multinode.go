package experiments

import (
	"context"
	"fmt"

	"jmtam/internal/cache"
	"jmtam/internal/core"
	"jmtam/internal/machine"
	"jmtam/internal/mem"
	"jmtam/internal/netsim"
	"jmtam/internal/parallel"
	"jmtam/internal/programs"
	"jmtam/internal/trace"
)

// RecordCluster simulates one workload on an opt.Nodes mesh with a
// per-node trace recording attached, returning the run (cache
// statistics unfilled) and one reference stream per node. Granularity
// statistics are merged across nodes; Run.Ticks carries the cluster's
// elapsed lockstep time, the multi-node analogue of a cycle count.
func RecordCluster(w Workload, impl core.Impl, opt core.Options) (*Run, []*trace.Recording, error) {
	return RecordClusterContext(context.Background(), w, impl, opt)
}

// RecordClusterContext is RecordCluster with cooperative cancellation
// of the cluster step loop.
func RecordClusterContext(ctx context.Context, w Workload, impl core.Impl, opt core.Options) (*Run, []*trace.Recording, error) {
	spec, err := programs.ByName(w.Name)
	if err != nil {
		return nil, nil, err
	}
	if opt.MaxInstructions == 0 {
		opt.MaxInstructions = 2_000_000_000
	}
	cs, err := core.BuildCluster(impl, spec.Build(w.Arg), opt)
	if err != nil {
		return nil, nil, err
	}
	recs := make([]*trace.Recording, cs.Nodes)
	cs.Tracers = make([]machine.Tracer, cs.Nodes)
	for k := range recs {
		recs[k] = &trace.Recording{}
		cs.Tracers[k] = recs[k]
	}
	var nicRecs []*trace.Recording
	if impl.Caps().NICInlets {
		nicRecs = make([]*trace.Recording, cs.Nodes)
		cs.NICTracers = make([]machine.Tracer, cs.Nodes)
		for k := range nicRecs {
			nicRecs[k] = &trace.Recording{}
			cs.NICTracers[k] = nicRecs[k]
		}
	}
	if err := cs.RunContext(ctx); err != nil {
		return nil, nil, err
	}
	g := cs.MergedGran()
	r := &Run{
		Workload:     w,
		Impl:         impl,
		Nodes:        cs.Nodes,
		Ticks:        cs.Ticks(),
		Instructions: cs.Instructions(),
		TPQ:          g.TPQ(),
		IPT:          g.IPT(),
		IPQ:          g.IPQ(),
		Threads:      g.Threads,
		Quanta:       g.Quanta,
	}
	for _, rec := range recs {
		for cls := mem.Class(0); cls < mem.NumClasses; cls++ {
			r.Counts.Fetches[cls] += rec.Fetches[cls]
			r.Counts.Reads[cls] += rec.Reads[cls]
			r.Counts.Writes[cls] += rec.Writes[cls]
		}
	}
	if nicRecs != nil {
		var hi uint64
		for _, m := range cs.C.Machines {
			hi += m.HighInstructions()
		}
		nic := &NICStats{Instructions: hi, Config: NICGeom(opt)}
		for _, rec := range nicRecs {
			for cls := mem.Class(0); cls < mem.NumClasses; cls++ {
				nic.Counts.Fetches[cls] += rec.Fetches[cls]
				nic.Counts.Reads[cls] += rec.Reads[cls]
				nic.Counts.Writes[cls] += rec.Writes[cls]
			}
		}
		r.NIC = nic
		r.nicRecs = nicRecs
	}
	if cs.Obs != nil {
		r.Metrics = cs.Obs.Metrics
		// The recordings replaced the inline collectors, so the run
		// finalizer could not fold reference-class counts; do it here.
		for cls := mem.Class(0); cls < mem.NumClasses; cls++ {
			name := cls.String()
			r.Metrics.Counter("ref.fetch." + name).Add(r.Counts.Fetches[cls])
			r.Metrics.Counter("ref.read." + name).Add(r.Counts.Reads[cls])
			r.Metrics.Counter("ref.write." + name).Add(r.Counts.Writes[cls])
		}
	}
	return r, recs, nil
}

// ReplayClusterFanOutContext fills r.Caches by replaying the per-node
// recordings through every geometry: each node gets its own private
// I/D cache pair per geometry (a mesh node owns its caches), and the
// per-node misses are summed into one CacheStats per geometry. Like
// the uniprocessor ReplayFanOutContext, the geometries are split into
// one contiguous group per worker and each node's stream is replayed
// once through the whole group with the vectorized kernel; with
// workers >= geometries this degenerates to one geometry per worker.
func ReplayClusterFanOutContext(ctx context.Context, r *Run, recs []*trace.Recording, geoms []cache.Config, parallelism int) error {
	r.Caches = make([]CacheStats, len(geoms))
	var mcs []trace.MissCounts
	if r.Metrics != nil {
		mcs = make([]trace.MissCounts, len(geoms))
	}
	groups := replayGroups(len(geoms), parallelism)
	err := parallel.ForEachContext(ctx, parallelism, len(groups), func(gi int) error {
		lo, hi := groups[gi][0], groups[gi][1]
		for g := lo; g < hi; g++ {
			r.Caches[g] = CacheStats{Config: geoms[g]}
		}
		pairs := make([]trace.Pair, hi-lo)
		for _, rec := range recs {
			for g := lo; g < hi; g++ {
				p, err := trace.NewPair(geoms[g])
				if err != nil {
					return err
				}
				pairs[g-lo] = p
			}
			if mcs != nil {
				for i, mc := range rec.ReplayAllObserved(pairs) {
					for c := mem.Class(0); c < mem.NumClasses; c++ {
						mcs[lo+i].Fetch[c] += mc.Fetch[c]
						mcs[lo+i].Read[c] += mc.Read[c]
						mcs[lo+i].Write[c] += mc.Write[c]
					}
				}
			} else if err := rec.ReplayAllContext(ctx, pairs); err != nil {
				return err
			}
			for i, p := range pairs {
				cst := &r.Caches[lo+i]
				cst.Config = p.I.Config()
				cst.IMisses += p.I.Stats().Misses
				cst.DMisses += p.D.Stats().Misses
				cst.Writebacks += p.D.Stats().Writebacks
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	for g := range mcs {
		mcs[g].AddTo(r.Metrics, geoms[g].String())
	}
	return replayNIC(r)
}

// RunClusterParContext simulates one workload on an opt.Nodes mesh,
// recording each node's reference stream, then replays the streams
// through the given cache geometries (per-node private caches, misses
// summed per geometry). RunOneParContext dispatches here whenever
// Options.Nodes > 1, so a Sweep gains a nodes axis simply by setting
// Sweep.Options.Nodes.
func RunClusterParContext(ctx context.Context, w Workload, impl core.Impl, geoms []cache.Config, opt core.Options, parallelism int) (*Run, error) {
	// Surface geometry errors before paying for a simulation.
	for _, g := range geoms {
		if err := g.Validate(); err != nil {
			return nil, err
		}
	}
	r, recs, err := RecordClusterContext(ctx, w, impl, opt)
	if err != nil {
		return nil, err
	}
	if err := ReplayClusterFanOutContext(ctx, r, recs, geoms, parallelism); err != nil {
		return nil, err
	}
	return r, nil
}

// --- backend ratios versus node count and hop latency ------------------------

// defaultRatioImpls resolves an impl list for the multi-node sweeps:
// nil/empty selects the paper's MD-versus-AM pair. The list is
// reordered into registry (canonical report) order.
func defaultRatioImpls(impls []core.Impl) []core.Impl {
	if len(impls) == 0 {
		impls = []core.Impl{core.ImplMD, core.ImplAM}
	}
	out := append([]core.Impl(nil), impls...)
	core.SortImpls(out)
	return out
}

func implNames(impls []core.Impl) []string {
	names := make([]string, len(impls))
	for i, impl := range impls {
		names[i] = impl.Name()
	}
	return names
}

// NodeRatioRow compares the swept backends on one mesh size, keyed by
// backend registry name: aggregate cycles (instructions plus miss
// penalties, summed over nodes — the paper's uniprocessor metric
// extended to N processors' total work) and elapsed lockstep ticks
// (wall-clock on the mesh, where idle processors cost time but not
// work). RatioCycles and RatioTicks are MD-relative — MD's total
// divided by the named backend's, so RatioCycles["am"] is the paper's
// MD/AM headline and values above 1 mean the backend beats MD. When MD
// is not among the swept backends the ratio maps are empty.
type NodeRatioRow struct {
	Nodes int
	// Impls lists the swept backend names in registry order; the maps
	// below are keyed by these names.
	Impls       []string
	Cycles      map[string]uint64
	Ticks       map[string]uint64
	RatioCycles map[string]float64
	RatioTicks  map[string]float64
}

// NodeRatioSweep runs every workload under every backend at each node
// count and aggregates per node count: total cycles at the given cache
// geometry and miss penalty, and total elapsed ticks. A nil impls list
// selects {MD, AM}. The len(impls) x len(nodeCounts) x len(ws) cluster
// simulations run on at most parallelism workers (0 = GOMAXPROCS);
// totals accumulate in job order, so rows are identical at every
// parallelism setting. Node counts must be powers of two (1 selects the
// uniprocessor-equivalent 1-node cluster so elapsed ticks stay
// comparable).
func NodeRatioSweep(ws []Workload, impls []core.Impl, nodeCounts []int, geom cache.Config, penalty int, opt core.Options, parallelism int) ([]NodeRatioRow, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	impls = defaultRatioImpls(impls)
	type job struct {
		n    int
		impl core.Impl
		w    Workload
	}
	var jobs []job
	for _, n := range nodeCounts {
		for _, impl := range impls {
			for _, w := range ws {
				jobs = append(jobs, job{n, impl, w})
			}
		}
	}
	runs := make([]*Run, len(jobs))
	par := parallel.Workers(parallelism)
	err := parallel.ForEach(par, len(jobs), func(i int) error {
		o := opt
		o.Nodes = jobs[i].n
		r, err := RunClusterParContext(context.Background(), jobs[i].w, jobs[i].impl,
			[]cache.Config{geom}, o, 1)
		if err != nil {
			return fmt.Errorf("%s/%s n=%d: %w", jobs[i].w.Name, jobs[i].impl, jobs[i].n, err)
		}
		runs[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	names := implNames(impls)
	rowIdx := make(map[int]int, len(nodeCounts))
	rows := make([]NodeRatioRow, len(nodeCounts))
	for i, n := range nodeCounts {
		rowIdx[n] = i
		rows[i] = NodeRatioRow{
			Nodes: n, Impls: names,
			Cycles: make(map[string]uint64), Ticks: make(map[string]uint64),
			RatioCycles: make(map[string]float64), RatioTicks: make(map[string]float64),
		}
	}
	for i, j := range jobs {
		row := &rows[rowIdx[j.n]]
		name := j.impl.Name()
		row.Cycles[name] += runs[i].Cycles(0, penalty, false)
		row.Ticks[name] += runs[i].Ticks
	}
	for i := range rows {
		row := &rows[i]
		md, haveMD := row.Cycles[core.ImplMD.Name()]
		if !haveMD {
			continue
		}
		mdTicks := row.Ticks[core.ImplMD.Name()]
		for _, name := range names {
			row.RatioCycles[name] = ratio64(md, row.Cycles[name])
			row.RatioTicks[name] = ratio64(mdTicks, row.Ticks[name])
		}
	}
	return rows, nil
}

// HopRatioRow compares the swept backends at one per-hop routing delay
// on a fixed mesh, keyed by backend registry name: total elapsed ticks
// and their MD-relative ratios (MD's ticks over the named backend's).
// Remote I-structure fetches are themselves active messages, so hop
// latency stretches every backend's split-phase round trips; the ratio
// isolates how each scheduling discipline hides it.
type HopRatioRow struct {
	PerHop uint64
	// Impls lists the swept backend names in registry order; the maps
	// below are keyed by these names.
	Impls      []string
	Ticks      map[string]uint64
	RatioTicks map[string]float64
}

// HopLatencySweep runs every workload under every backend on a
// nodes-sized mesh at each per-hop delay, aggregating elapsed lockstep
// ticks per delay. A nil impls list selects {MD, AM}. The base and
// per-word costs come from the netsim default configuration; only
// PerHop varies.
func HopLatencySweep(ws []Workload, impls []core.Impl, nodes int, perHops []uint64, opt core.Options, parallelism int) ([]HopRatioRow, error) {
	impls = defaultRatioImpls(impls)
	type job struct {
		hop  int
		impl core.Impl
		w    Workload
	}
	var jobs []job
	for h := range perHops {
		for _, impl := range impls {
			for _, w := range ws {
				jobs = append(jobs, job{h, impl, w})
			}
		}
	}
	ticks := make([]uint64, len(jobs))
	par := parallel.Workers(parallelism)
	err := parallel.ForEach(par, len(jobs), func(i int) error {
		o := opt
		o.Nodes = nodes
		cfg := netsim.DefaultConfig(nodes)
		cfg.PerHop = perHops[jobs[i].hop]
		o.Net = &cfg
		r, _, err := RecordClusterContext(context.Background(), jobs[i].w, jobs[i].impl, o)
		if err != nil {
			return fmt.Errorf("%s/%s perhop=%d: %w",
				jobs[i].w.Name, jobs[i].impl, perHops[jobs[i].hop], err)
		}
		ticks[i] = r.Ticks
		return nil
	})
	if err != nil {
		return nil, err
	}
	names := implNames(impls)
	rows := make([]HopRatioRow, len(perHops))
	for i, h := range perHops {
		rows[i] = HopRatioRow{
			PerHop: h, Impls: names,
			Ticks: make(map[string]uint64), RatioTicks: make(map[string]float64),
		}
	}
	for i, j := range jobs {
		rows[j.hop].Ticks[j.impl.Name()] += ticks[i]
	}
	for i := range rows {
		row := &rows[i]
		md, haveMD := row.Ticks[core.ImplMD.Name()]
		if !haveMD {
			continue
		}
		for _, name := range names {
			row.RatioTicks[name] = ratio64(md, row.Ticks[name])
		}
	}
	return rows, nil
}
