package experiments

import (
	"context"
	"fmt"

	"jmtam/internal/cache"
	"jmtam/internal/core"
	"jmtam/internal/machine"
	"jmtam/internal/mem"
	"jmtam/internal/netsim"
	"jmtam/internal/parallel"
	"jmtam/internal/programs"
	"jmtam/internal/trace"
)

// RecordCluster simulates one workload on an opt.Nodes mesh with a
// per-node trace recording attached, returning the run (cache
// statistics unfilled) and one reference stream per node. Granularity
// statistics are merged across nodes; Run.Ticks carries the cluster's
// elapsed lockstep time, the multi-node analogue of a cycle count.
func RecordCluster(w Workload, impl core.Impl, opt core.Options) (*Run, []*trace.Recording, error) {
	return RecordClusterContext(context.Background(), w, impl, opt)
}

// RecordClusterContext is RecordCluster with cooperative cancellation
// of the cluster step loop.
func RecordClusterContext(ctx context.Context, w Workload, impl core.Impl, opt core.Options) (*Run, []*trace.Recording, error) {
	spec, err := programs.ByName(w.Name)
	if err != nil {
		return nil, nil, err
	}
	if opt.MaxInstructions == 0 {
		opt.MaxInstructions = 2_000_000_000
	}
	cs, err := core.BuildCluster(impl, spec.Build(w.Arg), opt)
	if err != nil {
		return nil, nil, err
	}
	recs := make([]*trace.Recording, cs.Nodes)
	cs.Tracers = make([]machine.Tracer, cs.Nodes)
	for k := range recs {
		recs[k] = &trace.Recording{}
		cs.Tracers[k] = recs[k]
	}
	if err := cs.RunContext(ctx); err != nil {
		return nil, nil, err
	}
	g := cs.MergedGran()
	r := &Run{
		Workload:     w,
		Impl:         impl,
		Nodes:        cs.Nodes,
		Ticks:        cs.Ticks(),
		Instructions: cs.Instructions(),
		TPQ:          g.TPQ(),
		IPT:          g.IPT(),
		IPQ:          g.IPQ(),
		Threads:      g.Threads,
		Quanta:       g.Quanta,
	}
	for _, rec := range recs {
		for cls := mem.Class(0); cls < mem.NumClasses; cls++ {
			r.Counts.Fetches[cls] += rec.Fetches[cls]
			r.Counts.Reads[cls] += rec.Reads[cls]
			r.Counts.Writes[cls] += rec.Writes[cls]
		}
	}
	if cs.Obs != nil {
		r.Metrics = cs.Obs.Metrics
		// The recordings replaced the inline collectors, so the run
		// finalizer could not fold reference-class counts; do it here.
		for cls := mem.Class(0); cls < mem.NumClasses; cls++ {
			name := cls.String()
			r.Metrics.Counter("ref.fetch." + name).Add(r.Counts.Fetches[cls])
			r.Metrics.Counter("ref.read." + name).Add(r.Counts.Reads[cls])
			r.Metrics.Counter("ref.write." + name).Add(r.Counts.Writes[cls])
		}
	}
	return r, recs, nil
}

// ReplayClusterFanOutContext fills r.Caches by replaying the per-node
// recordings through every geometry: each node gets its own private
// I/D cache pair per geometry (a mesh node owns its caches), and the
// per-node misses are summed into one CacheStats per geometry. Like
// the uniprocessor ReplayFanOutContext, the geometries are split into
// one contiguous group per worker and each node's stream is replayed
// once through the whole group with the vectorized kernel; with
// workers >= geometries this degenerates to one geometry per worker.
func ReplayClusterFanOutContext(ctx context.Context, r *Run, recs []*trace.Recording, geoms []cache.Config, parallelism int) error {
	r.Caches = make([]CacheStats, len(geoms))
	var mcs []trace.MissCounts
	if r.Metrics != nil {
		mcs = make([]trace.MissCounts, len(geoms))
	}
	groups := replayGroups(len(geoms), parallelism)
	err := parallel.ForEachContext(ctx, parallelism, len(groups), func(gi int) error {
		lo, hi := groups[gi][0], groups[gi][1]
		for g := lo; g < hi; g++ {
			r.Caches[g] = CacheStats{Config: geoms[g]}
		}
		pairs := make([]trace.Pair, hi-lo)
		for _, rec := range recs {
			for g := lo; g < hi; g++ {
				p, err := trace.NewPair(geoms[g])
				if err != nil {
					return err
				}
				pairs[g-lo] = p
			}
			if mcs != nil {
				for i, mc := range rec.ReplayAllObserved(pairs) {
					for c := mem.Class(0); c < mem.NumClasses; c++ {
						mcs[lo+i].Fetch[c] += mc.Fetch[c]
						mcs[lo+i].Read[c] += mc.Read[c]
						mcs[lo+i].Write[c] += mc.Write[c]
					}
				}
			} else if err := rec.ReplayAllContext(ctx, pairs); err != nil {
				return err
			}
			for i, p := range pairs {
				cst := &r.Caches[lo+i]
				cst.Config = p.I.Config()
				cst.IMisses += p.I.Stats().Misses
				cst.DMisses += p.D.Stats().Misses
				cst.Writebacks += p.D.Stats().Writebacks
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	for g := range mcs {
		mcs[g].AddTo(r.Metrics, geoms[g].String())
	}
	return nil
}

// RunClusterParContext simulates one workload on an opt.Nodes mesh,
// recording each node's reference stream, then replays the streams
// through the given cache geometries (per-node private caches, misses
// summed per geometry). RunOneParContext dispatches here whenever
// Options.Nodes > 1, so a Sweep gains a nodes axis simply by setting
// Sweep.Options.Nodes.
func RunClusterParContext(ctx context.Context, w Workload, impl core.Impl, geoms []cache.Config, opt core.Options, parallelism int) (*Run, error) {
	// Surface geometry errors before paying for a simulation.
	for _, g := range geoms {
		if err := g.Validate(); err != nil {
			return nil, err
		}
	}
	r, recs, err := RecordClusterContext(ctx, w, impl, opt)
	if err != nil {
		return nil, err
	}
	if err := ReplayClusterFanOutContext(ctx, r, recs, geoms, parallelism); err != nil {
		return nil, err
	}
	return r, nil
}

// --- MD/AM ratio versus node count and hop latency ---------------------------

// NodeRatioRow compares the two implementations on one mesh size: the
// MD/AM ratio by aggregate cycles (instructions plus miss penalties,
// summed over nodes — the paper's uniprocessor metric extended to N
// processors' total work) and by elapsed lockstep ticks (wall-clock on
// the mesh, where idle processors cost time but not work).
type NodeRatioRow struct {
	Nodes              int
	MDCycles, AMCycles uint64
	MDTicks, AMTicks   uint64
	RatioCycles        float64
	RatioTicks         float64
}

// NodeRatioSweep runs every workload under MD and AM at each node
// count and aggregates per node count: total cycles at the given cache
// geometry and miss penalty, and total elapsed ticks. The 2 x
// len(nodeCounts) x len(ws) cluster simulations run on at most
// parallelism workers (0 = GOMAXPROCS); totals accumulate in job
// order, so rows are identical at every parallelism setting. Node
// counts must be powers of two (1 selects the uniprocessor-equivalent
// 1-node cluster so elapsed ticks stay comparable).
func NodeRatioSweep(ws []Workload, nodeCounts []int, geom cache.Config, penalty int, opt core.Options, parallelism int) ([]NodeRatioRow, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	impls := [2]core.Impl{core.ImplMD, core.ImplAM}
	type job struct {
		n    int
		impl core.Impl
		w    Workload
	}
	var jobs []job
	for _, n := range nodeCounts {
		for _, impl := range impls {
			for _, w := range ws {
				jobs = append(jobs, job{n, impl, w})
			}
		}
	}
	runs := make([]*Run, len(jobs))
	par := parallel.Workers(parallelism)
	err := parallel.ForEach(par, len(jobs), func(i int) error {
		o := opt
		o.Nodes = jobs[i].n
		r, err := RunClusterParContext(context.Background(), jobs[i].w, jobs[i].impl,
			[]cache.Config{geom}, o, 1)
		if err != nil {
			return fmt.Errorf("%s/%s n=%d: %w", jobs[i].w.Name, jobs[i].impl, jobs[i].n, err)
		}
		runs[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	rowIdx := make(map[int]int, len(nodeCounts))
	rows := make([]NodeRatioRow, len(nodeCounts))
	for i, n := range nodeCounts {
		rowIdx[n] = i
		rows[i].Nodes = n
	}
	for i, j := range jobs {
		row := &rows[rowIdx[j.n]]
		c := runs[i].Cycles(0, penalty, false)
		if j.impl == core.ImplMD {
			row.MDCycles += c
			row.MDTicks += runs[i].Ticks
		} else {
			row.AMCycles += c
			row.AMTicks += runs[i].Ticks
		}
	}
	for i := range rows {
		rows[i].RatioCycles = ratio64(rows[i].MDCycles, rows[i].AMCycles)
		rows[i].RatioTicks = ratio64(rows[i].MDTicks, rows[i].AMTicks)
	}
	return rows, nil
}

// HopRatioRow compares the two implementations at one per-hop routing
// delay on a fixed mesh: total elapsed ticks and their MD/AM ratio.
// Remote I-structure fetches are themselves active messages, so hop
// latency stretches both systems' split-phase round trips; the ratio
// isolates how each scheduling discipline hides it.
type HopRatioRow struct {
	PerHop           uint64
	MDTicks, AMTicks uint64
	RatioTicks       float64
}

// HopLatencySweep runs every workload under MD and AM on a nodes-sized
// mesh at each per-hop delay, aggregating elapsed lockstep ticks per
// delay. The base and per-word costs come from the netsim default
// configuration; only PerHop varies.
func HopLatencySweep(ws []Workload, nodes int, perHops []uint64, opt core.Options, parallelism int) ([]HopRatioRow, error) {
	impls := [2]core.Impl{core.ImplMD, core.ImplAM}
	type job struct {
		hop  int
		impl core.Impl
		w    Workload
	}
	var jobs []job
	for h := range perHops {
		for _, impl := range impls {
			for _, w := range ws {
				jobs = append(jobs, job{h, impl, w})
			}
		}
	}
	ticks := make([]uint64, len(jobs))
	par := parallel.Workers(parallelism)
	err := parallel.ForEach(par, len(jobs), func(i int) error {
		o := opt
		o.Nodes = nodes
		cfg := netsim.DefaultConfig(nodes)
		cfg.PerHop = perHops[jobs[i].hop]
		o.Net = &cfg
		r, _, err := RecordClusterContext(context.Background(), jobs[i].w, jobs[i].impl, o)
		if err != nil {
			return fmt.Errorf("%s/%s perhop=%d: %w",
				jobs[i].w.Name, jobs[i].impl, perHops[jobs[i].hop], err)
		}
		ticks[i] = r.Ticks
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]HopRatioRow, len(perHops))
	for i, h := range perHops {
		rows[i].PerHop = h
	}
	for i, j := range jobs {
		if j.impl == core.ImplMD {
			rows[j.hop].MDTicks += ticks[i]
		} else {
			rows[j.hop].AMTicks += ticks[i]
		}
	}
	for i := range rows {
		rows[i].RatioTicks = ratio64(rows[i].MDTicks, rows[i].AMTicks)
	}
	return rows, nil
}
