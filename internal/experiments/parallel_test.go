package experiments

import (
	"reflect"
	"testing"

	"jmtam/internal/cache"
	"jmtam/internal/core"
	"jmtam/internal/programs"
	"jmtam/internal/trace"
)

// TestReplayEquivalence asserts the engine's core invariant across all
// three replay paths: the per-geometry scalar fan-out (workers >=
// geometries), the vectorized single-pass kernel (one group over all
// geometries), and ReplayObserved's attributing variants all yield miss
// and writeback counts identical to attaching that geometry's pair
// inline during simulation (the pre-record/replay collector path), for
// every quick workload and both implementations.
func TestReplayEquivalence(t *testing.T) {
	geoms := []cache.Config{
		{SizeBytes: 1 * 1024, BlockBytes: 64, Assoc: 1},
		{SizeBytes: 8 * 1024, BlockBytes: 64, Assoc: 4},
		{SizeBytes: 32 * 1024, BlockBytes: 64, Assoc: 2},
	}
	for _, w := range QuickWorkloads() {
		for _, impl := range []core.Impl{core.ImplMD, core.ImplAM} {
			// Reference: the inline collector fan-out.
			spec, err := programs.ByName(w.Name)
			if err != nil {
				t.Fatal(err)
			}
			sim, err := core.Build(impl, spec.Build(w.Arg), core.Options{MaxInstructions: 2_000_000_000})
			if err != nil {
				t.Fatal(err)
			}
			for _, g := range geoms {
				if _, err := sim.Collector.AddPair(g); err != nil {
					t.Fatal(err)
				}
			}
			if err := sim.Run(); err != nil {
				t.Fatal(err)
			}
			want := make([]CacheStats, len(geoms))
			for g, p := range sim.Collector.Pairs {
				want[g] = CacheStats{
					Config:     p.I.Config(),
					IMisses:    p.I.Stats().Misses,
					DMisses:    p.D.Stats().Misses,
					Writebacks: p.D.Stats().Writebacks,
				}
			}

			// Record once; replay through both fan-out shapes.
			r, rec, err := RecordOne(w, impl, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if r.Counts != sim.Collector.Counts {
				t.Errorf("%s/%v: replay counts %+v != inline %+v",
					w.Name, impl, r.Counts, sim.Collector.Counts)
			}
			if r.Instructions != sim.M.Instructions() {
				t.Errorf("%s/%v: instructions %d != %d", w.Name, impl, r.Instructions, sim.M.Instructions())
			}
			// Workers >= geometries: singleton groups, the per-geometry path.
			if err := ReplayFanOut(r, rec, geoms, len(geoms)+1); err != nil {
				t.Fatal(err)
			}
			scalar := append([]CacheStats(nil), r.Caches...)
			// One worker: a single vectorized group over every geometry.
			if err := ReplayFanOut(r, rec, geoms, 1); err != nil {
				t.Fatal(err)
			}
			vectorized := append([]CacheStats(nil), r.Caches...)
			for g := range geoms {
				if scalar[g] != want[g] {
					t.Errorf("%s/%v geom %v: scalar replay %+v != inline %+v",
						w.Name, impl, geoms[g], scalar[g], want[g])
				}
				if vectorized[g] != want[g] {
					t.Errorf("%s/%v geom %v: vectorized replay %+v != inline %+v",
						w.Name, impl, geoms[g], vectorized[g], want[g])
				}
			}

			// Attributing replays: scalar ReplayObserved vs vectorized
			// ReplayAllObserved, stats and per-cause miss attribution.
			obsPairs := make([]trace.Pair, len(geoms))
			for g := range geoms {
				if obsPairs[g], err = trace.NewPair(geoms[g]); err != nil {
					t.Fatal(err)
				}
			}
			mcsAll := rec.ReplayAllObserved(obsPairs)
			for g := range geoms {
				p, err := trace.NewPair(geoms[g])
				if err != nil {
					t.Fatal(err)
				}
				mc := rec.ReplayObserved(p)
				if mc != mcsAll[g] {
					t.Errorf("%s/%v geom %v: ReplayObserved attribution %+v != ReplayAllObserved %+v",
						w.Name, impl, geoms[g], mc, mcsAll[g])
				}
				got := CacheStats{
					Config:     p.I.Config(),
					IMisses:    p.I.Stats().Misses,
					DMisses:    p.D.Stats().Misses,
					Writebacks: p.D.Stats().Writebacks,
				}
				if got != want[g] {
					t.Errorf("%s/%v geom %v: observed replay %+v != inline %+v",
						w.Name, impl, geoms[g], got, want[g])
				}
				if total := mc.Total(); total != want[g].IMisses+want[g].DMisses {
					t.Errorf("%s/%v geom %v: attributed misses %d != total %d",
						w.Name, impl, geoms[g], total, want[g].IMisses+want[g].DMisses)
				}
				if vo := obsPairs[g]; vo.I.Stats() != p.I.Stats() || vo.D.Stats() != p.D.Stats() {
					t.Errorf("%s/%v geom %v: ReplayAllObserved pair stats diverge from ReplayObserved",
						w.Name, impl, geoms[g])
				}
			}
		}
	}
}

// TestParallelDeterminism asserts that Execute yields a numerically
// identical Dataset at parallelism 1 and parallelism N.
func TestParallelDeterminism(t *testing.T) {
	build := func(par int) *Sweep {
		s := tinySweep()
		s.Workloads = append(s.Workloads, Workload{"dtw", 6})
		s.Parallelism = par
		return s
	}
	serial, err := build(1).Execute()
	if err != nil {
		t.Fatal(err)
	}
	wide, err := build(8).Execute()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Geoms, wide.Geoms) {
		t.Fatalf("geometry grids diverge")
	}
	for _, w := range serial.Sweep.Workloads {
		for _, impl := range []core.Impl{core.ImplMD, core.ImplAM} {
			a, b := serial.Run(w.Name, impl), wide.Run(w.Name, impl)
			if a == nil || b == nil {
				t.Fatalf("%s/%v missing run", w.Name, impl)
			}
			if a.Instructions != b.Instructions || a.Counts != b.Counts {
				t.Errorf("%s/%v: simulation outcome differs between parallelism settings", w.Name, impl)
			}
			if !reflect.DeepEqual(a.Caches, b.Caches) {
				t.Errorf("%s/%v: cache stats differ between parallelism settings", w.Name, impl)
			}
		}
		for _, kb := range serial.Sweep.SizesKB {
			for _, assoc := range serial.Sweep.Assocs {
				for _, pen := range serial.Sweep.Penalties {
					if r1, rn := serial.Ratio(w.Name, kb, assoc, pen), wide.Ratio(w.Name, kb, assoc, pen); r1 != rn {
						t.Errorf("%s %dK/%d-way/m%d: ratio %v (serial) != %v (parallel)",
							w.Name, kb, assoc, pen, r1, rn)
					}
				}
			}
		}
	}
}

// TestExecuteDoesNotMutateReceiver guards the concurrent-reuse
// contract: defaults are resolved into locals, never written back.
func TestExecuteDoesNotMutateReceiver(t *testing.T) {
	s := tinySweep()
	if s.Impls != nil {
		t.Fatal("tinySweep unexpectedly sets Impls")
	}
	first, err := s.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if s.Impls != nil {
		t.Errorf("Execute wrote defaults onto the receiver: %v", s.Impls)
	}
	// A second execution of the same value must succeed and agree.
	second, err := s.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if r1, r2 := first.Ratio("ss", 8, 4, 12), second.Ratio("ss", 8, 4, 12); r1 != r2 {
		t.Errorf("repeated Execute diverged: %v vs %v", r1, r2)
	}
}

// TestBlockSweepDeterminism pins BlockSweep's record-once/replay-many
// path to its serial outcome.
func TestBlockSweepDeterminism(t *testing.T) {
	ws := []Workload{{"ss", 40}, {"qs", 30}}
	serial, err := BlockSweep(ws, core.Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := BlockSweep(ws, core.Options{}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, wide) {
		t.Errorf("BlockSweep rows differ:\nserial: %+v\nparallel: %+v", serial, wide)
	}
}

// TestAssocSweepDeterminism pins the associativity ablation (which
// exercises the generic 8/16-way kernels through the vectorized replay)
// to its serial outcome, and sanity-checks the grid.
func TestAssocSweepDeterminism(t *testing.T) {
	ws := []Workload{{"ss", 40}, {"qs", 30}}
	serial, err := AssocSweep(ws, core.Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := AssocSweep(ws, core.Options{}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, wide) {
		t.Errorf("AssocSweep rows differ:\nserial: %+v\nparallel: %+v", serial, wide)
	}
	if len(serial) != 5 || serial[0].Assoc != 1 || serial[4].Assoc != 16 {
		t.Fatalf("unexpected associativity grid: %+v", serial)
	}
	for i, r := range serial {
		if r.MDCycles == 0 || r.AMCycles == 0 || r.Ratio <= 0 {
			t.Errorf("row %d incomplete: %+v", i, r)
		}
		// More ways can only remove conflict misses at fixed size.
		if i > 0 && r.MDMisses > serial[i-1].MDMisses*21/20 {
			t.Errorf("MD misses rose sharply with associativity: %d-way %d vs %d-way %d",
				r.Assoc, r.MDMisses, serial[i-1].Assoc, serial[i-1].MDMisses)
		}
	}
}

// TestRunOneParBadGeometry checks geometry validation happens before
// simulation.
func TestRunOneParBadGeometry(t *testing.T) {
	bad := []cache.Config{{SizeBytes: 100, BlockBytes: 64, Assoc: 1}}
	if _, err := RunOnePar(Workload{"ss", 40}, core.ImplMD, bad, core.Options{}, 2); err == nil {
		t.Error("invalid geometry accepted")
	}
}
