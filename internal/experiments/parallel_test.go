package experiments

import (
	"reflect"
	"testing"

	"jmtam/internal/cache"
	"jmtam/internal/core"
	"jmtam/internal/programs"
)

// TestReplayEquivalence asserts the engine's core invariant: replaying
// a recorded trace through a geometry yields miss and writeback counts
// identical to attaching that geometry's pair inline during simulation
// (the pre-record/replay collector path), for every quick workload and
// both implementations.
func TestReplayEquivalence(t *testing.T) {
	geoms := []cache.Config{
		{SizeBytes: 1 * 1024, BlockBytes: 64, Assoc: 1},
		{SizeBytes: 8 * 1024, BlockBytes: 64, Assoc: 4},
		{SizeBytes: 32 * 1024, BlockBytes: 64, Assoc: 2},
	}
	for _, w := range QuickWorkloads() {
		for _, impl := range []core.Impl{core.ImplMD, core.ImplAM} {
			// Reference: the inline collector fan-out.
			spec, err := programs.ByName(w.Name)
			if err != nil {
				t.Fatal(err)
			}
			sim, err := core.Build(impl, spec.Build(w.Arg), core.Options{MaxInstructions: 2_000_000_000})
			if err != nil {
				t.Fatal(err)
			}
			for _, g := range geoms {
				if _, err := sim.Collector.AddPair(g); err != nil {
					t.Fatal(err)
				}
			}
			if err := sim.Run(); err != nil {
				t.Fatal(err)
			}

			// Record/replay path.
			r, err := RunOnePar(w, impl, geoms, core.Options{}, 4)
			if err != nil {
				t.Fatal(err)
			}

			if r.Counts != sim.Collector.Counts {
				t.Errorf("%s/%v: replay counts %+v != inline %+v",
					w.Name, impl, r.Counts, sim.Collector.Counts)
			}
			if r.Instructions != sim.M.Instructions() {
				t.Errorf("%s/%v: instructions %d != %d", w.Name, impl, r.Instructions, sim.M.Instructions())
			}
			for g, p := range sim.Collector.Pairs {
				got := r.Caches[g]
				want := CacheStats{
					Config:     p.I.Config(),
					IMisses:    p.I.Stats().Misses,
					DMisses:    p.D.Stats().Misses,
					Writebacks: p.D.Stats().Writebacks,
				}
				if got != want {
					t.Errorf("%s/%v geom %v: replayed %+v != inline %+v",
						w.Name, impl, geoms[g], got, want)
				}
			}
		}
	}
}

// TestParallelDeterminism asserts that Execute yields a numerically
// identical Dataset at parallelism 1 and parallelism N.
func TestParallelDeterminism(t *testing.T) {
	build := func(par int) *Sweep {
		s := tinySweep()
		s.Workloads = append(s.Workloads, Workload{"dtw", 6})
		s.Parallelism = par
		return s
	}
	serial, err := build(1).Execute()
	if err != nil {
		t.Fatal(err)
	}
	wide, err := build(8).Execute()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Geoms, wide.Geoms) {
		t.Fatalf("geometry grids diverge")
	}
	for _, w := range serial.Sweep.Workloads {
		for _, impl := range []core.Impl{core.ImplMD, core.ImplAM} {
			a, b := serial.Runs[w.Name][impl], wide.Runs[w.Name][impl]
			if a == nil || b == nil {
				t.Fatalf("%s/%v missing run", w.Name, impl)
			}
			if a.Instructions != b.Instructions || a.Counts != b.Counts {
				t.Errorf("%s/%v: simulation outcome differs between parallelism settings", w.Name, impl)
			}
			if !reflect.DeepEqual(a.Caches, b.Caches) {
				t.Errorf("%s/%v: cache stats differ between parallelism settings", w.Name, impl)
			}
		}
		for _, kb := range serial.Sweep.SizesKB {
			for _, assoc := range serial.Sweep.Assocs {
				for _, pen := range serial.Sweep.Penalties {
					if r1, rn := serial.Ratio(w.Name, kb, assoc, pen), wide.Ratio(w.Name, kb, assoc, pen); r1 != rn {
						t.Errorf("%s %dK/%d-way/m%d: ratio %v (serial) != %v (parallel)",
							w.Name, kb, assoc, pen, r1, rn)
					}
				}
			}
		}
	}
}

// TestExecuteDoesNotMutateReceiver guards the concurrent-reuse
// contract: defaults are resolved into locals, never written back.
func TestExecuteDoesNotMutateReceiver(t *testing.T) {
	s := tinySweep()
	if s.Impls != nil {
		t.Fatal("tinySweep unexpectedly sets Impls")
	}
	first, err := s.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if s.Impls != nil {
		t.Errorf("Execute wrote defaults onto the receiver: %v", s.Impls)
	}
	// A second execution of the same value must succeed and agree.
	second, err := s.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if r1, r2 := first.Ratio("ss", 8, 4, 12), second.Ratio("ss", 8, 4, 12); r1 != r2 {
		t.Errorf("repeated Execute diverged: %v vs %v", r1, r2)
	}
}

// TestBlockSweepDeterminism pins BlockSweep's record-once/replay-many
// path to its serial outcome.
func TestBlockSweepDeterminism(t *testing.T) {
	ws := []Workload{{"ss", 40}, {"qs", 30}}
	serial, err := BlockSweep(ws, core.Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := BlockSweep(ws, core.Options{}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, wide) {
		t.Errorf("BlockSweep rows differ:\nserial: %+v\nparallel: %+v", serial, wide)
	}
}

// TestRunOneParBadGeometry checks geometry validation happens before
// simulation.
func TestRunOneParBadGeometry(t *testing.T) {
	bad := []cache.Config{{SizeBytes: 100, BlockBytes: 64, Assoc: 1}}
	if _, err := RunOnePar(Workload{"ss", 40}, core.ImplMD, bad, core.Options{}, 2); err == nil {
		t.Error("invalid geometry accepted")
	}
}
