package experiments

import (
	"jmtam/internal/cache"
	"jmtam/internal/core"
	"jmtam/internal/isa"
	"jmtam/internal/mem"
	"jmtam/internal/parallel"
	"jmtam/internal/programs"
	"jmtam/internal/trace"
)

// MDOptRow compares the MD implementation with and without the §2.3
// static optimizations (register argument passing across direct posts,
// inlet-to-thread fall-through placement, and stop-to-suspend conversion
// for statically-empty LCVs) on one workload.
type MDOptRow struct {
	Program string
	// Dynamic instruction counts.
	InstrOpt, InstrUnopt uint64
	// MD/AM total-cycle ratios at the headline geometry (8K 4-way,
	// miss 24), with and without the optimizations.
	RatioOpt, RatioUnopt float64
}

// OAMRow compares the three schedulable implementations on one workload
// at the headline geometry (8K 4-way), reporting instruction counts,
// granularity and MD-relative / AM-relative cycle ratios at miss 24.
type OAMRow struct {
	Program                    string
	InstrMD, InstrOAM, InstrAM uint64
	TPQMD, TPQOAM, TPQAM       float64
	OAMOverAM, MDOverAM        float64
}

// OAMComparison evaluates the Optimistic-Active-Messages-style hybrid of
// §2.4 ([KWW+94]): message-driven direct control transfer for short
// threads, Active Messages posting and frame scheduling for long ones,
// with all user handlers at low priority. The 3*len(ws) simulations run
// on at most parallelism workers (0 = GOMAXPROCS).
func OAMComparison(ws []Workload, opt core.Options, parallelism int) ([]OAMRow, error) {
	geoms := []cache.Config{{SizeBytes: 8 * 1024, BlockBytes: 64, Assoc: 4}}
	impls := [3]core.Impl{core.ImplMD, core.ImplOAM, core.ImplAM}
	all := make([]*Run, 3*len(ws))
	err := parallel.ForEach(parallelism, len(all), func(i int) error {
		r, err := RunOne(ws[i/3], impls[i%3], geoms, opt)
		if err != nil {
			return err
		}
		all[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	var rows []OAMRow
	for wi, w := range ws {
		runs := all[3*wi : 3*wi+3]
		amCycles := runs[2].Cycles(0, 24, false)
		rows = append(rows, OAMRow{
			Program:   w.Name,
			InstrMD:   runs[0].Instructions,
			InstrOAM:  runs[1].Instructions,
			InstrAM:   runs[2].Instructions,
			TPQMD:     runs[0].TPQ,
			TPQOAM:    runs[1].TPQ,
			TPQAM:     runs[2].TPQ,
			OAMOverAM: ratio64(runs[1].Cycles(0, 24, false), amCycles),
			MDOverAM:  ratio64(runs[0].Cycles(0, 24, false), amCycles),
		})
	}
	return rows, nil
}

// MDOptAblation quantifies what the §2.3 optimizations buy the MD
// implementation. The paper presents them as the conventional-compiler
// opportunities that open up once an inlet passes control directly to
// its thread; this ablation measures their dynamic effect. The
// 3*len(ws) simulations run on at most parallelism workers
// (0 = GOMAXPROCS).
func MDOptAblation(ws []Workload, opt core.Options, parallelism int) ([]MDOptRow, error) {
	geoms := []cache.Config{{SizeBytes: 8 * 1024, BlockBytes: 64, Assoc: 4}}
	noOpt := opt
	noOpt.NoMDOptimize = true
	variants := [3]struct {
		impl core.Impl
		opt  core.Options
	}{
		{core.ImplAM, opt},
		{core.ImplMD, opt},
		{core.ImplMD, noOpt},
	}
	all := make([]*Run, 3*len(ws))
	err := parallel.ForEach(parallelism, len(all), func(i int) error {
		v := variants[i%3]
		r, err := RunOne(ws[i/3], v.impl, geoms, v.opt)
		if err != nil {
			return err
		}
		all[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	var rows []MDOptRow
	for wi, w := range ws {
		am, mdOpt, mdUnopt := all[3*wi], all[3*wi+1], all[3*wi+2]
		amCycles := am.Cycles(0, 24, false)
		rows = append(rows, MDOptRow{
			Program:    w.Name,
			InstrOpt:   mdOpt.Instructions,
			InstrUnopt: mdUnopt.Instructions,
			RatioOpt:   ratio64(mdOpt.Cycles(0, 24, false), amCycles),
			RatioUnopt: ratio64(mdUnopt.Cycles(0, 24, false), amCycles),
		})
	}
	return rows, nil
}

// ClassRow reports one implementation's reference mix by the paper's
// §3.1 memory division: system code (runtime and library), user code
// (the program's inlets and threads), system data (message queues,
// operating-system globals and the LCV), and user data (frames and
// heap).
type ClassRow struct {
	Program string
	Impl    core.Impl
	// Fractions of that implementation's own totals.
	SysFetchFrac           float64
	SysReadFrac            float64
	SysWriteFrac           float64
	Fetches, Reads, Writes uint64
}

// ClassBreakdown computes the system/user reference mix for both
// implementations of each workload, on at most parallelism workers
// (0 = GOMAXPROCS).
func ClassBreakdown(ws []Workload, opt core.Options, parallelism int) ([]ClassRow, error) {
	impls := [2]core.Impl{core.ImplMD, core.ImplAM}
	rows := make([]ClassRow, 2*len(ws))
	err := parallel.ForEach(parallelism, len(rows), func(i int) error {
		w, impl := ws[i/2], impls[i%2]
		r, err := RunOne(w, impl, nil, opt)
		if err != nil {
			return err
		}
		c := r.Counts
		row := ClassRow{
			Program: w.Name, Impl: impl,
			Fetches: c.TotalFetches(), Reads: c.TotalReads(), Writes: c.TotalWrites(),
		}
		row.SysFetchFrac = frac(c.Fetches[mem.ClassSysCode], row.Fetches)
		row.SysReadFrac = frac(c.Reads[mem.ClassSysData], row.Reads)
		row.SysWriteFrac = frac(c.Writes[mem.ClassSysData], row.Writes)
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func frac(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// MixRow reports the dynamic instruction mix of one (workload,
// implementation) run, grouped into the categories a runtime-systems
// reader cares about.
type MixRow struct {
	Program string
	Impl    core.Impl
	Total   uint64
	// Fractions of Total.
	Memory, ALU, Float, Control, Message, Machine float64
}

// InstructionMix computes the dynamic instruction mix for both primary
// implementations of each workload, on at most parallelism workers
// (0 = GOMAXPROCS). The AM implementation's larger control and memory
// fractions are its scheduling hierarchy at work.
func InstructionMix(ws []Workload, opt core.Options, parallelism int) ([]MixRow, error) {
	impls := [2]core.Impl{core.ImplMD, core.ImplAM}
	rows := make([]MixRow, 2*len(ws))
	err := parallel.ForEach(parallelism, len(rows), func(i int) error {
		w, impl := ws[i/2], impls[i%2]
		spec, err := programs.ByName(w.Name)
		if err != nil {
			return err
		}
		o := opt
		if o.MaxInstructions == 0 {
			o.MaxInstructions = 2_000_000_000
		}
		sim, err := core.Build(impl, spec.Build(w.Arg), o)
		if err != nil {
			return err
		}
		defer sim.Close()
		if err := sim.Run(); err != nil {
			return err
		}
		counts := sim.M.OpCounts()
		row := MixRow{Program: w.Name, Impl: impl, Total: sim.M.Instructions()}
		for op := isa.Op(0); op < isa.NumOps; op++ {
			f := frac(counts[op], row.Total)
			switch op.Class() {
			case "mem":
				row.Memory += f
			case "alu":
				row.ALU += f
			case "float":
				row.Float += f
			case "control":
				row.Control += f
			case "msg":
				row.Message += f
			case "machine":
				row.Machine += f
			}
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// VictimRow reports one (workload, implementation) run of the
// victim-cache ablation: total misses (I + D) under an 8K direct-mapped
// cache pair backed by victim buffers of each candidate size, plus the
// 8K 4-way set-associative baseline the paper's headline geometry uses.
type VictimRow struct {
	Program string
	Impl    string // registry wire name
	Entries []int  // victim buffer sizes, Misses/VictimHits index-aligned
	// Per-entry-count combined I+D statistics of the direct-mapped +
	// victim hierarchy.
	Misses     []uint64
	VictimHits []uint64
	// Combined I+D misses at 8K 4-way — the fully set-associative
	// comparison point.
	SetAssocMisses uint64
	Instructions   uint64
}

// VictimEntries is the default victim-buffer size ladder.
var VictimEntries = []int{0, 1, 2, 4, 8}

// VictimSweep runs the victim-cache ablation: every workload under
// every requested backend (nil = the registry's MD and AM) records one
// reference stream, which then replays through an 8K direct-mapped
// cache pair backed by victim buffers of each size in entries (nil =
// VictimEntries), and through the 8K 4-way baseline. A direct-mapped
// cache whose conflict misses a few victim entries recover explains a
// set-associativity gap as mapping conflicts; a residual gap is working
// set. Rows come back workload-major in registry order. The len(ws) *
// len(impls) simulations run on at most parallelism workers
// (0 = GOMAXPROCS).
func VictimSweep(ws []Workload, impls []core.Impl, entries []int, opt core.Options, parallelism int) ([]VictimRow, error) {
	impls = defaultRatioImpls(impls)
	if entries == nil {
		entries = VictimEntries
	}
	direct := cache.Config{SizeBytes: 8 * 1024, BlockBytes: 64, Assoc: 1}
	setAssoc := cache.Config{SizeBytes: 8 * 1024, BlockBytes: 64, Assoc: 4}
	rows := make([]VictimRow, len(ws)*len(impls))
	err := parallel.ForEach(parallelism, len(rows), func(i int) error {
		w, impl := ws[i/len(impls)], impls[i%len(impls)]
		r, rec, err := RecordOne(w, impl, opt)
		if err != nil {
			return err
		}
		row := VictimRow{
			Program:      w.Name,
			Impl:         impl.Name(),
			Entries:      entries,
			Misses:       make([]uint64, len(entries)),
			VictimHits:   make([]uint64, len(entries)),
			Instructions: r.Instructions,
		}
		p, err := trace.NewPair(setAssoc)
		if err != nil {
			return err
		}
		rec.Replay(p)
		row.SetAssocMisses = p.I.Stats().Misses + p.D.Stats().Misses
		for ei, n := range entries {
			vi, err := cache.NewVictim(direct, n)
			if err != nil {
				return err
			}
			vd, err := cache.NewVictim(direct, n)
			if err != nil {
				return err
			}
			rec.Do(func(k trace.Kind, addr uint32) {
				switch k {
				case trace.KindFetch:
					vi.Access(addr, false)
				case trace.KindRead:
					vd.Access(addr, false)
				default:
					vd.Access(addr, true)
				}
			})
			row.Misses[ei] = vi.Stats().Misses + vd.Stats().Misses
			row.VictimHits[ei] = vi.Stats().VictimHits + vd.Stats().VictimHits
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// PenaltySweep derives, from an existing dataset, the MD/AM cycle ratio
// as a function of miss penalty at one cache geometry — one series per
// workload plus the geometric mean. Because penalties are applied
// analytically to recorded miss counts, any penalty can be evaluated
// without re-simulation. The X values of the returned Series are the
// penalties (not cache sizes).
func PenaltySweep(d *Dataset, sizeKB, assoc int, penalties []int) []Series {
	var out []Series
	for _, w := range d.Sweep.Workloads {
		s := Series{Label: w.Name, SizesKB: penalties}
		for _, p := range penalties {
			s.Ratios = append(s.Ratios, d.Ratio(w.Name, sizeKB, assoc, p))
		}
		out = append(out, s)
	}
	mean := Series{Label: "geomean", SizesKB: penalties}
	for _, p := range penalties {
		mean.Ratios = append(mean.Ratios, d.GeoMeanRatio(sizeKB, assoc, p))
	}
	out = append(out, mean)
	return out
}

// CrossoverPenalty returns the smallest penalty from the candidates at
// which the workload's MD/AM ratio reaches or exceeds 1 (AM wins), or -1
// if it never does. The paper finds AM strongest "when miss penalties
// are high"; this quantifies where that happens in this model.
func CrossoverPenalty(d *Dataset, name string, sizeKB, assoc int, candidates []int) int {
	for _, p := range candidates {
		if d.Ratio(name, sizeKB, assoc, p) >= 1 {
			return p
		}
	}
	return -1
}
