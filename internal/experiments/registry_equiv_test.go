package experiments

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"jmtam/internal/core"
	"jmtam/internal/parallel"
	"jmtam/internal/trace"
)

var updateGolden = flag.Bool("update", false, "regenerate testdata golden files")

// goldenRun pins one (implementation, workload, mesh size) simulation:
// the SHA-256 of its recorded reference stream(s) plus the headline
// counters. The goldens were generated before the backend registry
// refactor, so this suite asserts the capability-driven codegen emits
// byte-identical instruction streams and reference traces for every
// pre-registry backend.
type goldenRun struct {
	Impl         string `json:"impl"`
	Program      string `json:"program"`
	Arg          int    `json:"arg"`
	Nodes        int    `json:"nodes"`
	Instructions uint64 `json:"instructions"`
	Ticks        uint64 `json:"ticks"`
	TraceSHA256  string `json:"trace_sha256"`
}

func goldenPath(t *testing.T) string {
	t.Helper()
	return filepath.Join("testdata", "registry_golden.json")
}

// hashRecordings digests the decoded reference streams of one run:
// per-node in node order, each reference as a packed little-endian
// word, with a node-boundary marker so stream boundaries participate.
func hashRecordings(recs []*trace.Recording) string {
	h := sha256.New()
	var buf [4]byte
	for _, rec := range recs {
		binary.LittleEndian.PutUint32(buf[:], 0xffffffff)
		h.Write(buf[:])
		rec.Do(func(k trace.Kind, addr uint32) {
			binary.LittleEndian.PutUint32(buf[:], trace.Encode(k, addr))
			h.Write(buf[:])
		})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// recordGolden runs one golden cell and returns its pinned form.
func recordGolden(w Workload, impl core.Impl, nodes int) (goldenRun, error) {
	g := goldenRun{
		Impl: impl.String(), Program: w.Name, Arg: w.Arg, Nodes: nodes,
	}
	if nodes > 1 {
		r, recs, err := RecordCluster(w, impl, core.Options{Nodes: nodes})
		if err != nil {
			return g, err
		}
		g.Instructions = r.Instructions
		g.Ticks = r.Ticks
		g.TraceSHA256 = hashRecordings(recs)
		return g, nil
	}
	r, rec, err := RecordOne(w, impl, core.Options{})
	if err != nil {
		return g, err
	}
	g.Instructions = r.Instructions
	g.TraceSHA256 = hashRecordings([]*trace.Recording{rec})
	return g, nil
}

// TestRegistryEquivalence asserts that every pre-registry backend still
// produces byte-identical reference traces and identical instruction and
// tick counts for the six benchmarks at N=1 and N=4. Regenerate with
// `go test ./internal/experiments -run TestRegistryEquivalence -update`
// only when an intentional simulator-semantics change lands.
func TestRegistryEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full golden matrix skipped in -short mode")
	}
	impls := []core.Impl{core.ImplMD, core.ImplAM, core.ImplAMEnabled, core.ImplOAM}
	type cell struct {
		w     Workload
		impl  core.Impl
		nodes int
	}
	var cells []cell
	for _, impl := range impls {
		for _, w := range QuickWorkloads() {
			for _, n := range []int{1, 4} {
				cells = append(cells, cell{w, impl, n})
			}
		}
	}
	got := make([]goldenRun, len(cells))
	err := parallel.ForEach(0, len(cells), func(i int) error {
		g, err := recordGolden(cells[i].w, cells[i].impl, cells[i].nodes)
		if err != nil {
			return err
		}
		got[i] = g
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	path := goldenPath(t)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden runs to %s", len(got), path)
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing goldens (run with -update to generate): %v", err)
	}
	var want []goldenRun
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	idx := make(map[goldenRun]bool, len(want))
	wantByKey := make(map[string]goldenRun, len(want))
	for _, g := range want {
		idx[g] = true
		wantByKey[goldenKey(g)] = g
	}
	if len(want) != len(got) {
		t.Errorf("golden count %d, got %d runs", len(want), len(got))
	}
	for _, g := range got {
		if idx[g] {
			continue
		}
		if w, ok := wantByKey[goldenKey(g)]; ok {
			t.Errorf("%s %s/%d N=%d diverged from pre-registry baseline:\n  want instr=%d ticks=%d trace=%s\n  got  instr=%d ticks=%d trace=%s",
				g.Impl, g.Program, g.Arg, g.Nodes,
				w.Instructions, w.Ticks, w.TraceSHA256,
				g.Instructions, g.Ticks, g.TraceSHA256)
		} else {
			t.Errorf("no golden for %s %s/%d N=%d", g.Impl, g.Program, g.Arg, g.Nodes)
		}
	}
}

func goldenKey(g goldenRun) string {
	b, _ := json.Marshal([]any{g.Impl, g.Program, g.Arg, g.Nodes})
	return string(b)
}
