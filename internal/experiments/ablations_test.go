package experiments

import (
	"testing"

	"jmtam/internal/core"
)

var ablationWorkloads = []Workload{{"qs", 40}, {"ss", 40}}

func TestMDOptAblation(t *testing.T) {
	rows, err := MDOptAblation(ablationWorkloads, core.Options{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.InstrOpt == 0 || r.InstrUnopt == 0 {
			t.Errorf("%s: zero instruction counts", r.Program)
		}
		// The optimizations can only remove instructions.
		if r.InstrOpt > r.InstrUnopt {
			t.Errorf("%s: optimized MD executed more instructions (%d > %d)",
				r.Program, r.InstrOpt, r.InstrUnopt)
		}
		if r.RatioOpt > r.RatioUnopt+1e-9 {
			t.Errorf("%s: optimized ratio %.3f above unoptimized %.3f",
				r.Program, r.RatioOpt, r.RatioUnopt)
		}
	}
}

func TestOAMComparison(t *testing.T) {
	rows, err := OAMComparison(ablationWorkloads, core.Options{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.InstrOAM == 0 || r.TPQOAM <= 0 {
			t.Errorf("%s: empty OAM run: %+v", r.Program, r)
		}
		// The hybrid's instruction count sits at or between the two
		// pure implementations (it shares MD's direct transfers and
		// AM's posting machinery).
		if r.InstrOAM < r.InstrMD {
			t.Errorf("%s: OAM executed fewer instructions (%d) than MD (%d)",
				r.Program, r.InstrOAM, r.InstrMD)
		}
	}
}

func TestClassBreakdown(t *testing.T) {
	rows, err := ClassBreakdown(ablationWorkloads, core.Options{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 workloads x 2 impls
		t.Fatalf("got %d rows", len(rows))
	}
	byKey := make(map[string]ClassRow)
	for _, r := range rows {
		if r.SysFetchFrac < 0 || r.SysFetchFrac > 1 {
			t.Errorf("%s/%v: fraction out of range: %+v", r.Program, r.Impl, r)
		}
		byKey[r.Program+r.Impl.Short()] = r
	}
	// The AM implementation spends a larger fraction of its fetches in
	// system code (post routine, scheduler) than MD does — the §3.1
	// control-locality claim at the static-classification level.
	if byKey["qsAM"].SysFetchFrac <= byKey["qsMD"].SysFetchFrac {
		t.Errorf("AM sys-code fetch fraction %.2f not above MD's %.2f",
			byKey["qsAM"].SysFetchFrac, byKey["qsMD"].SysFetchFrac)
	}
	// SS never sends user messages and makes 3 calls total: almost no
	// system traffic under either implementation.
	if byKey["ssMD"].SysFetchFrac > 0.05 {
		t.Errorf("SS MD sys fetch fraction %.2f unexpectedly high", byKey["ssMD"].SysFetchFrac)
	}
}

func TestInstructionMix(t *testing.T) {
	rows, err := InstructionMix([]Workload{{"mmt", 8}}, core.Options{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		sum := r.Memory + r.ALU + r.Float + r.Control + r.Message + r.Machine
		// Move instructions (MOVI/MOVA/MOV/LEA/tag ops) are outside the
		// six groups, so the sum is below 1 but must be the bulk.
		if sum < 0.5 || sum > 1.0+1e-9 {
			t.Errorf("%s/%v: group sum %.2f implausible", r.Program, r.Impl, sum)
		}
		if r.Float <= 0 {
			t.Errorf("%s/%v: MMT has no float instructions?", r.Program, r.Impl)
		}
	}
	// AM pays EI/DI and suspends: its machine fraction exceeds MD's.
	if rows[1].Machine <= rows[0].Machine {
		t.Errorf("AM machine fraction %.3f not above MD's %.3f", rows[1].Machine, rows[0].Machine)
	}
}

func TestPenaltySweepAndCrossover(t *testing.T) {
	ds, err := tinySweep().Execute()
	if err != nil {
		t.Fatal(err)
	}
	pens := []int{12, 48, 500, 5000}
	series := PenaltySweep(ds, 8, 4, pens)
	if len(series) != len(ds.Sweep.Workloads)+1 {
		t.Fatalf("got %d series", len(series))
	}
	for _, s := range series {
		if len(s.Ratios) != len(pens) {
			t.Errorf("series %s has %d points", s.Label, len(s.Ratios))
		}
		for _, r := range s.Ratios {
			if r <= 0 {
				t.Errorf("series %s has non-positive ratio: %v", s.Label, s.Ratios)
				break
			}
		}
	}
	// Per-program, the ratio trend with penalty must match the sign of
	// the miss-count difference: if MD misses more, AM gains as misses
	// get dearer, and vice versa.
	g := ds.GeomIndex(8, 4)
	for _, w := range ds.Sweep.Workloads {
		md := ds.Run(w.Name, core.ImplMD).Caches[g]
		am := ds.Run(w.Name, core.ImplAM).Caches[g]
		mdMiss := md.IMisses + md.DMisses
		amMiss := am.IMisses + am.DMisses
		lo := ds.Ratio(w.Name, 8, 4, pens[0])
		hi := ds.Ratio(w.Name, 8, 4, pens[len(pens)-1])
		switch {
		case mdMiss > amMiss && hi < lo:
			t.Errorf("%s: MD misses more but ratio fell with penalty (%.3f -> %.3f)", w.Name, lo, hi)
		case mdMiss < amMiss && hi > lo:
			t.Errorf("%s: AM misses more but ratio rose with penalty (%.3f -> %.3f)", w.Name, lo, hi)
		}
	}
	// CrossoverPenalty returns -1 when AM never wins, and a candidate
	// penalty when it does; SS's ratio asymptote stays below 1.
	if p := CrossoverPenalty(ds, "ss", 8, 4, pens); p != -1 {
		t.Errorf("SS crossover at %d; MD should win at any penalty", p)
	}
}
