package experiments

import (
	"testing"

	"jmtam/internal/cache"
	"jmtam/internal/core"
)

// tinySweep keeps unit tests fast: two small workloads, four geometries.
func tinySweep() *Sweep {
	return &Sweep{
		Workloads:  []Workload{{"ss", 40}, {"qs", 30}},
		SizesKB:    []int{1, 8},
		Assocs:     []int{1, 4},
		BlockBytes: 64,
		Penalties:  []int{12, 48},
	}
}

func TestExecuteAndRatio(t *testing.T) {
	ds, err := tinySweep().Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Geoms) != 4 {
		t.Fatalf("got %d geometries, want 4", len(ds.Geoms))
	}
	if ds.GeomIndex(8, 4) < 0 || ds.GeomIndex(1, 1) < 0 {
		t.Error("geometry index lookup failed")
	}
	if ds.GeomIndex(2, 1) != -1 {
		t.Error("missing geometry not reported as -1")
	}
	for _, w := range ds.Sweep.Workloads {
		r := ds.Ratio(w.Name, 8, 4, 12)
		if r <= 0 || r > 2 {
			t.Errorf("%s ratio = %g, implausible", w.Name, r)
		}
	}
	if ds.Ratio("nope", 8, 4, 12) != 0 {
		t.Error("unknown workload ratio not zero")
	}
	gm := ds.GeoMeanRatio(8, 4, 12)
	if gm <= 0 || gm >= 1.5 {
		t.Errorf("geomean = %g", gm)
	}
	if ex := ds.GeoMeanRatio(8, 4, 12, "ss"); ex == gm {
		t.Error("exclusion had no effect")
	}
}

func TestTable2Structure(t *testing.T) {
	ds, err := tinySweep().Execute()
	if err != nil {
		t.Fatal(err)
	}
	rows := Table2(ds)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.TPQMD <= 0 || r.TPQAM <= 0 || r.IPTMD <= 0 || r.Ratio12 <= 0 {
			t.Errorf("row %s has zero fields: %+v", r.Program, r)
		}
		// Ratios grow with the miss penalty on these MD-friendly
		// workloads... at minimum they must all be positive and the
		// ordering r12 <= r48 holds for SS/QS (AM gains with penalty).
		if r.Ratio48 < r.Ratio12-0.05 {
			t.Errorf("%s: ratio fell sharply with penalty: %+v", r.Program, r)
		}
	}
}

func TestFigureSeriesShape(t *testing.T) {
	ds, err := tinySweep().Execute()
	if err != nil {
		t.Fatal(err)
	}
	f3 := Figure3(ds)
	if len(f3[12]) != 2 { // one series per associativity
		t.Fatalf("figure 3 has %d series", len(f3[12]))
	}
	for _, s := range f3[12] {
		if len(s.Ratios) != len(ds.Sweep.SizesKB) {
			t.Errorf("series %s has %d points", s.Label, len(s.Ratios))
		}
	}
	f4 := Figure4(ds)[48]
	if f4[len(f4)-1].Label != "geomean" {
		t.Error("figure 4 missing geometric-mean series")
	}
	f5 := Figure5(ds)[48]
	if len(f5) != 3 { // 2 programs + geomean
		t.Errorf("figure 5 has %d series", len(f5))
	}
	f6 := Figure6(ds)
	if len(f6) != 2 { // one per penalty
		t.Errorf("figure 6 has %d series", len(f6))
	}
}

func TestAccessRatiosMeanRow(t *testing.T) {
	ds, err := tinySweep().Execute()
	if err != nil {
		t.Fatal(err)
	}
	rows := AccessRatios(ds)
	if rows[len(rows)-1].Program != "mean" {
		t.Fatal("missing mean row")
	}
	for _, r := range rows {
		if r.Fetches <= 0 || r.Fetches >= 1.1 {
			t.Errorf("%s fetch ratio = %g", r.Program, r.Fetches)
		}
	}
	// MD must fetch less than AM on average.
	if m := rows[len(rows)-1]; m.Fetches >= 1 {
		t.Errorf("mean fetch ratio %g >= 1", m.Fetches)
	}
}

func TestEnabledAblation(t *testing.T) {
	rows, err := EnabledAblation([]Workload{{"dtw", 6}}, core.Options{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.TPQUnenabled <= 0 || r.TPQEnabled <= 0 {
		t.Fatalf("zero TPQ: %+v", r)
	}
	// §2.4: the enabled implementation services local I-structure
	// fetches immediately, extending quanta on a uniprocessor.
	if r.TPQEnabled < r.TPQUnenabled {
		t.Errorf("enabled TPQ %.2f below unenabled %.2f", r.TPQEnabled, r.TPQUnenabled)
	}
}

func TestBlockSweep(t *testing.T) {
	rows, err := BlockSweep([]Workload{{"ss", 40}}, core.Options{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Ratio <= 0 || r.MDCycles == 0 || r.AMCycles == 0 {
			t.Errorf("bad row: %+v", r)
		}
	}
	if rows[0].BlockBytes != 8 || rows[3].BlockBytes != 64 {
		t.Error("block sizes wrong")
	}
}

func TestRunCycles(t *testing.T) {
	r := &Run{
		Instructions: 1000,
		Caches: []CacheStats{{
			Config:  cache.Config{SizeBytes: 1024, BlockBytes: 64, Assoc: 1},
			IMisses: 10, DMisses: 20, Writebacks: 5,
		}},
	}
	if got := r.Cycles(0, 10, false); got != 1000+10*30 {
		t.Errorf("cycles = %d", got)
	}
	if got := r.Cycles(0, 10, true); got != 1000+10*35 {
		t.Errorf("cycles with WB = %d", got)
	}
}

func TestWorkloadSets(t *testing.T) {
	if len(PaperWorkloads()) != 6 || len(QuickWorkloads()) != 6 {
		t.Error("workload sets must cover all six benchmarks")
	}
	for _, w := range PaperWorkloads() {
		if w.Name == "mmt" && w.Arg != 50 {
			t.Errorf("paper MMT arg = %d, want 50", w.Arg)
		}
		if w.Name == "ss" && w.Arg != 100 {
			t.Errorf("paper SS arg = %d, want 100", w.Arg)
		}
	}
}

func TestRunOneUnknownWorkload(t *testing.T) {
	if _, err := RunOne(Workload{"nope", 1}, core.ImplMD, nil, core.Options{}); err == nil {
		t.Error("unknown workload accepted")
	}
}
