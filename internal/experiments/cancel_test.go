package experiments

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"jmtam/internal/core"
)

// TestSweepCancelMidGridLeaksNoGoroutines cancels a sweep from its own
// progress callback — mid-grid, with parallel workers in flight — and
// checks that every worker goroutine unwinds. Leaked workers would pin
// memory and pool slots in a long-lived daemon, so the goroutine count
// must return to its pre-sweep baseline.
func TestSweepCancelMidGridLeaksNoGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := &Sweep{
		Workloads:   []Workload{{"ss", 40}, {"qs", 30}, {"ss", 60}, {"qs", 40}},
		SizesKB:     []int{1, 8},
		Assocs:      []int{1, 4},
		BlockBytes:  64,
		Penalties:   []int{12},
		Impls:       []core.Impl{core.ImplMD, core.ImplAM},
		Parallelism: 4,
		OnProgress: func(p Progress) {
			cancel() // first finished cell cancels the rest of the grid
		},
	}
	_, err := s.ExecuteContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// Cancellation is cooperative: give in-flight simulations a bounded
	// window to observe it and unwind.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // finalize dead goroutine stacks promptly
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked after cancel: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunOneParCancelBeforeStart pins the fast path: a context already
// cancelled fails before any simulation work happens.
func TestRunOneParCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := &Sweep{
		Workloads:  []Workload{{"ss", 40}},
		SizesKB:    []int{1},
		Assocs:     []int{1},
		BlockBytes: 64,
		Penalties:  []int{12},
		Impls:      []core.Impl{core.ImplMD},
	}
	if _, err := s.ExecuteContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
