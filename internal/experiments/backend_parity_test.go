package experiments

import (
	"testing"

	"jmtam/internal/core"
	"jmtam/internal/trace"
)

// On one node Active Access has nothing to intercept — every
// I-structure request dispatches locally — so the aa backend must be
// bit-for-bit the AM implementation: same instruction stream, same
// reference trace, same granularity.
func TestAAUniprocessorMatchesAM(t *testing.T) {
	for _, w := range QuickWorkloads() {
		am, amRec, err := RecordOne(w, core.ImplAM, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		aa, aaRec, err := RecordOne(w, core.ImplAA, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if aa.Instructions != am.Instructions {
			t.Errorf("%s: aa instructions %d != am %d", w.Name, aa.Instructions, am.Instructions)
		}
		if aa.Threads != am.Threads || aa.Quanta != am.Quanta {
			t.Errorf("%s: aa granularity (%d threads, %d quanta) != am (%d, %d)",
				w.Name, aa.Threads, aa.Quanta, am.Threads, am.Quanta)
		}
		if got, want := hashRecordings([]*trace.Recording{aaRec}), hashRecordings([]*trace.Recording{amRec}); got != want {
			t.Errorf("%s: aa trace diverged from am", w.Name)
		}
	}
}

// Offload executes the same program as AM — the NIC engine runs the
// very instructions AM's compute pipeline would — so total instruction
// counts match and the split traces sum to AM's single stream. On a
// mesh, the lockstep tick count matches too: the split changes cache
// attribution, never execution.
func TestOffloadMatchesAMExecution(t *testing.T) {
	for _, w := range QuickWorkloads() {
		am, amRec, err := RecordOne(w, core.ImplAM, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		off, offRec, err := RecordOne(w, core.ImplOffload, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if off.Instructions != am.Instructions {
			t.Errorf("%s: offload instructions %d != am %d", w.Name, off.Instructions, am.Instructions)
		}
		if off.NIC == nil || len(off.nicRecs) != 1 {
			t.Fatalf("%s: offload run has no NIC stream", w.Name)
		}
		if got, want := offRec.Len()+off.nicRecs[0].Len(), amRec.Len(); got != want {
			t.Errorf("%s: split streams total %d refs, am has %d", w.Name, got, want)
		}
	}

	opt := core.Options{Nodes: 4}
	for _, w := range QuickWorkloads() {
		am, _, err := RecordCluster(w, core.ImplAM, opt)
		if err != nil {
			t.Fatal(err)
		}
		off, _, err := RecordCluster(w, core.ImplOffload, opt)
		if err != nil {
			t.Fatal(err)
		}
		if off.Ticks != am.Ticks || off.Instructions != am.Instructions {
			t.Errorf("%s N=4: offload (instr %d, ticks %d) != am (instr %d, ticks %d)",
				w.Name, off.Instructions, off.Ticks, am.Instructions, am.Ticks)
		}
	}
}
