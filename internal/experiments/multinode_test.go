package experiments

import (
	"reflect"
	"testing"

	"jmtam/internal/cache"
	"jmtam/internal/core"
)

var tinyWorkloads = []Workload{{"mmt", 8}, {"wavefront", 8}}

func TestRunClusterFillsCachesAndTicks(t *testing.T) {
	geoms := []cache.Config{
		{SizeBytes: 8 * 1024, BlockBytes: 64, Assoc: 4},
		{SizeBytes: 1 * 1024, BlockBytes: 64, Assoc: 1},
	}
	r, err := RunOnePar(tinyWorkloads[0], core.ImplAM, geoms,
		core.Options{Nodes: 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Nodes != 4 {
		t.Errorf("Nodes = %d, want 4", r.Nodes)
	}
	if r.Ticks == 0 {
		t.Error("Ticks = 0, want elapsed lockstep time")
	}
	if len(r.Caches) != 2 {
		t.Fatalf("got %d cache stats, want 2", len(r.Caches))
	}
	for i, c := range r.Caches {
		if c.IMisses == 0 {
			t.Errorf("geometry %d: no instruction misses recorded", i)
		}
	}
	// The smaller direct-mapped geometry cannot miss less.
	if r.Caches[1].IMisses+r.Caches[1].DMisses < r.Caches[0].IMisses+r.Caches[0].DMisses {
		t.Error("1K direct-mapped misses fewer than 8K 4-way")
	}
	if r.Counts.TotalFetches() == 0 || r.Instructions == 0 {
		t.Error("reference counts or instructions empty")
	}
}

func TestSweepNodesAxis(t *testing.T) {
	s := &Sweep{
		Workloads:  tinyWorkloads,
		SizesKB:    []int{8},
		Assocs:     []int{4},
		BlockBytes: 64,
		Penalties:  []int{24},
		Options:    core.Options{Nodes: 2},
	}
	d, err := s.Execute()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range tinyWorkloads {
		for _, impl := range []core.Impl{core.ImplMD, core.ImplAM} {
			r := d.Run(w.Name, impl)
			if r == nil {
				t.Fatalf("%s/%s missing", w.Name, impl)
			}
			if r.Nodes != 2 {
				t.Errorf("%s/%s Nodes = %d, want 2", w.Name, impl, r.Nodes)
			}
		}
		if ratio := d.Ratio(w.Name, 8, 4, 24); ratio <= 0 {
			t.Errorf("%s ratio = %v, want > 0", w.Name, ratio)
		}
	}
}

func TestNodeRatioSweepDeterministic(t *testing.T) {
	geom := cache.Config{SizeBytes: 8 * 1024, BlockBytes: 64, Assoc: 4}
	impls := []core.Impl{core.ImplMD, core.ImplAM, core.ImplOffload, core.ImplAA}
	rows1, err := NodeRatioSweep(tinyWorkloads, impls, []int{1, 2, 4}, geom, 24,
		core.Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	rows2, err := NodeRatioSweep(tinyWorkloads, impls, []int{1, 2, 4}, geom, 24,
		core.Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows1) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows1))
	}
	for i := range rows1 {
		if !reflect.DeepEqual(rows1[i], rows2[i]) {
			t.Errorf("row %d differs across parallelism: %+v vs %+v", i, rows1[i], rows2[i])
		}
		for _, impl := range impls {
			name := impl.Name()
			if rows1[i].Cycles[name] == 0 || rows1[i].Ticks[name] == 0 {
				t.Errorf("row %d: %s missing totals: %+v", i, name, rows1[i])
			}
			if rows1[i].RatioCycles[name] <= 0 || rows1[i].RatioTicks[name] <= 0 {
				t.Errorf("row %d: %s non-positive ratios %+v", i, name, rows1[i])
			}
		}
	}
}

// The default impl list reproduces the paper's MD-versus-AM pair.
func TestNodeRatioSweepDefaultImpls(t *testing.T) {
	geom := cache.Config{SizeBytes: 8 * 1024, BlockBytes: 64, Assoc: 4}
	rows, err := NodeRatioSweep(tinyWorkloads[:1], nil, []int{1}, geom, 24,
		core.Options{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{core.ImplMD.Name(), core.ImplAM.Name()}
	if !reflect.DeepEqual(rows[0].Impls, want) {
		t.Errorf("default impls = %v, want %v", rows[0].Impls, want)
	}
	if rows[0].RatioCycles[core.ImplAM.Name()] <= 0 {
		t.Errorf("MD/AM ratio missing: %+v", rows[0])
	}
}

func TestHopLatencySweepStretchesTicks(t *testing.T) {
	rows, err := HopLatencySweep(tinyWorkloads[:1], nil, 4, []uint64{1, 16},
		core.Options{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	// A 16x per-hop delay must not make the mesh faster.
	am, md := core.ImplAM.Name(), core.ImplMD.Name()
	if rows[1].Ticks[am] < rows[0].Ticks[am] || rows[1].Ticks[md] < rows[0].Ticks[md] {
		t.Errorf("higher hop latency reduced ticks: %+v", rows)
	}
}
