// Package experiments regenerates the paper's evaluation artifacts:
// Table 2 (granularity and cycle ratios), Figures 3-6 (MD/AM cycle
// ratios across cache geometries), the §3.1 access-count ratios, the
// Figure 2 enabled/unenabled-AM ablation, and a block-size ablation.
//
// One simulation per (program, implementation) records the reference
// stream once; the recording is then replayed through every cache
// geometry as independent, parallelizable passes. Total cycles for each
// miss penalty are derived from the miss counts, exactly as in a
// trace-driven simulator where penalties do not affect replacement.
// Simulations and replays both run on a bounded worker pool; a sweep's
// Dataset keys its runs by backend name (registry order, core.Backends)
// and is identical at every parallelism setting.
package experiments

import (
	"context"
	"fmt"
	"sync/atomic"

	"jmtam/internal/cache"
	"jmtam/internal/core"
	"jmtam/internal/mem"
	"jmtam/internal/obs"
	"jmtam/internal/parallel"
	"jmtam/internal/programs"
	"jmtam/internal/stats"
	"jmtam/internal/trace"
)

// Workload names a benchmark instance.
type Workload struct {
	Name string
	Arg  int
}

// PaperWorkloads returns the six benchmarks at the paper's arguments
// (MMT 50, QS 100, DTW 10, paraffins 13, wavefront 40, SS 100).
func PaperWorkloads() []Workload {
	var ws []Workload
	for _, s := range programs.All() {
		ws = append(ws, Workload{s.Name, s.Arg})
	}
	return ws
}

// QuickWorkloads returns reduced-size instances that preserve each
// benchmark's granularity profile, for fast runs and tests.
func QuickWorkloads() []Workload {
	return []Workload{
		{"mmt", 10}, {"qs", 60}, {"dtw", 8},
		{"paraffins", 10}, {"wavefront", 16}, {"ss", 60},
	}
}

// Sweep describes a full evaluation: which workloads to run and which
// cache geometries and miss penalties to evaluate.
type Sweep struct {
	Workloads []Workload
	// SizesKB lists cache sizes in Kbytes (paper: 1..128).
	SizesKB []int
	// Assocs lists set associativities (paper: 1, 2, 4).
	Assocs []int
	// BlockBytes is the line size (paper shows 64, "the size at which
	// both systems performed best").
	BlockBytes int
	// Penalties lists miss costs in cycles (paper: 12, 24, 48).
	Penalties []int
	// CountWritebacks charges dirty evictions a memory transaction in
	// the cycle model (off by default: the paper counts miss
	// penalties).
	CountWritebacks bool
	// Impls defaults to {MD, AM}.
	Impls []core.Impl
	// Options passes through to the simulator.
	Options core.Options
	// Parallelism bounds the number of concurrently executing
	// simulations and trace replays (0 = GOMAXPROCS). Results are
	// byte-identical at every setting: runs are assembled by position,
	// never by completion order.
	Parallelism int
	// CollectMetrics attaches a metrics-only observability sink to every
	// simulation (one per run, so parallel jobs never share registries)
	// and attributes cache misses per geometry during replay. Each Run's
	// registry lands in Run.Metrics. Simulation results are unaffected.
	CollectMetrics bool
	// OnProgress, when non-nil, is invoked after each (workload,
	// implementation) simulation-plus-replay completes. It may be called
	// concurrently from pool workers; implementations must be their own
	// synchronization. Progress reporting never affects results.
	OnProgress func(p Progress)
	// OnRecordingBytes, when non-nil, receives the packed size of each
	// live recording as a delta: +Bytes() when a simulation finishes
	// recording, -Bytes() once its replay fan-out completes and the
	// recording is released. Summing deltas gives the sweep's live
	// recording footprint (the sweep.recording.bytes gauge). Like
	// OnProgress it may be called concurrently and never affects
	// results.
	OnRecordingBytes func(delta int64)
}

// Progress describes one completed (workload, implementation) run
// within a sweep: Done runs out of Total have finished, the latest
// being Workload under Impl.
type Progress struct {
	Done, Total int
	Workload    Workload
	Impl        core.Impl
}

// DefaultSweep returns the paper's full parameter space over the given
// workloads.
func DefaultSweep(ws []Workload) *Sweep {
	return &Sweep{
		Workloads:  ws,
		SizesKB:    []int{1, 2, 4, 8, 16, 32, 64, 128},
		Assocs:     []int{1, 2, 4},
		BlockBytes: 64,
		Penalties:  []int{12, 24, 48},
		Impls:      []core.Impl{core.ImplMD, core.ImplAM},
	}
}

// Run holds the outcome of one (workload, implementation) simulation.
type Run struct {
	Workload Workload
	Impl     core.Impl

	// Nodes is the mesh size the workload ran on (1 = uniprocessor),
	// and Ticks the cluster's elapsed lockstep time (for multi-node
	// runs; 0 on the uniprocessor path, where elapsed time is the
	// cycle model's concern).
	Nodes int
	Ticks uint64

	Instructions    uint64
	Counts          trace.Counts
	TPQ, IPT, IPQ   float64
	Threads, Quanta uint64

	// Caches holds per-geometry miss statistics, indexed as the
	// sweep's geometries (size-major, then associativity).
	Caches []CacheStats

	// NIC carries the NIC engine's share for backends with NIC-offloaded
	// inlets (Caps.NICInlets): the high-priority instructions executed on
	// the engine and the miss statistics of its private I/D cache pair
	// (one pair per node, misses summed). Nil for other backends.
	NIC *NICStats

	// Metrics is this run's observability registry when the sweep ran
	// with CollectMetrics (or an Obs sink was passed in Options); nil
	// otherwise. Replay fills per-geometry cache.miss.* attribution
	// into it.
	Metrics *obs.Registry

	// nicRecs holds the NIC engine's recorded reference streams (one per
	// node) between record and replay; the replay fan-out consumes them
	// into NIC's miss statistics.
	nicRecs []*trace.Recording
}

// NICStats captures the NIC engine's share of an offloaded run. The
// engine runs inlets and system handlers concurrently with the compute
// pipeline, against its own small cache pair (Config); the cycle model
// takes the slower of the two engines per geometry.
type NICStats struct {
	Instructions uint64
	Counts       trace.Counts
	Config       cache.Config
	IMisses      uint64
	DMisses      uint64
	Writebacks   uint64
}

// NICGeom resolves the NIC cache geometry from the options' knobs
// (defaults: 4 KB, 64-byte blocks, direct-mapped).
func NICGeom(opt core.Options) cache.Config {
	kb, bb, as := opt.NICCacheKB, opt.NICCacheBlockBytes, opt.NICCacheAssoc
	if kb == 0 {
		kb = 4
	}
	if bb == 0 {
		bb = 64
	}
	if as == 0 {
		as = 1
	}
	return cache.Config{SizeBytes: kb * 1024, BlockBytes: bb, Assoc: as}
}

// CacheStats captures one geometry's outcome.
type CacheStats struct {
	Config     cache.Config
	IMisses    uint64
	DMisses    uint64
	Writebacks uint64
}

// Cycles returns total cycles under the given miss penalty. For
// NIC-offload runs the compute pipeline executes only the low-priority
// share of the instructions while the NIC engine runs the rest against
// its own caches; the two proceed concurrently, so completion is
// bounded by the slower engine.
func (r *Run) Cycles(geom int, penalty int, countWB bool) uint64 {
	c := r.Caches[geom]
	instr := r.Instructions
	if r.NIC != nil && r.NIC.Instructions < instr {
		instr -= r.NIC.Instructions
	}
	cycles := instr + uint64(penalty)*(c.IMisses+c.DMisses)
	if countWB {
		cycles += uint64(penalty) * c.Writebacks
	}
	if r.NIC != nil {
		nic := r.NIC.Instructions + uint64(penalty)*(r.NIC.IMisses+r.NIC.DMisses)
		if countWB {
			nic += uint64(penalty) * r.NIC.Writebacks
		}
		if nic > cycles {
			cycles = nic
		}
	}
	return cycles
}

// Dataset is the outcome of a sweep: one Run per workload per
// implementation, plus the geometry index.
type Dataset struct {
	Sweep *Sweep
	// Geoms lists the cache geometries in index order.
	Geoms []cache.Config
	// Runs[workloadName][backendName] keys runs by the backend's
	// canonical registry name ("md", "am", ...), never by position in
	// Sweep.Impls.
	Runs map[string]map[string]*Run
}

// Run returns the run for (workload, backend), or nil.
func (d *Dataset) Run(name string, impl core.Impl) *Run {
	return d.Runs[name][impl.Name()]
}

// GeomIndex returns the geometry index for (sizeKB, assoc), or -1.
func (d *Dataset) GeomIndex(sizeKB, assoc int) int {
	for i, g := range d.Geoms {
		if g.SizeBytes == sizeKB*1024 && g.Assoc == assoc {
			return i
		}
	}
	return -1
}

// Ratio returns the MD/AM total-cycle ratio for one workload at one
// geometry and penalty — the paper's headline metric.
func (d *Dataset) Ratio(name string, sizeKB, assoc, penalty int) float64 {
	g := d.GeomIndex(sizeKB, assoc)
	if g < 0 {
		return 0
	}
	md := d.Run(name, core.ImplMD)
	am := d.Run(name, core.ImplAM)
	if md == nil || am == nil {
		return 0
	}
	amc := am.Cycles(g, penalty, d.Sweep.CountWritebacks)
	if amc == 0 {
		return 0
	}
	return float64(md.Cycles(g, penalty, d.Sweep.CountWritebacks)) / float64(amc)
}

// GeoMeanRatio returns the geometric mean of the MD/AM ratio across
// workloads, optionally excluding some programs (Figure 6 excludes
// selection sort).
func (d *Dataset) GeoMeanRatio(sizeKB, assoc, penalty int, exclude ...string) float64 {
	skip := make(map[string]bool, len(exclude))
	for _, e := range exclude {
		skip[e] = true
	}
	var xs []float64
	for _, w := range d.Sweep.Workloads {
		if skip[w.Name] {
			continue
		}
		xs = append(xs, d.Ratio(w.Name, sizeKB, assoc, penalty))
	}
	return stats.GeoMean(xs)
}

// Execute runs every workload under every implementation. Each
// (workload, implementation) simulation records its reference stream
// once; the cache-geometry fan-out then replays the recording through
// every geometry. Both levels run on a bounded worker pool (see
// Sweep.Parallelism), and results are assembled by position so the
// Dataset is identical at every parallelism setting. The first error
// cancels outstanding work. Execute does not mutate the receiver, so a
// shared *Sweep is safe to execute concurrently and repeatedly.
func (s *Sweep) Execute() (*Dataset, error) {
	return s.ExecuteContext(context.Background())
}

// ExecuteContext is Execute with cooperative cancellation: simulations
// poll the context in their step loops, replays check it between
// geometries, and unclaimed jobs are abandoned once it is cancelled, so
// a cancelled sweep returns (with an error wrapping ctx.Err()) within
// one machine.CancelCheckInterval.
func (s *Sweep) ExecuteContext(ctx context.Context) (*Dataset, error) {
	// Resolve defaults into locals rather than onto the receiver.
	impls := s.Impls
	if len(impls) == 0 {
		impls = []core.Impl{core.ImplMD, core.ImplAM}
	}
	var geoms []cache.Config
	for _, kb := range s.SizesKB {
		for _, a := range s.Assocs {
			geoms = append(geoms, cache.Config{
				SizeBytes: kb * 1024, BlockBytes: s.BlockBytes, Assoc: a,
			})
		}
	}

	type job struct {
		w    Workload
		impl core.Impl
	}
	jobs := make([]job, 0, len(s.Workloads)*len(impls))
	for _, w := range s.Workloads {
		for _, impl := range impls {
			jobs = append(jobs, job{w, impl})
		}
	}
	par := parallel.Workers(s.Parallelism)
	// Split the worker budget between the two levels: jobs saturate the
	// pool first, and each job's replay fan-out gets the leftover share.
	// A job with one replay worker runs the fully vectorized single-pass
	// kernel over all geometries; with more workers the geometries split
	// into that many vectorized groups (see ReplayFanOut). Results are
	// byte-identical at every split.
	replayPar := 1
	if len(jobs) > 0 && par/len(jobs) > 1 {
		replayPar = par / len(jobs)
	}
	runs := make([]*Run, len(jobs))
	var done atomic.Int64
	err := parallel.ForEachContext(ctx, par, len(jobs), func(i int) error {
		o := s.Options
		if s.CollectMetrics && o.Obs == nil {
			// One metrics-only sink per job: registries are not safe
			// for concurrent use across parallel simulations.
			o.Obs = obs.New()
		}
		r, err := runOneParContext(ctx, jobs[i].w, jobs[i].impl, geoms, o, replayPar, s.OnRecordingBytes)
		if err != nil {
			return err
		}
		runs[i] = r
		if s.OnProgress != nil {
			s.OnProgress(Progress{
				Done:     int(done.Add(1)),
				Total:    len(jobs),
				Workload: jobs[i].w,
				Impl:     jobs[i].impl,
			})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	ds := &Dataset{Sweep: s, Geoms: geoms, Runs: make(map[string]map[string]*Run)}
	for i, j := range jobs {
		m := ds.Runs[j.w.Name]
		if m == nil {
			m = make(map[string]*Run)
			ds.Runs[j.w.Name] = m
		}
		m[j.impl.Name()] = runs[i]
	}
	return ds, nil
}

// RecordOne simulates one workload under one implementation with a
// trace recording attached, returning the run (cache statistics
// unfilled) and the recorded reference stream. The recording can then
// be replayed through any number of cache geometries without
// re-simulating.
func RecordOne(w Workload, impl core.Impl, opt core.Options) (*Run, *trace.Recording, error) {
	return RecordOneContext(context.Background(), w, impl, opt)
}

// RecordOneContext is RecordOne with cooperative cancellation of the
// simulation step loop.
func RecordOneContext(ctx context.Context, w Workload, impl core.Impl, opt core.Options) (*Run, *trace.Recording, error) {
	spec, err := programs.ByName(w.Name)
	if err != nil {
		return nil, nil, err
	}
	if opt.MaxInstructions == 0 {
		opt.MaxInstructions = 2_000_000_000
	}
	sim, err := core.Build(impl, spec.Build(w.Arg), opt)
	if err != nil {
		return nil, nil, err
	}
	rec := &trace.Recording{}
	sim.Tracer = rec
	var nicRec *trace.Recording
	if impl.Caps().NICInlets {
		nicRec = &trace.Recording{}
		sim.NICTracer = nicRec
	}
	defer sim.Close()
	if err := sim.RunContext(ctx); err != nil {
		return nil, nil, err
	}
	r := &Run{
		Workload:     w,
		Impl:         impl,
		Nodes:        1,
		Instructions: sim.M.Instructions(),
		Counts:       rec.Counts,
		TPQ:          sim.Gran.TPQ(),
		IPT:          sim.Gran.IPT(),
		IPQ:          sim.Gran.IPQ(),
		Threads:      sim.Gran.Threads,
		Quanta:       sim.Gran.Quanta,
	}
	if nicRec != nil {
		r.NIC = &NICStats{
			Instructions: sim.M.HighInstructions(),
			Counts:       nicRec.Counts,
			Config:       NICGeom(opt),
		}
		r.nicRecs = []*trace.Recording{nicRec}
	}
	if sim.Obs != nil {
		r.Metrics = sim.Obs.Metrics
		// The recording replaced the inline collector, so the run
		// finalizer could not fold reference-class counts; do it here.
		for cls := mem.Class(0); cls < mem.NumClasses; cls++ {
			name := cls.String()
			r.Metrics.Counter("ref.fetch." + name).Add(rec.Fetches[cls])
			r.Metrics.Counter("ref.read." + name).Add(rec.Reads[cls])
			r.Metrics.Counter("ref.write." + name).Add(rec.Writes[cls])
			if nicRec != nil {
				r.Metrics.Counter("nic.ref.fetch." + name).Add(nicRec.Fetches[cls])
				r.Metrics.Counter("nic.ref.read." + name).Add(nicRec.Reads[cls])
				r.Metrics.Counter("nic.ref.write." + name).Add(nicRec.Writes[cls])
			}
		}
	}
	return r, rec, nil
}

// ReplayFanOut fills r.Caches by replaying rec through every geometry.
// Caches are indexed by geometry position regardless of completion
// order. When the run carries a metrics registry, each replay also
// attributes its misses by cause; the per-geometry attributions are
// folded into the registry serially, in geometry order, after the
// parallel phase.
//
// The fan-out chooses its kernel from the parallelism and geometry
// count (see replayGroups): with at least as many workers as
// geometries, each worker replays one geometry independently (the
// original per-geometry path); with fewer, the geometries are split
// into one contiguous group per worker and each group runs the
// vectorized single-pass kernel (trace.ReplayAll), which reads and
// decodes the packed stream once for the whole group. Both paths are
// byte-identical.
func ReplayFanOut(r *Run, rec *trace.Recording, geoms []cache.Config, parallelism int) error {
	return ReplayFanOutContext(context.Background(), r, rec, geoms, parallelism)
}

// ReplayFanOutContext is ReplayFanOut with cooperative cancellation:
// the context is checked before each geometry group is claimed and
// between chunks inside the vectorized kernel.
func ReplayFanOutContext(ctx context.Context, r *Run, rec *trace.Recording, geoms []cache.Config, parallelism int) error {
	r.Caches = make([]CacheStats, len(geoms))
	var mcs []trace.MissCounts
	if r.Metrics != nil {
		mcs = make([]trace.MissCounts, len(geoms))
	}
	groups := replayGroups(len(geoms), parallelism)
	err := parallel.ForEachContext(ctx, parallelism, len(groups), func(gi int) error {
		lo, hi := groups[gi][0], groups[gi][1]
		pairs := make([]trace.Pair, hi-lo)
		for g := lo; g < hi; g++ {
			p, err := trace.NewPair(geoms[g])
			if err != nil {
				return err
			}
			pairs[g-lo] = p
		}
		if mcs != nil {
			copy(mcs[lo:hi], rec.ReplayAllObserved(pairs))
		} else if err := rec.ReplayAllContext(ctx, pairs); err != nil {
			return err
		}
		for i, p := range pairs {
			r.Caches[lo+i] = CacheStats{
				Config:     p.I.Config(),
				IMisses:    p.I.Stats().Misses,
				DMisses:    p.D.Stats().Misses,
				Writebacks: p.D.Stats().Writebacks,
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	for g := range mcs {
		mcs[g].AddTo(r.Metrics, geoms[g].String())
	}
	return replayNIC(r)
}

// replayNIC consumes the run's recorded NIC reference streams (if any)
// into r.NIC: each node's stream replays through its own private cache
// pair of the NIC geometry, and the misses are summed. The NIC cache is
// a single fixed geometry, not a grid, so this is one cheap pass per
// node. When the run carries a metrics registry, the NIC totals land
// under nic.* counters.
func replayNIC(r *Run) error {
	if r.NIC == nil || r.nicRecs == nil {
		return nil
	}
	for _, rec := range r.nicRecs {
		p, err := trace.NewPair(r.NIC.Config)
		if err != nil {
			return err
		}
		rec.Replay(p)
		r.NIC.IMisses += p.I.Stats().Misses
		r.NIC.DMisses += p.D.Stats().Misses
		r.NIC.Writebacks += p.D.Stats().Writebacks
	}
	r.nicRecs = nil
	if r.Metrics != nil {
		r.Metrics.Counter("nic.instructions").Add(r.NIC.Instructions)
		r.Metrics.Counter("nic.miss.fetch").Add(r.NIC.IMisses)
		r.Metrics.Counter("nic.miss.data").Add(r.NIC.DMisses)
		r.Metrics.Counter("nic.writebacks").Add(r.NIC.Writebacks)
	}
	return nil
}

// replayGroups partitions n geometries into contiguous [lo, hi) groups
// for the replay fan-out: one singleton group per geometry when the
// worker pool is at least that wide (every worker streams its own
// geometry, the pre-vectorization layout), otherwise one near-equal
// group per worker so each worker amortizes one pass over the recording
// across its whole group.
func replayGroups(n, parallelism int) [][2]int {
	w := parallel.Workers(parallelism)
	if w > n {
		w = n
	}
	groups := make([][2]int, 0, w)
	lo := 0
	for i := 0; i < w; i++ {
		hi := lo + (n-lo)/(w-i)
		groups = append(groups, [2]int{lo, hi})
		lo = hi
	}
	return groups
}

// RunOnePar simulates one workload under one implementation, recording
// its reference stream, then replays it through the given cache
// geometries on at most parallelism workers.
func RunOnePar(w Workload, impl core.Impl, geoms []cache.Config, opt core.Options, parallelism int) (*Run, error) {
	return RunOneParContext(context.Background(), w, impl, geoms, opt, parallelism)
}

// RunOneParContext is RunOnePar with cooperative cancellation of both
// the simulation and the replay fan-out. When opt.Nodes > 1 the
// workload runs on an N-node mesh instead of the uniprocessor: each
// node records its own reference stream and the geometry fan-out
// replays every node through its own private cache pair, summing the
// misses (see RunClusterParContext).
func RunOneParContext(ctx context.Context, w Workload, impl core.Impl, geoms []cache.Config, opt core.Options, parallelism int) (*Run, error) {
	return runOneParContext(ctx, w, impl, geoms, opt, parallelism, nil)
}

// RunOneParHookContext is RunOneParContext with the live
// recording-bytes hook Sweep.OnRecordingBytes threads through — for
// callers that drive sweep units one at a time (checkpoint/resume)
// but still want the in-flight recording gauge. It is exactly the
// per-unit body of Sweep.ExecuteContext, so a unit-at-a-time sweep is
// byte-identical to a whole-grid one.
func RunOneParHookContext(ctx context.Context, w Workload, impl core.Impl, geoms []cache.Config, opt core.Options, parallelism int, onRecBytes func(delta int64)) (*Run, error) {
	return runOneParContext(ctx, w, impl, geoms, opt, parallelism, onRecBytes)
}

// runOneParContext is RunOneParContext with a live-recording-bytes
// hook (see Sweep.OnRecordingBytes). The cluster path records one
// stream per node with its own lifecycle and skips the hook.
func runOneParContext(ctx context.Context, w Workload, impl core.Impl, geoms []cache.Config, opt core.Options, parallelism int, onRecBytes func(delta int64)) (*Run, error) {
	if opt.Nodes > 1 {
		return RunClusterParContext(ctx, w, impl, geoms, opt, parallelism)
	}
	// Surface geometry errors before paying for a simulation.
	for _, g := range geoms {
		if err := g.Validate(); err != nil {
			return nil, err
		}
	}
	r, rec, err := RecordOneContext(ctx, w, impl, opt)
	if err != nil {
		return nil, err
	}
	if onRecBytes != nil {
		onRecBytes(int64(rec.Bytes()))
		defer onRecBytes(-int64(rec.Bytes()))
	}
	if err := ReplayFanOutContext(ctx, r, rec, geoms, parallelism); err != nil {
		return nil, err
	}
	return r, nil
}

// ReplayStreamFanOutContext fills per-geometry cache statistics by
// streaming a compacted recording (see trace.Reader) through the same
// grouped fan-out as ReplayFanOutContext, without ever materializing
// the packed form: each worker group opens its own Reader via open and
// holds one decoded chunk at a time. The statistics are identical to
// replaying the original Recording — both paths drive the same
// partition/batch kernel.
func ReplayStreamFanOutContext(ctx context.Context, open func() (*trace.Reader, error), geoms []cache.Config, parallelism int) ([]CacheStats, error) {
	for _, g := range geoms {
		if err := g.Validate(); err != nil {
			return nil, err
		}
	}
	out := make([]CacheStats, len(geoms))
	groups := replayGroups(len(geoms), parallelism)
	err := parallel.ForEachContext(ctx, parallelism, len(groups), func(gi int) error {
		lo, hi := groups[gi][0], groups[gi][1]
		pairs := make([]trace.Pair, hi-lo)
		for g := lo; g < hi; g++ {
			p, err := trace.NewPair(geoms[g])
			if err != nil {
				return err
			}
			pairs[g-lo] = p
		}
		rd, err := open()
		if err != nil {
			return err
		}
		if err := rd.ReplayAllContext(ctx, pairs); err != nil {
			return err
		}
		for i, p := range pairs {
			out[lo+i] = CacheStats{
				Config:     p.I.Config(),
				IMisses:    p.I.Stats().Misses,
				DMisses:    p.D.Stats().Misses,
				Writebacks: p.D.Stats().Writebacks,
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunOne simulates one workload under one implementation with the given
// cache geometries attached, serially (parallelism 1).
func RunOne(w Workload, impl core.Impl, geoms []cache.Config, opt core.Options) (*Run, error) {
	return RunOnePar(w, impl, geoms, opt, 1)
}

// --- Table 2 ----------------------------------------------------------------

// Table2Row is one row of Table 2: granularity under both
// implementations plus the MD/AM cycle ratio at an 8K 4-way cache for
// miss costs 12, 24 and 48.
type Table2Row struct {
	Program                   string
	TPQMD, TPQAM              float64
	IPTMD, IPTAM              float64
	IPQMD, IPQAM              float64
	Ratio12, Ratio24, Ratio48 float64
}

// Table2 derives the paper's Table 2 from a dataset. The dataset must
// include the 8 KB 4-way geometry.
func Table2(d *Dataset) []Table2Row {
	var rows []Table2Row
	for _, w := range d.Sweep.Workloads {
		md := d.Run(w.Name, core.ImplMD)
		am := d.Run(w.Name, core.ImplAM)
		rows = append(rows, Table2Row{
			Program: w.Name,
			TPQMD:   md.TPQ, TPQAM: am.TPQ,
			IPTMD: md.IPT, IPTAM: am.IPT,
			IPQMD: md.IPQ, IPQAM: am.IPQ,
			Ratio12: d.Ratio(w.Name, 8, 4, 12),
			Ratio24: d.Ratio(w.Name, 8, 4, 24),
			Ratio48: d.Ratio(w.Name, 8, 4, 48),
		})
	}
	return rows
}

// --- Figures 3-6 --------------------------------------------------------------

// Series is one plotted curve: the MD/AM ratio against cache size.
type Series struct {
	Label   string
	SizesKB []int
	Ratios  []float64
}

// Figure3 returns the geometric-mean ratio curves of Figure 3: one
// series per associativity, for each miss penalty. The outer index is
// the penalty, the inner the associativity.
func Figure3(d *Dataset) map[int][]Series {
	out := make(map[int][]Series)
	for _, p := range d.Sweep.Penalties {
		for _, a := range d.Sweep.Assocs {
			s := Series{Label: fmt.Sprintf("%d-way", a), SizesKB: d.Sweep.SizesKB}
			for _, kb := range d.Sweep.SizesKB {
				s.Ratios = append(s.Ratios, d.GeoMeanRatio(kb, a, p))
			}
			out[p] = append(out[p], s)
		}
	}
	return out
}

// figurePerProgram returns per-program ratio curves plus the geometric
// mean at one associativity, for each penalty (Figures 4 and 5).
func figurePerProgram(d *Dataset, assoc int) map[int][]Series {
	out := make(map[int][]Series)
	for _, p := range d.Sweep.Penalties {
		for _, w := range d.Sweep.Workloads {
			s := Series{Label: w.Name, SizesKB: d.Sweep.SizesKB}
			for _, kb := range d.Sweep.SizesKB {
				s.Ratios = append(s.Ratios, d.Ratio(w.Name, kb, assoc, p))
			}
			out[p] = append(out[p], s)
		}
		mean := Series{Label: "geomean", SizesKB: d.Sweep.SizesKB}
		for _, kb := range d.Sweep.SizesKB {
			mean.Ratios = append(mean.Ratios, d.GeoMeanRatio(kb, assoc, p))
		}
		out[p] = append(out[p], mean)
	}
	return out
}

// Figure4 returns the per-program curves for 4-way set-associative
// caches (plus the geometric mean), keyed by miss penalty.
func Figure4(d *Dataset) map[int][]Series { return figurePerProgram(d, 4) }

// Figure5 returns the per-program curves for direct-mapped caches (plus
// the geometric mean), keyed by miss penalty.
func Figure5(d *Dataset) map[int][]Series { return figurePerProgram(d, 1) }

// Figure6 returns the direct-mapped geometric-mean curves excluding
// selection sort, one series per miss penalty.
func Figure6(d *Dataset) []Series {
	var out []Series
	for _, p := range d.Sweep.Penalties {
		s := Series{Label: fmt.Sprintf("%d-cycle miss", p), SizesKB: d.Sweep.SizesKB}
		for _, kb := range d.Sweep.SizesKB {
			s.Ratios = append(s.Ratios, d.GeoMeanRatio(kb, 1, p, "ss"))
		}
		out = append(out, s)
	}
	return out
}

// --- §3.1 access ratios --------------------------------------------------------

// AccessRatioRow reports MD/AM reference-count ratios for one program.
type AccessRatioRow struct {
	Program                string
	Reads, Writes, Fetches float64
}

// AccessRatios derives the §3.1 comparison (paper average: MD performs
// 86% of the reads, 87% of the writes and 77% of the fetches of AM).
// The final row, labelled "mean", is the arithmetic mean as in the
// paper's "on average" phrasing.
func AccessRatios(d *Dataset) []AccessRatioRow {
	var rows []AccessRatioRow
	var sr, sw, sf float64
	for _, w := range d.Sweep.Workloads {
		md := d.Run(w.Name, core.ImplMD)
		am := d.Run(w.Name, core.ImplAM)
		row := AccessRatioRow{
			Program: w.Name,
			Reads:   ratio64(md.Counts.TotalReads(), am.Counts.TotalReads()),
			Writes:  ratio64(md.Counts.TotalWrites(), am.Counts.TotalWrites()),
			Fetches: ratio64(md.Counts.TotalFetches(), am.Counts.TotalFetches()),
		}
		sr += row.Reads
		sw += row.Writes
		sf += row.Fetches
		rows = append(rows, row)
	}
	n := float64(len(d.Sweep.Workloads))
	rows = append(rows, AccessRatioRow{Program: "mean", Reads: sr / n, Writes: sw / n, Fetches: sf / n})
	return rows
}

func ratio64(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// --- Figure 2 ablation -----------------------------------------------------------

// EnabledRow compares the unenabled AM implementation with the enabled
// variant of §2.4 on one workload: on a uniprocessor, servicing local
// I-structure fetches immediately extends quanta.
type EnabledRow struct {
	Program                      string
	TPQUnenabled, TPQEnabled     float64
	InstrUnenabled, InstrEnabled uint64
}

// EnabledAblation runs the Figure 2 comparison for the given workloads.
// The 2*len(ws) simulations are independent and run on at most
// parallelism workers (0 = GOMAXPROCS); each writes a disjoint half of
// its pre-assigned row.
func EnabledAblation(ws []Workload, opt core.Options, parallelism int) ([]EnabledRow, error) {
	rows := make([]EnabledRow, len(ws))
	for i, w := range ws {
		rows[i].Program = w.Name
	}
	impls := [2]core.Impl{core.ImplAM, core.ImplAMEnabled}
	err := parallel.ForEach(parallelism, 2*len(ws), func(i int) error {
		w, impl := ws[i/2], impls[i%2]
		spec, err := programs.ByName(w.Name)
		if err != nil {
			return err
		}
		o := opt
		if o.MaxInstructions == 0 {
			o.MaxInstructions = 2_000_000_000
		}
		sim, err := core.Build(impl, spec.Build(w.Arg), o)
		if err != nil {
			return err
		}
		defer sim.Close()
		if err := sim.Run(); err != nil {
			return err
		}
		row := &rows[i/2]
		if impl == core.ImplAM {
			row.TPQUnenabled = sim.Gran.TPQ()
			row.InstrUnenabled = sim.M.Instructions()
		} else {
			row.TPQEnabled = sim.Gran.TPQ()
			row.InstrEnabled = sim.M.Instructions()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// --- Block-size ablation ------------------------------------------------------------

// BlockRow reports the MD/AM ratio for one block size at the 8K 4-way
// geometry, penalty 24 — the paper notes 64-byte blocks were best for
// both systems.
type BlockRow struct {
	BlockBytes int
	Ratio      float64
	MDCycles   uint64
	AMCycles   uint64
}

// BlockSweep evaluates block sizes 8..64 for the given workloads. Block
// size is a geometry-only parameter, so each (workload, implementation)
// pair is simulated exactly once and its recorded trace is replayed
// through all four block geometries; the simulations run on at most
// parallelism workers (0 = GOMAXPROCS). Totals accumulate in job order,
// so the rows are identical at every parallelism setting.
func BlockSweep(ws []Workload, opt core.Options, parallelism int) ([]BlockRow, error) {
	var rows []BlockRow
	var geoms []cache.Config
	blocks := []int{8, 16, 32, 64}
	for _, bb := range blocks {
		geoms = append(geoms, cache.Config{SizeBytes: 8 * 1024, BlockBytes: bb, Assoc: 4})
	}
	impls := [2]core.Impl{core.ImplMD, core.ImplAM}
	par := parallel.Workers(parallelism)
	runs := make([]*Run, 2*len(ws))
	err := parallel.ForEach(par, len(runs), func(i int) error {
		r, err := RunOnePar(ws[i/2], impls[i%2], geoms, opt, par)
		if err != nil {
			return err
		}
		runs[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	totalMD := make([]uint64, len(blocks))
	totalAM := make([]uint64, len(blocks))
	for j, r := range runs {
		for i := range blocks {
			c := r.Cycles(i, 24, false)
			if impls[j%2] == core.ImplMD {
				totalMD[i] += c
			} else {
				totalAM[i] += c
			}
		}
	}
	for i, bb := range blocks {
		rows = append(rows, BlockRow{
			BlockBytes: bb,
			Ratio:      ratio64(totalMD[i], totalAM[i]),
			MDCycles:   totalMD[i],
			AMCycles:   totalAM[i],
		})
	}
	return rows, nil
}

// --- Associativity ablation ---------------------------------------------------------

// AssocRow reports the MD/AM ratio for one associativity at 8K/64B,
// penalty 24. §3.3 attributes much of MD's extra miss traffic to
// conflict misses in the data cache; sweeping associativity past the
// paper's 1/2/4 grid up to 8- and 16-way bounds how much of the gap
// conflict misses explain — the residual at high associativity is
// capacity and cold misses.
type AssocRow struct {
	Assoc    int
	Ratio    float64
	MDCycles uint64
	AMCycles uint64
	MDMisses uint64
	AMMisses uint64
}

// AssocSweep evaluates associativities 1..16 at the paper's headline 8K
// size and 64-byte blocks for the given workloads. Associativity is a
// geometry-only parameter, so each (workload, implementation) pair is
// simulated exactly once and its recorded trace is replayed through all
// five geometries in one vectorized pass; the simulations run on at
// most parallelism workers (0 = GOMAXPROCS). Totals accumulate in job
// order, so the rows are identical at every parallelism setting.
func AssocSweep(ws []Workload, opt core.Options, parallelism int) ([]AssocRow, error) {
	assocs := []int{1, 2, 4, 8, 16}
	var geoms []cache.Config
	for _, a := range assocs {
		geoms = append(geoms, cache.Config{SizeBytes: 8 * 1024, BlockBytes: 64, Assoc: a})
	}
	impls := [2]core.Impl{core.ImplMD, core.ImplAM}
	par := parallel.Workers(parallelism)
	runs := make([]*Run, 2*len(ws))
	err := parallel.ForEach(par, len(runs), func(i int) error {
		r, err := RunOnePar(ws[i/2], impls[i%2], geoms, opt, 1)
		if err != nil {
			return err
		}
		runs[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]AssocRow, len(assocs))
	for i, a := range assocs {
		rows[i].Assoc = a
	}
	for j, r := range runs {
		for i := range assocs {
			c := r.Cycles(i, 24, false)
			m := r.Caches[i].IMisses + r.Caches[i].DMisses
			if impls[j%2] == core.ImplMD {
				rows[i].MDCycles += c
				rows[i].MDMisses += m
			} else {
				rows[i].AMCycles += c
				rows[i].AMMisses += m
			}
		}
	}
	for i := range rows {
		rows[i].Ratio = ratio64(rows[i].MDCycles, rows[i].AMCycles)
	}
	return rows, nil
}

// WordBytes re-exports the machine word size for presentation layers.
const WordBytes = mem.WordBytes
