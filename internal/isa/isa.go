// Package isa defines the instruction set of the simulated
// Message-Driven-Processor-like machine.
//
// The machine is a load/store register machine with 8 general-purpose
// tagged-word registers per priority level, word-granularity memory
// access, hardware message send/dispatch, and interrupt enable/disable
// for the low priority level. It is deliberately close in spirit to the
// MDP: two complete priority levels with separate register files,
// messages buffered directly into on-chip memory, and dispatch occurring
// when the current task suspends.
//
// Instructions occupy one 4-byte word of code address space each, so
// instruction-fetch traffic is proportional to dynamic instruction count,
// matching the cycle model of the paper (one cycle per instruction plus
// cache miss penalties).
package isa

import "fmt"

// NumRegs is the number of general-purpose registers per priority level.
const NumRegs = 8

// Register conventions used by the runtime and generated code. They are
// conventions only; the hardware treats all 8 registers uniformly except
// that RMsg is loaded with the message base address at dispatch.
const (
	RMsg  = 5 // base byte address of the current message (set at dispatch)
	RFP   = 6 // current frame pointer in user code
	RLink = 7 // link register for JAL-called runtime routines
)

// RZ is a pseudo register that always reads as integer zero. Using it as
// a base register gives absolute addressing.
const RZ = 15

// Op enumerates instruction opcodes.
type Op uint8

// Opcodes. Operand roles are noted per group.
const (
	OpNop Op = iota

	// Data movement. MOVI/MOVA/MOVF load immediates (int, pointer,
	// float); MOV copies a register; LEA computes Ra+Imm as a pointer.
	OpMovI // Rd <- int(Imm)
	OpMovA // Rd <- ptr(Imm)
	OpMovF // Rd <- float(FImm)
	OpMov  // Rd <- Ra
	OpLEA  // Rd <- ptr(Ra + Imm)

	// Memory. Addresses are Ra + Imm (byte offset); Ra may be RZ.
	// LDPre and STPost provide the MDP's auto-increment addressing for
	// stack-like structures: LDPre decrements Ra by one word and loads
	// through it; STPost stores through Ra and increments it.
	OpLD     // Rd <- mem[Ra+Imm]
	OpST     // mem[Ra+Imm] <- Rb
	OpLDPre  // Ra -= 4; Rd <- mem[Ra]
	OpSTPost // mem[Ra] <- Rb; Ra += 4

	// Integer ALU, three-register and register-immediate forms.
	OpAdd  // Rd <- Ra + Rb
	OpSub  // Rd <- Ra - Rb
	OpMul  // Rd <- Ra * Rb
	OpDiv  // Rd <- Ra / Rb (trap on zero)
	OpMod  // Rd <- Ra % Rb (trap on zero)
	OpAnd  // Rd <- Ra & Rb
	OpOr   // Rd <- Ra | Rb
	OpXor  // Rd <- Ra ^ Rb
	OpShl  // Rd <- Ra << Rb
	OpShr  // Rd <- Ra >> Rb
	OpAddI // Rd <- Ra + Imm
	OpSubI // Rd <- Ra - Imm
	OpMulI // Rd <- Ra * Imm
	OpAndI // Rd <- Ra & Imm
	OpShlI // Rd <- Ra << Imm
	OpShrI // Rd <- Ra >> Imm

	// Floating point.
	OpFAdd // Rd <- Ra + Rb
	OpFSub // Rd <- Ra - Rb
	OpFMul // Rd <- Ra * Rb
	OpFDiv // Rd <- Ra / Rb
	OpFNeg // Rd <- -Ra
	OpIToF // Rd <- float(Ra)
	OpFToI // Rd <- int(Ra)

	// Control transfer. Branch targets are absolute byte addresses,
	// resolved by the assembler.
	OpBR   // goto Target
	OpJMP  // goto Ra
	OpJAL  // Rd <- return address; goto Target
	OpBEQ  // if Ra == Rb goto Target (integer compare)
	OpBNE  // if Ra != Rb
	OpBLT  // if Ra < Rb
	OpBLE  // if Ra <= Rb
	OpBGT  // if Ra > Rb
	OpBGE  // if Ra >= Rb
	OpFBLT // if Ra < Rb (float compare)
	OpFBLE // if Ra <= Rb (float compare)
	OpBZ   // if Ra == 0
	OpBNZ  // if Ra != 0
	OpBTag // if tag(Ra) == Tag(Imm) goto Target

	// Tag manipulation for I-structure bookkeeping.
	OpTagSet // Rd <- Ra with tag set to Tag(Imm)
	OpTagGet // Rd <- int(tag(Ra))

	// Messaging. A message is begun with MSGI/MSGR (selecting the
	// destination priority), extended with SENDW*, and delivered by
	// SENDE. MSGDEST selects a destination node for multi-node
	// configurations; the default destination is the local node.
	OpMsgI    // begin message at priority Imm (0 = low, 1 = high)
	OpMsgR    // begin message at priority Ra
	OpMsgDest // destination node <- Ra
	OpSendW   // append register Ra
	OpSendWI  // append int(Imm)
	OpSendWA  // append ptr(Imm)
	OpSendE   // deliver the message

	// Machine control.
	OpEI      // enable low-priority interrupts
	OpDI      // disable low-priority interrupts
	OpSuspend // end current task; dispatch next message at this priority
	OpWait    // idle poll: halt if quiescent (stall instead under a router)
	OpHalt    // stop simulation immediately
	OpTrap    // runtime error Imm
	OpNode    // Rd <- int(local node number), the MDP's NNR

	NumOps
)

var opNames = [NumOps]string{
	OpNop: "nop", OpMovI: "movi", OpMovA: "mova", OpMovF: "movf",
	OpMov: "mov", OpLEA: "lea", OpLD: "ld", OpST: "st",
	OpLDPre: "ldpre", OpSTPost: "stpost",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpAddI: "addi", OpSubI: "subi", OpMulI: "muli", OpAndI: "andi",
	OpShlI: "shli", OpShrI: "shri",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpFNeg: "fneg", OpIToF: "itof", OpFToI: "ftoi",
	OpBR: "br", OpJMP: "jmp", OpJAL: "jal",
	OpBEQ: "beq", OpBNE: "bne", OpBLT: "blt", OpBLE: "ble",
	OpBGT: "bgt", OpBGE: "bge", OpFBLT: "fblt", OpFBLE: "fble",
	OpBZ: "bz", OpBNZ: "bnz", OpBTag: "btag",
	OpTagSet: "tagset", OpTagGet: "tagget",
	OpMsgI: "msgi", OpMsgR: "msgr", OpMsgDest: "msgdest",
	OpSendW: "sendw", OpSendWI: "sendwi", OpSendWA: "sendwa", OpSendE: "sende",
	OpEI: "ei", OpDI: "di", OpSuspend: "suspend", OpWait: "wait",
	OpHalt: "halt", OpTrap: "trap", OpNode: "node",
}

// Class buckets the opcode for instruction-mix reporting: "mem"
// (loads/stores), "alu" (integer arithmetic and logic), "float",
// "control" (branches and jumps), "msg" (message composition and send),
// "machine" (interrupt control, suspend, wait, halt, trap), "move"
// (immediates, register copies, LEA, tag ops) or "misc" (nop). Every
// opcode belongs to exactly one class.
func (o Op) Class() string {
	switch {
	case o == OpLD || o == OpST || o == OpLDPre || o == OpSTPost:
		return "mem"
	case o >= OpAdd && o <= OpShrI:
		return "alu"
	case o >= OpFAdd && o <= OpFToI:
		return "float"
	case o >= OpBR && o <= OpBTag:
		return "control"
	case o >= OpMsgI && o <= OpSendE:
		return "msg"
	case o >= OpEI && o <= OpTrap:
		return "machine"
	case o >= OpMovI && o <= OpLEA || o == OpTagSet || o == OpTagGet || o == OpNode:
		return "move"
	default:
		return "misc"
	}
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// MarkKind classifies statistics annotations attached to instructions.
// Marks are metadata: they cost no cycles and generate no memory traffic,
// they merely notify the statistics observer when the annotated
// instruction is executed.
type MarkKind uint8

// Mark kinds. ThreadStart/InletStart fire with the current frame pointer;
// Activate fires when the AM scheduler begins a frame activation. The
// remaining kinds instrument runtime operations for the observability
// sink: Post marks entry to the post routine, FrameEnq the append of a
// frame to the ready queue, and the CV kinds the push/pop sites of the
// local and remote continuation vectors.
const (
	MarkNone MarkKind = iota
	MarkThreadStart
	MarkInletStart
	MarkActivate
	MarkPost
	MarkFrameEnq
	MarkLCVPush
	MarkLCVPop
	MarkRCVPush
	MarkRCVPop
)

// Instr is one decoded instruction. Target holds absolute branch/jump
// destinations (filled in by the assembler's fixup pass).
type Instr struct {
	Op     Op
	Rd     uint8
	Ra     uint8
	Rb     uint8
	Imm    int64
	FImm   float64
	Target uint32
	Mark   MarkKind
}

// HasMemRead reports whether the instruction reads data memory.
func (i Instr) HasMemRead() bool { return i.Op == OpLD || i.Op == OpLDPre }

// HasMemWrite reports whether the instruction writes data memory.
func (i Instr) HasMemWrite() bool { return i.Op == OpST || i.Op == OpSTPost }

// IsBranch reports whether the instruction may transfer control.
func (i Instr) IsBranch() bool {
	switch i.Op {
	case OpBR, OpJMP, OpJAL, OpBEQ, OpBNE, OpBLT, OpBLE, OpBGT, OpBGE,
		OpFBLT, OpFBLE, OpBZ, OpBNZ, OpBTag:
		return true
	}
	return false
}

// String disassembles the instruction.
func (i Instr) String() string {
	r := func(n uint8) string {
		if n == RZ {
			return "rz"
		}
		return fmt.Sprintf("r%d", n)
	}
	switch i.Op {
	case OpNop, OpSendE, OpEI, OpDI, OpSuspend, OpWait, OpHalt:
		return i.Op.String()
	case OpMovI, OpMovA:
		return fmt.Sprintf("%s %s, %d", i.Op, r(i.Rd), i.Imm)
	case OpMovF:
		return fmt.Sprintf("%s %s, %g", i.Op, r(i.Rd), i.FImm)
	case OpMov, OpFNeg, OpIToF, OpFToI, OpTagGet:
		return fmt.Sprintf("%s %s, %s", i.Op, r(i.Rd), r(i.Ra))
	case OpLEA, OpAddI, OpSubI, OpMulI, OpAndI, OpShlI, OpShrI, OpTagSet:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, r(i.Rd), r(i.Ra), i.Imm)
	case OpLD:
		return fmt.Sprintf("ld %s, [%s+%d]", r(i.Rd), r(i.Ra), i.Imm)
	case OpST:
		return fmt.Sprintf("st [%s+%d], %s", r(i.Ra), i.Imm, r(i.Rb))
	case OpLDPre:
		return fmt.Sprintf("ldpre %s, [--%s]", r(i.Rd), r(i.Ra))
	case OpSTPost:
		return fmt.Sprintf("stpost [%s++], %s", r(i.Ra), r(i.Rb))
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr, OpXor, OpShl,
		OpShr, OpFAdd, OpFSub, OpFMul, OpFDiv:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, r(i.Rd), r(i.Ra), r(i.Rb))
	case OpBR:
		return fmt.Sprintf("br %#x", i.Target)
	case OpJMP:
		return fmt.Sprintf("jmp %s", r(i.Ra))
	case OpJAL:
		return fmt.Sprintf("jal %s, %#x", r(i.Rd), i.Target)
	case OpBEQ, OpBNE, OpBLT, OpBLE, OpBGT, OpBGE, OpFBLT, OpFBLE:
		return fmt.Sprintf("%s %s, %s, %#x", i.Op, r(i.Ra), r(i.Rb), i.Target)
	case OpBZ, OpBNZ:
		return fmt.Sprintf("%s %s, %#x", i.Op, r(i.Ra), i.Target)
	case OpBTag:
		return fmt.Sprintf("btag %s, %d, %#x", r(i.Ra), i.Imm, i.Target)
	case OpMsgI:
		return fmt.Sprintf("msgi %d", i.Imm)
	case OpMsgR, OpMsgDest, OpSendW:
		return fmt.Sprintf("%s %s", i.Op, r(i.Ra))
	case OpNode:
		return fmt.Sprintf("node %s", r(i.Rd))
	case OpSendWI, OpSendWA, OpTrap:
		return fmt.Sprintf("%s %d", i.Op, i.Imm)
	}
	return i.Op.String()
}
