package isa

import (
	"strings"
	"testing"
)

func TestOpStrings(t *testing.T) {
	// Every defined opcode must have a mnemonic.
	for op := Op(0); op < NumOps; op++ {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("opcode %d has no mnemonic", op)
		}
	}
	if Op(200).String() != "op(200)" {
		t.Error("out-of-range opcode String wrong")
	}
}

func TestHasMem(t *testing.T) {
	reads := map[Op]bool{OpLD: true, OpLDPre: true, OpST: false, OpAdd: false}
	for op, want := range reads {
		if got := (Instr{Op: op}).HasMemRead(); got != want {
			t.Errorf("%v.HasMemRead = %v, want %v", op, got, want)
		}
	}
	writes := map[Op]bool{OpST: true, OpSTPost: true, OpLD: false, OpMov: false}
	for op, want := range writes {
		if got := (Instr{Op: op}).HasMemWrite(); got != want {
			t.Errorf("%v.HasMemWrite = %v, want %v", op, got, want)
		}
	}
}

func TestIsBranch(t *testing.T) {
	branchy := []Op{OpBR, OpJMP, OpJAL, OpBEQ, OpBNE, OpBLT, OpBLE, OpBGT,
		OpBGE, OpFBLT, OpFBLE, OpBZ, OpBNZ, OpBTag}
	for _, op := range branchy {
		if !(Instr{Op: op}).IsBranch() {
			t.Errorf("%v not recognized as branch", op)
		}
	}
	for _, op := range []Op{OpAdd, OpLD, OpSuspend, OpSendE} {
		if (Instr{Op: op}).IsBranch() {
			t.Errorf("%v wrongly recognized as branch", op)
		}
	}
}

func TestDisassembly(t *testing.T) {
	cases := map[string]Instr{
		"movi r1, 42":       {Op: OpMovI, Rd: 1, Imm: 42},
		"movf r2, 1.5":      {Op: OpMovF, Rd: 2, FImm: 1.5},
		"ld r3, [r6+8]":     {Op: OpLD, Rd: 3, Ra: 6, Imm: 8},
		"st [r6+12], r0":    {Op: OpST, Ra: 6, Rb: 0, Imm: 12},
		"ldpre r3, [--r1]":  {Op: OpLDPre, Rd: 3, Ra: 1},
		"stpost [r3++], r4": {Op: OpSTPost, Ra: 3, Rb: 4},
		"add r0, r1, r2":    {Op: OpAdd, Rd: 0, Ra: 1, Rb: 2},
		"br 0x100":          {Op: OpBR, Target: 0x100},
		"jmp r7":            {Op: OpJMP, Ra: 7},
		"jal r7, 0x40":      {Op: OpJAL, Rd: 7, Target: 0x40},
		"beq r0, r1, 0x20":  {Op: OpBEQ, Ra: 0, Rb: 1, Target: 0x20},
		"bz r5, 0x30":       {Op: OpBZ, Ra: 5, Target: 0x30},
		"btag r1, 3, 0x10":  {Op: OpBTag, Ra: 1, Imm: 3, Target: 0x10},
		"msgi 1":            {Op: OpMsgI, Imm: 1},
		"sendw r2":          {Op: OpSendW, Ra: 2},
		"sendwi 7":          {Op: OpSendWI, Imm: 7},
		"sende":             {Op: OpSendE},
		"suspend":           {Op: OpSuspend},
		"ld r0, [rz+4096]":  {Op: OpLD, Rd: 0, Ra: RZ, Imm: 4096},
		"tagset r1, r2, 4":  {Op: OpTagSet, Rd: 1, Ra: 2, Imm: 4},
		"lea r2, r6, 20":    {Op: OpLEA, Rd: 2, Ra: 6, Imm: 20},
		"mov r1, r2":        {Op: OpMov, Rd: 1, Ra: 2},
		"fadd r0, r1, r2":   {Op: OpFAdd, Rd: 0, Ra: 1, Rb: 2},
		"fblt r0, r1, 0x8":  {Op: OpFBLT, Ra: 0, Rb: 1, Target: 8},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
