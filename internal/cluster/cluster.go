// Package cluster executes several simulated machines against a mesh
// network, modelling the J-Machine as a multicomputer. One tick
// corresponds to one instruction slot per node; messages sent to remote
// nodes travel through the netsim mesh and are buffered into the
// destination's hardware queue on arrival, exactly like local sends.
//
// The paper's measurements are uniprocessor; the cluster is the
// substrate for its "our systems can run on multiple processors"
// remark, and is exercised by hand-written multi-node programs (see
// examples/multinode) rather than by the TAM backends, whose runtime
// state (heap, frames, ready queue) is per-node.
package cluster

import (
	"fmt"

	"jmtam/internal/machine"
	"jmtam/internal/netsim"
	"jmtam/internal/obs"
	"jmtam/internal/word"
)

// Cluster drives N machines and one network in lockstep.
type Cluster struct {
	Net      *netsim.Network
	Machines []*machine.Machine

	tick uint64
}

// New wires the machines' routers to a fresh mesh. Each machine must
// have been constructed with its own memory (code stores may be
// shared); machine i becomes node i.
func New(machines []*machine.Machine, cfg netsim.Config) (*Cluster, error) {
	net := netsim.New(cfg)
	if len(machines) > net.Nodes() {
		return nil, fmt.Errorf("cluster: %d machines exceed %d-node mesh", len(machines), net.Nodes())
	}
	c := &Cluster{Net: net, Machines: machines}
	for i, m := range machines {
		node := i
		m.SetRouter(node, func(dst, pri int, ws []word.Word) error {
			return c.Net.Send(node, dst, pri, ws, c.tick)
		})
	}
	return c, nil
}

// Tick returns the current cluster time.
func (c *Cluster) Tick() uint64 { return c.tick }

// SetSink attaches one observability sink to every machine and the
// network. Lockstep execution is single-threaded, so sharing a sink
// across nodes is safe; each machine's events carry its node id as the
// timeline pid.
func (c *Cluster) SetSink(s *obs.Sink) {
	for i, m := range c.Machines {
		m.SetSink(s)
		if s != nil && s.Events != nil {
			s.Events.SetProcessName(int32(i), fmt.Sprintf("node %d", i))
			s.Events.SetThreadName(int32(i), obs.TrackNet, "network")
		}
	}
	c.Net.Obs = s
}

// FinishMetrics flushes end-of-run metrics (per-machine aggregates and
// network totals) into the attached sink; call after Run.
func (c *Cluster) FinishMetrics() {
	var sink *obs.Sink
	for _, m := range c.Machines {
		m.FinishMetrics()
		if sink == nil {
			sink = m.Sink()
		}
	}
	if sink == nil {
		return
	}
	r := sink.Metrics
	r.Gauge("net.inflight.max").Set(int64(c.Net.MaxInFlight))
	r.Counter("net.delivered").Add(c.Net.Delivered)
}

// Run executes until global quiescence (every machine idle, no messages
// in flight) or until maxTicks elapses; zero means no limit.
func (c *Cluster) Run(maxTicks uint64) error {
	for {
		progress := false
		for _, m := range c.Machines {
			ok, err := m.StepOne()
			if err != nil {
				return err
			}
			progress = progress || ok
		}
		c.tick++
		if err := c.deliverDue(); err != nil {
			return err
		}
		if !progress {
			if c.Net.Pending() == 0 {
				return nil
			}
			// Everyone is idle waiting on the network: fast-forward to
			// the next delivery.
			if due, ok := c.Net.NextDue(); ok && due > c.tick {
				c.tick = due
			}
			if err := c.deliverDue(); err != nil {
				return err
			}
		}
		if maxTicks != 0 && c.tick >= maxTicks {
			return fmt.Errorf("cluster: tick limit %d exceeded", maxTicks)
		}
	}
}

func (c *Cluster) deliverDue() error {
	return c.Net.Deliver(c.tick, func(m *netsim.Message) error {
		return c.Machines[m.Dst].Inject(m.Pri, m.Words)
	})
}
