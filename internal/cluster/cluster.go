// Package cluster executes several simulated machines against a mesh
// network, modelling the J-Machine as a multicomputer. One tick
// corresponds to one instruction slot per node; messages sent to remote
// nodes travel through the netsim mesh and are buffered into the
// destination's hardware queue on arrival, exactly like local sends.
//
// The paper's measurements are uniprocessor. The cluster is the
// substrate for its "our systems can run on multiple processors"
// remark, exercised both by hand-written multi-node programs (see
// examples/multinode) and by the TAM backends themselves: core compiles
// mesh-aware runtime code (distributed frame placement, remote
// I-structure handlers) and drives an N-node cluster through
// core.ClusterSim, with per-node runtime state in each machine's
// private system data and the frame/heap segments shared but
// partitioned for allocation.
package cluster

import (
	"context"
	"fmt"

	"jmtam/internal/machine"
	"jmtam/internal/netsim"
	"jmtam/internal/obs"
	"jmtam/internal/word"
)

// Cluster drives N machines and one network in lockstep.
type Cluster struct {
	Net      *netsim.Network
	Machines []*machine.Machine

	// Classify, when non-nil, labels each inter-node message from its
	// priority and payload (e.g. "ifetch", "falloc", "user"). Every
	// send then bumps net.class.<label> (message count) and
	// net.latency.<label> (total modelled latency) in the sink attached
	// via SetSink, so network traffic can be attributed to remote
	// I-structure requests versus frame-spawn traffic. Set before
	// running.
	Classify func(pri int, ws []word.Word) string

	// Service, when non-nil, is consulted for every network delivery
	// before the message is buffered into the destination's hardware
	// queue. Returning true consumes the message — the node's memory
	// interface serviced it directly, without dispatching a handler
	// (Active Access style remote memory operations). Returning false
	// falls through to normal queue injection. The hook may send reply
	// messages via Net.Send at the given tick. Set before running.
	Service func(tick uint64, m *netsim.Message) (bool, error)

	tick uint64
}

// New wires the machines' routers to a fresh mesh. Each machine must
// have been constructed with its own memory (code stores may be
// shared); machine i becomes node i.
func New(machines []*machine.Machine, cfg netsim.Config) (*Cluster, error) {
	net := netsim.New(cfg)
	if len(machines) > net.Nodes() {
		return nil, fmt.Errorf("cluster: %d machines exceed %d-node mesh", len(machines), net.Nodes())
	}
	c := &Cluster{Net: net, Machines: machines}
	for i, m := range machines {
		node := i
		m.SetRouter(node, func(dst, pri int, ws []word.Word) error {
			if err := c.Net.Send(node, dst, pri, ws, c.tick); err != nil {
				return err
			}
			if c.Classify != nil && c.Net.Obs != nil {
				cls := c.Classify(pri, ws)
				r := c.Net.Obs.Metrics
				r.Counter("net.class." + cls).Add(1)
				r.Counter("net.latency." + cls).Add(c.Net.Latency(node, dst, len(ws)))
			}
			return nil
		})
	}
	return c, nil
}

// Tick returns the current cluster time.
func (c *Cluster) Tick() uint64 { return c.tick }

// SetSink attaches one observability sink to every machine and the
// network. Lockstep execution is single-threaded, so sharing a sink
// across nodes is safe; each machine's events carry its node id as the
// timeline pid.
func (c *Cluster) SetSink(s *obs.Sink) {
	for i, m := range c.Machines {
		m.SetSink(s)
		if s != nil && s.Events != nil {
			s.Events.SetProcessName(int32(i), fmt.Sprintf("node %d", i))
			s.Events.SetThreadName(int32(i), obs.TrackNet, "network")
		}
	}
	c.Net.Obs = s
}

// FinishMetrics flushes end-of-run metrics (per-machine aggregates and
// network totals) into the attached sink; call after Run.
func (c *Cluster) FinishMetrics() {
	var sink *obs.Sink
	for _, m := range c.Machines {
		m.FinishMetrics()
		if sink == nil {
			sink = m.Sink()
		}
	}
	if sink == nil {
		return
	}
	r := sink.Metrics
	r.Gauge("net.inflight.max").Set(int64(c.Net.MaxInFlight))
	r.Counter("net.delivered").Add(c.Net.Delivered)
}

// Run executes until global quiescence (every machine idle, no messages
// in flight) or until maxTicks elapses; zero means no limit.
func (c *Cluster) Run(maxTicks uint64) error {
	return c.RunContext(context.Background(), maxTicks)
}

// RunContext is Run with cooperative cancellation: the context is
// polled every few thousand ticks, so a cancelled (or hung) cluster
// run stops promptly with an error wrapping ctx.Err().
func (c *Cluster) RunContext(ctx context.Context, maxTicks uint64) error {
	const pollTicks = 1 << 13
	nextPoll := c.tick + pollTicks
	for {
		if c.tick >= nextPoll {
			nextPoll = c.tick + pollTicks
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("cluster: cancelled at tick %d: %w", c.tick, err)
			}
		}
		progress := false
		for _, m := range c.Machines {
			ok, err := m.StepOne()
			if err != nil {
				return err
			}
			progress = progress || ok
		}
		c.tick++
		before := c.Net.Delivered
		if err := c.deliverDue(); err != nil {
			return err
		}
		// Quiescence requires that this tick neither stepped a machine
		// nor delivered a message: a delivery can wake an idle machine,
		// so it counts as progress even when every StepOne came up dry.
		if !progress && c.Net.Delivered == before {
			if c.Net.Pending() == 0 {
				return nil
			}
			// Everyone is idle waiting on the network: fast-forward to
			// the next delivery.
			if due, ok := c.Net.NextDue(); ok && due > c.tick {
				c.tick = due
			}
			if err := c.deliverDue(); err != nil {
				return err
			}
		}
		if maxTicks != 0 && c.tick >= maxTicks {
			return fmt.Errorf("cluster: tick limit %d exceeded", maxTicks)
		}
	}
}

func (c *Cluster) deliverDue() error {
	return c.Net.Deliver(c.tick, func(m *netsim.Message) error {
		if c.Service != nil {
			done, err := c.Service(c.tick, m)
			if done || err != nil {
				return err
			}
		}
		return c.Machines[m.Dst].Inject(m.Pri, m.Words)
	})
}
