// Package cluster executes several simulated machines against a mesh
// network, modelling the J-Machine as a multicomputer. One tick
// corresponds to one instruction slot per node; messages sent to remote
// nodes travel through the netsim mesh and are buffered into the
// destination's hardware queue on arrival, exactly like local sends.
//
// The paper's measurements are uniprocessor; the cluster is the
// substrate for its "our systems can run on multiple processors"
// remark, and is exercised by hand-written multi-node programs (see
// examples/multinode) rather than by the TAM backends, whose runtime
// state (heap, frames, ready queue) is per-node.
package cluster

import (
	"fmt"

	"jmtam/internal/machine"
	"jmtam/internal/netsim"
	"jmtam/internal/word"
)

// Cluster drives N machines and one network in lockstep.
type Cluster struct {
	Net      *netsim.Network
	Machines []*machine.Machine

	tick uint64
}

// New wires the machines' routers to a fresh mesh. Each machine must
// have been constructed with its own memory (code stores may be
// shared); machine i becomes node i.
func New(machines []*machine.Machine, cfg netsim.Config) (*Cluster, error) {
	net := netsim.New(cfg)
	if len(machines) > net.Nodes() {
		return nil, fmt.Errorf("cluster: %d machines exceed %d-node mesh", len(machines), net.Nodes())
	}
	c := &Cluster{Net: net, Machines: machines}
	for i, m := range machines {
		node := i
		m.SetRouter(node, func(dst, pri int, ws []word.Word) error {
			return c.Net.Send(node, dst, pri, ws, c.tick)
		})
	}
	return c, nil
}

// Tick returns the current cluster time.
func (c *Cluster) Tick() uint64 { return c.tick }

// Run executes until global quiescence (every machine idle, no messages
// in flight) or until maxTicks elapses; zero means no limit.
func (c *Cluster) Run(maxTicks uint64) error {
	for {
		progress := false
		for _, m := range c.Machines {
			ok, err := m.StepOne()
			if err != nil {
				return err
			}
			progress = progress || ok
		}
		c.tick++
		if err := c.deliverDue(); err != nil {
			return err
		}
		if !progress {
			if c.Net.Pending() == 0 {
				return nil
			}
			// Everyone is idle waiting on the network: fast-forward to
			// the next delivery.
			if due, ok := c.Net.NextDue(); ok && due > c.tick {
				c.tick = due
			}
			if err := c.deliverDue(); err != nil {
				return err
			}
		}
		if maxTicks != 0 && c.tick >= maxTicks {
			return fmt.Errorf("cluster: tick limit %d exceeded", maxTicks)
		}
	}
}

func (c *Cluster) deliverDue() error {
	return c.Net.Deliver(c.tick, func(m *netsim.Message) error {
		return c.Machines[m.Dst].Inject(m.Pri, m.Words)
	})
}
