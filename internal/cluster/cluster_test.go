package cluster

import (
	"testing"

	"jmtam/internal/asm"
	"jmtam/internal/isa"
	"jmtam/internal/machine"
	"jmtam/internal/mem"
	"jmtam/internal/netsim"
	"jmtam/internal/obs"
	"jmtam/internal/word"
)

// Per-node globals used by the hand-written multi-node programs.
const (
	gNext   = mem.SysDataBase + 0x100 // node id to forward to
	gResult = mem.SysDataBase + 0x104
	gAccum  = mem.SysDataBase + 0x108
	gCount  = mem.SysDataBase + 0x10c
	gNPeers = mem.SysDataBase + 0x110
)

// buildRing assembles the token-ring program: a handler receives a
// counter, and either forwards counter+1 to the next node (read from a
// per-node global) or stores it when the limit is reached.
func buildRing(t *testing.T, limit int64) *machine.CodeStore {
	t.Helper()
	sys := asm.NewSys()
	sys.Halt()
	user := asm.NewUser()
	user.Label("ring")
	user.LD(0, isa.RMsg, 4) // counter
	user.MovI(1, limit)
	user.BLT(0, 1, "ring.fwd")
	user.STAbs(gResult, 0)
	user.Suspend()
	user.Label("ring.fwd")
	user.AddI(0, 0, 1)
	user.LDAbs(1, gNext)
	user.MsgI(machine.Low)
	user.MsgDest(1)
	user.SendWALabel("ring")
	user.SendW(0)
	user.SendE()
	user.Suspend()
	if err := sys.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := user.Finish(); err != nil {
		t.Fatal(err)
	}
	return machine.NewCodeStore(sys.Code(), user.Code())
}

func newNodes(t *testing.T, n int, code *machine.CodeStore) []*machine.Machine {
	t.Helper()
	ms := make([]*machine.Machine, n)
	for i := range ms {
		ms[i] = machine.NewMachine(mem.NewDefault(), code, machine.Config{MaxInstructions: 1_000_000})
	}
	return ms
}

func TestTokenRing(t *testing.T) {
	const n, laps = 4, 3
	const limit = int64(n * laps)
	code := buildRing(t, limit)
	ms := newNodes(t, n, code)
	for i, m := range ms {
		m.Mem.Store(gNext, word.Int(int64((i+1)%n)))
	}
	c, err := New(ms, netsim.DefaultConfig(n))
	if err != nil {
		t.Fatal(err)
	}
	// Kick node 0 with counter 0; the token makes laps full circles and
	// stops wherever the count hits the limit (node 0 again).
	ringAddr := word.Ptr(mem.UserCodeBase)
	if err := ms[0].Inject(machine.Low, []word.Word{ringAddr, word.Int(0)}); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := ms[0].Mem.LoadInt(gResult); got != limit {
		t.Errorf("result = %d, want %d", got, limit)
	}
	if c.Net.Sent != uint64(limit) {
		t.Errorf("network sent %d messages, want %d", c.Net.Sent, limit)
	}
	if c.Net.Delivered != c.Net.Sent {
		t.Errorf("delivered %d != sent %d", c.Net.Delivered, c.Net.Sent)
	}
	// Each hop pays at least the base+perHop latency; the elapsed time
	// must reflect the network, not just instruction counts.
	cfg := netsim.DefaultConfig(n)
	if c.Tick() < uint64(limit)*(cfg.Base+cfg.PerHop) {
		t.Errorf("elapsed %d ticks implausibly fast", c.Tick())
	}
}

// TestScatterGather has node 0 send one value to every peer; each peer
// doubles it and replies; node 0 accumulates and counts the replies.
func TestScatterGather(t *testing.T) {
	const n = 6
	sys := asm.NewSys()
	sys.Halt()
	user := asm.NewUser()
	// Peer handler: [h, value, replyNode] -> send 2*value back.
	user.Label("work")
	user.LD(0, isa.RMsg, 4)
	user.MulI(0, 0, 2)
	user.LD(1, isa.RMsg, 8)
	user.MsgI(machine.Low)
	user.MsgDest(1)
	user.SendWALabel("gather")
	user.SendW(0)
	user.SendE()
	user.Suspend()
	// Gather handler on node 0: accumulate, count.
	user.Label("gather")
	user.LD(0, isa.RMsg, 4)
	user.LDAbs(1, gAccum)
	user.Add(1, 1, 0)
	user.STAbs(gAccum, 1)
	user.LDAbs(0, gCount)
	user.AddI(0, 0, 1)
	user.STAbs(gCount, 0)
	user.LDAbs(1, gNPeers)
	user.BNE(0, 1, "gather.more")
	user.LDAbs(1, gAccum)
	user.STAbs(gResult, 1)
	user.Label("gather.more")
	user.Suspend()
	// Scatter loop on node 0: [h, nextPeer] sends value=peer to each
	// peer 1..n-1 by self-forwarding.
	user.Label("scatter")
	user.LD(0, isa.RMsg, 4) // peer index
	user.LDAbs(1, gNPeers)
	user.BGT(0, 1, "scatter.done")
	user.MsgI(machine.Low)
	user.MsgDest(0)
	user.SendWALabel("work")
	user.SendW(0)  // value = peer id
	user.SendWI(0) // reply to node 0
	user.SendE()
	user.AddI(0, 0, 1)
	user.MsgI(machine.Low)
	user.SendWALabel("scatter") // local self-message
	user.SendW(0)
	user.SendE()
	user.Label("scatter.done")
	user.Suspend()
	if err := sys.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := user.Finish(); err != nil {
		t.Fatal(err)
	}
	code := machine.NewCodeStore(sys.Code(), user.Code())
	ms := newNodes(t, n, code)
	ms[0].Mem.Store(gNPeers, word.Int(n-1))
	c, err := New(ms, netsim.DefaultConfig(n))
	if err != nil {
		t.Fatal(err)
	}
	if err := ms[0].Inject(machine.Low, []word.Word{word.Ptr(user.Addr("scatter")), word.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for p := 1; p < n; p++ {
		want += int64(2 * p)
	}
	if got := ms[0].Mem.LoadInt(gResult); got != want {
		t.Errorf("gathered sum = %d, want %d", got, want)
	}
}

func TestTooManyMachines(t *testing.T) {
	code := buildRing(t, 1)
	ms := newNodes(t, 3, code)
	if _, err := New(ms, netsim.Config{Width: 1, Height: 2, Base: 1}); err == nil {
		t.Error("oversized cluster accepted")
	}
}

func TestTickLimit(t *testing.T) {
	// Two nodes ping-pong forever; the tick limit must fire.
	code := buildRing(t, 1<<40)
	ms := newNodes(t, 2, code)
	for i, m := range ms {
		m.Mem.Store(gNext, word.Int(int64((i+1)%2)))
	}
	c, err := New(ms, netsim.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	ms[0].Inject(machine.Low, []word.Word{word.Ptr(mem.UserCodeBase), word.Int(0)})
	if err := c.Run(5000); err == nil {
		t.Error("tick limit did not fire")
	}
}

// TestClusterObservability runs the token ring with a shared sink and
// checks that the network and every node's machine report into it: one
// net.* sample per message, one in-flight span per message on the
// network tracks, and a result identical to the uninstrumented run.
func TestClusterObservability(t *testing.T) {
	const n, laps = 4, 3
	const limit = int64(n * laps)
	code := buildRing(t, limit)

	run := func(s *obs.Sink) *Cluster {
		ms := newNodes(t, n, code)
		for i, m := range ms {
			m.Mem.Store(gNext, word.Int(int64((i+1)%n)))
		}
		c, err := New(ms, netsim.DefaultConfig(n))
		if err != nil {
			t.Fatal(err)
		}
		if s != nil {
			c.SetSink(s)
		}
		if err := ms[0].Inject(machine.Low, []word.Word{word.Ptr(mem.UserCodeBase), word.Int(0)}); err != nil {
			t.Fatal(err)
		}
		if err := c.Run(0); err != nil {
			t.Fatal(err)
		}
		if s != nil {
			c.FinishMetrics()
		}
		return c
	}

	base := run(nil)
	s := obs.New(obs.WithEvents())
	obsRun := run(s)

	if got, want := obsRun.Machines[0].Mem.LoadInt(gResult), limit; got != want {
		t.Errorf("instrumented result = %d, want %d", got, want)
	}
	if base.Tick() != obsRun.Tick() || base.Net.Sent != obsRun.Net.Sent {
		t.Errorf("instrumented run diverged: ticks %d vs %d, sent %d vs %d",
			base.Tick(), obsRun.Tick(), base.Net.Sent, obsRun.Net.Sent)
	}

	r := s.Metrics
	if got := r.Counter("net.msgs").Value(); got != uint64(limit) {
		t.Errorf("net.msgs = %d, want %d", got, limit)
	}
	if got := r.Counter("net.delivered").Value(); got != uint64(limit) {
		t.Errorf("net.delivered = %d, want %d", got, limit)
	}
	if got := r.Histogram("net.latency").Count(); got != uint64(limit) {
		t.Errorf("net.latency has %d samples, want %d", got, limit)
	}
	// Every node retired instructions into the shared registry.
	var instrs uint64
	for _, m := range obsRun.Machines {
		instrs += m.Instructions()
	}
	if got := r.Counter("instrs.total").Value(); got != instrs {
		t.Errorf("instrs.total = %d, want %d", got, instrs)
	}

	spans := 0
	for _, e := range s.Events.Events() {
		if e.Ph == obs.PhComplete && e.Cat == "net" {
			spans++
		}
	}
	if spans != int(limit) {
		t.Errorf("network timeline has %d spans, want %d", spans, limit)
	}
}
