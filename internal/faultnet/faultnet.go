// Package faultnet is a deterministic fault-injection layer for the
// distributed sweep topology: an http.RoundTripper wrapper that injects
// connection drops, latency spikes, synthetic 5xx responses and
// mid-stream disconnects on a seeded schedule, a net.Listener
// wrapper that can crash a worker (sever every open connection and
// refuse new ones) at a chosen moment, a seeded disk corruptor that
// flips bits in stored blobs to drill the store's integrity scrub,
// and a SIGKILL helper for chaos runs against real daemon processes.
//
// Fault decisions are drawn from an internal/rng xorshift source, so a
// given seed produces the same fault sequence on every run: CI can
// exercise the coordinator's retry, re-queue and circuit-breaker paths
// reproducibly. Injection never alters payload bytes — a request either
// fails outright or completes untouched — so any sweep that completes
// under faults must still be byte-identical to a fault-free run.
package faultnet

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"jmtam/internal/rng"
)

// ErrInjected marks every error produced by the fault layer, so tests
// and retry classifiers can tell injected faults from real ones.
var ErrInjected = errors.New("faultnet: injected fault")

// Plan describes the per-request fault probabilities. Each request
// draws, in a fixed order, one decision per fault class; probabilities
// are independent. The zero Plan injects nothing.
type Plan struct {
	// Seed selects the deterministic fault schedule.
	Seed uint64
	// Drop is the probability the request fails before reaching the
	// worker (connection refused / reset).
	Drop float64
	// Err5xx is the probability the request is answered with a
	// synthesized 503 without reaching the worker.
	Err5xx float64
	// Disconnect is the probability the response stream is severed
	// partway through the body.
	Disconnect float64
	// SpikeProb is the probability a latency spike of Spike is inserted
	// before the request is forwarded.
	SpikeProb float64
	// Spike is the injected extra latency.
	Spike time.Duration
}

// Transport wraps a base http.RoundTripper with seeded fault
// injection.
type Transport struct {
	// Base performs real round trips (nil = http.DefaultTransport).
	Base http.RoundTripper
	// OnFault, when non-nil, observes each injected fault kind
	// ("drop", "5xx", "disconnect", "spike"). Called under the
	// transport's lock; keep it cheap.
	OnFault func(kind string, req *http.Request)

	mu     sync.Mutex
	plan   Plan
	src    *rng.Source
	faults uint64
	trips  uint64
}

// NewTransport returns a fault-injecting transport over base.
func NewTransport(base http.RoundTripper, plan Plan) *Transport {
	return &Transport{Base: base, plan: plan, src: rng.New(plan.Seed)}
}

// Counts reports the number of round trips attempted and faults
// injected so far.
func (t *Transport) Counts() (trips, faults uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.trips, t.faults
}

// decide draws this request's fault, if any. One draw per fault class
// in a fixed order keeps the schedule a pure function of the seed and
// the request sequence.
func (t *Transport) decide(req *http.Request) (kind string, spike time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.trips++
	p := t.plan
	if t.src.Float64() < p.Drop {
		kind = "drop"
	}
	if t.src.Float64() < p.Err5xx && kind == "" {
		kind = "5xx"
	}
	if t.src.Float64() < p.Disconnect && kind == "" {
		kind = "disconnect"
	}
	if t.src.Float64() < p.SpikeProb {
		spike = p.Spike
	}
	if kind != "" || spike > 0 {
		t.faults++
		if t.OnFault != nil {
			if kind != "" {
				t.OnFault(kind, req)
			} else {
				t.OnFault("spike", req)
			}
		}
	}
	return kind, spike
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	kind, spike := t.decide(req)
	if spike > 0 {
		select {
		case <-time.After(spike):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	switch kind {
	case "drop":
		return nil, fmt.Errorf("%w: dropped %s %s", ErrInjected, req.Method, req.URL)
	case "5xx":
		body := fmt.Sprintf(`{"error":"faultnet: injected 503 for %s"}`, req.URL.Path)
		return &http.Response{
			StatusCode: http.StatusServiceUnavailable,
			Status:     "503 Service Unavailable (injected)",
			Proto:      req.Proto, ProtoMajor: req.ProtoMajor, ProtoMinor: req.ProtoMinor,
			Header:        http.Header{"Content-Type": []string{"application/json"}},
			Body:          io.NopCloser(bytes.NewReader([]byte(body))),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	if err != nil || kind != "disconnect" {
		return resp, err
	}
	// Sever the stream after a bounded prefix of the body: enough for
	// the reader to have committed to this response, never the whole
	// document.
	resp.Body = &cutBody{rc: resp.Body, remaining: 512}
	return resp, nil
}

// cutBody forwards up to remaining bytes and then fails the stream.
type cutBody struct {
	rc        io.ReadCloser
	remaining int
}

func (c *cutBody) Read(p []byte) (int, error) {
	if c.remaining <= 0 {
		return 0, fmt.Errorf("%w: mid-stream disconnect", ErrInjected)
	}
	if len(p) > c.remaining {
		p = p[:c.remaining]
	}
	n, err := c.rc.Read(p)
	c.remaining -= n
	if err == io.EOF {
		// The response was shorter than the cut point; nothing to sever.
		return n, err
	}
	if c.remaining <= 0 && err == nil {
		err = fmt.Errorf("%w: mid-stream disconnect", ErrInjected)
	}
	return n, err
}

func (c *cutBody) Close() error { return c.rc.Close() }

// Corruptor is a seeded disk-corruption injector: each Strike picks
// one eligible file under its directory (sorted name order, so a seed
// addresses the same file on every run) and flips one seeded bit in
// it. It models silent media bitrot for store-integrity drills —
// exactly the failure the store's checksum verification and scrubber
// must catch.
type Corruptor struct {
	dir string
	ext string
	src *rng.Source
}

// NewCorruptor returns a corruptor over the files in dir whose names
// end in ext ("" = every regular file). Hidden files (temp writes) are
// never eligible.
func NewCorruptor(dir, ext string, seed uint64) *Corruptor {
	return &Corruptor{dir: dir, ext: ext, src: rng.New(seed)}
}

// Strike flips one bit in one eligible file and returns its path and
// the byte offset struck. It fails if no eligible file exists.
func (c *Corruptor) Strike() (path string, offset int64, err error) {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return "", 0, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || strings.HasPrefix(name, ".") {
			continue
		}
		if c.ext != "" && !strings.HasSuffix(name, c.ext) {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return "", 0, fmt.Errorf("faultnet: no %q files under %s to corrupt", c.ext, c.dir)
	}
	sort.Strings(names)
	name := names[int(c.src.Uint64()%uint64(len(names)))]
	path = filepath.Join(c.dir, name)
	offset, err = CorruptFile(path, c.src.Uint64())
	return path, offset, err
}

// CorruptFile flips one seeded bit in the file at path, in place, and
// returns the byte offset struck. An empty file cannot be corrupted.
func CorruptFile(path string, seed uint64) (int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	if st.Size() == 0 {
		return 0, fmt.Errorf("faultnet: %s is empty; nothing to corrupt", path)
	}
	src := rng.New(seed)
	off := int64(src.Uint64() % uint64(st.Size()))
	bit := byte(1) << (src.Uint64() % 8)
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return 0, err
	}
	b[0] ^= bit
	if _, err := f.WriteAt(b[:], off); err != nil {
		return 0, err
	}
	return off, f.Sync()
}

// KillProcess delivers an uncatchable SIGKILL to pid — the real
// "kill -9 mid-sweep" for chaos drills against daemon binaries; tests
// that stay in-process use Listener.Crash instead.
func KillProcess(pid int) error {
	p, err := os.FindProcess(pid)
	if err != nil {
		return err
	}
	return p.Kill()
}

// Listener wraps a net.Listener so a test or chaos harness can crash
// the worker behind it: Crash severs every open connection and makes
// further accepts fail until Revive.
type Listener struct {
	net.Listener

	mu          sync.Mutex
	conns       map[net.Conn]struct{}
	crashed     bool
	accepts     uint64
	crashAfter  uint64 // crash once accepts reaches this count (0 = never)
	onCrash     func()
	crashOnceOn bool
}

// Wrap returns a crashable listener over ln.
func Wrap(ln net.Listener) *Listener {
	return &Listener{Listener: ln, conns: make(map[net.Conn]struct{})}
}

// CrashAfter arms the listener to crash as soon as n connections have
// been accepted (counting from the beginning). onCrash, when non-nil,
// is invoked once at crash time.
func (l *Listener) CrashAfter(n uint64, onCrash func()) {
	l.mu.Lock()
	l.crashAfter = n
	l.onCrash = onCrash
	l.crashOnceOn = true
	l.mu.Unlock()
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.accepts++
	if l.crashOnceOn && l.crashAfter > 0 && l.accepts >= l.crashAfter {
		l.crashOnceOn = false
		l.mu.Unlock()
		c.Close()
		l.Crash()
		return nil, fmt.Errorf("%w: worker crashed", ErrInjected)
	}
	if l.crashed {
		l.mu.Unlock()
		c.Close()
		return nil, fmt.Errorf("%w: worker crashed", ErrInjected)
	}
	l.conns[c] = struct{}{}
	l.mu.Unlock()
	return &trackedConn{Conn: c, l: l}, nil
}

// Crash severs every open connection and closes the underlying
// listener: the worker disappears mid-flight as an abruptly killed
// process would, and new dials are refused. A restarted worker is a
// fresh listener.
func (l *Listener) Crash() {
	l.mu.Lock()
	if l.crashed {
		l.mu.Unlock()
		return
	}
	l.crashed = true
	conns := make([]net.Conn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.conns = make(map[net.Conn]struct{})
	onCrash := l.onCrash
	l.mu.Unlock()
	l.Listener.Close()
	for _, c := range conns {
		c.Close()
	}
	if onCrash != nil {
		onCrash()
	}
}

// Crashed reports whether the listener is currently down.
func (l *Listener) Crashed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.crashed
}

// Accepts returns the number of connections accepted so far.
func (l *Listener) Accepts() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.accepts
}

func (l *Listener) forget(c net.Conn) {
	l.mu.Lock()
	delete(l.conns, c)
	l.mu.Unlock()
}

// trackedConn removes itself from the listener's live set on close.
type trackedConn struct {
	net.Conn
	l    *Listener
	once sync.Once
}

func (c *trackedConn) Close() error {
	c.once.Do(func() { c.l.forget(c.Conn) })
	return c.Conn.Close()
}
