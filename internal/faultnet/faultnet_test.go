package faultnet

import (
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// roundTrip issues one GET through the transport against ts.
func roundTrip(t *testing.T, tr *Transport, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return tr.RoundTrip(req)
}

func TestTransportZeroPlanPassesThrough(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "hello")
	}))
	defer ts.Close()
	tr := NewTransport(nil, Plan{})
	for i := 0; i < 10; i++ {
		resp, err := roundTrip(t, tr, ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || string(b) != "hello" {
			t.Fatalf("body = %q, err = %v", b, err)
		}
	}
	trips, faults := tr.Counts()
	if trips != 10 || faults != 0 {
		t.Errorf("trips/faults = %d/%d, want 10/0", trips, faults)
	}
}

// TestTransportDeterministicSchedule draws the same seed twice and
// checks the injected fault sequence is identical.
func TestTransportDeterministicSchedule(t *testing.T) {
	plan := Plan{Seed: 42, Drop: 0.3, Err5xx: 0.3, Disconnect: 0.2}
	sequence := func() []string {
		var kinds []string
		tr := NewTransport(nil, plan)
		tr.OnFault = func(kind string, _ *http.Request) { kinds = append(kinds, kind) }
		for i := 0; i < 50; i++ {
			req, _ := http.NewRequest(http.MethodGet, "http://unreachable.invalid/", nil)
			kind, _ := tr.decide(req)
			_ = kind
		}
		return kinds
	}
	a, b := sequence(), sequence()
	if len(a) == 0 {
		t.Fatal("no faults injected at 30% rates over 50 requests")
	}
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Errorf("fault schedules differ for the same seed:\n%v\n%v", a, b)
	}
}

func TestTransportDrop(t *testing.T) {
	tr := NewTransport(nil, Plan{Drop: 1})
	_, err := roundTrip(t, tr, "http://127.0.0.1:1/") // never dialed
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}

func TestTransport5xx(t *testing.T) {
	called := false
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		called = true
	}))
	defer ts.Close()
	tr := NewTransport(nil, Plan{Err5xx: 1})
	resp, err := roundTrip(t, tr, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if called {
		t.Error("synthesized 5xx still reached the server")
	}
}

func TestTransportDisconnectMidStream(t *testing.T) {
	big := strings.Repeat("x", 1<<16)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, big)
	}))
	defer ts.Close()
	tr := NewTransport(nil, Plan{Disconnect: 1})
	resp, err := roundTrip(t, tr, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("read err = %v, want ErrInjected", err)
	}
	if len(b) == 0 || len(b) >= len(big) {
		t.Errorf("read %d bytes before disconnect, want a strict prefix", len(b))
	}
}

func TestTransportSpike(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()
	tr := NewTransport(nil, Plan{SpikeProb: 1, Spike: 30 * time.Millisecond})
	start := time.Now()
	resp, err := roundTrip(t, tr, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("round trip took %v, want >= 30ms spike", d)
	}
}

func TestListenerCrash(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fln := Wrap(ln)
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})}
	done := make(chan struct{})
	go func() { srv.Serve(fln); close(done) }()
	url := "http://" + ln.Addr().String() + "/"

	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	io.ReadAll(resp.Body)
	resp.Body.Close()
	if fln.Accepts() == 0 {
		t.Error("listener did not count the accept")
	}

	fln.Crash()
	if !fln.Crashed() {
		t.Error("Crashed() = false after Crash")
	}
	client := &http.Client{Timeout: time.Second, Transport: &http.Transport{}}
	if _, err := client.Get(url); err == nil {
		t.Error("GET succeeded against a crashed worker")
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Error("Serve did not return after Crash")
	}
	fln.Crash() // idempotent
}

func TestListenerCrashAfter(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fln := Wrap(ln)
	crashed := make(chan struct{})
	fln.CrashAfter(2, func() { close(crashed) })
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})}
	go srv.Serve(fln)
	url := "http://" + ln.Addr().String() + "/"

	// Fresh connection per request so each GET costs one accept.
	get := func() error {
		client := &http.Client{Timeout: time.Second, Transport: &http.Transport{DisableKeepAlives: true}}
		resp, err := client.Get(url)
		if err != nil {
			return err
		}
		io.ReadAll(resp.Body)
		return resp.Body.Close()
	}
	if err := get(); err != nil {
		t.Fatal(err)
	}
	if err := get(); err == nil && !fln.Crashed() {
		t.Error("worker survived past its armed crash point")
	}
	select {
	case <-crashed:
	case <-time.After(2 * time.Second):
		t.Fatal("onCrash hook never fired")
	}
}
