package faultnet

import (
	"bytes"
	"math/bits"
	"os"
	"path/filepath"
	"testing"
)

// TestCorruptFileFlipsExactlyOneBit: the injector models single-bit
// rot, not arbitrary damage — exactly one bit of the file changes, and
// the same seed strikes the same offset every time.
func TestCorruptFileFlipsExactlyOneBit(t *testing.T) {
	orig := make([]byte, 257)
	for i := range orig {
		orig[i] = byte(i * 7)
	}
	strike := func(seed uint64) ([]byte, int64) {
		t.Helper()
		path := filepath.Join(t.TempDir(), "blob")
		if err := os.WriteFile(path, orig, 0o644); err != nil {
			t.Fatal(err)
		}
		off, err := CorruptFile(path, seed)
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return got, off
	}

	got, off := strike(9)
	if len(got) != len(orig) {
		t.Fatalf("length changed: %d -> %d", len(orig), len(got))
	}
	flipped := 0
	for i := range got {
		if d := got[i] ^ orig[i]; d != 0 {
			flipped += bits.OnesCount8(d)
			if int64(i) != off {
				t.Fatalf("flip at offset %d, reported %d", i, off)
			}
		}
	}
	if flipped != 1 {
		t.Fatalf("%d bits flipped, want exactly 1", flipped)
	}

	got2, off2 := strike(9)
	if off2 != off || !bytes.Equal(got, got2) {
		t.Fatalf("same seed produced a different strike: offset %d vs %d", off, off2)
	}
}

// TestCorruptFileEmptyAndMissing: degenerate targets fail loudly
// instead of silently "corrupting" nothing.
func TestCorruptFileEmptyAndMissing(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := CorruptFile(empty, 1); err == nil {
		t.Fatal("corrupting an empty file succeeded")
	}
	if _, err := CorruptFile(filepath.Join(dir, "missing"), 1); err == nil {
		t.Fatal("corrupting a missing file succeeded")
	}
	if _, _, err := NewCorruptor(dir, ".jtr", 1).Strike(); err == nil {
		t.Fatal("Strike with no eligible files succeeded")
	}
}
