// Package report renders experiment results as text tables and ASCII
// line charts, reproducing the layout of the paper's Table 2 and
// Figures 3-6.
package report

import (
	"fmt"
	"math"
	"strings"

	"jmtam/internal/core"
	"jmtam/internal/experiments"
)

// Table2 renders the granularity/ratio table.
func Table2(rows []experiments.Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s  %8s %8s  %7s %7s  %9s %9s  %6s %6s %6s\n",
		"Program", "TPQ(MD)", "TPQ(AM)", "IPT(MD)", "IPT(AM)",
		"IPQ(MD)", "IPQ(AM)", "r12", "r24", "r48")
	b.WriteString(strings.Repeat("-", 96) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s  %8.1f %8.1f  %7.1f %7.1f  %9.1f %9.1f  %6.2f %6.2f %6.2f\n",
			r.Program, r.TPQMD, r.TPQAM, r.IPTMD, r.IPTAM,
			r.IPQMD, r.IPQAM, r.Ratio12, r.Ratio24, r.Ratio48)
	}
	return b.String()
}

// AccessRatios renders the §3.1 MD/AM reference-count comparison.
func AccessRatios(rows []experiments.AccessRatioRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s  %7s %7s %8s\n", "Program", "reads", "writes", "fetches")
	b.WriteString(strings.Repeat("-", 38) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s  %6.0f%% %6.0f%% %7.0f%%\n",
			r.Program, 100*r.Reads, 100*r.Writes, 100*r.Fetches)
	}
	return b.String()
}

// Enabled renders the Figure 2 enabled/unenabled AM ablation.
func Enabled(rows []experiments.EnabledRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s  %14s %12s  %14s %12s\n",
		"Program", "TPQ unenabled", "TPQ enabled", "instr unen.", "instr en.")
	b.WriteString(strings.Repeat("-", 72) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s  %14.1f %12.1f  %14d %12d\n",
			r.Program, r.TPQUnenabled, r.TPQEnabled, r.InstrUnenabled, r.InstrEnabled)
	}
	return b.String()
}

// Blocks renders the block-size ablation.
func Blocks(rows []experiments.BlockRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s  %10s  %14s %14s\n", "Block (B)", "MD/AM", "MD cycles", "AM cycles")
	b.WriteString(strings.Repeat("-", 56) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10d  %10.3f  %14d %14d\n", r.BlockBytes, r.Ratio, r.MDCycles, r.AMCycles)
	}
	return b.String()
}

// Assocs renders the associativity ablation: the MD/AM gap that
// remains at high associativity is not conflict misses.
func Assocs(rows []experiments.AssocRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s  %10s  %14s %14s  %12s %12s\n",
		"Assoc", "MD/AM", "MD cycles", "AM cycles", "MD misses", "AM misses")
	b.WriteString(strings.Repeat("-", 82) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10d  %10.3f  %14d %14d  %12d %12d\n",
			r.Assoc, r.Ratio, r.MDCycles, r.AMCycles, r.MDMisses, r.AMMisses)
	}
	return b.String()
}

// ratioNames returns the backend names that get an MD-relative ratio
// column: every swept backend except MD itself, provided MD is in the
// sweep (without an MD baseline there are no ratios to show).
func ratioNames(names []string) []string {
	md := core.ImplMD.Name()
	haveMD := false
	for _, n := range names {
		if n == md {
			haveMD = true
		}
	}
	if !haveMD {
		return nil
	}
	var out []string
	for _, n := range names {
		if n != md {
			out = append(out, n)
		}
	}
	return out
}

// NodeRatios renders the multi-node backend comparison: one row per
// mesh size, with each backend's aggregate cycles (total work across
// nodes) and elapsed lockstep ticks (mesh wall-clock), plus
// MD-relative ratios (MD's total over the backend's; >1 means the
// backend beats MD). Columns follow the sweep's registry order.
func NodeRatios(rows []experiments.NodeRatioRow) string {
	if len(rows) == 0 {
		return ""
	}
	names := rows[0].Impls
	ratios := ratioNames(names)
	var head strings.Builder
	fmt.Fprintf(&head, "%-6s", "Nodes")
	for _, n := range names {
		fmt.Fprintf(&head, "  %14s", n+" cycles")
	}
	for _, n := range ratios {
		fmt.Fprintf(&head, "  %10s", "MD/"+n)
	}
	for _, n := range names {
		fmt.Fprintf(&head, "  %12s", n+" ticks")
	}
	for _, n := range ratios {
		fmt.Fprintf(&head, "  %10s", "MD/"+n+" t")
	}
	var b strings.Builder
	b.WriteString(head.String() + "\n")
	b.WriteString(strings.Repeat("-", len(head.String())) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d", r.Nodes)
		for _, n := range names {
			fmt.Fprintf(&b, "  %14d", r.Cycles[n])
		}
		for _, n := range ratios {
			fmt.Fprintf(&b, "  %10.3f", r.RatioCycles[n])
		}
		for _, n := range names {
			fmt.Fprintf(&b, "  %12d", r.Ticks[n])
		}
		for _, n := range ratios {
			fmt.Fprintf(&b, "  %10.3f", r.RatioTicks[n])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// HopLatency renders the per-hop-delay sensitivity comparison, one
// ticks column per swept backend plus MD-relative ratios.
func HopLatency(rows []experiments.HopRatioRow) string {
	if len(rows) == 0 {
		return ""
	}
	names := rows[0].Impls
	ratios := ratioNames(names)
	var head strings.Builder
	fmt.Fprintf(&head, "%-8s", "PerHop")
	for _, n := range names {
		fmt.Fprintf(&head, "  %12s", n+" ticks")
	}
	for _, n := range ratios {
		fmt.Fprintf(&head, "  %10s", "MD/"+n)
	}
	var b strings.Builder
	b.WriteString(head.String() + "\n")
	b.WriteString(strings.Repeat("-", len(head.String())) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d", r.PerHop)
		for _, n := range names {
			fmt.Fprintf(&b, "  %12d", r.Ticks[n])
		}
		for _, n := range ratios {
			fmt.Fprintf(&b, "  %10.3f", r.RatioTicks[n])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Victims renders the victim-cache ablation: combined I+D misses under
// an 8K direct-mapped pair backed by victim buffers of each size, the
// 8K 4-way set-associative baseline, and the fraction of the
// direct-mapped-to-4-way gap that the largest buffer recovers.
func Victims(rows []experiments.VictimRow) string {
	if len(rows) == 0 {
		return ""
	}
	entries := rows[0].Entries
	var head strings.Builder
	fmt.Fprintf(&head, "%-10s %-10s", "Program", "impl")
	for _, n := range entries {
		fmt.Fprintf(&head, "  %10s", fmt.Sprintf("V=%d", n))
	}
	fmt.Fprintf(&head, "  %10s  %10s", "4-way", "recovered")
	var b strings.Builder
	b.WriteString(head.String() + "\n")
	b.WriteString(strings.Repeat("-", len(head.String())) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-10s", r.Program, r.Impl)
		for _, m := range r.Misses {
			fmt.Fprintf(&b, "  %10d", m)
		}
		last := r.Misses[len(r.Misses)-1]
		recovered := 0.0
		if gap := float64(r.Misses[0]) - float64(r.SetAssocMisses); gap > 0 {
			recovered = (float64(r.Misses[0]) - float64(last)) / gap
		}
		fmt.Fprintf(&b, "  %10d  %9.0f%%\n", r.SetAssocMisses, 100*recovered)
	}
	return b.String()
}

// MDOpt renders the §2.3 MD-optimization ablation.
func MDOpt(rows []experiments.MDOptRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s  %12s %12s %8s  %10s %12s\n",
		"Program", "instr (opt)", "instr (no)", "saved", "ratio(opt)", "ratio(noopt)")
	b.WriteString(strings.Repeat("-", 72) + "\n")
	for _, r := range rows {
		saved := 0.0
		if r.InstrUnopt > 0 {
			saved = 100 * (1 - float64(r.InstrOpt)/float64(r.InstrUnopt))
		}
		fmt.Fprintf(&b, "%-10s  %12d %12d %7.1f%%  %10.3f %12.3f\n",
			r.Program, r.InstrOpt, r.InstrUnopt, saved, r.RatioOpt, r.RatioUnopt)
	}
	return b.String()
}

// OAM renders the hybrid-implementation comparison.
func OAM(rows []experiments.OAMRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s  %10s %10s %10s  %7s %7s %7s  %8s %8s\n",
		"Program", "instr MD", "instr OAM", "instr AM",
		"TPQ MD", "TPQ OAM", "TPQ AM", "OAM/AM", "MD/AM")
	b.WriteString(strings.Repeat("-", 100) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s  %10d %10d %10d  %7.1f %7.1f %7.1f  %8.3f %8.3f\n",
			r.Program, r.InstrMD, r.InstrOAM, r.InstrAM,
			r.TPQMD, r.TPQOAM, r.TPQAM, r.OAMOverAM, r.MDOverAM)
	}
	return b.String()
}

// Classes renders the system/user reference mix (§3.1's memory
// division).
func Classes(rows []experiments.ClassRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-4s  %10s %9s  %10s %9s  %10s %9s\n",
		"Program", "impl", "fetches", "sys-code", "reads", "sys-data", "writes", "sys-data")
	b.WriteString(strings.Repeat("-", 84) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-4s  %10d %8.0f%%  %10d %8.0f%%  %10d %8.0f%%\n",
			r.Program, r.Impl.Short(), r.Fetches, 100*r.SysFetchFrac,
			r.Reads, 100*r.SysReadFrac, r.Writes, 100*r.SysWriteFrac)
	}
	return b.String()
}

// Mix renders the dynamic instruction mix.
func Mix(rows []experiments.MixRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-4s  %10s  %7s %6s %6s %8s %8s %8s\n",
		"Program", "impl", "instr", "memory", "alu", "float", "control", "message", "machine")
	b.WriteString(strings.Repeat("-", 82) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-4s  %10d  %6.0f%% %5.0f%% %5.0f%% %7.0f%% %7.0f%% %7.0f%%\n",
			r.Program, r.Impl.Short(), r.Total, 100*r.Memory, 100*r.ALU,
			100*r.Float, 100*r.Control, 100*r.Message, 100*r.Machine)
	}
	return b.String()
}

// Chart renders series as an ASCII line chart with a logarithmic size
// axis (one column group per cache size) and the MD/AM ratio on the
// vertical axis, mirroring the figures' layout. A horizontal rule marks
// ratio = 1.0 (parity between the implementations).
func Chart(title string, series []experiments.Series) string {
	return ChartUnits(title, series, "K")
}

// ChartUnits is Chart with a custom unit suffix for the X axis (the
// penalty sweep uses plain cycle counts).
func ChartUnits(title string, series []experiments.Series, unit string) string {
	const height = 16
	if len(series) == 0 {
		return title + ": (no data)\n"
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, r := range s.Ratios {
			if r <= 0 {
				continue
			}
			lo = math.Min(lo, r)
			hi = math.Max(hi, r)
		}
	}
	if math.IsInf(lo, 1) {
		return title + ": (no data)\n"
	}
	lo = math.Min(lo, 1.0)
	hi = math.Max(hi, 1.0)
	pad := (hi - lo) * 0.05
	lo, hi = lo-pad, hi+pad
	if hi == lo {
		hi = lo + 1
	}

	sizes := series[0].SizesKB
	colW := 7
	width := colW * len(sizes)
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	rowOf := func(r float64) int {
		y := int(math.Round((hi - r) / (hi - lo) * float64(height-1)))
		if y < 0 {
			y = 0
		}
		if y >= height {
			y = height - 1
		}
		return y
	}
	// Parity line.
	oneRow := rowOf(1.0)
	for x := 0; x < width; x++ {
		grid[oneRow][x] = '.'
	}
	marks := []byte("*o+x#@%&~^")
	for si, s := range series {
		m := marks[si%len(marks)]
		for i, r := range s.Ratios {
			if r <= 0 {
				continue
			}
			x := i*colW + colW/2
			grid[rowOf(r)][x] = m
		}
	}

	var b strings.Builder
	b.WriteString(title + "\n")
	for i, row := range grid {
		label := "      "
		switch i {
		case 0:
			label = fmt.Sprintf("%5.2f ", hi)
		case oneRow:
			label = " 1.00 "
		case height - 1:
			label = fmt.Sprintf("%5.2f ", lo)
		}
		fmt.Fprintf(&b, "%s|%s\n", label, string(row))
	}
	b.WriteString("      +" + strings.Repeat("-", width) + "\n       ")
	for _, kb := range sizes {
		fmt.Fprintf(&b, "%-*s", colW, fmt.Sprintf("%d%s", kb, unit))
	}
	b.WriteString("\n      legend: ")
	for si, s := range series {
		fmt.Fprintf(&b, "%c=%s ", marks[si%len(marks)], s.Label)
	}
	b.WriteString("\n")
	return b.String()
}
