package report

import (
	"fmt"
	"strings"

	"jmtam/internal/obs"
)

// Histogram renders one log2-bucketed histogram as an ASCII bar chart:
// one row per occupied bucket with its value range, count and a bar
// scaled to the largest bucket.
func Histogram(title string, h *obs.Histogram) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: n=%d min=%d max=%d mean=%.1f\n",
		title, h.Count(), h.MinV, h.MaxV, h.Mean())
	if h.Count() == 0 {
		return b.String()
	}
	var peak uint64
	for _, c := range h.Buckets {
		if c > peak {
			peak = c
		}
	}
	const barWidth = 40
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		lo, hi := obs.BucketBounds(i)
		bar := int(c * barWidth / peak)
		if bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "  %12s  %10d  %s\n", bucketLabel(lo, hi), c, strings.Repeat("#", bar))
	}
	return b.String()
}

func bucketLabel(lo, hi uint64) string {
	if lo == hi {
		return fmt.Sprintf("%d", lo)
	}
	return fmt.Sprintf("%d-%d", lo, hi)
}

// Metrics renders a whole registry: counters, gauges, then histograms,
// each section name-sorted (the registry's iteration order).
func Metrics(r *obs.Registry) string {
	var b strings.Builder
	if names := r.CounterNames(); len(names) > 0 {
		b.WriteString("counters:\n")
		for _, n := range names {
			fmt.Fprintf(&b, "  %-28s %12d\n", n, r.Counter(n).Value())
		}
	}
	if names := r.GaugeNames(); len(names) > 0 {
		b.WriteString("gauges:\n")
		for _, n := range names {
			g := r.Gauge(n)
			fmt.Fprintf(&b, "  %-28s %12d  (min %d, max %d)\n", n, g.Value(), g.Min(), g.Max())
		}
	}
	for _, n := range r.HistogramNames() {
		b.WriteString(Histogram(n, r.Histogram(n)))
	}
	return b.String()
}
