package report

import (
	"strings"
	"testing"

	"jmtam/internal/core"
	"jmtam/internal/experiments"
)

func TestTable2Rendering(t *testing.T) {
	rows := []experiments.Table2Row{{
		Program: "mmt", TPQMD: 4.2, TPQAM: 4.2, IPTMD: 84, IPTAM: 90,
		IPQMD: 349, IPQAM: 373, Ratio12: 1.03, Ratio24: 1.20, Ratio48: 1.54,
	}}
	s := Table2(rows)
	for _, want := range []string{"mmt", "4.2", "84.0", "349.0", "1.03", "1.54", "TPQ(MD)"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table2 output missing %q:\n%s", want, s)
		}
	}
}

func TestAccessRatiosRendering(t *testing.T) {
	s := AccessRatios([]experiments.AccessRatioRow{
		{Program: "mean", Reads: 0.86, Writes: 0.87, Fetches: 0.77},
	})
	for _, want := range []string{"mean", "86%", "87%", "77%"} {
		if !strings.Contains(s, want) {
			t.Errorf("AccessRatios missing %q:\n%s", want, s)
		}
	}
}

func TestEnabledRendering(t *testing.T) {
	s := Enabled([]experiments.EnabledRow{
		{Program: "dtw", TPQUnenabled: 1.9, TPQEnabled: 19.8, InstrUnenabled: 100, InstrEnabled: 90},
	})
	if !strings.Contains(s, "dtw") || !strings.Contains(s, "19.8") {
		t.Errorf("Enabled rendering wrong:\n%s", s)
	}
}

func TestBlocksRendering(t *testing.T) {
	s := Blocks([]experiments.BlockRow{{BlockBytes: 64, Ratio: 0.83, MDCycles: 10, AMCycles: 12}})
	if !strings.Contains(s, "64") || !strings.Contains(s, "0.830") {
		t.Errorf("Blocks rendering wrong:\n%s", s)
	}
}

func TestMDOptRendering(t *testing.T) {
	s := MDOpt([]experiments.MDOptRow{
		{Program: "qs", InstrOpt: 95, InstrUnopt: 100, RatioOpt: 0.66, RatioUnopt: 0.69},
	})
	if !strings.Contains(s, "5.0%") {
		t.Errorf("MDOpt savings not rendered:\n%s", s)
	}
}

func TestOAMRendering(t *testing.T) {
	s := OAM([]experiments.OAMRow{{
		Program: "ss", InstrMD: 1, InstrOAM: 2, InstrAM: 3,
		TPQMD: 1, TPQOAM: 1, TPQAM: 1, OAMOverAM: 0.9, MDOverAM: 0.8,
	}})
	if !strings.Contains(s, "0.900") || !strings.Contains(s, "OAM/AM") {
		t.Errorf("OAM rendering wrong:\n%s", s)
	}
}

func TestClassesRendering(t *testing.T) {
	s := Classes([]experiments.ClassRow{{
		Program: "ss", Impl: core.ImplMD,
		Fetches: 100, Reads: 50, Writes: 20,
		SysFetchFrac: 0.25, SysReadFrac: 0.5, SysWriteFrac: 1,
	}})
	for _, want := range []string{"ss", "MD", "25%", "50%", "100%"} {
		if !strings.Contains(s, want) {
			t.Errorf("Classes missing %q:\n%s", want, s)
		}
	}
}

func TestChartRendering(t *testing.T) {
	series := []experiments.Series{
		{Label: "a", SizesKB: []int{1, 2, 4}, Ratios: []float64{0.8, 0.9, 1.1}},
		{Label: "b", SizesKB: []int{1, 2, 4}, Ratios: []float64{0.7, 0.7, 0.7}},
	}
	s := Chart("title", series)
	for _, want := range []string{"title", "1.00 |", "1K", "4K", "legend: *=a o=b", "...."} {
		if !strings.Contains(s, want) {
			t.Errorf("Chart missing %q:\n%s", want, s)
		}
	}
	// Marks appear for both series.
	if !strings.Contains(s, "*") || !strings.Contains(s, "o") {
		t.Error("Chart missing series marks")
	}
}

func TestChartEmpty(t *testing.T) {
	if s := Chart("t", nil); !strings.Contains(s, "no data") {
		t.Errorf("empty chart: %q", s)
	}
	if s := Chart("t", []experiments.Series{{Label: "x", SizesKB: []int{1}, Ratios: []float64{0}}}); !strings.Contains(s, "no data") {
		t.Errorf("all-zero chart: %q", s)
	}
}

func TestChartScalesAroundParity(t *testing.T) {
	// A chart with all ratios above 1 must still draw the parity line.
	s := Chart("t", []experiments.Series{
		{Label: "x", SizesKB: []int{1, 2}, Ratios: []float64{1.2, 1.5}},
	})
	if !strings.Contains(s, " 1.00 |") {
		t.Errorf("parity line missing:\n%s", s)
	}
}
