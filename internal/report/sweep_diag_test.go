package report_test

import (
	"fmt"
	"testing"

	"jmtam/internal/experiments"
	"jmtam/internal/report"
)

func TestSweepDiag(t *testing.T) {
	sw := experiments.DefaultSweep(experiments.QuickWorkloads())
	ds, err := sw.Execute()
	if err != nil {
		t.Fatal(err)
	}
	fmt.Print(report.Table2(experiments.Table2(ds)))
	fmt.Print(report.AccessRatios(experiments.AccessRatios(ds)))
	for _, p := range []int{12, 24, 48} {
		fmt.Print(report.Chart(fmt.Sprintf("Fig3 geomean, miss=%d", p), experiments.Figure3(ds)[p]))
	}
	fmt.Print(report.Chart("Fig5 direct-mapped per-program, miss=24", experiments.Figure5(ds)[24]))
	fmt.Print(report.Chart("Fig6 DM geomean (no ss)", experiments.Figure6(ds)))
}
