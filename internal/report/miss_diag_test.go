package report_test

import (
	"fmt"
	"testing"

	"jmtam/internal/cache"
	"jmtam/internal/core"
	"jmtam/internal/experiments"
)

func TestMissDiag(t *testing.T) {
	geoms := []cache.Config{
		{SizeBytes: 2048, BlockBytes: 64, Assoc: 4},
		{SizeBytes: 8192, BlockBytes: 64, Assoc: 4},
		{SizeBytes: 32768, BlockBytes: 64, Assoc: 4},
		{SizeBytes: 8192, BlockBytes: 64, Assoc: 1},
	}
	for _, w := range []experiments.Workload{{Name: "mmt", Arg: 20}, {Name: "qs", Arg: 100}} {
		for _, impl := range []core.Impl{core.ImplMD, core.ImplAM} {
			r, err := experiments.RunOne(w, impl, geoms, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range r.Caches {
				fmt.Printf("%-4s %s %-14v instr=%8d Imiss=%7d Dmiss=%7d WB=%7d cyc48=%d\n",
					w.Name, impl.Short(), c.Config, r.Instructions, c.IMisses, c.DMisses, c.Writebacks,
					r.Instructions+48*(c.IMisses+c.DMisses))
			}
		}
	}
}
