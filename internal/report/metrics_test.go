package report

import (
	"testing"

	"jmtam/internal/obs"
)

// TestHistogramGolden pins the exact rendering of a histogram with
// single-value and range buckets, a sub-character bar rounded up to one
// mark, and the header statistics line.
func TestHistogramGolden(t *testing.T) {
	var h obs.Histogram
	for i := 0; i < 40; i++ {
		h.Observe(1)
	}
	h.Observe(5)
	h.Observe(6)
	h.Observe(100)

	got := Histogram("quantum threads", &h)
	want := "" +
		"quantum threads: n=43 min=1 max=100 mean=3.5\n" +
		"             1          40  ########################################\n" +
		"           4-7           2  ##\n" +
		"        64-127           1  #\n"
	if got != want {
		t.Errorf("histogram rendering:\ngot:\n%swant:\n%s", got, want)
	}
}

// TestHistogramEmpty renders only the header for an empty histogram.
func TestHistogramEmpty(t *testing.T) {
	var h obs.Histogram
	got := Histogram("empty", &h)
	want := "empty: n=0 min=0 max=0 mean=0.0\n"
	if got != want {
		t.Errorf("empty histogram: got %q want %q", got, want)
	}
}

// TestMetricsGolden pins the full registry rendering: name-sorted
// counters, gauges with min/max, then histograms.
func TestMetricsGolden(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("post.calls").Add(12)
	r.Counter("instr.alu").Add(900)
	g := r.Gauge("ready.frames")
	g.Set(3)
	g.Set(7)
	g.Set(2)
	h := r.Histogram("queue.depth.low")
	h.Observe(0)
	h.Observe(2)
	h.Observe(3)

	got := Metrics(r)
	want := "" +
		"counters:\n" +
		"  instr.alu                             900\n" +
		"  post.calls                             12\n" +
		"gauges:\n" +
		"  ready.frames                            2  (min 2, max 7)\n" +
		"queue.depth.low: n=3 min=0 max=3 mean=1.7\n" +
		"             0           1  ####################\n" +
		"           2-3           2  ########################################\n"
	if got != want {
		t.Errorf("metrics rendering:\ngot:\n%swant:\n%s", got, want)
	}
}
