package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequences diverge at step %d", i)
		}
	}
}

func TestZeroSeedUsable(t *testing.T) {
	s := New(0)
	if s.Uint64() == 0 && s.Uint64() == 0 && s.Uint64() == 0 {
		t.Error("zero seed produced a stuck generator")
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(7)
	f := func(n uint16) bool {
		bound := int(n%1000) + 1
		v := s.Intn(bound)
		return v >= 0 && v < bound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	s := New(99)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", v)
		}
	}
}

func TestDistributionRoughlyUniform(t *testing.T) {
	s := New(42)
	const buckets, samples = 10, 100000
	var count [buckets]int
	for i := 0; i < samples; i++ {
		count[s.Intn(buckets)]++
	}
	for b, c := range count {
		if c < samples/buckets*8/10 || c > samples/buckets*12/10 {
			t.Errorf("bucket %d has %d samples (expected ~%d)", b, c, samples/buckets)
		}
	}
}
