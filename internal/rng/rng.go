// Package rng provides a tiny deterministic pseudo-random number
// generator (xorshift64*). The simulator must be bit-for-bit reproducible
// across runs and Go versions, so we avoid math/rand's evolving default
// source and seed handling.
package rng

// Source is a deterministic xorshift64* generator. The zero value is not
// usable; construct with New.
type Source struct {
	state uint64
}

// New returns a generator seeded with seed. A zero seed is replaced with a
// fixed non-zero constant because xorshift has an all-zero fixed point.
func New(seed uint64) *Source {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Source{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	x := s.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	s.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Float64 returns a pseudo-random float in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / float64(1<<53)
}
