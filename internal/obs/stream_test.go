package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
)

// populate emits a representative mix of metadata and events. Metadata
// goes first, in sorted order, so the streamed document — which writes
// records strictly in call order — can be compared byte-for-byte
// against WriteJSON, which sorts metadata ahead of events.
func populate(b *EventBuffer) {
	b.SetProcessName(0, "node 0")
	b.SetThreadName(0, TrackLow, "low")
	b.SetThreadName(0, TrackHigh, "high")
	b.Duration("handler", "am", 0, TrackLow, 10, 5)
	b.DurationArg("quantum", "tam", 0, TrackHigh, 15, 20, "threads", 3)
	b.Instant("pri-switch", "sched", 0, TrackLow, 16)
	b.FlowStart("msg", "net", 0, TrackLow, 17, 1)
	b.FlowFinish("msg", "net", 0, TrackHigh, 19, 1)
}

// TestStreamingMatchesWriteJSON checks the tentpole property of the
// streaming exporter: the incrementally written document is
// byte-identical to the in-memory one.
func TestStreamingMatchesWriteJSON(t *testing.T) {
	mem := NewEventBuffer()
	populate(mem)
	var want bytes.Buffer
	if err := mem.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	str := NewEventBuffer()
	str.SetWriter(&got)
	populate(str)
	if err := str.Finish(); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("streamed document differs from WriteJSON:\nstream %s\nmemory %s",
			got.String(), want.String())
	}
	if len(str.Events()) != 0 {
		t.Errorf("streaming buffer retained %d events", len(str.Events()))
	}
	if str.Len() != mem.Len() {
		t.Errorf("streaming Len = %d, memory Len = %d", str.Len(), mem.Len())
	}
}

// TestStreamingViaSinkOptions drives the streaming mode the way the
// façade does, through New with options.
func TestStreamingViaSinkOptions(t *testing.T) {
	var buf bytes.Buffer
	s := New(WithEventWriter(&buf), WithEventCap(2))
	if s.Events == nil || !s.Events.Streaming() || s.Events.Cap() != 2 {
		t.Fatalf("options not applied: %+v", s.Events)
	}
	for i := 0; i < 5; i++ {
		s.Events.Instant("e", "c", 0, 0, uint64(i))
	}
	if err := s.Events.Finish(); err != nil {
		t.Fatal(err)
	}
	if s.Events.Len() != 2 || s.Events.Dropped() != 3 {
		t.Errorf("Len/Dropped = %d/%d, want 2/3", s.Events.Len(), s.Events.Dropped())
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("streamed document does not parse: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Errorf("%d streamed records, want 2", len(doc.TraceEvents))
	}
}

// TestEventCapInMemory checks the cap in buffered mode.
func TestEventCapInMemory(t *testing.T) {
	b := NewEventBuffer()
	b.SetCap(3)
	for i := 0; i < 10; i++ {
		b.Instant("e", "c", 0, 0, uint64(i))
	}
	if b.Len() != 3 || b.Dropped() != 7 {
		t.Fatalf("Len/Dropped = %d/%d, want 3/7", b.Len(), b.Dropped())
	}
	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("capped document invalid: %s", buf.String())
	}
}

// TestStreamingEmptyFinish checks Finish on an untouched streaming
// buffer still writes a valid document, and stays idempotent.
func TestStreamingEmptyFinish(t *testing.T) {
	var buf bytes.Buffer
	b := NewEventBuffer()
	b.SetWriter(&buf)
	if err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	n := buf.Len()
	if err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != n {
		t.Error("second Finish wrote more bytes")
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("empty streamed document invalid: %s", buf.String())
	}
}

// TestStreamingWriteJSONRefused checks the mode confusion guard.
func TestStreamingWriteJSONRefused(t *testing.T) {
	b := NewEventBuffer()
	b.SetWriter(&bytes.Buffer{})
	if err := b.WriteJSON(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteJSON on a streaming buffer did not error")
	}
}

// errWriter fails after n successful writes.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n--
	return len(p), nil
}

// TestStreamingStickyWriteError checks a write failure is latched and
// reported by Finish without panicking on subsequent events.
func TestStreamingStickyWriteError(t *testing.T) {
	b := NewEventBuffer()
	b.SetWriter(&errWriter{n: 2})
	for i := 0; i < 5; i++ {
		b.Instant("e", "c", 0, 0, uint64(i))
	}
	if err := b.Finish(); err == nil {
		t.Fatal("Finish did not report the write error")
	}
}
