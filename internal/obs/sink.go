package obs

import "io"

// Track ids within a node's timeline. Handler and inlet spans on a given
// track are sequential (a span's end may coincide with the next span's
// start but they never partially overlap), so each track renders as a
// flat lane in Perfetto.
const (
	TrackLow    = 0 // priority-0 handler spans + priority-switch instants
	TrackHigh   = 1 // priority-1 handler spans
	TrackQuanta = 2 // TAM quantum spans
	TrackInlets = 3 // inlet entry -> exit spans
	TrackNet    = 4 // network message-in-flight spans (netsim runs)
)

// Sink bundles the two observability surfaces. Producers hold a *Sink
// that is nil when instrumentation is disabled; Events may additionally
// be nil for metrics-only collection (the cheap mode parallel sweeps
// use).
type Sink struct {
	Metrics *Registry
	Events  *EventBuffer
}

// Option configures a Sink at construction.
type Option func(*Sink)

// WithEvents attaches an in-memory timeline event buffer to the sink.
func WithEvents() Option {
	return func(s *Sink) { s.ensureEvents() }
}

// WithEventCap attaches an event buffer that retains (or, in streaming
// mode, emits) at most n timeline events; later events are dropped and
// counted (EventBuffer.Dropped). The cap bounds memory on paper-scale
// runs whose full timelines would not fit.
func WithEventCap(n int) Option {
	return func(s *Sink) { s.ensureEvents().SetCap(n) }
}

// WithEventWriter attaches an event buffer in streaming mode: instead
// of accumulating the timeline in memory, every event is serialised to
// w as it is emitted (Chrome trace-event JSON, the same format
// WriteJSON produces), so arbitrarily long runs trace in bounded
// memory. Call EventBuffer.Finish after the run to terminate the JSON
// document. Composes with WithEventCap.
func WithEventWriter(w io.Writer) Option {
	return func(s *Sink) { s.ensureEvents().SetWriter(w) }
}

// New returns a sink with a fresh metrics registry, configured by the
// given options; with no options the sink is metrics-only.
func New(opts ...Option) *Sink {
	s := &Sink{Metrics: NewRegistry()}
	for _, o := range opts {
		o(s)
	}
	return s
}

// NewSink returns a sink with a fresh registry, plus an event buffer
// when withEvents is set.
//
// Deprecated: use New with WithEvents; NewSink survives as a shim for
// the original boolean signature.
func NewSink(withEvents bool) *Sink {
	if withEvents {
		return New(WithEvents())
	}
	return New()
}

// ensureEvents attaches an event buffer if the sink lacks one.
func (s *Sink) ensureEvents() *EventBuffer {
	if s.Events == nil {
		s.Events = NewEventBuffer()
	}
	return s.Events
}
