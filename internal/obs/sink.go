package obs

// Track ids within a node's timeline. Handler and inlet spans on a given
// track are sequential (a span's end may coincide with the next span's
// start but they never partially overlap), so each track renders as a
// flat lane in Perfetto.
const (
	TrackLow    = 0 // priority-0 handler spans + priority-switch instants
	TrackHigh   = 1 // priority-1 handler spans
	TrackQuanta = 2 // TAM quantum spans
	TrackInlets = 3 // inlet entry -> exit spans
	TrackNet    = 4 // network message-in-flight spans (netsim runs)
)

// Sink bundles the two observability surfaces. Producers hold a *Sink
// that is nil when instrumentation is disabled; Events may additionally
// be nil for metrics-only collection (the cheap mode parallel sweeps
// use).
type Sink struct {
	Metrics *Registry
	Events  *EventBuffer
}

// NewSink returns a sink with a fresh registry, plus an event buffer
// when withEvents is set.
func NewSink(withEvents bool) *Sink {
	s := &Sink{Metrics: NewRegistry()}
	if withEvents {
		s.Events = NewEventBuffer()
	}
	return s
}
