// Package obs is the simulator's observability subsystem: a metrics
// registry (counters, gauges and log-bucketed histograms keyed by stable
// names) and a timestamped event stream with a Chrome-trace-event /
// Perfetto JSON exporter.
//
// The package is a leaf: the machine engine, the TAM runtime, the trace
// layer, the network model and the cluster driver all hold an optional
// *Sink and emit into it behind a nil guard, so the disabled path costs
// one pointer test per hook site and instrumentation never perturbs
// simulation results — metrics and events are derived strictly from
// observation, never fed back.
//
// Timestamps are dynamic instruction counts (one simulated cycle per
// instruction, the paper's cycle model), exported to Perfetto as
// microseconds so one instruction reads as 1us on the timeline.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
)

// Counter is a monotonically increasing count.
type Counter struct {
	v uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.v += d }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is an instantaneous level with min/max watermarks.
type Gauge struct {
	v        int64
	min, max int64
	set      bool
}

// Set records a new level.
func (g *Gauge) Set(v int64) {
	g.v = v
	if !g.set || v < g.min {
		g.min = v
	}
	if !g.set || v > g.max {
		g.max = v
	}
	g.set = true
}

// Add moves the level by d.
func (g *Gauge) Add(d int64) { g.Set(g.v + d) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v }

// Max returns the highest level ever set.
func (g *Gauge) Max() int64 { return g.max }

// Min returns the lowest level ever set.
func (g *Gauge) Min() int64 { return g.min }

// histBuckets is the number of log2 buckets: bucket 0 holds the value 0
// and bucket i (i >= 1) holds values v with bits.Len64(v) == i, i.e.
// 2^(i-1) <= v < 2^i. 65 buckets cover the full uint64 range.
const histBuckets = 65

// Histogram is a log2-bucketed distribution. The zero value is ready to
// use, which lets hot-path owners embed one by value.
type Histogram struct {
	Buckets [histBuckets]uint64
	N       uint64
	Sum     uint64
	MinV    uint64
	MaxV    uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.Buckets[bits.Len64(v)]++
	if h.N == 0 || v < h.MinV {
		h.MinV = v
	}
	if v > h.MaxV {
		h.MaxV = v
	}
	h.N++
	h.Sum += v
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.N }

// Mean returns the arithmetic mean of the samples, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.N == 0 {
		return
	}
	for i, c := range other.Buckets {
		h.Buckets[i] += c
	}
	if h.N == 0 || other.MinV < h.MinV {
		h.MinV = other.MinV
	}
	if other.MaxV > h.MaxV {
		h.MaxV = other.MaxV
	}
	h.N += other.N
	h.Sum += other.Sum
}

// BucketBounds returns the inclusive value range [lo, hi] covered by
// bucket i.
func BucketBounds(i int) (lo, hi uint64) {
	if i == 0 {
		return 0, 0
	}
	return 1 << (i - 1), 1<<i - 1
}

// Registry maps stable names to metrics. Lookup interns the handle, so
// hot paths resolve their metrics once and then update through the
// pointer. A Registry is not safe for concurrent use; parallel sweeps
// give each simulation its own registry.
type Registry struct {
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	h := r.histograms[name]
	if h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// CounterNames returns the registered counter names, sorted.
func (r *Registry) CounterNames() []string { return sortedKeys(r.counters) }

// GaugeNames returns the registered gauge names, sorted.
func (r *Registry) GaugeNames() []string { return sortedKeys(r.gauges) }

// HistogramNames returns the registered histogram names, sorted.
func (r *Registry) HistogramNames() []string { return sortedKeys(r.histograms) }

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// WriteJSON emits the registry as deterministic (name-sorted) JSON:
//
//	{"counters":{...},"gauges":{...},"histograms":{...}}
//
// Histogram buckets are emitted sparsely as {lo,hi,count} objects.
func (r *Registry) WriteJSON(w io.Writer) error {
	var b strings.Builder
	b.WriteString("{\n  \"counters\": {")
	for i, name := range r.CounterNames() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "\n    %q: %d", name, r.counters[name].Value())
	}
	b.WriteString("\n  },\n  \"gauges\": {")
	for i, name := range r.GaugeNames() {
		if i > 0 {
			b.WriteByte(',')
		}
		g := r.gauges[name]
		fmt.Fprintf(&b, "\n    %q: {\"value\": %d, \"min\": %d, \"max\": %d}",
			name, g.Value(), g.Min(), g.Max())
	}
	b.WriteString("\n  },\n  \"histograms\": {")
	for i, name := range r.HistogramNames() {
		if i > 0 {
			b.WriteByte(',')
		}
		h := r.histograms[name]
		fmt.Fprintf(&b, "\n    %q: {\"count\": %d, \"sum\": %d, \"min\": %d, \"max\": %d, \"mean\": %.3f, \"buckets\": [",
			name, h.N, h.Sum, h.MinV, h.MaxV, h.Mean())
		first := true
		for bi, c := range h.Buckets {
			if c == 0 {
				continue
			}
			if !first {
				b.WriteString(", ")
			}
			first = false
			lo, hi := BucketBounds(bi)
			fmt.Fprintf(&b, "{\"lo\": %d, \"hi\": %d, \"count\": %d}", lo, hi, c)
		}
		b.WriteString("]}")
	}
	b.WriteString("\n  }\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
