package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Add(3)
	r.Counter("a").Add(2)
	if got := r.Counter("a").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	g := r.Gauge("depth")
	g.Set(4)
	g.Add(-6)
	g.Add(10)
	if g.Value() != 8 || g.Min() != -2 || g.Max() != 8 {
		t.Fatalf("gauge value/min/max = %d/%d/%d, want 8/-2/8", g.Value(), g.Min(), g.Max())
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 1, 2, 3, 4, 7, 8, 1023, 1024} {
		h.Observe(v)
	}
	if h.Count() != 10 || h.MinV != 0 || h.MaxV != 1024 {
		t.Fatalf("count/min/max = %d/%d/%d", h.Count(), h.MinV, h.MaxV)
	}
	// value 0 -> bucket 0; 1 -> bucket 1; 2,3 -> bucket 2; 4..7 -> 3;
	// 8 -> 4; 1023 -> 10; 1024 -> 11.
	want := map[int]uint64{0: 1, 1: 2, 2: 2, 3: 2, 4: 1, 10: 1, 11: 1}
	for i, c := range h.Buckets {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
	lo, hi := BucketBounds(3)
	if lo != 4 || hi != 7 {
		t.Fatalf("BucketBounds(3) = [%d,%d], want [4,7]", lo, hi)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(5)
	a.Observe(100)
	b.Observe(2)
	b.Observe(3000)
	a.Merge(&b)
	if a.Count() != 4 || a.MinV != 2 || a.MaxV != 3000 || a.Sum != 5+100+2+3000 {
		t.Fatalf("merged count/min/max/sum = %d/%d/%d/%d", a.Count(), a.MinV, a.MaxV, a.Sum)
	}
	var empty Histogram
	a.Merge(&empty) // no-op
	if a.Count() != 4 {
		t.Fatalf("merge with empty changed count: %d", a.Count())
	}
}

func TestRegistryJSONDeterministic(t *testing.T) {
	build := func(order []string) string {
		r := NewRegistry()
		for _, n := range order {
			r.Counter(n).Add(1)
		}
		r.Gauge("g").Set(7)
		r.Histogram("h").Observe(12)
		var sb strings.Builder
		if err := r.WriteJSON(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a := build([]string{"zeta", "alpha", "mid"})
	b := build([]string{"mid", "zeta", "alpha"})
	if a != b {
		t.Fatalf("registry JSON depends on insertion order:\n%s\nvs\n%s", a, b)
	}
	var parsed struct {
		Counters   map[string]uint64          `json:"counters"`
		Gauges     map[string]json.RawMessage `json:"gauges"`
		Histograms map[string]struct {
			Count   uint64 `json:"count"`
			Buckets []struct {
				Lo, Hi, Count uint64
			} `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(a), &parsed); err != nil {
		t.Fatalf("registry JSON does not parse: %v\n%s", err, a)
	}
	if parsed.Counters["alpha"] != 1 || len(parsed.Counters) != 3 {
		t.Fatalf("counters round-trip: %v", parsed.Counters)
	}
	h := parsed.Histograms["h"]
	if h.Count != 1 || len(h.Buckets) != 1 || h.Buckets[0].Lo != 8 || h.Buckets[0].Hi != 15 {
		t.Fatalf("histogram round-trip: %+v", h)
	}
}

func TestEventBufferJSON(t *testing.T) {
	b := NewEventBuffer()
	b.SetProcessName(0, "node 0")
	b.SetThreadName(0, TrackQuanta, "quanta")
	b.Duration("quantum", "tam", 0, TrackQuanta, 100, 50)
	b.Instant("pri-switch 0->1", "machine", 0, TrackLow, 120)
	b.FlowStart("msg", "net", 0, TrackLow, 130, 42)
	b.FlowFinish("msg", "net", 1, TrackHigh, 140, 42)
	b.DurationArg("handler", "machine", 0, TrackLow, 100, 10, "words", 6)

	var sb strings.Builder
	if err := b.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Ts   uint64          `json:"ts"`
			Dur  uint64          `json:"dur"`
			Pid  int32           `json:"pid"`
			Tid  int32           `json:"tid"`
			ID   uint64          `json:"id"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &parsed); err != nil {
		t.Fatalf("trace JSON does not parse: %v\n%s", err, sb.String())
	}
	// 2 metadata + 5 events.
	if len(parsed.TraceEvents) != 7 {
		t.Fatalf("got %d records, want 7", len(parsed.TraceEvents))
	}
	var flows int
	for _, e := range parsed.TraceEvents {
		switch e.Ph {
		case "s", "f":
			flows++
			if e.ID != 42 {
				t.Errorf("flow id = %d, want 42", e.ID)
			}
		case "X":
			if e.Dur == 0 {
				t.Errorf("complete event %q missing dur", e.Name)
			}
		}
	}
	if flows != 2 {
		t.Fatalf("got %d flow records, want 2", flows)
	}
}
