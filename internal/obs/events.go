package obs

import (
	"fmt"
	"io"
	"strings"
)

// Event phases, a subset of the Chrome trace-event format that Perfetto
// understands natively.
const (
	PhComplete   = 'X' // duration event carrying ts+dur
	PhInstant    = 'i' // point event
	PhFlowStart  = 's' // flow arrow tail (message send)
	PhFlowFinish = 'f' // flow arrow head (inlet dispatch)
)

// Event is one trace record. Ts and Dur are in simulated instructions,
// exported as microseconds (1 instruction == 1us on the timeline).
type Event struct {
	Name string
	Ph   byte
	Cat  string
	Ts   uint64
	Dur  uint64 // PhComplete only
	Pid  int32  // node id
	Tid  int32  // track within the node
	ID   uint64 // flow events: matches start to finish
	ArgK string // optional single argument
	ArgV uint64
}

// threadKey names one (pid, tid) track.
type threadKey struct {
	pid, tid int32
}

// EventBuffer accumulates events in memory and serialises them as a
// Chrome trace-event JSON object ({"traceEvents": [...]}). Not safe for
// concurrent use; lockstep multi-node simulation is single-threaded.
type EventBuffer struct {
	events      []Event
	procNames   map[int32]string
	threadNames map[threadKey]string
}

// NewEventBuffer returns an empty buffer.
func NewEventBuffer() *EventBuffer {
	return &EventBuffer{
		procNames:   make(map[int32]string),
		threadNames: make(map[threadKey]string),
	}
}

// Len returns the number of buffered events (metadata excluded).
func (b *EventBuffer) Len() int { return len(b.events) }

// Events returns the buffered events in emission order.
func (b *EventBuffer) Events() []Event { return b.events }

// SetProcessName labels a pid on the timeline.
func (b *EventBuffer) SetProcessName(pid int32, name string) {
	b.procNames[pid] = name
}

// SetThreadName labels a (pid, tid) track on the timeline.
func (b *EventBuffer) SetThreadName(pid, tid int32, name string) {
	b.threadNames[threadKey{pid, tid}] = name
}

// Duration records a complete ('X') event spanning [ts, ts+dur).
func (b *EventBuffer) Duration(name, cat string, pid, tid int32, ts, dur uint64) {
	b.events = append(b.events, Event{
		Name: name, Ph: PhComplete, Cat: cat, Ts: ts, Dur: dur, Pid: pid, Tid: tid,
	})
}

// DurationArg is Duration with one argument attached.
func (b *EventBuffer) DurationArg(name, cat string, pid, tid int32, ts, dur uint64, argK string, argV uint64) {
	b.events = append(b.events, Event{
		Name: name, Ph: PhComplete, Cat: cat, Ts: ts, Dur: dur, Pid: pid, Tid: tid,
		ArgK: argK, ArgV: argV,
	})
}

// Instant records a point ('i') event.
func (b *EventBuffer) Instant(name, cat string, pid, tid int32, ts uint64) {
	b.events = append(b.events, Event{
		Name: name, Ph: PhInstant, Cat: cat, Ts: ts, Pid: pid, Tid: tid,
	})
}

// FlowStart records the tail ('s') of flow id at ts.
func (b *EventBuffer) FlowStart(name, cat string, pid, tid int32, ts, id uint64) {
	b.events = append(b.events, Event{
		Name: name, Ph: PhFlowStart, Cat: cat, Ts: ts, Pid: pid, Tid: tid, ID: id,
	})
}

// FlowFinish records the head ('f') of flow id at ts.
func (b *EventBuffer) FlowFinish(name, cat string, pid, tid int32, ts, id uint64) {
	b.events = append(b.events, Event{
		Name: name, Ph: PhFlowFinish, Cat: cat, Ts: ts, Pid: pid, Tid: tid, ID: id,
	})
}

// WriteJSON serialises the buffer in Chrome trace-event JSON object
// format. Metadata (process/thread names) is emitted first, then events
// in emission order; "displayTimeUnit" is ms so Perfetto shows the
// instruction-count timestamps compactly.
func (b *EventBuffer) WriteJSON(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n")
	first := true
	emit := func(s string) {
		if !first {
			sb.WriteString(",\n")
		}
		first = false
		sb.WriteString(s)
	}
	for _, pid := range sortedPids(b.procNames) {
		emit(fmt.Sprintf(`{"name": "process_name", "ph": "M", "pid": %d, "tid": 0, "args": {"name": %q}}`,
			pid, b.procNames[pid]))
	}
	for _, k := range sortedThreadKeys(b.threadNames) {
		emit(fmt.Sprintf(`{"name": "thread_name", "ph": "M", "pid": %d, "tid": %d, "args": {"name": %q}}`,
			k.pid, k.tid, b.threadNames[k]))
	}
	for i := range b.events {
		e := &b.events[i]
		var line strings.Builder
		fmt.Fprintf(&line, `{"name": %q, "cat": %q, "ph": %q, "ts": %d, "pid": %d, "tid": %d`,
			e.Name, e.Cat, string(e.Ph), e.Ts, e.Pid, e.Tid)
		if e.Ph == PhComplete {
			fmt.Fprintf(&line, `, "dur": %d`, e.Dur)
		}
		if e.Ph == PhFlowStart || e.Ph == PhFlowFinish {
			fmt.Fprintf(&line, `, "id": %d`, e.ID)
		}
		if e.Ph == PhInstant {
			line.WriteString(`, "s": "t"`)
		}
		if e.ArgK != "" {
			fmt.Fprintf(&line, `, "args": {%q: %d}`, e.ArgK, e.ArgV)
		}
		line.WriteString("}")
		emit(line.String())
	}
	sb.WriteString("\n]}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

func sortedPids(m map[int32]string) []int32 {
	ps := make([]int32, 0, len(m))
	for p := range m {
		ps = append(ps, p)
	}
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j] < ps[j-1]; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
	return ps
}

func sortedThreadKeys(m map[threadKey]string) []threadKey {
	ks := make([]threadKey, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	for i := 1; i < len(ks); i++ {
		for j := i; j > 0 && less(ks[j], ks[j-1]); j-- {
			ks[j], ks[j-1] = ks[j-1], ks[j]
		}
	}
	return ks
}

func less(a, b threadKey) bool {
	if a.pid != b.pid {
		return a.pid < b.pid
	}
	return a.tid < b.tid
}
