package obs

import (
	"fmt"
	"io"
	"strings"
)

// Event phases, a subset of the Chrome trace-event format that Perfetto
// understands natively.
const (
	PhComplete   = 'X' // duration event carrying ts+dur
	PhInstant    = 'i' // point event
	PhFlowStart  = 's' // flow arrow tail (message send)
	PhFlowFinish = 'f' // flow arrow head (inlet dispatch)
	PhCounter    = 'C' // counter sample rendered as a step chart
)

// Event is one trace record. Ts and Dur are in simulated instructions,
// exported as microseconds (1 instruction == 1us on the timeline).
type Event struct {
	Name string
	Ph   byte
	Cat  string
	Ts   uint64
	Dur  uint64 // PhComplete only
	Pid  int32  // node id
	Tid  int32  // track within the node
	ID   uint64 // flow events: matches start to finish
	ArgK string // optional single argument
	ArgV uint64
}

// threadKey names one (pid, tid) track.
type threadKey struct {
	pid, tid int32
}

// EventBuffer collects timeline events in one of two modes. In the
// default in-memory mode it accumulates events and serialises them on
// demand with WriteJSON. In streaming mode (SetWriter, or the
// WithEventWriter sink option) every event is written to the underlying
// io.Writer as it is emitted — the same Chrome trace-event JSON
// document, produced incrementally in bounded memory — and Finish
// terminates the document after the run. Either mode can additionally
// be capped (SetCap / WithEventCap): events past the cap are dropped
// and counted rather than retained.
//
// Not safe for concurrent use; lockstep multi-node simulation is
// single-threaded, and parallel sweeps give each simulation its own
// sink.
type EventBuffer struct {
	events      []Event
	procNames   map[int32]string
	threadNames map[threadKey]string

	cap     int    // 0 = unbounded
	emitted uint64 // events accepted (retained or streamed)
	dropped uint64

	w        io.Writer // streaming mode when non-nil
	werr     error
	started  bool // streaming: header written
	anyLine  bool // streaming: at least one record written
	finished bool
}

// NewEventBuffer returns an empty in-memory buffer.
func NewEventBuffer() *EventBuffer {
	return &EventBuffer{
		procNames:   make(map[int32]string),
		threadNames: make(map[threadKey]string),
	}
}

// SetCap bounds the number of events the buffer accepts; 0 removes the
// bound. Events emitted past the cap are dropped and counted.
func (b *EventBuffer) SetCap(n int) {
	if n < 0 {
		n = 0
	}
	b.cap = n
}

// Cap returns the event cap (0 = unbounded).
func (b *EventBuffer) Cap() int { return b.cap }

// SetWriter switches the buffer into streaming mode: subsequent events
// and metadata serialise directly to w instead of accumulating. Call
// Finish after the run to terminate the JSON document.
func (b *EventBuffer) SetWriter(w io.Writer) { b.w = w }

// Streaming reports whether the buffer is in streaming mode.
func (b *EventBuffer) Streaming() bool { return b.w != nil }

// Len returns the number of events accepted (metadata excluded); in
// streaming mode, the number written.
func (b *EventBuffer) Len() int { return int(b.emitted) }

// Dropped returns the number of events discarded by the cap.
func (b *EventBuffer) Dropped() uint64 { return b.dropped }

// Events returns the retained events in emission order (empty in
// streaming mode).
func (b *EventBuffer) Events() []Event { return b.events }

// SetProcessName labels a pid on the timeline.
func (b *EventBuffer) SetProcessName(pid int32, name string) {
	b.procNames[pid] = name
	if b.w != nil {
		b.stream(procMetaJSON(pid, name))
	}
}

// SetThreadName labels a (pid, tid) track on the timeline.
func (b *EventBuffer) SetThreadName(pid, tid int32, name string) {
	b.threadNames[threadKey{pid, tid}] = name
	if b.w != nil {
		b.stream(threadMetaJSON(threadKey{pid, tid}, name))
	}
}

// add accepts one event, honouring the cap and the mode.
func (b *EventBuffer) add(e Event) {
	if b.cap > 0 && b.emitted >= uint64(b.cap) {
		b.dropped++
		return
	}
	b.emitted++
	if b.w != nil {
		b.stream(eventJSON(&e))
		return
	}
	b.events = append(b.events, e)
}

// Duration records a complete ('X') event spanning [ts, ts+dur).
func (b *EventBuffer) Duration(name, cat string, pid, tid int32, ts, dur uint64) {
	b.add(Event{
		Name: name, Ph: PhComplete, Cat: cat, Ts: ts, Dur: dur, Pid: pid, Tid: tid,
	})
}

// DurationArg is Duration with one argument attached.
func (b *EventBuffer) DurationArg(name, cat string, pid, tid int32, ts, dur uint64, argK string, argV uint64) {
	b.add(Event{
		Name: name, Ph: PhComplete, Cat: cat, Ts: ts, Dur: dur, Pid: pid, Tid: tid,
		ArgK: argK, ArgV: argV,
	})
}

// Instant records a point ('i') event.
func (b *EventBuffer) Instant(name, cat string, pid, tid int32, ts uint64) {
	b.add(Event{
		Name: name, Ph: PhInstant, Cat: cat, Ts: ts, Pid: pid, Tid: tid,
	})
}

// Counter records a counter ('C') sample: Perfetto renders all samples
// sharing one name as a step chart in a dedicated counter track under
// pid, alongside that process's duration spans. The series argument
// names the plotted value within the track.
func (b *EventBuffer) Counter(name, cat string, pid int32, ts uint64, series string, value uint64) {
	b.add(Event{
		Name: name, Ph: PhCounter, Cat: cat, Ts: ts, Pid: pid,
		ArgK: series, ArgV: value,
	})
}

// FlowStart records the tail ('s') of flow id at ts.
func (b *EventBuffer) FlowStart(name, cat string, pid, tid int32, ts, id uint64) {
	b.add(Event{
		Name: name, Ph: PhFlowStart, Cat: cat, Ts: ts, Pid: pid, Tid: tid, ID: id,
	})
}

// FlowFinish records the head ('f') of flow id at ts.
func (b *EventBuffer) FlowFinish(name, cat string, pid, tid int32, ts, id uint64) {
	b.add(Event{
		Name: name, Ph: PhFlowFinish, Cat: cat, Ts: ts, Pid: pid, Tid: tid, ID: id,
	})
}

const streamHeader = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n"

// stream writes one serialised record in streaming mode, sticky on the
// first write error.
func (b *EventBuffer) stream(s string) {
	if b.werr != nil || b.finished {
		return
	}
	if !b.started {
		b.started = true
		if _, err := io.WriteString(b.w, streamHeader); err != nil {
			b.werr = err
			return
		}
	}
	if b.anyLine {
		s = ",\n" + s
	}
	if _, err := io.WriteString(b.w, s); err != nil {
		b.werr = err
		return
	}
	b.anyLine = true
}

// Finish terminates the streaming JSON document and returns the first
// write error, if any. It is a no-op in in-memory mode and idempotent
// in streaming mode.
func (b *EventBuffer) Finish() error {
	if b.w == nil {
		return nil
	}
	if b.finished {
		return b.werr
	}
	b.finished = true
	if b.werr != nil {
		return b.werr
	}
	if !b.started {
		b.started = true
		if _, err := io.WriteString(b.w, streamHeader); err != nil {
			b.werr = err
			return b.werr
		}
	}
	if _, err := io.WriteString(b.w, "\n]}\n"); err != nil {
		b.werr = err
	}
	return b.werr
}

// WriteJSON serialises an in-memory buffer in Chrome trace-event JSON
// object format. Metadata (process/thread names) is emitted first, then
// events in emission order; "displayTimeUnit" is ms so Perfetto shows
// the instruction-count timestamps compactly. A streaming buffer has
// already written its events; use Finish instead.
func (b *EventBuffer) WriteJSON(w io.Writer) error {
	if b.w != nil {
		return fmt.Errorf("obs: WriteJSON on a streaming event buffer (use Finish)")
	}
	var sb strings.Builder
	sb.WriteString(streamHeader)
	first := true
	emit := func(s string) {
		if !first {
			sb.WriteString(",\n")
		}
		first = false
		sb.WriteString(s)
	}
	for _, pid := range sortedPids(b.procNames) {
		emit(procMetaJSON(pid, b.procNames[pid]))
	}
	for _, k := range sortedThreadKeys(b.threadNames) {
		emit(threadMetaJSON(k, b.threadNames[k]))
	}
	for i := range b.events {
		emit(eventJSON(&b.events[i]))
	}
	sb.WriteString("\n]}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// eventJSON serialises one trace record.
func eventJSON(e *Event) string {
	var line strings.Builder
	fmt.Fprintf(&line, `{"name": %q, "cat": %q, "ph": %q, "ts": %d, "pid": %d, "tid": %d`,
		e.Name, e.Cat, string(e.Ph), e.Ts, e.Pid, e.Tid)
	if e.Ph == PhComplete {
		fmt.Fprintf(&line, `, "dur": %d`, e.Dur)
	}
	if e.Ph == PhFlowStart || e.Ph == PhFlowFinish {
		fmt.Fprintf(&line, `, "id": %d`, e.ID)
	}
	if e.Ph == PhInstant {
		line.WriteString(`, "s": "t"`)
	}
	if e.ArgK != "" {
		fmt.Fprintf(&line, `, "args": {%q: %d}`, e.ArgK, e.ArgV)
	}
	line.WriteString("}")
	return line.String()
}

func procMetaJSON(pid int32, name string) string {
	return fmt.Sprintf(`{"name": "process_name", "ph": "M", "pid": %d, "tid": 0, "args": {"name": %q}}`,
		pid, name)
}

func threadMetaJSON(k threadKey, name string) string {
	return fmt.Sprintf(`{"name": "thread_name", "ph": "M", "pid": %d, "tid": %d, "args": {"name": %q}}`,
		k.pid, k.tid, name)
}

func sortedPids(m map[int32]string) []int32 {
	ps := make([]int32, 0, len(m))
	for p := range m {
		ps = append(ps, p)
	}
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j] < ps[j-1]; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
	return ps
}

func sortedThreadKeys(m map[threadKey]string) []threadKey {
	ks := make([]threadKey, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	for i := 1; i < len(ks); i++ {
		for j := i; j > 0 && less(ks[j], ks[j-1]); j-- {
			ks[j], ks[j-1] = ks[j-1], ks[j]
		}
	}
	return ks
}

func less(a, b threadKey) bool {
	if a.pid != b.pid {
		return a.pid < b.pid
	}
	return a.tid < b.tid
}
