package trace

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"jmtam/internal/mem"
)

// Compact recording format (v2). The packed in-memory form costs four
// bytes per reference; active-message traces are bursty and strongly
// segment-local, so on the wire and on disk the stream is delta+varint
// encoded per chunk instead:
//
//	magic   "JTR2"
//	version 0x01
//	uvarint annotation length, then that many opaque annotation bytes
//	uvarint total reference count
//	3×NumClasses uvarints: fetch, read, write counts per §3.1 class
//	chunks, until the total reference count is consumed:
//	  uvarint nRefs   (1 .. chunkWords)
//	  uvarint nBytes  (payload length)
//	  payload
//
// Each payload is a sequence of uvarint ops. The low two bits are the
// tag: tags 0..2 are the reference kinds, and the rest of the op is the
// zigzag delta of the word address from the previous reference of the
// same kind — instruction fetches advance mostly sequentially and data
// references cluster by segment, so deltas are small regardless of how
// the kinds interleave. Tag 3 is a run: the rest of the op counts
// consecutive instruction fetches each one word after its predecessor,
// which collapses straight-line code to two bytes per chunk-sized run.
// Delta state resets at every chunk boundary, so chunks decode
// independently and a reader can stream them without ever holding more
// than one decoded chunk.
// CompactVersion is the compact format's version byte. Content
// addresses fold it into their key material so a format bump
// invalidates stored recordings instead of misdecoding them.
const CompactVersion = compactVersion

const (
	compactVersion = 1
	// maxAnnotation bounds the header's opaque annotation blob so a
	// corrupt length prefix cannot force a huge allocation.
	maxAnnotation = 1 << 20
	// maxChunkPayload bounds one chunk's encoded payload: an op is at
	// most five bytes for a 32-bit zigzag delta.
	maxChunkPayload = 5*chunkWords + 16
)

var compactMagic = [4]byte{'J', 'T', 'R', '2'}

// tagRun marks a run of sequential instruction fetches; tags 0..2 are
// the Kind values themselves.
const tagRun = 3

func zigzag(d int64) uint64   { return uint64((d << 1) ^ (d >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Compact encodes the recording into the self-describing v2 wire form.
// The result decodes back to an identical recording with Decompact, or
// streams chunk-by-chunk through a Reader.
func (r *Recording) Compact() []byte {
	return r.CompactAnnotated(nil)
}

// CompactAnnotated is Compact with an opaque annotation blob (at most
// 1 MiB) carried in the header — the recording store keeps the run
// summary there so a fetched recording needs no side channel. The
// annotation never affects replay.
func (r *Recording) CompactAnnotated(annotation []byte) []byte {
	if len(annotation) > maxAnnotation {
		annotation = annotation[:maxAnnotation]
	}
	total := r.Len()
	// Typical traces land well under two bytes per reference.
	out := make([]byte, 0, 64+len(annotation)+total/2)
	out = append(out, compactMagic[:]...)
	out = append(out, compactVersion)
	out = binary.AppendUvarint(out, uint64(len(annotation)))
	out = append(out, annotation...)
	out = binary.AppendUvarint(out, uint64(total))
	out = appendCounts(out, &r.Counts)
	var payload []byte
	for _, c := range r.chunks() {
		if len(c) == 0 {
			continue
		}
		payload = compactChunk(payload[:0], c)
		out = binary.AppendUvarint(out, uint64(len(c)))
		out = binary.AppendUvarint(out, uint64(len(payload)))
		out = append(out, payload...)
	}
	return out
}

func appendCounts(out []byte, c *Counts) []byte {
	for cls := 0; cls < int(mem.NumClasses); cls++ {
		out = binary.AppendUvarint(out, c.Fetches[cls])
	}
	for cls := 0; cls < int(mem.NumClasses); cls++ {
		out = binary.AppendUvarint(out, c.Reads[cls])
	}
	for cls := 0; cls < int(mem.NumClasses); cls++ {
		out = binary.AppendUvarint(out, c.Writes[cls])
	}
	return out
}

// compactChunk delta+varint encodes one packed chunk. Per-kind last
// word-address registers start at zero (the decoder mirrors this), and
// consecutive +1-word fetches coalesce into run ops.
func compactChunk(dst []byte, c []uint32) []byte {
	var last [3]uint32 // word index per kind
	run := 0
	for _, w := range c {
		k := w >> kindShift
		word := w & addrMask
		if k == uint32(KindFetch) && word == last[KindFetch]+1 {
			last[KindFetch] = word
			run++
			continue
		}
		if run > 0 {
			dst = binary.AppendUvarint(dst, uint64(run)<<2|tagRun)
			run = 0
		}
		delta := int64(word) - int64(last[k])
		last[k] = word
		dst = binary.AppendUvarint(dst, zigzag(delta)<<2|uint64(k))
	}
	if run > 0 {
		dst = binary.AppendUvarint(dst, uint64(run)<<2|tagRun)
	}
	return dst
}

// decompactChunk decodes one payload into packed words appended to out.
// It is the exact inverse of compactChunk and rejects any payload that
// does not decode to exactly nRefs in-range references.
func decompactChunk(payload []byte, nRefs int, out []uint32) ([]uint32, error) {
	var last [3]uint32
	emitted := 0
	for emitted < nRefs {
		v, n := binary.Uvarint(payload)
		if n <= 0 {
			return nil, errors.New("trace: truncated chunk payload")
		}
		payload = payload[n:]
		switch tag := v & 3; tag {
		case tagRun:
			cnt := v >> 2
			if cnt == 0 || cnt > uint64(nRefs-emitted) {
				return nil, fmt.Errorf("trace: fetch run of %d in chunk with %d references left", cnt, nRefs-emitted)
			}
			if uint64(last[KindFetch])+cnt > addrMask {
				return nil, errors.New("trace: fetch run overflows the address space")
			}
			for j := uint64(0); j < cnt; j++ {
				last[KindFetch]++
				out = append(out, last[KindFetch])
			}
			emitted += int(cnt)
		default:
			word := int64(last[tag]) + unzigzag(v>>2)
			if word < 0 || word > addrMask {
				return nil, fmt.Errorf("trace: delta walks word address to %d", word)
			}
			last[tag] = uint32(word)
			out = append(out, uint32(tag)<<kindShift|uint32(word))
			emitted++
		}
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("trace: %d trailing bytes after chunk", len(payload))
	}
	return out, nil
}

// Reader streams a compacted recording: the header is parsed up front,
// then Next decodes one chunk at a time into a reused buffer, so replay
// holds one decoded chunk (≤ 256 KB) regardless of trace length. A
// Reader consumes its source exactly once; open a fresh Reader per
// replay pass.
type Reader struct {
	br         *bufio.Reader
	counts     Counts
	annotation []byte
	total      int
	remaining  int
	buf        []uint32
	payload    []byte
}

// NewReader parses the compact header from r and positions the stream
// at the first chunk.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: compact header: %w", noEOF(err))
	}
	if !bytes.Equal(magic[:4], compactMagic[:]) {
		return nil, errors.New("trace: not a compact recording (bad magic)")
	}
	if magic[4] != compactVersion {
		return nil, fmt.Errorf("trace: unsupported compact version %d", magic[4])
	}
	annLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: compact header: %w", noEOF(err))
	}
	if annLen > maxAnnotation {
		return nil, fmt.Errorf("trace: annotation of %d bytes exceeds the %d-byte cap", annLen, maxAnnotation)
	}
	rd := &Reader{br: br}
	if annLen > 0 {
		rd.annotation = make([]byte, annLen)
		if _, err := io.ReadFull(br, rd.annotation); err != nil {
			return nil, fmt.Errorf("trace: compact header: %w", noEOF(err))
		}
	}
	total, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: compact header: %w", noEOF(err))
	}
	const maxRefs = 1 << 40 // recordings are bounded by instruction budgets, not 2^64
	if total > maxRefs {
		return nil, fmt.Errorf("trace: implausible reference count %d", total)
	}
	rd.total = int(total)
	rd.remaining = rd.total
	if err := rd.readCounts(); err != nil {
		return nil, err
	}
	return rd, nil
}

func (rd *Reader) readCounts() error {
	read := func(dst *[mem.NumClasses]uint64) error {
		for cls := 0; cls < int(mem.NumClasses); cls++ {
			v, err := binary.ReadUvarint(rd.br)
			if err != nil {
				return fmt.Errorf("trace: compact header counts: %w", noEOF(err))
			}
			dst[cls] = v
		}
		return nil
	}
	if err := read(&rd.counts.Fetches); err != nil {
		return err
	}
	if err := read(&rd.counts.Reads); err != nil {
		return err
	}
	return read(&rd.counts.Writes)
}

// noEOF upgrades a bare EOF to ErrUnexpectedEOF: inside a header or
// chunk, running out of bytes is always a truncation.
func noEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Counts returns the header's reference counts by class, identical to
// the recorded Recording's Counts.
func (rd *Reader) Counts() Counts { return rd.counts }

// Len returns the total number of references in the stream.
func (rd *Reader) Len() int { return rd.total }

// PackedBytes returns the size the stream would occupy in the packed
// 4-byte-per-reference in-memory form.
func (rd *Reader) PackedBytes() int { return 4 * rd.total }

// Annotation returns the header's opaque annotation blob (nil when the
// recording was compacted without one).
func (rd *Reader) Annotation() []byte { return rd.annotation }

// Next decodes and returns the next chunk of packed trace words. The
// returned slice is valid until the following Next call. At the end of
// the stream it returns io.EOF.
func (rd *Reader) Next() ([]uint32, error) {
	if rd.remaining == 0 {
		return nil, io.EOF
	}
	nRefs, err := binary.ReadUvarint(rd.br)
	if err != nil {
		return nil, fmt.Errorf("trace: chunk header: %w", noEOF(err))
	}
	if nRefs == 0 || nRefs > chunkWords || nRefs > uint64(rd.remaining) {
		return nil, fmt.Errorf("trace: chunk of %d references (remaining %d, max %d)", nRefs, rd.remaining, chunkWords)
	}
	nBytes, err := binary.ReadUvarint(rd.br)
	if err != nil {
		return nil, fmt.Errorf("trace: chunk header: %w", noEOF(err))
	}
	if nBytes > maxChunkPayload {
		return nil, fmt.Errorf("trace: chunk payload of %d bytes exceeds the %d-byte cap", nBytes, maxChunkPayload)
	}
	if cap(rd.payload) < int(nBytes) {
		rd.payload = make([]byte, nBytes)
	}
	rd.payload = rd.payload[:nBytes]
	if _, err := io.ReadFull(rd.br, rd.payload); err != nil {
		return nil, fmt.Errorf("trace: chunk payload: %w", noEOF(err))
	}
	if rd.buf == nil {
		rd.buf = make([]uint32, 0, chunkWords)
	}
	buf, err := decompactChunk(rd.payload, int(nRefs), rd.buf[:0])
	if err != nil {
		return nil, err
	}
	rd.buf = buf
	rd.remaining -= int(nRefs)
	return buf, nil
}

// Do streams every remaining reference, in order, to fn.
func (rd *Reader) Do(fn func(k Kind, addr uint32)) error {
	for {
		c, err := rd.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		for _, w := range c {
			fn(Decode(w))
		}
	}
}

// ReplayAll streams the remaining chunks through any number of cache
// pairs, exactly as Recording.ReplayAll would — same partition kernel,
// same per-pair statistics — without ever materializing the packed
// recording: resident state is one decoded chunk plus the replay
// partition buffers.
func (rd *Reader) ReplayAll(pairs []Pair) error {
	return rd.ReplayAllContext(context.Background(), pairs)
}

// ReplayAllContext is ReplayAll with cooperative cancellation, checked
// between chunks. On cancellation the pairs' statistics are partial and
// must be discarded.
func (rd *Reader) ReplayAllContext(ctx context.Context, pairs []Pair) error {
	done := ctx.Done()
	var (
		fetch = make([]uint32, 0, replayBlockWords)
		data  = make([]uint32, 0, replayBlockWords)
	)
	for {
		if done != nil {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		c, err := rd.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if len(pairs) == 0 {
			continue
		}
		fetch, data = replayChunk(c, pairs, fetch, data)
	}
}

// Decompact decodes a compacted recording back into the packed
// in-memory form. The result is indistinguishable from the Recording
// that produced the bytes: same reference stream, same Counts, same
// replay statistics through any geometry.
func Decompact(data []byte) (*Recording, error) {
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	rec := &Recording{}
	for {
		c, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		for _, w := range c {
			rec.pushWord(w)
		}
	}
	rec.Counts = rd.Counts()
	return rec, nil
}

// CompactInfo summarizes a compacted recording's header without
// decoding its chunks.
type CompactInfo struct {
	// Refs is the total reference count.
	Refs int
	// PackedBytes is the packed in-memory size (4 bytes per reference);
	// CompactBytes the encoded size.
	PackedBytes  int
	CompactBytes int
	// Annotation is the header's opaque blob, nil when absent.
	Annotation []byte
	// Counts are the recorded per-class reference counts.
	Counts Counts
}

// Ratio returns CompactBytes / PackedBytes (0 for an empty recording).
func (i CompactInfo) Ratio() float64 {
	if i.PackedBytes == 0 {
		return 0
	}
	return float64(i.CompactBytes) / float64(i.PackedBytes)
}

// CompactStat parses just the header of a compacted recording — a cheap
// validity probe and size accounting for stores and endpoints.
func CompactStat(data []byte) (CompactInfo, error) {
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		return CompactInfo{}, err
	}
	return CompactInfo{
		Refs:         rd.Len(),
		PackedBytes:  rd.PackedBytes(),
		CompactBytes: len(data),
		Annotation:   rd.Annotation(),
		Counts:       rd.Counts(),
	}, nil
}
