package trace

import (
	"bytes"
	"io"
	"testing"

	"jmtam/internal/cache"
	"jmtam/internal/rng"
)

// ref is one recorded reference in test scaffolding.
type ref struct {
	k    Kind
	addr uint32
}

func record(refs []ref) *Recording {
	r := &Recording{}
	for _, x := range refs {
		switch x.k {
		case KindFetch:
			r.Fetch(x.addr)
		case KindRead:
			r.Read(x.addr)
		default:
			r.Write(x.addr)
		}
	}
	return r
}

func refsOf(r *Recording) []ref {
	var out []ref
	r.Do(func(k Kind, addr uint32) { out = append(out, ref{k, addr}) })
	return out
}

// randomRefs draws a seeded mixture of sequential fetch runs, branchy
// fetches and clustered data references — the shapes real traces have —
// plus uniform noise.
func randomRefs(seed uint64, n int) []ref {
	src := rng.New(seed)
	var out []ref
	pc := uint32(0x1000)
	heap := uint32(0x40_0000)
	for len(out) < n {
		switch src.Uint64() % 5 {
		case 0: // straight-line code
			run := int(src.Uint64()%64) + 1
			for j := 0; j < run && len(out) < n; j++ {
				pc += 4
				out = append(out, ref{KindFetch, pc &^ 3})
			}
		case 1: // branch
			pc = uint32(src.Uint64()) &^ 3 & (1<<32 - 1)
			out = append(out, ref{KindFetch, pc})
		case 2: // local data burst
			base := heap + uint32(src.Uint64()%256)*4
			for j := 0; j < int(src.Uint64()%8)+1 && len(out) < n; j++ {
				k := KindRead
				if src.Uint64()%3 == 0 {
					k = KindWrite
				}
				out = append(out, ref{k, (base + uint32(j)*4) &^ 3})
			}
		case 3: // pointer chase
			heap = uint32(src.Uint64()) &^ 3
			out = append(out, ref{KindRead, heap})
		default: // uniform noise
			k := Kind(src.Uint64() % 3)
			out = append(out, ref{k, uint32(src.Uint64()) &^ 3})
		}
	}
	return out[:n]
}

func TestCompactRoundTrip(t *testing.T) {
	// Sizes straddle chunk boundaries: empty, tiny, exactly one chunk,
	// one word either side, and multiple chunks with a partial tail.
	sizes := []int{0, 1, 7, chunkWords - 1, chunkWords, chunkWords + 1, 2*chunkWords + 1717}
	for _, n := range sizes {
		refs := randomRefs(uint64(n)+1, n)
		rec := record(refs)
		data := rec.Compact()
		got, err := Decompact(data)
		if err != nil {
			t.Fatalf("n=%d: Decompact: %v", n, err)
		}
		if got.Len() != rec.Len() {
			t.Fatalf("n=%d: Len = %d, want %d", n, got.Len(), rec.Len())
		}
		if got.Counts != rec.Counts {
			t.Fatalf("n=%d: Counts = %+v, want %+v", n, got.Counts, rec.Counts)
		}
		a, b := refsOf(rec), refsOf(got)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("n=%d: ref %d = %+v, want %+v", n, i, b[i], a[i])
			}
		}
	}
}

func TestCompactAnnotationRoundTrip(t *testing.T) {
	rec := record(randomRefs(42, 1000))
	ann := []byte(`{"program":"mmt","arg":50}`)
	data := rec.CompactAnnotated(ann)
	info, err := CompactStat(data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(info.Annotation, ann) {
		t.Fatalf("annotation = %q, want %q", info.Annotation, ann)
	}
	if info.Refs != rec.Len() || info.PackedBytes != 4*rec.Len() || info.CompactBytes != len(data) {
		t.Fatalf("info = %+v", info)
	}
	if info.Counts != rec.Counts {
		t.Fatalf("info counts = %+v, want %+v", info.Counts, rec.Counts)
	}
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rd.Annotation(), ann) {
		t.Fatalf("reader annotation = %q", rd.Annotation())
	}
}

// TestReaderReplayMatchesRecording is the streaming-replay guarantee:
// driving cache pairs from a Reader over the compacted bytes leaves
// statistics identical to replaying the original recording.
func TestReaderReplayMatchesRecording(t *testing.T) {
	rec := record(randomRefs(7, 3*chunkWords/2))
	geoms := []cache.Config{
		{SizeBytes: 1 << 10, BlockBytes: 16, Assoc: 1},
		{SizeBytes: 8 << 10, BlockBytes: 64, Assoc: 4},
		{SizeBytes: 2 << 10, BlockBytes: 32, Assoc: 2},
	}
	direct := make([]Pair, len(geoms))
	streamed := make([]Pair, len(geoms))
	for i, g := range geoms {
		var err error
		if direct[i], err = NewPair(g); err != nil {
			t.Fatal(err)
		}
		if streamed[i], err = NewPair(g); err != nil {
			t.Fatal(err)
		}
	}
	rec.ReplayAll(direct)
	rd, err := NewReader(bytes.NewReader(rec.Compact()))
	if err != nil {
		t.Fatal(err)
	}
	if err := rd.ReplayAll(streamed); err != nil {
		t.Fatal(err)
	}
	for i := range geoms {
		if direct[i].I.Stats() != streamed[i].I.Stats() || direct[i].D.Stats() != streamed[i].D.Stats() {
			t.Fatalf("geom %d: streamed stats I=%+v D=%+v, want I=%+v D=%+v", i,
				streamed[i].I.Stats(), streamed[i].D.Stats(), direct[i].I.Stats(), direct[i].D.Stats())
		}
	}
}

// TestCompactRatioSequential checks the run-length path: straight-line
// instruction streams collapse to a tiny fraction of the packed size.
func TestCompactRatioSequential(t *testing.T) {
	r := &Recording{}
	for i := uint32(0); i < 100_000; i++ {
		r.Fetch(0x1000 + i*4)
	}
	data := r.Compact()
	if ratio := float64(len(data)) / float64(4*r.Len()); ratio > 0.01 {
		t.Fatalf("sequential-fetch ratio = %.4f, want <= 0.01 (%d bytes for %d refs)", ratio, len(data), r.Len())
	}
}

func TestDecompactRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("JTR"),
		[]byte("XXXX\x01"),
		[]byte("JTR2\x02"),          // unsupported version
		[]byte("JTR2\x01\xff\xff"),  // torn annotation length
		append([]byte("JTR2\x01\x00"), 0xff), // torn total
	}
	for i, data := range cases {
		if _, err := Decompact(data); err == nil {
			t.Errorf("case %d: Decompact accepted garbage", i)
		}
	}
}

// TestDecompactTornTail truncates a valid compact stream at every
// length: every prefix but the full one must fail cleanly (no panic, no
// silent short decode).
func TestDecompactTornTail(t *testing.T) {
	rec := record(randomRefs(3, 5000))
	data := rec.CompactAnnotated([]byte("meta"))
	for cut := 0; cut < len(data); cut++ {
		if _, err := Decompact(data[:cut]); err == nil {
			t.Fatalf("torn tail at %d/%d decoded without error", cut, len(data))
		}
	}
	if _, err := Decompact(data); err != nil {
		t.Fatalf("full stream failed: %v", err)
	}
	// Trailing junk after the final chunk is ignored by Decompact's
	// reader (the header's reference count bounds the stream), so a
	// range-fetched prefix of a longer object still decodes — but a
	// *corrupt* tail inside the counted chunks must not.
}

func TestReaderNextEOF(t *testing.T) {
	rec := record(randomRefs(9, 100))
	rd, err := NewReader(bytes.NewReader(rec.Compact()))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		c, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n += len(c)
	}
	if n != rec.Len() {
		t.Fatalf("streamed %d refs, want %d", n, rec.Len())
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("Next after EOF = %v, want io.EOF", err)
	}
}

func TestCompactEmptyRecording(t *testing.T) {
	rec := &Recording{}
	got, err := Decompact(rec.Compact())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("Len = %d, want 0", got.Len())
	}
}
