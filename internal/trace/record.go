package trace

import (
	"context"
	"errors"

	"jmtam/internal/cache"
	"jmtam/internal/mem"
	"jmtam/internal/obs"
)

// Reference kinds in a recorded trace.
type Kind uint8

// The three reference kinds the execution engine produces.
const (
	KindFetch Kind = 0
	KindRead  Kind = 1
	KindWrite Kind = 2
)

// Packed-word layout: the kind occupies the top two bits, the
// word-aligned byte address (shifted right by two) the low thirty.
// Every address the engine produces is word-aligned (package mem traps
// unaligned data access and instruction addresses are word-indexed), so
// the two dropped bits are always zero and any 32-bit address
// round-trips exactly.
const (
	kindShift = 30
	addrMask  = 1<<kindShift - 1
)

// Encode packs one reference into a trace word.
func Encode(k Kind, addr uint32) uint32 {
	return uint32(k)<<kindShift | (addr >> 2 & addrMask)
}

// Decode unpacks a trace word.
func Decode(w uint32) (Kind, uint32) {
	return Kind(w >> kindShift), w << 2 & (addrMask << 2)
}

// chunkWords sizes the recording's append buffers: 64K references
// (256 KB) per chunk keeps growth allocation-free in the simulator's
// hot loop while bounding slack to one chunk.
const chunkWords = 1 << 16

// Recording is a compact in-memory reference trace. It implements
// machine.Tracer, so a simulation records its stream by running with a
// Recording attached; Replay then streams the recording through a cache
// pair. Recording once and replaying per geometry turns the N-geometry
// fan-out into N independent, parallelizable passes instead of N
// synchronous Access calls per reference inside the simulator loop.
//
// Each reference costs four bytes ({kind:2, addr:30} packed words in
// chunked append-only buffers); Counts are accumulated at record time
// exactly as Collector does, so a Recording is a drop-in source for the
// §3.1 reference-class statistics.
type Recording struct {
	Counts
	full [][]uint32 // completed chunks
	tail []uint32   // active chunk, cap chunkWords
}

func (r *Recording) push(k Kind, addr uint32) {
	r.pushWord(Encode(k, addr))
}

// pushWord appends one already-packed trace word, maintaining the
// standard chunk layout. Counts are the caller's responsibility.
func (r *Recording) pushWord(w uint32) {
	if len(r.tail) == cap(r.tail) {
		if r.tail != nil {
			r.full = append(r.full, r.tail)
		}
		r.tail = make([]uint32, 0, chunkWords)
	}
	r.tail = append(r.tail, w)
}

// Fetch records an instruction fetch.
func (r *Recording) Fetch(addr uint32) {
	r.Fetches[mem.Classify(addr)]++
	r.push(KindFetch, addr)
}

// Read records a data read.
func (r *Recording) Read(addr uint32) {
	r.Reads[mem.Classify(addr)]++
	r.push(KindRead, addr)
}

// Write records a data write.
func (r *Recording) Write(addr uint32) {
	r.Writes[mem.Classify(addr)]++
	r.push(KindWrite, addr)
}

// Len returns the number of recorded references.
func (r *Recording) Len() int {
	n := len(r.tail)
	for _, c := range r.full {
		n += len(c)
	}
	return n
}

// Bytes returns the recording's approximate memory footprint.
func (r *Recording) Bytes() int {
	n := cap(r.tail)
	for _, c := range r.full {
		n += cap(c)
	}
	return 4 * n
}

// chunks returns the recording's chunk list, tail included, without
// mutating the receiver.
func (r *Recording) chunks() [][]uint32 {
	if len(r.tail) == 0 {
		return r.full
	}
	return append(r.full[:len(r.full):len(r.full)], r.tail)
}

// Do streams every recorded reference, in order, to fn.
func (r *Recording) Do(fn func(k Kind, addr uint32)) {
	for _, c := range r.chunks() {
		for _, w := range c {
			fn(Decode(w))
		}
	}
}

// replayBlockWords sizes the replay kernel's partition buffers: 4K
// references (16 KB of packed words, at most 32 KB of partitioned
// output) stay resident in L1 while a whole geometry group consumes
// them.
const replayBlockWords = 1 << 12

// Replay streams the recording through one cache pair: fetches probe the
// instruction cache, reads and writes the data cache — exactly the
// accesses Collector issues inline. Replaying into a fresh pair yields
// statistics identical to having attached that pair during simulation.
func (r *Recording) Replay(p Pair) {
	r.ReplayAll([]Pair{p})
}

// ReplayAll streams the recording through any number of cache pairs in
// one pass: each block of packed words is decoded once and partitioned
// into an instruction-fetch stream and a data stream (write flag in bit
// 0), then every resident pair's I and D caches consume the partitions
// while they are hot in L1. Per-pair statistics are identical to len(p)
// independent Replay passes — the stream just isn't re-read and
// re-decoded per geometry.
func (r *Recording) ReplayAll(pairs []Pair) {
	r.replayAll(nil, pairs)
}

// ReplayAllContext is ReplayAll with cooperative cancellation, checked
// between chunks (every 64K references per resident pair). On
// cancellation the pairs' statistics are partial and must be discarded.
func (r *Recording) ReplayAllContext(ctx context.Context, pairs []Pair) error {
	done := ctx.Done()
	if done == nil {
		r.replayAll(nil, pairs)
		return nil
	}
	if err := r.replayAll(done, pairs); err != nil {
		return ctx.Err()
	}
	return nil
}

var errCancelled = errors.New("trace: replay cancelled")

func (r *Recording) replayAll(done <-chan struct{}, pairs []Pair) error {
	if len(pairs) == 0 {
		return nil
	}
	var (
		fetch = make([]uint32, 0, replayBlockWords)
		data  = make([]uint32, 0, replayBlockWords)
	)
	for _, c := range r.chunks() {
		if done != nil {
			select {
			case <-done:
				return errCancelled
			default:
			}
		}
		fetch, data = replayChunk(c, pairs, fetch, data)
	}
	return nil
}

// replayChunk partitions one packed chunk block-by-block and drives
// every resident pair's I and D caches while each block is hot in L1.
// It is the shared kernel of Recording.ReplayAll and Reader.ReplayAll;
// fetch and data are reusable scratch buffers, returned for reuse.
func replayChunk(c []uint32, pairs []Pair, fetch, data []uint32) ([]uint32, []uint32) {
	for off := 0; off < len(c); off += replayBlockWords {
		end := off + replayBlockWords
		if end > len(c) {
			end = len(c)
		}
		fetch, data = partition(c[off:end], fetch[:0], data[:0])
		for _, p := range pairs {
			// The I-cache only ever sees this read-only fetch
			// stream, so the no-dirty-state kernel applies.
			p.I.AccessBatchFetch(fetch)
			p.D.AccessBatch(data)
		}
	}
	return fetch, data
}

// partition decodes one block of packed trace words into the
// instruction-fetch address stream and the data stream. Data references
// carry the write flag in bit 0 (addresses are word-aligned, so the bit
// is free); KindWrite is 2 and KindRead 1, so kind>>1 is that flag.
func partition(block []uint32, fetch, data []uint32) ([]uint32, []uint32) {
	for _, w := range block {
		k := w >> kindShift
		addr := w << 2 & (addrMask << 2)
		if k == uint32(KindFetch) {
			fetch = append(fetch, addr)
		} else {
			data = append(data, addr|k>>1)
		}
	}
	return fetch, data
}

// ReplayPair builds a fresh pair of the given geometry and replays the
// recording through it.
func (r *Recording) ReplayPair(cfg cache.Config) (Pair, error) {
	p, err := NewPair(cfg)
	if err != nil {
		return Pair{}, err
	}
	r.Replay(p)
	return p, nil
}

// MissCounts attributes cache misses by cause: fetch misses and data
// read/write misses, each split by the §3.1 reference class of the
// missing address.
type MissCounts struct {
	Fetch [mem.NumClasses]uint64
	Read  [mem.NumClasses]uint64
	Write [mem.NumClasses]uint64
}

// Total returns all misses across kinds and classes.
func (mc *MissCounts) Total() uint64 {
	var t uint64
	for c := 0; c < int(mem.NumClasses); c++ {
		t += mc.Fetch[c] + mc.Read[c] + mc.Write[c]
	}
	return t
}

// ReplayObserved replays the recording through p like Replay while
// classifying every miss by reference kind and class. The cache
// statistics it leaves in p are identical to Replay's; the returned
// attribution feeds the observability registry's per-cause miss
// counters.
func (r *Recording) ReplayObserved(p Pair) MissCounts {
	var mc MissCounts
	ic, dc := p.I, p.D
	for _, c := range r.chunks() {
		replayObservedChunk(c, ic, dc, &mc)
	}
	return mc
}

// replayObservedChunk is the direct chunk loop shared by ReplayObserved
// and ReplayAllObserved: no per-reference closure, misses classified in
// place.
func replayObservedChunk(c []uint32, ic, dc *cache.Cache, mc *MissCounts) {
	for _, w := range c {
		addr := w << 2 & (addrMask << 2)
		switch Kind(w >> kindShift) {
		case KindFetch:
			if !ic.Access(addr, false) {
				mc.Fetch[mem.Classify(addr)]++
			}
		case KindRead:
			if !dc.Access(addr, false) {
				mc.Read[mem.Classify(addr)]++
			}
		default:
			if !dc.Access(addr, true) {
				mc.Write[mem.Classify(addr)]++
			}
		}
	}
}

// ReplayAllObserved is ReplayAll with per-pair miss attribution: every
// pair's statistics and MissCounts are identical to len(pairs)
// independent ReplayObserved passes, but the packed stream is read once
// and each chunk stays cache-hot while every resident pair consumes it.
func (r *Recording) ReplayAllObserved(pairs []Pair) []MissCounts {
	mcs := make([]MissCounts, len(pairs))
	for _, c := range r.chunks() {
		for i, p := range pairs {
			replayObservedChunk(c, p.I, p.D, &mcs[i])
		}
	}
	return mcs
}

// AddTo folds the attribution into an observability registry under
// cache.miss.{fetch,read,write}.<class>, prefixed by label when label is
// non-empty (e.g. "8K/4-way/64B: cache.miss.fetch.sys-code").
func (mc *MissCounts) AddTo(r *obs.Registry, label string) {
	pre := ""
	if label != "" {
		pre = label + ": "
	}
	for c := mem.Class(0); c < mem.NumClasses; c++ {
		if n := mc.Fetch[c]; n != 0 {
			r.Counter(pre + "cache.miss.fetch." + c.String()).Add(n)
		}
		if n := mc.Read[c]; n != 0 {
			r.Counter(pre + "cache.miss.read." + c.String()).Add(n)
		}
		if n := mc.Write[c]; n != 0 {
			r.Counter(pre + "cache.miss.write." + c.String()).Add(n)
		}
	}
}

// ReplaySampled replays the recording through p like Replay while
// sampling miss density: after every `every` instruction fetches, emit
// receives the cumulative fetch count and the I- and D-cache miss
// deltas accumulated since the previous sample; a final partial sample
// flushes any remainder. The cache statistics left in p are identical
// to Replay's.
func (r *Recording) ReplaySampled(p Pair, every int, emit func(instrs, iMisses, dMisses uint64)) {
	if every <= 0 {
		every = 1000
	}
	ic, dc := p.I, p.D
	var fetches, iMiss, dMiss uint64
	next := uint64(every)
	for _, c := range r.chunks() {
		for _, w := range c {
			addr := w << 2 & (addrMask << 2)
			switch Kind(w >> kindShift) {
			case KindFetch:
				if !ic.Access(addr, false) {
					iMiss++
				}
				fetches++
				if fetches >= next {
					emit(fetches, iMiss, dMiss)
					iMiss, dMiss = 0, 0
					next += uint64(every)
				}
			case KindRead:
				if !dc.Access(addr, false) {
					dMiss++
				}
			default:
				if !dc.Access(addr, true) {
					dMiss++
				}
			}
		}
	}
	if iMiss != 0 || dMiss != 0 {
		emit(fetches, iMiss, dMiss)
	}
}

// MissDensityTrack replays the recording through a fresh cache pair of
// the given geometry and exports I- and D-cache miss counter tracks
// onto b's pid timeline, one sample per `every` instructions (1000 when
// every <= 0). Timestamps are cumulative instruction counts — the same
// clock as the machine's scheduler spans — so conflict-miss bursts line
// up with the quantum and inlet spans they occur inside. Returns the
// replayed pair for its aggregate statistics.
func (r *Recording) MissDensityTrack(b *obs.EventBuffer, pid int32, cfg cache.Config, every int) (Pair, error) {
	p, err := NewPair(cfg)
	if err != nil {
		return Pair{}, err
	}
	r.ReplaySampled(p, every, func(instrs, iMiss, dMiss uint64) {
		b.Counter("I-miss density", "miss-density", pid, instrs, "misses", iMiss)
		b.Counter("D-miss density", "miss-density", pid, instrs, "misses", dMiss)
	})
	return p, nil
}

// MissDensityTrackLabeled is MissDensityTrack with a label prefixed to
// the counter-track names, so a second reference stream on the same pid
// (e.g. a NIC engine's share under an offload backend) gets its own
// pair of tracks ("nic.I-miss density") instead of colliding with the
// compute-side tracks.
func (r *Recording) MissDensityTrackLabeled(b *obs.EventBuffer, pid int32, cfg cache.Config, every int, label string) (Pair, error) {
	p, err := NewPair(cfg)
	if err != nil {
		return Pair{}, err
	}
	r.ReplaySampled(p, every, func(instrs, iMiss, dMiss uint64) {
		b.Counter(label+"I-miss density", "miss-density", pid, instrs, "misses", iMiss)
		b.Counter(label+"D-miss density", "miss-density", pid, instrs, "misses", dMiss)
	})
	return p, nil
}
