package trace

import (
	"testing"

	"jmtam/internal/cache"
	"jmtam/internal/mem"
)

func TestClassifiedCounting(t *testing.T) {
	var c Collector
	c.Fetch(mem.SysCodeBase)
	c.Fetch(mem.UserCodeBase)
	c.Fetch(mem.UserCodeBase + 4)
	c.Read(mem.SysDataBase)
	c.Read(mem.HeapBase)
	c.Write(mem.FrameBase)
	if c.Fetches[mem.ClassSysCode] != 1 || c.Fetches[mem.ClassUserCode] != 2 {
		t.Errorf("fetch classification wrong: %v", c.Fetches)
	}
	if c.Reads[mem.ClassSysData] != 1 || c.Reads[mem.ClassUserData] != 1 {
		t.Errorf("read classification wrong: %v", c.Reads)
	}
	if c.Writes[mem.ClassUserData] != 1 {
		t.Errorf("write classification wrong: %v", c.Writes)
	}
	if c.TotalFetches() != 3 || c.TotalReads() != 2 || c.TotalWrites() != 1 {
		t.Error("totals wrong")
	}
}

func TestFanOut(t *testing.T) {
	var c Collector
	p1, err := c.AddPair(cache.Config{SizeBytes: 1024, BlockBytes: 64, Assoc: 1})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.AddPair(cache.Config{SizeBytes: 8192, BlockBytes: 64, Assoc: 4})
	if err != nil {
		t.Fatal(err)
	}
	c.Fetch(mem.UserCodeBase)
	c.Read(mem.HeapBase)
	c.Write(mem.HeapBase + 4)
	// Both pairs see every reference.
	for i, p := range []Pair{p1, p2} {
		if p.I.Stats().Accesses != 1 {
			t.Errorf("pair %d: I accesses = %d", i, p.I.Stats().Accesses)
		}
		if p.D.Stats().Accesses != 2 {
			t.Errorf("pair %d: D accesses = %d", i, p.D.Stats().Accesses)
		}
	}
	// The write hit the block just read: one D miss, no writeback yet.
	if p1.D.Stats().Misses != 1 {
		t.Errorf("D misses = %d, want 1", p1.D.Stats().Misses)
	}
	if p1.Misses() != 2 { // 1 I + 1 D
		t.Errorf("pair misses = %d, want 2", p1.Misses())
	}
	if p1.Writebacks() != 0 {
		t.Errorf("writebacks = %d, want 0", p1.Writebacks())
	}
}

func TestCycles(t *testing.T) {
	var c Collector
	if _, err := c.AddPair(cache.Config{SizeBytes: 64, BlockBytes: 64, Assoc: 1}); err != nil {
		t.Fatal(err)
	}
	c.Fetch(mem.UserCodeBase) // I miss
	c.Write(mem.HeapBase)     // D miss, dirty
	c.Read(mem.HeapBase + 64) // D miss, evicts dirty -> writeback
	// 3 instructions? No: fetches = 1. cycles = fetches + penalty*misses.
	got := c.Cycles(0, 10, false)
	want := uint64(1 + 10*3)
	if got != want {
		t.Errorf("cycles = %d, want %d", got, want)
	}
	gotWB := c.Cycles(0, 10, true)
	if gotWB != want+10 {
		t.Errorf("cycles with writebacks = %d, want %d", gotWB, want+10)
	}
}

func TestAddPairRejectsBadGeometry(t *testing.T) {
	var c Collector
	if _, err := c.AddPair(cache.Config{SizeBytes: 100, BlockBytes: 64, Assoc: 1}); err == nil {
		t.Error("bad geometry accepted")
	}
	if _, err := NewPair(cache.Config{SizeBytes: 100, BlockBytes: 64, Assoc: 1}); err == nil {
		t.Error("NewPair accepted bad geometry")
	}
}
