package trace

import (
	"testing"

	"jmtam/internal/cache"
	"jmtam/internal/mem"
)

// benchRecording synthesizes a recording shaped like the simulator's
// output: a fetch per instruction over loopy code, data reads with
// reuse, and a write every few instructions.
func benchRecording(n int) *Recording {
	rec := &Recording{}
	for i := uint32(0); rec.Len() < n; i++ {
		rec.Fetch(mem.UserCodeBase + 4*(i%2048))
		rec.Read(mem.HeapBase + 64*(i%512))
		if i%3 == 0 {
			rec.Write(mem.FrameBase + 4*(i%1024))
		}
	}
	return rec
}

// table2Geoms mirrors the default sweep grid: 8 sizes x 3 ways.
func table2Geoms() []cache.Config {
	var geoms []cache.Config
	for _, kb := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		for _, a := range []int{1, 2, 4} {
			geoms = append(geoms, cache.Config{SizeBytes: kb * 1024, BlockBytes: 64, Assoc: a})
		}
	}
	return geoms
}

// BenchmarkReplay measures the single-geometry replay path.
func BenchmarkReplay(b *testing.B) {
	rec := benchRecording(1 << 20)
	b.SetBytes(int64(rec.Len()) * 4)
	for i := 0; i < b.N; i++ {
		p, err := NewPair(cache.Config{SizeBytes: 8192, BlockBytes: 64, Assoc: 4})
		if err != nil {
			b.Fatal(err)
		}
		rec.Replay(p)
	}
}

// BenchmarkReplayAll measures the vectorized kernel over the full
// Table-2 grid: one pass over the stream drives all 24 geometries.
func BenchmarkReplayAll(b *testing.B) {
	rec := benchRecording(1 << 20)
	geoms := table2Geoms()
	b.SetBytes(int64(rec.Len()) * 4 * int64(len(geoms)))
	for i := 0; i < b.N; i++ {
		pairs := make([]Pair, len(geoms))
		for j, g := range geoms {
			p, err := NewPair(g)
			if err != nil {
				b.Fatal(err)
			}
			pairs[j] = p
		}
		rec.ReplayAll(pairs)
	}
}
