package trace

import (
	"testing"

	"jmtam/internal/cache"
	"jmtam/internal/mem"
	"jmtam/internal/obs"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	addrs := []uint32{
		0, 4, 64, mem.UserCodeBase, mem.SysDataBase, mem.HeapBase,
		mem.TopOfMemory - 4,
		1<<31 - 4,   // highest address below the sign bit
		0x8000_0000, // sign bit set
		0xFFFF_FFFC, // 30-bit boundary: addr>>2 == 0x3FFF_FFFF
		0x5555_5554, // alternating bits, word-aligned
	}
	for _, k := range []Kind{KindFetch, KindRead, KindWrite} {
		for _, a := range addrs {
			w := Encode(k, a)
			gk, ga := Decode(w)
			if gk != k || ga != a {
				t.Errorf("Encode(%d, %#x) -> Decode = (%d, %#x)", k, a, gk, ga)
			}
		}
	}
}

func TestRecordingCountsMatchCollector(t *testing.T) {
	var rec Recording
	var col Collector
	for i := uint32(0); i < 100; i++ {
		for _, tr := range []machineTracer{&rec, &col} {
			tr.Fetch(mem.UserCodeBase + 4*i)
			tr.Read(mem.HeapBase + 4*i)
			tr.Write(mem.FrameBase + 4*i)
			tr.Read(mem.SysDataBase + 4*(i%8))
		}
	}
	if rec.Counts != col.Counts {
		t.Errorf("recording counts %+v != collector counts %+v", rec.Counts, col.Counts)
	}
	if rec.Len() != 400 {
		t.Errorf("Len = %d, want 400", rec.Len())
	}
}

// machineTracer mirrors machine.Tracer without importing the package.
type machineTracer interface {
	Fetch(uint32)
	Read(uint32)
	Write(uint32)
}

func TestRecordingChunkRollover(t *testing.T) {
	var rec Recording
	n := chunkWords*2 + 17
	for i := 0; i < n; i++ {
		rec.Read(uint32(4 * i))
	}
	if rec.Len() != n {
		t.Fatalf("Len = %d, want %d", rec.Len(), n)
	}
	if rec.Bytes() < 4*n {
		t.Errorf("Bytes = %d, below payload %d", rec.Bytes(), 4*n)
	}
	i := 0
	rec.Do(func(k Kind, addr uint32) {
		if k != KindRead || addr != uint32(4*i) {
			t.Fatalf("ref %d = (%d, %#x), want (KindRead, %#x)", i, k, addr, 4*i)
		}
		i++
	})
	if i != n {
		t.Errorf("Do visited %d refs, want %d", i, n)
	}
}

// TestReplayMatchesInlineFanOut drives an identical synthetic stream
// through an inline Collector pair and a record/replay pass, and
// requires identical cache statistics.
func TestReplayMatchesInlineFanOut(t *testing.T) {
	cfgs := []cache.Config{
		{SizeBytes: 1024, BlockBytes: 64, Assoc: 1},
		{SizeBytes: 8192, BlockBytes: 8, Assoc: 4},
	}
	var col Collector
	for _, cfg := range cfgs {
		if _, err := col.AddPair(cfg); err != nil {
			t.Fatal(err)
		}
	}
	var rec Recording
	emit := func(tr machineTracer) {
		// A stream with reuse, conflict misses and dirty evictions.
		for i := uint32(0); i < 3000; i++ {
			tr.Fetch(mem.UserCodeBase + 4*(i%700))
			tr.Read(mem.HeapBase + 64*(i%50))
			if i%3 == 0 {
				tr.Write(mem.FrameBase + 64*(i%90))
			}
			if i%7 == 0 {
				tr.Read(mem.HeapBase + 1024*i%0x10000)
			}
		}
	}
	emit(&col)
	emit(&rec)
	for i, cfg := range cfgs {
		p, err := rec.ReplayPair(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := col.Pairs[i]
		if p.I.Stats() != want.I.Stats() {
			t.Errorf("%v: replayed I stats %+v != inline %+v", cfg, p.I.Stats(), want.I.Stats())
		}
		if p.D.Stats() != want.D.Stats() {
			t.Errorf("%v: replayed D stats %+v != inline %+v", cfg, p.D.Stats(), want.D.Stats())
		}
	}
	if rec.Counts != col.Counts {
		t.Errorf("counts diverged: %+v vs %+v", rec.Counts, col.Counts)
	}
}

// TestReplayAllMatchesReplay drives the vectorized multi-pair kernel
// and N independent single-pair replays over the same recording and
// requires identical statistics for every pair.
func TestReplayAllMatchesReplay(t *testing.T) {
	var rec Recording
	// Cross several chunk and replay-block boundaries.
	n := uint32(chunkWords + replayBlockWords + 123)
	for i := uint32(0); i < n; i++ {
		rec.Fetch(mem.UserCodeBase + 4*(i%3000))
		rec.Read(mem.HeapBase + 64*(i%777))
		if i%4 == 0 {
			rec.Write(mem.FrameBase + 64*(i%222))
		}
	}
	cfgs := []cache.Config{
		{SizeBytes: 1024, BlockBytes: 64, Assoc: 1},
		{SizeBytes: 2048, BlockBytes: 32, Assoc: 2},
		{SizeBytes: 8192, BlockBytes: 64, Assoc: 4},
		{SizeBytes: 8192, BlockBytes: 64, Assoc: 8},
	}
	pairs := make([]Pair, len(cfgs))
	for i, cfg := range cfgs {
		p, err := NewPair(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pairs[i] = p
	}
	rec.ReplayAll(pairs)
	for i, cfg := range cfgs {
		want, err := rec.ReplayPair(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if pairs[i].I.Stats() != want.I.Stats() {
			t.Errorf("%v: ReplayAll I stats %+v != Replay %+v", cfg, pairs[i].I.Stats(), want.I.Stats())
		}
		if pairs[i].D.Stats() != want.D.Stats() {
			t.Errorf("%v: ReplayAll D stats %+v != Replay %+v", cfg, pairs[i].D.Stats(), want.D.Stats())
		}
	}
}

func TestReplayPairRejectsBadGeometry(t *testing.T) {
	var rec Recording
	rec.Read(mem.HeapBase)
	if _, err := rec.ReplayPair(cache.Config{SizeBytes: 100, BlockBytes: 64, Assoc: 1}); err == nil {
		t.Error("bad geometry accepted")
	}
}

func TestReplaySampledMatchesReplay(t *testing.T) {
	var rec Recording
	for i := uint32(0); i < 5000; i++ {
		rec.Fetch(mem.UserCodeBase + 4*(i%700))
		rec.Read(mem.HeapBase + 4*(i%900))
		if i%3 == 0 {
			rec.Write(mem.FrameBase + 4*(i%500))
		}
	}
	cfg := cache.Config{SizeBytes: 1024, BlockBytes: 64, Assoc: 1}
	want, err := rec.ReplayPair(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewPair(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var samples int
	var iSum, dSum, lastInstr uint64
	rec.ReplaySampled(got, 1000, func(instrs, iMiss, dMiss uint64) {
		samples++
		iSum += iMiss
		dSum += dMiss
		if instrs < lastInstr {
			t.Errorf("sample timestamps not monotone: %d after %d", instrs, lastInstr)
		}
		lastInstr = instrs
	})
	if got.I.Stats() != want.I.Stats() || got.D.Stats() != want.D.Stats() {
		t.Errorf("sampled replay stats differ: I %+v vs %+v, D %+v vs %+v",
			got.I.Stats(), want.I.Stats(), got.D.Stats(), want.D.Stats())
	}
	if iSum != want.I.Stats().Misses || dSum != want.D.Stats().Misses {
		t.Errorf("sample sums (%d, %d) != total misses (%d, %d)",
			iSum, dSum, want.I.Stats().Misses, want.D.Stats().Misses)
	}
	if samples < 5 {
		t.Errorf("only %d samples for 5000 fetches at every=1000", samples)
	}
}

func TestMissDensityTrackEmitsCounters(t *testing.T) {
	var rec Recording
	for i := uint32(0); i < 3000; i++ {
		rec.Fetch(mem.UserCodeBase + 4*(i%700))
		rec.Read(mem.HeapBase + 4*(i%900))
	}
	b := obs.NewEventBuffer()
	cfg := cache.Config{SizeBytes: 1024, BlockBytes: 64, Assoc: 1}
	p, err := rec.MissDensityTrack(b, 3, cfg, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if p.Misses() == 0 {
		t.Fatal("no misses; test data too small")
	}
	var counters int
	for _, e := range b.Events() {
		if e.Ph != obs.PhCounter {
			t.Errorf("unexpected phase %c", e.Ph)
			continue
		}
		if e.Pid != 3 {
			t.Errorf("pid = %d, want 3", e.Pid)
		}
		counters++
	}
	// Two series (I and D) per sample, 3 full samples for 3000 fetches.
	if counters != 6 {
		t.Errorf("got %d counter events, want 6", counters)
	}
}
