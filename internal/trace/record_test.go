package trace

import (
	"testing"

	"jmtam/internal/cache"
	"jmtam/internal/mem"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	addrs := []uint32{
		0, 4, 64, mem.UserCodeBase, mem.SysDataBase, mem.HeapBase,
		mem.TopOfMemory - 4,
		1<<31 - 4,   // highest address below the sign bit
		0x8000_0000, // sign bit set
		0xFFFF_FFFC, // 30-bit boundary: addr>>2 == 0x3FFF_FFFF
		0x5555_5554, // alternating bits, word-aligned
	}
	for _, k := range []Kind{KindFetch, KindRead, KindWrite} {
		for _, a := range addrs {
			w := Encode(k, a)
			gk, ga := Decode(w)
			if gk != k || ga != a {
				t.Errorf("Encode(%d, %#x) -> Decode = (%d, %#x)", k, a, gk, ga)
			}
		}
	}
}

func TestRecordingCountsMatchCollector(t *testing.T) {
	var rec Recording
	var col Collector
	for i := uint32(0); i < 100; i++ {
		for _, tr := range []machineTracer{&rec, &col} {
			tr.Fetch(mem.UserCodeBase + 4*i)
			tr.Read(mem.HeapBase + 4*i)
			tr.Write(mem.FrameBase + 4*i)
			tr.Read(mem.SysDataBase + 4*(i%8))
		}
	}
	if rec.Counts != col.Counts {
		t.Errorf("recording counts %+v != collector counts %+v", rec.Counts, col.Counts)
	}
	if rec.Len() != 400 {
		t.Errorf("Len = %d, want 400", rec.Len())
	}
}

// machineTracer mirrors machine.Tracer without importing the package.
type machineTracer interface {
	Fetch(uint32)
	Read(uint32)
	Write(uint32)
}

func TestRecordingChunkRollover(t *testing.T) {
	var rec Recording
	n := chunkWords*2 + 17
	for i := 0; i < n; i++ {
		rec.Read(uint32(4 * i))
	}
	if rec.Len() != n {
		t.Fatalf("Len = %d, want %d", rec.Len(), n)
	}
	if rec.Bytes() < 4*n {
		t.Errorf("Bytes = %d, below payload %d", rec.Bytes(), 4*n)
	}
	i := 0
	rec.Do(func(k Kind, addr uint32) {
		if k != KindRead || addr != uint32(4*i) {
			t.Fatalf("ref %d = (%d, %#x), want (KindRead, %#x)", i, k, addr, 4*i)
		}
		i++
	})
	if i != n {
		t.Errorf("Do visited %d refs, want %d", i, n)
	}
}

// TestReplayMatchesInlineFanOut drives an identical synthetic stream
// through an inline Collector pair and a record/replay pass, and
// requires identical cache statistics.
func TestReplayMatchesInlineFanOut(t *testing.T) {
	cfgs := []cache.Config{
		{SizeBytes: 1024, BlockBytes: 64, Assoc: 1},
		{SizeBytes: 8192, BlockBytes: 8, Assoc: 4},
	}
	var col Collector
	for _, cfg := range cfgs {
		if _, err := col.AddPair(cfg); err != nil {
			t.Fatal(err)
		}
	}
	var rec Recording
	emit := func(tr machineTracer) {
		// A stream with reuse, conflict misses and dirty evictions.
		for i := uint32(0); i < 3000; i++ {
			tr.Fetch(mem.UserCodeBase + 4*(i%700))
			tr.Read(mem.HeapBase + 64*(i%50))
			if i%3 == 0 {
				tr.Write(mem.FrameBase + 64*(i%90))
			}
			if i%7 == 0 {
				tr.Read(mem.HeapBase + 1024*i%0x10000)
			}
		}
	}
	emit(&col)
	emit(&rec)
	for i, cfg := range cfgs {
		p, err := rec.ReplayPair(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := col.Pairs[i]
		if p.I.Stats() != want.I.Stats() {
			t.Errorf("%v: replayed I stats %+v != inline %+v", cfg, p.I.Stats(), want.I.Stats())
		}
		if p.D.Stats() != want.D.Stats() {
			t.Errorf("%v: replayed D stats %+v != inline %+v", cfg, p.D.Stats(), want.D.Stats())
		}
	}
	if rec.Counts != col.Counts {
		t.Errorf("counts diverged: %+v vs %+v", rec.Counts, col.Counts)
	}
}

func TestReplayPairRejectsBadGeometry(t *testing.T) {
	var rec Recording
	rec.Read(mem.HeapBase)
	if _, err := rec.ReplayPair(cache.Config{SizeBytes: 100, BlockBytes: 64, Assoc: 1}); err == nil {
		t.Error("bad geometry accepted")
	}
}
