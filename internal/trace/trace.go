// Package trace consumes the execution engine's reference stream.
//
// A Collector counts fetches, reads and writes by reference class
// (system/user x code/data, the paper's §3.1 classification) and fans
// every reference out to any number of cache pairs, so one simulation
// pass evaluates every cache geometry in the study simultaneously.
//
// A Recording instead captures the stream once — packed {kind:2,
// addr:30} words, four bytes per reference — and replays it through
// cache pairs afterwards, turning the geometry fan-out into independent
// passes that a worker pool can run concurrently. Replay is
// bit-equivalent to the inline Collector fan-out.
package trace

import (
	"jmtam/internal/cache"
	"jmtam/internal/mem"
)

// Counts aggregates reference counts by class.
type Counts struct {
	Fetches [mem.NumClasses]uint64
	Reads   [mem.NumClasses]uint64
	Writes  [mem.NumClasses]uint64
}

// TotalFetches returns instruction fetches across classes.
func (c *Counts) TotalFetches() uint64 {
	var t uint64
	for _, v := range c.Fetches {
		t += v
	}
	return t
}

// TotalReads returns data reads across classes.
func (c *Counts) TotalReads() uint64 {
	var t uint64
	for _, v := range c.Reads {
		t += v
	}
	return t
}

// TotalWrites returns data writes across classes.
func (c *Counts) TotalWrites() uint64 {
	var t uint64
	for _, v := range c.Writes {
		t += v
	}
	return t
}

// Pair is a matched instruction/data cache pair of one geometry, as in
// the paper's "separate data and instruction caches".
type Pair struct {
	I *cache.Cache
	D *cache.Cache
}

// NewPair builds an I/D pair sharing one geometry.
func NewPair(cfg cache.Config) (Pair, error) {
	ic, err := cache.New(cfg)
	if err != nil {
		return Pair{}, err
	}
	dc, err := cache.New(cfg)
	if err != nil {
		return Pair{}, err
	}
	return Pair{I: ic, D: dc}, nil
}

// Misses returns combined I+D misses for the pair.
func (p Pair) Misses() uint64 { return p.I.Stats().Misses + p.D.Stats().Misses }

// Writebacks returns the data cache's writeback count (instruction caches
// are read-only and never write back).
func (p Pair) Writebacks() uint64 { return p.D.Stats().Writebacks }

// Collector implements machine.Tracer. The zero value counts references;
// attach cache pairs with AddPair.
type Collector struct {
	Counts
	Pairs []Pair
}

// AddPair attaches a cache pair of the given geometry.
func (c *Collector) AddPair(cfg cache.Config) (Pair, error) {
	p, err := NewPair(cfg)
	if err != nil {
		return Pair{}, err
	}
	c.Pairs = append(c.Pairs, p)
	return p, nil
}

// Fetch records an instruction fetch.
func (c *Collector) Fetch(addr uint32) {
	c.Fetches[mem.Classify(addr)]++
	for i := range c.Pairs {
		c.Pairs[i].I.Access(addr, false)
	}
}

// Read records a data read.
func (c *Collector) Read(addr uint32) {
	c.Reads[mem.Classify(addr)]++
	for i := range c.Pairs {
		c.Pairs[i].D.Access(addr, false)
	}
}

// Write records a data write.
func (c *Collector) Write(addr uint32) {
	c.Writes[mem.Classify(addr)]++
	for i := range c.Pairs {
		c.Pairs[i].D.Access(addr, true)
	}
}

// Cycles returns total execution cycles for the pair at index i under the
// given miss penalty: one cycle per instruction plus penalty cycles per
// I- or D-miss. When countWritebacks is true, dirty evictions also cost a
// memory transaction.
func (c *Collector) Cycles(i int, missPenalty int, countWritebacks bool) uint64 {
	p := c.Pairs[i]
	cycles := c.TotalFetches() + uint64(missPenalty)*p.Misses()
	if countWritebacks {
		cycles += uint64(missPenalty) * p.Writebacks()
	}
	return cycles
}
