package trace

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzCompactRoundTrip interprets the fuzz input as a (kind, addr)
// reference stream, compacts it, and asserts the decoded stream is
// identical — refs, counts, and lengths.
func FuzzCompactRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x10, 0x00, 0x00, 0x00})
	// A run of sequential fetches followed by a data burst.
	seed := make([]byte, 0, 64)
	for i := 0; i < 8; i++ {
		seed = append(seed, 0)
		seed = binary.LittleEndian.AppendUint32(seed, uint32(0x1000+i*4))
	}
	for i := 0; i < 4; i++ {
		seed = append(seed, byte(1+i%2))
		seed = binary.LittleEndian.AppendUint32(seed, uint32(0x40_0000+i*8))
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		rec := &Recording{}
		for len(data) >= 5 {
			k := Kind(data[0] % 3)
			addr := binary.LittleEndian.Uint32(data[1:5]) &^ 3
			switch k {
			case KindFetch:
				rec.Fetch(addr)
			case KindRead:
				rec.Read(addr)
			default:
				rec.Write(addr)
			}
			data = data[5:]
		}
		compacted := rec.Compact()
		got, err := Decompact(compacted)
		if err != nil {
			t.Fatalf("Decompact: %v", err)
		}
		if got.Len() != rec.Len() || got.Counts != rec.Counts {
			t.Fatalf("Len/Counts mismatch: %d/%v vs %d/%v", got.Len(), got.Counts, rec.Len(), rec.Counts)
		}
		type ref struct {
			k    Kind
			addr uint32
		}
		var want, have []ref
		rec.Do(func(k Kind, a uint32) { want = append(want, ref{k, a}) })
		got.Do(func(k Kind, a uint32) { have = append(have, ref{k, a}) })
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("ref %d: %+v vs %+v", i, have[i], want[i])
			}
		}
	})
}

// FuzzDecompact feeds arbitrary bytes to the decoder: it must never
// panic or over-allocate, and anything it accepts must re-compact to a
// decodable stream of the same length.
func FuzzDecompact(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("JTR2\x01\x00\x00"))
	rec := &Recording{}
	for i := uint32(0); i < 1000; i++ {
		rec.Fetch(0x1000 + i*4)
		if i%7 == 0 {
			rec.Read(0x80_0000 + i*16)
		}
	}
	f.Add(rec.CompactAnnotated([]byte(`{"p":"x"}`)))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decompact(data)
		if err != nil {
			return
		}
		again, err := Decompact(got.Compact())
		if err != nil {
			t.Fatalf("re-decode of accepted input failed: %v", err)
		}
		if again.Len() != got.Len() || again.Counts != got.Counts {
			t.Fatalf("unstable round-trip: %d vs %d", again.Len(), got.Len())
		}
	})
}

// FuzzReaderChunks checks that the streaming Reader yields exactly the
// same word sequence as the materialized decode, regardless of where the
// input's chunk boundaries fall.
func FuzzReaderChunks(f *testing.F) {
	f.Add(uint64(1), 10)
	f.Add(uint64(2), chunkWords)
	f.Add(uint64(3), chunkWords+1)
	f.Fuzz(func(t *testing.T, seed uint64, n int) {
		if n < 0 || n > 3*chunkWords {
			return
		}
		rec := record(randomRefs(seed, n))
		data := rec.Compact()
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		var streamed []uint32
		if err := rd.Do(func(k Kind, a uint32) { streamed = append(streamed, Encode(k, a)) }); err != nil {
			t.Fatal(err)
		}
		var direct []uint32
		rec.Do(func(k Kind, a uint32) { direct = append(direct, Encode(k, a)) })
		if len(streamed) != len(direct) {
			t.Fatalf("streamed %d words, want %d", len(streamed), len(direct))
		}
		for i := range direct {
			if streamed[i] != direct[i] {
				t.Fatalf("word %d: %#x vs %#x", i, streamed[i], direct[i])
			}
		}
	})
}
