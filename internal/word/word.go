// Package word defines the tagged machine word used throughout the
// simulator. The J-Machine's Message-Driven Processor uses 36-bit tagged
// words; we model a word as a tag plus a 64-bit integer or float payload.
// Tags distinguish ordinary data from pointers and carry the I-structure
// presence states (empty / present / deferred) used for split-phase
// synchronization.
package word

import "fmt"

// Tag classifies the payload of a Word.
type Tag uint8

// Word tags. Empty and Deferred implement I-structure presence bits:
// a heap cell is Empty until written, may become Deferred while readers
// wait, and is Present once its value has arrived.
const (
	TagInt   Tag = iota // signed integer payload in I
	TagFloat            // floating-point payload in F
	TagPtr              // address payload in I
	TagEmpty            // I-structure slot not yet written
	TagDefer            // I-structure slot with a deferred-reader chain (head in I)
	TagNil              // uninitialized memory
)

// String returns a short mnemonic for the tag.
func (t Tag) String() string {
	switch t {
	case TagInt:
		return "int"
	case TagFloat:
		return "float"
	case TagPtr:
		return "ptr"
	case TagEmpty:
		return "empty"
	case TagDefer:
		return "defer"
	case TagNil:
		return "nil"
	}
	return fmt.Sprintf("tag(%d)", uint8(t))
}

// Word is one tagged machine word. The zero value is a TagInt zero, which
// makes zeroed memory segments behave like cleared RAM.
type Word struct {
	Tag Tag
	I   int64
	F   float64
}

// Int returns a Word holding the integer v.
func Int(v int64) Word { return Word{Tag: TagInt, I: v} }

// Float returns a Word holding the float v.
func Float(v float64) Word { return Word{Tag: TagFloat, F: v} }

// Ptr returns a Word holding the address a.
func Ptr(a uint32) Word { return Word{Tag: TagPtr, I: int64(a)} }

// Empty returns an I-structure empty marker.
func Empty() Word { return Word{Tag: TagEmpty} }

// Deferred returns an I-structure deferred marker whose payload points at
// the head of the deferred-reader chain.
func Deferred(head uint32) Word { return Word{Tag: TagDefer, I: int64(head)} }

// Addr interprets the word as an address. It accepts both TagPtr and
// TagInt payloads because address arithmetic produces integers.
func (w Word) Addr() uint32 { return uint32(w.I) }

// AsInt returns the integer view of the word, truncating floats.
func (w Word) AsInt() int64 {
	if w.Tag == TagFloat {
		return int64(w.F)
	}
	return w.I
}

// AsFloat returns the floating-point view of the word, widening integers.
func (w Word) AsFloat() float64 {
	if w.Tag == TagFloat {
		return w.F
	}
	return float64(w.I)
}

// IsPresent reports whether an I-structure slot holds a value.
func (w Word) IsPresent() bool { return w.Tag != TagEmpty && w.Tag != TagDefer && w.Tag != TagNil }

// String formats the word for diagnostics.
func (w Word) String() string {
	switch w.Tag {
	case TagInt:
		return fmt.Sprintf("%d", w.I)
	case TagFloat:
		return fmt.Sprintf("%g", w.F)
	case TagPtr:
		return fmt.Sprintf("@%#x", uint32(w.I))
	case TagEmpty:
		return "<empty>"
	case TagDefer:
		return fmt.Sprintf("<defer @%#x>", uint32(w.I))
	}
	return "<nil>"
}
