package word

import (
	"testing"
	"testing/quick"
)

func TestConstructors(t *testing.T) {
	cases := []struct {
		w    Word
		tag  Tag
		i    int64
		f    float64
		pres bool
	}{
		{Int(42), TagInt, 42, 42, true},
		{Int(-7), TagInt, -7, -7, true},
		{Float(2.5), TagFloat, 2, 2.5, true},
		{Ptr(0x1000), TagPtr, 0x1000, 4096, true},
		{Empty(), TagEmpty, 0, 0, false},
		{Deferred(0x2000), TagDefer, 0x2000, 8192, false},
	}
	for _, c := range cases {
		if c.w.Tag != c.tag {
			t.Errorf("%v: tag = %v, want %v", c.w, c.w.Tag, c.tag)
		}
		if got := c.w.AsInt(); got != c.i {
			t.Errorf("%v: AsInt = %d, want %d", c.w, got, c.i)
		}
		if got := c.w.AsFloat(); got != c.f {
			t.Errorf("%v: AsFloat = %g, want %g", c.w, got, c.f)
		}
		if got := c.w.IsPresent(); got != c.pres {
			t.Errorf("%v: IsPresent = %v, want %v", c.w, got, c.pres)
		}
	}
}

func TestZeroValueIsIntZero(t *testing.T) {
	var w Word
	if w.Tag != TagInt || w.AsInt() != 0 {
		t.Errorf("zero Word = %v, want int 0", w)
	}
	if !w.IsPresent() {
		t.Error("zero Word should read as present data (cleared RAM)")
	}
}

func TestIntRoundTrip(t *testing.T) {
	f := func(v int64) bool { return Int(v).AsInt() == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		w := Float(v)
		return w.AsFloat() == v || (v != v && w.AsFloat() != w.AsFloat()) // NaN
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPtrRoundTrip(t *testing.T) {
	f := func(a uint32) bool { return Ptr(a).Addr() == a }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTagStrings(t *testing.T) {
	for tag, want := range map[Tag]string{
		TagInt: "int", TagFloat: "float", TagPtr: "ptr",
		TagEmpty: "empty", TagDefer: "defer", TagNil: "nil", Tag(99): "tag(99)",
	} {
		if got := tag.String(); got != want {
			t.Errorf("Tag(%d).String() = %q, want %q", tag, got, want)
		}
	}
}

func TestWordStrings(t *testing.T) {
	for w, want := range map[Word]string{
		Int(5):        "5",
		Float(1.5):    "1.5",
		Ptr(16):       "@0x10",
		Empty():       "<empty>",
		Deferred(32):  "<defer @0x20>",
		{Tag: TagNil}: "<nil>",
	} {
		if got := w.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
