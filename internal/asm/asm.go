// Package asm provides a programmatic assembler for the simulated
// machine's instruction set.
//
// Code is assembled into segments (system code and user code) with
// byte-addressed labels and forward references. The runtime backends in
// internal/core use it to emit both the TAM system code (scheduler, post
// routine, I-structure and frame-allocation handlers) and the per-program
// inlets and threads, so instruction counts and instruction-cache
// behaviour of the two implementations arise from real code layout.
package asm

import (
	"fmt"
	"sort"
	"strings"

	"jmtam/internal/isa"
	"jmtam/internal/mem"
)

// Segment assembles instructions into a contiguous code region starting
// at Base. The zero value is not usable; construct with NewSegment.
type Segment struct {
	Name string
	Base uint32

	code    []isa.Instr
	labels  map[string]uint32
	fixups  []fixup
	pending isa.MarkKind
	limit   uint32
}

type fixup struct {
	index int
	label string
}

// NewSegment returns an empty segment named name based at base, refusing
// to grow beyond limit bytes.
func NewSegment(name string, base, limit uint32) *Segment {
	return &Segment{Name: name, Base: base, labels: make(map[string]uint32), limit: limit}
}

// NewSys returns a segment covering the system-code region.
func NewSys() *Segment { return NewSegment("sys", mem.SysCodeBase, mem.UserCodeBase-mem.SysCodeBase) }

// NewUser returns a segment covering the user-code region.
func NewUser() *Segment {
	return NewSegment("user", mem.UserCodeBase, mem.SysDataBase-mem.UserCodeBase)
}

// PC returns the byte address of the next instruction to be emitted.
func (s *Segment) PC() uint32 { return s.Base + uint32(len(s.code))*mem.WordBytes }

// Len returns the number of instructions assembled so far.
func (s *Segment) Len() int { return len(s.code) }

// Code returns the assembled instruction slice. Call Finish first.
func (s *Segment) Code() []isa.Instr { return s.code }

// Label defines name at the current PC and returns its address. Defining
// the same label twice panics: label names are expected to be generated
// uniquely by the runtime code generators.
func (s *Segment) Label(name string) uint32 {
	if _, dup := s.labels[name]; dup {
		panic(fmt.Sprintf("asm: duplicate label %q in segment %s", name, s.Name))
	}
	addr := s.PC()
	s.labels[name] = addr
	return addr
}

// Addr returns the address of a defined label, panicking if undefined.
func (s *Segment) Addr(name string) uint32 {
	a, ok := s.labels[name]
	if !ok {
		panic(fmt.Sprintf("asm: undefined label %q in segment %s", name, s.Name))
	}
	return a
}

// Mark attaches a statistics annotation to the next emitted instruction.
func (s *Segment) Mark(k isa.MarkKind) { s.pending = k }

func (s *Segment) emit(i isa.Instr) {
	if uint32(len(s.code)+1)*mem.WordBytes > s.limit {
		panic(fmt.Sprintf("asm: segment %s overflow", s.Name))
	}
	if s.pending != isa.MarkNone {
		i.Mark = s.pending
		s.pending = isa.MarkNone
	}
	s.code = append(s.code, i)
}

func (s *Segment) emitRef(i isa.Instr, label string) {
	if addr, ok := s.labels[label]; ok {
		patch(&i, addr)
		s.emit(i)
		return
	}
	s.emit(i)
	s.fixups = append(s.fixups, fixup{index: len(s.code) - 1, label: label})
}

// patch writes a resolved label address into the field the opcode
// actually consumes: MOVA and SENDWA carry addresses in Imm, control
// transfers in Target.
func patch(i *isa.Instr, addr uint32) {
	switch i.Op {
	case isa.OpMovA, isa.OpSendWA:
		i.Imm = int64(addr)
	default:
		i.Target = addr
	}
}

// Finish resolves all forward references. It must be called once after
// assembly; it returns an error listing any unresolved labels.
func (s *Segment) Finish() error {
	var missing []string
	for _, f := range s.fixups {
		addr, ok := s.labels[f.label]
		if !ok {
			missing = append(missing, f.label)
			continue
		}
		patch(&s.code[f.index], addr)
	}
	s.fixups = nil
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("asm: segment %s: unresolved labels: %s", s.Name, strings.Join(missing, ", "))
	}
	return nil
}

// PopLast removes the most recently emitted instruction (and any fixup
// referring to it), supporting peephole edits such as deleting a branch
// that turned out to be a fall-through. It refuses — returning false —
// when a label has been defined at or past the instruction, since
// deleting it would retarget the label.
func (s *Segment) PopLast() bool {
	if len(s.code) == 0 {
		return false
	}
	last := len(s.code) - 1
	for _, addr := range s.labels {
		if addr >= s.Base+uint32(last)*mem.WordBytes {
			return false
		}
	}
	for i := len(s.fixups) - 1; i >= 0; i-- {
		if s.fixups[i].index == last {
			s.fixups = append(s.fixups[:i], s.fixups[i+1:]...)
		}
	}
	s.code = s.code[:last]
	return true
}

// --- Emitters -------------------------------------------------------------

// Nop emits a no-op.
func (s *Segment) Nop() { s.emit(isa.Instr{Op: isa.OpNop}) }

// MovI emits Rd <- int(imm).
func (s *Segment) MovI(rd uint8, imm int64) { s.emit(isa.Instr{Op: isa.OpMovI, Rd: rd, Imm: imm}) }

// MovA emits Rd <- ptr(addr).
func (s *Segment) MovA(rd uint8, addr uint32) {
	s.emit(isa.Instr{Op: isa.OpMovA, Rd: rd, Imm: int64(addr)})
}

// MovALabel emits Rd <- ptr(label), resolving the label at Finish time.
// The label address is carried in Target and copied to the immediate.
func (s *Segment) MovALabel(rd uint8, label string) {
	s.emitRef(isa.Instr{Op: isa.OpMovA, Rd: rd, Imm: -1}, label)
}

// MovF emits Rd <- float(f).
func (s *Segment) MovF(rd uint8, f float64) { s.emit(isa.Instr{Op: isa.OpMovF, Rd: rd, FImm: f}) }

// Mov emits Rd <- Ra.
func (s *Segment) Mov(rd, ra uint8) { s.emit(isa.Instr{Op: isa.OpMov, Rd: rd, Ra: ra}) }

// LEA emits Rd <- ptr(Ra + off).
func (s *Segment) LEA(rd, ra uint8, off int64) {
	s.emit(isa.Instr{Op: isa.OpLEA, Rd: rd, Ra: ra, Imm: off})
}

// LD emits Rd <- mem[Ra + off].
func (s *Segment) LD(rd, ra uint8, off int64) {
	s.emit(isa.Instr{Op: isa.OpLD, Rd: rd, Ra: ra, Imm: off})
}

// ST emits mem[Ra + off] <- Rb.
func (s *Segment) ST(ra uint8, off int64, rb uint8) {
	s.emit(isa.Instr{Op: isa.OpST, Ra: ra, Rb: rb, Imm: off})
}

// LDPre emits Ra -= 4; Rd <- mem[Ra] (pre-decrement pop).
func (s *Segment) LDPre(rd, ra uint8) {
	s.emit(isa.Instr{Op: isa.OpLDPre, Rd: rd, Ra: ra})
}

// STPost emits mem[Ra] <- Rb; Ra += 4 (post-increment push).
func (s *Segment) STPost(ra, rb uint8) {
	s.emit(isa.Instr{Op: isa.OpSTPost, Ra: ra, Rb: rb})
}

// LDAbs emits Rd <- mem[addr] using absolute addressing (base RZ).
func (s *Segment) LDAbs(rd uint8, addr uint32) { s.LD(rd, isa.RZ, int64(addr)) }

// STAbs emits mem[addr] <- Rb using absolute addressing.
func (s *Segment) STAbs(addr uint32, rb uint8) { s.ST(isa.RZ, int64(addr), rb) }

func (s *Segment) alu3(op isa.Op, rd, ra, rb uint8) {
	s.emit(isa.Instr{Op: op, Rd: rd, Ra: ra, Rb: rb})
}

func (s *Segment) aluI(op isa.Op, rd, ra uint8, imm int64) {
	s.emit(isa.Instr{Op: op, Rd: rd, Ra: ra, Imm: imm})
}

// Add emits Rd <- Ra + Rb; the remaining three-register ALU emitters
// follow the same shape.
func (s *Segment) Add(rd, ra, rb uint8)  { s.alu3(isa.OpAdd, rd, ra, rb) }
func (s *Segment) Sub(rd, ra, rb uint8)  { s.alu3(isa.OpSub, rd, ra, rb) }
func (s *Segment) Mul(rd, ra, rb uint8)  { s.alu3(isa.OpMul, rd, ra, rb) }
func (s *Segment) Div(rd, ra, rb uint8)  { s.alu3(isa.OpDiv, rd, ra, rb) }
func (s *Segment) Mod(rd, ra, rb uint8)  { s.alu3(isa.OpMod, rd, ra, rb) }
func (s *Segment) And(rd, ra, rb uint8)  { s.alu3(isa.OpAnd, rd, ra, rb) }
func (s *Segment) Or(rd, ra, rb uint8)   { s.alu3(isa.OpOr, rd, ra, rb) }
func (s *Segment) Xor(rd, ra, rb uint8)  { s.alu3(isa.OpXor, rd, ra, rb) }
func (s *Segment) Shl(rd, ra, rb uint8)  { s.alu3(isa.OpShl, rd, ra, rb) }
func (s *Segment) Shr(rd, ra, rb uint8)  { s.alu3(isa.OpShr, rd, ra, rb) }
func (s *Segment) FAdd(rd, ra, rb uint8) { s.alu3(isa.OpFAdd, rd, ra, rb) }
func (s *Segment) FSub(rd, ra, rb uint8) { s.alu3(isa.OpFSub, rd, ra, rb) }
func (s *Segment) FMul(rd, ra, rb uint8) { s.alu3(isa.OpFMul, rd, ra, rb) }
func (s *Segment) FDiv(rd, ra, rb uint8) { s.alu3(isa.OpFDiv, rd, ra, rb) }

// AddI emits Rd <- Ra + imm; the remaining register-immediate ALU
// emitters follow the same shape.
func (s *Segment) AddI(rd, ra uint8, imm int64) { s.aluI(isa.OpAddI, rd, ra, imm) }
func (s *Segment) SubI(rd, ra uint8, imm int64) { s.aluI(isa.OpSubI, rd, ra, imm) }
func (s *Segment) MulI(rd, ra uint8, imm int64) { s.aluI(isa.OpMulI, rd, ra, imm) }
func (s *Segment) AndI(rd, ra uint8, imm int64) { s.aluI(isa.OpAndI, rd, ra, imm) }
func (s *Segment) ShlI(rd, ra uint8, imm int64) { s.aluI(isa.OpShlI, rd, ra, imm) }
func (s *Segment) ShrI(rd, ra uint8, imm int64) { s.aluI(isa.OpShrI, rd, ra, imm) }

// FNeg emits Rd <- -Ra.
func (s *Segment) FNeg(rd, ra uint8) { s.emit(isa.Instr{Op: isa.OpFNeg, Rd: rd, Ra: ra}) }

// IToF emits Rd <- float(Ra).
func (s *Segment) IToF(rd, ra uint8) { s.emit(isa.Instr{Op: isa.OpIToF, Rd: rd, Ra: ra}) }

// FToI emits Rd <- int(Ra).
func (s *Segment) FToI(rd, ra uint8) { s.emit(isa.Instr{Op: isa.OpFToI, Rd: rd, Ra: ra}) }

// BR emits an unconditional branch to label.
func (s *Segment) BR(label string) { s.emitRef(isa.Instr{Op: isa.OpBR}, label) }

// BRA emits an unconditional branch to an absolute address (possibly in
// another segment).
func (s *Segment) BRA(addr uint32) { s.emit(isa.Instr{Op: isa.OpBR, Target: addr}) }

// JMP emits an indirect jump through Ra.
func (s *Segment) JMP(ra uint8) { s.emit(isa.Instr{Op: isa.OpJMP, Ra: ra}) }

// JAL emits a jump-and-link to label, leaving the return address in Rd.
func (s *Segment) JAL(rd uint8, label string) { s.emitRef(isa.Instr{Op: isa.OpJAL, Rd: rd}, label) }

// JALA emits a jump-and-link to an absolute address.
func (s *Segment) JALA(rd uint8, addr uint32) {
	s.emit(isa.Instr{Op: isa.OpJAL, Rd: rd, Target: addr})
}

func (s *Segment) branch2(op isa.Op, ra, rb uint8, label string) {
	s.emitRef(isa.Instr{Op: op, Ra: ra, Rb: rb}, label)
}

// BEQ emits if Ra == Rb goto label; the remaining compare-branch emitters
// follow the same shape.
func (s *Segment) BEQ(ra, rb uint8, label string)  { s.branch2(isa.OpBEQ, ra, rb, label) }
func (s *Segment) BNE(ra, rb uint8, label string)  { s.branch2(isa.OpBNE, ra, rb, label) }
func (s *Segment) BLT(ra, rb uint8, label string)  { s.branch2(isa.OpBLT, ra, rb, label) }
func (s *Segment) BLE(ra, rb uint8, label string)  { s.branch2(isa.OpBLE, ra, rb, label) }
func (s *Segment) BGT(ra, rb uint8, label string)  { s.branch2(isa.OpBGT, ra, rb, label) }
func (s *Segment) BGE(ra, rb uint8, label string)  { s.branch2(isa.OpBGE, ra, rb, label) }
func (s *Segment) FBLT(ra, rb uint8, label string) { s.branch2(isa.OpFBLT, ra, rb, label) }
func (s *Segment) FBLE(ra, rb uint8, label string) { s.branch2(isa.OpFBLE, ra, rb, label) }

// BZ emits if Ra == 0 goto label.
func (s *Segment) BZ(ra uint8, label string) { s.emitRef(isa.Instr{Op: isa.OpBZ, Ra: ra}, label) }

// BNZ emits if Ra != 0 goto label.
func (s *Segment) BNZ(ra uint8, label string) { s.emitRef(isa.Instr{Op: isa.OpBNZ, Ra: ra}, label) }

// BTag emits if tag(Ra) == t goto label.
func (s *Segment) BTag(ra uint8, t uint8, label string) {
	s.emitRef(isa.Instr{Op: isa.OpBTag, Ra: ra, Imm: int64(t)}, label)
}

// MsgI begins a message destined for priority pri (0 or 1).
func (s *Segment) MsgI(pri int64) { s.emit(isa.Instr{Op: isa.OpMsgI, Imm: pri}) }

// MsgR begins a message destined for the priority held in Ra.
func (s *Segment) MsgR(ra uint8) { s.emit(isa.Instr{Op: isa.OpMsgR, Ra: ra}) }

// MsgDest directs the current message to the node held in Ra.
func (s *Segment) MsgDest(ra uint8) { s.emit(isa.Instr{Op: isa.OpMsgDest, Ra: ra}) }

// SendW appends register Ra to the current message.
func (s *Segment) SendW(ra uint8) { s.emit(isa.Instr{Op: isa.OpSendW, Ra: ra}) }

// SendWI appends int(imm) to the current message.
func (s *Segment) SendWI(imm int64) { s.emit(isa.Instr{Op: isa.OpSendWI, Imm: imm}) }

// SendWA appends ptr(addr) to the current message.
func (s *Segment) SendWA(addr uint32) { s.emit(isa.Instr{Op: isa.OpSendWA, Imm: int64(addr)}) }

// SendWALabel appends ptr(label), resolving the label at Finish time.
func (s *Segment) SendWALabel(label string) {
	s.emitRef(isa.Instr{Op: isa.OpSendWA, Imm: -1}, label)
}

// SendE delivers the current message.
func (s *Segment) SendE() { s.emit(isa.Instr{Op: isa.OpSendE}) }

// EI enables low-priority interrupts.
func (s *Segment) EI() { s.emit(isa.Instr{Op: isa.OpEI}) }

// DI disables low-priority interrupts.
func (s *Segment) DI() { s.emit(isa.Instr{Op: isa.OpDI}) }

// Suspend ends the current task.
func (s *Segment) Suspend() { s.emit(isa.Instr{Op: isa.OpSuspend}) }

// Wait emits the idle-poll instruction used by the AM scheduler loop.
func (s *Segment) Wait() { s.emit(isa.Instr{Op: isa.OpWait}) }

// Halt stops the simulation.
func (s *Segment) Halt() { s.emit(isa.Instr{Op: isa.OpHalt}) }

// Trap emits a runtime error with the given code.
func (s *Segment) Trap(code int64) { s.emit(isa.Instr{Op: isa.OpTrap, Imm: code}) }

// MyNode emits Rd <- int(local node number) — the MDP's network node
// register. On a uniprocessor it reads zero.
func (s *Segment) MyNode(rd uint8) { s.emit(isa.Instr{Op: isa.OpNode, Rd: rd}) }

// TagSet emits Rd <- Ra with its tag forced to t.
func (s *Segment) TagSet(rd, ra, t uint8) {
	s.emit(isa.Instr{Op: isa.OpTagSet, Rd: rd, Ra: ra, Imm: int64(t)})
}

// TagGet emits Rd <- int(tag(Ra)).
func (s *Segment) TagGet(rd, ra uint8) { s.emit(isa.Instr{Op: isa.OpTagGet, Rd: rd, Ra: ra}) }

// Dump renders a disassembly listing with label annotations.
func (s *Segment) Dump() string {
	byAddr := make(map[uint32][]string)
	for name, addr := range s.labels {
		byAddr[addr] = append(byAddr[addr], name)
	}
	var b strings.Builder
	for i, ins := range s.code {
		addr := s.Base + uint32(i)*mem.WordBytes
		if names := byAddr[addr]; names != nil {
			sort.Strings(names)
			for _, n := range names {
				fmt.Fprintf(&b, "%s:\n", n)
			}
		}
		fmt.Fprintf(&b, "  %08x  %s\n", addr, ins)
	}
	return b.String()
}
