package asm

import (
	"strings"
	"testing"

	"jmtam/internal/isa"
	"jmtam/internal/mem"
)

func TestLabelsAndPC(t *testing.T) {
	s := NewUser()
	if s.PC() != mem.UserCodeBase {
		t.Fatalf("initial PC = %#x", s.PC())
	}
	a := s.Label("start")
	s.Nop()
	s.Nop()
	b := s.Label("two")
	if a != mem.UserCodeBase || b != mem.UserCodeBase+8 {
		t.Errorf("labels at %#x, %#x", a, b)
	}
	if s.Addr("two") != b {
		t.Error("Addr lookup wrong")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestForwardReference(t *testing.T) {
	s := NewSys()
	s.BR("later")
	s.MovALabel(0, "later")
	s.SendWALabel("later") // needs a message context at run time, not at asm time
	addr := s.Label("later")
	s.Nop()
	if err := s.Finish(); err != nil {
		t.Fatal(err)
	}
	code := s.Code()
	if code[0].Target != addr {
		t.Errorf("BR target = %#x, want %#x", code[0].Target, addr)
	}
	if uint32(code[1].Imm) != addr {
		t.Errorf("MOVA imm = %#x, want %#x", code[1].Imm, addr)
	}
	if uint32(code[2].Imm) != addr {
		t.Errorf("SENDWA imm = %#x, want %#x", code[2].Imm, addr)
	}
}

func TestBackwardReference(t *testing.T) {
	s := NewSys()
	addr := s.Label("loop")
	s.Nop()
	s.BR("loop")
	if err := s.Finish(); err != nil {
		t.Fatal(err)
	}
	if s.Code()[1].Target != addr {
		t.Error("backward reference not resolved at emit time")
	}
}

func TestUnresolvedLabel(t *testing.T) {
	s := NewSys()
	s.BR("nowhere")
	s.BZ(0, "alsonowhere")
	err := s.Finish()
	if err == nil {
		t.Fatal("Finish accepted unresolved labels")
	}
	for _, want := range []string{"nowhere", "alsonowhere"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

func TestDuplicateLabelPanics(t *testing.T) {
	s := NewSys()
	s.Label("x")
	defer func() {
		if recover() == nil {
			t.Error("duplicate label did not panic")
		}
	}()
	s.Label("x")
}

func TestMarkAttachesToNext(t *testing.T) {
	s := NewSys()
	s.Nop()
	s.Mark(isa.MarkThreadStart)
	s.MovI(0, 1)
	s.Nop()
	code := s.Code()
	if code[0].Mark != isa.MarkNone || code[2].Mark != isa.MarkNone {
		t.Error("mark leaked to the wrong instruction")
	}
	if code[1].Mark != isa.MarkThreadStart {
		t.Error("mark not attached to the next instruction")
	}
}

func TestPopLast(t *testing.T) {
	s := NewSys()
	s.Nop()
	s.BR("target")
	if !s.PopLast() {
		t.Fatal("PopLast refused")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d after PopLast", s.Len())
	}
	s.Label("target")
	s.Nop()
	if err := s.Finish(); err != nil {
		t.Errorf("dangling fixup survived PopLast: %v", err)
	}
}

func TestPopLastRefusesLabelled(t *testing.T) {
	s := NewSys()
	s.Nop()
	s.Label("here")
	s.Nop()
	if s.PopLast() {
		t.Error("PopLast removed a labelled instruction")
	}
	s2 := NewSys()
	if s2.PopLast() {
		t.Error("PopLast succeeded on empty segment")
	}
}

func TestSegmentOverflowPanics(t *testing.T) {
	s := NewSegment("tiny", 0, 8)
	s.Nop()
	s.Nop()
	defer func() {
		if recover() == nil {
			t.Error("segment overflow did not panic")
		}
	}()
	s.Nop()
}

func TestDump(t *testing.T) {
	s := NewUser()
	s.Label("entry")
	s.MovI(1, 5)
	s.Label("exit")
	s.Suspend()
	d := s.Dump()
	for _, want := range []string{"entry:", "exit:", "movi r1, 5", "suspend"} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q:\n%s", want, d)
		}
	}
}

func TestAddrPanicsOnUndefined(t *testing.T) {
	s := NewSys()
	defer func() {
		if recover() == nil {
			t.Error("Addr on undefined label did not panic")
		}
	}()
	s.Addr("ghost")
}

func TestEmitterCoverage(t *testing.T) {
	// Exercise every emitter once and confirm opcode assignment.
	s := NewSys()
	s.Nop()
	s.MovI(0, 1)
	s.MovA(0, 4)
	s.MovF(0, 1)
	s.Mov(0, 1)
	s.LEA(0, 1, 2)
	s.LD(0, 1, 0)
	s.ST(1, 0, 2)
	s.LDPre(0, 1)
	s.STPost(1, 0)
	s.LDAbs(0, 4)
	s.STAbs(4, 0)
	s.Add(0, 1, 2)
	s.Sub(0, 1, 2)
	s.Mul(0, 1, 2)
	s.Div(0, 1, 2)
	s.Mod(0, 1, 2)
	s.And(0, 1, 2)
	s.Or(0, 1, 2)
	s.Xor(0, 1, 2)
	s.Shl(0, 1, 2)
	s.Shr(0, 1, 2)
	s.AddI(0, 1, 2)
	s.SubI(0, 1, 2)
	s.MulI(0, 1, 2)
	s.AndI(0, 1, 2)
	s.ShlI(0, 1, 2)
	s.ShrI(0, 1, 2)
	s.FAdd(0, 1, 2)
	s.FSub(0, 1, 2)
	s.FMul(0, 1, 2)
	s.FDiv(0, 1, 2)
	s.FNeg(0, 1)
	s.IToF(0, 1)
	s.FToI(0, 1)
	s.JMP(1)
	s.TagSet(0, 1, 2)
	s.TagGet(0, 1)
	s.MsgI(0)
	s.MsgR(1)
	s.MsgDest(1)
	s.SendW(1)
	s.SendWI(2)
	s.SendWA(4)
	s.SendE()
	s.EI()
	s.DI()
	s.Suspend()
	s.Wait()
	s.Halt()
	s.Trap(3)
	s.BRA(0)
	s.JALA(7, 0)
	want := []isa.Op{
		isa.OpNop, isa.OpMovI, isa.OpMovA, isa.OpMovF, isa.OpMov, isa.OpLEA,
		isa.OpLD, isa.OpST, isa.OpLDPre, isa.OpSTPost, isa.OpLD, isa.OpST,
		isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpMod, isa.OpAnd,
		isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr,
		isa.OpAddI, isa.OpSubI, isa.OpMulI, isa.OpAndI, isa.OpShlI, isa.OpShrI,
		isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFDiv, isa.OpFNeg,
		isa.OpIToF, isa.OpFToI, isa.OpJMP, isa.OpTagSet, isa.OpTagGet,
		isa.OpMsgI, isa.OpMsgR, isa.OpMsgDest, isa.OpSendW, isa.OpSendWI,
		isa.OpSendWA, isa.OpSendE, isa.OpEI, isa.OpDI, isa.OpSuspend,
		isa.OpWait, isa.OpHalt, isa.OpTrap, isa.OpBR, isa.OpJAL,
	}
	code := s.Code()
	if len(code) != len(want) {
		t.Fatalf("emitted %d instructions, want %d", len(code), len(want))
	}
	for i, op := range want {
		if code[i].Op != op {
			t.Errorf("instruction %d: op = %v, want %v", i, code[i].Op, op)
		}
	}
}
