package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// mustAppend writes one synced record, failing the test on error.
func mustAppend(t *testing.T, j *journal, rec journalRecord) {
	t.Helper()
	if err := j.append(rec); err != nil {
		t.Fatal(err)
	}
}

func unitRec(id string, idx int, payload string) journalRecord {
	return journalRecord{Op: "unit", ID: id, Unit: &unitCheckpoint{Idx: idx, Result: json.RawMessage(payload)}}
}

// TestFoldJournalInterleaved: two jobs' records interleaved in one
// file fold independently — checkpoints land on the right job and
// terminal state on the right job.
func TestFoldJournalInterleaved(t *testing.T) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, rec := range []journalRecord{
		{Op: "accept", ID: "s-1", Kind: "sweep", Req: json.RawMessage(`{"a":1}`)},
		{Op: "accept", ID: "s-2", Kind: "sweep", Req: json.RawMessage(`{"a":2}`)},
		{Op: "start", ID: "s-1"},
		unitRec("s-2", 0, `{"u":20}`),
		unitRec("s-1", 1, `{"u":11}`),
		{Op: "start", ID: "s-2"},
		unitRec("s-1", 0, `{"u":10}`),
		{Op: "done", ID: "s-2", Result: json.RawMessage(`{"r":2}`)},
	} {
		if err := enc.Encode(rec); err != nil {
			t.Fatal(err)
		}
	}
	jobs, skipped := foldJournal(buf.Bytes())
	if skipped != 0 {
		t.Fatalf("skipped = %d, want 0", skipped)
	}
	if len(jobs) != 2 || jobs[0].ID != "s-1" || jobs[1].ID != "s-2" {
		t.Fatalf("jobs = %+v", jobs)
	}
	j1, j2 := jobs[0], jobs[1]
	if j1.State != StateRunning || len(j1.Units) != 2 ||
		string(j1.Units[0]) != `{"u":10}` || string(j1.Units[1]) != `{"u":11}` {
		t.Fatalf("s-1 folded wrong: state=%s units=%v", j1.State, j1.Units)
	}
	if j2.State != StateDone || string(j2.Result) != `{"r":2}` || len(j2.Units) != 1 {
		t.Fatalf("s-2 folded wrong: state=%s result=%s", j2.State, j2.Result)
	}
}

// TestFoldJournalSkipsMidFileCorruption: a corrupt line in the middle
// of the file — a bad sector, not a torn tail — must not discard the
// intact records after it; only an unparseable final line ends replay.
func TestFoldJournalSkipsMidFileCorruption(t *testing.T) {
	lines := [][]byte{
		[]byte(`{"op":"accept","id":"r-1","kind":"run","req":{}}`),
		[]byte(`{"op":"start","id":"r-1"`), // corrupt mid-file: skipped
		[]byte(`{"op":"done","id":"r-1","result":{"ok":true}}`),
		[]byte(`{"op":"accept","id":"r-2","kind":"run","req":{}}`),
	}
	jobs, skipped := foldJournal(bytes.Join(lines, []byte("\n")))
	if skipped != 1 {
		t.Fatalf("skipped = %d, want 1", skipped)
	}
	if len(jobs) != 2 || jobs[0].State != StateDone || jobs[1].State != StateQueued {
		t.Fatalf("jobs = %+v", jobs)
	}

	// Corrupt bytes as the *final* line are a torn tail: replay stops
	// there and nothing is counted as skipped.
	intact := [][]byte{lines[0], lines[2]}
	torn := append(bytes.Join(intact, []byte("\n")), []byte("\n{\"op\":\"accept\",\"id\":\"r-9")...)
	jobs, skipped = foldJournal(torn)
	if skipped != 0 {
		t.Fatalf("torn tail counted as skipped (%d)", skipped)
	}
	if len(jobs) != 1 || jobs[0].State != StateDone {
		t.Fatalf("torn-tail jobs = %+v", jobs)
	}
}

// TestJournalDegradedMode: when appends start failing the journal
// reports degraded (the /readyz signal) and recovers on the next
// successful append.
func TestJournalDegradedMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.ndjson")
	j, _, _, err := openJournal(path, -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, journalRecord{Op: "accept", ID: "r-1", Kind: "run"})
	if j.degraded() {
		t.Fatal("degraded after a successful append")
	}
	// Close the fd out from under the journal: the next append fails.
	j.f.Close()
	if err := j.append(journalRecord{Op: "start", ID: "r-1"}); err == nil {
		t.Fatal("append on a closed journal succeeded")
	}
	if !j.degraded() {
		t.Fatal("append failure did not degrade the journal")
	}
	// Recovery: restore a working fd and the next append clears it.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	j.f = f
	mustAppend(t, j, journalRecord{Op: "start", ID: "r-1"})
	if j.degraded() {
		t.Fatal("successful append did not clear degraded")
	}
	j.close()
}

// normalizeForReplay reduces a folded job to the state recovery
// actually uses: terminal jobs are restored from State/Result/Error
// alone (their request and checkpoints are never re-run), so
// compaction legitimately drops those fields when folding to a snap.
func normalizeForReplay(jobs []*journalJob) []*journalJob {
	out := make([]*journalJob, len(jobs))
	for i, j := range jobs {
		c := *j
		if c.State.Terminal() {
			c.Req = nil
			c.Units = nil
		}
		out[i] = &c
	}
	return out
}

// TestJournalCompactionRoundTrip is the compaction contract: replaying
// the compacted file yields the same recovery state as replaying the
// original — terminal jobs keep their results, live jobs keep their
// request and every unit checkpoint.
func TestJournalCompactionRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.ndjson")
	j, _, _, err := openJournal(path, -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, journalRecord{Op: "accept", ID: "s-1", Kind: "sweep", Tenant: "alice", Req: json.RawMessage(`{"a":1}`)})
	mustAppend(t, j, journalRecord{Op: "start", ID: "s-1"})
	mustAppend(t, j, unitRec("s-1", 2, `{"u":2}`))
	mustAppend(t, j, journalRecord{Op: "done", ID: "s-1", Result: json.RawMessage(`{"r":1}`)})
	mustAppend(t, j, journalRecord{Op: "accept", ID: "s-2", Kind: "sweep", Req: json.RawMessage(`{"a":2}`)})
	mustAppend(t, j, journalRecord{Op: "start", ID: "s-2"})
	mustAppend(t, j, unitRec("s-2", 1, `{"u":1}`))
	mustAppend(t, j, unitRec("s-2", 0, `{"u":0}`))
	mustAppend(t, j, journalRecord{Op: "accept", ID: "r-3", Kind: "run", Req: json.RawMessage(`{"a":3}`)})
	mustAppend(t, j, journalRecord{Op: "fail", ID: "r-3", Error: "boom"})

	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	wantJobs, _ := foldJournal(before)

	if err := j.compact(); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) >= len(before) {
		t.Fatalf("compaction grew the journal: %d -> %d bytes", len(before), len(after))
	}
	gotJobs, skipped := foldJournal(after)
	if skipped != 0 {
		t.Fatalf("compacted journal has %d corrupt lines", skipped)
	}
	if !reflect.DeepEqual(normalizeForReplay(gotJobs), normalizeForReplay(wantJobs)) {
		t.Fatalf("replay of compacted differs from original\ngot  %+v\nwant %+v", gotJobs, wantJobs)
	}

	// The journal stays appendable after the rename+reopen.
	mustAppend(t, j, journalRecord{Op: "done", ID: "s-2", Result: json.RawMessage(`{"r":2}`)})
	final, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	jobs, _ := foldJournal(final)
	for _, jj := range jobs {
		if jj.ID == "s-2" && jj.State != StateDone {
			t.Fatalf("post-compaction append lost: s-2 = %s", jj.State)
		}
	}
	j.close()
}

// TestJournalBoundedUnderMaxBytes: a journal with a byte bound compacts
// itself as terminal jobs accumulate, instead of growing forever.
func TestJournalBoundedUnderMaxBytes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.ndjson")
	counts := make(map[string]uint64)
	const maxBytes = 4096
	j, _, _, err := openJournal(path, maxBytes, func(name string, d uint64) { counts[name] += d })
	if err != nil {
		t.Fatal(err)
	}
	payload := json.RawMessage(`{"r":"` + string(bytes.Repeat([]byte("x"), 200)) + `"}`)
	for i := 0; i < 64; i++ {
		id := fmt.Sprintf("r-%d", i)
		mustAppend(t, j, journalRecord{Op: "accept", ID: id, Kind: "run", Req: json.RawMessage(`{}`)})
		mustAppend(t, j, journalRecord{Op: "start", ID: id})
		mustAppend(t, j, journalRecord{Op: "done", ID: id, Result: payload})
	}
	if counts["journal.compactions"] == 0 {
		t.Fatal("journal never compacted under its byte bound")
	}
	if counts["journal.compact.errors"] != 0 {
		t.Fatalf("journal.compact.errors = %d", counts["journal.compact.errors"])
	}
	// 64 snap lines of ~260 bytes exceed 4096, so the file cannot shrink
	// under maxBytes forever — but it must stay within a small factor of
	// its live state (the 2*lastSnap guard prevents recompaction thrash,
	// so the bound is 2x the last snapshot, plus one in-flight batch).
	if err := j.compact(); err != nil {
		t.Fatal(err)
	}
	snap := j.bytes()
	if got := int64(64 * (len(payload) + 100)); snap > got {
		t.Fatalf("compacted size %d implausibly large (> %d)", snap, got)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != snap {
		t.Fatalf("size accounting drifted: journal says %d, file is %d", snap, st.Size())
	}
	// Every job survived all those compactions.
	raw, _ := os.ReadFile(path)
	jobs, _ := foldJournal(raw)
	if len(jobs) != 64 {
		t.Fatalf("%d jobs after compactions, want 64", len(jobs))
	}
	for _, jj := range jobs {
		if jj.State != StateDone || string(jj.Result) != string(payload) {
			t.Fatalf("job %s lost state across compaction: %s", jj.ID, jj.State)
		}
	}
	j.close()
}
