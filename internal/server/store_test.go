package server

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"jmtam/internal/shard"
	"jmtam/internal/trace"
	"jmtam/internal/tracestore"
)

// TestSweepStoreWarmHits runs the same sweep twice on one daemon: the
// first run records each (workload, impl) once, the second serves every
// unit from the store, and both documents are byte-identical — to each
// other and to a daemon running with the store disabled (the legacy
// in-process path).
func TestSweepStoreWarmHits(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, legacy := newTestServer(t, Config{StoreMemBytes: -1})
	for i, body := range sweepBodies {
		first := sweepResultBytes(t, ts.URL, body)
		second := sweepResultBytes(t, ts.URL, body)
		if string(first) != string(second) {
			t.Fatalf("body %d: warm result differs from cold\ncold %s\nwarm %s", i, first, second)
		}
		want := sweepResultBytes(t, legacy.URL, body)
		if string(first) != string(want) {
			t.Fatalf("body %d: store path differs from legacy local path\ngot  %s\nwant %s", i, first, want)
		}
	}
	c := metricCounters(t, ts.URL)
	// 2 units (ss × md, ss × am), recorded on the first sweep only; the
	// other three sweeps (warm repeat + both runs of the detail body,
	// which shares the grid) are pure hits.
	if c["store.records"] != 2 {
		t.Fatalf("store.records = %d, want 2", c["store.records"])
	}
	if c["store.hits"] < 6 {
		t.Fatalf("store.hits = %d, want >= 6", c["store.hits"])
	}
	if c["store.misses"] != 2 {
		t.Fatalf("store.misses = %d, want 2", c["store.misses"])
	}
	if c["store.bytes.saved"] == 0 {
		t.Fatal("store.bytes.saved = 0 after warm sweeps")
	}
	legacyCounters := metricCounters(t, legacy.URL)
	if v, ok := legacyCounters["store.records"]; ok && v != 0 {
		t.Fatalf("legacy daemon recorded into a store: %d", v)
	}
}

// TestSweepStoreFleet is the fleet acceptance bar: a distributed sweep
// whose workers resolve recordings through a shared store hub is
// byte-identical to local execution, each (program, arg, impl, nodes)
// is recorded at most once fleet-wide, and a later worker joining the
// fleet serves entirely from peer fetches.
func TestSweepStoreFleet(t *testing.T) {
	_, local := newTestServer(t, Config{})
	_, hub := newTestServer(t, Config{})
	_, w1 := newTestServer(t, Config{StorePeers: []string{hub.URL}})
	_, w2 := newTestServer(t, Config{StorePeers: []string{hub.URL}})
	_, coord := newTestServer(t, Config{
		ShardWorkers: []string{w1.URL, w2.URL},
		Shard:        shard.Config{BaseBackoff: time.Millisecond},
	})
	for i, body := range sweepBodies {
		want := sweepResultBytes(t, local.URL, body)
		got := sweepResultBytes(t, coord.URL, body)
		if string(got) != string(want) {
			t.Fatalf("body %d: fleet result differs from local\ngot  %s\nwant %s", i, got, want)
		}
	}
	// Both bodies share the same (workload, impl) grid, so across every
	// fleet member the two units were simulated exactly once each.
	records := uint64(0)
	for _, base := range []string{hub.URL, w1.URL, w2.URL, coord.URL} {
		records += metricCounters(t, base)["store.records"]
	}
	if records != 2 {
		t.Fatalf("fleet-wide store.records = %d, want 2 (one per unit)", records)
	}
	// Every recorded unit was pushed to the hub.
	if v := metricCounters(t, hub.URL)["store.push.received"]; v != 2 {
		t.Fatalf("hub store.push.received = %d, want 2", v)
	}

	// A cold worker joining the fleet runs the sweep without simulating
	// anything: every unit is a peer fetch from the hub.
	_, w3 := newTestServer(t, Config{StorePeers: []string{hub.URL}})
	want := sweepResultBytes(t, local.URL, sweepBodies[1])
	got := sweepResultBytes(t, w3.URL, sweepBodies[1])
	if string(got) != string(want) {
		t.Fatalf("cold peer-fed worker differs from local\ngot  %s\nwant %s", got, want)
	}
	c := metricCounters(t, w3.URL)
	if c["store.records"] != 0 {
		t.Fatalf("cold worker re-simulated: store.records = %d", c["store.records"])
	}
	if c["store.peer.hits"] != 2 {
		t.Fatalf("cold worker store.peer.hits = %d, want 2", c["store.peer.hits"])
	}
}

// TestRecordingEndpoints exercises GET/PUT /v1/recordings/{key}:
// upload, content round-trip, ETag revalidation, range requests, and
// the rejection paths.
func TestRecordingEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	client := ts.Client()

	rec := &trace.Recording{}
	for i := uint32(0); i < 10_000; i++ {
		rec.Fetch(0x1000 + i*4)
	}
	data := rec.CompactAnnotated([]byte(`{"program":"x","arg":1,"impl":"AM","nodes":1}`))
	key := tracestore.Desc{Program: "x", Arg: 1, Impl: "AM", Nodes: 1}.Key()
	url := ts.URL + "/v1/recordings/" + key

	put := func(body string, wantCode int) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPut, url, strings.NewReader(body))
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("PUT status = %d, want %d", resp.StatusCode, wantCode)
		}
	}

	// Missing, then malformed key, then corrupt payload.
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET before PUT = %d, want 404", resp.StatusCode)
	}
	resp, _ = client.Get(ts.URL + "/v1/recordings/not-hex")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET bad key = %d, want 400", resp.StatusCode)
	}
	put("definitely not a recording", http.StatusBadRequest)

	// Valid upload, full round-trip.
	put(string(data), http.StatusNoContent)
	resp, err = client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(got) != string(data) {
		t.Fatalf("GET = %d, %d bytes; want 200 with %d bytes", resp.StatusCode, len(got), len(data))
	}
	etag := resp.Header.Get("ETag")
	if etag != `"`+key+`"` {
		t.Fatalf("ETag = %q, want the key", etag)
	}

	// ETag revalidation: 304 with no body.
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match = %d, want 304", resp.StatusCode)
	}

	// Range request: the first 16 bytes only.
	req, _ = http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("Range", "bytes=0-15")
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	part, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent || string(part) != string(data[:16]) {
		t.Fatalf("Range = %d with %d bytes, want 206 with 16", resp.StatusCode, len(part))
	}
}

// TestRecordingEndpointsDisabled: with the store disabled the
// endpoints answer 404 rather than panicking.
func TestRecordingEndpointsDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{StoreMemBytes: -1})
	key := strings.Repeat("ab", 32)
	resp, err := ts.Client().Get(ts.URL + "/v1/recordings/" + key)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET with store disabled = %d, want 404", resp.StatusCode)
	}
}

// TestSweepStoreDiskTier: a daemon restarted over the same -store-dir
// serves its recordings from disk without re-simulating.
func TestSweepStoreDiskTier(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Config{StoreDir: dir})
	first := sweepResultBytes(t, ts1.URL, sweepBodies[0])
	if v := metricCounters(t, ts1.URL)["store.records"]; v != 2 {
		t.Fatalf("first daemon store.records = %d, want 2", v)
	}
	ts1.Close()
	s1.Close()

	_, ts2 := newTestServer(t, Config{StoreDir: dir})
	second := sweepResultBytes(t, ts2.URL, sweepBodies[0])
	if string(first) != string(second) {
		t.Fatalf("disk-served result differs from recorded one\ngot  %s\nwant %s", second, first)
	}
	c := metricCounters(t, ts2.URL)
	if c["store.records"] != 0 {
		t.Fatalf("restarted daemon re-simulated: store.records = %d", c["store.records"])
	}
	if c["store.disk.hits"] != 2 {
		t.Fatalf("store.disk.hits = %d, want 2", c["store.disk.hits"])
	}
}
