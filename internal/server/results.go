package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"time"

	"jmtam/api"
	"jmtam/internal/tracestore"
)

// The result cache is the front door's second content-addressed tier:
// where the recording store deduplicates *simulations*, the result
// cache deduplicates whole *jobs*. A result is keyed by the canonical
// encoding of its normalized request, and the stored bytes are the
// exact marshaled result document, so a cache hit is byte-identical to
// fresh execution by construction. It reuses tracestore's LRU/disk/
// peer/singleflight machinery with a JSON payload profile, so repeated
// runs and sweeps are O(lookup) fleet-wide.

// resultFormatVersion participates in every result key: bump it when
// the result document format changes so stale cached documents
// invalidate fleet-wide instead of being served under the new format.
const resultFormatVersion = 1

// DefaultResultMemBytes bounds the result cache's memory tier when the
// config leaves it zero.
const DefaultResultMemBytes = 64 << 20

// resultKey is the content address of a job's result: SHA-256 over the
// format version, the job kind and the canonical (normalized,
// field-order-stable) wire encoding of the request. Two daemons
// normalizing the same submission derive the same key.
func resultKey(kind string, wire any) (string, error) {
	b, err := json.Marshal(wire)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "jres-v%d\x00%s\x00", resultFormatVersion, kind)
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// newResultFleet builds the result cache over the generic tracestore
// tiers: ".json" blobs under <storeDir>/results, "results.*" metrics,
// peer resolution via /v1/results/, JSON validation on peer fetches.
func newResultFleet(cfg Config, m tracestore.Metrics) (*tracestore.Fleet, error) {
	dir := ""
	if cfg.StoreDir != "" {
		dir = filepath.Join(cfg.StoreDir, "results")
	}
	st, err := tracestore.NewWith(dir, cfg.ResultMemBytes, m, tracestore.Options{
		Ext:    ".json",
		Prefix: "results",
	})
	if err != nil {
		return nil, err
	}
	return tracestore.NewFleetWith(st, cfg.StorePeers, nil, m, tracestore.FleetConfig{
		Path:   "/v1/results/",
		Prefix: "results",
		Validate: func(data []byte) error {
			if !json.Valid(data) {
				return errors.New("not a JSON document")
			}
			return nil
		},
		Saved: func([]byte) uint64 { return 0 },
	}), nil
}

// cachedResult resolves a job's result through the cache: local tier,
// then peers, then fresh execution (recorded and pushed fleet-wide),
// with singleflight so concurrent identical submissions execute once.
// A job whose fresh function never ran gets a "cached" stream event
// naming the source; its stream then goes straight to the terminal
// result line.
func (s *Server) cachedResult(ctx context.Context, job *Job, kind string, wire any, fresh func(ctx context.Context) (json.RawMessage, error)) (json.RawMessage, error) {
	if s.results == nil {
		return fresh(ctx)
	}
	key, err := resultKey(kind, wire)
	if err != nil {
		return nil, err
	}
	ran := false
	data, src, err := s.results.GetOrRecord(ctx, key, func(ctx context.Context) ([]byte, error) {
		ran = true
		return fresh(ctx)
	})
	if err != nil {
		return nil, err
	}
	if !ran {
		source := src.String()
		if src == tracestore.SourceRecorded {
			// Coalesced into a concurrent identical job's execution.
			source = "coalesced"
		}
		s.count("results.served", 1)
		job.emit(api.Cached(job.ID, source, key))
	}
	return data, nil
}

// handleResultGet serves a cached result document to a peer daemon.
// Like recordings, responses carry ETag = key and honor Range.
func (s *Server) handleResultGet(w http.ResponseWriter, r *http.Request) {
	if s.results == nil {
		writeError(w, http.StatusNotFound, api.CodeNotFound, "result cache disabled")
		return
	}
	key := r.PathValue("key")
	if !tracestore.ValidKey(key) {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "malformed result key")
		return
	}
	data, ok := s.results.Store().Get(key)
	if !ok {
		writeError(w, http.StatusNotFound, api.CodeNotFound, "no such result")
		return
	}
	w.Header().Set("ETag", `"`+key+`"`)
	w.Header().Set("Content-Type", "application/json")
	http.ServeContent(w, r, key+".json", time.Time{}, bytes.NewReader(data))
}

// handleResultPut accepts a result document pushed by a peer. The
// payload must be valid JSON; the key is taken on trust — it addresses
// the normalized request, and peers within a fleet derive it
// identically.
func (s *Server) handleResultPut(w http.ResponseWriter, r *http.Request) {
	if s.results == nil {
		writeError(w, http.StatusNotFound, api.CodeNotFound, "result cache disabled")
		return
	}
	key := r.PathValue("key")
	if !tracestore.ValidKey(key) {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "malformed result key")
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxRecordingBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, api.CodeTooLarge, err.Error())
		return
	}
	if !json.Valid(data) {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "not a JSON document")
		return
	}
	if err := s.results.Store().Put(key, data); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	s.count("results.push.received", 1)
	w.WriteHeader(http.StatusNoContent)
}
