package server

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"

	"jmtam/api"
)

// TenantLimits bounds one tenant's admission. Zero values mean
// unlimited on that axis.
type TenantLimits struct {
	// MaxConcurrent caps the tenant's simultaneously queued-or-running
	// jobs.
	MaxConcurrent int
	// JobsPerMinute is the token-bucket refill rate. The bucket starts
	// full, so a tenant can burst Burst submissions before the rate
	// bites.
	JobsPerMinute float64
	// Burst is the bucket capacity (0 = JobsPerMinute).
	Burst float64
}

// Tenants maps API keys to tenant names and tenants to their limits.
// A nil *Tenants disables tenancy entirely: no auth, no quotas, no
// tenant metrics.
type Tenants struct {
	byKey  map[string]string
	limits map[string]TenantLimits
}

// NewTenants returns an empty key table.
func NewTenants() *Tenants {
	return &Tenants{byKey: make(map[string]string), limits: make(map[string]TenantLimits)}
}

// Add registers one API key for tenant. Several keys may share a
// tenant; they then share its limits and counters. The last Add for a
// tenant wins its limits.
func (t *Tenants) Add(key, tenant string, lim TenantLimits) {
	t.byKey[key] = tenant
	t.limits[tenant] = lim
}

// resolve maps an API key to its tenant.
func (t *Tenants) resolve(key string) (string, bool) {
	tenant, ok := t.byKey[key]
	return tenant, ok
}

// LoadTenants parses an API-keys file: one `<key> <tenant>
// [max_concurrent] [jobs_per_minute] [burst]` per line, '#' comments
// (whole-line or trailing) and blank lines ignored. 0 (or an omitted
// column) means unlimited on that axis.
func LoadTenants(path string) (*Tenants, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t := NewTenants()
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("%s:%d: want <key> <tenant> [max_concurrent] [jobs_per_minute] [burst]", path, lineNo)
		}
		if len(fields) > 5 {
			return nil, fmt.Errorf("%s:%d: too many columns", path, lineNo)
		}
		var lim TenantLimits
		cols := make([]float64, 0, 3)
		for _, field := range fields[2:] {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("%s:%d: bad limit %q", path, lineNo, field)
			}
			cols = append(cols, v)
		}
		if len(cols) > 0 {
			lim.MaxConcurrent = int(cols[0])
		}
		if len(cols) > 1 {
			lim.JobsPerMinute = cols[1]
		}
		if len(cols) > 2 {
			lim.Burst = cols[2]
		}
		t.Add(fields[0], fields[1], lim)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(t.byKey) == 0 {
		return nil, fmt.Errorf("%s: no API keys", path)
	}
	return t, nil
}

type tenantCtxKey struct{}

// tenantOf returns the authenticated tenant for a request ("" when
// tenancy is disabled).
func tenantOf(r *http.Request) string {
	t, _ := r.Context().Value(tenantCtxKey{}).(string)
	return t
}

// authExempt lists the paths the Bearer check skips: health and
// metrics probes, and the fleet-internal blob endpoints (recordings
// and results travel daemon-to-daemon, inside the trust boundary the
// front door guards the edge of).
func authExempt(path string) bool {
	return path == "/healthz" || path == "/readyz" || path == "/metricz" ||
		strings.HasPrefix(path, "/v1/recordings/") ||
		strings.HasPrefix(path, "/v1/results/")
}

// withAuth wraps next with API-key resolution: exempt paths pass
// through, everything else needs `Authorization: Bearer <key>` naming
// a known key, and the resolved tenant rides the request context.
func (s *Server) withAuth(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if authExempt(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		auth := r.Header.Get("Authorization")
		key, ok := strings.CutPrefix(auth, "Bearer ")
		if !ok || key == "" {
			s.count("auth.missing", 1)
			writeError(w, http.StatusUnauthorized, api.CodeUnauthorized, "missing Authorization: Bearer <api-key>")
			return
		}
		tenant, ok := s.cfg.Tenants.resolve(key)
		if !ok {
			s.count("auth.rejected", 1)
			writeError(w, http.StatusUnauthorized, api.CodeUnauthorized, "unknown API key")
			return
		}
		s.count("tenant."+tenant+".requests", 1)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), tenantCtxKey{}, tenant)))
	})
}

// visibleTo says whether a job may be seen (status, stream, cancel,
// list) by the request's tenant. Without tenancy every job is visible;
// with it, tenants see exactly their own jobs.
func (s *Server) visibleTo(r *http.Request, job *Job) bool {
	if s.cfg.Tenants == nil {
		return true
	}
	return job.Tenant == tenantOf(r)
}
