package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"jmtam"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	// Most tests predate the result cache and exercise fresh execution
	// (code-cache hits, recording-store counters); keep it off unless a
	// test opts in explicitly. Result-cache behavior has its own tests
	// in results_test.go.
	if cfg.ResultMemBytes == 0 {
		cfg.ResultMemBytes = -1
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// streamLine is the decoded form of one NDJSON event.
type streamLine struct {
	Type   string          `json:"type"`
	ID     string          `json:"id"`
	Index  int             `json:"index"`
	Error  string          `json:"error"`
	Result json.RawMessage `json:"result"`
}

// readStream decodes every NDJSON line of a streaming submit response.
func readStream(t *testing.T, resp *http.Response) []streamLine {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	var lines []streamLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		var l streamLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// waitState polls a job until it reaches a terminal state.
func waitState(t *testing.T, base, id string, want JobState) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/runs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %q (error %q), want %q", id, st.State, st.Error, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach %q in time", id, want)
	return JobStatus{}
}

// directResult computes the expected wire document for a run request by
// executing it through the façade and converting with the same
// runResultOf the server uses.
func directResult(t *testing.T, prog string, arg int, impl jmtam.Impl, penalties []int, geoms ...jmtam.CacheConfig) []byte {
	t.Helper()
	res, err := jmtam.Run(impl, jmtam.Benchmark(prog, arg), jmtam.Options{}, geoms...)
	if err != nil {
		t.Fatal(err)
	}
	doc := runResultOf(prog, arg, impl, res.Instructions, res.Reads, res.Writes,
		res.Threads, res.Quanta, res.TPQ, res.IPT, res.IPQ, res.Caches, penalties)
	b, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRunStreamMatchesDirect is the tentpole guarantee: two jobs
// running concurrently on the server each stream a final result
// byte-identical to converting a direct jmtam.Run of the same request.
func TestRunStreamMatchesDirect(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	cases := []struct {
		prog string
		arg  int
		impl jmtam.Impl
		body string
	}{
		{"ss", 60, jmtam.MD, `{"program":"ss","arg":60,"impl":"md","caches":[{"size_kb":8,"block_bytes":64,"assoc":4},{"size_kb":1,"block_bytes":64,"assoc":1}]}`},
		{"qs", 30, jmtam.AM, `{"program":"qs","arg":30,"impl":"am"}`},
	}
	geomsFor := func(i int) []jmtam.CacheConfig {
		if i == 0 {
			return []jmtam.CacheConfig{
				{SizeBytes: 8 * 1024, BlockBytes: 64, Assoc: 4},
				{SizeBytes: 1 * 1024, BlockBytes: 64, Assoc: 1},
			}
		}
		return []jmtam.CacheConfig{{SizeBytes: 8 * 1024, BlockBytes: 64, Assoc: 4}}
	}

	got := make([][]streamLine, len(cases))
	var wg sync.WaitGroup
	for i, c := range cases {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(c.body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var lines []streamLine
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
			for sc.Scan() {
				var l streamLine
				if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
					t.Errorf("bad line %q: %v", sc.Text(), err)
					return
				}
				lines = append(lines, l)
			}
			got[i] = lines
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for i, c := range cases {
		lines := got[i]
		if len(lines) < 4 { // accepted, started, simulated, geometry*, result
			t.Fatalf("case %d: only %d stream lines", i, len(lines))
		}
		for want, l := range map[int]string{0: "accepted", 1: "started", 2: "simulated"} {
			if lines[want].Type != l {
				t.Errorf("case %d: line %d type = %q, want %q", i, want, lines[want].Type, l)
			}
		}
		geoms := geomsFor(i)
		final := lines[len(lines)-1]
		if final.Type != "result" {
			t.Fatalf("case %d: final line type = %q (error %q)", i, final.Type, final.Error)
		}
		ngeom := 0
		for _, l := range lines {
			if l.Type == "geometry" {
				ngeom++
			}
		}
		if ngeom != len(geoms) {
			t.Errorf("case %d: %d geometry events, want %d", i, ngeom, len(geoms))
		}
		want := directResult(t, c.prog, c.arg, c.impl, []int{12, 24, 48}, geoms...)
		if !bytes.Equal(final.Result, want) {
			t.Errorf("case %d: server result differs from direct run:\nserver %s\ndirect %s",
				i, final.Result, want)
		}
	}
}

// TestDetachStatusAndCache submits the same job twice detached: both
// complete with identical results and the second hits the code cache.
func TestDetachStatusAndCache(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	var results [2]json.RawMessage
	for i := range results {
		resp := postJSON(t, ts.URL+"/v1/runs?detach=1", `{"program":"ss","arg":40,"impl":"md"}`)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("detach status = %d", resp.StatusCode)
		}
		var st JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.State != StateQueued && st.State != StateRunning && st.State != StateDone {
			t.Fatalf("fresh job state = %q", st.State)
		}
		final := waitState(t, ts.URL, st.ID, StateDone)
		results[i] = final.Result
	}
	if !bytes.Equal(results[0], results[1]) {
		t.Errorf("repeat job result differs:\nfirst  %s\nsecond %s", results[0], results[1])
	}
	hits, misses, entries := s.cache.stats()
	if hits != 1 || misses != 1 || entries != 1 {
		t.Errorf("code cache hits/misses/entries = %d/%d/%d, want 1/1/1", hits, misses, entries)
	}
}

// TestCancelFreesWorkerSlot runs a one-slot server, parks a large job
// in it, cancels the job via DELETE and checks that a quick follow-up
// job gets the slot and completes.
func TestCancelFreesWorkerSlot(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp := postJSON(t, ts.URL+"/v1/runs?detach=1", `{"program":"ss","arg":3000,"impl":"md"}`)
	var big JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&big); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, ts.URL, big.ID, StateRunning)

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+big.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE status = %d", dresp.StatusCode)
	}
	waitState(t, ts.URL, big.ID, StateCanceled)

	resp = postJSON(t, ts.URL+"/v1/runs?detach=1", `{"program":"ss","arg":30,"impl":"md"}`)
	var small JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&small); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, ts.URL, small.ID, StateDone)
}

// TestSweepJob runs a one-geometry grid over MD and AM and checks the
// result carries run summaries, progress events and a Table 2 row.
func TestSweepJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	body := `{"workloads":[{"program":"ss","arg":40}],"sizes_kb":[8],"assocs":[4]}`
	lines := readStream(t, postJSON(t, ts.URL+"/v1/sweeps", body))
	final := lines[len(lines)-1]
	if final.Type != "result" {
		t.Fatalf("final line type = %q (error %q)", final.Type, final.Error)
	}
	nprog := 0
	for _, l := range lines {
		if l.Type == "run" {
			nprog++
		}
	}
	if nprog != 2 { // ss under MD and AM
		t.Errorf("%d progress events, want 2", nprog)
	}
	var res SweepResult
	if err := json.Unmarshal(final.Result, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 2 {
		t.Fatalf("%d run summaries, want 2", len(res.Runs))
	}
	if len(res.Table2) != 1 || res.Table2[0].Program != "ss" {
		t.Fatalf("table2 = %+v, want one ss row", res.Table2)
	}
	if res.Table2[0].Ratio24 <= 0 {
		t.Errorf("ss ratio24 = %v, want > 0", res.Table2[0].Ratio24)
	}
}

// TestBadRequests covers the 4xx paths.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, c := range []struct {
		path, body string
		want       int
	}{
		{"/v1/runs", `{"program":"nope"}`, http.StatusBadRequest},
		{"/v1/runs", `{"program":"ss","impl":"cray"}`, http.StatusBadRequest},
		{"/v1/runs", `{"program":"ss","bogus":1}`, http.StatusBadRequest},
		{"/v1/runs", `{"program":"ss","caches":[{"size_kb":3,"block_bytes":64,"assoc":4}]}`, http.StatusBadRequest},
		{"/v1/sweeps", `{"scale":"galactic"}`, http.StatusBadRequest},
	} {
		resp := postJSON(t, ts.URL+c.path, c.body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("POST %s %s: status %d, want %d", c.path, c.body, resp.StatusCode, c.want)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/runs/r-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET missing job: status %d, want 404", resp.StatusCode)
	}
}

// TestMetricz checks the server-wide registry surfaces job counters and
// pool gauges after a job completes.
func TestMetricz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	lines := readStream(t, postJSON(t, ts.URL+"/v1/runs", `{"program":"ss","arg":30}`))
	if lines[len(lines)-1].Type != "result" {
		t.Fatalf("job did not finish: %+v", lines[len(lines)-1])
	}
	resp, err := http.Get(ts.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Counters map[string]uint64 `json:"counters"`
		Gauges   map[string]struct {
			Value int64 `json:"value"`
			Max   int64 `json:"max"`
		} `json:"gauges"`
		Histograms map[string]struct {
			Count uint64 `json:"count"`
		} `json:"histograms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]uint64{
		"jobs.submitted": 1, "jobs.started": 1, "jobs.finished": 1,
		"codecache.misses": 1,
	} {
		if doc.Counters[name] != want {
			t.Errorf("counter %s = %d, want %d", name, doc.Counters[name], want)
		}
	}
	if doc.Gauges["jobs.running"].Value != 0 || doc.Gauges["jobs.running"].Max != 1 {
		t.Errorf("jobs.running = %+v, want value 0 max 1", doc.Gauges["jobs.running"])
	}
	if doc.Gauges["pool.slots"].Value != 1 {
		t.Errorf("pool.slots = %d, want 1", doc.Gauges["pool.slots"].Value)
	}
	if doc.Histograms["job.latency.ms.run"].Count != 1 {
		t.Errorf("job.latency.ms.run count = %d, want 1", doc.Histograms["job.latency.ms.run"].Count)
	}
}

// TestListJobs checks the list view enumerates jobs in submission order
// without result payloads.
func TestListJobs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	var ids []string
	for i := 0; i < 2; i++ {
		resp := postJSON(t, ts.URL+"/v1/runs?detach=1", `{"program":"ss","arg":30}`)
		var st JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		ids = append(ids, st.ID)
		waitState(t, ts.URL, st.ID, StateDone)
	}
	resp, err := http.Get(ts.URL + "/v1/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("list has %d jobs, want 2", len(list))
	}
	for i, st := range list {
		if st.ID != ids[i] {
			t.Errorf("list[%d].ID = %s, want %s", i, st.ID, ids[i])
		}
		if st.Result != nil {
			t.Errorf("list[%d] carries a result payload", i)
		}
	}
}

// TestStreamReplayAfterCompletion checks a late GET ?stream=1 replays
// the full event stream of a finished job.
func TestStreamReplayAfterCompletion(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	live := readStream(t, postJSON(t, ts.URL+"/v1/runs", `{"program":"ss","arg":30}`))
	id := live[0].ID
	resp, err := http.Get(fmt.Sprintf("%s/v1/runs/%s?stream=1", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	replay := readStream(t, resp)
	if len(replay) != len(live) {
		t.Fatalf("replay has %d lines, live had %d", len(replay), len(live))
	}
	if replay[len(replay)-1].Type != "result" {
		t.Errorf("replay final type = %q", replay[len(replay)-1].Type)
	}
}
