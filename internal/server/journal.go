package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// journalRecord is one NDJSON line of the write-ahead job journal. A
// job's life is a sequence of records sharing its ID: "accept" (with
// kind and the normalized request), "start", zero or more "unit"
// checkpoints (sweep jobs: one completed grid position each), and one
// terminal record — "done" (with the result document), "fail" or
// "cancel". Compaction folds a terminal job's whole sequence into a
// single "snap" line.
type journalRecord struct {
	Op     string          `json:"op"`
	ID     string          `json:"id"`
	Kind   string          `json:"kind,omitempty"`
	Tenant string          `json:"tenant,omitempty"`
	Req    json.RawMessage `json:"req,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
	State  string          `json:"state,omitempty"` // snap: folded terminal state
	Unit   *unitCheckpoint `json:"unit,omitempty"`  // unit: one finished grid position
}

// unitCheckpoint is one completed sweep unit: the grid position (in
// shard.Spec.Units order — workload-major, implementation-minor) and
// its result document. A restarted daemon re-runs only positions with
// no checkpoint; position-indexed assembly makes the resumed document
// byte-identical to an uninterrupted run.
type unitCheckpoint struct {
	Idx    int             `json:"idx"`
	Result json.RawMessage `json:"result"`
}

// journalJob is one job's folded journal state after replay.
type journalJob struct {
	ID     string
	Kind   string
	Tenant string
	Req    json.RawMessage
	State  JobState
	Result json.RawMessage
	Error  string
	Units  map[int]json.RawMessage // completed sweep units by grid position
}

// unitSyncBatch bounds how many "unit" checkpoints may ride unsynced:
// checkpoint appends fsync once per batch (a terminal append always
// syncs, flushing stragglers). A crash loses at most the last batch of
// checkpoints — those units simply re-run on resume.
const unitSyncBatch = 8

// defaultJournalMaxBytes bounds the journal when the caller passes 0.
const defaultJournalMaxBytes = 64 << 20

// journal is the append-only NDJSON job journal. Terminal and accept
// appends are fsynced before they return: a record the server acted on
// is on disk, so a restarted daemon can resume or re-queue exactly the
// work that was in flight; unit checkpoints batch their fsyncs (see
// unitSyncBatch). Appends are serialized; an append error is reported
// to the caller (the server counts it and carries on — journaling
// degrades to best-effort rather than taking the serving path down).
//
// When the file grows past maxBytes the journal compacts in place:
// terminal jobs fold into single "snap" lines, live jobs keep their
// accept/start/unit records, and the rewrite lands atomically
// (temp file + fsync + rename), so the journal stays bounded by its
// live state while preserving replay semantics exactly.
type journal struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	maxBytes int64
	size     int64
	pending  int   // unit appends since the last fsync
	lastSnap int64 // size right after the last compaction
	degrade  bool  // last append failed; cleared by the next success
	count    func(name string, d uint64)
}

// openJournal replays an existing journal (if any) and opens it for
// appending. Replay folds records per job in file order. A corrupt
// line mid-file is skipped (counted in skipped) — one bad sector must
// not discard every intact record after it; only an unparseable *final*
// line ends replay early, because that is the signature of a write a
// crash cut short. maxBytes bounds the file via compaction
// (0 = 64 MiB, negative = unbounded); countFn (may be nil) receives
// the journal's metrics. Jobs return in first-appearance order.
func openJournal(path string, maxBytes int64, countFn func(name string, d uint64)) (*journal, []*journalJob, int, error) {
	if maxBytes == 0 {
		maxBytes = defaultJournalMaxBytes
	}
	var jobs []*journalJob
	skipped := 0
	if raw, err := os.ReadFile(path); err == nil {
		jobs, skipped = foldJournal(raw)
	} else if !os.IsNotExist(err) {
		return nil, nil, 0, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, 0, err
	}
	size := int64(0)
	if st, err := f.Stat(); err == nil {
		size = st.Size()
	}
	if countFn == nil {
		countFn = func(string, uint64) {}
	}
	return &journal{f: f, path: path, maxBytes: maxBytes, size: size, count: countFn}, jobs, skipped, nil
}

// foldJournal replays raw journal bytes into per-job folded state.
// It is the single replay routine: startup recovery and compaction
// both go through it, which is what makes "replay of compacted ≡
// replay of original" hold by construction.
func foldJournal(raw []byte) (jobs []*journalJob, skipped int) {
	byID := make(map[string]*journalJob)
	lines := bytes.Split(raw, []byte("\n"))
	lastLine := -1
	for i := range lines {
		if len(bytes.TrimSpace(lines[i])) > 0 {
			lastLine = i
		}
	}
	for i, line := range lines {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			if i == lastLine {
				break // torn tail write; everything before it is intact
			}
			skipped++ // corrupt mid-file line; later records are still good
			continue
		}
		j := byID[rec.ID]
		if j == nil {
			if rec.Op != "accept" && rec.Op != "snap" {
				continue // progress/terminal record for a job we never accepted
			}
			j = &journalJob{ID: rec.ID, State: StateQueued}
			byID[rec.ID] = j
			jobs = append(jobs, j)
		}
		switch rec.Op {
		case "accept":
			j.Kind = rec.Kind
			j.Tenant = rec.Tenant
			j.Req = rec.Req
			j.State = StateQueued
		case "start":
			j.State = StateRunning
		case "unit":
			if rec.Unit != nil {
				if j.Units == nil {
					j.Units = make(map[int]json.RawMessage)
				}
				j.Units[rec.Unit.Idx] = rec.Unit.Result
			}
		case "done":
			j.State = StateDone
			j.Result = rec.Result
		case "fail":
			j.State = StateFailed
			j.Error = rec.Error
		case "cancel":
			j.State = StateCanceled
			j.Error = rec.Error
		case "snap":
			j.Kind = rec.Kind
			j.Tenant = rec.Tenant
			j.State = JobState(rec.State)
			j.Result = rec.Result
			j.Error = rec.Error
		}
	}
	return jobs, skipped
}

// append writes one record and fsyncs it, then compacts if the file
// outgrew its bound.
func (j *journal) append(rec journalRecord) error {
	return j.appendSync(rec, true)
}

// appendUnit writes one unit checkpoint with a batched fsync: the
// record is written immediately but only every unitSyncBatch-th
// checkpoint pays for a sync. Torn or lost checkpoints are harmless —
// replay skips them and the unit re-runs.
func (j *journal) appendUnit(rec journalRecord) error {
	return j.appendSync(rec, false)
}

func (j *journal) appendSync(rec journalRecord, syncNow bool) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.write(b, syncNow); err != nil {
		j.degrade = true
		return err
	}
	j.degrade = false
	if j.maxBytes > 0 && j.size > j.maxBytes && j.size > 2*j.lastSnap {
		if err := j.compactLocked(); err != nil {
			// The append itself is durable; a failed compaction only
			// means the file stays big until the next attempt.
			j.count("journal.compact.errors", 1)
		}
	}
	return nil
}

func (j *journal) write(b []byte, syncNow bool) error {
	if _, err := j.f.Write(b); err != nil {
		return err
	}
	j.size += int64(len(b))
	j.pending++
	if !syncNow && j.pending < unitSyncBatch {
		return nil
	}
	j.pending = 0
	return j.f.Sync()
}

// degraded reports whether the most recent append failed — the signal
// /readyz uses to stop routing new work at a daemon whose write-ahead
// log is no longer keeping promises.
func (j *journal) degraded() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.degrade
}

// compactLocked rewrites the journal from its own folded state:
// terminal jobs become one "snap" line each, live jobs re-emit
// accept + unit checkpoints (+ start), and the replacement file lands
// by atomic rename. Callers hold j.mu with all pending writes synced.
func (j *journal) compactLocked() error {
	raw, err := os.ReadFile(j.path)
	if err != nil {
		return err
	}
	jobs, _ := foldJournal(raw)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	emit := func(rec journalRecord) error { return enc.Encode(rec) }
	for _, jj := range jobs {
		if jj.State.Terminal() {
			if err := emit(journalRecord{
				Op: "snap", ID: jj.ID, Kind: jj.Kind, Tenant: jj.Tenant,
				State: string(jj.State), Result: jj.Result, Error: jj.Error,
			}); err != nil {
				return err
			}
			continue
		}
		if err := emit(journalRecord{Op: "accept", ID: jj.ID, Kind: jj.Kind, Tenant: jj.Tenant, Req: jj.Req}); err != nil {
			return err
		}
		idxs := make([]int, 0, len(jj.Units))
		for idx := range jj.Units {
			idxs = append(idxs, idx)
		}
		sort.Ints(idxs)
		for _, idx := range idxs {
			if err := emit(journalRecord{Op: "unit", ID: jj.ID, Unit: &unitCheckpoint{Idx: idx, Result: jj.Units[idx]}}); err != nil {
				return err
			}
		}
		if jj.State == StateRunning {
			if err := emit(journalRecord{Op: "start", ID: jj.ID}); err != nil {
				return err
			}
		}
	}
	tmp, err := os.CreateTemp(filepath.Dir(j.path), ".journal.tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("journal compact: %w", err)
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("journal compact: %w", err)
	}
	if err := os.Rename(tmpName, j.path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("journal compact: %w", err)
	}
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// The compacted file is in place but we lost our handle; further
		// appends would land on the renamed-over inode and vanish, so
		// flag the journal degraded until an append path recovers it.
		j.degrade = true
		return fmt.Errorf("journal compact: reopen: %w", err)
	}
	j.f.Close()
	j.f = f
	j.size = int64(buf.Len())
	j.lastSnap = j.size
	j.pending = 0
	j.count("journal.compactions", 1)
	return nil
}

// Compact forces a compaction pass regardless of size, for tests and
// operational tooling.
func (j *journal) compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.pending > 0 {
		j.pending = 0
		if err := j.f.Sync(); err != nil {
			return err
		}
	}
	return j.compactLocked()
}

// bytes returns the journal file's current size.
func (j *journal) bytes() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// close flushes pending checkpoints and closes the underlying file.
// Later appends fail.
func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.pending > 0 {
		j.pending = 0
		j.f.Sync()
	}
	return j.f.Close()
}
