package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"sync"
)

// journalRecord is one NDJSON line of the write-ahead job journal. A
// job's life is a sequence of records sharing its ID: "accept" (with
// kind and the normalized request), "start", and one terminal record —
// "done" (with the result document), "fail" or "cancel".
type journalRecord struct {
	Op     string          `json:"op"`
	ID     string          `json:"id"`
	Kind   string          `json:"kind,omitempty"`
	Tenant string          `json:"tenant,omitempty"`
	Req    json.RawMessage `json:"req,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// journalJob is one job's folded journal state after replay.
type journalJob struct {
	ID     string
	Kind   string
	Tenant string
	Req    json.RawMessage
	State  JobState
	Result json.RawMessage
	Error  string
}

// journal is the append-only NDJSON job journal. Every append is
// fsynced before it returns: a record the server acted on is on disk,
// so a restarted daemon can resume or re-queue exactly the work that
// was in flight. Appends are serialized; an append error is reported to
// the caller (the server counts it and carries on — journaling degrades
// to best-effort rather than taking the serving path down).
type journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// openJournal replays an existing journal (if any) and opens it for
// appending. Replay folds records per job in file order; a truncated or
// corrupt line — a crash can cut a write short — ends replay at the
// last intact record. It returns the jobs in first-appearance order.
func openJournal(path string) (*journal, []*journalJob, error) {
	var jobs []*journalJob
	byID := make(map[string]*journalJob)
	if raw, err := os.ReadFile(path); err == nil {
		sc := bufio.NewScanner(bytes.NewReader(raw))
		sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var rec journalRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				break // torn tail write; everything before it is intact
			}
			j := byID[rec.ID]
			if j == nil {
				if rec.Op != "accept" {
					continue // terminal record for a job we never accepted
				}
				j = &journalJob{ID: rec.ID, State: StateQueued}
				byID[rec.ID] = j
				jobs = append(jobs, j)
			}
			switch rec.Op {
			case "accept":
				j.Kind = rec.Kind
				j.Tenant = rec.Tenant
				j.Req = rec.Req
				j.State = StateQueued
			case "start":
				j.State = StateRunning
			case "done":
				j.State = StateDone
				j.Result = rec.Result
			case "fail":
				j.State = StateFailed
				j.Error = rec.Error
			case "cancel":
				j.State = StateCanceled
				j.Error = rec.Error
			}
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return &journal{f: f, path: path}, jobs, nil
}

// append writes one record and fsyncs it.
func (j *journal) append(rec journalRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(b); err != nil {
		return err
	}
	return j.f.Sync()
}

// close closes the underlying file. Later appends fail.
func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
