package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"jmtam/api"
	"jmtam/internal/faultnet"
	"jmtam/internal/shard"
)

// resumeSweepBody is a 2-workload × 2-impl grid (4 units) with detail
// on, big enough to truncate at several checkpoint depths.
const resumeSweepBody = `{"workloads":[{"program":"ss","arg":40},{"program":"ss","arg":44}],"sizes_kb":[1,8],"assocs":[1,4],"impls":["md","am"],"detail":true}`

// journalLines splits a journal file into its parsed records alongside
// the raw line bytes.
func journalLines(t *testing.T, path string) (recs []journalRecord, raws [][]byte) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("bad journal line %q: %v", line, err)
		}
		recs = append(recs, rec)
		raws = append(raws, line)
	}
	return recs, raws
}

// TestSweepCheckpointResumeByteIdentical is the crash-resume tentpole:
// a journal cut off after K unit checkpoints — the on-disk state a
// kill -9 mid-sweep leaves behind — restarts into a daemon that re-runs
// only the unfinished units and serves a result document byte-identical
// to the uninterrupted run, at every kill point.
func TestSweepCheckpointResumeByteIdentical(t *testing.T) {
	// Uninterrupted run: the reference result and a complete journal.
	full := filepath.Join(t.TempDir(), "full.ndjson")
	cfg := Config{JournalPath: full, ResultMemBytes: -1}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	want := sweepResultBytes(t, ts1.URL, resumeSweepBody)
	ts1.Close()
	s1.Close()

	recs, raws := journalLines(t, full)
	var prefix [][]byte // accept + start, the pre-checkpoint records
	var units [][]byte  // unit checkpoints in append order
	var jobID string
	for i, rec := range recs {
		switch rec.Op {
		case "accept", "start":
			prefix = append(prefix, raws[i])
			jobID = rec.ID
		case "unit":
			units = append(units, raws[i])
		}
	}
	if len(units) != 4 {
		t.Fatalf("%d unit checkpoints journaled, want 4", len(units))
	}

	for _, k := range []int{1, 2, 3} {
		// A journal killed after K checkpoints: accept, start, K units,
		// no terminal record.
		jpath := filepath.Join(t.TempDir(), "killed.ndjson")
		torn := append(append([][]byte{}, prefix...), units[:k]...)
		if err := os.WriteFile(jpath, append(bytes.Join(torn, []byte("\n")), '\n'), 0o644); err != nil {
			t.Fatal(err)
		}

		s2, err := New(Config{JournalPath: jpath, ResultMemBytes: -1})
		if err != nil {
			t.Fatal(err)
		}
		ts2 := httptest.NewServer(s2.Handler())
		final := waitState(t, ts2.URL, jobID, StateDone)
		if compactJSON(t, final.Result) != compactJSON(t, want) {
			t.Errorf("k=%d: resumed result differs from uninterrupted run\ngot  %s\nwant %s",
				k, final.Result, want)
		}
		c := metricCounters(t, ts2.URL)
		if c["journal.resumed.units"] != uint64(k) {
			t.Errorf("k=%d: journal.resumed.units = %d, want %d", k, c["journal.resumed.units"], k)
		}
		if c["journal.requeued"] != 1 {
			t.Errorf("k=%d: journal.requeued = %d, want 1", k, c["journal.requeued"])
		}
		ts2.Close()
		s2.Close()
	}
}

// TestResumeDropsMismatchedCheckpoints: checkpoints journaled for a
// different request shape (stale or corrupt) are discarded — the units
// re-run — rather than corrupting the resumed document.
func TestResumeDropsMismatchedCheckpoints(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	var req SweepRequest
	if err := json.Unmarshal([]byte(resumeSweepBody), &req.SweepRequest); err != nil {
		t.Fatal(err)
	}
	if err := req.Normalize(); err != nil {
		t.Fatal(err)
	}
	units := map[int]json.RawMessage{
		-1: json.RawMessage(`{}`),                           // out of range
		9:  json.RawMessage(`{}`),                           // past the grid
		0:  json.RawMessage(`{"program":"mm","arg":40}`),    // wrong workload
		1:  json.RawMessage(`not json`),                     // unparseable
		2:  json.RawMessage(`{"program":"ss","arg":44}`),    // wrong geometry count
	}
	if resume := s.decodeCheckpoints(&req, units); resume != nil {
		t.Fatalf("invalid checkpoints accepted: %v", resume)
	}
}

// TestWatchdogKillsHungJob: a job that never finishes is killed at
// -job-timeout with the deadline_exceeded error code, the kill is
// counted, and the worker slot frees for the next job.
func TestWatchdogKillsHungJob(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, JobTimeout: 50 * time.Millisecond})
	job := s.submit("run", "", nil, &RunRequest{}, func(ctx context.Context, j *Job) (json.RawMessage, error) {
		<-ctx.Done() // wedged: only the watchdog ends this
		return nil, ctx.Err()
	})
	st := waitState(t, ts.URL, job.ID, StateFailed)
	if !strings.HasPrefix(st.Error, string(api.CodeDeadlineExceeded)) {
		t.Fatalf("error = %q, want %s prefix", st.Error, api.CodeDeadlineExceeded)
	}
	c := metricCounters(t, ts.URL)
	if c["watchdog.kills"] != 1 {
		t.Fatalf("watchdog.kills = %d, want 1", c["watchdog.kills"])
	}
	// The slot was released: a well-behaved job runs to completion on
	// the single-worker pool (and well under the timeout).
	lines := readStream(t, postJSON(t, ts.URL+"/v1/runs", `{"program":"ss","arg":40}`))
	if final := lines[len(lines)-1]; final.Type != "result" {
		t.Fatalf("post-kill job ended %q (%s)", final.Type, final.Error)
	}
}

// TestWatchdogSparesFinishingJobs: a timeout far above job runtime
// never fires — completing work is not misclassified as wedged.
func TestWatchdogSparesFinishingJobs(t *testing.T) {
	_, ts := newTestServer(t, Config{JobTimeout: time.Minute})
	lines := readStream(t, postJSON(t, ts.URL+"/v1/runs", `{"program":"ss","arg":40}`))
	if final := lines[len(lines)-1]; final.Type != "result" {
		t.Fatalf("job ended %q (%s)", final.Type, final.Error)
	}
	if c := metricCounters(t, ts.URL); c["watchdog.kills"] != 0 {
		t.Fatalf("watchdog.kills = %d on a healthy job", c["watchdog.kills"])
	}
}

// TestDrainRefusesNewWorkFinishesRunning: BeginDrain flips /readyz to
// 503 and rejects submissions with a retryable envelope, while the job
// already running finishes normally and Drain returns.
func TestDrainRefusesNewWorkFinishesRunning(t *testing.T) {
	s, err := New(Config{ResultMemBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp, err := http.Get(ts.URL + "/readyz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-drain readyz: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}

	gate := make(chan struct{})
	job := s.submit("run", "", nil, &RunRequest{}, func(ctx context.Context, j *Job) (json.RawMessage, error) {
		<-gate
		return json.RawMessage(`{"ok":true}`), nil
	})
	s.BeginDrain()

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	resp = postJSON(t, ts.URL+"/v1/runs", `{"program":"ss","arg":40}`)
	body, apiErr := resp.StatusCode, api.Error{}
	var env api.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error == nil {
		t.Fatalf("draining submit: no error envelope (%v)", err)
	}
	apiErr = *env.Error
	resp.Body.Close()
	if body != http.StatusServiceUnavailable || apiErr.Code != api.CodeUnavailable || !apiErr.Retryable {
		t.Fatalf("draining submit = %d %s retryable=%v, want 503 unavailable retryable", body, apiErr.Code, apiErr.Retryable)
	}

	// The in-flight job is not a casualty of the drain.
	drained := make(chan struct{})
	go func() {
		s.Drain(context.Background())
		close(drained)
	}()
	close(gate)
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("Drain did not return after the running job finished")
	}
	if st := job.Status(); st.State != StateDone {
		t.Fatalf("running job ended %q during drain, want done", st.State)
	}
}

// TestDrainTimeoutCancelsButPreservesCheckpoints: a job that outlives
// the drain deadline is canceled, but because the cancellation came
// from shutdown it stays incomplete in the journal — a restart re-runs
// it rather than reporting it canceled.
func TestDrainTimeoutCancelsButPreservesCheckpoints(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "j.ndjson")
	s, err := New(Config{JournalPath: jpath, ResultMemBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	job := s.submit("run", "", nil, &RunRequest{RunRequest: api.RunRequest{Program: "ss", Arg: 40}}, func(ctx context.Context, j *Job) (json.RawMessage, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	s.Drain(ctx) // expires; the wedged job is canceled by Close

	if st := job.State(); st != StateCanceled {
		t.Fatalf("job state after timed-out drain = %q, want canceled", st)
	}
	raw, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	jobs, _ := foldJournal(raw)
	if len(jobs) != 1 || jobs[0].ID != job.ID {
		t.Fatalf("journal folded to %+v", jobs)
	}
	if jobs[0].State.Terminal() {
		t.Fatalf("shutdown-canceled job journaled terminal (%s); a restart could not resume it", jobs[0].State)
	}
}

// TestShardCoordinatorRoutesAroundDrainingWorker: a draining worker
// answers /readyz with 503 and refuses leases, so every shard lands on
// the healthy worker and the merged result stays byte-identical.
func TestShardCoordinatorRoutesAroundDrainingWorker(t *testing.T) {
	_, local := newTestServer(t, Config{})
	draining, drainTS := newTestServer(t, Config{})
	draining.BeginDrain()
	healthy := newWorker(t)
	_, coord := newTestServer(t, Config{
		ShardWorkers: []string{drainTS.URL, healthy},
		Shard:        shard.Config{BaseBackoff: time.Millisecond, MaxAttempts: 4},
	})
	body := sweepBodies[0]
	want := sweepResultBytes(t, local.URL, body)
	got := sweepResultBytes(t, coord.URL, body)
	if string(got) != string(want) {
		t.Fatalf("result with a draining worker differs\ngot  %s\nwant %s", got, want)
	}
	c := metricCounters(t, coord.URL)
	if c["shard.remote"] == 0 {
		t.Error("no shards ran remotely despite a healthy worker")
	}
	if dc := metricCounters(t, drainTS.URL); dc["jobs.submitted"] != 0 {
		t.Errorf("draining worker accepted %d jobs", dc["jobs.submitted"])
	}
}

// TestReadyzReportsJournalDegraded: failing journal appends flip
// readiness off (the daemon can no longer keep its durability promise)
// while liveness stays green.
func TestReadyzReportsJournalDegraded(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "j.ndjson")
	s, ts := newTestServer(t, Config{JournalPath: jpath})
	s.journal.f.Close() // every subsequent append fails

	lines := readStream(t, postJSON(t, ts.URL+"/v1/runs", `{"program":"ss","arg":40}`))
	if final := lines[len(lines)-1]; final.Type != "result" {
		t.Fatalf("job failed under journal degradation: %q (%s)", final.Type, final.Error)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %d with a degraded journal, want 503", resp.StatusCode)
	}
	if resp, err = http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %v %v, want 200 (liveness is not readiness)", resp.StatusCode, err)
	}
	resp.Body.Close()
	if c := metricCounters(t, ts.URL); c["journal.errors"] == 0 {
		t.Error("journal.errors = 0 after failed appends")
	}
}

// TestScrubQuarantinesAndRepairsOnServer: end to end through the
// daemon — a sweep populates the disk store, a bit flips on disk, one
// scrub pass quarantines and self-heals it, and a re-run of the sweep
// still serves the correct (byte-identical) result.
func TestScrubQuarantinesAndRepairsOnServer(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{StoreDir: dir})
	body := sweepBodies[0]
	want := sweepResultBytes(t, ts.URL, body)

	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	struckAny := false
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".jtr") {
			if _, err := faultnet.CorruptFile(filepath.Join(dir, e.Name()), 3); err != nil {
				t.Fatal(err)
			}
			struckAny = true
		}
	}
	if !struckAny {
		t.Fatal("sweep left no .jtr blobs to corrupt")
	}

	s.scrubOnce()
	c := metricCounters(t, ts.URL)
	if c["store.corrupt"] == 0 {
		t.Fatalf("store.corrupt = 0 after corrupting every blob")
	}
	// The memory tier held good copies, so the scrub self-healed them
	// all and readiness never wedged.
	if c["store.repaired"] != c["store.corrupt"] {
		t.Fatalf("repaired %d of %d corrupt blobs", c["store.repaired"], c["store.corrupt"])
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d after full repair, want 200", resp.StatusCode)
	}

	got := sweepResultBytes(t, ts.URL, body)
	if string(got) != string(want) {
		t.Fatalf("post-repair sweep differs\ngot  %s\nwant %s", got, want)
	}
}

// TestLoadgenStyleReadyzFlow sanity-checks the readiness lifecycle a
// load harness sees: ready → draining (503 with reason) → and the
// reason text names the cause.
func TestReadyzDrainReason(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.BeginDrain()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env api.ErrorEnvelope
	if err := json.NewDecoder(bufio.NewReader(resp.Body)).Decode(&env); err != nil || env.Error == nil {
		t.Fatalf("readyz 503 body is not an error envelope: %v", err)
	}
	if !strings.Contains(env.Error.Message, "draining") {
		t.Fatalf("readyz reason = %q, want it to name draining", env.Error.Message)
	}
}
