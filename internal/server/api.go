// Package server implements tamsimd's HTTP/JSON serving layer: a job
// registry with NDJSON result streaming, a bounded worker pool for
// simulation and sweep jobs, a compiled-code cache keyed by (program,
// size, implementation), API-key tenancy with token-bucket admission,
// a content-addressed result cache, and a /metricz endpoint exposing
// server-wide observability.
//
// Wire types live in the root api package — the server re-exports them
// as aliases and adds normalization on top. The package reuses the
// façade's execution machinery — core.Compile / Compiled.NewSim for
// cached builds, trace record/replay for the cache fan-out,
// experiments.Sweep for grids — so a job served over HTTP produces
// byte-identical results to a direct jmtam.Run call.
package server

import (
	"fmt"

	"jmtam/api"
	"jmtam/internal/cache"
	"jmtam/internal/core"
	"jmtam/internal/experiments"
	"jmtam/internal/programs"
)

// Wire-type aliases: the api package is the single source of truth for
// the serving protocol; these keep the server's own code (and existing
// callers) reading naturally.
type (
	CacheSpec       = api.CacheSpec
	WorkloadSpec    = api.WorkloadSpec
	CycleCount      = api.CycleCount
	CacheResult     = api.CacheResult
	RunResult       = api.RunResult
	SweepRunSummary = api.SweepRunSummary
	Table2Row       = api.Table2Row
	SweepResult     = api.SweepResult
	JobState        = api.JobState
	JobStatus       = api.JobStatus
)

const (
	StateQueued   = api.StateQueued
	StateRunning  = api.StateRunning
	StateDone     = api.StateDone
	StateFailed   = api.StateFailed
	StateCanceled = api.StateCanceled
)

func configOf(c CacheSpec) cache.Config {
	return cache.Config{SizeBytes: c.SizeKB * 1024, BlockBytes: c.BlockBytes, Assoc: c.Assoc}
}

func specOf(g cache.Config) CacheSpec {
	return CacheSpec{SizeKB: g.SizeBytes / 1024, BlockBytes: g.BlockBytes, Assoc: g.Assoc}
}

// parseImpl resolves a wire implementation name against the backend
// registry, so the serving layer accepts every registered backend
// (including display-name spellings from normalized, journaled
// requests) without its own name table.
func parseImpl(s string) (core.Impl, error) { return core.ParseImpl(s) }

// RunRequest is the wire request plus the server-side resolution of its
// fields (parsed implementation, validated geometries). The embedded
// api.RunRequest marshals flat, so journaled requests keep the wire
// shape.
type RunRequest struct {
	api.RunRequest

	impl  core.Impl
	geoms []cache.Config
}

// Normalize validates the request and resolves defaults. It must be
// called once before the request is executed or journaled.
func (r *RunRequest) Normalize(defaultMaxInstrs uint64) error {
	spec, err := programs.ByName(r.Program)
	if err != nil {
		return err
	}
	if r.Arg == 0 {
		r.Arg = spec.Arg
	}
	if r.Arg < 0 {
		return fmt.Errorf("arg %d out of range", r.Arg)
	}
	if r.impl, err = parseImpl(r.Impl); err != nil {
		return err
	}
	r.Impl = r.impl.String()
	if len(r.Caches) == 0 {
		r.Caches = []CacheSpec{{SizeKB: 8, BlockBytes: 64, Assoc: 4}}
	}
	r.geoms = make([]cache.Config, len(r.Caches))
	for i, c := range r.Caches {
		g := configOf(c)
		if err := g.Validate(); err != nil {
			return err
		}
		r.geoms[i] = g
	}
	if len(r.Penalties) == 0 {
		r.Penalties = []int{12, 24, 48}
	}
	for _, p := range r.Penalties {
		if p < 0 {
			return fmt.Errorf("penalty %d out of range", p)
		}
	}
	if r.MaxInstructions == 0 {
		r.MaxInstructions = defaultMaxInstrs
	}
	return nil
}

// runResultOf converts a façade-shaped result (the run summary plus
// per-geometry stats) into the wire document. It is the single
// conversion point, so a server job and a direct jmtam.Run compared
// through it are byte-identical by construction or not at all.
func runResultOf(program string, arg int, impl core.Impl, instrs, reads, writes, threads, quanta uint64,
	tpq, ipt, ipq float64, stats []experiments.CacheStats, penalties []int) *RunResult {
	res := &RunResult{
		Program:      program,
		Arg:          arg,
		Impl:         impl.String(),
		Instructions: instrs,
		Reads:        reads,
		Writes:       writes,
		Threads:      threads,
		Quanta:       quanta,
		TPQ:          tpq,
		IPT:          ipt,
		IPQ:          ipq,
		Caches:       make([]CacheResult, len(stats)),
	}
	for i, c := range stats {
		cr := CacheResult{
			CacheSpec:  specOf(c.Config),
			IMisses:    c.IMisses,
			DMisses:    c.DMisses,
			Writebacks: c.Writebacks,
			Cycles:     make([]CycleCount, len(penalties)),
		}
		for j, p := range penalties {
			cr.Cycles[j] = CycleCount{
				Penalty: p,
				Cycles:  instrs + uint64(p)*(c.IMisses+c.DMisses),
			}
		}
		res.Caches[i] = cr
	}
	return res
}

// SweepRequest is the wire request plus the server-side resolution of
// its implementation list.
type SweepRequest struct {
	api.SweepRequest

	impls []core.Impl
}

// Normalize validates the request and resolves defaults. It must be
// called once before the request is executed or journaled.
func (r *SweepRequest) Normalize() error {
	if len(r.Workloads) == 0 {
		var ws []experiments.Workload
		switch r.Scale {
		case "", "quick":
			r.Scale = "quick"
			ws = experiments.QuickWorkloads()
		case "paper":
			ws = experiments.PaperWorkloads()
		default:
			return fmt.Errorf("unknown scale %q (want quick|paper)", r.Scale)
		}
		for _, w := range ws {
			r.Workloads = append(r.Workloads, WorkloadSpec{Program: w.Name, Arg: w.Arg})
		}
	}
	for i, w := range r.Workloads {
		spec, err := programs.ByName(w.Program)
		if err != nil {
			return err
		}
		if w.Arg == 0 {
			r.Workloads[i].Arg = spec.Arg
		}
	}
	if len(r.SizesKB) == 0 {
		r.SizesKB = []int{1, 2, 4, 8, 16, 32, 64, 128}
	}
	if len(r.Assocs) == 0 {
		r.Assocs = []int{1, 2, 4}
	}
	if r.BlockBytes == 0 {
		r.BlockBytes = 64
	}
	if len(r.Penalties) == 0 {
		r.Penalties = []int{12, 24, 48}
	}
	if len(r.Impls) == 0 {
		r.Impls = []string{"md", "am"}
	}
	r.impls = make([]core.Impl, len(r.Impls))
	for i, s := range r.Impls {
		impl, err := parseImpl(s)
		if err != nil {
			return err
		}
		r.impls[i] = impl
	}
	return nil
}
