// Package server implements tamsimd's HTTP/JSON serving layer: a job
// registry with NDJSON result streaming, a bounded worker pool for
// simulation and sweep jobs, a compiled-code cache keyed by (program,
// size, implementation), and a /metricz endpoint exposing server-wide
// observability.
//
// The package reuses the façade's execution machinery — core.Compile /
// Compiled.NewSim for cached builds, trace record/replay for the cache
// fan-out, experiments.Sweep for grids — so a job served over HTTP
// produces byte-identical results to a direct jmtam.Run call.
package server

import (
	"fmt"

	"jmtam/internal/cache"
	"jmtam/internal/core"
	"jmtam/internal/experiments"
	"jmtam/internal/programs"
)

// CacheSpec is one cache geometry in wire form.
type CacheSpec struct {
	SizeKB     int `json:"size_kb"`
	BlockBytes int `json:"block_bytes"`
	Assoc      int `json:"assoc"`
}

func (c CacheSpec) config() cache.Config {
	return cache.Config{SizeBytes: c.SizeKB * 1024, BlockBytes: c.BlockBytes, Assoc: c.Assoc}
}

func specOf(g cache.Config) CacheSpec {
	return CacheSpec{SizeKB: g.SizeBytes / 1024, BlockBytes: g.BlockBytes, Assoc: g.Assoc}
}

// parseImpl accepts the CLI's implementation names.
func parseImpl(s string) (core.Impl, error) {
	switch s {
	case "am":
		return core.ImplAM, nil
	case "md", "":
		return core.ImplMD, nil
	case "am-enabled":
		return core.ImplAMEnabled, nil
	case "oam":
		return core.ImplOAM, nil
	}
	return 0, fmt.Errorf("unknown impl %q (want am|md|am-enabled|oam)", s)
}

// RunRequest submits one simulation: a benchmark at a problem size under
// one implementation, evaluated against a set of cache geometries.
// Zero-valued fields take the server defaults (the paper's argument for
// the program, MD, an 8K 4-way 64-byte cache, penalties 12/24/48).
type RunRequest struct {
	Program         string      `json:"program"`
	Arg             int         `json:"arg,omitempty"`
	Impl            string      `json:"impl,omitempty"`
	Caches          []CacheSpec `json:"caches,omitempty"`
	Penalties       []int       `json:"penalties,omitempty"`
	MaxInstructions uint64      `json:"max_instructions,omitempty"`

	impl  core.Impl
	geoms []cache.Config
}

// Normalize validates the request and resolves defaults. It must be
// called once before the request is executed or journaled.
func (r *RunRequest) Normalize(defaultMaxInstrs uint64) error {
	spec, err := programs.ByName(r.Program)
	if err != nil {
		return err
	}
	if r.Arg == 0 {
		r.Arg = spec.Arg
	}
	if r.Arg < 0 {
		return fmt.Errorf("arg %d out of range", r.Arg)
	}
	if r.impl, err = parseImpl(r.Impl); err != nil {
		return err
	}
	r.Impl = r.impl.String()
	if len(r.Caches) == 0 {
		r.Caches = []CacheSpec{{SizeKB: 8, BlockBytes: 64, Assoc: 4}}
	}
	r.geoms = make([]cache.Config, len(r.Caches))
	for i, c := range r.Caches {
		g := c.config()
		if err := g.Validate(); err != nil {
			return err
		}
		r.geoms[i] = g
	}
	if len(r.Penalties) == 0 {
		r.Penalties = []int{12, 24, 48}
	}
	for _, p := range r.Penalties {
		if p < 0 {
			return fmt.Errorf("penalty %d out of range", p)
		}
	}
	if r.MaxInstructions == 0 {
		r.MaxInstructions = defaultMaxInstrs
	}
	return nil
}

// CycleCount is total execution cycles under one miss penalty.
type CycleCount struct {
	Penalty int    `json:"penalty"`
	Cycles  uint64 `json:"cycles"`
}

// CacheResult reports one geometry's misses and derived cycle counts.
type CacheResult struct {
	CacheSpec
	IMisses    uint64       `json:"i_misses"`
	DMisses    uint64       `json:"d_misses"`
	Writebacks uint64       `json:"writebacks"`
	Cycles     []CycleCount `json:"cycles"`
}

// RunResult is the final document of a run job: the simulation summary
// plus per-geometry cache statistics.
type RunResult struct {
	Program      string        `json:"program"`
	Arg          int           `json:"arg"`
	Impl         string        `json:"impl"`
	Instructions uint64        `json:"instructions"`
	Reads        uint64        `json:"reads"`
	Writes       uint64        `json:"writes"`
	Threads      uint64        `json:"threads"`
	Quanta       uint64        `json:"quanta"`
	TPQ          float64       `json:"tpq"`
	IPT          float64       `json:"ipt"`
	IPQ          float64       `json:"ipq"`
	Caches       []CacheResult `json:"caches"`
}

// runResultOf converts a façade-shaped result (the run summary plus
// per-geometry stats) into the wire document. It is the single
// conversion point, so a server job and a direct jmtam.Run compared
// through it are byte-identical by construction or not at all.
func runResultOf(program string, arg int, impl core.Impl, instrs, reads, writes, threads, quanta uint64,
	tpq, ipt, ipq float64, stats []experiments.CacheStats, penalties []int) *RunResult {
	res := &RunResult{
		Program:      program,
		Arg:          arg,
		Impl:         impl.String(),
		Instructions: instrs,
		Reads:        reads,
		Writes:       writes,
		Threads:      threads,
		Quanta:       quanta,
		TPQ:          tpq,
		IPT:          ipt,
		IPQ:          ipq,
		Caches:       make([]CacheResult, len(stats)),
	}
	for i, c := range stats {
		cr := CacheResult{
			CacheSpec:  specOf(c.Config),
			IMisses:    c.IMisses,
			DMisses:    c.DMisses,
			Writebacks: c.Writebacks,
			Cycles:     make([]CycleCount, len(penalties)),
		}
		for j, p := range penalties {
			cr.Cycles[j] = CycleCount{
				Penalty: p,
				Cycles:  instrs + uint64(p)*(c.IMisses+c.DMisses),
			}
		}
		res.Caches[i] = cr
	}
	return res
}

// SweepRequest submits a parameter-space sweep: workloads × impls ×
// cache geometries, the experiments.Sweep grid over HTTP. Scale picks a
// preset workload list ("quick" reduced sizes, "paper" the full Table 2
// arguments) when Workloads is empty.
type SweepRequest struct {
	Scale      string         `json:"scale,omitempty"`
	Workloads  []WorkloadSpec `json:"workloads,omitempty"`
	SizesKB    []int          `json:"sizes_kb,omitempty"`
	Assocs     []int          `json:"assocs,omitempty"`
	BlockBytes int            `json:"block_bytes,omitempty"`
	Penalties  []int          `json:"penalties,omitempty"`
	Impls      []string       `json:"impls,omitempty"`
	// Detail adds per-geometry cache statistics to each run summary —
	// the shard coordinator requires it to reassemble a distributed
	// sweep.
	Detail bool `json:"detail,omitempty"`

	impls []core.Impl
}

// WorkloadSpec names one benchmark instance in wire form.
type WorkloadSpec struct {
	Program string `json:"program"`
	Arg     int    `json:"arg,omitempty"`
}

// Normalize validates the request and resolves defaults. It must be
// called once before the request is executed or journaled.
func (r *SweepRequest) Normalize() error {
	if len(r.Workloads) == 0 {
		var ws []experiments.Workload
		switch r.Scale {
		case "", "quick":
			r.Scale = "quick"
			ws = experiments.QuickWorkloads()
		case "paper":
			ws = experiments.PaperWorkloads()
		default:
			return fmt.Errorf("unknown scale %q (want quick|paper)", r.Scale)
		}
		for _, w := range ws {
			r.Workloads = append(r.Workloads, WorkloadSpec{Program: w.Name, Arg: w.Arg})
		}
	}
	for i, w := range r.Workloads {
		spec, err := programs.ByName(w.Program)
		if err != nil {
			return err
		}
		if w.Arg == 0 {
			r.Workloads[i].Arg = spec.Arg
		}
	}
	if len(r.SizesKB) == 0 {
		r.SizesKB = []int{1, 2, 4, 8, 16, 32, 64, 128}
	}
	if len(r.Assocs) == 0 {
		r.Assocs = []int{1, 2, 4}
	}
	if r.BlockBytes == 0 {
		r.BlockBytes = 64
	}
	if len(r.Penalties) == 0 {
		r.Penalties = []int{12, 24, 48}
	}
	if len(r.Impls) == 0 {
		r.Impls = []string{"md", "am"}
	}
	r.impls = make([]core.Impl, len(r.Impls))
	for i, s := range r.Impls {
		impl, err := parseImpl(s)
		if err != nil {
			return err
		}
		r.impls[i] = impl
	}
	return nil
}

// SweepRunSummary is one (workload, implementation) outcome within a
// sweep result: granularity only; per-geometry detail stays in the
// ratio tables.
type SweepRunSummary struct {
	Program      string  `json:"program"`
	Arg          int     `json:"arg"`
	Impl         string  `json:"impl"`
	Instructions uint64  `json:"instructions"`
	TPQ          float64 `json:"tpq"`
	IPT          float64 `json:"ipt"`
	IPQ          float64 `json:"ipq"`
	// Caches is present when the request set detail: per-geometry miss
	// statistics in geometry index order.
	Caches []CacheResult `json:"caches,omitempty"`
}

// Table2Row mirrors experiments.Table2Row in wire form.
type Table2Row struct {
	Program string  `json:"program"`
	TPQMD   float64 `json:"tpq_md"`
	TPQAM   float64 `json:"tpq_am"`
	IPTMD   float64 `json:"ipt_md"`
	IPTAM   float64 `json:"ipt_am"`
	IPQMD   float64 `json:"ipq_md"`
	IPQAM   float64 `json:"ipq_am"`
	Ratio12 float64 `json:"ratio_12"`
	Ratio24 float64 `json:"ratio_24"`
	Ratio48 float64 `json:"ratio_48"`
}

// SweepResult is the final document of a sweep job.
type SweepResult struct {
	Workloads []WorkloadSpec    `json:"workloads"`
	Geoms     []CacheSpec       `json:"geoms"`
	Runs      []SweepRunSummary `json:"runs"`
	// Table2 is present when the sweep covers the 8K 4-way geometry
	// (the paper's Table 2 reference point) and both MD and AM.
	Table2 []Table2Row `json:"table2,omitempty"`
}
