package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"jmtam/api"
	"jmtam/internal/core"
	"jmtam/internal/experiments"
	"jmtam/internal/parallel"
	"jmtam/internal/shard"
	"jmtam/internal/trace"
	"jmtam/internal/tracestore"
)

// handleRecordingGet serves a compacted recording from the store.
// Responses carry ETag = key (content addresses never change, so
// If-None-Match is a free revalidation) and go through
// http.ServeContent, which honors Range requests — a peer can resume
// an interrupted fetch mid-stream.
func (s *Server) handleRecordingGet(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeError(w, http.StatusNotFound, api.CodeNotFound, "recording store disabled")
		return
	}
	key := r.PathValue("key")
	if !tracestore.ValidKey(key) {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "malformed recording key")
		return
	}
	data, ok := s.store.Get(key)
	if !ok {
		writeError(w, http.StatusNotFound, api.CodeNotFound, "no such recording")
		return
	}
	w.Header().Set("ETag", `"`+key+`"`)
	w.Header().Set("Content-Type", "application/octet-stream")
	http.ServeContent(w, r, key+".jtr", time.Time{}, bytes.NewReader(data))
}

// handleRecordingPut accepts a compacted recording pushed by a peer.
// The payload must parse as a compact recording (header validation);
// the key is taken on trust — it addresses the run descriptor, not the
// bytes, and peers within a fleet derive it identically.
func (s *Server) handleRecordingPut(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeError(w, http.StatusNotFound, api.CodeNotFound, "recording store disabled")
		return
	}
	key := r.PathValue("key")
	if !tracestore.ValidKey(key) {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "malformed recording key")
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxRecordingBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, api.CodeTooLarge, err.Error())
		return
	}
	if _, err := trace.CompactStat(data); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	if err := s.store.Put(key, data); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	s.count("store.push.received", 1)
	w.WriteHeader(http.StatusNoContent)
}

// storeSweepUnits executes a sweep grid through the recording store:
// each (workload, impl) unit resolves its compacted recording — local
// store, then peers, then simulate once — and replays it through the
// geometry grid as a stream, never materializing the packed form. The
// simulation summary rides in the recording's annotation, so a fetched
// unit is assembled without re-simulating, and the replay drives the
// same kernel as the direct path, so the sweep document is
// byte-identical to localSweepUnits whatever mix of sources served it.
// Positions present in resume are filled from their journaled
// checkpoints without touching the store; fresh completions are
// checkpointed as they land.
func (s *Server) storeSweepUnits(ctx context.Context, job *Job, req *SweepRequest, resume map[int]shard.UnitResult) ([]shard.UnitResult, error) {
	geoms := sweepGeoms(req)
	jobs := sweepUnitJobs(req)
	par := parallel.Workers(s.cfg.ReplayParallelism)
	replayPar := 1
	if len(jobs) > 0 && par/len(jobs) > 1 {
		replayPar = par / len(jobs)
	}
	units := make([]shard.UnitResult, len(jobs))
	var done atomic.Int64
	err := parallel.ForEachContext(ctx, par, len(jobs), func(i int) error {
		uj := jobs[i]
		if u, ok := resume[i]; ok {
			units[i] = u
			job.emit(api.RunProgressEvent{
				Type: api.EventRun, ID: job.ID,
				Done: int(done.Add(1)), Total: len(jobs),
				Program: uj.program, Arg: uj.arg,
				Impl: uj.impl.String(), Source: "checkpoint",
			})
			return nil
		}
		// For backends with NIC-resident inlets the recorded stream is
		// the compute engine's references only — the NIC's stream
		// replays against its own fixed geometry, never the sweep grid —
		// so a store-served unit is identical to a locally simulated one
		// for every backend.
		desc := tracestore.Desc{Program: uj.program, Arg: uj.arg, Impl: uj.impl.String(), Nodes: 1}
		data, src, err := s.fleet.GetOrRecord(ctx, desc.Key(), func(ctx context.Context) ([]byte, error) {
			r, rec, err := experiments.RecordOneContext(ctx,
				experiments.Workload{Name: uj.program, Arg: uj.arg}, uj.impl, core.Options{})
			if err != nil {
				return nil, err
			}
			s.gauge("sweep.recording.bytes", int64(rec.Bytes()))
			defer s.gauge("sweep.recording.bytes", -int64(rec.Bytes()))
			meta := tracestore.RunMeta{
				Desc:         desc,
				Instructions: r.Instructions,
				TPQ:          r.TPQ,
				IPT:          r.IPT,
				IPQ:          r.IPQ,
				Threads:      r.Threads,
				Quanta:       r.Quanta,
			}
			return rec.CompactAnnotated(meta.Encode()), nil
		})
		if err != nil {
			return err
		}
		info, err := trace.CompactStat(data)
		if err != nil {
			return fmt.Errorf("stored recording %s: %w", desc.Key(), err)
		}
		meta, err := tracestore.DecodeMeta(info.Annotation)
		if err != nil {
			return fmt.Errorf("stored recording %s: %w", desc.Key(), err)
		}
		caches, err := experiments.ReplayStreamFanOutContext(ctx, func() (*trace.Reader, error) {
			return trace.NewReader(bytes.NewReader(data))
		}, geoms, replayPar)
		if err != nil {
			return err
		}
		u := shard.UnitResult{
			Program:      uj.program,
			Arg:          uj.arg,
			Impl:         uj.impl.String(),
			Instructions: meta.Instructions,
			TPQ:          meta.TPQ,
			IPT:          meta.IPT,
			IPQ:          meta.IPQ,
			Caches:       make([]shard.GeomStats, len(caches)),
		}
		for g, cs := range caches {
			u.Caches[g] = shard.GeomStats{
				SizeKB:     cs.Config.SizeBytes / 1024,
				BlockBytes: cs.Config.BlockBytes,
				Assoc:      cs.Config.Assoc,
				IMisses:    cs.IMisses,
				DMisses:    cs.DMisses,
				Writebacks: cs.Writebacks,
			}
		}
		units[i] = u
		s.checkpointUnit(job, i, u)
		job.emit(api.RunProgressEvent{
			Type: api.EventRun, ID: job.ID,
			Done: int(done.Add(1)), Total: len(jobs),
			Program: uj.program, Arg: uj.arg,
			Impl: uj.impl.String(), Source: src.String(),
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return units, nil
}
