package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"jmtam/internal/faultnet"
	"jmtam/internal/shard"
)

// sweepBodies covers both summary and detail documents: one workload ×
// two impls over a 2×2 geometry grid that includes the paper's 8K
// 4-way reference point, so Table 2 assembly is exercised too.
var sweepBodies = []string{
	`{"workloads":[{"program":"ss","arg":40}],"sizes_kb":[1,8],"assocs":[1,4],"impls":["md","am"]}`,
	`{"workloads":[{"program":"ss","arg":40}],"sizes_kb":[1,8],"assocs":[1,4],"impls":["md","am"],"detail":true}`,
}

// sweepResultBytes submits a sweep and returns the final result
// document's raw bytes.
func sweepResultBytes(t *testing.T, base, body string) []byte {
	t.Helper()
	lines := readStream(t, postJSON(t, base+"/v1/sweeps", body))
	final := lines[len(lines)-1]
	if final.Type != "result" {
		t.Fatalf("final line type = %q (error %q)", final.Type, final.Error)
	}
	return final.Result
}

// compactJSON strips encoder indentation: GET documents are served
// indented while stream lines are compact, and only the JSON value may
// differ, never the numbers inside it.
func compactJSON(t *testing.T, raw []byte) string {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		t.Fatalf("bad JSON %q: %v", raw, err)
	}
	return buf.String()
}

func metricCounters(t *testing.T, base string) map[string]uint64 {
	t.Helper()
	resp, err := http.Get(base + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc.Counters
}

// newWorker starts a leaf tamsimd (a plain server) and returns its base
// URL.
func newWorker(t *testing.T) string {
	t.Helper()
	_, ts := newTestServer(t, Config{})
	return ts.URL
}

// TestSweepDistributedByteIdentical is the tentpole guarantee: a sweep
// farmed out across two workers produces a result document
// byte-identical to the same sweep executed in-process, and a clean
// distributed run reports zero retries/re-queues on /metricz.
func TestSweepDistributedByteIdentical(t *testing.T) {
	_, local := newTestServer(t, Config{})
	w1, w2 := newWorker(t), newWorker(t)
	_, coord := newTestServer(t, Config{
		ShardWorkers: []string{w1, w2},
		Shard:        shard.Config{BaseBackoff: time.Millisecond},
	})
	for i, body := range sweepBodies {
		want := sweepResultBytes(t, local.URL, body)
		got := sweepResultBytes(t, coord.URL, body)
		if string(got) != string(want) {
			t.Fatalf("body %d: distributed result differs from local\ngot  %s\nwant %s", i, got, want)
		}
	}
	c := metricCounters(t, coord.URL)
	for _, name := range []string{"shard.retries", "shard.requeues", "shard.breaker.opens", "shard.local"} {
		if v, ok := c[name], true; !ok || v != 0 {
			t.Errorf("clean run: %s = %d, want 0 (present)", name, v)
		}
	}
	if c["shard.remote"] == 0 || c["shard.shards"] == 0 {
		t.Errorf("clean run: shard.remote=%d shard.shards=%d, want nonzero", c["shard.remote"], c["shard.shards"])
	}
}

// TestSweepDistributedChaosByteIdentical injects seeded faults — one
// permanently dead worker plus a transport dropping requests, serving
// 503s and cutting streams mid-body — and requires the merged output to
// stay byte-identical while the retry/re-queue counters go nonzero.
func TestSweepDistributedChaosByteIdentical(t *testing.T) {
	_, local := newTestServer(t, Config{})
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // crashed worker: TCP-level connection refused
	good := newWorker(t)
	_, coord := newTestServer(t, Config{
		ShardWorkers: []string{deadURL, good},
		Shard: shard.Config{
			// Disconnects cut response bodies past 512 bytes, so the tiny
			// /readyz probes always pass and the live worker stays
			// admissible while its sweep streams get severed mid-body.
			Transport: faultnet.NewTransport(nil, faultnet.Plan{
				Seed: 11, Disconnect: 0.6, SpikeProb: 0.3, Spike: 2 * time.Millisecond,
			}),
			BaseBackoff: time.Millisecond,
			MaxBackoff:  5 * time.Millisecond,
			MaxAttempts: 12,
			Seed:        11,
		},
	})
	for i, body := range sweepBodies {
		want := sweepResultBytes(t, local.URL, body)
		got := sweepResultBytes(t, coord.URL, body)
		if string(got) != string(want) {
			t.Fatalf("body %d: chaotic result differs from local\ngot  %s\nwant %s", i, got, want)
		}
	}
	c := metricCounters(t, coord.URL)
	if c["shard.retries"] == 0 && c["shard.requeues"] == 0 {
		t.Errorf("chaos run: retries=%d requeues=%d, want at least one nonzero", c["shard.retries"], c["shard.requeues"])
	}
	if c["shard.breaker.opens"] == 0 {
		t.Errorf("chaos run: dead worker never opened its breaker")
	}
}

// TestSweepDistributedNoWorkersDegradesLocal points the coordinator at
// nothing but a dead worker: every shard must degrade to in-process
// execution and the output must still match a local sweep exactly.
func TestSweepDistributedNoWorkersDegradesLocal(t *testing.T) {
	_, local := newTestServer(t, Config{})
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	_, coord := newTestServer(t, Config{
		ShardWorkers: []string{deadURL},
		Shard: shard.Config{
			BaseBackoff: time.Millisecond,
			MaxBackoff:  time.Millisecond,
			MaxAttempts: 2,
		},
	})
	body := sweepBodies[0]
	want := sweepResultBytes(t, local.URL, body)
	got := sweepResultBytes(t, coord.URL, body)
	if string(got) != string(want) {
		t.Fatalf("local-degraded result differs from local\ngot  %s\nwant %s", got, want)
	}
	c := metricCounters(t, coord.URL)
	if c["shard.local"] == 0 {
		t.Errorf("shard.local = 0, want every shard to degrade locally")
	}
	if c["shard.remote"] != 0 {
		t.Errorf("shard.remote = %d with no live worker", c["shard.remote"])
	}
}

// TestJournalRestartResumesIncompleteJob kills the daemon with a job
// still queued and restarts it on the same journal: the original job ID
// must eventually serve the correct result.
func TestJournalRestartResumesIncompleteJob(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "journal.ndjson")
	body := sweepBodies[0]

	cfg := Config{JournalPath: jpath, Workers: 1}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	// Occupy the only pool slot so the submitted job is journaled but
	// cannot start before the "crash".
	if err := s1.pool.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, ts1.URL+"/v1/sweeps?detach=1", body)
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.State.Terminal() {
		t.Fatalf("job %s terminal before crash", st.ID)
	}
	ts1.Close()
	s1.Close() // daemon dies with the job incomplete on disk

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() { ts2.Close(); s2.Close() })
	final := waitState(t, ts2.URL, st.ID, StateDone)

	_, local := newTestServer(t, Config{})
	want := sweepResultBytes(t, local.URL, body)
	if compactJSON(t, final.Result) != compactJSON(t, want) {
		t.Fatalf("post-restart result differs\ngot  %s\nwant %s", final.Result, want)
	}
	if c := metricCounters(t, ts2.URL); c["journal.requeued"] == 0 {
		t.Errorf("journal.requeued = 0, want >= 1")
	}
}

// TestJournalRestartServesCompletedResult restarts the daemon after a
// job finished: the result must come back from the journal, and new
// job IDs must not collide with journaled ones.
func TestJournalRestartServesCompletedResult(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "journal.ndjson")
	cfg := Config{JournalPath: jpath}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	lines := readStream(t, postJSON(t, ts1.URL+"/v1/runs", `{"program":"ss","arg":40}`))
	final := lines[len(lines)-1]
	if final.Type != "result" {
		t.Fatalf("final line = %q", final.Type)
	}
	id := lines[0].ID
	ts1.Close()
	s1.Close()

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() { ts2.Close(); s2.Close() })
	st := waitState(t, ts2.URL, id, StateDone)
	if compactJSON(t, st.Result) != compactJSON(t, final.Result) {
		t.Fatalf("restored result differs\ngot  %s\nwant %s", st.Result, final.Result)
	}
	// A fresh submission must get an ID past the journaled sequence.
	resp := postJSON(t, ts2.URL+"/v1/runs?detach=1", `{"program":"ss","arg":40}`)
	var st2 JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st2); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st2.ID == id {
		t.Fatalf("new job reused journaled ID %s", id)
	}
	waitState(t, ts2.URL, st2.ID, StateDone)
}

// TestCancelRaceIdempotent races DELETE against job completion: however
// the race lands, the job settles in exactly one terminal state and
// further DELETEs do not disturb it.
func TestCancelRaceIdempotent(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/runs?detach=1", `{"program":"ss","arg":40}`)
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+st.ID, nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("DELETE status = %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()

	deadline := time.Now().Add(30 * time.Second)
	var settled JobStatus
	for {
		r, err := http.Get(ts.URL + "/v1/runs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&settled); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if settled.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", settled.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if settled.State != StateDone && settled.State != StateCanceled {
		t.Fatalf("settled state = %q", settled.State)
	}
	// DELETE after terminal is a no-op: same state, same result.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+st.ID, nil)
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var after JobStatus
	if err := json.NewDecoder(r2.Body).Decode(&after); err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if after.State != settled.State || string(after.Result) != string(settled.Result) {
		t.Fatalf("post-terminal DELETE changed the job: %q -> %q", settled.State, after.State)
	}
}

// TestJournalSurvivesTornTail appends garbage to a journal with one
// completed job: recovery must keep everything before the torn write.
func TestJournalSurvivesTornTail(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "journal.ndjson")
	cfg := Config{JournalPath: jpath}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	lines := readStream(t, postJSON(t, ts1.URL+"/v1/runs", `{"program":"ss","arg":40}`))
	id := lines[0].ID
	ts1.Close()
	s1.Close()

	f, err := os.OpenFile(jpath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"accept","id":"r-9`); err != nil { // torn mid-record
		t.Fatal(err)
	}
	f.Close()

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() { ts2.Close(); s2.Close() })
	waitState(t, ts2.URL, id, StateDone)
}
