package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Job is one submitted run or sweep. Every NDJSON line a job emits is
// retained, so a subscriber — the submitting request or a later
// GET ?stream=1 — replays the event stream from the beginning and then
// follows live; nothing is dropped and late joiners see a complete
// stream.
type Job struct {
	ID      string
	Kind    string // "run" or "sweep"
	Tenant  string // "" when tenancy is disabled
	Created time.Time

	mu      sync.Mutex
	cond    *sync.Cond
	state   JobState
	errMsg  string
	result  json.RawMessage
	lines   [][]byte
	cancel  context.CancelFunc
	release func() // admission slot release; nil when tenancy is disabled
}

func newJob(id, kind, tenant string) *Job {
	j := &Job{ID: id, Kind: kind, Tenant: tenant, Created: time.Now(), state: StateQueued}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// emit appends one NDJSON line (the JSON encoding of v) and wakes
// subscribers.
func (j *Job) emit(v any) {
	b, err := json.Marshal(v)
	if err != nil {
		b = []byte(fmt.Sprintf(`{"type":"error","error":%q}`, err.Error()))
	}
	j.mu.Lock()
	j.lines = append(j.lines, b)
	j.cond.Broadcast()
	j.mu.Unlock()
}

// setRunning moves queued → running.
func (j *Job) setRunning() {
	j.mu.Lock()
	if j.state == StateQueued {
		j.state = StateRunning
	}
	j.cond.Broadcast()
	j.mu.Unlock()
}

// setState records the job's state.
func (j *Job) setState(s JobState) {
	j.mu.Lock()
	j.state = s
	j.cond.Broadcast()
	j.mu.Unlock()
}

// finish moves the job to a terminal state. The caller emits the final
// NDJSON line before calling finish, so a subscriber that observes the
// terminal state has the complete stream.
func (j *Job) finish(state JobState, result json.RawMessage, errMsg string) {
	j.mu.Lock()
	j.state = state
	j.result = result
	j.errMsg = errMsg
	j.cond.Broadcast()
	j.mu.Unlock()
}

// State returns the job's current state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Cancel requests cooperative cancellation; it is idempotent and a
// no-op once the job is terminal.
func (j *Job) Cancel() {
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

func (j *Job) setCancel(c context.CancelFunc) {
	j.mu.Lock()
	j.cancel = c
	j.mu.Unlock()
}

// Status snapshots the job for GET /v1/runs/{id}.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{ID: j.ID, Kind: j.Kind, Tenant: j.Tenant, State: j.state, Error: j.errMsg, Result: j.result}
}

// setRelease attaches the job's admission-slot release; finishJob runs
// it exactly once when the job reaches a terminal state.
func (j *Job) setRelease(f func()) {
	j.mu.Lock()
	j.release = f
	j.mu.Unlock()
}

// takeRelease detaches and returns the release hook (nil if none).
func (j *Job) takeRelease() func() {
	j.mu.Lock()
	f := j.release
	j.release = nil
	j.mu.Unlock()
	return f
}

// streamTo writes the job's NDJSON lines to w from the beginning,
// flushing after every batch, and returns once the job is terminal and
// fully drained (or the write fails — the subscriber went away). Each
// batch gets a fresh write deadline, so a subscriber that stops reading
// releases the handler goroutine instead of pinning it; transports that
// cannot set per-request deadlines (httptest recorders) stream without
// one.
func (j *Job) streamTo(w http.ResponseWriter, writeTimeout time.Duration) {
	fl, _ := w.(http.Flusher)
	rc := http.NewResponseController(w)
	next := 0
	for {
		j.mu.Lock()
		for next >= len(j.lines) && !j.state.Terminal() {
			j.cond.Wait()
		}
		batch := j.lines[next:]
		next = len(j.lines)
		done := j.state.Terminal() && next == len(j.lines)
		j.mu.Unlock()
		if writeTimeout > 0 && len(batch) > 0 {
			rc.SetWriteDeadline(time.Now().Add(writeTimeout))
		}
		for _, line := range batch {
			if _, err := w.Write(append(line, '\n')); err != nil {
				return
			}
		}
		if fl != nil && len(batch) > 0 {
			fl.Flush()
		}
		if done {
			return
		}
	}
}

// jobRegistry indexes jobs by ID and assigns deterministic sequential
// IDs ("r-000001", "s-000002", ...).
type jobRegistry struct {
	mu    sync.Mutex
	seq   int
	jobs  map[string]*Job
	order []string
}

func newJobRegistry() *jobRegistry {
	return &jobRegistry{jobs: make(map[string]*Job)}
}

func (r *jobRegistry) add(kind, tenant string) *Job {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	id := fmt.Sprintf("%c-%06d", kind[0], r.seq)
	j := newJob(id, kind, tenant)
	r.jobs[id] = j
	r.order = append(r.order, id)
	return j
}

// restore re-indexes a journal-recovered job under its original ID,
// advancing seq past the ID's numeric suffix so post-restart IDs never
// collide with journaled ones.
func (r *jobRegistry) restore(id, kind, tenant string) *Job {
	r.mu.Lock()
	defer r.mu.Unlock()
	if j := r.jobs[id]; j != nil {
		return j
	}
	if i := strings.LastIndexByte(id, '-'); i >= 0 {
		if n, err := strconv.Atoi(id[i+1:]); err == nil && n > r.seq {
			r.seq = n
		}
	}
	j := newJob(id, kind, tenant)
	r.jobs[id] = j
	r.order = append(r.order, id)
	return j
}

func (r *jobRegistry) get(id string) *Job {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.jobs[id]
}

func (r *jobRegistry) list() []*Job {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Job, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.jobs[id])
	}
	return out
}
