package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"jmtam/api"
)

// tenantedServer starts a daemon with two tenants: "free" is
// unlimited, "capped" is bounded by lim.
func tenantedServer(t *testing.T, lim TenantLimits) (*Server, string) {
	t.Helper()
	tn := NewTenants()
	tn.Add("key-free", "free", TenantLimits{})
	tn.Add("key-capped", "capped", lim)
	s, ts := newTestServer(t, Config{Workers: 2, Tenants: tn})
	return s, ts.URL
}

// authedPost submits body with the key's Bearer header and returns the
// response (caller closes).
func authedPost(t *testing.T, url, key, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// decodeEnvelope reads a structured error response and asserts its
// HTTP status.
func decodeEnvelope(t *testing.T, resp *http.Response, wantStatus int) *api.Error {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("status = %d, want %d", resp.StatusCode, wantStatus)
	}
	var env api.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("error response is not an envelope: %v", err)
	}
	if env.Error == nil {
		t.Fatal("error response has an empty envelope")
	}
	return env.Error
}

func TestLoadTenants(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "keys")
	const file = `# front-door tenants
key-a alice 4 30
key-b bob             # unlimited

key-b2 bob 0 2 5
`
	if err := os.WriteFile(path, []byte(file), 0o600); err != nil {
		t.Fatal(err)
	}
	tn, err := LoadTenants(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := tn.resolve("key-a"); got != "alice" {
		t.Errorf("key-a -> %q", got)
	}
	if got, _ := tn.resolve("key-b2"); got != "bob" {
		t.Errorf("key-b2 -> %q", got)
	}
	if lim := tn.limits["alice"]; lim.MaxConcurrent != 4 || lim.JobsPerMinute != 30 {
		t.Errorf("alice limits = %+v", lim)
	}
	// Last Add wins bob's limits: key-b2's line set a rate and burst.
	if lim := tn.limits["bob"]; lim.JobsPerMinute != 2 || lim.Burst != 5 {
		t.Errorf("bob limits = %+v", lim)
	}

	for name, bad := range map[string]string{
		"one column":   "justakey\n",
		"bad limit":    "k t notanumber\n",
		"negative":     "k t -1\n",
		"extra column": "k t 1 2 3 4\n",
		"empty":        "# nothing\n",
	} {
		if err := os.WriteFile(path, []byte(bad), 0o600); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadTenants(path); err == nil {
			t.Errorf("%s: accepted %q", name, bad)
		}
	}
}

func TestAuthRequired(t *testing.T) {
	_, base := tenantedServer(t, TenantLimits{})

	resp := authedPost(t, base+"/v1/runs", "", `{"program":"ss","arg":20}`)
	if e := decodeEnvelope(t, resp, http.StatusUnauthorized); e.Code != api.CodeUnauthorized || e.Retryable {
		t.Errorf("no key: envelope = %+v", e)
	}
	resp = authedPost(t, base+"/v1/runs", "key-wrong", `{"program":"ss","arg":20}`)
	if e := decodeEnvelope(t, resp, http.StatusUnauthorized); e.Code != api.CodeUnauthorized {
		t.Errorf("bad key: envelope = %+v", e)
	}
	// GET endpoints need auth too.
	getResp, err := http.Get(base + "/v1/runs")
	if err != nil {
		t.Fatal(err)
	}
	if e := decodeEnvelope(t, getResp, http.StatusUnauthorized); e.Code != api.CodeUnauthorized {
		t.Errorf("unauthenticated list envelope = %+v", e)
	}
	// Probes stay open: the fleet and its monitoring don't hold keys.
	for _, path := range []string{"/healthz", "/metricz"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d without a key, want 200", path, resp.StatusCode)
		}
	}
	c := metricCounters(t, base)
	if c["auth.missing"] == 0 || c["auth.rejected"] == 0 {
		t.Errorf("auth counters = missing %d rejected %d, want both > 0", c["auth.missing"], c["auth.rejected"])
	}
}

// TestAdmissionBucket drives the token bucket with a fake clock: burst
// admits immediately, exhaustion rejects with a refill-derived
// Retry-After, elapsed time restores tokens, and a concurrency
// rejection does not also consume a rate token.
func TestAdmissionBucket(t *testing.T) {
	now := time.Unix(1000, 0)
	tn := NewTenants()
	tn.Add("k", "ten", TenantLimits{JobsPerMinute: 60, Burst: 2})
	a := newAdmission(tn, func() time.Time { return now })

	rel1, rej := a.acquire("ten")
	if rej != nil {
		t.Fatalf("first acquire rejected: %+v", rej)
	}
	rel2, rej := a.acquire("ten")
	if rej != nil {
		t.Fatalf("second acquire (burst) rejected: %+v", rej)
	}
	_, rej = a.acquire("ten")
	if rej == nil {
		t.Fatal("third acquire admitted past the burst")
	}
	// 60/min = one token per second: an empty bucket refills one token
	// in 1s.
	if rej.retryAfter != time.Second {
		t.Errorf("retryAfter = %v, want 1s", rej.retryAfter)
	}
	now = now.Add(1500 * time.Millisecond)
	rel3, rej := a.acquire("ten")
	if rej != nil {
		t.Fatalf("acquire after refill rejected: %+v", rej)
	}
	rel1()
	rel2()
	rel3()

	// Concurrency rejections must not drain the bucket.
	tn2 := NewTenants()
	tn2.Add("k", "ten", TenantLimits{MaxConcurrent: 1, JobsPerMinute: 2, Burst: 2})
	b := newAdmission(tn2, func() time.Time { return now })
	relA, rej := b.acquire("ten") // consumes token 1 of 2
	if rej != nil {
		t.Fatalf("acquire: %+v", rej)
	}
	if _, rej = b.acquire("ten"); rej == nil {
		t.Fatal("second concurrent job admitted past MaxConcurrent=1")
	} else if !strings.Contains(rej.msg, "concurrent") {
		t.Errorf("rejection = %q, want a concurrency message", rej.msg)
	}
	relA()
	relB, rej := b.acquire("ten") // token 2 of 2 — still there if the rejection didn't eat it
	if rej != nil {
		t.Fatalf("acquire after release rejected: %+v (concurrency rejection consumed a token?)", rej)
	}
	relB()
	if _, rej = b.acquire("ten"); rej == nil {
		t.Fatal("bucket should now be empty")
	}
}

func TestQuota429AndIsolation(t *testing.T) {
	// capped: one job per minute, burst 1 — the second submission inside
	// the window must bounce.
	_, base := tenantedServer(t, TenantLimits{JobsPerMinute: 1})

	resp := authedPost(t, base+"/v1/runs?detach=1", "key-capped", `{"program":"ss","arg":20}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first capped submit = %d, want 202", resp.StatusCode)
	}
	resp = authedPost(t, base+"/v1/runs?detach=1", "key-capped", `{"program":"ss","arg":21}`)
	ra := resp.Header.Get("Retry-After")
	e := decodeEnvelope(t, resp, http.StatusTooManyRequests)
	if e.Code != api.CodeQuotaExhausted || !e.Retryable {
		t.Errorf("quota envelope = %+v, want retryable quota_exhausted", e)
	}
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want a positive integer of seconds", ra)
	}

	// The free tenant is untouched by capped's exhaustion.
	for i := 0; i < 3; i++ {
		resp := authedPost(t, base+"/v1/runs?detach=1", "key-free", fmt.Sprintf(`{"program":"ss","arg":%d}`, 30+i))
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("free submit %d = %d, want 202", i, resp.StatusCode)
		}
	}
	c := metricCounters(t, base)
	if c["tenant.capped.rejected"] != 1 || c["tenant.capped.admitted"] != 1 {
		t.Errorf("capped counters = admitted %d rejected %d, want 1/1",
			c["tenant.capped.admitted"], c["tenant.capped.rejected"])
	}
	if c["tenant.free.rejected"] != 0 || c["tenant.free.admitted"] != 3 {
		t.Errorf("free counters = admitted %d rejected %d, want 3/0",
			c["tenant.free.admitted"], c["tenant.free.rejected"])
	}
}

// TestQuotaIsolationConcurrent hammers the front door from two tenants
// at once: the capped tenant collects 429s, the free tenant never sees
// one, and counters stay coherent (admitted + rejected = submissions).
func TestQuotaIsolationConcurrent(t *testing.T) {
	_, base := tenantedServer(t, TenantLimits{JobsPerMinute: 2, Burst: 2})

	const perTenant = 8
	var wg sync.WaitGroup
	var mu sync.Mutex
	status := map[string][]int{}
	submit := func(key string, arg int) {
		defer wg.Done()
		resp := authedPost(t, base+"/v1/runs?detach=1", key, fmt.Sprintf(`{"program":"ss","arg":%d}`, arg))
		resp.Body.Close()
		mu.Lock()
		status[key] = append(status[key], resp.StatusCode)
		mu.Unlock()
	}
	for i := 0; i < perTenant; i++ {
		wg.Add(2)
		go submit("key-free", 20+i)
		go submit("key-capped", 20+i)
	}
	wg.Wait()

	count := func(key string, code int) int {
		n := 0
		for _, c := range status[key] {
			if c == code {
				n++
			}
		}
		return n
	}
	if got := count("key-free", http.StatusAccepted); got != perTenant {
		t.Errorf("free tenant: %d/%d accepted (statuses %v)", got, perTenant, status["key-free"])
	}
	// Burst 2 admits at least two and the slow refill at most a couple
	// more; the rest must bounce.
	if got := count("key-capped", http.StatusTooManyRequests); got < perTenant-4 {
		t.Errorf("capped tenant: only %d rejections of %d submissions (statuses %v)",
			got, perTenant, status["key-capped"])
	}
	c := metricCounters(t, base)
	if c["tenant.capped.admitted"]+c["tenant.capped.rejected"] != perTenant {
		t.Errorf("capped admitted %d + rejected %d != %d submissions",
			c["tenant.capped.admitted"], c["tenant.capped.rejected"], perTenant)
	}
}

// TestTenantVisibility: tenants see exactly their own jobs — status,
// list, and cancel all treat a foreign job as nonexistent.
func TestTenantVisibility(t *testing.T) {
	_, base := tenantedServer(t, TenantLimits{})

	resp := authedPost(t, base+"/v1/runs?detach=1", "key-free", `{"program":"ss","arg":20}`)
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Tenant != "free" {
		t.Errorf("job tenant = %q, want free", st.Tenant)
	}

	authedGet := func(key, path string) *http.Response {
		req, err := http.NewRequest(http.MethodGet, base+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer "+key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// The owner sees it.
	resp = authedGet("key-free", "/v1/runs/"+st.ID)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("owner GET = %d, want 200", resp.StatusCode)
	}
	// A foreign tenant gets not_found — not forbidden, which would leak
	// the ID's existence.
	resp = authedGet("key-capped", "/v1/runs/"+st.ID)
	if e := decodeEnvelope(t, resp, http.StatusNotFound); e.Code != api.CodeNotFound {
		t.Errorf("foreign GET envelope = %+v", e)
	}
	// Lists are scoped.
	resp = authedGet("key-capped", "/v1/runs")
	var foreign []JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&foreign); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, j := range foreign {
		if j.ID == st.ID {
			t.Errorf("foreign list leaked job %s", st.ID)
		}
	}
	// Foreign cancel is a 404 and the job survives.
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/runs/"+st.ID, nil)
	req.Header.Set("Authorization", "Bearer key-capped")
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Errorf("foreign cancel = %d, want 404", dresp.StatusCode)
	}
}
