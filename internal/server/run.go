package server

import (
	"context"
	"encoding/json"

	"jmtam/api"
	"jmtam/internal/core"
	"jmtam/internal/experiments"
	"jmtam/internal/parallel"
	"jmtam/internal/programs"
	"jmtam/internal/trace"
)

// executeRun runs one simulation job: bind a fresh Program onto the
// cached (or freshly compiled) artifact, simulate once with a trace
// recording attached, then fan the recording out across the requested
// cache geometries, emitting one NDJSON progress event per completed
// geometry. The arithmetic is the same as jmtam.Run's — one recording,
// ReplayPair per geometry, position-indexed assembly — so the result
// document matches a direct façade call exactly.
func (s *Server) executeRun(ctx context.Context, job *Job, req *RunRequest) (json.RawMessage, error) {
	return s.cachedResult(ctx, job, "run", &req.RunRequest, func(ctx context.Context) (json.RawMessage, error) {
		return s.freshRun(ctx, job, req)
	})
}

// freshRun executes the simulation; executeRun resolves the result
// cache around it.
func (s *Server) freshRun(ctx context.Context, job *Job, req *RunRequest) (json.RawMessage, error) {
	spec, err := programs.ByName(req.Program)
	if err != nil {
		return nil, err
	}
	// Programs carry per-run closure state (Setup/Verify), so every job
	// gets a fresh Program; only the immutable compiled artifact is
	// shared across jobs.
	prog := spec.Build(req.Arg)
	key := cacheKey{prog: req.Program, arg: req.Arg, impl: req.impl}
	opt := core.Options{MaxInstructions: req.MaxInstructions}
	comp, hit, err := s.cache.get(key, func() (*core.Compiled, error) {
		return core.Compile(req.impl, prog, opt)
	})
	if err != nil {
		return nil, err
	}
	sim, err := comp.NewSim(prog, opt)
	if err != nil {
		return nil, err
	}
	rec := &trace.Recording{}
	sim.Tracer = rec
	defer sim.Close()
	if err := sim.RunContext(ctx); err != nil {
		return nil, err
	}
	job.emit(api.Simulated(job.ID, sim.M.Instructions(), hit))

	stats := make([]experiments.CacheStats, len(req.geoms))
	err = parallel.ForEachContext(ctx, s.cfg.ReplayParallelism, len(req.geoms), func(i int) error {
		pr, err := rec.ReplayPair(req.geoms[i])
		if err != nil {
			return err
		}
		stats[i] = experiments.CacheStats{
			Config:     pr.I.Config(),
			IMisses:    pr.I.Stats().Misses,
			DMisses:    pr.D.Stats().Misses,
			Writebacks: pr.D.Stats().Writebacks,
		}
		job.emit(api.GeometryEvent{
			Type: api.EventGeometry, ID: job.ID, Index: i,
			Cache:      specOf(stats[i].Config),
			IMisses:    stats[i].IMisses,
			DMisses:    stats[i].DMisses,
			Writebacks: stats[i].Writebacks,
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := runResultOf(req.Program, req.Arg, req.impl,
		sim.M.Instructions(), rec.TotalReads(), rec.TotalWrites(),
		sim.Gran.Threads, sim.Gran.Quanta,
		sim.Gran.TPQ(), sim.Gran.IPT(), sim.Gran.IPQ(),
		stats, req.Penalties)
	return json.Marshal(res)
}
