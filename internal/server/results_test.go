package server

import (
	"strings"
	"testing"
)

// resultServer starts a daemon with the result cache enabled (most
// tests run with it off — see newTestServer).
func resultServer(t *testing.T) string {
	t.Helper()
	_, ts := newTestServer(t, Config{Workers: 2, ResultMemBytes: 1 << 20})
	return ts.URL
}

func TestResultKeyProperties(t *testing.T) {
	reqA := `{"program":"ss","arg":40}`
	k1, err := resultKey("run", reqA)
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := resultKey("run", reqA)
	if k1 != k2 {
		t.Error("resultKey is not deterministic")
	}
	if k3, _ := resultKey("sweep", reqA); k3 == k1 {
		t.Error("kind does not participate in the key")
	}
	if k4, _ := resultKey("run", `{"program":"ss","arg":41}`); k4 == k1 {
		t.Error("descriptor does not participate in the key")
	}
	if len(k1) != 64 {
		t.Errorf("key %q is not a sha256 hex digest", k1)
	}
}

// TestResultCacheByteIdentical is the tentpole guarantee: resubmitting
// an identical sweep is served from the result cache — proven by the
// hit counters and the "cached" stream event — and the served document
// is byte-for-byte the fresh one.
func TestResultCacheByteIdentical(t *testing.T) {
	base := resultServer(t)
	body := `{"workloads":[{"program":"ss","arg":40}],"sizes_kb":[1,8],"impls":["md","am"]}`

	fresh := sweepResultBytes(t, base, body)
	c := metricCounters(t, base)
	if c["results.misses"] != 1 || c["results.served"] != 0 {
		t.Fatalf("after fresh sweep: misses %d served %d, want 1/0", c["results.misses"], c["results.served"])
	}

	lines := readStream(t, postJSON(t, base+"/v1/sweeps", body))
	cached := false
	for _, l := range lines {
		if l.Type == "cached" {
			cached = true
		}
		if l.Type == "geometry" || l.Type == "simulated" || l.Type == "progress" {
			t.Errorf("cached job streamed a fresh-execution event %q", l.Type)
		}
	}
	if !cached {
		t.Error("repeat sweep streamed no cached event")
	}
	final := lines[len(lines)-1]
	if final.Type != "result" {
		t.Fatalf("repeat sweep final line = %q", final.Type)
	}
	if string(final.Result) != string(fresh) {
		t.Errorf("cached result differs from fresh\nfresh  %s\ncached %s", fresh, final.Result)
	}
	c = metricCounters(t, base)
	if c["results.hits"] == 0 || c["results.served"] != 1 {
		t.Errorf("after repeat: hits %d served %d, want >0/1", c["results.hits"], c["results.served"])
	}

	// Runs cache too, and a cached run is byte-identical as well.
	runBody := `{"program":"ss","arg":40,"impl":"am"}`
	freshRun := readStream(t, postJSON(t, base+"/v1/runs", runBody))
	cachedRun := readStream(t, postJSON(t, base+"/v1/runs", runBody))
	fr, cr := freshRun[len(freshRun)-1], cachedRun[len(cachedRun)-1]
	if fr.Type != "result" || cr.Type != "result" {
		t.Fatalf("run finals = %q/%q", fr.Type, cr.Type)
	}
	if string(fr.Result) != string(cr.Result) {
		t.Errorf("cached run differs from fresh\nfresh  %s\ncached %s", fr.Result, cr.Result)
	}
}

// TestResultCacheDescriptorSensitivity: the key covers the *normalized*
// request, so materially different descriptors never collide while
// sparse and explicit spellings of the same request do.
func TestResultCacheDescriptorSensitivity(t *testing.T) {
	base := resultServer(t)

	// Same workload, different penalties (visible in the detail cycles):
	// distinct results, so both must execute fresh.
	a := sweepResultBytes(t, base, `{"workloads":[{"program":"ss","arg":40}],"sizes_kb":[8],"impls":["am"],"penalties":[12],"detail":true}`)
	b := sweepResultBytes(t, base, `{"workloads":[{"program":"ss","arg":40}],"sizes_kb":[8],"impls":["am"],"penalties":[24],"detail":true}`)
	if string(a) == string(b) {
		t.Fatal("different penalties produced identical documents — the comparison below proves nothing")
	}
	c := metricCounters(t, base)
	if c["results.misses"] != 2 || c["results.served"] != 0 {
		t.Errorf("distinct descriptors: misses %d served %d, want 2/0", c["results.misses"], c["results.served"])
	}

	// A sparse run request and its explicit-default spelling normalize to
	// one descriptor and share one cache entry.
	sparse := readStream(t, postJSON(t, base+"/v1/runs", `{"program":"ss","arg":40,"impl":"am"}`))
	explicit := readStream(t, postJSON(t, base+"/v1/runs",
		`{"program":"ss","arg":40,"impl":"am","caches":[{"size_kb":8,"block_bytes":64,"assoc":4}],"penalties":[12,24,48]}`))
	if got := explicit[len(explicit)-1]; got.Type != "result" {
		t.Fatalf("explicit run final = %q", got.Type)
	}
	var sawCached bool
	for _, l := range explicit {
		sawCached = sawCached || l.Type == "cached"
	}
	if !sawCached {
		t.Error("explicit-default spelling missed the sparse request's cache entry")
	}
	if string(sparse[len(sparse)-1].Result) != string(explicit[len(explicit)-1].Result) {
		t.Error("normalized-equivalent requests returned different documents")
	}
}

// TestResultCacheDisabled: a negative budget turns the cache off and
// every submission executes fresh.
func TestResultCacheDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, ResultMemBytes: -1})
	body := `{"workloads":[{"program":"ss","arg":40}],"sizes_kb":[8],"impls":["am"]}`
	first := sweepResultBytes(t, ts.URL, body)
	second := sweepResultBytes(t, ts.URL, body)
	if string(first) != string(second) {
		t.Error("repeat sweep differs without the cache — determinism regression")
	}
	c := metricCounters(t, ts.URL)
	for name, v := range c {
		if strings.HasPrefix(name, "results.") && v != 0 {
			t.Errorf("disabled cache moved counter %s = %d", name, v)
		}
	}
}
