package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"jmtam/internal/obs"
	"jmtam/internal/parallel"
)

// Config parameterizes a Server.
type Config struct {
	// Workers bounds the number of concurrently executing jobs
	// (0 = GOMAXPROCS). Jobs past the bound queue until a slot frees.
	Workers int
	// ReplayParallelism bounds the geometry-replay fan-out within one
	// job (0 = 1): the job pool is the unit of concurrency, so per-job
	// fan-out defaults to serial, which also makes a job's geometry
	// progress events arrive in index order.
	ReplayParallelism int
	// CacheEntries bounds the compiled-code cache (0 = 32 artifacts).
	CacheEntries int
	// DefaultMaxInstructions is the per-simulation instruction budget
	// applied when a request leaves max_instructions unset
	// (0 = 2e9, the experiments package's default).
	DefaultMaxInstructions uint64
	// MaxBodyBytes bounds request bodies (0 = 1 MiB).
	MaxBodyBytes int64
}

// Server is the tamsimd serving state: job registry, worker pool,
// compiled-code cache and the server-wide metrics registry.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	pool  *parallel.Pool
	jobs  *jobRegistry
	cache *codeCache

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	// regMu guards reg: obs.Registry is not safe for concurrent use,
	// and handler goroutines update it concurrently.
	regMu sync.Mutex
	reg   *obs.Registry
}

// New returns a ready-to-serve Server.
func New(cfg Config) *Server {
	if cfg.DefaultMaxInstructions == 0 {
		cfg.DefaultMaxInstructions = 2_000_000_000
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.ReplayParallelism == 0 {
		cfg.ReplayParallelism = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		mux:        http.NewServeMux(),
		pool:       parallel.NewPool(cfg.Workers),
		jobs:       newJobRegistry(),
		cache:      newCodeCache(cfg.CacheEntries),
		baseCtx:    ctx,
		baseCancel: cancel,
		reg:        obs.NewRegistry(),
	}
	s.routes()
	return s
}

// Close cancels every outstanding job and waits for the workers to
// drain.
func (s *Server) Close() {
	s.baseCancel()
	s.wg.Wait()
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.count("http.requests", 1)
		s.mux.ServeHTTP(w, r)
	})
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/runs", s.handleRunSubmit)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSweepSubmit)
	s.mux.HandleFunc("GET /v1/runs", s.handleList)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /metricz", s.handleMetricz)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
}

// --- metrics helpers --------------------------------------------------------

func (s *Server) count(name string, d uint64) {
	s.regMu.Lock()
	s.reg.Counter(name).Add(d)
	s.regMu.Unlock()
}

func (s *Server) gauge(name string, d int64) {
	s.regMu.Lock()
	s.reg.Gauge(name).Add(d)
	s.regMu.Unlock()
}

func (s *Server) observe(name string, v uint64) {
	s.regMu.Lock()
	s.reg.Histogram(name).Observe(v)
	s.regMu.Unlock()
}

func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.regMu.Lock()
	defer s.regMu.Unlock()
	hits, misses, entries := s.cache.stats()
	s.reg.Counter("codecache.hits").Add(hits - s.reg.Counter("codecache.hits").Value())
	s.reg.Counter("codecache.misses").Add(misses - s.reg.Counter("codecache.misses").Value())
	s.reg.Gauge("codecache.entries").Set(int64(entries))
	s.reg.Gauge("pool.slots").Set(int64(s.pool.Cap()))
	s.reg.Gauge("pool.in_use").Set(int64(s.pool.InUse()))
	if err := s.reg.WriteJSON(w); err != nil {
		// The header is already out; nothing useful to do.
		return
	}
}

// --- submission -------------------------------------------------------------

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleRunSubmit(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := s.decode(w, r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := req.normalize(s.cfg.DefaultMaxInstructions); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	job := s.submit("run", func(ctx context.Context, j *Job) (json.RawMessage, error) {
		return s.executeRun(ctx, j, &req)
	})
	s.respondToSubmit(w, r, job)
}

func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := s.decode(w, r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := req.normalize(); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	job := s.submit("sweep", func(ctx context.Context, j *Job) (json.RawMessage, error) {
		return s.executeSweep(ctx, j, &req)
	})
	s.respondToSubmit(w, r, job)
}

// submit registers a job and launches its lifecycle goroutine: acquire
// a pool slot (counted as queue time), execute, and publish the
// terminal event + state.
func (s *Server) submit(kind string, exec func(ctx context.Context, j *Job) (json.RawMessage, error)) *Job {
	job := s.jobs.add(kind)
	ctx, cancel := context.WithCancel(s.baseCtx)
	job.setCancel(cancel)
	s.count("jobs.submitted", 1)
	s.gauge("jobs.queued", 1)
	job.emit(map[string]any{"type": "accepted", "id": job.ID, "kind": kind})

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer cancel()
		start := time.Now()
		err := s.pool.Acquire(ctx)
		s.gauge("jobs.queued", -1)
		if err != nil {
			s.finishJob(job, nil, err, start)
			return
		}
		defer s.pool.Release()
		s.gauge("jobs.running", 1)
		s.count("jobs.started", 1)
		job.setRunning()
		job.emit(map[string]any{"type": "started", "id": job.ID,
			"queue_ms": time.Since(start).Milliseconds()})
		result, err := exec(ctx, job)
		s.gauge("jobs.running", -1)
		s.finishJob(job, result, err, start)
	}()
	return job
}

// finishJob emits the terminal NDJSON line, moves the job to its
// terminal state and records latency metrics.
func (s *Server) finishJob(job *Job, result json.RawMessage, err error, start time.Time) {
	ms := uint64(time.Since(start).Milliseconds())
	switch {
	case err == nil:
		job.emit(map[string]any{"type": "result", "id": job.ID, "result": result})
		job.finish(StateDone, result, "")
		s.count("jobs.finished", 1)
	case errors.Is(err, context.Canceled):
		job.emit(map[string]any{"type": "canceled", "id": job.ID, "error": err.Error()})
		job.finish(StateCanceled, nil, err.Error())
		s.count("jobs.canceled", 1)
	default:
		job.emit(map[string]any{"type": "error", "id": job.ID, "error": err.Error()})
		job.finish(StateFailed, nil, err.Error())
		s.count("jobs.failed", 1)
	}
	s.observe("job.latency.ms."+job.Kind, ms)
}

// respondToSubmit either streams the job's NDJSON event stream on the
// open connection (the default; closing the connection cancels the
// job) or, with ?detach=1, returns 202 with the job document
// immediately.
func (s *Server) respondToSubmit(w http.ResponseWriter, r *http.Request, job *Job) {
	if r.URL.Query().Get("detach") == "1" {
		writeJSON(w, http.StatusAccepted, job.Status())
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	// A submitter that goes away takes its job with it; detached jobs
	// have no watcher and run to completion.
	stop := context.AfterFunc(r.Context(), job.Cancel)
	defer stop()
	job.streamTo(w)
}

// --- status, streaming, cancellation ---------------------------------------

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.jobs.list()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		st := j.Status()
		st.Result = nil // list view stays compact
		out = append(out, st)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	job := s.jobs.get(r.PathValue("id"))
	if job == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no such job"))
		return
	}
	if r.URL.Query().Get("stream") == "1" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		job.streamTo(w)
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job := s.jobs.get(r.PathValue("id"))
	if job == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no such job"))
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusAccepted, job.Status())
}
