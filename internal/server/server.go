package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"jmtam/api"
	"jmtam/internal/obs"
	"jmtam/internal/parallel"
	"jmtam/internal/shard"
	"jmtam/internal/tracestore"
)

// Config parameterizes a Server.
type Config struct {
	// Workers bounds the number of concurrently executing jobs
	// (0 = GOMAXPROCS). Jobs past the bound queue until a slot frees.
	Workers int
	// ReplayParallelism bounds the geometry-replay fan-out within one
	// job (0 = 1): the job pool is the unit of concurrency, so per-job
	// fan-out defaults to serial, which also makes a job's geometry
	// progress events arrive in index order.
	ReplayParallelism int
	// CacheEntries bounds the compiled-code cache (0 = 32 artifacts).
	CacheEntries int
	// DefaultMaxInstructions is the per-simulation instruction budget
	// applied when a request leaves max_instructions unset
	// (0 = 2e9, the experiments package's default).
	DefaultMaxInstructions uint64
	// MaxBodyBytes bounds request bodies (0 = 1 MiB).
	MaxBodyBytes int64
	// JournalPath, when set, enables the write-ahead job journal: every
	// accept/start/terminal transition is an fsynced NDJSON record, and
	// sweeps checkpoint each completed unit, so a restarted daemon
	// re-queues the work that was in flight — resuming sweeps from their
	// last checkpoint — and still serves results for completed job IDs.
	JournalPath string
	// JournalMaxBytes bounds the journal file: past it the journal
	// compacts, folding terminal jobs into single snapshot lines
	// (0 = 64 MiB, negative = unbounded).
	JournalMaxBytes int64
	// JobTimeout is the per-job execution deadline: a job still running
	// past it is killed (counted under watchdog.kills, failed with a
	// deadline_exceeded error) and releases its worker and admission
	// slots. 0 disables the watchdog.
	JobTimeout time.Duration
	// ScrubInterval, with a disk store tier configured, runs a
	// background integrity scrub every interval: blobs failing their
	// content checksum are quarantined and repaired from peers or
	// re-recorded. 0 disables the scrubber (reads still verify).
	ScrubInterval time.Duration
	// StreamWriteTimeout bounds each write on a job's NDJSON stream so a
	// stalled subscriber cannot pin a handler goroutine forever (0 = 30s).
	StreamWriteTimeout time.Duration
	// ShardWorkers lists remote tamsimd base URLs ("http://host:port").
	// When nonempty, sweep jobs are partitioned into (workload, impl)
	// shards and farmed out through a shard.Coordinator instead of
	// running in-process.
	ShardWorkers []string
	// Shard tunes the coordinator. Its Workers field is taken from
	// ShardWorkers; Metrics defaults to the server's /metricz registry
	// and LocalParallelism to ReplayParallelism.
	Shard shard.Config
	// StoreDir is the content-addressed recording store's disk tier
	// ("" = memory only). Daemons sharing a directory share recordings.
	StoreDir string
	// StoreMemBytes bounds the store's in-memory tier (0 = 256 MiB).
	// Negative disables the recording store entirely: sweeps simulate
	// in-process and /v1/recordings returns 404.
	StoreMemBytes int64
	// StorePeers lists peer daemon base URLs to consult (and push to)
	// on a local store miss — typically the coordinator's URL on a
	// shard worker, so a recording made anywhere serves the fleet.
	StorePeers []string
	// MaxRecordingBytes bounds an uploaded compacted recording
	// (0 = 256 MiB). GET responses are unaffected.
	MaxRecordingBytes int64
	// Tenants enables API-key tenancy: every request outside the
	// exempt paths needs `Authorization: Bearer <key>`, jobs belong to
	// the resolving tenant (scoping list/status/cancel), and
	// submissions pass the per-tenant admission controller. Nil
	// disables tenancy entirely.
	Tenants *Tenants
	// ResultMemBytes bounds the result cache's memory tier
	// (0 = 64 MiB). Negative disables the result cache: every
	// submission executes fresh and /v1/results returns 404. With
	// StoreDir set the disk tier lives under StoreDir/results.
	ResultMemBytes int64
}

// Server is the tamsimd serving state: job registry, worker pool,
// compiled-code cache and the server-wide metrics registry.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	pool    *parallel.Pool
	jobs    *jobRegistry
	cache   *codeCache
	journal *journal
	coord   *shard.Coordinator
	store   *tracestore.Store
	fleet   *tracestore.Fleet
	results *tracestore.Fleet
	admit   *admission

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup // job lifecycle goroutines (Drain waits on these)
	bg         sync.WaitGroup // background loops (scrubber); exit on baseCtx
	draining   atomic.Bool
	closeOnce  sync.Once

	// regMu guards reg: obs.Registry is not safe for concurrent use,
	// and handler goroutines update it concurrently.
	regMu sync.Mutex
	reg   *obs.Registry
}

// New returns a ready-to-serve Server. With a journal configured it
// replays the journal first: completed jobs are restored under their
// original IDs with their results, incomplete ones are re-queued.
func New(cfg Config) (*Server, error) {
	if cfg.DefaultMaxInstructions == 0 {
		cfg.DefaultMaxInstructions = 2_000_000_000
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.MaxRecordingBytes == 0 {
		cfg.MaxRecordingBytes = 256 << 20
	}
	if cfg.ReplayParallelism == 0 {
		cfg.ReplayParallelism = 1
	}
	if cfg.StreamWriteTimeout == 0 {
		cfg.StreamWriteTimeout = 30 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		mux:        http.NewServeMux(),
		pool:       parallel.NewPool(cfg.Workers),
		jobs:       newJobRegistry(),
		cache:      newCodeCache(cfg.CacheEntries),
		baseCtx:    ctx,
		baseCancel: cancel,
		reg:        obs.NewRegistry(),
	}
	if cfg.StoreMemBytes >= 0 {
		st, err := tracestore.New(cfg.StoreDir, cfg.StoreMemBytes, (*serverMetrics)(s))
		if err != nil {
			cancel()
			return nil, err
		}
		s.store = st
		s.fleet = tracestore.NewFleet(st, cfg.StorePeers, nil, (*serverMetrics)(s))
	}
	if cfg.ResultMemBytes >= 0 {
		if cfg.ResultMemBytes == 0 {
			cfg.ResultMemBytes = DefaultResultMemBytes
			s.cfg.ResultMemBytes = DefaultResultMemBytes
		}
		rf, err := newResultFleet(s.cfg, (*serverMetrics)(s))
		if err != nil {
			cancel()
			return nil, err
		}
		s.results = rf
	}
	if cfg.Tenants != nil {
		s.admit = newAdmission(cfg.Tenants, nil)
	}
	if len(cfg.ShardWorkers) > 0 {
		scfg := cfg.Shard
		scfg.Workers = cfg.ShardWorkers
		if scfg.Metrics == nil {
			scfg.Metrics = (*serverMetrics)(s)
		}
		if scfg.LocalParallelism == 0 {
			scfg.LocalParallelism = cfg.ReplayParallelism
		}
		s.coord = shard.New(scfg)
	}
	s.routes()
	if cfg.JournalPath != "" {
		j, recovered, skipped, err := openJournal(cfg.JournalPath, cfg.JournalMaxBytes, (*serverMetrics)(s).Count)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("journal: %w", err)
		}
		s.journal = j
		s.count("journal.errors", 0)
		s.count("journal.requeued", 0)
		s.count("journal.resumed.units", 0)
		s.count("journal.compactions", 0)
		s.count("journal.skipped", uint64(skipped))
		for _, jj := range recovered {
			s.recoverJob(jj)
		}
	}
	s.count("watchdog.kills", 0)
	if s.store != nil && cfg.StoreDir != "" && cfg.ScrubInterval > 0 {
		s.bg.Add(1)
		go s.scrubLoop(cfg.ScrubInterval)
	}
	return s, nil
}

// Close cancels every outstanding job and waits for the workers and
// background loops to drain, then closes the journal. Canceled jobs
// stay incomplete in the journal — with their unit checkpoints — so a
// restart resumes them rather than reporting them canceled.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.baseCancel()
		s.wg.Wait()
		s.bg.Wait()
		if s.journal != nil {
			s.journal.close()
		}
	})
}

// BeginDrain flips the server to draining: /readyz answers 503, new
// submissions are refused with a retryable unavailable envelope, and
// running jobs continue (checkpointing as they go). Idempotent.
func (s *Server) BeginDrain() {
	if !s.draining.Swap(true) {
		s.count("drain.begun", 1)
	}
}

// Drain is the graceful-shutdown path: stop accepting, let running
// jobs finish, then Close. If ctx expires first the remaining jobs are
// canceled mid-flight — their journaled unit checkpoints make the next
// start resume instead of re-running them. Either way every job
// goroutine has exited when Drain returns.
func (s *Server) Drain(ctx context.Context) {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.count("drain.timeouts", 1)
	}
	s.Close()
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// scrubLoop periodically verifies every disk-tier blob, repairing
// quarantined keys from peers (keys no peer holds are abandoned; the
// next demand re-records them).
func (s *Server) scrubLoop(interval time.Duration) {
	defer s.bg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
			s.scrubOnce()
		}
	}
}

// scrubOnce runs one scrub + repair pass (also the test seam).
func (s *Server) scrubOnce() {
	bad, err := s.store.Scrub()
	if err != nil {
		s.count("store.scrub.errors", 1)
		return
	}
	if len(bad) > 0 && s.fleet != nil {
		s.fleet.Repair(s.baseCtx, bad)
	}
}

// serverMetrics adapts the server's mutex-guarded registry to
// shard.Metrics, so coordinator counters land on /metricz.
type serverMetrics Server

func (m *serverMetrics) Count(name string, d uint64) { (*Server)(m).count(name, d) }
func (m *serverMetrics) GaugeSet(name string, v int64) {
	m.regMu.Lock()
	m.reg.Gauge(name).Set(v)
	m.regMu.Unlock()
}
func (m *serverMetrics) Observe(name string, v uint64) { (*Server)(m).observe(name, v) }

// Handler returns the server's HTTP handler: request counting, then
// (with tenancy enabled) API-key auth, then the route mux.
func (s *Server) Handler() http.Handler {
	var h http.Handler = s.mux
	if s.cfg.Tenants != nil {
		h = s.withAuth(h)
	}
	inner := h
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.count("http.requests", 1)
		inner.ServeHTTP(w, r)
	})
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/runs", s.handleRunSubmit)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSweepSubmit)
	s.mux.HandleFunc("GET /v1/runs", s.handleList)
	s.mux.HandleFunc("GET /v1/sweeps", s.handleList)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/recordings/{key}", s.handleRecordingGet)
	s.mux.HandleFunc("PUT /v1/recordings/{key}", s.handleRecordingPut)
	s.mux.HandleFunc("GET /v1/results/{key}", s.handleResultGet)
	s.mux.HandleFunc("PUT /v1/results/{key}", s.handleResultPut)
	s.mux.HandleFunc("GET /metricz", s.handleMetricz)
	// /healthz is liveness — the process is up and serving. /readyz is
	// readiness — route new work here: it answers 503 while draining,
	// when journal appends are failing, or when the store has corrupt
	// blobs awaiting repair. The shard coordinator probes /readyz, so a
	// draining worker sheds shards without being booked as broken.
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if reason := s.notReady(); reason != "" {
		writeError(w, http.StatusServiceUnavailable, api.CodeUnavailable, reason)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ready")
}

// notReady returns why the server should not receive new work, or "".
func (s *Server) notReady() string {
	if s.draining.Load() {
		return "draining"
	}
	if s.journal != nil && s.journal.degraded() {
		return "journal: appends are failing"
	}
	if s.store != nil {
		if n := s.store.Quarantined(); n > 0 {
			return fmt.Sprintf("store: %d corrupt blob(s) quarantined awaiting repair", n)
		}
	}
	return ""
}

// --- metrics helpers --------------------------------------------------------

func (s *Server) count(name string, d uint64) {
	s.regMu.Lock()
	s.reg.Counter(name).Add(d)
	s.regMu.Unlock()
}

func (s *Server) gauge(name string, d int64) {
	s.regMu.Lock()
	s.reg.Gauge(name).Add(d)
	s.regMu.Unlock()
}

func (s *Server) observe(name string, v uint64) {
	s.regMu.Lock()
	s.reg.Histogram(name).Observe(v)
	s.regMu.Unlock()
}

func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.regMu.Lock()
	defer s.regMu.Unlock()
	hits, misses, entries := s.cache.stats()
	s.reg.Counter("codecache.hits").Add(hits - s.reg.Counter("codecache.hits").Value())
	s.reg.Counter("codecache.misses").Add(misses - s.reg.Counter("codecache.misses").Value())
	s.reg.Gauge("codecache.entries").Set(int64(entries))
	s.reg.Gauge("pool.slots").Set(int64(s.pool.Cap()))
	s.reg.Gauge("pool.in_use").Set(int64(s.pool.InUse()))
	if err := s.reg.WriteJSON(w); err != nil {
		// The header is already out; nothing useful to do.
		return
	}
}

// --- submission -------------------------------------------------------------

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// writeError emits the structured error envelope every non-2xx
// response carries: {"error": {"code", "message", "retryable"}}.
func writeError(w http.ResponseWriter, status int, code api.ErrorCode, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(api.ErrorEnvelope{Error: api.NewError(code, msg)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// refuseDraining rejects a submission while the server drains: 503
// with a retryable envelope, so clients (and the shard coordinator)
// take the work elsewhere.
func (s *Server) refuseDraining(w http.ResponseWriter) bool {
	if !s.draining.Load() {
		return false
	}
	s.count("drain.rejected", 1)
	writeError(w, http.StatusServiceUnavailable, api.CodeUnavailable, "draining: not accepting new jobs")
	return true
}

func (s *Server) handleRunSubmit(w http.ResponseWriter, r *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	var req RunRequest
	if err := s.decode(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	if err := req.Normalize(s.cfg.DefaultMaxInstructions); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	release, ok := s.admitSubmit(w, r)
	if !ok {
		return
	}
	job := s.submit("run", tenantOf(r), release, &req, func(ctx context.Context, j *Job) (json.RawMessage, error) {
		return s.executeRun(ctx, j, &req)
	})
	s.respondToSubmit(w, r, job)
}

func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	var req SweepRequest
	if err := s.decode(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	if err := req.Normalize(); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	release, ok := s.admitSubmit(w, r)
	if !ok {
		return
	}
	job := s.submit("sweep", tenantOf(r), release, &req, func(ctx context.Context, j *Job) (json.RawMessage, error) {
		return s.executeSweep(ctx, j, &req, nil)
	})
	s.respondToSubmit(w, r, job)
}

// admitSubmit passes a submission through the tenant's admission
// controller. A refusal answers 429 with Retry-After and the
// quota_exhausted envelope and returns ok=false; with tenancy disabled
// it admits unconditionally with a nil release.
func (s *Server) admitSubmit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	if s.admit == nil {
		return nil, true
	}
	tenant := tenantOf(r)
	release, rej := s.admit.acquire(tenant)
	if rej != nil {
		s.count("tenant."+tenant+".rejected", 1)
		s.count("jobs.rejected", 1)
		w.Header().Set("Retry-After", strconv.Itoa(int(rej.retryAfter/time.Second)))
		writeError(w, http.StatusTooManyRequests, api.CodeQuotaExhausted, rej.msg)
		return nil, false
	}
	s.count("tenant."+tenant+".admitted", 1)
	s.tenantGauge(tenant)
	return release, true
}

// tenantGauge refreshes the tenant's in-flight gauge after an
// admission or release.
func (s *Server) tenantGauge(tenant string) {
	if s.admit == nil || tenant == "" {
		return
	}
	(*serverMetrics)(s).GaugeSet("tenant."+tenant+".running", int64(s.admit.runningFor(tenant)))
}

// submit registers a job, journals its acceptance (with the normalized
// request, so a restarted daemon can re-run it) and launches its
// lifecycle goroutine. release (the admission slot) is run when the
// job reaches a terminal state.
func (s *Server) submit(kind, tenant string, release func(), req any, exec func(ctx context.Context, j *Job) (json.RawMessage, error)) *Job {
	job := s.jobs.add(kind, tenant)
	job.setRelease(release)
	if s.journal != nil {
		raw, err := json.Marshal(req)
		if err == nil {
			s.journalAppend(journalRecord{Op: "accept", ID: job.ID, Kind: kind, Tenant: tenant, Req: raw})
		} else {
			s.count("journal.errors", 1)
		}
	}
	s.launch(job, exec)
	return job
}

// launch runs a job's lifecycle: acquire a pool slot (counted as queue
// time), execute, and publish the terminal event + state.
func (s *Server) launch(job *Job, exec func(ctx context.Context, j *Job) (json.RawMessage, error)) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	job.setCancel(cancel)
	s.count("jobs.submitted", 1)
	s.gauge("jobs.queued", 1)
	job.emit(api.Accepted(job.ID, job.Kind))

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer cancel()
		start := time.Now()
		err := s.pool.Acquire(ctx)
		s.gauge("jobs.queued", -1)
		if err != nil {
			s.finishJob(job, nil, err, start)
			return
		}
		defer s.pool.Release()
		s.gauge("jobs.running", 1)
		s.count("jobs.started", 1)
		job.setRunning()
		s.journalAppend(journalRecord{Op: "start", ID: job.ID})
		job.emit(api.Started(job.ID, time.Since(start).Milliseconds()))
		// The watchdog deadline starts when the job gets its slot, not
		// when it was queued: queue time is the server's fault, not the
		// job's.
		runCtx := ctx
		if s.cfg.JobTimeout > 0 {
			var wcancel context.CancelFunc
			runCtx, wcancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
			defer wcancel()
		}
		result, err := exec(runCtx, job)
		if err != nil && s.cfg.JobTimeout > 0 &&
			runCtx.Err() == context.DeadlineExceeded && errors.Is(err, context.DeadlineExceeded) {
			// The watchdog fired: a wedged job must not pin its admission
			// slot forever. Fail durably with the deadline_exceeded
			// envelope code so retriers know waiting longer won't help.
			s.count("watchdog.kills", 1)
			err = fmt.Errorf("%s: job exceeded -job-timeout %s", api.CodeDeadlineExceeded, s.cfg.JobTimeout)
		}
		s.gauge("jobs.running", -1)
		s.finishJob(job, result, err, start)
	}()
}

// finishJob journals the terminal transition, emits the terminal NDJSON
// line, moves the job to its terminal state and records latency
// metrics. The journal write comes first: a client that observes a
// terminal state can rely on it surviving a restart.
func (s *Server) finishJob(job *Job, result json.RawMessage, err error, start time.Time) {
	ms := uint64(time.Since(start).Milliseconds())
	switch {
	case err == nil:
		s.journalAppend(journalRecord{Op: "done", ID: job.ID, Result: result})
		job.emit(api.Result(job.ID, result))
		job.finish(StateDone, result, "")
		s.count("jobs.finished", 1)
	case errors.Is(err, context.Canceled):
		// A client cancel is a durable outcome; a daemon-shutdown cancel
		// is not — the job stays incomplete in the journal so a restart
		// re-queues it instead of reporting it canceled.
		if s.baseCtx.Err() == nil {
			s.journalAppend(journalRecord{Op: "cancel", ID: job.ID, Error: err.Error()})
		}
		job.emit(api.Failure(api.EventCanceled, job.ID, err.Error()))
		job.finish(StateCanceled, nil, err.Error())
		s.count("jobs.canceled", 1)
	default:
		s.journalAppend(journalRecord{Op: "fail", ID: job.ID, Error: err.Error()})
		job.emit(api.Failure(api.EventError, job.ID, err.Error()))
		job.finish(StateFailed, nil, err.Error())
		s.count("jobs.failed", 1)
	}
	if release := job.takeRelease(); release != nil {
		release()
		s.tenantGauge(job.Tenant)
	}
	s.observe("job.latency.ms."+job.Kind, ms)
}

// journalAppend writes one journal record, if journaling is on. Append
// failures are counted and otherwise ignored: journaling degrades to
// best-effort rather than taking the serving path down.
func (s *Server) journalAppend(rec journalRecord) {
	if s.journal == nil {
		return
	}
	if err := s.journal.append(rec); err != nil {
		s.count("journal.errors", 1)
	}
}

// journalUnit checkpoints one completed sweep unit (batched fsync; see
// journal.appendUnit) and keeps the journal-size gauge current.
func (s *Server) journalUnit(jobID string, idx int, result json.RawMessage) {
	if s.journal == nil {
		return
	}
	if err := s.journal.appendUnit(journalRecord{Op: "unit", ID: jobID, Unit: &unitCheckpoint{Idx: idx, Result: result}}); err != nil {
		s.count("journal.errors", 1)
		return
	}
	(*serverMetrics)(s).GaugeSet("journal.bytes", s.journal.bytes())
}

// recoverJob re-materializes one journal-replayed job: terminal jobs
// come back with their original ID, stream and result; incomplete ones
// (accepted or cut off mid-run by a crash) re-queue under their
// original ID, so a client holding a pre-restart job URL eventually
// gets the real result.
func (s *Server) recoverJob(jj *journalJob) {
	job := s.jobs.restore(jj.ID, jj.Kind, jj.Tenant)
	if jj.State.Terminal() {
		job.emit(api.Accepted(job.ID, job.Kind))
		switch jj.State {
		case StateDone:
			job.emit(api.Result(job.ID, jj.Result))
			job.finish(StateDone, jj.Result, "")
		case StateCanceled:
			job.emit(api.Failure(api.EventCanceled, job.ID, jj.Error))
			job.finish(StateCanceled, nil, jj.Error)
		default:
			job.emit(api.Failure(api.EventError, job.ID, jj.Error))
			job.finish(StateFailed, nil, jj.Error)
		}
		return
	}
	exec, err := s.execFor(jj)
	if err != nil {
		// The journaled request no longer parses (version skew, torn
		// record): fail the job durably rather than dropping it.
		s.journalAppend(journalRecord{Op: "fail", ID: jj.ID, Error: err.Error()})
		job.emit(api.Accepted(job.ID, job.Kind))
		job.emit(api.Failure(api.EventError, job.ID, err.Error()))
		job.finish(StateFailed, nil, err.Error())
		return
	}
	// The tenant was admitted for this work before the restart; re-take
	// its slot unconditionally rather than re-running quota checks.
	if s.admit != nil && jj.Tenant != "" {
		job.setRelease(s.admit.force(jj.Tenant))
		s.tenantGauge(jj.Tenant)
	}
	s.count("journal.requeued", 1)
	s.launch(job, exec)
}

// execFor rebuilds the execution closure for a journaled job. Sweep
// jobs carry their unit checkpoints along: valid ones are trusted as
// completed grid positions and only the rest re-run.
func (s *Server) execFor(jj *journalJob) (func(ctx context.Context, j *Job) (json.RawMessage, error), error) {
	switch jj.Kind {
	case "run":
		req := new(RunRequest)
		if err := json.Unmarshal(jj.Req, req); err != nil {
			return nil, err
		}
		if err := req.Normalize(s.cfg.DefaultMaxInstructions); err != nil {
			return nil, err
		}
		return func(ctx context.Context, j *Job) (json.RawMessage, error) {
			return s.executeRun(ctx, j, req)
		}, nil
	case "sweep":
		req := new(SweepRequest)
		if err := json.Unmarshal(jj.Req, req); err != nil {
			return nil, err
		}
		if err := req.Normalize(); err != nil {
			return nil, err
		}
		resume := s.decodeCheckpoints(req, jj.Units)
		if n := len(resume); n > 0 {
			s.count("journal.resumed.units", uint64(n))
		}
		return func(ctx context.Context, j *Job) (json.RawMessage, error) {
			return s.executeSweep(ctx, j, req, resume)
		}, nil
	}
	return nil, fmt.Errorf("journal: unknown job kind %q", jj.Kind)
}

// respondToSubmit either streams the job's NDJSON event stream on the
// open connection (the default; closing the connection cancels the
// job) or, with ?detach=1, returns 202 with the job document
// immediately.
func (s *Server) respondToSubmit(w http.ResponseWriter, r *http.Request, job *Job) {
	if r.URL.Query().Get("detach") == "1" {
		writeJSON(w, http.StatusAccepted, job.Status())
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	// A submitter that goes away takes its job with it; detached jobs
	// have no watcher and run to completion.
	stop := context.AfterFunc(r.Context(), job.Cancel)
	defer stop()
	job.streamTo(w, s.cfg.StreamWriteTimeout)
}

// --- status, streaming, cancellation ---------------------------------------

// handleList serves GET /v1/runs and GET /v1/sweeps identically: all
// of the caller's jobs, runs and sweeps alike, oldest first; ?kind=run
// or ?kind=sweep filters. With tenancy enabled a tenant sees exactly
// its own jobs.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	kind := r.URL.Query().Get("kind")
	if kind != "" && kind != "run" && kind != "sweep" {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, fmt.Sprintf("unknown kind %q (want run|sweep)", kind))
		return
	}
	jobs := s.jobs.list()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		if !s.visibleTo(r, j) || (kind != "" && j.Kind != kind) {
			continue
		}
		st := j.Status()
		st.Result = nil // list view stays compact
		out = append(out, st)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	job := s.jobs.get(r.PathValue("id"))
	if job == nil || !s.visibleTo(r, job) {
		writeError(w, http.StatusNotFound, api.CodeNotFound, "no such job")
		return
	}
	if r.URL.Query().Get("stream") == "1" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		job.streamTo(w, s.cfg.StreamWriteTimeout)
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job := s.jobs.get(r.PathValue("id"))
	if job == nil || !s.visibleTo(r, job) {
		writeError(w, http.StatusNotFound, api.CodeNotFound, "no such job")
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusAccepted, job.Status())
}
