package server

import (
	"context"
	"encoding/json"
	"sync/atomic"

	"jmtam/api"
	"jmtam/internal/cache"
	"jmtam/internal/core"
	"jmtam/internal/experiments"
	"jmtam/internal/parallel"
	"jmtam/internal/shard"
)

// executeSweep runs a grid job. With a shard coordinator configured the
// grid is partitioned into leased shards and farmed out to remote
// workers (degrading to local execution when none is reachable); with
// the recording store enabled (the default) units resolve their
// reference streams through the content-addressed store and replay
// them as compacted streams; otherwise it runs in-process through
// experiments.Sweep. All paths produce position-indexed unit results
// and assemble the final document through assembleSweepResult, so a
// distributed or store-served sweep is byte-identical to a local one. Sweeps bypass the compiled-code cache: a grid
// simulates each (workload, impl) exactly once anyway, so caching would
// only pin paper-scale artifacts for no repeat benefit.
func (s *Server) executeSweep(ctx context.Context, job *Job, req *SweepRequest, resume map[int]shard.UnitResult) (json.RawMessage, error) {
	return s.cachedResult(ctx, job, "sweep", &req.SweepRequest, func(ctx context.Context) (json.RawMessage, error) {
		return s.freshSweep(ctx, job, req, resume)
	})
}

// freshSweep executes the grid; executeSweep resolves the result cache
// around it. resume (may be nil) maps grid positions to already
// journaled unit results from before a restart: those positions are
// filled without re-running, every freshly completed unit is
// checkpointed, and because assembly is position-indexed the resumed
// document is byte-identical to an uninterrupted run.
func (s *Server) freshSweep(ctx context.Context, job *Job, req *SweepRequest, resume map[int]shard.UnitResult) (json.RawMessage, error) {
	var units []shard.UnitResult
	var err error
	if s.coord != nil {
		total := len(req.Workloads) * len(req.impls)
		var todo []int
		for i := 0; i < total; i++ {
			if _, ok := resume[i]; !ok {
				todo = append(todo, i)
			}
		}
		units, err = s.coord.RunSubset(ctx, req.Spec(), todo, func(e shard.Event) {
			job.emit(api.ShardEvent{
				Type: api.EventShard, ID: job.ID, Event: e.Type,
				Shard: e.Shard, Worker: e.Worker,
				Attempt: e.Attempt, Error: e.Err,
			})
		}, func(i int, u shard.UnitResult) {
			s.checkpointUnit(job, i, u)
		})
		if err == nil {
			for i, u := range resume {
				units[i] = u
			}
		}
	} else if s.fleet != nil {
		units, err = s.storeSweepUnits(ctx, job, req, resume)
	} else {
		units, err = s.localSweepUnits(ctx, job, req, resume)
	}
	if err != nil {
		return nil, err
	}
	return json.Marshal(assembleSweepResult(req, units))
}

// checkpointUnit journals one freshly completed sweep unit so a
// restarted daemon resumes from it instead of re-running it. Callers
// may race; the journal serializes appends.
func (s *Server) checkpointUnit(job *Job, idx int, u shard.UnitResult) {
	if s.journal == nil {
		return
	}
	raw, err := json.Marshal(u)
	if err != nil {
		return
	}
	s.journalUnit(job.ID, idx, raw)
}

// decodeCheckpoints validates journaled unit checkpoints against the
// request grid. A checkpoint whose position, identity or geometry
// count does not match is dropped — that unit simply re-runs — so a
// stale or torn checkpoint can degrade resume but never corrupt a
// result.
func (s *Server) decodeCheckpoints(req *SweepRequest, units map[int]json.RawMessage) map[int]shard.UnitResult {
	if len(units) == 0 || len(req.impls) == 0 {
		return nil
	}
	total := len(req.Workloads) * len(req.impls)
	ngeom := len(req.SizesKB) * len(req.Assocs)
	resume := make(map[int]shard.UnitResult)
	for idx, raw := range units {
		if idx < 0 || idx >= total {
			continue
		}
		var u shard.UnitResult
		if err := json.Unmarshal(raw, &u); err != nil {
			continue
		}
		w := req.Workloads[idx/len(req.impls)]
		impl := req.impls[idx%len(req.impls)]
		if u.Program != w.Program || u.Arg != w.Arg || u.Impl != impl.String() || len(u.Caches) != ngeom {
			continue
		}
		resume[idx] = u
	}
	if len(resume) == 0 {
		return nil
	}
	return resume
}

// sweepUnitJob is one grid position: shard.Spec.Units order
// (workload-major, implementation-minor), shared by the store and
// local execution paths.
type sweepUnitJob struct {
	program string
	arg     int
	impl    core.Impl
}

func sweepUnitJobs(req *SweepRequest) []sweepUnitJob {
	jobs := make([]sweepUnitJob, 0, len(req.Workloads)*len(req.impls))
	for _, w := range req.Workloads {
		for _, impl := range req.impls {
			jobs = append(jobs, sweepUnitJob{w.Program, w.Arg, impl})
		}
	}
	return jobs
}

// sweepGeoms expands the request's size × associativity grid.
func sweepGeoms(req *SweepRequest) []cache.Config {
	var geoms []cache.Config
	for _, kb := range req.SizesKB {
		for _, a := range req.Assocs {
			geoms = append(geoms, cache.Config{SizeBytes: kb * 1024, BlockBytes: req.BlockBytes, Assoc: a})
		}
	}
	return geoms
}

// localSweepUnits executes the grid in-process, one unit at a time —
// the same per-unit body Sweep.ExecuteContext runs, so the document is
// byte-identical to the whole-grid path — skipping resumed positions
// and checkpointing each completed unit.
func (s *Server) localSweepUnits(ctx context.Context, job *Job, req *SweepRequest, resume map[int]shard.UnitResult) ([]shard.UnitResult, error) {
	geoms := sweepGeoms(req)
	jobs := sweepUnitJobs(req)
	par := parallel.Workers(s.cfg.ReplayParallelism)
	replayPar := 1
	if len(jobs) > 0 && par/len(jobs) > 1 {
		replayPar = par / len(jobs)
	}
	units := make([]shard.UnitResult, len(jobs))
	var done atomic.Int64
	err := parallel.ForEachContext(ctx, par, len(jobs), func(i int) error {
		uj := jobs[i]
		if u, ok := resume[i]; ok {
			units[i] = u
			job.emit(api.RunProgressEvent{
				Type: api.EventRun, ID: job.ID,
				Done: int(done.Add(1)), Total: len(jobs),
				Program: uj.program, Arg: uj.arg,
				Impl: uj.impl.String(), Source: "checkpoint",
			})
			return nil
		}
		r, err := experiments.RunOneParHookContext(ctx,
			experiments.Workload{Name: uj.program, Arg: uj.arg}, uj.impl, geoms,
			core.Options{}, replayPar, func(delta int64) {
				s.gauge("sweep.recording.bytes", delta)
			})
		if err != nil {
			return err
		}
		u := shard.UnitResult{
			Program:      uj.program,
			Arg:          uj.arg,
			Impl:         uj.impl.String(),
			Instructions: r.Instructions,
			TPQ:          r.TPQ,
			IPT:          r.IPT,
			IPQ:          r.IPQ,
			Caches:       make([]shard.GeomStats, len(r.Caches)),
		}
		for g, cs := range r.Caches {
			u.Caches[g] = shard.GeomStats{
				SizeKB:     cs.Config.SizeBytes / 1024,
				BlockBytes: cs.Config.BlockBytes,
				Assoc:      cs.Config.Assoc,
				IMisses:    cs.IMisses,
				DMisses:    cs.DMisses,
				Writebacks: cs.Writebacks,
			}
		}
		units[i] = u
		s.checkpointUnit(job, i, u)
		job.emit(api.RunProgressEvent{
			Type: api.EventRun, ID: job.ID,
			Done: int(done.Add(1)), Total: len(jobs),
			Program: uj.program, Arg: uj.arg,
			Impl: uj.impl.String(),
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return units, nil
}

// Spec converts a normalized request into the shard coordinator's wire
// spec. Impl names stay in request form ("md", "am") — that is what
// workers parse; they echo the display form back and the shard layer
// reconciles the two.
func (r *SweepRequest) Spec() *shard.Spec {
	spec := &shard.Spec{
		SizesKB:    r.SizesKB,
		Assocs:     r.Assocs,
		BlockBytes: r.BlockBytes,
		Penalties:  r.Penalties,
		Impls:      r.Impls,
	}
	for _, w := range r.Workloads {
		spec.Workloads = append(spec.Workloads, shard.Workload{Program: w.Program, Arg: w.Arg})
	}
	return spec
}

// assembleSweepResult builds the final sweep document from
// position-indexed unit results (workload-major, implementation-minor —
// shard.Spec.Units order). It is the single assembly point for the
// local and distributed paths: identical unit numbers in, byte-identical
// document out, regardless of which worker ran which shard.
func assembleSweepResult(req *SweepRequest, units []shard.UnitResult) *SweepResult {
	res := &SweepResult{Workloads: req.Workloads}
	for _, kb := range req.SizesKB {
		for _, a := range req.Assocs {
			res.Geoms = append(res.Geoms, CacheSpec{SizeKB: kb, BlockBytes: req.BlockBytes, Assoc: a})
		}
	}
	for _, u := range units {
		sum := SweepRunSummary{
			Program:      u.Program,
			Arg:          u.Arg,
			Impl:         u.Impl,
			Instructions: u.Instructions,
			TPQ:          u.TPQ,
			IPT:          u.IPT,
			IPQ:          u.IPQ,
		}
		if req.Detail {
			sum.Caches = make([]CacheResult, len(u.Caches))
			for i, g := range u.Caches {
				cr := CacheResult{
					CacheSpec:  CacheSpec{SizeKB: g.SizeKB, BlockBytes: g.BlockBytes, Assoc: g.Assoc},
					IMisses:    g.IMisses,
					DMisses:    g.DMisses,
					Writebacks: g.Writebacks,
					Cycles:     make([]CycleCount, len(req.Penalties)),
				}
				for j, p := range req.Penalties {
					cr.Cycles[j] = CycleCount{
						Penalty: p,
						Cycles:  u.Instructions + uint64(p)*(g.IMisses+g.DMisses),
					}
				}
				sum.Caches[i] = cr
			}
		}
		res.Runs = append(res.Runs, sum)
	}

	// Table 2 is derivable when the grid covers the paper's 8K 4-way
	// reference geometry under both MD and AM.
	g84, mdPos, amPos := -1, -1, -1
	for i, g := range res.Geoms {
		if g.SizeKB == 8 && g.Assoc == 4 {
			g84 = i
			break
		}
	}
	for i, impl := range req.impls {
		switch impl {
		case core.ImplMD:
			mdPos = i
		case core.ImplAM:
			amPos = i
		}
	}
	if g84 < 0 || mdPos < 0 || amPos < 0 {
		return res
	}
	nimpl := len(req.impls)
	cycles := func(u *shard.UnitResult, penalty int) uint64 {
		c := u.Caches[g84]
		return u.Instructions + uint64(penalty)*(c.IMisses+c.DMisses)
	}
	ratio := func(md, am *shard.UnitResult, penalty int) float64 {
		amc := cycles(am, penalty)
		if amc == 0 {
			return 0
		}
		return float64(cycles(md, penalty)) / float64(amc)
	}
	for wi := range req.Workloads {
		md := &units[wi*nimpl+mdPos]
		am := &units[wi*nimpl+amPos]
		if len(md.Caches) <= g84 || len(am.Caches) <= g84 {
			continue
		}
		res.Table2 = append(res.Table2, Table2Row{
			Program: md.Program,
			TPQMD:   md.TPQ, TPQAM: am.TPQ,
			IPTMD: md.IPT, IPTAM: am.IPT,
			IPQMD: md.IPQ, IPQAM: am.IPQ,
			Ratio12: ratio(md, am, 12),
			Ratio24: ratio(md, am, 24),
			Ratio48: ratio(md, am, 48),
		})
	}
	return res
}
