package server

import (
	"context"
	"encoding/json"

	"jmtam/api"
	"jmtam/internal/core"
	"jmtam/internal/experiments"
	"jmtam/internal/shard"
)

// executeSweep runs a grid job. With a shard coordinator configured the
// grid is partitioned into leased shards and farmed out to remote
// workers (degrading to local execution when none is reachable); with
// the recording store enabled (the default) units resolve their
// reference streams through the content-addressed store and replay
// them as compacted streams; otherwise it runs in-process through
// experiments.Sweep. All paths produce position-indexed unit results
// and assemble the final document through assembleSweepResult, so a
// distributed or store-served sweep is byte-identical to a local one. Sweeps bypass the compiled-code cache: a grid
// simulates each (workload, impl) exactly once anyway, so caching would
// only pin paper-scale artifacts for no repeat benefit.
func (s *Server) executeSweep(ctx context.Context, job *Job, req *SweepRequest) (json.RawMessage, error) {
	return s.cachedResult(ctx, job, "sweep", &req.SweepRequest, func(ctx context.Context) (json.RawMessage, error) {
		return s.freshSweep(ctx, job, req)
	})
}

// freshSweep executes the grid; executeSweep resolves the result cache
// around it.
func (s *Server) freshSweep(ctx context.Context, job *Job, req *SweepRequest) (json.RawMessage, error) {
	var units []shard.UnitResult
	var err error
	if s.coord != nil {
		units, err = s.coord.RunObserved(ctx, req.Spec(), func(e shard.Event) {
			job.emit(api.ShardEvent{
				Type: api.EventShard, ID: job.ID, Event: e.Type,
				Shard: e.Shard, Worker: e.Worker,
				Attempt: e.Attempt, Error: e.Err,
			})
		})
	} else if s.fleet != nil {
		units, err = s.storeSweepUnits(ctx, job, req)
	} else {
		units, err = s.localSweepUnits(ctx, job, req)
	}
	if err != nil {
		return nil, err
	}
	return json.Marshal(assembleSweepResult(req, units))
}

// localSweepUnits executes the grid in-process and converts the dataset
// into position-indexed unit results.
func (s *Server) localSweepUnits(ctx context.Context, job *Job, req *SweepRequest) ([]shard.UnitResult, error) {
	sw := &experiments.Sweep{
		SizesKB:     req.SizesKB,
		Assocs:      req.Assocs,
		BlockBytes:  req.BlockBytes,
		Penalties:   req.Penalties,
		Impls:       req.impls,
		Parallelism: s.cfg.ReplayParallelism,
		OnRecordingBytes: func(delta int64) {
			s.gauge("sweep.recording.bytes", delta)
		},
		OnProgress: func(p experiments.Progress) {
			job.emit(api.RunProgressEvent{
				Type: api.EventRun, ID: job.ID,
				Done: p.Done, Total: p.Total,
				Program: p.Workload.Name, Arg: p.Workload.Arg,
				Impl: p.Impl.String(),
			})
		},
	}
	for _, w := range req.Workloads {
		sw.Workloads = append(sw.Workloads, experiments.Workload{Name: w.Program, Arg: w.Arg})
	}
	ds, err := sw.ExecuteContext(ctx)
	if err != nil {
		return nil, err
	}
	var units []shard.UnitResult
	for _, w := range req.Workloads {
		for _, impl := range req.impls {
			r := ds.Runs[w.Program][impl]
			if r == nil {
				continue
			}
			u := shard.UnitResult{
				Program:      w.Program,
				Arg:          w.Arg,
				Impl:         impl.String(),
				Instructions: r.Instructions,
				TPQ:          r.TPQ,
				IPT:          r.IPT,
				IPQ:          r.IPQ,
				Caches:       make([]shard.GeomStats, len(r.Caches)),
			}
			for i, cs := range r.Caches {
				u.Caches[i] = shard.GeomStats{
					SizeKB:     cs.Config.SizeBytes / 1024,
					BlockBytes: cs.Config.BlockBytes,
					Assoc:      cs.Config.Assoc,
					IMisses:    cs.IMisses,
					DMisses:    cs.DMisses,
					Writebacks: cs.Writebacks,
				}
			}
			units = append(units, u)
		}
	}
	return units, nil
}

// Spec converts a normalized request into the shard coordinator's wire
// spec. Impl names stay in request form ("md", "am") — that is what
// workers parse; they echo the display form back and the shard layer
// reconciles the two.
func (r *SweepRequest) Spec() *shard.Spec {
	spec := &shard.Spec{
		SizesKB:    r.SizesKB,
		Assocs:     r.Assocs,
		BlockBytes: r.BlockBytes,
		Penalties:  r.Penalties,
		Impls:      r.Impls,
	}
	for _, w := range r.Workloads {
		spec.Workloads = append(spec.Workloads, shard.Workload{Program: w.Program, Arg: w.Arg})
	}
	return spec
}

// assembleSweepResult builds the final sweep document from
// position-indexed unit results (workload-major, implementation-minor —
// shard.Spec.Units order). It is the single assembly point for the
// local and distributed paths: identical unit numbers in, byte-identical
// document out, regardless of which worker ran which shard.
func assembleSweepResult(req *SweepRequest, units []shard.UnitResult) *SweepResult {
	res := &SweepResult{Workloads: req.Workloads}
	for _, kb := range req.SizesKB {
		for _, a := range req.Assocs {
			res.Geoms = append(res.Geoms, CacheSpec{SizeKB: kb, BlockBytes: req.BlockBytes, Assoc: a})
		}
	}
	for _, u := range units {
		sum := SweepRunSummary{
			Program:      u.Program,
			Arg:          u.Arg,
			Impl:         u.Impl,
			Instructions: u.Instructions,
			TPQ:          u.TPQ,
			IPT:          u.IPT,
			IPQ:          u.IPQ,
		}
		if req.Detail {
			sum.Caches = make([]CacheResult, len(u.Caches))
			for i, g := range u.Caches {
				cr := CacheResult{
					CacheSpec:  CacheSpec{SizeKB: g.SizeKB, BlockBytes: g.BlockBytes, Assoc: g.Assoc},
					IMisses:    g.IMisses,
					DMisses:    g.DMisses,
					Writebacks: g.Writebacks,
					Cycles:     make([]CycleCount, len(req.Penalties)),
				}
				for j, p := range req.Penalties {
					cr.Cycles[j] = CycleCount{
						Penalty: p,
						Cycles:  u.Instructions + uint64(p)*(g.IMisses+g.DMisses),
					}
				}
				sum.Caches[i] = cr
			}
		}
		res.Runs = append(res.Runs, sum)
	}

	// Table 2 is derivable when the grid covers the paper's 8K 4-way
	// reference geometry under both MD and AM.
	g84, mdPos, amPos := -1, -1, -1
	for i, g := range res.Geoms {
		if g.SizeKB == 8 && g.Assoc == 4 {
			g84 = i
			break
		}
	}
	for i, impl := range req.impls {
		switch impl {
		case core.ImplMD:
			mdPos = i
		case core.ImplAM:
			amPos = i
		}
	}
	if g84 < 0 || mdPos < 0 || amPos < 0 {
		return res
	}
	nimpl := len(req.impls)
	cycles := func(u *shard.UnitResult, penalty int) uint64 {
		c := u.Caches[g84]
		return u.Instructions + uint64(penalty)*(c.IMisses+c.DMisses)
	}
	ratio := func(md, am *shard.UnitResult, penalty int) float64 {
		amc := cycles(am, penalty)
		if amc == 0 {
			return 0
		}
		return float64(cycles(md, penalty)) / float64(amc)
	}
	for wi := range req.Workloads {
		md := &units[wi*nimpl+mdPos]
		am := &units[wi*nimpl+amPos]
		if len(md.Caches) <= g84 || len(am.Caches) <= g84 {
			continue
		}
		res.Table2 = append(res.Table2, Table2Row{
			Program: md.Program,
			TPQMD:   md.TPQ, TPQAM: am.TPQ,
			IPTMD: md.IPT, IPTAM: am.IPT,
			IPQMD: md.IPQ, IPQAM: am.IPQ,
			Ratio12: ratio(md, am, 12),
			Ratio24: ratio(md, am, 24),
			Ratio48: ratio(md, am, 48),
		})
	}
	return res
}
