package server

import (
	"context"
	"encoding/json"

	"jmtam/internal/core"
	"jmtam/internal/experiments"
)

// executeSweep runs a grid job through experiments.Sweep, relaying its
// progress callback as NDJSON events. Sweeps bypass the compiled-code
// cache: a grid simulates each (workload, impl) exactly once anyway, so
// caching would only pin paper-scale artifacts for no repeat benefit.
func (s *Server) executeSweep(ctx context.Context, job *Job, req *SweepRequest) (json.RawMessage, error) {
	sw := &experiments.Sweep{
		SizesKB:     req.SizesKB,
		Assocs:      req.Assocs,
		BlockBytes:  req.BlockBytes,
		Penalties:   req.Penalties,
		Impls:       req.impls,
		Parallelism: s.cfg.ReplayParallelism,
		OnProgress: func(p experiments.Progress) {
			job.emit(map[string]any{
				"type": "run", "id": job.ID,
				"done": p.Done, "total": p.Total,
				"program": p.Workload.Name, "arg": p.Workload.Arg,
				"impl": p.Impl.String(),
			})
		},
	}
	for _, w := range req.Workloads {
		sw.Workloads = append(sw.Workloads, experiments.Workload{Name: w.Program, Arg: w.Arg})
	}
	ds, err := sw.ExecuteContext(ctx)
	if err != nil {
		return nil, err
	}

	res := &SweepResult{Workloads: req.Workloads}
	for _, g := range ds.Geoms {
		res.Geoms = append(res.Geoms, specOf(g))
	}
	for _, w := range sw.Workloads {
		for _, impl := range sw.Impls {
			r := ds.Runs[w.Name][impl]
			if r == nil {
				continue
			}
			res.Runs = append(res.Runs, SweepRunSummary{
				Program:      w.Name,
				Arg:          w.Arg,
				Impl:         impl.String(),
				Instructions: r.Instructions,
				TPQ:          r.TPQ,
				IPT:          r.IPT,
				IPQ:          r.IPQ,
			})
		}
	}
	if ds.GeomIndex(8, 4) >= 0 && hasImpl(sw.Impls, core.ImplMD) && hasImpl(sw.Impls, core.ImplAM) {
		for _, row := range experiments.Table2(ds) {
			res.Table2 = append(res.Table2, Table2Row{
				Program: row.Program,
				TPQMD:   row.TPQMD, TPQAM: row.TPQAM,
				IPTMD: row.IPTMD, IPTAM: row.IPTAM,
				IPQMD: row.IPQMD, IPQAM: row.IPQAM,
				Ratio12: row.Ratio12, Ratio24: row.Ratio24, Ratio48: row.Ratio48,
			})
		}
	}
	return json.Marshal(res)
}

func hasImpl(impls []core.Impl, want core.Impl) bool {
	for _, i := range impls {
		if i == want {
			return true
		}
	}
	return false
}
