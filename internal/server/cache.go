package server

import (
	"sync"

	"jmtam/internal/core"
)

// cacheKey identifies one compiled artifact: the code store and layout
// for a (program, problem size, implementation) triple are immutable
// once built, so repeat jobs bind a fresh Program onto the cached
// artifact and skip code generation entirely.
type cacheKey struct {
	prog string
	arg  int
	impl core.Impl
}

// codeCache is a bounded FIFO cache of compiled artifacts. The compile
// itself runs outside the lock — two racing jobs for the same key may
// both compile, and the later insert wins; that wastes one compile but
// never blocks unrelated jobs behind a slow build.
type codeCache struct {
	mu      sync.Mutex
	max     int
	entries map[cacheKey]*core.Compiled
	order   []cacheKey
	hits    uint64
	misses  uint64
}

func newCodeCache(max int) *codeCache {
	if max <= 0 {
		max = 32
	}
	return &codeCache{max: max, entries: make(map[cacheKey]*core.Compiled)}
}

// get returns the cached artifact for k, compiling (and inserting) on a
// miss. The returned bool reports a hit.
func (c *codeCache) get(k cacheKey, compile func() (*core.Compiled, error)) (*core.Compiled, bool, error) {
	c.mu.Lock()
	if comp, ok := c.entries[k]; ok {
		c.hits++
		c.mu.Unlock()
		return comp, true, nil
	}
	c.misses++
	c.mu.Unlock()

	comp, err := compile()
	if err != nil {
		return nil, false, err
	}

	c.mu.Lock()
	if _, ok := c.entries[k]; !ok {
		c.entries[k] = comp
		c.order = append(c.order, k)
		if len(c.order) > c.max {
			evict := c.order[0]
			c.order = c.order[1:]
			delete(c.entries, evict)
		}
	}
	c.mu.Unlock()
	return comp, false, nil
}

// stats returns (hits, misses, entries).
func (c *codeCache) stats() (hits, misses uint64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.entries)
}
