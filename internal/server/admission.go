package server

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// admission is the per-tenant token-bucket admission controller. Each
// tenant has a concurrency cap (jobs queued or running) and a
// jobs-per-minute token bucket; a submission must clear both, and the
// token is only consumed when it does, so a tenant bouncing off the
// concurrency cap is not also drained of rate tokens.
type admission struct {
	limits map[string]TenantLimits
	now    func() time.Time // injectable for tests

	mu    sync.Mutex
	state map[string]*tenantState
}

type tenantState struct {
	running int
	tokens  float64
	last    time.Time
}

func newAdmission(t *Tenants, now func() time.Time) *admission {
	if now == nil {
		now = time.Now
	}
	return &admission{limits: t.limits, now: now, state: make(map[string]*tenantState)}
}

// rejection is an admission refusal: what to tell the client and when
// to come back.
type rejection struct {
	msg        string
	retryAfter time.Duration
}

// tenant returns the tenant's state with its bucket refilled to now.
// Caller holds a.mu.
func (a *admission) tenant(name string) (*tenantState, TenantLimits) {
	lim := a.limits[name]
	burst := lim.Burst
	if burst == 0 {
		burst = lim.JobsPerMinute
	}
	st := a.state[name]
	if st == nil {
		// The bucket starts full: a new tenant can burst immediately.
		st = &tenantState{tokens: burst, last: a.now()}
		a.state[name] = st
	}
	if lim.JobsPerMinute > 0 {
		now := a.now()
		st.tokens = math.Min(burst, st.tokens+now.Sub(st.last).Seconds()*lim.JobsPerMinute/60)
		st.last = now
	}
	return st, lim
}

// acquire admits one job for tenant or explains the refusal. On
// success the returned release must be called exactly once when the
// job reaches a terminal state.
func (a *admission) acquire(name string) (release func(), rej *rejection) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, lim := a.tenant(name)
	if lim.MaxConcurrent > 0 && st.running >= lim.MaxConcurrent {
		return nil, &rejection{
			msg:        fmt.Sprintf("tenant %q at its concurrent-job limit (%d)", name, lim.MaxConcurrent),
			retryAfter: time.Second,
		}
	}
	if lim.JobsPerMinute > 0 && st.tokens < 1 {
		// Seconds until the bucket refills to one token.
		wait := (1 - st.tokens) / (lim.JobsPerMinute / 60)
		return nil, &rejection{
			msg:        fmt.Sprintf("tenant %q over %g jobs/minute", name, lim.JobsPerMinute),
			retryAfter: time.Duration(math.Ceil(wait)) * time.Second,
		}
	}
	if lim.JobsPerMinute > 0 {
		st.tokens--
	}
	st.running++
	return a.releaseFunc(name), nil
}

// force admits a job unconditionally — journal recovery re-queues work
// the tenant was already admitted for before the restart.
func (a *admission) force(name string) (release func()) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, _ := a.tenant(name)
	st.running++
	return a.releaseFunc(name)
}

func (a *admission) releaseFunc(name string) func() {
	return func() {
		a.mu.Lock()
		if st := a.state[name]; st != nil && st.running > 0 {
			st.running--
		}
		a.mu.Unlock()
	}
}

// runningFor returns the tenant's in-flight job count (its
// tenant.<name>.running gauge).
func (a *admission) runningFor(name string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if st := a.state[name]; st != nil {
		return st.running
	}
	return 0
}
