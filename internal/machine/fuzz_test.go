package machine

import (
	"testing"
	"testing/quick"

	"jmtam/internal/asm"
	"jmtam/internal/mem"
	"jmtam/internal/rng"
	"jmtam/internal/word"
)

// TestRandomProgramsMatchReference generates random straight-line
// programs over the integer ALU, register moves and scratch-memory
// loads/stores, runs them on the engine, and compares every register
// and scratch word against a pure-Go reference interpretation.
func TestRandomProgramsMatchReference(t *testing.T) {
	const (
		scratchBase  = mem.SysDataBase + 0x400
		scratchWords = 16
		regs         = 5 // R0-R4
		steps        = 60
	)

	runOne := func(seed uint64) bool {
		src := rng.New(seed)

		// Reference state.
		var ref [regs]int64
		var refMem [scratchWords]int64

		sys := asm.NewSys()
		sys.Halt()
		u := asm.NewUser()
		u.Label("main")
		// Initialize registers deterministically.
		for r := 0; r < regs; r++ {
			v := int64(src.Intn(1000)) - 500
			u.MovI(uint8(r), v)
			ref[r] = v
		}
		for i := 0; i < steps; i++ {
			rd := uint8(src.Intn(regs))
			ra := uint8(src.Intn(regs))
			rb := uint8(src.Intn(regs))
			switch src.Intn(12) {
			case 0:
				u.Add(rd, ra, rb)
				ref[rd] = ref[ra] + ref[rb]
			case 1:
				u.Sub(rd, ra, rb)
				ref[rd] = ref[ra] - ref[rb]
			case 2:
				u.Mul(rd, ra, rb)
				ref[rd] = ref[ra] * ref[rb]
			case 3:
				u.And(rd, ra, rb)
				ref[rd] = ref[ra] & ref[rb]
			case 4:
				u.Or(rd, ra, rb)
				ref[rd] = ref[ra] | ref[rb]
			case 5:
				u.Xor(rd, ra, rb)
				ref[rd] = ref[ra] ^ ref[rb]
			case 6:
				imm := int64(src.Intn(64)) - 32
				u.AddI(rd, ra, imm)
				ref[rd] = ref[ra] + imm
			case 7:
				imm := int64(src.Intn(64)) - 32
				u.SubI(rd, ra, imm)
				ref[rd] = ref[ra] - imm
			case 8:
				sh := int64(src.Intn(8))
				u.ShlI(rd, ra, sh)
				ref[rd] = ref[ra] << uint(sh)
			case 9:
				sh := int64(src.Intn(8))
				u.ShrI(rd, ra, sh)
				ref[rd] = ref[ra] >> uint(sh)
			case 10:
				slot := src.Intn(scratchWords)
				u.ST(15 /* RZ */, int64(scratchBase+uint32(4*slot)), rb)
				refMem[slot] = ref[rb]
			case 11:
				slot := src.Intn(scratchWords)
				u.LD(rd, 15, int64(scratchBase+uint32(4*slot)))
				ref[rd] = refMem[slot]
			}
		}
		// Dump registers after the scratch area.
		for r := 0; r < regs; r++ {
			u.ST(15, int64(scratchBase+uint32(4*(scratchWords+r))), uint8(r))
		}
		u.Suspend()
		if err := sys.Finish(); err != nil {
			t.Fatal(err)
		}
		if err := u.Finish(); err != nil {
			t.Fatal(err)
		}

		m := NewMachine(mem.NewDefault(), NewCodeStore(sys.Code(), u.Code()),
			Config{MaxInstructions: 10000})
		if err := m.Inject(Low, []word.Word{word.Ptr(u.Addr("main"))}); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Logf("seed %#x: %v", seed, err)
			return false
		}
		for s := 0; s < scratchWords; s++ {
			if got := m.Mem.LoadInt(scratchBase + uint32(4*s)); got != refMem[s] {
				t.Logf("seed %#x: scratch[%d] = %d, want %d", seed, s, got, refMem[s])
				return false
			}
		}
		for r := 0; r < regs; r++ {
			if got := m.Mem.LoadInt(scratchBase + uint32(4*(scratchWords+r))); got != ref[r] {
				t.Logf("seed %#x: r%d = %d, want %d", seed, r, got, ref[r])
				return false
			}
		}
		return true
	}

	if err := quick.Check(runOne, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestRandomBranchPrograms checks forward-branch behaviour: a chain of
// conditional skips over MOVI markers, compared against a reference.
func TestRandomBranchPrograms(t *testing.T) {
	runOne := func(seed uint64) bool {
		src := rng.New(seed)
		const scratch = mem.SysDataBase + 0x600
		sys := asm.NewSys()
		sys.Halt()
		u := asm.NewUser()
		u.Label("main")

		acc := int64(0)
		u.MovI(0, 0) // accumulator R0
		for i := 0; i < 20; i++ {
			a := int64(src.Intn(10))
			b := int64(src.Intn(10))
			add := int64(1) << uint(i%20)
			lbl := u.PC() // unique label name derived from position
			name := labelName(int(lbl), i)
			u.MovI(1, a)
			u.MovI(2, b)
			taken := false
			switch src.Intn(4) {
			case 0:
				u.BEQ(1, 2, name)
				taken = a == b
			case 1:
				u.BNE(1, 2, name)
				taken = a != b
			case 2:
				u.BLT(1, 2, name)
				taken = a < b
			case 3:
				u.BGE(1, 2, name)
				taken = a >= b
			}
			u.AddI(0, 0, add)
			if !taken {
				acc += add
			}
			u.Label(name)
		}
		u.ST(15, int64(scratch), 0)
		u.Suspend()
		if err := sys.Finish(); err != nil {
			t.Fatal(err)
		}
		if err := u.Finish(); err != nil {
			t.Fatal(err)
		}
		m := NewMachine(mem.NewDefault(), NewCodeStore(sys.Code(), u.Code()),
			Config{MaxInstructions: 10000})
		m.Inject(Low, []word.Word{word.Ptr(u.Addr("main"))})
		if err := m.Run(); err != nil {
			t.Logf("seed %#x: %v", seed, err)
			return false
		}
		if got := m.Mem.LoadInt(scratch); got != acc {
			t.Logf("seed %#x: acc = %d, want %d", seed, got, acc)
			return false
		}
		return true
	}
	if err := quick.Check(runOne, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func labelName(pc, i int) string {
	const digits = "0123456789abcdef"
	b := []byte("L")
	for v := pc*32 + i; v > 0; v /= 16 {
		b = append(b, digits[v%16])
	}
	return string(b)
}
