package machine

import (
	"context"
	"errors"
	"fmt"

	"jmtam/internal/isa"
	"jmtam/internal/mem"
	"jmtam/internal/queue"
	"jmtam/internal/word"
)

// Priority levels.
const (
	Low  = 0
	High = 1
)

// Tracer receives one event per instruction fetch and per data access.
// Implementations must be cheap; the engine calls them on every
// instruction.
type Tracer interface {
	Fetch(addr uint32)
	Read(addr uint32)
	Write(addr uint32)
}

// Observer receives runtime-level events driven by instruction marks and
// dispatch, carrying the current frame pointer and the machine's dynamic
// instruction count so granularity statistics can be derived.
type Observer interface {
	ThreadStart(frame uint32, instrs uint64)
	InletStart(frame uint32, instrs uint64)
	Activate(frame uint32, instrs uint64)
	Dispatch(pri int, instrs uint64)
}

// nopTracer and nopObserver are used when no consumer is attached.
type nopTracer struct{}

func (nopTracer) Fetch(uint32) {}
func (nopTracer) Read(uint32)  {}
func (nopTracer) Write(uint32) {}

type nopObserver struct{}

func (nopObserver) ThreadStart(uint32, uint64) {}
func (nopObserver) InletStart(uint32, uint64)  {}
func (nopObserver) Activate(uint32, uint64)    {}
func (nopObserver) Dispatch(int, uint64)       {}

// Config controls machine construction.
type Config struct {
	// QueueCapWords is the per-priority message queue capacity in
	// words; zero selects queue.DefaultCapWords.
	QueueCapWords int
	// CountQueueWrites controls whether hardware buffering of arriving
	// message words is charged as data writes. The MDP buffers
	// messages into on-chip memory, consuming space and bandwidth
	// (paper §1.1.2 footnote), so the default — set by NewMachine — is
	// true.
	CountQueueWrites bool
	// PairedQueueWrites models the MDP's two-word-per-cycle queue
	// write-through: arriving message words are buffered in pairs, so
	// only every other word of a message charges a data write. Off by
	// default (one write per word, the historical accounting); only
	// meaningful when CountQueueWrites is set.
	PairedQueueWrites bool
	// MaxInstructions aborts runaway simulations; zero means no limit.
	MaxInstructions uint64
}

// Queue base addresses inside the system-data segment. The first words
// of system data are reserved for runtime globals (package core).
const (
	GlobalsWords  = 1 << 12 // 4K words of runtime globals
	queueLowBase  = mem.SysDataBase + GlobalsWords*mem.WordBytes
	queueAreaSize = queue.DefaultCapWords * mem.WordBytes
)

// Machine is one simulated node.
type Machine struct {
	Mem  *mem.Memory
	Code *CodeStore

	queues [2]*queue.Queue
	regs   [2][isa.NumRegs]word.Word
	ip     [2]uint32
	run    [2]bool
	intEn  bool

	sendPri  [2]int
	sendDest [2]int
	sendBuf  [2][]word.Word
	building [2]bool

	nodeID int
	router Router

	curMsg [2]queue.Msg
	inMsg  [2]bool

	tracer Tracer
	// nicTracer, when non-nil, receives the high-priority share of the
	// reference stream (NIC-offloaded inlet/handler execution); trc
	// caches the per-priority routing so step pays one index, not a
	// branch. The union of the two streams is exactly the single-tracer
	// stream.
	nicTracer Tracer
	trc       [2]Tracer
	observer  Observer
	probe     *probe

	cfg      Config
	instrs   uint64
	opCounts [isa.NumOps]uint64
	halted   bool
	// stalled marks a routed machine idling at WAIT: quiescent, but kept
	// alive so the cluster driver can wake it with a network delivery.
	stalled bool
	// qwSeq indexes words within the message currently being buffered,
	// for the paired (two-word-per-cycle) queue write-through model;
	// qwPri is the destination queue's priority, for trace attribution.
	qwSeq   int
	qwPri   int
	hiInstrs uint64
	trapErr  error
}

// NewMachine builds a machine around the given memory and code store.
func NewMachine(m *mem.Memory, code *CodeStore, cfg Config) *Machine {
	capw := cfg.QueueCapWords
	if capw == 0 {
		capw = queue.JMachineCapWords
	}
	if capw > queue.DefaultCapWords {
		capw = queue.DefaultCapWords // fixed storage layout bounds capacity
	}
	mach := &Machine{
		Mem:      m,
		Code:     code,
		tracer:   nopTracer{},
		observer: nopObserver{},
		cfg:      cfg,
		intEn:    true,
	}
	mach.queues[Low] = queue.New(queueLowBase, capw)
	mach.queues[High] = queue.New(queueLowBase+queueAreaSize, capw)
	mach.retrace()
	return mach
}

// SetTracer attaches t; nil restores the no-op tracer.
func (m *Machine) SetTracer(t Tracer) {
	if t == nil {
		t = nopTracer{}
	}
	m.tracer = t
	m.retrace()
}

// SetNICTracer splits the reference stream by execution locus: all
// high-priority activity (instruction fetch, message-queue buffering,
// dispatch header reads, handler data access) is reported to t instead
// of the main tracer, modelling inlets that run on a per-node NIC
// engine with its own caches. nil restores the single-stream default.
func (m *Machine) SetNICTracer(t Tracer) {
	m.nicTracer = t
	m.retrace()
}

// retrace recomputes the per-priority tracer routing.
func (m *Machine) retrace() {
	m.trc[Low] = m.tracer
	if m.nicTracer != nil {
		m.trc[High] = m.nicTracer
	} else {
		m.trc[High] = m.tracer
	}
}

// SetObserver attaches o; nil restores the no-op observer.
func (m *Machine) SetObserver(o Observer) {
	if o == nil {
		m.observer = nopObserver{}
		return
	}
	m.observer = o
}

// Queue returns the message queue at the given priority.
func (m *Machine) Queue(pri int) *queue.Queue { return m.queues[pri] }

// Instructions returns the number of instructions executed so far.
func (m *Machine) Instructions() uint64 { return m.instrs }

// HighInstructions returns how many of those executed at high priority
// (the NIC engine's share when a NIC tracer is attached).
func (m *Machine) HighInstructions() uint64 { return m.hiInstrs }

// OpCounts returns the dynamic execution count of every opcode.
func (m *Machine) OpCounts() [isa.NumOps]uint64 { return m.opCounts }

// Halted reports whether the machine has reached quiescence or trapped.
func (m *Machine) Halted() bool { return m.halted }

// Router forwards a message to another node; wired by the cluster
// driver. A nil router restricts the machine to local delivery.
type Router func(dst, pri int, ws []word.Word) error

// SetRouter assigns the machine's node id and its outbound network hook.
func (m *Machine) SetRouter(node int, r Router) {
	m.nodeID = node
	m.router = r
}

// Node returns the machine's node id (0 on a uniprocessor).
func (m *Machine) Node() int { return m.nodeID }

// StepOne executes at most one instruction, reporting whether progress
// was made; it does not treat an empty machine as halted, so a cluster
// driver can keep delivering network messages to it. Simulation faults
// surface as errors.
func (m *Machine) StepOne() (progress bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			m.halted = true
			err = fmt.Errorf("%w: %v (node %d, low ip=%#x high ip=%#x after %d instructions)",
				ErrTrap, r, m.nodeID, m.ip[Low], m.ip[High], m.instrs)
		}
	}()
	if m.halted {
		return false, m.trapErr
	}
	if m.stalled {
		// Parked at WAIT; only a network delivery (Inject) wakes it.
		return false, nil
	}
	pri := m.choose()
	if pri < 0 {
		return false, nil
	}
	m.step(pri)
	if m.cfg.MaxInstructions != 0 && m.instrs >= m.cfg.MaxInstructions {
		m.halted = true
		return true, fmt.Errorf("%w: instruction limit %d exceeded", ErrTrap, m.cfg.MaxInstructions)
	}
	return true, m.trapErr
}

// Idle reports whether the machine has no runnable task and empty
// queues (it may still receive network messages).
func (m *Machine) Idle() bool { return m.quiescent() && !m.run[Low] }

// Busy reports whether the engine at pri is mid-task: a message has
// been dispatched (or a task resumed) and has not yet suspended.
func (m *Machine) Busy(pri int) bool { return m.run[pri] }

// Inject enqueues a message from the host (outside the simulation), used
// to bootstrap programs. Queue stores are traced like hardware buffering.
func (m *Machine) Inject(pri int, ws []word.Word) error {
	m.qwSeq = 0
	m.qwPri = pri
	msg, err := m.queues[pri].Enqueue(ws, m.queueStore)
	if err != nil {
		return err
	}
	m.stalled = false // a delivery wakes a machine parked at WAIT
	if m.probe != nil {
		m.probe.enqueue(m.nodeID, pri, msg, m.instrs, m.queues[pri].Len())
	}
	return nil
}

func (m *Machine) queueStore(addr uint32, w word.Word) {
	if m.cfg.CountQueueWrites {
		// Under the paired model the queue write-through retires two
		// message words per data write, so odd-indexed words ride along
		// with their predecessor.
		if !m.cfg.PairedQueueWrites || m.qwSeq%2 == 0 {
			m.trc[m.qwPri].Write(addr)
		}
		m.qwSeq++
	}
	m.Mem.Store(addr, w)
}

// reg reads a register, honouring the RZ pseudo-register.
func (m *Machine) reg(pri int, r uint8) word.Word {
	if r == isa.RZ {
		return word.Word{}
	}
	return m.regs[pri][r]
}

// SetReg writes a register directly (host bootstrap only).
func (m *Machine) SetReg(pri int, r uint8, w word.Word) { m.regs[pri][r] = w }

// ErrTrap wraps simulated runtime errors.
var ErrTrap = errors.New("machine trap")

// choose selects the priority level to execute next, dispatching a
// message if needed. It returns -1 when the machine is quiescent.
func (m *Machine) choose() int {
	if m.run[High] {
		return High
	}
	if m.queues[High].Len() > 0 && (!m.run[Low] || m.intEn) {
		m.dispatch(High)
		return High
	}
	if m.run[Low] {
		return Low
	}
	if m.queues[Low].Len() > 0 {
		m.dispatch(Low)
		return Low
	}
	return -1
}

// dispatch begins servicing the oldest message at pri. The hardware
// reads the handler address from the first message word (a traced read)
// and loads the message base register.
func (m *Machine) dispatch(pri int) {
	msg, ok := m.queues[pri].Front()
	if !ok {
		panic("machine: dispatch on empty queue")
	}
	m.trc[pri].Read(msg.Base)
	handler := m.Mem.Load(msg.Base)
	m.curMsg[pri] = msg
	m.inMsg[pri] = true
	m.run[pri] = true
	m.ip[pri] = handler.Addr()
	m.regs[pri][isa.RMsg] = word.Ptr(msg.Base)
	m.observer.Dispatch(pri, m.instrs)
	if m.probe != nil {
		m.probe.dispatch(m.nodeID, pri, msg, handler.Addr(), m.instrs)
	}
}

// suspend ends the current task at pri, consuming its message.
func (m *Machine) suspend(pri int) {
	m.run[pri] = false
	if m.inMsg[pri] {
		m.queues[pri].Consume()
		m.inMsg[pri] = false
	}
	if m.probe != nil {
		m.probe.suspend(m.nodeID, pri, m.instrs, m.queues[pri].Len())
	}
}

// quiescent reports whether nothing can make progress.
func (m *Machine) quiescent() bool {
	return !m.run[High] && m.queues[High].Len() == 0 && m.queues[Low].Len() == 0
}

// Run executes until quiescence, a HALT, a TRAP, or the instruction
// limit. Simulation faults (bad addresses, queue overflow) surface as
// errors rather than panics.
func (m *Machine) Run() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v (at low ip=%#x high ip=%#x after %d instructions)",
				ErrTrap, r, m.ip[Low], m.ip[High], m.instrs)
		}
	}()
	for !m.halted {
		pri := m.choose()
		if pri < 0 {
			m.halted = true
			break
		}
		m.step(pri)
		if m.cfg.MaxInstructions != 0 && m.instrs >= m.cfg.MaxInstructions {
			return fmt.Errorf("%w: instruction limit %d exceeded", ErrTrap, m.cfg.MaxInstructions)
		}
	}
	return m.trapErr
}

// CancelCheckInterval is the cooperative-cancellation granularity of
// RunContext: the context is polled once every this many simulated
// instructions, so a cancelled simulation stops within one interval.
// The interval is large enough that the poll is invisible next to the
// per-instruction interpreter work, and small enough that even the
// longest benchmarks (hundreds of millions of instructions) die
// promptly.
const CancelCheckInterval = 1 << 14

// RunContext is Run with cooperative cancellation: the context is
// polled every CancelCheckInterval instructions, and cancellation halts
// the machine and returns an error wrapping ctx.Err(). A context that
// can never be cancelled delegates to Run and pays no per-instruction
// overhead.
func (m *Machine) RunContext(ctx context.Context) (err error) {
	done := ctx.Done()
	if done == nil {
		return m.Run()
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v (at low ip=%#x high ip=%#x after %d instructions)",
				ErrTrap, r, m.ip[Low], m.ip[High], m.instrs)
		}
	}()
	nextCheck := m.instrs + CancelCheckInterval
	for !m.halted {
		if m.instrs >= nextCheck {
			nextCheck = m.instrs + CancelCheckInterval
			select {
			case <-done:
				m.halted = true
				return fmt.Errorf("machine: run cancelled after %d instructions: %w",
					m.instrs, ctx.Err())
			default:
			}
		}
		pri := m.choose()
		if pri < 0 {
			m.halted = true
			break
		}
		m.step(pri)
		if m.cfg.MaxInstructions != 0 && m.instrs >= m.cfg.MaxInstructions {
			return fmt.Errorf("%w: instruction limit %d exceeded", ErrTrap, m.cfg.MaxInstructions)
		}
	}
	return m.trapErr
}

// Boot starts low-priority execution at addr with interrupts disabled,
// used by the Active Messages backend to enter its scheduler loop.
func (m *Machine) Boot(addr uint32) {
	m.ip[Low] = addr
	m.run[Low] = true
	m.intEn = false
}
