package machine

import (
	"errors"
	"testing"

	"jmtam/internal/asm"
	"jmtam/internal/isa"
	"jmtam/internal/mem"
	"jmtam/internal/word"
)

// TestEveryOpcodeExecutes drives one program through every opcode the
// ALU/branch/tag groups define and checks a digest of the results, so
// the interpreter's full switch is exercised under test.
func TestEveryOpcodeExecutes(t *testing.T) {
	const out = mem.SysDataBase + 0x800
	m, user := buildMachine(t, func(s *asm.Segment) {
		s.Label("main")
		s.Nop()
		s.MovI(0, 12)
		s.MovA(1, 0x40)
		s.MovF(2, 1.5)
		s.Mov(3, 0)     // 12
		s.LEA(4, 1, 8)  // 0x48
		s.Div(3, 3, 0)  // 1
		s.Mod(3, 0, 3)  // 0... 12 % 1 = 0
		s.Or(3, 3, 0)   // 12
		s.Xor(3, 3, 0)  // 0
		s.AddI(3, 3, 5) // 5
		s.AndI(3, 3, 6) // 4
		s.MovI(1, 2)
		s.Shl(3, 3, 1)  // 16
		s.Shr(3, 3, 1)  // 4
		s.And(3, 3, 0)  // 4
		s.MulI(3, 3, 3) // 12
		s.SubI(3, 3, 2) // 10
		s.Sub(3, 3, 1)  // 8
		// Floats.
		s.FSub(2, 2, 2) // 0.0
		s.MovF(2, 2.0)
		s.FDiv(2, 2, 2) // 1.0
		s.FNeg(2, 2)    // -1.0
		s.IToF(1, 3)    // 8.0
		s.FAdd(2, 2, 1) // 7.0
		s.FMul(2, 2, 1) // 56.0
		s.FToI(1, 2)    // 56
		// Branches (all taken and not-taken paths).
		s.BLE(3, 1, "le") // 8 <= 56: taken
		s.MovI(3, 0)
		s.Label("le")
		s.BGT(1, 3, "gt") // 56 > 8: taken
		s.MovI(3, 0)
		s.Label("gt")
		s.FBLT(2, 1, "fl") // 56.0 < 56: not taken
		s.AddI(3, 3, 1)    // 9
		s.Label("fl")
		s.FBLE(1, 2, "fle") // taken
		s.MovI(3, 0)
		s.Label("fle")
		// Tags.
		s.TagSet(5, 3, uint8(word.TagPtr))
		s.TagGet(7, 5) // tag ptr = 2
		s.BTag(5, uint8(word.TagPtr), "isptr")
		s.MovI(3, 0)
		s.Label("isptr")
		s.Add(3, 3, 7) // 9 + 2 = 11
		s.ST(15, int64(out), 3)
		s.Suspend()
	})
	m.Inject(Low, []word.Word{word.Ptr(user.Addr("main"))})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Mem.LoadInt(out); got != 11 {
		t.Errorf("digest = %d, want 11", got)
	}
	counts := m.OpCounts()
	for _, op := range []isa.Op{isa.OpNop, isa.OpDiv, isa.OpMod, isa.OpOr,
		isa.OpXor, isa.OpShl, isa.OpShr, isa.OpFDiv, isa.OpFNeg,
		isa.OpIToF, isa.OpFToI, isa.OpTagSet, isa.OpTagGet, isa.OpBTag,
		isa.OpFBLT, isa.OpFBLE, isa.OpBLE, isa.OpBGT, isa.OpLEA} {
		if counts[op] == 0 {
			t.Errorf("opcode %v never executed", op)
		}
	}
}

func TestHaltInstruction(t *testing.T) {
	m, user := buildMachine(t, func(s *asm.Segment) {
		s.Label("main")
		s.Halt()
		s.MovI(0, 1) // unreachable
	})
	m.Inject(Low, []word.Word{word.Ptr(user.Addr("main"))})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !m.Halted() || m.Instructions() != 1 {
		t.Errorf("halted=%v instrs=%d", m.Halted(), m.Instructions())
	}
}

func TestMessageProtocolFaults(t *testing.T) {
	cases := map[string]func(s *asm.Segment){
		"sendw without msg": func(s *asm.Segment) {
			s.Label("main")
			s.SendW(0)
		},
		"sende without msg": func(s *asm.Segment) {
			s.Label("main")
			s.SendE()
		},
		"msgdest without msg": func(s *asm.Segment) {
			s.Label("main")
			s.MsgDest(0)
		},
		"bad priority": func(s *asm.Segment) {
			s.Label("main")
			s.MsgI(7)
		},
		"remote without router": func(s *asm.Segment) {
			s.Label("main")
			s.MovI(0, 3)
			s.MsgI(Low)
			s.MsgDest(0)
			s.SendWI(1)
			s.SendE()
		},
	}
	for name, build := range cases {
		t.Run(name, func(t *testing.T) {
			m, user := buildMachine(t, build)
			m.Inject(Low, []word.Word{word.Ptr(user.Addr("main"))})
			if err := m.Run(); !errors.Is(err, ErrTrap) {
				t.Errorf("err = %v, want trap", err)
			}
		})
	}
}

func TestStepOneAndIdle(t *testing.T) {
	m, user := buildMachine(t, func(s *asm.Segment) {
		s.Label("main")
		s.MovI(0, 1)
		s.Suspend()
	})
	// Idle before any message.
	if !m.Idle() {
		t.Error("fresh machine not idle")
	}
	if ok, err := m.StepOne(); ok || err != nil {
		t.Errorf("StepOne on idle machine: %v %v", ok, err)
	}
	m.Inject(Low, []word.Word{word.Ptr(user.Addr("main"))})
	if m.Idle() {
		t.Error("machine with pending message reported idle")
	}
	steps := 0
	for {
		ok, err := m.StepOne()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		steps++
	}
	if steps != 2 {
		t.Errorf("executed %d steps, want 2", steps)
	}
	if m.Node() != 0 {
		t.Errorf("default node = %d", m.Node())
	}
}

func TestCodeStoreAccessors(t *testing.T) {
	sys := asm.NewSys()
	sys.Halt()
	user := asm.NewUser()
	user.Nop()
	user.Nop()
	sys.Finish()
	user.Finish()
	cs := NewCodeStore(sys.Code(), user.Code())
	if cs.SysWords() != 1 || cs.UserWords() != 2 {
		t.Errorf("sizes = %d/%d", cs.SysWords(), cs.UserWords())
	}
	if cs.Fetch(mem.UserCodeBase+4).Op != isa.OpNop {
		t.Error("fetch decoded wrong instruction")
	}
}

func TestSetRegAndQueueAccessor(t *testing.T) {
	m, _ := buildMachine(t, func(s *asm.Segment) {
		s.Label("main")
		s.Suspend()
	})
	m.SetReg(Low, 3, word.Int(9))
	if m.Queue(Low) == nil || m.Queue(High) == nil {
		t.Error("queue accessors nil")
	}
	if m.Queue(Low).CapWords() <= 0 {
		t.Error("queue capacity not positive")
	}
	m.SetTracer(nil)   // restores no-op
	m.SetObserver(nil) // restores no-op
	m.Inject(Low, []word.Word{word.Ptr(mem.UserCodeBase)})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}
