// Package machine implements the simulated Message-Driven-Processor-like
// execution engine: two priority levels with separate register files and
// message queues, hardware message buffering and dispatch-on-suspend,
// interrupt enable/disable windows for low priority, and trace hooks that
// feed the cache simulator and granularity statistics.
package machine

import (
	"fmt"

	"jmtam/internal/isa"
	"jmtam/internal/mem"
)

// CodeStore holds the two instruction segments. Instructions are indexed
// by byte address (one instruction per word).
type CodeStore struct {
	sys     []isa.Instr
	user    []isa.Instr
	sysLen  uint32
	userLen uint32
}

// NewCodeStore builds a code store from assembled segments.
func NewCodeStore(sys, user []isa.Instr) *CodeStore {
	return &CodeStore{
		sys:     sys,
		user:    user,
		sysLen:  uint32(len(sys)) * mem.WordBytes,
		userLen: uint32(len(user)) * mem.WordBytes,
	}
}

// Fetch returns the instruction at byte address addr.
func (c *CodeStore) Fetch(addr uint32) *isa.Instr {
	if addr >= mem.UserCodeBase {
		off := addr - mem.UserCodeBase
		if off >= c.userLen {
			panic(fmt.Sprintf("machine: fetch outside user code at %#x", addr))
		}
		return &c.user[off/mem.WordBytes]
	}
	off := addr - mem.SysCodeBase
	if off >= c.sysLen {
		panic(fmt.Sprintf("machine: fetch outside system code at %#x", addr))
	}
	return &c.sys[off/mem.WordBytes]
}

// SysWords and UserWords report segment sizes in instructions.
func (c *CodeStore) SysWords() int  { return len(c.sys) }
func (c *CodeStore) UserWords() int { return len(c.user) }
