package machine

import (
	"fmt"

	"jmtam/internal/isa"
	"jmtam/internal/mem"
	"jmtam/internal/word"
)

// step executes one instruction at priority pri.
func (m *Machine) step(pri int) {
	in := m.Code.Fetch(m.ip[pri])
	trc := m.trc[pri]
	trc.Fetch(m.ip[pri])
	m.instrs++
	if pri == High {
		m.hiInstrs++
	}
	m.opCounts[in.Op]++

	if m.probe != nil && (!m.probe.havePri || m.probe.lastPri != pri) {
		m.probe.priSwitch(m.nodeID, pri, m.instrs)
	}

	if in.Mark != isa.MarkNone {
		switch in.Mark {
		case isa.MarkThreadStart:
			m.observer.ThreadStart(m.regs[pri][isa.RFP].Addr(), m.instrs)
		case isa.MarkInletStart:
			m.observer.InletStart(m.regs[pri][isa.RFP].Addr(), m.instrs)
			if m.probe != nil {
				m.probe.inletEnter(pri, m.instrs)
			}
		case isa.MarkActivate:
			m.observer.Activate(m.regs[pri][isa.RFP].Addr(), m.instrs)
			if m.probe != nil {
				m.probe.frameDeq()
			}
		default:
			// Runtime-operation marks carry no Observer semantics; they
			// feed the observability sink only.
			if m.probe != nil {
				m.probe.mark(in.Mark)
			}
		}
	}

	next := m.ip[pri] + mem.WordBytes
	r := &m.regs[pri]

	switch in.Op {
	case isa.OpNop:

	case isa.OpMovI:
		r[in.Rd] = word.Int(in.Imm)
	case isa.OpMovA:
		r[in.Rd] = word.Ptr(uint32(in.Imm))
	case isa.OpMovF:
		r[in.Rd] = word.Float(in.FImm)
	case isa.OpMov:
		r[in.Rd] = m.reg(pri, in.Ra)
	case isa.OpLEA:
		r[in.Rd] = word.Ptr(uint32(m.reg(pri, in.Ra).AsInt() + in.Imm))

	case isa.OpLD:
		addr := uint32(m.reg(pri, in.Ra).AsInt() + in.Imm)
		trc.Read(addr)
		r[in.Rd] = m.Mem.Load(addr)
	case isa.OpST:
		addr := uint32(m.reg(pri, in.Ra).AsInt() + in.Imm)
		trc.Write(addr)
		m.Mem.Store(addr, m.reg(pri, in.Rb))
	case isa.OpLDPre:
		base := m.reg(pri, in.Ra)
		addr := uint32(base.AsInt() - mem.WordBytes)
		r[in.Ra] = word.Ptr(addr)
		trc.Read(addr)
		r[in.Rd] = m.Mem.Load(addr)
	case isa.OpSTPost:
		addr := m.reg(pri, in.Ra).Addr()
		trc.Write(addr)
		m.Mem.Store(addr, m.reg(pri, in.Rb))
		r[in.Ra] = word.Ptr(addr + mem.WordBytes)

	case isa.OpAdd:
		r[in.Rd] = word.Int(m.reg(pri, in.Ra).AsInt() + m.reg(pri, in.Rb).AsInt())
	case isa.OpSub:
		r[in.Rd] = word.Int(m.reg(pri, in.Ra).AsInt() - m.reg(pri, in.Rb).AsInt())
	case isa.OpMul:
		r[in.Rd] = word.Int(m.reg(pri, in.Ra).AsInt() * m.reg(pri, in.Rb).AsInt())
	case isa.OpDiv:
		b := m.reg(pri, in.Rb).AsInt()
		if b == 0 {
			panic("divide by zero")
		}
		r[in.Rd] = word.Int(m.reg(pri, in.Ra).AsInt() / b)
	case isa.OpMod:
		b := m.reg(pri, in.Rb).AsInt()
		if b == 0 {
			panic("modulo by zero")
		}
		r[in.Rd] = word.Int(m.reg(pri, in.Ra).AsInt() % b)
	case isa.OpAnd:
		r[in.Rd] = word.Int(m.reg(pri, in.Ra).AsInt() & m.reg(pri, in.Rb).AsInt())
	case isa.OpOr:
		r[in.Rd] = word.Int(m.reg(pri, in.Ra).AsInt() | m.reg(pri, in.Rb).AsInt())
	case isa.OpXor:
		r[in.Rd] = word.Int(m.reg(pri, in.Ra).AsInt() ^ m.reg(pri, in.Rb).AsInt())
	case isa.OpShl:
		r[in.Rd] = word.Int(m.reg(pri, in.Ra).AsInt() << uint(m.reg(pri, in.Rb).AsInt()))
	case isa.OpShr:
		r[in.Rd] = word.Int(m.reg(pri, in.Ra).AsInt() >> uint(m.reg(pri, in.Rb).AsInt()))

	case isa.OpAddI:
		w := m.reg(pri, in.Ra)
		r[in.Rd] = word.Word{Tag: addTag(w), I: w.AsInt() + in.Imm}
	case isa.OpSubI:
		w := m.reg(pri, in.Ra)
		r[in.Rd] = word.Word{Tag: addTag(w), I: w.AsInt() - in.Imm}
	case isa.OpMulI:
		r[in.Rd] = word.Int(m.reg(pri, in.Ra).AsInt() * in.Imm)
	case isa.OpAndI:
		r[in.Rd] = word.Int(m.reg(pri, in.Ra).AsInt() & in.Imm)
	case isa.OpShlI:
		r[in.Rd] = word.Int(m.reg(pri, in.Ra).AsInt() << uint(in.Imm))
	case isa.OpShrI:
		r[in.Rd] = word.Int(m.reg(pri, in.Ra).AsInt() >> uint(in.Imm))

	case isa.OpFAdd:
		r[in.Rd] = word.Float(m.reg(pri, in.Ra).AsFloat() + m.reg(pri, in.Rb).AsFloat())
	case isa.OpFSub:
		r[in.Rd] = word.Float(m.reg(pri, in.Ra).AsFloat() - m.reg(pri, in.Rb).AsFloat())
	case isa.OpFMul:
		r[in.Rd] = word.Float(m.reg(pri, in.Ra).AsFloat() * m.reg(pri, in.Rb).AsFloat())
	case isa.OpFDiv:
		b := m.reg(pri, in.Rb).AsFloat()
		r[in.Rd] = word.Float(m.reg(pri, in.Ra).AsFloat() / b)
	case isa.OpFNeg:
		r[in.Rd] = word.Float(-m.reg(pri, in.Ra).AsFloat())
	case isa.OpIToF:
		r[in.Rd] = word.Float(float64(m.reg(pri, in.Ra).AsInt()))
	case isa.OpFToI:
		r[in.Rd] = word.Int(int64(m.reg(pri, in.Ra).AsFloat()))

	case isa.OpBR:
		next = in.Target
	case isa.OpJMP:
		next = m.reg(pri, in.Ra).Addr()
	case isa.OpJAL:
		r[in.Rd] = word.Ptr(next)
		next = in.Target
	case isa.OpBEQ:
		if m.reg(pri, in.Ra).AsInt() == m.reg(pri, in.Rb).AsInt() {
			next = in.Target
		}
	case isa.OpBNE:
		if m.reg(pri, in.Ra).AsInt() != m.reg(pri, in.Rb).AsInt() {
			next = in.Target
		}
	case isa.OpBLT:
		if m.reg(pri, in.Ra).AsInt() < m.reg(pri, in.Rb).AsInt() {
			next = in.Target
		}
	case isa.OpBLE:
		if m.reg(pri, in.Ra).AsInt() <= m.reg(pri, in.Rb).AsInt() {
			next = in.Target
		}
	case isa.OpBGT:
		if m.reg(pri, in.Ra).AsInt() > m.reg(pri, in.Rb).AsInt() {
			next = in.Target
		}
	case isa.OpBGE:
		if m.reg(pri, in.Ra).AsInt() >= m.reg(pri, in.Rb).AsInt() {
			next = in.Target
		}
	case isa.OpFBLT:
		if m.reg(pri, in.Ra).AsFloat() < m.reg(pri, in.Rb).AsFloat() {
			next = in.Target
		}
	case isa.OpFBLE:
		if m.reg(pri, in.Ra).AsFloat() <= m.reg(pri, in.Rb).AsFloat() {
			next = in.Target
		}
	case isa.OpBZ:
		if m.reg(pri, in.Ra).AsInt() == 0 {
			next = in.Target
		}
	case isa.OpBNZ:
		if m.reg(pri, in.Ra).AsInt() != 0 {
			next = in.Target
		}
	case isa.OpBTag:
		if m.reg(pri, in.Ra).Tag == word.Tag(in.Imm) {
			next = in.Target
		}

	case isa.OpTagSet:
		w := m.reg(pri, in.Ra)
		w.Tag = word.Tag(in.Imm)
		r[in.Rd] = w
	case isa.OpTagGet:
		r[in.Rd] = word.Int(int64(m.reg(pri, in.Ra).Tag))

	case isa.OpMsgI:
		m.beginMsg(pri, int(in.Imm))
	case isa.OpMsgR:
		m.beginMsg(pri, int(m.reg(pri, in.Ra).AsInt()))
	case isa.OpMsgDest:
		if !m.building[pri] {
			panic("MSGDEST without MSGI/MSGR")
		}
		m.sendDest[pri] = int(m.reg(pri, in.Ra).AsInt())
	case isa.OpSendW:
		m.appendMsg(pri, m.reg(pri, in.Ra))
	case isa.OpSendWI:
		m.appendMsg(pri, word.Int(in.Imm))
	case isa.OpSendWA:
		m.appendMsg(pri, word.Ptr(uint32(in.Imm)))
	case isa.OpSendE:
		m.deliver(pri)

	case isa.OpEI:
		if pri == Low {
			m.intEn = true
		}
	case isa.OpDI:
		if pri == Low {
			m.intEn = false
		}
	case isa.OpSuspend:
		m.suspend(pri)
		m.ip[pri] = next
		return
	case isa.OpWait:
		if m.quiescent() {
			if m.router == nil {
				m.halted = true
				return
			}
			// On a mesh node quiescence is local: stall at this WAIT
			// (ip unchanged) until the cluster driver delivers a
			// message, which clears the stall.
			m.stalled = true
			return
		}
	case isa.OpNode:
		r[in.Rd] = word.Int(int64(m.nodeID))
	case isa.OpHalt:
		m.halted = true
		return
	case isa.OpTrap:
		m.halted = true
		m.trapErr = fmt.Errorf("%w: trap %d at %#x", ErrTrap, in.Imm, m.ip[pri])
		return

	default:
		panic(fmt.Sprintf("unimplemented opcode %v", in.Op))
	}

	m.ip[pri] = next
}

// addTag preserves pointerness through ADDI/SUBI so address arithmetic
// keeps producing pointers.
func addTag(w word.Word) word.Tag {
	if w.Tag == word.TagPtr {
		return word.TagPtr
	}
	return word.TagInt
}

func (m *Machine) beginMsg(pri, destPri int) {
	if destPri != Low && destPri != High {
		panic(fmt.Sprintf("bad message priority %d", destPri))
	}
	m.sendPri[pri] = destPri
	m.sendDest[pri] = m.nodeID
	m.sendBuf[pri] = m.sendBuf[pri][:0]
	m.building[pri] = true
}

func (m *Machine) appendMsg(pri int, w word.Word) {
	if !m.building[pri] {
		panic("SENDW without MSGI/MSGR")
	}
	m.sendBuf[pri] = append(m.sendBuf[pri], w)
}

func (m *Machine) deliver(pri int) {
	if !m.building[pri] {
		panic("SENDE without MSGI/MSGR")
	}
	m.building[pri] = false
	if m.sendDest[pri] != m.nodeID {
		if m.router == nil {
			panic(fmt.Sprintf("message to node %d with no router", m.sendDest[pri]))
		}
		if err := m.router(m.sendDest[pri], m.sendPri[pri], m.sendBuf[pri]); err != nil {
			panic(err)
		}
		return
	}
	m.qwSeq = 0
	m.qwPri = m.sendPri[pri]
	msg, err := m.queues[m.sendPri[pri]].Enqueue(m.sendBuf[pri], m.queueStore)
	if err != nil {
		panic(err)
	}
	if m.probe != nil {
		m.probe.enqueue(m.nodeID, m.sendPri[pri], msg, m.instrs, m.queues[m.sendPri[pri]].Len())
	}
}
