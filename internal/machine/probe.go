package machine

import (
	"jmtam/internal/isa"
	"jmtam/internal/obs"
	"jmtam/internal/queue"
)

// probe is the machine's resolved view of an obs.Sink. Metric handles
// are interned once at SetSink time so the per-event cost is a pointer
// dereference, and every hook site in the engine guards on m.probe ==
// nil so the disabled path costs one pointer test.
//
// The probe observes; it never feeds back into execution, so simulation
// results are identical with the sink attached or not.
type probe struct {
	sink *obs.Sink

	depth   [2]*obs.Histogram // queue.depth.{low,high}: messages buffered after each enqueue
	wait    [2]*obs.Histogram // queue.wait.{low,high}: enqueue -> dispatch instructions
	handler [2]*obs.Histogram // handler.latency.{low,high}: dispatch -> suspend instructions
	inlet   *obs.Histogram    // inlet.latency: inlet entry -> suspend instructions
	readyG  *obs.Gauge        // ready.frames level
	readyH  *obs.Histogram    // ready.frames depth after each enqueue

	posts     *obs.Counter // post.calls
	frameEnqs *obs.Counter // ready.enqueues
	lcvPush   *obs.Counter
	lcvPop    *obs.Counter
	rcvPush   *obs.Counter
	rcvPop    *obs.Counter
	priSw     *obs.Counter // pri.switches

	enqTs   [2]map[uint64]uint64 // Msg.Seq -> enqueue instruction count
	dispTs  [2]uint64            // dispatch instruction count per priority
	dispIP  [2]uint32            // handler entry address per priority
	dispOn  [2]bool
	inletTs [2]uint64
	inletOn [2]bool

	lastPri    int
	havePri    bool
	readyDepth int64
}

var handlerName = [2]string{"handler p0", "handler p1"}
var priSwitchName = [2]string{"switch to low", "switch to high"}

// SetSink attaches an observability sink; nil detaches. The machine
// resolves metric handles eagerly and, when the sink carries an event
// buffer, labels its timeline tracks.
func (m *Machine) SetSink(s *obs.Sink) {
	if s == nil {
		m.probe = nil
		return
	}
	p := &probe{sink: s}
	r := s.Metrics
	p.depth[Low] = r.Histogram("queue.depth.low")
	p.depth[High] = r.Histogram("queue.depth.high")
	p.wait[Low] = r.Histogram("queue.wait.low")
	p.wait[High] = r.Histogram("queue.wait.high")
	p.handler[Low] = r.Histogram("handler.latency.low")
	p.handler[High] = r.Histogram("handler.latency.high")
	p.inlet = r.Histogram("inlet.latency")
	p.readyG = r.Gauge("ready.frames")
	p.readyH = r.Histogram("ready.frames")
	p.posts = r.Counter("post.calls")
	p.frameEnqs = r.Counter("ready.enqueues")
	p.lcvPush = r.Counter("lcv.push")
	p.lcvPop = r.Counter("lcv.pop")
	p.rcvPush = r.Counter("rcv.push")
	p.rcvPop = r.Counter("rcv.pop")
	p.priSw = r.Counter("pri.switches")
	p.enqTs[Low] = make(map[uint64]uint64)
	p.enqTs[High] = make(map[uint64]uint64)
	if s.Events != nil {
		pid := int32(m.nodeID)
		s.Events.SetThreadName(pid, obs.TrackLow, "pri-0 handlers")
		s.Events.SetThreadName(pid, obs.TrackHigh, "pri-1 handlers")
		s.Events.SetThreadName(pid, obs.TrackQuanta, "quanta")
		s.Events.SetThreadName(pid, obs.TrackInlets, "inlets")
	}
	m.probe = p
}

// Sink returns the attached observability sink, or nil.
func (m *Machine) Sink() *obs.Sink {
	if m.probe == nil {
		return nil
	}
	return m.probe.sink
}

// flowID correlates one queued message's send with its dispatch across
// the whole cluster: node and priority disambiguate the per-queue
// sequence numbers.
func flowID(node, pri int, seq uint64) uint64 {
	return uint64(node)<<33 | uint64(pri)<<32 | (seq & 0xffffffff)
}

// enqueue records a message entering the hardware queue: depth sample,
// timestamp for the wait histogram, and the flow-arrow tail.
func (p *probe) enqueue(node, pri int, msg queue.Msg, now uint64, depth int) {
	p.depth[pri].Observe(uint64(depth))
	p.enqTs[pri][msg.Seq] = now
	if ev := p.sink.Events; ev != nil {
		ev.FlowStart("msg", "queue", int32(node), int32(pri), now, flowID(node, pri, msg.Seq))
	}
}

// dispatch records the hardware beginning to service a message: the
// flow-arrow head and the start of the handler span.
func (p *probe) dispatch(node, pri int, msg queue.Msg, ip uint32, now uint64) {
	// A message enqueued before the sink attached (e.g. the boot
	// message injected at build time) has no recorded tail; emitting a
	// flow head for it would dangle.
	seen := false
	if enq, ok := p.enqTs[pri][msg.Seq]; ok {
		p.wait[pri].Observe(now - enq)
		delete(p.enqTs[pri], msg.Seq)
		seen = true
	}
	p.dispTs[pri] = now
	p.dispIP[pri] = ip
	p.dispOn[pri] = true
	if ev := p.sink.Events; ev != nil && seen {
		ev.FlowFinish("msg", "queue", int32(node), int32(pri), now, flowID(node, pri, msg.Seq))
	}
}

// suspend closes the handler span opened at dispatch and any inlet span
// opened by a MarkInletStart since.
func (p *probe) suspend(node, pri int, now uint64, depthAfter int) {
	if p.dispOn[pri] {
		p.dispOn[pri] = false
		p.handler[pri].Observe(now - p.dispTs[pri])
		if ev := p.sink.Events; ev != nil {
			ev.DurationArg(handlerName[pri], "machine", int32(node), int32(pri),
				p.dispTs[pri], now-p.dispTs[pri], "ip", uint64(p.dispIP[pri]))
		}
	}
	if p.inletOn[pri] {
		p.inletOn[pri] = false
		p.inlet.Observe(now - p.inletTs[pri])
		if ev := p.sink.Events; ev != nil {
			ev.Duration("inlet", "tam", int32(node), obs.TrackInlets,
				p.inletTs[pri], now-p.inletTs[pri])
		}
	}
	_ = depthAfter
}

// priSwitch records the engine changing priority level.
func (p *probe) priSwitch(node, pri int, now uint64) {
	if p.havePri {
		p.priSw.Add(1)
		if ev := p.sink.Events; ev != nil {
			ev.Instant(priSwitchName[pri], "machine", int32(node), obs.TrackLow, now)
		}
	}
	p.havePri = true
	p.lastPri = pri
}

// inletEnter opens an inlet span (closed at the next suspend at pri).
func (p *probe) inletEnter(pri int, now uint64) {
	p.inletTs[pri] = now
	p.inletOn[pri] = true
}

// frameDeq records a frame leaving the ready queue (scheduler
// activation).
func (p *probe) frameDeq() {
	if p.readyDepth > 0 {
		p.readyDepth--
	}
	p.readyG.Set(p.readyDepth)
}

// mark dispatches the runtime-operation mark kinds that carry no
// Observer semantics.
func (p *probe) mark(k isa.MarkKind) {
	switch k {
	case isa.MarkPost:
		p.posts.Add(1)
	case isa.MarkFrameEnq:
		p.frameEnqs.Add(1)
		p.readyDepth++
		p.readyG.Set(p.readyDepth)
		p.readyH.Observe(uint64(p.readyDepth))
	case isa.MarkLCVPush:
		p.lcvPush.Add(1)
	case isa.MarkLCVPop:
		p.lcvPop.Add(1)
	case isa.MarkRCVPush:
		p.rcvPush.Add(1)
	case isa.MarkRCVPop:
		p.rcvPop.Add(1)
	}
}

// finishQueues records the final queue high-water gauges; called by the
// simulation driver after the run.
func (m *Machine) finishQueues() {
	p := m.probe
	if p == nil {
		return
	}
	r := p.sink.Metrics
	r.Gauge("queue.highwater.low").Set(int64(m.queues[Low].HighWater()))
	r.Gauge("queue.highwater.high").Set(int64(m.queues[High].HighWater()))
}

// FinishMetrics flushes end-of-run machine-level metrics into the sink:
// queue high-water marks, total instructions and the per-class dynamic
// instruction mix.
func (m *Machine) FinishMetrics() {
	p := m.probe
	if p == nil {
		return
	}
	m.finishQueues()
	r := p.sink.Metrics
	r.Counter("instrs.total").Add(m.instrs)
	for op, n := range m.opCounts {
		if n != 0 {
			r.Counter("instr." + isa.Op(op).Class()).Add(n)
		}
	}
}
