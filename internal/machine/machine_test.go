package machine

import (
	"errors"
	"testing"

	"jmtam/internal/asm"
	"jmtam/internal/isa"
	"jmtam/internal/mem"
	"jmtam/internal/word"
)

// countTracer records reference counts.
type countTracer struct {
	fetches, reads, writes int
}

func (c *countTracer) Fetch(uint32) { c.fetches++ }
func (c *countTracer) Read(uint32)  { c.reads++ }
func (c *countTracer) Write(uint32) { c.writes++ }

// buildMachine assembles user code with build and returns the machine
// plus the user segment (system segment empty).
func buildMachine(t *testing.T, build func(s *asm.Segment)) (*Machine, *asm.Segment) {
	t.Helper()
	sys := asm.NewSys()
	sys.Halt() // placeholder so the segment is non-empty
	user := asm.NewUser()
	build(user)
	if err := sys.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := user.Finish(); err != nil {
		t.Fatal(err)
	}
	m := NewMachine(mem.NewDefault(), NewCodeStore(sys.Code(), user.Code()), Config{MaxInstructions: 100000})
	return m, user
}

const resultAddr = mem.SysDataBase + 0x100

func TestALUProgram(t *testing.T) {
	m, user := buildMachine(t, func(s *asm.Segment) {
		s.Label("main")
		s.MovI(0, 6)
		s.MovI(1, 7)
		s.Mul(2, 0, 1)
		s.AddI(2, 2, 8) // 50
		s.MovI(1, 3)
		s.Div(2, 2, 1) // 16
		s.MovI(1, 5)
		s.Mod(2, 2, 1) // 1
		s.ShlI(2, 2, 4)
		s.STAbs(resultAddr, 2)
		s.Suspend()
	})
	if err := m.Inject(Low, []word.Word{word.Ptr(user.Addr("main"))}); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Mem.LoadInt(resultAddr); got != 16 {
		t.Errorf("result = %d, want 16", got)
	}
	if !m.Halted() {
		t.Error("machine not halted after quiescence")
	}
}

func TestFloatOps(t *testing.T) {
	m, user := buildMachine(t, func(s *asm.Segment) {
		s.Label("main")
		s.MovF(0, 1.5)
		s.MovF(1, 2.0)
		s.FMul(2, 0, 1) // 3.0
		s.FAdd(2, 2, 0) // 4.5
		s.FSub(2, 2, 1) // 2.5
		s.FDiv(2, 2, 1) // 1.25
		s.FNeg(2, 2)
		s.FNeg(2, 2)
		s.STAbs(resultAddr, 2)
		s.Suspend()
	})
	m.Inject(Low, []word.Word{word.Ptr(user.Addr("main"))})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Mem.Load(resultAddr).AsFloat(); got != 1.25 {
		t.Errorf("result = %g, want 1.25", got)
	}
}

func TestMessageRoundTrip(t *testing.T) {
	// Handler "sender" sends [target, 41] to high priority; "target"
	// reads its argument through the message base register, increments
	// it and stores it.
	m, user := buildMachine(t, func(s *asm.Segment) {
		s.Label("sender")
		s.MsgI(High)
		s.SendWALabel("target")
		s.SendWI(41)
		s.SendE()
		s.Suspend()
		s.Label("target")
		s.LD(0, isa.RMsg, 4)
		s.AddI(0, 0, 1)
		s.STAbs(resultAddr, 0)
		s.Suspend()
	})
	m.Inject(Low, []word.Word{word.Ptr(user.Addr("sender"))})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Mem.LoadInt(resultAddr); got != 42 {
		t.Errorf("result = %d, want 42", got)
	}
}

func TestPreemptionRespectsDI(t *testing.T) {
	// The LP task runs with interrupts disabled, stores 1, opens a
	// window, then stores 3. The HP handler stores 2. With correct
	// EI/DI semantics the final sequence is 1,2,3.
	seqAddr := uint32(mem.SysDataBase + 0x200)
	m, user := buildMachine(t, func(s *asm.Segment) {
		s.Label("lp")
		s.DI()
		s.MsgI(High)
		s.SendWALabel("hp")
		s.SendE()
		s.MovI(0, 1)
		s.MovA(1, seqAddr)
		s.STPost(1, 0) // seq[0] = 1 — HP must NOT have run yet
		s.EI()
		s.DI() // window: HP runs here and appends 2
		s.MovA(1, seqAddr+8)
		s.MovI(0, 3)
		s.STPost(1, 0) // seq[2] = 3
		s.Suspend()
		s.Label("hp")
		s.MovI(0, 2)
		s.MovA(1, seqAddr+4)
		s.STPost(1, 0) // seq[1] = 2
		s.Suspend()
	})
	m.Inject(Low, []word.Word{word.Ptr(user.Addr("lp"))})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for i, want := range []int64{1, 2, 3} {
		if got := m.Mem.LoadInt(seqAddr + uint32(4*i)); got != want {
			t.Errorf("seq[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestHighPriorityDoesNotInterruptItself(t *testing.T) {
	// An HP handler sends another HP message; the second must run only
	// after the first suspends.
	m, user := buildMachine(t, func(s *asm.Segment) {
		s.Label("first")
		s.MsgI(High)
		s.SendWALabel("second")
		s.SendE()
		s.MovI(0, 1)
		s.STAbs(resultAddr, 0) // then second overwrites with 2
		s.Suspend()
		s.Label("second")
		s.MovI(0, 2)
		s.STAbs(resultAddr, 0)
		s.Suspend()
	})
	m.Inject(High, []word.Word{word.Ptr(user.Addr("first"))})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Mem.LoadInt(resultAddr); got != 2 {
		t.Errorf("result = %d, want 2 (second handler last)", got)
	}
}

func TestLowPriorityFIFO(t *testing.T) {
	// Two LP messages carrying different values run in FIFO order.
	m, user := buildMachine(t, func(s *asm.Segment) {
		s.Label("h")
		s.LD(0, isa.RMsg, 4)
		s.LDAbs(1, resultAddr)
		s.MulI(1, 1, 10)
		s.Add(1, 1, 0)
		s.STAbs(resultAddr, 1)
		s.Suspend()
	})
	h := word.Ptr(user.Addr("h"))
	m.Inject(Low, []word.Word{h, word.Int(1)})
	m.Inject(Low, []word.Word{h, word.Int(2)})
	m.Inject(Low, []word.Word{h, word.Int(3)})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Mem.LoadInt(resultAddr); got != 123 {
		t.Errorf("result = %d, want 123 (FIFO order)", got)
	}
}

func TestAutoIncrementOps(t *testing.T) {
	m, user := buildMachine(t, func(s *asm.Segment) {
		s.Label("main")
		s.MovA(1, resultAddr)
		s.MovI(0, 7)
		s.STPost(1, 0)
		s.MovI(0, 9)
		s.STPost(1, 0) // stack: [7, 9], R1 = result+8
		s.LDPre(2, 1)  // 9
		s.LDPre(3, 1)  // 7
		s.Sub(0, 2, 3) // 2
		s.STAbs(resultAddr+16, 0)
		s.Suspend()
	})
	m.Inject(Low, []word.Word{word.Ptr(user.Addr("main"))})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Mem.LoadInt(resultAddr + 16); got != 2 {
		t.Errorf("result = %d, want 2", got)
	}
}

func TestDivideByZeroTraps(t *testing.T) {
	m, user := buildMachine(t, func(s *asm.Segment) {
		s.Label("main")
		s.MovI(0, 1)
		s.MovI(1, 0)
		s.Div(2, 0, 1)
		s.Suspend()
	})
	m.Inject(Low, []word.Word{word.Ptr(user.Addr("main"))})
	if err := m.Run(); !errors.Is(err, ErrTrap) {
		t.Errorf("err = %v, want ErrTrap", err)
	}
}

func TestTrapInstruction(t *testing.T) {
	m, user := buildMachine(t, func(s *asm.Segment) {
		s.Label("main")
		s.Trap(5)
	})
	m.Inject(Low, []word.Word{word.Ptr(user.Addr("main"))})
	if err := m.Run(); !errors.Is(err, ErrTrap) {
		t.Errorf("err = %v, want ErrTrap", err)
	}
}

func TestInstructionLimit(t *testing.T) {
	sys := asm.NewSys()
	sys.Halt()
	user := asm.NewUser()
	user.Label("spin")
	user.BR("spin")
	sys.Finish()
	user.Finish()
	m := NewMachine(mem.NewDefault(), NewCodeStore(sys.Code(), user.Code()), Config{MaxInstructions: 100})
	m.Inject(Low, []word.Word{word.Ptr(user.Addr("spin"))})
	if err := m.Run(); !errors.Is(err, ErrTrap) {
		t.Errorf("err = %v, want instruction-limit trap", err)
	}
}

func TestWaitHaltsWhenQuiescent(t *testing.T) {
	m, user := buildMachine(t, func(s *asm.Segment) {
		s.Label("idle")
		s.Wait()
		s.BR("idle")
	})
	m.Boot(user.Addr("idle"))
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !m.Halted() {
		t.Error("WAIT did not halt a quiescent machine")
	}
	if m.Instructions() == 0 {
		t.Error("no instructions executed")
	}
}

func TestWaitServicesPendingWork(t *testing.T) {
	// An idle LP loop with an EI window must let a pending HP message
	// run before the machine halts.
	m, user := buildMachine(t, func(s *asm.Segment) {
		s.Label("idle")
		s.EI()
		s.DI()
		s.Wait()
		s.BR("idle")
		s.Label("hp")
		s.MovI(0, 77)
		s.STAbs(resultAddr, 0)
		s.Suspend()
	})
	m.Inject(High, []word.Word{word.Ptr(user.Addr("hp"))})
	m.Boot(user.Addr("idle"))
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Mem.LoadInt(resultAddr); got != 77 {
		t.Errorf("HP handler never ran: result = %d", got)
	}
}

func TestTracerCounts(t *testing.T) {
	m, user := buildMachine(t, func(s *asm.Segment) {
		s.Label("main")
		s.MovI(0, 1)           // fetch
		s.STAbs(resultAddr, 0) // fetch + write
		s.LDAbs(1, resultAddr) // fetch + read
		s.Suspend()            // fetch
	})
	tr := &countTracer{}
	m.SetTracer(tr)
	m.Inject(Low, []word.Word{word.Ptr(user.Addr("main"))})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// Dispatch reads the header word; queue writes are untraced here
	// because CountQueueWrites is off in this bare configuration.
	if tr.fetches != 4 || tr.reads != 2 || tr.writes != 1 {
		t.Errorf("counts = %+v, want fetches=4 reads=2 writes=1", *tr)
	}
	if m.Instructions() != 4 {
		t.Errorf("instructions = %d, want 4", m.Instructions())
	}
}

func TestQueueWriteTracing(t *testing.T) {
	sys := asm.NewSys()
	sys.Halt()
	user := asm.NewUser()
	user.Label("main")
	user.Suspend()
	sys.Finish()
	user.Finish()
	m := NewMachine(mem.NewDefault(), NewCodeStore(sys.Code(), user.Code()),
		Config{CountQueueWrites: true})
	tr := &countTracer{}
	m.SetTracer(tr)
	// A three-word injection buffers three words into queue memory.
	m.Inject(Low, []word.Word{word.Ptr(user.Addr("main")), word.Int(1), word.Int(2)})
	if tr.writes != 3 {
		t.Errorf("queue buffering traced %d writes, want 3", tr.writes)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPairedQueueWriteTracing(t *testing.T) {
	sys := asm.NewSys()
	sys.Halt()
	user := asm.NewUser()
	user.Label("main")
	user.Suspend()
	sys.Finish()
	user.Finish()
	// With the MDP's two-word-per-cycle queue write-through enabled,
	// buffering an arriving message charges one traced write per word
	// PAIR: a 3-word injection costs 2, a 4-word injection also 2.
	for _, tc := range []struct {
		words  int
		writes int
	}{{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}} {
		m := NewMachine(mem.NewDefault(), NewCodeStore(sys.Code(), user.Code()),
			Config{CountQueueWrites: true, PairedQueueWrites: true})
		tr := &countTracer{}
		m.SetTracer(tr)
		ws := []word.Word{word.Ptr(user.Addr("main"))}
		for len(ws) < tc.words {
			ws = append(ws, word.Int(int64(len(ws))))
		}
		m.Inject(Low, ws)
		if tr.writes != tc.writes {
			t.Errorf("%d-word injection traced %d queue writes, want %d",
				tc.words, tr.writes, tc.writes)
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestQueueOverflowSurfacesAsError(t *testing.T) {
	sys := asm.NewSys()
	sys.Halt()
	user := asm.NewUser()
	user.Label("flood")
	user.Label("loop")
	user.MsgI(High)
	user.SendWALabel("sink")
	user.SendE()
	user.BR("loop")
	user.Label("sink")
	user.Suspend()
	sys.Finish()
	user.Finish()
	m := NewMachine(mem.NewDefault(), NewCodeStore(sys.Code(), user.Code()),
		Config{QueueCapWords: 16, MaxInstructions: 100000})
	// Keep interrupts disabled so the HP queue can only fill.
	m.Boot(user.Addr("flood"))
	if err := m.Run(); !errors.Is(err, ErrTrap) {
		t.Errorf("err = %v, want queue-overflow trap", err)
	}
}

func TestObserverMarks(t *testing.T) {
	var threads, inlets, dispatches int
	obs := observerFuncs{
		thread:   func(uint32, uint64) { threads++ },
		inlet:    func(uint32, uint64) { inlets++ },
		dispatch: func(int, uint64) { dispatches++ },
	}
	sys := asm.NewSys()
	sys.Halt()
	user := asm.NewUser()
	user.Label("h")
	user.Mark(isa.MarkInletStart)
	user.MovI(0, 1)
	user.Mark(isa.MarkThreadStart)
	user.MovI(0, 2)
	user.Suspend()
	sys.Finish()
	user.Finish()
	m := NewMachine(mem.NewDefault(), NewCodeStore(sys.Code(), user.Code()), Config{})
	m.SetObserver(obs)
	m.Inject(Low, []word.Word{word.Ptr(user.Addr("h"))})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if threads != 1 || inlets != 1 || dispatches != 1 {
		t.Errorf("threads=%d inlets=%d dispatches=%d, want 1 each", threads, inlets, dispatches)
	}
}

type observerFuncs struct {
	thread   func(uint32, uint64)
	inlet    func(uint32, uint64)
	dispatch func(int, uint64)
}

func (o observerFuncs) ThreadStart(f uint32, n uint64) { o.thread(f, n) }
func (o observerFuncs) InletStart(f uint32, n uint64)  { o.inlet(f, n) }
func (o observerFuncs) Activate(uint32, uint64)        {}
func (o observerFuncs) Dispatch(p int, n uint64)       { o.dispatch(p, n) }

func TestFetchOutsideCodePanicsAsTrap(t *testing.T) {
	m, _ := buildMachine(t, func(s *asm.Segment) {
		s.Label("main")
		s.Nop()
	})
	m.Inject(Low, []word.Word{word.Ptr(0x00ffffff)}) // bogus handler
	if err := m.Run(); !errors.Is(err, ErrTrap) {
		t.Errorf("err = %v, want fetch trap", err)
	}
}
