package cache

import (
	"math/rand"
	"testing"
)

// A zero-entry victim hierarchy must be the plain direct-mapped cache:
// identical misses and writebacks on an arbitrary stream.
func TestVictimZeroEntriesMatchesDirectMapped(t *testing.T) {
	cfg := Config{SizeBytes: 1024, BlockBytes: 64, Assoc: 1}
	v, err := NewVictim(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		addr := uint32(rng.Intn(1<<14)) &^ 3
		write := rng.Intn(3) == 0
		v.Access(addr, write)
		c.Access(addr, write)
	}
	vs, cs := v.Stats(), c.Stats()
	if vs.Misses != cs.Misses || vs.Writebacks != cs.Writebacks || vs.Accesses != cs.Accesses {
		t.Errorf("zero-entry victim diverged from direct-mapped: victim %+v, cache %+v", vs, cs)
	}
	if vs.VictimHits != 0 {
		t.Errorf("zero-entry victim reported %d victim hits", vs.VictimHits)
	}
}

// One victim entry converts an alternating two-address conflict (the
// pathological direct-mapped pattern) into swaps after the two
// compulsory misses.
func TestVictimRecoversConflictMisses(t *testing.T) {
	cfg := Config{SizeBytes: 1024, BlockBytes: 64, Assoc: 1}
	v, err := NewVictim(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := uint32(0)
	b := uint32(cfg.SizeBytes) // same set, different tag
	for i := 0; i < 50; i++ {
		v.Access(a, false)
		v.Access(b, false)
	}
	s := v.Stats()
	if s.Misses != 2 {
		t.Errorf("misses = %d, want 2 (compulsory only)", s.Misses)
	}
	if s.VictimHits != 98 {
		t.Errorf("victim hits = %d, want 98", s.VictimHits)
	}
}

// A larger LRU victim buffer never misses more than a smaller one
// (stack inclusion), and a dirty line evicted out of the buffer writes
// back exactly once.
func TestVictimMonotoneAndWritebacks(t *testing.T) {
	cfg := Config{SizeBytes: 1024, BlockBytes: 64, Assoc: 1}
	rng := rand.New(rand.NewSource(11))
	stream := make([]uint32, 30000)
	for i := range stream {
		stream[i] = uint32(rng.Intn(1<<13)) &^ 3
	}
	prev := ^uint64(0)
	for _, n := range []int{0, 1, 2, 4, 8} {
		v, err := NewVictim(cfg, n)
		if err != nil {
			t.Fatal(err)
		}
		for i, addr := range stream {
			v.Access(addr, i%4 == 0)
		}
		m := v.Stats().Misses
		if m > prev {
			t.Errorf("entries=%d: misses %d exceed smaller buffer's %d", n, m, prev)
		}
		prev = m
	}

	// Dirty writeback through the buffer: write a, conflict it out of
	// main into the buffer, then push enough clean lines through the
	// set to evict it from the buffer too.
	v, err := NewVictim(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	v.Access(0, true)
	v.Access(uint32(cfg.SizeBytes), false)   // a -> buffer (dirty)
	v.Access(uint32(2*cfg.SizeBytes), false) // prior line -> buffer, evicts dirty a
	if wb := v.Stats().Writebacks; wb != 1 {
		t.Errorf("writebacks = %d, want 1", wb)
	}
}
