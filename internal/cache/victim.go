package cache

import "fmt"

// VictimStats accumulates access outcomes for a victim-cache hierarchy.
// A reference that misses the main cache but hits the victim buffer
// counts as a VictimHit, not a Miss: the line swaps back without a
// memory access, which is the whole point of the structure.
type VictimStats struct {
	Accesses   uint64
	Misses     uint64 // references that went to memory
	VictimHits uint64 // main-cache misses recovered by the buffer
	Writebacks uint64 // dirty lines evicted to memory
}

// Victim is a direct-mapped cache backed by a small fully-associative
// victim buffer (Jouppi's victim cache). A main-cache miss probes the
// buffer; on a buffer hit the line swaps with the main cache's resident
// line, on a full miss the evicted main line moves into the buffer and
// the buffer's LRU entry (if dirty) writes back. With zero entries the
// structure degenerates to the plain direct-mapped cache — identical
// miss and writeback counts — which anchors the ablation's baseline.
//
// The ablation asks how much of the set-associativity gap between MD
// and AM is plain conflict misses: if a handful of victim entries
// recovers it, the answer is yes; the residual is working-set capacity.
type Victim struct {
	cfg      Config
	entries  int
	tags     []uint32
	dirty    []uint8
	vTags    []uint32
	vDirty   []uint8
	vRank    []uint8 // permutation of 0..entries-1; 0 = MRU
	setMask  uint32
	blkShift uint32
	stats    VictimStats
}

// NewVictim builds a victim-cache hierarchy: cfg must be direct-mapped
// (the main cache), entries sizes the fully-associative buffer.
func NewVictim(cfg Config, entries int) (*Victim, error) {
	if cfg.Assoc != 1 {
		return nil, fmt.Errorf("cache: victim main cache must be direct-mapped, got %d-way", cfg.Assoc)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if entries < 0 || entries > 64 {
		return nil, fmt.Errorf("cache: victim buffer entries %d out of range [0, 64]", entries)
	}
	nSets := cfg.SizeBytes / cfg.BlockBytes
	v := &Victim{
		cfg:      cfg,
		entries:  entries,
		tags:     make([]uint32, nSets),
		dirty:    make([]uint8, nSets),
		vTags:    make([]uint32, entries),
		vDirty:   make([]uint8, entries),
		vRank:    make([]uint8, entries),
		setMask:  uint32(nSets - 1),
		blkShift: blkShiftOf(cfg),
	}
	for i := range v.tags {
		v.tags[i] = invalidTag
	}
	for i := range v.vTags {
		v.vTags[i] = invalidTag
		v.vRank[i] = uint8(i)
	}
	return v, nil
}

func blkShiftOf(cfg Config) uint32 {
	var s uint32
	for b := cfg.BlockBytes; b > 1; b >>= 1 {
		s++
	}
	return s
}

// Config returns the main cache's geometry.
func (v *Victim) Config() Config { return v.cfg }

// Entries returns the victim buffer's capacity.
func (v *Victim) Entries() int { return v.entries }

// Stats returns the accumulated statistics.
func (v *Victim) Stats() VictimStats { return v.stats }

// Access performs one read (write=false) or write (write=true) at the
// given byte address.
func (v *Victim) Access(addr uint32, write bool) {
	v.stats.Accesses++
	var d uint8
	if write {
		d = stDirty
	}
	blk := addr >> v.blkShift
	s := blk & v.setMask
	if v.tags[s] == blk {
		v.dirty[s] |= d
		return
	}
	// Probe the victim buffer: a hit swaps the buffer entry with the
	// main cache's resident line and promotes the slot to MRU.
	for i := 0; i < v.entries; i++ {
		if v.vTags[i] != blk {
			continue
		}
		v.stats.VictimHits++
		v.tags[s], v.vTags[i] = v.vTags[i], v.tags[s]
		v.dirty[s], v.vDirty[i] = v.vDirty[i]|d, v.dirty[s]
		v.promote(i)
		return
	}
	// Full miss: the evicted main line moves into the buffer (or writes
	// back directly when there is no buffer), the new line fills main.
	v.stats.Misses++
	evTag, evDirty := v.tags[s], v.dirty[s]
	v.tags[s] = blk
	v.dirty[s] = d
	if evTag == invalidTag {
		return
	}
	if v.entries == 0 {
		if evDirty != 0 {
			v.stats.Writebacks++
		}
		return
	}
	lru := 0
	last := uint8(v.entries - 1)
	for i := 1; i < v.entries; i++ {
		if v.vRank[i] == last {
			lru = i
		}
	}
	if v.vTags[lru] != invalidTag && v.vDirty[lru] != 0 {
		v.stats.Writebacks++
	}
	v.vTags[lru] = evTag
	v.vDirty[lru] = evDirty
	v.promote(lru)
}

// promote moves buffer slot i to the front of the LRU order.
func (v *Victim) promote(i int) {
	r := v.vRank[i]
	for j := range v.vRank {
		if v.vRank[j] < r {
			v.vRank[j]++
		}
	}
	v.vRank[i] = 0
}
