package cache

import (
	"fmt"
	"testing"
)

// refCache is an obviously-correct reference model: per-way structs,
// uint64 timestamps, first-invalid-else-LRU victim choice — the layout
// the SoA/rank implementation replaced. Statistics must match exactly:
// physical way choice among invalid ways is unobservable, so the two
// victim policies are stats-equivalent.
type refCache struct {
	ways []struct {
		tag   uint32
		valid bool
		dirty bool
		used  uint64
	}
	assoc    int
	setMask  uint32
	blkShift uint32
	tick     uint64
	stats    Stats
}

func newRefCache(cfg Config) *refCache {
	nSets := cfg.SizeBytes / (cfg.BlockBytes * cfg.Assoc)
	bs := uint32(0)
	for 1<<bs < cfg.BlockBytes {
		bs++
	}
	r := &refCache{assoc: cfg.Assoc, setMask: uint32(nSets - 1), blkShift: bs}
	r.ways = make([]struct {
		tag   uint32
		valid bool
		dirty bool
		used  uint64
	}, nSets*cfg.Assoc)
	return r
}

func (r *refCache) access(addr uint32, write bool) bool {
	r.tick++
	r.stats.Accesses++
	blk := addr >> r.blkShift
	set := int(blk&r.setMask) * r.assoc
	for i := set; i < set+r.assoc; i++ {
		if r.ways[i].valid && r.ways[i].tag == blk {
			r.ways[i].used = r.tick
			if write {
				r.ways[i].dirty = true
			}
			return true
		}
	}
	r.stats.Misses++
	v := -1
	for i := set; i < set+r.assoc; i++ {
		if !r.ways[i].valid {
			v = i
			break
		}
	}
	if v < 0 {
		v = set
		for i := set + 1; i < set+r.assoc; i++ {
			if r.ways[i].used < r.ways[v].used {
				v = i
			}
		}
	}
	if r.ways[v].valid && r.ways[v].dirty {
		r.stats.Writebacks++
	}
	r.ways[v] = struct {
		tag   uint32
		valid bool
		dirty bool
		used  uint64
	}{tag: blk, valid: true, dirty: write, used: r.tick}
	return false
}

// refStream generates a deterministic mixed-locality address stream.
func refStream(n int) []uint32 {
	refs := make([]uint32, n)
	state := uint32(0x9E3779B9)
	for i := range refs {
		state ^= state << 13
		state ^= state >> 17
		state ^= state << 5
		var addr uint32
		switch i % 5 {
		case 0, 1: // hot loop
			addr = uint32(i%512) * 4
		case 2: // medium working set
			addr = (state % (1 << 14)) &^ 3
		default: // cold scatter
			addr = (state % (1 << 24)) &^ 3
		}
		if state&0x3 == 0 {
			addr |= RefWrite
		}
		refs[i] = addr
	}
	return refs
}

// TestAccessMatchesReferenceModel drives an identical stream through
// the SoA implementation (scalar and batch) and the timestamp reference
// model across every specialized and generic associativity, requiring
// identical statistics.
func TestAccessMatchesReferenceModel(t *testing.T) {
	refs := refStream(60000)
	for _, assoc := range []int{1, 2, 3, 4, 8} {
		for _, size := range []int{1024, 8192} {
			cfg := Config{SizeBytes: size, BlockBytes: 64, Assoc: assoc}
			t.Run(fmt.Sprintf("%v", cfg), func(t *testing.T) {
				ref := newRefCache(cfg)
				scalar := MustNew(cfg)
				batched := MustNew(cfg)
				for _, w := range refs {
					ref.access(w&^3, w&RefWrite != 0)
					scalar.Access(w&^3, w&RefWrite != 0)
				}
				// Batch in uneven slices to exercise chunk boundaries.
				for off := 0; off < len(refs); {
					end := off + 1000 + off%777
					if end > len(refs) {
						end = len(refs)
					}
					batched.AccessBatch(refs[off:end])
					off = end
				}
				if scalar.Stats() != ref.stats {
					t.Errorf("scalar %+v != reference %+v", scalar.Stats(), ref.stats)
				}
				if batched.Stats() != ref.stats {
					t.Errorf("batched %+v != reference %+v", batched.Stats(), ref.stats)
				}
			})
		}
	}
}

// TestAccessBatchFetchMatchesScalar checks the read-only fetch kernels
// against scalar reads on a never-written cache.
func TestAccessBatchFetchMatchesScalar(t *testing.T) {
	refs := refStream(60000)
	for i := range refs {
		refs[i] &^= 3 // fetch addresses carry no flag bits
	}
	for _, assoc := range []int{1, 2, 4, 8} {
		cfg := Config{SizeBytes: 4096, BlockBytes: 32, Assoc: assoc}
		t.Run(fmt.Sprintf("assoc=%d", assoc), func(t *testing.T) {
			scalar := MustNew(cfg)
			batched := MustNew(cfg)
			for _, w := range refs {
				scalar.Access(w, false)
			}
			for off := 0; off < len(refs); off += 4096 {
				end := off + 4096
				if end > len(refs) {
					end = len(refs)
				}
				batched.AccessBatchFetch(refs[off:end])
			}
			if scalar.Stats() != batched.Stats() {
				t.Errorf("fetch batch %+v != scalar %+v", batched.Stats(), scalar.Stats())
			}
		})
	}
}
