package cache

import (
	"fmt"
	"testing"
)

// benchRefs builds a packed reference stream (write flag in bit 0) with
// loopy locality plus a conflict-prone stride, deterministic across runs.
func benchRefs(n int) []uint32 {
	refs := make([]uint32, n)
	state := uint32(0x2545F491)
	for i := range refs {
		state ^= state << 13
		state ^= state >> 17
		state ^= state << 5
		var addr uint32
		switch {
		case i%4 != 3: // loop-style reuse over a 16 KB window
			addr = uint32(i%4096) * 4
		default: // scattered heap touch
			addr = (state % (1 << 22)) &^ 3
		}
		if state&0x7 == 0 {
			addr |= RefWrite
		}
		refs[i] = addr
	}
	return refs
}

// BenchmarkAccess measures the scalar probe per associativity.
func BenchmarkAccess(b *testing.B) {
	refs := benchRefs(1 << 16)
	for _, assoc := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("assoc=%d", assoc), func(b *testing.B) {
			c := MustNew(Config{SizeBytes: 8192, BlockBytes: 64, Assoc: assoc})
			b.SetBytes(4)
			for i := 0; i < b.N; i++ {
				w := refs[i&(len(refs)-1)]
				c.Access(w&^3, w&RefWrite != 0)
			}
		})
	}
}

// BenchmarkAccessBatch measures the batched data-stream kernels.
func BenchmarkAccessBatch(b *testing.B) {
	refs := benchRefs(1 << 16)
	for _, assoc := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("assoc=%d", assoc), func(b *testing.B) {
			c := MustNew(Config{SizeBytes: 8192, BlockBytes: 64, Assoc: assoc})
			b.SetBytes(int64(4 * len(refs)))
			for i := 0; i < b.N; i++ {
				c.AccessBatch(refs)
			}
		})
	}
}

// BenchmarkAccessBatchFetch measures the read-only fetch-stream kernels.
func BenchmarkAccessBatchFetch(b *testing.B) {
	refs := benchRefs(1 << 16)
	for i := range refs {
		refs[i] &^= 3 // fetch addresses carry no flag bits
	}
	for _, assoc := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("assoc=%d", assoc), func(b *testing.B) {
			c := MustNew(Config{SizeBytes: 8192, BlockBytes: 64, Assoc: assoc})
			b.SetBytes(int64(4 * len(refs)))
			for i := 0; i < b.N; i++ {
				c.AccessBatchFetch(refs)
			}
		})
	}
}
