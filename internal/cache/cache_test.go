package cache

import (
	"testing"
	"testing/quick"

	"jmtam/internal/rng"
)

func TestConfigValidate(t *testing.T) {
	good := []Config{
		{1024, 8, 1}, {8192, 64, 4}, {131072, 64, 2}, {64, 8, 8},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("%v: unexpected error %v", c, err)
		}
	}
	bad := []Config{
		{0, 64, 1},    // zero size
		{1000, 64, 1}, // non-power-of-two size
		{1024, 0, 1},  // zero block
		{1024, 48, 1}, // non-power-of-two block
		{1024, 64, 0}, // zero assoc
		{64, 64, 4},   // too small for one set
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%v: expected validation error", c)
		}
	}
}

func TestConfigString(t *testing.T) {
	c := Config{SizeBytes: 8192, BlockBytes: 64, Assoc: 4}
	if got := c.String(); got != "8K/4-way/64B" {
		t.Errorf("String() = %q", got)
	}
}

func TestCompulsoryMisses(t *testing.T) {
	c := MustNew(Config{SizeBytes: 1024, BlockBytes: 64, Assoc: 2})
	for i := uint32(0); i < 8; i++ {
		if c.Access(i*64, false) {
			t.Errorf("first touch of block %d hit", i)
		}
		if !c.Access(i*64, false) {
			t.Errorf("second touch of block %d missed", i)
		}
	}
	s := c.Stats()
	if s.Accesses != 16 || s.Misses != 8 {
		t.Errorf("stats = %+v, want 16 accesses / 8 misses", s)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	// 1K direct-mapped with 64B blocks = 16 sets. Addresses 0 and 1024
	// map to the same set and evict each other.
	c := MustNew(Config{SizeBytes: 1024, BlockBytes: 64, Assoc: 1})
	c.Access(0, false)
	c.Access(1024, false)
	if c.Access(0, false) {
		t.Error("conflicting block survived in direct-mapped cache")
	}
	// The same pattern in a 2-way cache has no conflict.
	c2 := MustNew(Config{SizeBytes: 1024, BlockBytes: 64, Assoc: 2})
	c2.Access(0, false)
	c2.Access(1024, false)
	if !c2.Access(0, false) {
		t.Error("2-way cache evicted a block it had room for")
	}
}

func TestLRUOrder(t *testing.T) {
	// One set, 4 ways: fill A B C D, touch A, insert E: B (the LRU)
	// must be the victim.
	c := MustNew(Config{SizeBytes: 256, BlockBytes: 64, Assoc: 4})
	addrs := []uint32{0, 256, 512, 768} // all map to set 0
	for _, a := range addrs {
		c.Access(a, false)
	}
	c.Access(0, false)    // A is now most recent
	c.Access(1024, false) // E evicts B
	if !c.Access(0, false) {
		t.Error("A was evicted despite being recently used")
	}
	if c.Contains(256) {
		t.Error("B survived despite being least recently used")
	}
	if !c.Contains(512) || !c.Contains(768) {
		t.Error("C or D evicted unexpectedly")
	}
}

func TestWritebackCounting(t *testing.T) {
	c := MustNew(Config{SizeBytes: 64, BlockBytes: 64, Assoc: 1})
	c.Access(0, true)    // dirty
	c.Access(64, false)  // evicts dirty block -> writeback
	c.Access(128, false) // evicts clean block -> no writeback
	s := c.Stats()
	if s.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", s.Writebacks)
	}
}

func TestWriteAllocateMarksDirty(t *testing.T) {
	c := MustNew(Config{SizeBytes: 64, BlockBytes: 64, Assoc: 1})
	c.Access(0, false) // clean fill
	c.Access(0, true)  // hit, dirties the line
	c.Access(64, false)
	if c.Stats().Writebacks != 1 {
		t.Error("write hit did not dirty the line")
	}
}

func TestReset(t *testing.T) {
	c := MustNew(Config{SizeBytes: 1024, BlockBytes: 64, Assoc: 2})
	c.Access(0, true)
	c.Reset()
	if s := c.Stats(); s.Accesses != 0 || s.Misses != 0 {
		t.Errorf("stats after reset: %+v", s)
	}
	if c.Contains(0) {
		t.Error("contents survived reset")
	}
}

func TestContainsDoesNotDisturb(t *testing.T) {
	c := MustNew(Config{SizeBytes: 128, BlockBytes: 64, Assoc: 2})
	c.Access(0, false)
	c.Access(128, false)
	before := c.Stats()
	c.Contains(0)
	c.Contains(999)
	if c.Stats() != before {
		t.Error("Contains changed statistics")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with bad config did not panic")
		}
	}()
	MustNew(Config{SizeBytes: 3, BlockBytes: 64, Assoc: 1})
}

// TestLRUInclusionProperty checks the stack property of LRU: with the
// same number of sets, adding ways can never increase the miss count on
// any access stream.
func TestLRUInclusionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		// Same sets (8), growing ways.
		c1 := MustNew(Config{SizeBytes: 8 * 64 * 1, BlockBytes: 64, Assoc: 1})
		c2 := MustNew(Config{SizeBytes: 8 * 64 * 2, BlockBytes: 64, Assoc: 2})
		c4 := MustNew(Config{SizeBytes: 8 * 64 * 4, BlockBytes: 64, Assoc: 4})
		for i := 0; i < 4000; i++ {
			addr := uint32(src.Intn(1 << 14))
			w := src.Intn(4) == 0
			c1.Access(addr, w)
			c2.Access(addr, w)
			c4.Access(addr, w)
		}
		return c2.Stats().Misses <= c1.Stats().Misses &&
			c4.Stats().Misses <= c2.Stats().Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestMissBoundsProperty checks structural invariants on random streams:
// misses never exceed accesses, writebacks never exceed misses (a line
// is written back at most once per fill).
func TestMissBoundsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		c := MustNew(Config{SizeBytes: 2048, BlockBytes: 32, Assoc: 2})
		for i := 0; i < 3000; i++ {
			c.Access(uint32(src.Intn(1<<13)), src.Intn(2) == 0)
		}
		s := c.Stats()
		return s.Misses <= s.Accesses && s.Writebacks <= s.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("zero stats should have zero miss rate")
	}
	s = Stats{Accesses: 4, Misses: 1}
	if s.MissRate() != 0.25 {
		t.Errorf("miss rate = %g, want 0.25", s.MissRate())
	}
}
