// Package cache implements the trace-driven cache simulator used for the
// paper's evaluation: separate instruction and data caches, write-back
// with write-allocate, true LRU replacement, 1/2/4-way set associativity
// (higher associativities for the ablations), block sizes of 8-64 bytes
// and total sizes of 1K-128K bytes.
//
// The simulator is purely functional on an address stream: miss penalties
// do not feed back into replacement decisions, so a single simulation pass
// yields miss counts from which total cycles for any miss penalty are
// derived analytically (cycles = instructions + penalty * misses), exactly
// as in the paper's methodology (one cycle per instruction plus memory
// access time, comparing absolute cycle counts rather than miss rates).
//
// The state layout is struct-of-arrays, sized for the replay hot loop: a
// flat set-indexed tag array (invalid ways hold an unreachable sentinel
// tag, so the hit probe is a bare compare), one dirty byte per way, and
// compact LRU rank bytes (a packed recency-order byte per 4-way set,
// promoted by table lookup; a permutation of 0..assoc-1 per set
// otherwise) instead of 64-bit timestamps and a victim scan. Access
// dispatches to a per-associativity specialization chosen at
// construction; AccessBatch / AccessBatchFetch amortize dispatch and
// statistics over a whole block of packed references.
package cache

import (
	"fmt"
	"math/bits"
)

// Config describes one cache geometry.
type Config struct {
	SizeBytes  int // total capacity
	BlockBytes int // line size
	Assoc      int // ways per set (1 = direct-mapped)
}

// Validate checks the geometry for consistency. Blocks must be at least
// one 4-byte machine word (the access granularity), and associativity at
// most 256 (the LRU rank bytes' range).
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.SizeBytes&(c.SizeBytes-1) != 0:
		return fmt.Errorf("cache: size %d not a positive power of two", c.SizeBytes)
	case c.BlockBytes <= 0 || c.BlockBytes&(c.BlockBytes-1) != 0:
		return fmt.Errorf("cache: block size %d not a positive power of two", c.BlockBytes)
	case c.BlockBytes < 4:
		return fmt.Errorf("cache: block size %d below the 4-byte word", c.BlockBytes)
	case c.Assoc <= 0:
		return fmt.Errorf("cache: associativity %d not positive", c.Assoc)
	case c.Assoc > 256:
		return fmt.Errorf("cache: associativity %d above 256", c.Assoc)
	case c.SizeBytes < c.BlockBytes*c.Assoc:
		return fmt.Errorf("cache: size %d too small for %d-way sets of %d-byte blocks",
			c.SizeBytes, c.Assoc, c.BlockBytes)
	}
	return nil
}

// String renders the geometry as, e.g., "8K/4-way/64B".
func (c Config) String() string {
	return fmt.Sprintf("%dK/%d-way/%dB", c.SizeBytes/1024, c.Assoc, c.BlockBytes)
}

// Stats accumulates access outcomes.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	Writebacks uint64 // dirty lines evicted (write-back traffic)
}

// MissRate returns misses per access, or zero when idle.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// stDirty marks a resident line dirty in Cache.meta. Validity needs no
// bit: an empty way holds the unreachable sentinel tag, so a dirty byte
// is the only per-way state.
const stDirty uint8 = 1 << 1

// invalidTag marks a way that holds no line. Block sizes are at least 4
// bytes, so block numbers never exceed 2^30-1 and can never equal it.
const invalidTag = ^uint32(0)

// promo4 is the 4-way LRU promotion table. A set's recency order is one
// packed byte: bits 1:0 name the most recently used way, bits 7:6 the
// victim. promo4[ord<<2|way] is the order after a hit on that way (the
// way moves to the front, the rest shift back one place); a miss needs
// no table — the victim is ord>>6 and the new order is ord<<2|victim.
var promo4 [1024]uint8

func init() {
	for ord := 0; ord < 256; ord++ {
		for h := uint8(0); h < 4; h++ {
			out := [4]uint8{h}
			n := 1
			for p := 0; p < 4; p++ {
				if w := uint8(ord>>(2*p)) & 3; w != h && n < 4 {
					out[n] = w
					n++
				}
			}
			promo4[ord<<2|int(h)] = out[0] | out[1]<<2 | out[2]<<4 | out[3]<<6
		}
	}
}

// Write flag carried in bit 0 of a packed batch reference (addresses are
// word-aligned, so bits 0-1 of the byte address are free).
const RefWrite = uint32(1)

// Cache is one cache instance. Construct with New.
//
// State is struct-of-arrays: tags holds block numbers (invalidTag when
// empty), meta the dirty bytes, and rank the LRU order. 2-way caches
// keep one byte per set naming the most recently used way; 4-way caches
// one packed order byte per set (see promo4); other associativities one
// byte per way forming a permutation of 0..assoc-1 per set (0 = most
// recent, assoc-1 = the victim). Direct-mapped caches do not use rank.
type Cache struct {
	cfg      Config
	tags     []uint32
	meta     []uint8
	rank     []uint8
	assoc    int
	setMask  uint32
	blkShift uint32
	stats    Stats
}

// New builds a cache for the given geometry.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nSets := cfg.SizeBytes / (cfg.BlockBytes * cfg.Assoc)
	c := &Cache{
		cfg:      cfg,
		tags:     make([]uint32, nSets*cfg.Assoc),
		meta:     make([]uint8, nSets*cfg.Assoc),
		assoc:    cfg.Assoc,
		setMask:  uint32(nSets - 1),
		blkShift: uint32(bits.TrailingZeros(uint(cfg.BlockBytes))),
	}
	switch {
	case cfg.Assoc == 2 || cfg.Assoc == 4:
		c.rank = make([]uint8, nSets)
	case cfg.Assoc > 2:
		c.rank = make([]uint8, nSets*cfg.Assoc)
	}
	c.initState()
	return c, nil
}

// initState marks every way empty and seeds the LRU ranks.
func (c *Cache) initState() {
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	switch {
	case c.assoc == 4:
		for s := range c.rank {
			c.rank[s] = 0xE4 // order 0,1,2,3: way 3 is the first victim
		}
	case c.assoc > 2:
		for s := 0; s < len(c.rank); s += c.assoc {
			for i := 0; i < c.assoc; i++ {
				c.rank[s+i] = uint8(i)
			}
		}
	}
}

// MustNew is New for static configurations, panicking on invalid geometry.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache's geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	clear(c.meta)
	clear(c.rank)
	c.initState()
	c.stats = Stats{}
}

// Access performs one read (write=false) or write (write=true) at the
// given byte address and reports whether it hit. Writes allocate on miss
// and mark the line dirty; evicting a dirty line counts a writeback.
func (c *Cache) Access(addr uint32, write bool) bool {
	c.stats.Accesses++
	var dirty uint8
	if write {
		dirty = stDirty
	}
	blk := addr >> c.blkShift
	var hit bool
	switch c.assoc {
	case 1:
		hit = c.probe1(blk, dirty)
	case 2:
		hit = c.probe2(blk, dirty)
	case 4:
		hit = c.probe4(blk, dirty)
	default:
		hit = c.probeN(blk, dirty)
	}
	if !hit {
		c.stats.Misses++
	}
	return hit
}

func (c *Cache) probe1(blk uint32, dirty uint8) bool {
	s := blk & c.setMask
	if c.tags[s] == blk {
		c.meta[s] |= dirty
		return true
	}
	if c.meta[s] != 0 {
		c.stats.Writebacks++
	}
	c.tags[s] = blk
	c.meta[s] = dirty
	return false
}

func (c *Cache) probe2(blk uint32, dirty uint8) bool {
	s := blk & c.setMask
	b := s << 1
	if c.tags[b] == blk {
		c.meta[b] |= dirty
		c.rank[s] = 0
		return true
	}
	if c.tags[b+1] == blk {
		c.meta[b+1] |= dirty
		c.rank[s] = 1
		return true
	}
	lru := c.rank[s] ^ 1
	v := b + uint32(lru)
	if c.meta[v] != 0 {
		c.stats.Writebacks++
	}
	c.tags[v] = blk
	c.meta[v] = dirty
	c.rank[s] = lru
	return false
}

func (c *Cache) probe4(blk uint32, dirty uint8) bool {
	s := blk & c.setMask
	b := s << 2
	tg := c.tags[b : b+4 : b+4]
	ord := c.rank[s]
	var hi uint32
	switch blk {
	case tg[0]:
		hi = 0
	case tg[1]:
		hi = 1
	case tg[2]:
		hi = 2
	case tg[3]:
		hi = 3
	default:
		v := uint32(ord >> 6)
		if c.meta[b+v] != 0 {
			c.stats.Writebacks++
		}
		tg[v] = blk
		c.meta[b+v] = dirty
		c.rank[s] = ord<<2 | uint8(v)
		return false
	}
	c.meta[b+hi] |= dirty
	c.rank[s] = promo4[uint32(ord)<<2|hi]
	return true
}

func (c *Cache) probeN(blk uint32, dirty uint8) bool {
	a := c.assoc
	b := int(blk&c.setMask) * a
	tg := c.tags[b : b+a]
	mt := c.meta[b : b+a]
	rk := c.rank[b : b+a]
	for i := range tg {
		if tg[i] == blk {
			mt[i] |= dirty
			r := rk[i]
			for j := range rk {
				if rk[j] < r {
					rk[j]++
				}
			}
			rk[i] = 0
			return true
		}
	}
	last := uint8(a - 1)
	v := 0
	for j := 1; j < a; j++ {
		if rk[j] == last {
			v = j
		}
	}
	if mt[v] != 0 {
		c.stats.Writebacks++
	}
	tg[v] = blk
	mt[v] = dirty
	for j := range rk {
		rk[j]++
	}
	rk[v] = 0
	return false
}

// AccessBatch streams a block of packed references through the cache.
// Each reference is a word-aligned byte address with the write flag in
// bit 0 (see RefWrite); outcomes accumulate into Stats exactly as the
// equivalent sequence of Access calls would. The per-associativity inner
// loops keep tags, state bytes and statistics in registers, so this is
// the replay engine's hot path.
func (c *Cache) AccessBatch(refs []uint32) {
	switch c.assoc {
	case 1:
		c.batch1(refs)
	case 2:
		c.batch2(refs)
	case 4:
		c.batch4(refs)
	default:
		c.batchN(refs)
	}
}

func (c *Cache) batch1(refs []uint32) {
	tags, meta := c.tags, c.meta
	shift, mask := c.blkShift, c.setMask
	var miss, wb uint64
	for _, w := range refs {
		dirty := uint8(w&1) << 1
		blk := (w &^ 3) >> shift
		s := blk & mask
		if tags[s] == blk {
			meta[s] |= dirty
			continue
		}
		miss++
		if meta[s] != 0 {
			wb++
		}
		tags[s] = blk
		meta[s] = dirty
	}
	c.stats.Accesses += uint64(len(refs))
	c.stats.Misses += miss
	c.stats.Writebacks += wb
}

func (c *Cache) batch2(refs []uint32) {
	tags, meta, rank := c.tags, c.meta, c.rank
	shift, mask := c.blkShift, c.setMask
	var miss, wb uint64
	for _, w := range refs {
		dirty := uint8(w&1) << 1
		blk := (w &^ 3) >> shift
		s := blk & mask
		b := s << 1
		// Probe the most recently used way first: the common case needs
		// no rank store.
		m := uint32(rank[s])
		if tags[b+m] == blk {
			meta[b+m] |= dirty
			continue
		}
		lru := m ^ 1
		if tags[b+lru] == blk {
			meta[b+lru] |= dirty
			rank[s] = uint8(lru)
			continue
		}
		miss++
		v := b + lru
		if meta[v] != 0 {
			wb++
		}
		tags[v] = blk
		meta[v] = dirty
		rank[s] = uint8(lru)
	}
	c.stats.Accesses += uint64(len(refs))
	c.stats.Misses += miss
	c.stats.Writebacks += wb
}

func (c *Cache) batch4(refs []uint32) {
	tags, meta, rank := c.tags, c.meta, c.rank
	shift, mask := c.blkShift, c.setMask
	var miss, wb uint64
	for _, w := range refs {
		dirty := uint8(w&1) << 1
		blk := (w &^ 3) >> shift
		s := blk & mask
		b := s << 2
		tg := tags[b : b+4 : b+4]
		ord := rank[s]
		// Probe the most recently used way first: the common case needs
		// no rank store (its promotion is the identity).
		m0 := uint32(ord) & 3
		if tg[m0] == blk {
			meta[b+m0] |= dirty
			continue
		}
		var hi uint32
		switch blk {
		case tg[0]:
			hi = 0
		case tg[1]:
			hi = 1
		case tg[2]:
			hi = 2
		case tg[3]:
			hi = 3
		default:
			miss++
			v := uint32(ord >> 6)
			if meta[b+v] != 0 {
				wb++
			}
			tg[v] = blk
			meta[b+v] = dirty
			rank[s] = ord<<2 | uint8(v)
			continue
		}
		meta[b+hi] |= dirty
		rank[s] = promo4[uint32(ord)<<2|hi]
	}
	c.stats.Accesses += uint64(len(refs))
	c.stats.Misses += miss
	c.stats.Writebacks += wb
}

func (c *Cache) batchN(refs []uint32) {
	shift := c.blkShift
	var miss uint64
	for _, w := range refs {
		dirty := uint8(w&1) << 1
		blk := (w &^ 3) >> shift
		if !c.probeN(blk, dirty) {
			miss++
		}
	}
	c.stats.Accesses += uint64(len(refs))
	c.stats.Misses += miss
}

// AccessBatchFetch streams a block of word-aligned read addresses (no
// flag bits) through the cache: the replay engine's instruction-fetch
// side. It assumes the cache is never written — fetches cannot dirty a
// line, so when every access to the cache comes through this path no
// line is ever dirty and the kernels skip the dirty-byte bookkeeping
// (and writeback counting, which cannot trigger) entirely. Statistics
// match the equivalent sequence of Access(addr, false) calls.
func (c *Cache) AccessBatchFetch(refs []uint32) {
	switch c.assoc {
	case 1:
		c.batch1F(refs)
	case 2:
		c.batch2F(refs)
	case 4:
		c.batch4F(refs)
	default:
		c.batchN(refs)
	}
}

func (c *Cache) batch1F(refs []uint32) {
	tags := c.tags
	shift, mask := c.blkShift, c.setMask
	var miss uint64
	for _, w := range refs {
		blk := w >> shift
		s := blk & mask
		if tags[s] != blk {
			miss++
			tags[s] = blk
		}
	}
	c.stats.Accesses += uint64(len(refs))
	c.stats.Misses += miss
}

func (c *Cache) batch2F(refs []uint32) {
	tags, rank := c.tags, c.rank
	shift, mask := c.blkShift, c.setMask
	var miss uint64
	for _, w := range refs {
		blk := w >> shift
		s := blk & mask
		b := s << 1
		m := uint32(rank[s])
		if tags[b+m] == blk {
			continue
		}
		lru := m ^ 1
		if tags[b+lru] == blk {
			rank[s] = uint8(lru)
			continue
		}
		miss++
		tags[b+lru] = blk
		rank[s] = uint8(lru)
	}
	c.stats.Accesses += uint64(len(refs))
	c.stats.Misses += miss
}

func (c *Cache) batch4F(refs []uint32) {
	tags, rank := c.tags, c.rank
	shift, mask := c.blkShift, c.setMask
	var miss uint64
	for _, w := range refs {
		blk := w >> shift
		s := blk & mask
		b := s << 2
		tg := tags[b : b+4 : b+4]
		ord := rank[s]
		if tg[uint32(ord)&3] == blk {
			continue
		}
		var hi uint32
		switch blk {
		case tg[0]:
			hi = 0
		case tg[1]:
			hi = 1
		case tg[2]:
			hi = 2
		case tg[3]:
			hi = 3
		default:
			miss++
			v := uint32(ord >> 6)
			tg[v] = blk
			rank[s] = ord<<2 | uint8(v)
			continue
		}
		rank[s] = promo4[uint32(ord)<<2|hi]
	}
	c.stats.Accesses += uint64(len(refs))
	c.stats.Misses += miss
}

// Contains reports whether addr currently resides in the cache, without
// disturbing LRU state or statistics. Intended for tests.
func (c *Cache) Contains(addr uint32) bool {
	blk := addr >> c.blkShift
	set := int(blk&c.setMask) * c.assoc
	for i := set; i < set+c.assoc; i++ {
		if c.tags[i] == blk {
			return true
		}
	}
	return false
}

// Bank is a set of resident caches driven in lockstep by one reference
// stream: each batch of packed references is streamed through every
// member while the batch is hot in L1, so N geometries cost one pass
// over the stream instead of N. The replay engine builds one Bank of
// instruction caches and one of data caches per geometry group.
type Bank struct {
	caches []*Cache
}

// NewBank builds one cache per geometry.
func NewBank(cfgs []Config) (*Bank, error) {
	b := &Bank{caches: make([]*Cache, len(cfgs))}
	for i, cfg := range cfgs {
		c, err := New(cfg)
		if err != nil {
			return nil, err
		}
		b.caches[i] = c
	}
	return b, nil
}

// BankOf wraps existing caches without copying them.
func BankOf(caches ...*Cache) *Bank { return &Bank{caches: caches} }

// Caches returns the bank's members in construction order.
func (b *Bank) Caches() []*Cache { return b.caches }

// AccessBatch streams one block of packed references (write flag in bit
// 0) through every member cache.
func (b *Bank) AccessBatch(refs []uint32) {
	for _, c := range b.caches {
		c.AccessBatch(refs)
	}
}
