// Package cache implements the trace-driven cache simulator used for the
// paper's evaluation: separate instruction and data caches, write-back
// with write-allocate, true LRU replacement, 1/2/4-way set associativity,
// block sizes of 8-64 bytes and total sizes of 1K-128K bytes.
//
// The simulator is purely functional on an address stream: miss penalties
// do not feed back into replacement decisions, so a single simulation pass
// yields miss counts from which total cycles for any miss penalty are
// derived analytically (cycles = instructions + penalty * misses), exactly
// as in the paper's methodology (one cycle per instruction plus memory
// access time, comparing absolute cycle counts rather than miss rates).
package cache

import "fmt"

// Config describes one cache geometry.
type Config struct {
	SizeBytes  int // total capacity
	BlockBytes int // line size
	Assoc      int // ways per set (1 = direct-mapped)
}

// Validate checks the geometry for consistency.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.SizeBytes&(c.SizeBytes-1) != 0:
		return fmt.Errorf("cache: size %d not a positive power of two", c.SizeBytes)
	case c.BlockBytes <= 0 || c.BlockBytes&(c.BlockBytes-1) != 0:
		return fmt.Errorf("cache: block size %d not a positive power of two", c.BlockBytes)
	case c.Assoc <= 0:
		return fmt.Errorf("cache: associativity %d not positive", c.Assoc)
	case c.SizeBytes < c.BlockBytes*c.Assoc:
		return fmt.Errorf("cache: size %d too small for %d-way sets of %d-byte blocks",
			c.SizeBytes, c.Assoc, c.BlockBytes)
	}
	return nil
}

// String renders the geometry as, e.g., "8K/4-way/64B".
func (c Config) String() string {
	return fmt.Sprintf("%dK/%d-way/%dB", c.SizeBytes/1024, c.Assoc, c.BlockBytes)
}

// Stats accumulates access outcomes.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	Writebacks uint64 // dirty lines evicted (write-back traffic)
}

// MissRate returns misses per access, or zero when idle.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type way struct {
	tag   uint32
	valid bool
	dirty bool
	used  uint64 // LRU timestamp
}

// Cache is one cache instance. Construct with New.
type Cache struct {
	cfg      Config
	ways     []way
	assoc    int
	setMask  uint32
	blkShift uint
	clock    uint64
	stats    Stats
}

// New builds a cache for the given geometry.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nSets := cfg.SizeBytes / (cfg.BlockBytes * cfg.Assoc)
	c := &Cache{
		cfg:     cfg,
		ways:    make([]way, nSets*cfg.Assoc),
		assoc:   cfg.Assoc,
		setMask: uint32(nSets - 1),
	}
	for b := cfg.BlockBytes; b > 1; b >>= 1 {
		c.blkShift++
	}
	return c, nil
}

// MustNew is New for static configurations, panicking on invalid geometry.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache's geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.ways {
		c.ways[i] = way{}
	}
	c.clock = 0
	c.stats = Stats{}
}

// Access performs one read (write=false) or write (write=true) at the
// given byte address and reports whether it hit. Writes allocate on miss
// and mark the line dirty; evicting a dirty line counts a writeback.
//
// The hit probe runs before any victim bookkeeping: the common hit path
// touches only tags and the LRU stamp of the matching way.
func (c *Cache) Access(addr uint32, write bool) bool {
	c.stats.Accesses++
	c.clock++
	blk := addr >> c.blkShift
	set := int(blk&c.setMask) * c.assoc
	ws := c.ways[set : set+c.assoc]

	for i := range ws {
		w := &ws[i]
		if w.valid && w.tag == blk {
			w.used = c.clock
			if write {
				w.dirty = true
			}
			return true
		}
	}

	// Miss: pick the first invalid way, else the least recently used.
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range ws {
		w := &ws[i]
		if !w.valid {
			victim = i
			break
		}
		if w.used < oldest {
			oldest = w.used
			victim = i
		}
	}

	c.stats.Misses++
	v := &ws[victim]
	if v.valid && v.dirty {
		c.stats.Writebacks++
	}
	*v = way{tag: blk, valid: true, dirty: write, used: c.clock}
	return false
}

// Contains reports whether addr currently resides in the cache, without
// disturbing LRU state or statistics. Intended for tests.
func (c *Cache) Contains(addr uint32) bool {
	blk := addr >> c.blkShift
	set := int(blk&c.setMask) * c.assoc
	for _, w := range c.ways[set : set+c.assoc] {
		if w.valid && w.tag == blk {
			return true
		}
	}
	return false
}
