package mem

import (
	"testing"
	"testing/quick"

	"jmtam/internal/word"
)

func TestClassify(t *testing.T) {
	cases := map[uint32]Class{
		SysCodeBase:      ClassSysCode,
		UserCodeBase - 4: ClassSysCode,
		UserCodeBase:     ClassUserCode,
		SysDataBase - 4:  ClassUserCode,
		SysDataBase:      ClassSysData,
		FrameBase - 4:    ClassSysData,
		FrameBase:        ClassUserData,
		HeapBase:         ClassUserData,
		TopOfMemory - 4:  ClassUserData,
	}
	for addr, want := range cases {
		if got := Classify(addr); got != want {
			t.Errorf("Classify(%#x) = %v, want %v", addr, got, want)
		}
	}
}

func TestIsCode(t *testing.T) {
	if !IsCode(SysCodeBase) || !IsCode(UserCodeBase) {
		t.Error("code bases not classified as code")
	}
	if IsCode(SysDataBase) || IsCode(HeapBase) {
		t.Error("data bases classified as code")
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{
		ClassSysCode: "sys-code", ClassUserCode: "user-code",
		ClassSysData: "sys-data", ClassUserData: "user-data",
		Class(9): "class(9)",
	} {
		if got := c.String(); got != want {
			t.Errorf("Class.String() = %q, want %q", got, want)
		}
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	m := New(1024, 1024, 1024)
	for _, addr := range []uint32{SysDataBase, SysDataBase + 4092, FrameBase, HeapBase + 400} {
		w := word.Float(3.25)
		m.Store(addr, w)
		if got := m.Load(addr); got != w {
			t.Errorf("Load(%#x) = %v, want %v", addr, got, w)
		}
	}
}

func TestLoadStoreProperty(t *testing.T) {
	m := NewDefault()
	f := func(off uint16, v int64) bool {
		addr := HeapBase + uint32(off)*WordBytes
		m.StoreInt(addr, v)
		return m.LoadInt(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnalignedPanics(t *testing.T) {
	m := New(16, 16, 16)
	defer func() {
		if recover() == nil {
			t.Error("unaligned access did not panic")
		}
	}()
	m.Load(SysDataBase + 2)
}

func TestCodeSegmentAccessPanics(t *testing.T) {
	m := New(16, 16, 16)
	defer func() {
		if recover() == nil {
			t.Error("data access to code segment did not panic")
		}
	}()
	m.Load(SysCodeBase + 4)
}

func TestOutOfSegmentPanics(t *testing.T) {
	m := New(4, 4, 4)
	defer func() {
		if recover() == nil {
			t.Error("load beyond segment did not panic")
		}
	}()
	m.Load(SysDataBase + 4*WordBytes)
}

func TestSegmentClamping(t *testing.T) {
	m := New(-5, 1<<30, 0)
	// Negative clamps to zero; huge clamps to segment capacity. The
	// frame segment must accept its full range.
	m.Store(FrameBase, word.Int(1))
	if m.LoadInt(FrameBase) != 1 {
		t.Error("clamped frame segment unusable")
	}
}
