package mem

import (
	"testing"
	"testing/quick"

	"jmtam/internal/word"
)

func TestClassify(t *testing.T) {
	cases := map[uint32]Class{
		SysCodeBase:      ClassSysCode,
		UserCodeBase - 4: ClassSysCode,
		UserCodeBase:     ClassUserCode,
		SysDataBase - 4:  ClassUserCode,
		SysDataBase:      ClassSysData,
		FrameBase - 4:    ClassSysData,
		FrameBase:        ClassUserData,
		HeapBase:         ClassUserData,
		TopOfMemory - 4:  ClassUserData,
	}
	for addr, want := range cases {
		if got := Classify(addr); got != want {
			t.Errorf("Classify(%#x) = %v, want %v", addr, got, want)
		}
	}
}

func TestIsCode(t *testing.T) {
	if !IsCode(SysCodeBase) || !IsCode(UserCodeBase) {
		t.Error("code bases not classified as code")
	}
	if IsCode(SysDataBase) || IsCode(HeapBase) {
		t.Error("data bases classified as code")
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{
		ClassSysCode: "sys-code", ClassUserCode: "user-code",
		ClassSysData: "sys-data", ClassUserData: "user-data",
		Class(9): "class(9)",
	} {
		if got := c.String(); got != want {
			t.Errorf("Class.String() = %q, want %q", got, want)
		}
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	m := New(1024, 1024, 1024)
	for _, addr := range []uint32{SysDataBase, SysDataBase + 4092, FrameBase, HeapBase + 400} {
		w := word.Float(3.25)
		m.Store(addr, w)
		if got := m.Load(addr); got != w {
			t.Errorf("Load(%#x) = %v, want %v", addr, got, w)
		}
	}
}

func TestLoadStoreProperty(t *testing.T) {
	m := NewDefault()
	f := func(off uint16, v int64) bool {
		addr := HeapBase + uint32(off)*WordBytes
		m.StoreInt(addr, v)
		return m.LoadInt(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnalignedPanics(t *testing.T) {
	m := New(16, 16, 16)
	defer func() {
		if recover() == nil {
			t.Error("unaligned access did not panic")
		}
	}()
	m.Load(SysDataBase + 2)
}

func TestCodeSegmentAccessPanics(t *testing.T) {
	m := New(16, 16, 16)
	defer func() {
		if recover() == nil {
			t.Error("data access to code segment did not panic")
		}
	}()
	m.Load(SysCodeBase + 4)
}

func TestOutOfSegmentPanics(t *testing.T) {
	m := New(4, 4, 4)
	defer func() {
		if recover() == nil {
			t.Error("load beyond segment did not panic")
		}
	}()
	m.Load(SysDataBase + 4*WordBytes)
}

func TestSegmentClamping(t *testing.T) {
	m := New(-5, 1<<30, 0)
	// Negative clamps to zero; huge clamps to segment capacity. The
	// frame segment must accept its full range.
	m.Store(FrameBase, word.Int(1))
	if m.LoadInt(FrameBase) != 1 {
		t.Error("clamped frame segment unusable")
	}
}

// TestPooledMemoryComesBackZeroed exercises the GetDefault/Release
// cycle: a recycled memory must read as all-zeros everywhere a prior
// user stored, including the highest touched address per segment.
func TestPooledMemoryComesBackZeroed(t *testing.T) {
	addrs := []uint32{
		SysDataBase, SysDataBase + 4096, SysDataBase + 4*(DefaultSysDataWords-1),
		FrameBase, FrameBase + 8192, FrameBase + 4*(DefaultFrameWords-1),
		HeapBase, HeapBase + 64, HeapBase + 4*(DefaultHeapWords-1),
	}
	m := GetDefault()
	for _, a := range addrs {
		m.Store(a, word.Int(42))
	}
	m.Release()
	// The pool may or may not hand the same memory back; either way
	// every Get must behave like a fresh NewDefault.
	for i := 0; i < 4; i++ {
		m := GetDefault()
		for _, a := range addrs {
			if v := m.Load(a); v != (word.Word{}) {
				t.Fatalf("get %d: addr %#x = %+v, want zero word", i, a, v)
			}
			m.Store(a, word.Int(int64(i)+1))
		}
		m.Release()
	}
}

// TestReleaseIgnoresUnpooledMemories pins the no-op contract for
// memories the pool does not own.
func TestReleaseIgnoresUnpooledMemories(t *testing.T) {
	m := NewDefault()
	m.Store(HeapBase, word.Int(7))
	m.Release() // must not panic or recycle
	if got := m.Load(HeapBase).AsInt(); got != 7 {
		t.Fatalf("Release cleared an unpooled memory: %d", got)
	}
	s := NewShared(m, 1024)
	s.Store(FrameBase, word.Int(9))
	s.Release()
	if got := m.Load(FrameBase).AsInt(); got != 9 {
		t.Fatalf("Release cleared a shared view's aliased segment: %d", got)
	}
	var nilMem *Memory
	nilMem.Release() // nil receiver is a no-op too
}
