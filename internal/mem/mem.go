// Package mem models the simulated machine's address space.
//
// The address map is segmented so that the trace layer can classify every
// reference as (system | user) x (code | data), the classification used in
// §3.1 of the paper. Addresses are byte addresses; every word occupies
// WordBytes bytes. Code segments hold instructions (one instruction per
// word address) and are touched only by instruction fetch; data segments
// hold tagged words.
package mem

import (
	"fmt"
	"sync"

	"jmtam/internal/word"
)

// WordBytes is the size of one machine word in bytes. Instruction fetch
// and data access granularity is one word; the cache simulator maps byte
// addresses to blocks of 8-64 bytes.
const WordBytes = 4

// Segment base addresses. Segments are generously sized and disjoint;
// nothing depends on their exact values beyond ordering and alignment.
const (
	SysCodeBase  uint32 = 0x0000_0000 // runtime/system instructions
	UserCodeBase uint32 = 0x0010_0000 // program inlets and threads
	SysDataBase  uint32 = 0x0100_0000 // message queues, LCV, globals
	FrameBase    uint32 = 0x0200_0000 // activation frames
	HeapBase     uint32 = 0x0400_0000 // I-structures and arrays
	TopOfMemory  uint32 = 0x0800_0000
)

// Segment sizes in words.
const (
	SysCodeWords  = (UserCodeBase - SysCodeBase) / WordBytes
	UserCodeWords = (SysDataBase - UserCodeBase) / WordBytes
	SysDataWords  = (FrameBase - SysDataBase) / WordBytes
	FrameWords    = (HeapBase - FrameBase) / WordBytes
	HeapWords     = (TopOfMemory - HeapBase) / WordBytes
)

// Class identifies which region of the address map a reference falls in.
type Class uint8

// Reference classes, following the paper's system/user split: system data
// comprises the incoming message queues, operating-system globals and the
// LCV; user data comprises frames and the heap.
const (
	ClassSysCode Class = iota
	ClassUserCode
	ClassSysData
	ClassUserData // frames + heap
	NumClasses
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassSysCode:
		return "sys-code"
	case ClassUserCode:
		return "user-code"
	case ClassSysData:
		return "sys-data"
	case ClassUserData:
		return "user-data"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Classify maps a byte address to its reference class.
func Classify(addr uint32) Class {
	switch {
	case addr < UserCodeBase:
		return ClassSysCode
	case addr < SysDataBase:
		return ClassUserCode
	case addr < FrameBase:
		return ClassSysData
	default:
		return ClassUserData
	}
}

// IsCode reports whether addr lies in a code segment.
func IsCode(addr uint32) bool { return addr < SysDataBase }

// Memory is the simulated data memory. Code is stored separately (see
// package asm); Memory covers only the three data segments. Segments are
// allocated lazily in fixed-size chunks so that sparse use of the large
// heap segment stays cheap.
type Memory struct {
	sysData []word.Word
	frames  []word.Word
	heap    []word.Word

	// used holds one high-water mark per segment (sysData, frames,
	// heap): one past the highest word index ever stored. Release
	// clears only these prefixes, so a pooled memory is reusable
	// without re-zeroing the full 24-byte-per-word segments — the
	// dominant allocation cost of a record-once simulation.
	used [3]uint32

	// poolable marks memories born from GetDefault. Release is a no-op
	// for every other memory: New/NewDefault callers own theirs, and a
	// NewShared view aliases segments whose stores bypass the base's
	// watermarks.
	poolable bool
}

// New returns an empty memory with all data segments allocated to their
// configured capacities. Sizes are given in words and are clamped to the
// segment capacities.
func New(sysDataWords, frameWords, heapWords int) *Memory {
	clamp := func(n int, max uint32) int {
		if n < 0 {
			n = 0
		}
		if uint32(n) > max {
			n = int(max)
		}
		return n
	}
	return &Memory{
		sysData: make([]word.Word, clamp(sysDataWords, SysDataWords)),
		frames:  make([]word.Word, clamp(frameWords, FrameWords)),
		heap:    make([]word.Word, clamp(heapWords, HeapWords)),
	}
}

// Default segment sizes (words): 1 MB of system data (the runtime
// globals, both hardware queues and the deferred-node pool fit in the
// first 300 Kbytes), 1 MB of frame memory and 2 MB of heap — ample for
// every benchmark at the paper's arguments while keeping per-simulation
// allocation modest. New with larger sizes lifts the limits.
const (
	DefaultSysDataWords = 1 << 18
	DefaultFrameWords   = 1 << 18
	DefaultHeapWords    = 1 << 19
)

// NewDefault returns a memory with the default segment sizes.
func NewDefault() *Memory {
	return New(DefaultSysDataWords, DefaultFrameWords, DefaultHeapWords)
}

// defaultPool recycles default-size memories between simulations.
// Zeroing the three data segments (24 MB of tagged words) dominated
// the record phase of a sweep; a recycled memory instead clears only
// the prefix of each segment the previous simulation actually stored
// (tracked by the used watermarks), which for the paper's benchmarks
// is a small fraction of capacity.
var defaultPool = sync.Pool{
	New: func() any {
		m := NewDefault()
		m.poolable = true
		return m
	},
}

// GetDefault returns a cleared default-size memory, recycled from the
// pool when one is available. Pass it to Release when the simulation
// is done; a GetDefault memory behaves exactly like NewDefault's
// (zeroed words read as integer 0).
func GetDefault() *Memory {
	return defaultPool.Get().(*Memory)
}

// Release clears the stored prefix of each segment and returns the
// memory to the pool. It is a no-op unless m came from GetDefault, so
// callers may release unconditionally. The caller must not use m
// afterwards.
func (m *Memory) Release() {
	if m == nil || !m.poolable {
		return
	}
	clear(m.sysData[:m.used[0]])
	clear(m.frames[:m.used[1]])
	clear(m.heap[:m.used[2]])
	m.used = [3]uint32{}
	defaultPool.Put(m)
}

// NewShared returns a memory that aliases base's frame and heap segments
// but owns a private system-data segment of sysDataWords words. A
// multi-node cluster gives every node a NewShared view of node 0's
// memory: frames and I-structures form one global store (partitioned
// between nodes by the runtime's per-node bump allocators), while
// message queues, runtime globals and the LCV stay node-private.
func NewShared(base *Memory, sysDataWords int) *Memory {
	if sysDataWords < 0 {
		sysDataWords = 0
	}
	if uint32(sysDataWords) > SysDataWords {
		sysDataWords = int(SysDataWords)
	}
	return &Memory{
		sysData: make([]word.Word, sysDataWords),
		frames:  base.frames,
		heap:    base.heap,
	}
}

func (m *Memory) locate(addr uint32) ([]word.Word, uint32, int) {
	if addr%WordBytes != 0 {
		panic(fmt.Sprintf("mem: unaligned access at %#x", addr))
	}
	switch {
	case addr >= HeapBase:
		return m.heap, (addr - HeapBase) / WordBytes, 2
	case addr >= FrameBase:
		return m.frames, (addr - FrameBase) / WordBytes, 1
	case addr >= SysDataBase:
		return m.sysData, (addr - SysDataBase) / WordBytes, 0
	default:
		panic(fmt.Sprintf("mem: data access to code segment at %#x", addr))
	}
}

// Load reads the word at byte address addr.
func (m *Memory) Load(addr uint32) word.Word {
	seg, i, _ := m.locate(addr)
	if i >= uint32(len(seg)) {
		panic(fmt.Sprintf("mem: load beyond segment at %#x", addr))
	}
	return seg[i]
}

// Store writes the word at byte address addr.
func (m *Memory) Store(addr uint32, w word.Word) {
	seg, i, s := m.locate(addr)
	if i >= uint32(len(seg)) {
		panic(fmt.Sprintf("mem: store beyond segment at %#x", addr))
	}
	seg[i] = w
	if i >= m.used[s] {
		m.used[s] = i + 1
	}
}

// LoadInt is a convenience accessor returning the integer view at addr.
func (m *Memory) LoadInt(addr uint32) int64 { return m.Load(addr).AsInt() }

// StoreInt stores an integer word at addr.
func (m *Memory) StoreInt(addr uint32, v int64) { m.Store(addr, word.Int(v)) }
