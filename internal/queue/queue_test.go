package queue

import (
	"testing"
	"testing/quick"

	"jmtam/internal/mem"
	"jmtam/internal/rng"
	"jmtam/internal/word"
)

// store builds a Store writing into a map, for inspection.
func mapStore(m map[uint32]word.Word) Store {
	return func(addr uint32, w word.Word) { m[addr] = w }
}

func wordsOf(vs ...int64) []word.Word {
	ws := make([]word.Word, len(vs))
	for i, v := range vs {
		ws[i] = word.Int(v)
	}
	return ws
}

func TestFIFOOrder(t *testing.T) {
	m := make(map[uint32]word.Word)
	q := New(0x1000, 64)
	for i := int64(0); i < 5; i++ {
		if _, err := q.Enqueue(wordsOf(i, i*10), mapStore(m)); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 5; i++ {
		msg, ok := q.Front()
		if !ok {
			t.Fatalf("queue empty at message %d", i)
		}
		if got := m[msg.Base].AsInt(); got != i {
			t.Errorf("message %d: first word = %d", i, got)
		}
		if msg.Len != 2 {
			t.Errorf("message %d: len = %d", i, msg.Len)
		}
		q.Consume()
	}
	if _, ok := q.Front(); ok {
		t.Error("queue not empty after consuming all messages")
	}
}

func TestRingAdvances(t *testing.T) {
	m := make(map[uint32]word.Word)
	q := New(0x1000, 64)
	msg1, _ := q.Enqueue(wordsOf(1), mapStore(m))
	q.Consume()
	msg2, _ := q.Enqueue(wordsOf(2), mapStore(m))
	if msg2.Base == msg1.Base {
		t.Error("ring did not advance across an idle period")
	}
}

func TestWrapBetweenMessages(t *testing.T) {
	m := make(map[uint32]word.Word)
	q := New(0x1000, 8)
	// Fill to near the end, consume, then enqueue something that must
	// wrap to the base.
	if _, err := q.Enqueue(wordsOf(1, 2, 3, 4, 5, 6), mapStore(m)); err != nil {
		t.Fatal(err)
	}
	q.Consume()
	msg, err := q.Enqueue(wordsOf(7, 8, 9, 10), mapStore(m))
	if err != nil {
		t.Fatal(err)
	}
	if msg.Base != 0x1000 {
		t.Errorf("wrapped message at %#x, want base %#x", msg.Base, 0x1000)
	}
	// Contiguity: all four words are addressable from the base.
	for i := int64(0); i < 4; i++ {
		if got := m[msg.Base+uint32(4*i)].AsInt(); got != 7+i {
			t.Errorf("word %d = %d, want %d", i, got, 7+i)
		}
	}
}

func TestOverflow(t *testing.T) {
	m := make(map[uint32]word.Word)
	q := New(0x1000, 8)
	if _, err := q.Enqueue(wordsOf(1, 2, 3, 4, 5), mapStore(m)); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Enqueue(wordsOf(6, 7, 8, 9), mapStore(m)); err == nil {
		t.Error("overflow not detected")
	}
	// Draining frees the space.
	q.Consume()
	if _, err := q.Enqueue(wordsOf(6, 7, 8, 9), mapStore(m)); err != nil {
		t.Errorf("enqueue after drain failed: %v", err)
	}
}

func TestOversizeMessage(t *testing.T) {
	q := New(0x1000, 4)
	if _, err := q.Enqueue(make([]word.Word, 5), mapStore(map[uint32]word.Word{})); err == nil {
		t.Error("oversize message accepted")
	}
}

func TestEmptyMessageRejected(t *testing.T) {
	q := New(0x1000, 8)
	if _, err := q.Enqueue(nil, mapStore(map[uint32]word.Word{})); err == nil {
		t.Error("empty message accepted")
	}
}

func TestHighWater(t *testing.T) {
	m := make(map[uint32]word.Word)
	q := New(0x1000, 64)
	q.Enqueue(wordsOf(1, 2, 3), mapStore(m))
	q.Enqueue(wordsOf(4, 5), mapStore(m))
	q.Consume()
	q.Consume()
	if hw := q.HighWater(); hw != 5 {
		t.Errorf("high water = %d, want 5", hw)
	}
	if q.Enqueued() != 2 {
		t.Errorf("enqueued = %d, want 2", q.Enqueued())
	}
}

func TestConsumeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Consume on empty queue did not panic")
		}
	}()
	New(0x1000, 8).Consume()
}

// TestRandomTrafficProperty drives random enqueue/consume sequences and
// checks that every message is delivered intact, in order, from within
// the queue's address range.
func TestRandomTrafficProperty(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		m := make(map[uint32]word.Word)
		const capWords = 32
		base := uint32(0x2000)
		q := New(base, capWords)
		next := int64(0)   // next value to enqueue
		expect := int64(0) // next value to consume
		for step := 0; step < 500; step++ {
			if src.Intn(2) == 0 {
				n := src.Intn(6) + 1
				vals := make([]int64, n)
				for i := range vals {
					vals[i] = next
					next++
				}
				if _, err := q.Enqueue(wordsOf(vals...), mapStore(m)); err != nil {
					next -= int64(n) // overflow: roll back
				}
			} else if msg, ok := q.Front(); ok {
				if msg.Base < base || msg.Base+uint32(4*msg.Len) > base+capWords*mem.WordBytes {
					return false
				}
				for i := 0; i < msg.Len; i++ {
					if m[msg.Base+uint32(4*i)].AsInt() != expect {
						return false
					}
					expect++
				}
				q.Consume()
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
