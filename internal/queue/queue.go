// Package queue implements the J-Machine's hardware message queues.
//
// Each priority level owns one queue. Queue storage lives in the
// simulated system-data segment: the hardware buffers arriving message
// words directly into the top of the memory hierarchy, exactly as on the
// MDP, so enqueued words generate memory writes and handlers reading
// arguments through the message base register touch queue addresses.
// This is what makes the Message-Driven implementation's "consume
// arguments straight from the queue" optimization visible to the cache
// simulator.
//
// The queue is a true advancing ring, as on the MDP: the tail keeps
// moving forward even when the queue drains, so under steady message
// traffic the buffered words sweep through the whole queue region. This
// matters for the evaluation — the Message-Driven implementation keeps
// the queue occupied (it is the task queue), so its argument reads and
// hardware buffering touch an ever-advancing window of addresses, a data
// locality cost the Active Messages implementation largely avoids by
// consuming messages immediately. Messages are kept contiguous so that
// handler code can address arguments at fixed offsets from the message
// base; the ring wraps only between messages.
package queue

import (
	"fmt"

	"jmtam/internal/mem"
	"jmtam/internal/word"
)

// DefaultCapWords is the maximum queue capacity in words (the storage
// reserved in the memory map); JMachineCapWords is the default capacity,
// matching the MDP's 4-Kbyte hardware queues. The paper runs only
// programs that fit ("we verified that substantial problems could be
// solved without using all the memory available for message queues");
// the high-water mark is recorded so that claim can be checked.
const (
	DefaultCapWords  = 1 << 14
	JMachineCapWords = 1 << 10
)

// Store is the traced store function the queue uses to write message
// words into simulated memory.
type Store func(addr uint32, w word.Word)

// Msg locates one buffered message: Base is the byte address of its first
// word, Len its length in words. Seq is the message's 1-based position in
// the queue's arrival order, which observability hooks use to correlate
// enqueue with dispatch.
type Msg struct {
	Base uint32
	Len  int
	Seq  uint64
}

// Queue is one hardware message queue. Construct with New.
type Queue struct {
	base     uint32 // byte address of queue storage
	capWords int

	tail    int // next free word index
	pending []Msg

	occupied  int // words currently buffered
	highWater int // maximum of occupied over time
	enqueued  uint64
}

// New returns a queue whose storage begins at byte address base and holds
// capWords words.
func New(base uint32, capWords int) *Queue {
	if capWords <= 0 {
		capWords = DefaultCapWords
	}
	return &Queue{base: base, capWords: capWords}
}

// Base returns the byte address of the queue's storage.
func (q *Queue) Base() uint32 { return q.base }

// CapWords returns the queue capacity in words.
func (q *Queue) CapWords() int { return q.capWords }

// Len returns the number of pending messages.
func (q *Queue) Len() int { return len(q.pending) }

// HighWater returns the maximum number of words ever buffered at once.
func (q *Queue) HighWater() int { return q.highWater }

// Enqueued returns the total number of messages ever enqueued.
func (q *Queue) Enqueued() uint64 { return q.enqueued }

// Enqueue buffers a message, writing its words into simulated memory via
// store. It returns an error if the queue cannot hold the message, which
// models queue overflow (the paper sidesteps overflow by running programs
// that fit; the simulator surfaces it as a hard error).
func (q *Queue) Enqueue(ws []word.Word, store Store) (Msg, error) {
	n := len(ws)
	if n == 0 {
		return Msg{}, fmt.Errorf("queue: empty message")
	}
	if n > q.capWords {
		return Msg{}, fmt.Errorf("queue: message of %d words exceeds capacity %d", n, q.capWords)
	}
	start := q.tail
	if len(q.pending) == 0 {
		// Ring semantics: the tail keeps advancing across idle
		// periods; wrap only when the message would run off the end.
		if start+n > q.capWords {
			start = 0
		}
	} else {
		// The occupied region runs from the oldest pending message to
		// the tail. When tail > first the occupancy is a single
		// interval [first, tail) and the free space is the ring's two
		// ends; otherwise the buffered words wrap around the end and
		// only [tail, first) is free.
		first := int(q.pending[0].Base-q.base) / mem.WordBytes
		if q.tail > first {
			switch {
			case start+n <= q.capWords:
				// Room before the end of the ring.
			case n <= first:
				// Wrap between messages: restart at the base.
				start = 0
			default:
				return Msg{}, q.overflow()
			}
		} else {
			if start+n > first {
				return Msg{}, q.overflow()
			}
		}
	}
	baseAddr := q.base + uint32(start)*mem.WordBytes
	for i, w := range ws {
		store(baseAddr+uint32(i)*mem.WordBytes, w)
	}
	q.tail = start + n
	m := Msg{Base: baseAddr, Len: n, Seq: q.enqueued + 1}
	q.pending = append(q.pending, m)
	q.occupied += n
	if q.occupied > q.highWater {
		q.highWater = q.occupied
	}
	q.enqueued++
	return m, nil
}

func (q *Queue) overflow() error {
	return fmt.Errorf("queue: overflow (%d pending messages, %d/%d words)",
		len(q.pending), q.occupied, q.capWords)
}

// Front returns the oldest pending message without consuming it. The
// second result is false if the queue is empty.
func (q *Queue) Front() (Msg, bool) {
	if len(q.pending) == 0 {
		return Msg{}, false
	}
	return q.pending[0], true
}

// Consume removes the oldest pending message (called when the servicing
// task suspends, matching MDP semantics where the message is retired at
// suspend). The tail is left where it is: the ring advances.
func (q *Queue) Consume() {
	if len(q.pending) == 0 {
		panic("queue: consume on empty queue")
	}
	q.occupied -= q.pending[0].Len
	q.pending = q.pending[1:]
	if len(q.pending) == 0 {
		q.pending = q.pending[:0:cap(q.pending)]
	}
}
