package shard

import (
	"context"

	"jmtam/internal/core"
	"jmtam/internal/experiments"
)

// runLocal executes one shard in-process — the graceful-degradation
// path when no worker is reachable, and the whole sweep when no workers
// are configured. It runs the exact machinery a worker would
// (experiments.RunOneParContext with the worker-side default options),
// so a locally executed shard is byte-identical to a remote one.
func (c *Coordinator) runLocal(ctx context.Context, spec *Spec, u Unit) (UnitResult, error) {
	impl, err := parseImpl(u.Impl)
	if err != nil {
		return UnitResult{}, &PermanentError{Err: err}
	}
	geoms := spec.CacheConfigs()
	r, err := experiments.RunOneParContext(ctx,
		experiments.Workload{Name: u.Workload.Program, Arg: u.Workload.Arg},
		impl, geoms, core.Options{}, c.cfg.LocalParallelism)
	if err != nil {
		if ctx.Err() != nil {
			return UnitResult{}, ctx.Err()
		}
		return UnitResult{}, &PermanentError{Err: err}
	}
	res := UnitResult{
		Program:      u.Workload.Program,
		Arg:          u.Workload.Arg,
		Impl:         impl.String(),
		Instructions: r.Instructions,
		TPQ:          r.TPQ,
		IPT:          r.IPT,
		IPQ:          r.IPQ,
		Caches:       make([]GeomStats, len(r.Caches)),
	}
	for i, cs := range r.Caches {
		res.Caches[i] = GeomStats{
			SizeKB:     cs.Config.SizeBytes / 1024,
			BlockBytes: cs.Config.BlockBytes,
			Assoc:      cs.Config.Assoc,
			IMisses:    cs.IMisses,
			DMisses:    cs.DMisses,
			Writebacks: cs.Writebacks,
		}
	}
	return res, nil
}
