// Package shard distributes a sweep's (workload × implementation)
// grid across remote tamsimd workers over the /v1/sweeps HTTP API,
// tolerating worker failure without changing results.
//
// The coordinator partitions the grid into shards — one grid cell,
// i.e. one (workload, implementation) simulation plus its full
// cache-geometry fan-out, per shard — and leases each shard to a
// worker for a bounded time. Transient failures (connection drops,
// 5xxs, mid-stream disconnects) retry with jittered exponential
// backoff on the next worker; an expired lease (worker died or stalled
// mid-shard) re-queues the shard; stragglers past the hedge threshold
// get one bounded duplicate attempt; and when no worker is reachable
// the shard degrades gracefully to local in-process execution. Results
// are assembled position-indexed, so the merged output is
// byte-identical to a local experiments.Sweep execution regardless of
// which worker ran which shard or how many retries occurred.
package shard

import (
	"fmt"

	"jmtam/api"
	"jmtam/internal/cache"
	"jmtam/internal/core"
)

// Workload names one benchmark instance in wire form (the api
// package's WorkloadSpec; the alias keeps shard call sites short).
type Workload = api.WorkloadSpec

// Spec is the sweep to distribute: the same parameter space as a
// tamsimd SweepRequest, already normalized (no empty fields).
type Spec struct {
	Workloads  []Workload `json:"workloads"`
	SizesKB    []int      `json:"sizes_kb"`
	Assocs     []int      `json:"assocs"`
	BlockBytes int        `json:"block_bytes"`
	Penalties  []int      `json:"penalties"`
	Impls      []string   `json:"impls"`
}

// Validate rejects specs the workers would reject, before any shard is
// leased.
func (s *Spec) Validate() error {
	if len(s.Workloads) == 0 || len(s.Impls) == 0 {
		return fmt.Errorf("shard: spec needs at least one workload and one impl")
	}
	if len(s.SizesKB) == 0 || len(s.Assocs) == 0 || s.BlockBytes == 0 {
		return fmt.Errorf("shard: spec needs a full cache-geometry grid")
	}
	for _, impl := range s.Impls {
		if _, err := parseImpl(impl); err != nil {
			return err
		}
	}
	for _, g := range s.CacheConfigs() {
		if err := g.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Unit is one grid cell: a (workload, implementation) simulation plus
// its geometry fan-out. One unit is one leased shard.
type Unit struct {
	Workload Workload
	Impl     string
}

// Units expands the spec's grid in deterministic order:
// workload-major, implementation-minor — the same order a local sweep
// assembles its runs in.
func (s *Spec) Units() []Unit {
	units := make([]Unit, 0, len(s.Workloads)*len(s.Impls))
	for _, w := range s.Workloads {
		for _, impl := range s.Impls {
			units = append(units, Unit{Workload: w, Impl: impl})
		}
	}
	return units
}

// CacheConfigs returns the geometry grid in index order (size-major,
// then associativity), matching the order workers report detail rows
// in.
func (s *Spec) CacheConfigs() []cache.Config {
	var geoms []cache.Config
	for _, kb := range s.SizesKB {
		for _, a := range s.Assocs {
			geoms = append(geoms, cache.Config{
				SizeBytes: kb * 1024, BlockBytes: s.BlockBytes, Assoc: a,
			})
		}
	}
	return geoms
}

// GeomStats is one geometry's miss statistics within a unit result.
type GeomStats struct {
	SizeKB     int    `json:"size_kb"`
	BlockBytes int    `json:"block_bytes"`
	Assoc      int    `json:"assoc"`
	IMisses    uint64 `json:"i_misses"`
	DMisses    uint64 `json:"d_misses"`
	Writebacks uint64 `json:"writebacks"`
}

// UnitResult is one completed grid cell: the simulation summary plus
// per-geometry cache statistics, indexed as Spec.CacheConfigs. It
// carries everything a sweep document derives — identical numbers in,
// identical document out, whether the unit ran remotely or locally.
type UnitResult struct {
	Program      string      `json:"program"`
	Arg          int         `json:"arg"`
	Impl         string      `json:"impl"`
	Instructions uint64      `json:"instructions"`
	TPQ          float64     `json:"tpq"`
	IPT          float64     `json:"ipt"`
	IPQ          float64     `json:"ipq"`
	Caches       []GeomStats `json:"caches"`
}

// parseImpl resolves a wire implementation name against the backend
// registry, accepting every registered backend.
func parseImpl(s string) (core.Impl, error) { return core.ParseImpl(s) }
