package shard

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"jmtam/internal/obs"
	"jmtam/internal/parallel"
	"jmtam/internal/rng"
)

// Metrics receives the coordinator's observability stream. Implementations
// must be safe for concurrent use; the server adapts its mutex-guarded
// obs.Registry, CLIs can use NewRegistryMetrics.
type Metrics interface {
	Count(name string, d uint64)
	GaugeSet(name string, v int64)
	Observe(name string, v uint64)
}

// Event is one coordinator lifecycle notification, for progress
// streaming and tests. Events never carry result data: ordering under
// concurrency is nondeterministic and must not affect output.
type Event struct {
	Type    string // "register", "lease", "retry", "requeue", "hedge", "breaker-open", "local", "done"
	Shard   int    // unit index, -1 for worker-level events
	Worker  string // worker base URL, "" for local execution
	Attempt int
	Err     string
}

// Config parameterizes a Coordinator.
type Config struct {
	// Workers lists worker base URLs ("http://host:port"). Empty means
	// every shard executes locally.
	Workers []string
	// Transport performs worker round trips (nil = http.DefaultTransport).
	// The chaos harness injects faults here.
	Transport http.RoundTripper
	// LeaseTimeout bounds one shard attempt: a worker that has not
	// delivered a terminal stream line within it loses the lease and the
	// shard re-queues (0 = 2m).
	LeaseTimeout time.Duration
	// ProbeTimeout bounds a /readyz registration probe (0 = 2s).
	ProbeTimeout time.Duration
	// MaxAttempts bounds remote attempts per shard before falling back
	// to local execution (0 = 4).
	MaxAttempts int
	// BaseBackoff is the first retry delay; it doubles per attempt up to
	// MaxBackoff, with full jitter drawn from Seed (0 = 50ms / 2s).
	BaseBackoff, MaxBackoff time.Duration
	// HedgeAfter launches one bounded duplicate attempt on another
	// worker when the primary has not finished within it (0 = no
	// hedging).
	HedgeAfter time.Duration
	// BreakerThreshold consecutive failures open a worker's circuit
	// breaker for BreakerCooldown (0 = 3 / 1s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Seed drives backoff jitter. Jitter affects timing only, never
	// results.
	Seed uint64
	// LocalParallelism bounds the geometry fan-out of locally executed
	// shards (0 = 1, matching a worker's default).
	LocalParallelism int
	// DisableLocal makes shards fail instead of degrading to local
	// execution when no worker is reachable.
	DisableLocal bool
	// Metrics and OnEvent observe the coordinator; both may be nil.
	Metrics Metrics
	OnEvent func(Event)
}

// worker is the coordinator's view of one remote tamsimd.
type worker struct {
	url     string
	idx     int
	breaker breaker
}

// Coordinator farms sweep shards out to workers with leases, retries,
// backoff, hedging, circuit breaking and local fallback. A Coordinator
// is safe for concurrent use and reusable across runs.
type Coordinator struct {
	cfg     Config
	workers []*worker
	client  *http.Client
	rr      atomic.Uint64 // round-robin cursor

	mu  sync.Mutex // guards src
	src *rng.Source
}

// New returns a Coordinator over cfg.Workers.
func New(cfg Config) *Coordinator {
	if cfg.LeaseTimeout == 0 {
		cfg.LeaseTimeout = 2 * time.Minute
	}
	if cfg.ProbeTimeout == 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.BaseBackoff == 0 {
		cfg.BaseBackoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff == 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown == 0 {
		cfg.BreakerCooldown = time.Second
	}
	if cfg.LocalParallelism == 0 {
		cfg.LocalParallelism = 1
	}
	c := &Coordinator{
		cfg: cfg,
		client: &http.Client{
			Transport: cfg.Transport,
			// Per-attempt contexts carry the lease deadline; the client
			// itself must not add a second, conflicting timeout.
		},
		src: rng.New(cfg.Seed),
	}
	for i, u := range cfg.Workers {
		for len(u) > 0 && u[len(u)-1] == '/' {
			u = u[:len(u)-1]
		}
		c.workers = append(c.workers, &worker{
			url: u, idx: i,
			breaker: breaker{threshold: cfg.BreakerThreshold, cooldown: cfg.BreakerCooldown},
		})
	}
	// Pre-register the failure-path counters so a clean run still
	// reports them (as zero) on /metricz.
	for _, name := range []string{
		"shard.shards", "shard.retries", "shard.requeues", "shard.hedges",
		"shard.breaker.opens", "shard.local", "shard.remote",
	} {
		c.count(name, 0)
	}
	return c
}

// Workers returns the configured worker URLs.
func (c *Coordinator) Workers() []string {
	urls := make([]string, len(c.workers))
	for i, w := range c.workers {
		urls[i] = w.url
	}
	return urls
}

// --- observability helpers --------------------------------------------------

func (c *Coordinator) count(name string, d uint64) {
	if c.cfg.Metrics != nil {
		c.cfg.Metrics.Count(name, d)
	}
}

func (c *Coordinator) gauge(name string, v int64) {
	if c.cfg.Metrics != nil {
		c.cfg.Metrics.GaugeSet(name, v)
	}
}

func (c *Coordinator) observe(name string, v uint64) {
	if c.cfg.Metrics != nil {
		c.cfg.Metrics.Observe(name, v)
	}
}

func (c *Coordinator) event(e Event) {
	if c.cfg.OnEvent != nil {
		c.cfg.OnEvent(e)
	}
}

func (c *Coordinator) publishWorkerStates(now time.Time) {
	for _, w := range c.workers {
		c.gauge("worker.state."+strconv.Itoa(w.idx), w.breaker.state(now))
	}
}

// --- worker selection -------------------------------------------------------

// pick returns the next admissible worker in round-robin order, skipping
// exclude and any worker whose breaker is open; nil when none qualifies.
func (c *Coordinator) pick(exclude *worker) *worker {
	n := len(c.workers)
	if n == 0 {
		return nil
	}
	now := time.Now()
	start := int(c.rr.Add(1) - 1)
	for i := 0; i < n; i++ {
		w := c.workers[(start+i)%n]
		if w == exclude {
			continue
		}
		if w.breaker.allow(now) {
			return w
		}
	}
	return nil
}

// register probes every worker's /readyz, seeding breaker state and the
// worker.state gauges before the first shard is leased.
func (c *Coordinator) register(ctx context.Context) {
	now := time.Now()
	for _, w := range c.workers {
		err := c.probe(ctx, w)
		if err != nil {
			// Quarantine immediately: the first shards should not burn
			// attempts on a worker that failed its registration probe.
			for i := 0; i < c.cfg.BreakerThreshold; i++ {
				w.breaker.fail(now)
			}
			c.count("shard.breaker.opens", 1)
		} else {
			w.breaker.ok()
		}
		c.event(Event{Type: "register", Shard: -1, Worker: w.url, Err: errString(err)})
	}
	c.publishWorkerStates(time.Now())
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// --- run --------------------------------------------------------------------

// Run distributes the spec's grid and returns one UnitResult per unit,
// position-indexed in Spec.Units order. The first permanent error (or
// context cancellation) aborts the run.
func (c *Coordinator) Run(ctx context.Context, spec *Spec) ([]UnitResult, error) {
	return c.RunObserved(ctx, spec, nil)
}

// RunObserved is Run with a per-run event observer in addition to the
// configured OnEvent (either may be nil). onEvent may be called
// concurrently; event order under concurrency is nondeterministic and
// never affects results.
func (c *Coordinator) RunObserved(ctx context.Context, spec *Spec, onEvent func(Event)) ([]UnitResult, error) {
	return c.RunSubset(ctx, spec, nil, onEvent, nil)
}

// RunSubset is RunObserved restricted to the units at the given grid
// indices (nil = every unit) — the resume path after a restart runs
// only the positions with no journaled checkpoint. The returned slice
// always spans the full grid (len(spec.Units())); positions outside
// idxs are left zero for the caller to fill. onUnit (may be nil)
// observes each completed unit with its grid index as it lands — the
// server's checkpoint hook; it may be called concurrently.
func (c *Coordinator) RunSubset(ctx context.Context, spec *Spec, idxs []int, onEvent func(Event), onUnit func(idx int, r UnitResult)) ([]UnitResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	emit := c.event
	if onEvent != nil {
		emit = func(e Event) {
			c.event(e)
			onEvent(e)
		}
	}
	units := spec.Units()
	if idxs == nil {
		idxs = make([]int, len(units))
		for i := range idxs {
			idxs[i] = i
		}
	}
	for _, i := range idxs {
		if i < 0 || i >= len(units) {
			return nil, fmt.Errorf("shard: unit index %d out of range [0,%d)", i, len(units))
		}
	}
	c.count("shard.shards", uint64(len(idxs)))
	results := make([]UnitResult, len(units))
	if len(idxs) == 0 {
		return results, nil
	}
	if len(c.workers) > 0 {
		c.register(ctx)
	}
	inflight := len(c.workers)
	if inflight == 0 {
		inflight = 1
	}
	err := parallel.ForEachContext(ctx, inflight, len(idxs), func(k int) error {
		i := idxs[k]
		r, err := c.runShard(ctx, spec, units[i], i, emit)
		if err != nil {
			return err
		}
		results[i] = r
		if onUnit != nil {
			onUnit(i, r)
		}
		return nil
	})
	c.publishWorkerStates(time.Now())
	if err != nil {
		return nil, err
	}
	return results, nil
}

// runShard drives one shard to completion: lease → attempt (hedged) →
// classify failure → backoff → re-lease, degrading to local execution
// once remote attempts are exhausted or no worker is admissible.
func (c *Coordinator) runShard(ctx context.Context, spec *Spec, u Unit, idx int, emit func(Event)) (UnitResult, error) {
	backoff := c.cfg.BaseBackoff
	var lastErr error
	for attempt := 1; attempt <= c.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return UnitResult{}, err
		}
		w := c.pick(nil)
		if w == nil {
			break // no admissible worker: degrade to local
		}
		emit(Event{Type: "lease", Shard: idx, Worker: w.url, Attempt: attempt})
		start := time.Now()
		res, err := c.attemptHedged(ctx, w, spec, u, idx, attempt, emit)
		c.observe("shard.attempt.ms", uint64(time.Since(start).Milliseconds()))
		if err == nil {
			c.count("shard.remote", 1)
			emit(Event{Type: "done", Shard: idx, Worker: w.url, Attempt: attempt})
			return res, nil
		}
		if !transient(err) {
			return UnitResult{}, err
		}
		lastErr = err
		if leaseExpired(err) {
			c.count("shard.requeues", 1)
			emit(Event{Type: "requeue", Shard: idx, Worker: w.url, Attempt: attempt, Err: err.Error()})
		} else {
			c.count("shard.retries", 1)
			emit(Event{Type: "retry", Shard: idx, Worker: w.url, Attempt: attempt, Err: err.Error()})
		}
		if err := sleepCtx(ctx, c.jitter(backoff)); err != nil {
			return UnitResult{}, err
		}
		if backoff *= 2; backoff > c.cfg.MaxBackoff {
			backoff = c.cfg.MaxBackoff
		}
	}
	if c.cfg.DisableLocal {
		if lastErr == nil {
			lastErr = fmt.Errorf("no admissible worker")
		}
		return UnitResult{}, fmt.Errorf("shard %d (%s/%s): remote attempts exhausted: %w",
			idx, u.Workload.Program, u.Impl, lastErr)
	}
	c.count("shard.local", 1)
	emit(Event{Type: "local", Shard: idx, Err: errString(lastErr)})
	return c.runLocal(ctx, spec, u)
}

// attemptHedged runs one leased attempt, optionally racing a single
// bounded hedge on a different worker when the primary straggles past
// HedgeAfter. The first success wins and cancels the other attempt; a
// permanent error from either side aborts.
func (c *Coordinator) attemptHedged(ctx context.Context, primary *worker, spec *Spec, u Unit, idx, attempt int, emit func(Event)) (UnitResult, error) {
	if c.cfg.HedgeAfter <= 0 {
		return c.leasedAttempt(ctx, primary, spec, u, emit)
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		res UnitResult
		err error
	}
	ch := make(chan outcome, 2)
	launch := func(w *worker) {
		go func() {
			res, err := c.leasedAttempt(actx, w, spec, u, emit)
			ch <- outcome{res, err}
		}()
	}
	launch(primary)
	inflight := 1
	hedged := false
	timer := time.NewTimer(c.cfg.HedgeAfter)
	defer timer.Stop()
	var firstErr error
	for {
		select {
		case o := <-ch:
			inflight--
			if o.err == nil {
				return o.res, nil
			}
			var pe *PermanentError
			if errors.As(o.err, &pe) {
				return UnitResult{}, o.err
			}
			if firstErr == nil {
				firstErr = o.err
			}
			if inflight == 0 {
				return UnitResult{}, firstErr
			}
		case <-timer.C:
			if hedged {
				continue
			}
			hedged = true
			if sec := c.pick(primary); sec != nil {
				c.count("shard.hedges", 1)
				emit(Event{Type: "hedge", Shard: idx, Worker: sec.url, Attempt: attempt})
				launch(sec)
				inflight++
			}
		case <-ctx.Done():
			return UnitResult{}, ctx.Err()
		}
	}
}

// leasedAttempt wraps one worker attempt in its lease deadline and
// keeps the worker's breaker and state gauge current.
func (c *Coordinator) leasedAttempt(ctx context.Context, w *worker, spec *Spec, u Unit, emit func(Event)) (UnitResult, error) {
	lctx, cancel := context.WithTimeout(ctx, c.cfg.LeaseTimeout)
	defer cancel()
	res, err := c.attempt(lctx, w, spec, u)
	if err == nil {
		w.breaker.ok()
		c.gauge("worker.state."+strconv.Itoa(w.idx), BreakerClosed)
		return res, nil
	}
	// A hedge race loser cancelled through the parent context is not the
	// worker's fault; everything else (including a lease expiry) is.
	if ctx.Err() == nil || errors.Is(ctx.Err(), context.DeadlineExceeded) {
		now := time.Now()
		if w.breaker.fail(now) {
			c.count("shard.breaker.opens", 1)
			emit(Event{Type: "breaker-open", Shard: -1, Worker: w.url, Err: err.Error()})
		}
		c.gauge("worker.state."+strconv.Itoa(w.idx), w.breaker.state(now))
	}
	return UnitResult{}, err
}

// jitter draws a full-jitter delay in [d/2, d] from the seeded source.
func (c *Coordinator) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	c.mu.Lock()
	f := c.src.Float64()
	c.mu.Unlock()
	return d/2 + time.Duration(f*float64(d/2))
}

// RegistryMetrics adapts a mutex-guarded obs.Registry to the Metrics
// interface, for callers (CLIs, tests) without a serving registry.
type RegistryMetrics struct {
	mu  sync.Mutex
	reg *obs.Registry
}

// NewRegistryMetrics returns an adapter over a fresh registry.
func NewRegistryMetrics() *RegistryMetrics {
	return &RegistryMetrics{reg: obs.NewRegistry()}
}

// Count implements Metrics.
func (m *RegistryMetrics) Count(name string, d uint64) {
	m.mu.Lock()
	m.reg.Counter(name).Add(d)
	m.mu.Unlock()
}

// GaugeSet implements Metrics.
func (m *RegistryMetrics) GaugeSet(name string, v int64) {
	m.mu.Lock()
	m.reg.Gauge(name).Set(v)
	m.mu.Unlock()
}

// Observe implements Metrics.
func (m *RegistryMetrics) Observe(name string, v uint64) {
	m.mu.Lock()
	m.reg.Histogram(name).Observe(v)
	m.mu.Unlock()
}

// Snapshot runs fn with the registry under the adapter's lock.
func (m *RegistryMetrics) Snapshot(fn func(reg *obs.Registry)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fn(m.reg)
}
