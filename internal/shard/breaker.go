package shard

import (
	"sync"
	"time"
)

// Breaker states, exported through the worker.state.<i> gauges.
const (
	BreakerOpen     = 0 // worker quarantined; no leases until cooldown
	BreakerHalfOpen = 1 // cooldown elapsed; one probe attempt allowed
	BreakerClosed   = 2 // worker healthy
)

// breaker is a per-worker circuit breaker: threshold consecutive
// failures open it for cooldown, after which a single probe attempt is
// admitted (half-open); a success closes it, another failure re-opens.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu        sync.Mutex
	fails     int
	openUntil time.Time
	probing   bool
}

// allow reports whether an attempt may be sent to this worker now, and
// transitions open → half-open when the cooldown has elapsed.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openUntil.IsZero() {
		return true
	}
	if now.Before(b.openUntil) {
		return false
	}
	if b.probing {
		return false // one probe at a time in half-open
	}
	b.probing = true
	return true
}

// ok records a success and closes the breaker.
func (b *breaker) ok() {
	b.mu.Lock()
	b.fails = 0
	b.openUntil = time.Time{}
	b.probing = false
	b.mu.Unlock()
}

// fail records a failure, reporting whether this transition opened the
// breaker (for the shard.breaker.opens counter).
func (b *breaker) fail(now time.Time) (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	b.probing = false
	if b.fails >= b.threshold {
		opened = b.openUntil.IsZero() || !now.Before(b.openUntil)
		b.openUntil = now.Add(b.cooldown)
	}
	return opened
}

// state returns the breaker's current gauge value.
func (b *breaker) state(now time.Time) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.openUntil.IsZero():
		return BreakerClosed
	case now.Before(b.openUntil):
		return BreakerOpen
	default:
		return BreakerHalfOpen
	}
}
