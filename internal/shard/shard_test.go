package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jmtam/api"
	"jmtam/internal/faultnet"
	"jmtam/internal/obs"
)

// testSpec is a small synthetic grid: 2 workloads × 2 impls = 4 shards,
// 2×2 geometries each.
func testSpec() *Spec {
	return &Spec{
		Workloads:  []Workload{{Program: "ss", Arg: 40}, {Program: "gauss", Arg: 8}},
		SizesKB:    []int{1, 8},
		Assocs:     []int{1, 4},
		BlockBytes: 64,
		Penalties:  []int{12},
		Impls:      []string{"md", "am"},
	}
}

// fakeUnit derives a deterministic result for a one-unit worker request:
// a pure function of (program, arg, impl, geometry), so every stub
// worker agrees and position-indexed reassembly is checkable.
func fakeUnit(req api.SweepRequest) UnitResult {
	w := req.Workloads[0]
	impl := implName(req.Impls[0])
	h := uint64(len(w.Program))*1_000_000 + uint64(w.Arg)*1000 + uint64(len(impl))
	u := UnitResult{
		Program: w.Program, Arg: w.Arg, Impl: impl,
		Instructions: h, TPQ: 1.5, IPT: 2.25, IPQ: 3.375,
	}
	for _, kb := range req.SizesKB {
		for _, a := range req.Assocs {
			u.Caches = append(u.Caches, GeomStats{
				SizeKB: kb, BlockBytes: req.BlockBytes, Assoc: a,
				IMisses: h%97 + uint64(kb), DMisses: uint64(a), Writebacks: 1,
			})
		}
	}
	return u
}

func wantUnits(spec *Spec) []UnitResult {
	var want []UnitResult
	for _, u := range spec.Units() {
		want = append(want, fakeUnit(api.SweepRequest{
			Workloads: []Workload{u.Workload}, Impls: []string{u.Impl},
			SizesKB: spec.SizesKB, Assocs: spec.Assocs, BlockBytes: spec.BlockBytes,
		}))
	}
	return want
}

// stubWorker serves /readyz (the coordinator's registration probe) and
// a minimal /v1/sweeps that streams the fakeUnit result. beforeResult,
// when non-nil, runs after the request is parsed and may substitute the
// terminal behavior entirely by returning false.
func stubWorker(t *testing.T, beforeResult func(w http.ResponseWriter, r *http.Request, req api.SweepRequest) bool) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("POST /v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		var req api.SweepRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		if beforeResult != nil && !beforeResult(w, r, req) {
			return
		}
		doc, _ := json.Marshal(workerSweepResult{Runs: []UnitResult{fakeUnit(req)}})
		fmt.Fprintf(w, `{"type":"accepted"}`+"\n")
		fmt.Fprintf(w, `{"type":"result","result":%s}`+"\n", doc)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func counterValue(m *RegistryMetrics, name string) uint64 {
	var v uint64
	m.Snapshot(func(reg *obs.Registry) { v = reg.Counter(name).Value() })
	return v
}

// assertCounter checks the counter is at least lo and, when exact is
// true, exactly lo.
func assertCounter(t *testing.T, m *RegistryMetrics, name string, lo uint64, exact bool) {
	t.Helper()
	v := counterValue(m, name)
	if v < lo || (exact && v != lo) {
		t.Fatalf("%s = %d, want >= %d (exact=%v)", name, v, lo, exact)
	}
}

func TestSpecUnitsOrder(t *testing.T) {
	spec := testSpec()
	units := spec.Units()
	want := []Unit{
		{Workload{Program: "ss", Arg: 40}, "md"}, {Workload{Program: "ss", Arg: 40}, "am"},
		{Workload{Program: "gauss", Arg: 8}, "md"}, {Workload{Program: "gauss", Arg: 8}, "am"},
	}
	if !reflect.DeepEqual(units, want) {
		t.Fatalf("units = %v, want %v", units, want)
	}
	geoms := spec.CacheConfigs()
	if len(geoms) != 4 || geoms[0].SizeBytes != 1024 || geoms[1].Assoc != 4 || geoms[2].SizeBytes != 8192 {
		t.Fatalf("geoms order wrong: %+v", geoms)
	}
}

func TestCoordinatorAllRemote(t *testing.T) {
	w1 := stubWorker(t, nil)
	w2 := stubWorker(t, nil)
	m := NewRegistryMetrics()
	c := New(Config{Workers: []string{w1.URL, w2.URL}, Metrics: m, DisableLocal: true})
	spec := testSpec()
	got, err := c.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if want := wantUnits(spec); !reflect.DeepEqual(got, want) {
		t.Fatalf("results not position-indexed:\ngot  %+v\nwant %+v", got, want)
	}
	assertCounter(t, m, "shard.shards", 4, true)
	assertCounter(t, m, "shard.remote", 4, true)
	assertCounter(t, m, "shard.retries", 0, true)
	assertCounter(t, m, "shard.requeues", 0, true)
	assertCounter(t, m, "shard.local", 0, true)
}

func TestCoordinatorRetriesTransientThenSucceeds(t *testing.T) {
	var badCalls atomic.Int64
	bad := stubWorker(t, func(w http.ResponseWriter, r *http.Request, req api.SweepRequest) bool {
		badCalls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
		return false
	})
	good := stubWorker(t, nil)
	m := NewRegistryMetrics()
	c := New(Config{
		Workers: []string{bad.URL, good.URL}, Metrics: m,
		BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
		DisableLocal: true,
	})
	spec := testSpec()
	got, err := c.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if want := wantUnits(spec); !reflect.DeepEqual(got, want) {
		t.Fatalf("faulty worker changed results")
	}
	if badCalls.Load() == 0 {
		t.Fatal("bad worker was never tried")
	}
	assertCounter(t, m, "shard.retries", 1, false)
	assertCounter(t, m, "shard.remote", uint64(len(spec.Units())), true)
}

func TestCoordinatorPermanentErrorAborts(t *testing.T) {
	bad := stubWorker(t, func(w http.ResponseWriter, r *http.Request, req api.SweepRequest) bool {
		http.Error(w, "no such program", http.StatusBadRequest)
		return false
	})
	c := New(Config{Workers: []string{bad.URL}, BaseBackoff: time.Millisecond})
	_, err := c.Run(context.Background(), testSpec())
	var pe *PermanentError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PermanentError", err)
	}
}

func TestCoordinatorLocalFallbackWhenAllDead(t *testing.T) {
	// A listener that is closed immediately: connection refused, the
	// transient flavor a crashed worker produces.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	m := NewRegistryMetrics()
	var events []Event
	var mu sync.Mutex
	c := New(Config{
		Workers: []string{deadURL}, Metrics: m,
		MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond,
		OnEvent: func(e Event) { mu.Lock(); events = append(events, e); mu.Unlock() },
	})
	spec := &Spec{
		Workloads:  []Workload{{Program: "ss", Arg: 40}},
		SizesKB:    []int{1},
		Assocs:     []int{1},
		BlockBytes: 64,
		Penalties:  []int{12},
		Impls:      []string{"md"},
	}
	got, err := c.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Program != "ss" || got[0].Instructions == 0 {
		t.Fatalf("local fallback result = %+v", got)
	}
	assertCounter(t, m, "shard.local", 1, true)
	assertCounter(t, m, "shard.breaker.opens", 1, false)
	mu.Lock()
	defer mu.Unlock()
	var sawLocal bool
	for _, e := range events {
		if e.Type == "local" {
			sawLocal = true
		}
	}
	if !sawLocal {
		t.Fatalf("no local event in %+v", events)
	}
}

func TestCoordinatorLocalMatchesRemoteExecution(t *testing.T) {
	// DisableLocal + no workers must fail rather than silently degrade.
	c := New(Config{DisableLocal: true})
	if _, err := c.Run(context.Background(), testSpec()); err == nil {
		t.Fatal("DisableLocal with no workers should fail")
	}
}

func TestCoordinatorLeaseExpiryRequeues(t *testing.T) {
	// The hung worker parses the request then stalls until the client
	// gives up: a worker that died mid-shard without closing the socket.
	hung := stubWorker(t, func(w http.ResponseWriter, r *http.Request, req api.SweepRequest) bool {
		w.(http.Flusher).Flush()
		<-r.Context().Done()
		return false
	})
	good := stubWorker(t, nil)
	m := NewRegistryMetrics()
	c := New(Config{
		Workers: []string{hung.URL, good.URL}, Metrics: m,
		LeaseTimeout: 80 * time.Millisecond,
		BaseBackoff:  time.Millisecond, MaxBackoff: time.Millisecond,
		DisableLocal: true, MaxAttempts: 6,
	})
	spec := testSpec()
	got, err := c.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if want := wantUnits(spec); !reflect.DeepEqual(got, want) {
		t.Fatalf("hung worker changed results")
	}
	assertCounter(t, m, "shard.requeues", 1, false)
}

func TestCoordinatorHedgesStragglers(t *testing.T) {
	slow := stubWorker(t, func(w http.ResponseWriter, r *http.Request, req api.SweepRequest) bool {
		time.Sleep(300 * time.Millisecond)
		return true
	})
	fast := stubWorker(t, nil)
	m := NewRegistryMetrics()
	c := New(Config{
		Workers: []string{slow.URL, fast.URL}, Metrics: m,
		HedgeAfter:  20 * time.Millisecond,
		BaseBackoff: time.Millisecond, DisableLocal: true,
	})
	spec := &Spec{
		Workloads:  []Workload{{Program: "ss", Arg: 40}},
		SizesKB:    []int{1},
		Assocs:     []int{1},
		BlockBytes: 64,
		Penalties:  []int{12},
		Impls:      []string{"md"},
	}
	got, err := c.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if want := wantUnits(spec); !reflect.DeepEqual(got, want) {
		t.Fatalf("hedged result differs")
	}
	// Round-robin start order decides which worker is primary, so the
	// hedge counter is 0 (fast primary) or 1 (slow primary); either way
	// the slow attempt must not have delayed correctness above.
	if v := counterValue(m, "shard.hedges"); v > 1 {
		t.Fatalf("shard.hedges = %d, want 0 or 1", v)
	}
}

func TestCoordinatorDeterministicUnderChaos(t *testing.T) {
	good := stubWorker(t, nil)
	clean := New(Config{Workers: []string{good.URL}, DisableLocal: true})
	spec := testSpec()
	want, err := clean.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	for _, seed := range []uint64{1, 7, 42} {
		m := NewRegistryMetrics()
		chaotic := New(Config{
			Workers: []string{good.URL}, Metrics: m,
			Transport: faultnet.NewTransport(nil, faultnet.Plan{
				Seed: seed, Drop: 0.2, Err5xx: 0.2, Disconnect: 0.2,
			}),
			BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
			MaxAttempts: 20, DisableLocal: true, Seed: seed,
		})
		got, err := chaotic.Run(context.Background(), spec)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: chaos changed results", seed)
		}
	}
}

func TestCoordinatorCancelPropagates(t *testing.T) {
	hung := stubWorker(t, func(w http.ResponseWriter, r *http.Request, req api.SweepRequest) bool {
		w.(http.Flusher).Flush()
		<-r.Context().Done()
		return false
	})
	c := New(Config{Workers: []string{hung.URL}, DisableLocal: true})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	_, err := c.Run(ctx, testSpec())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
