package shard

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"jmtam/api"
)

// PermanentError marks a failure retries cannot fix: a worker rejected
// the request as malformed, or the simulation itself failed — outcomes
// that would be identical on every worker and locally.
type PermanentError struct {
	Err error
}

func (e *PermanentError) Error() string { return "shard: permanent: " + e.Err.Error() }
func (e *PermanentError) Unwrap() error { return e.Err }

func permanent(format string, args ...any) error {
	return &PermanentError{Err: fmt.Errorf(format, args...)}
}

// workerSweepResult mirrors the worker's SweepResult document, detail
// fields included. UnitResult carries more than api.SweepRunSummary
// (position-indexed geometry stats), so the document is re-parsed here
// rather than through api.SweepResult.
type workerSweepResult struct {
	Runs []UnitResult `json:"runs"`
}

// attempt leases one shard to a worker: POST the one-unit sweep, follow
// the NDJSON stream to its terminal line, and parse the unit result.
// The context carries the lease deadline; expiry surfaces as
// context.DeadlineExceeded, which the caller books as a re-queue.
func (c *Coordinator) attempt(ctx context.Context, w *worker, spec *Spec, u Unit) (UnitResult, error) {
	wreq := api.SweepRequest{
		Workloads:  []Workload{u.Workload},
		SizesKB:    spec.SizesKB,
		Assocs:     spec.Assocs,
		BlockBytes: spec.BlockBytes,
		Penalties:  spec.Penalties,
		Impls:      []string{u.Impl},
		Detail:     true,
	}
	body, err := json.Marshal(wreq)
	if err != nil {
		return UnitResult{}, &PermanentError{Err: err}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+"/v1/sweeps", bytes.NewReader(body))
	if err != nil {
		return UnitResult{}, &PermanentError{Err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return UnitResult{}, fmt.Errorf("worker %s: %w", w.url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		// Branch on the structured envelope, not the status class: a 429
		// (quota) or an envelope marked retryable is worth another worker
		// or another attempt; bad_request/not_found would fail everywhere
		// identically.
		apiErr := api.DecodeError(resp.StatusCode, body)
		if apiErr.Retryable {
			return UnitResult{}, fmt.Errorf("worker %s: %w", w.url, apiErr)
		}
		return UnitResult{}, permanent("worker %s: %s", w.url, apiErr.Error())
	}

	var last api.Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var l api.Event
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			return UnitResult{}, fmt.Errorf("worker %s: bad stream line: %w", w.url, err)
		}
		last = l
	}
	if err := sc.Err(); err != nil {
		return UnitResult{}, fmt.Errorf("worker %s: stream: %w", w.url, err)
	}
	switch last.Type {
	case api.EventResult:
		return parseUnitResult(last.Result, spec, u, w.url)
	case api.EventError:
		// A watchdog kill (-job-timeout on the worker) is the one stream
		// failure worth retrying elsewhere: the job may have wedged on
		// that daemon's state, not deterministically.
		if strings.HasPrefix(last.Error, string(api.CodeDeadlineExceeded)) {
			return UnitResult{}, fmt.Errorf("worker %s: job killed by watchdog: %s", w.url, last.Error)
		}
		// Deterministic simulation failure: every worker (and a local
		// run) would fail the same way.
		return UnitResult{}, permanent("worker %s: job failed: %s", w.url, last.Error)
	case api.EventCanceled:
		// The worker is shutting down; another worker can run the shard.
		return UnitResult{}, fmt.Errorf("worker %s: job canceled mid-shard", w.url)
	default:
		// Stream ended without a terminal line: the worker died or the
		// connection was severed mid-stream.
		return UnitResult{}, fmt.Errorf("worker %s: stream ended without a terminal event (last %q)", w.url, last.Type)
	}
}

// parseUnitResult validates one worker sweep document against the shard
// it was leased for.
func parseUnitResult(raw json.RawMessage, spec *Spec, u Unit, url string) (UnitResult, error) {
	var res workerSweepResult
	if err := json.Unmarshal(raw, &res); err != nil {
		return UnitResult{}, fmt.Errorf("worker %s: bad result document: %w", url, err)
	}
	if len(res.Runs) != 1 {
		return UnitResult{}, fmt.Errorf("worker %s: %d runs in shard result, want 1", url, len(res.Runs))
	}
	r := res.Runs[0]
	if r.Program != u.Workload.Program || r.Impl != implName(u.Impl) {
		return UnitResult{}, fmt.Errorf("worker %s: shard result is (%s,%s), want (%s,%s)",
			url, r.Program, r.Impl, u.Workload.Program, u.Impl)
	}
	if want := len(spec.SizesKB) * len(spec.Assocs); len(r.Caches) != want {
		return UnitResult{}, fmt.Errorf("worker %s: %d geometry rows in shard result, want %d", url, len(r.Caches), want)
	}
	return r, nil
}

// implName canonicalizes an implementation name the way workers echo it
// back ("" parses as MD and is echoed as "md").
func implName(s string) string {
	impl, err := parseImpl(s)
	if err != nil {
		return s
	}
	return impl.String()
}

// probe checks a worker's readiness, bounding the wait. It asks
// /readyz, not /healthz: a live-but-draining worker (503) must shed
// new shards exactly like an unreachable one — the coordinator leases
// elsewhere and the drain completes; this is shedding, not breakage.
func (c *Coordinator) probe(ctx context.Context, w *worker) error {
	pctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, w.url+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("worker %s: readyz %s", w.url, resp.Status)
	}
	return nil
}

// transient reports whether err is worth retrying on another worker.
func transient(err error) bool {
	var pe *PermanentError
	return err != nil && !errors.As(err, &pe) && !errors.Is(err, context.Canceled)
}

// leaseExpired reports whether an attempt failed because its lease
// deadline passed (as opposed to an immediate transport error).
func leaseExpired(err error) bool {
	return errors.Is(err, context.DeadlineExceeded)
}

// sleepCtx sleeps for d unless the context ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
