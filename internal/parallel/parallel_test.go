package parallel

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 100
		var hits [n]atomic.Int32
		if err := ForEach(workers, n, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers, n = 3, 50
	var cur, peak atomic.Int32
	err := ForEach(workers, n, func(int) error {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		runtime.Gosched()
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent tasks, bound is %d", p, workers)
	}
}

func TestForEachPropagatesFirstError(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	err := ForEach(4, 1000, func(i int) error {
		ran.Add(1)
		if i == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// The pool abandons unclaimed work after a failure: with 4 workers
	// and an error at index 5, nowhere near all 1000 tasks may run.
	if n := ran.Load(); n >= 1000 {
		t.Errorf("%d tasks ran after an early error", n)
	}
}

func TestForEachSerialErrorIsLowestIndex(t *testing.T) {
	calls := 0
	err := ForEach(1, 10, func(i int) error {
		calls++
		if i >= 3 {
			return errors.New("late")
		}
		return nil
	})
	if err == nil || calls != 4 {
		t.Errorf("serial path: err=%v calls=%d, want error after 4 calls", err, calls)
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("n=0 returned %v", err)
	}
}

func TestForEachConcurrentWrites(t *testing.T) {
	// Position-indexed writes are the engine's determinism contract;
	// run it under -race to prove disjoint indices don't conflict.
	out := make([]int, 256)
	var wg sync.WaitGroup
	wg.Add(2)
	for g := 0; g < 2; g++ {
		go func() {
			defer wg.Done()
			_ = ForEach(8, 128, func(i int) error { return nil })
		}()
	}
	wg.Wait()
	if err := ForEach(8, len(out), func(i int) error {
		out[i] = i * i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestWorkers(t *testing.T) {
	if Workers(5) != 5 {
		t.Error("explicit parallelism not honoured")
	}
	if Workers(0) != runtime.GOMAXPROCS(0) || Workers(-1) != runtime.GOMAXPROCS(0) {
		t.Error("default parallelism is not GOMAXPROCS")
	}
}
