package parallel

import "context"

// Pool is a long-lived bounded slot pool for admission control. Unlike
// ForEach, whose workers exist only for the duration of one fan-out, a
// Pool outlives any single batch: a serving daemon acquires one slot
// per accepted job and releases it when the job finishes or is
// cancelled, so at most Cap jobs simulate concurrently while later
// submissions queue.
type Pool struct {
	slots chan struct{}
}

// NewPool returns a pool with the given number of slots (<= 0 selects
// GOMAXPROCS).
func NewPool(workers int) *Pool {
	return &Pool{slots: make(chan struct{}, Workers(workers))}
}

// Acquire blocks until a slot is free or the context is cancelled,
// returning the context's error in the latter case. Each successful
// Acquire must be paired with exactly one Release.
func (p *Pool) Acquire(ctx context.Context) error {
	select {
	case p.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TryAcquire takes a slot without blocking, reporting success.
func (p *Pool) TryAcquire() bool {
	select {
	case p.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a slot to the pool.
func (p *Pool) Release() { <-p.slots }

// Cap returns the pool's slot count.
func (p *Pool) Cap() int { return cap(p.slots) }

// InUse returns the number of currently held slots.
func (p *Pool) InUse() int { return len(p.slots) }
