package parallel

import (
	"context"
	"errors"
	"sync"
)

// ErrPoolClosed is returned by Acquire when the pool has been closed:
// work submitted after shutdown fails loudly instead of queueing (or
// silently dropping) behind a pool that will never serve it. The
// serving daemon's clean-restart path depends on this: once the journal
// decides to stop, every late submission must surface as an error the
// caller can journal and re-queue after restart.
var ErrPoolClosed = errors.New("parallel: pool closed")

// Pool is a long-lived bounded slot pool for admission control. Unlike
// ForEach, whose workers exist only for the duration of one fan-out, a
// Pool outlives any single batch: a serving daemon acquires one slot
// per accepted job and releases it when the job finishes or is
// cancelled, so at most Cap jobs simulate concurrently while later
// submissions queue.
type Pool struct {
	slots chan struct{}

	mu      sync.Mutex
	closed  bool
	closeCh chan struct{} // closed by Close
	drained chan struct{} // closed once closed && no slot held
}

// NewPool returns a pool with the given number of slots (<= 0 selects
// GOMAXPROCS).
func NewPool(workers int) *Pool {
	return &Pool{
		slots:   make(chan struct{}, Workers(workers)),
		closeCh: make(chan struct{}),
		drained: make(chan struct{}),
	}
}

// Acquire blocks until a slot is free, the context is cancelled, or the
// pool is closed, returning ctx.Err() or ErrPoolClosed in the latter
// cases. Each successful Acquire must be paired with exactly one
// Release.
func (p *Pool) Acquire(ctx context.Context) error {
	select {
	case <-p.closeCh:
		return ErrPoolClosed
	default:
	}
	select {
	case p.slots <- struct{}{}:
		// Close may have raced the slot grant; a closed pool admits no
		// new work, so hand the slot back.
		select {
		case <-p.closeCh:
			p.Release()
			return ErrPoolClosed
		default:
			return nil
		}
	case <-ctx.Done():
		return ctx.Err()
	case <-p.closeCh:
		return ErrPoolClosed
	}
}

// TryAcquire takes a slot without blocking, reporting success. It
// always fails on a closed pool.
func (p *Pool) TryAcquire() bool {
	select {
	case <-p.closeCh:
		return false
	default:
	}
	select {
	case p.slots <- struct{}{}:
		select {
		case <-p.closeCh:
			p.Release()
			return false
		default:
			return true
		}
	default:
		return false
	}
}

// Release returns a slot to the pool.
func (p *Pool) Release() {
	p.mu.Lock()
	<-p.slots // never blocks: the caller holds a slot
	if p.closed && len(p.slots) == 0 {
		select {
		case <-p.drained:
		default:
			close(p.drained)
		}
	}
	p.mu.Unlock()
}

// Close marks the pool closed: subsequent Acquire/TryAcquire calls fail
// with ErrPoolClosed while already-held slots stay valid until
// released. Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.closeCh)
		if len(p.slots) == 0 {
			close(p.drained)
		}
	}
	p.mu.Unlock()
}

// Drain closes the pool and waits until every held slot has been
// released or the context expires, returning ctx.Err() in the latter
// case. It bounds shutdown: callers get a guaranteed upper limit on how
// long in-flight work may pin the process.
func (p *Pool) Drain(ctx context.Context) error {
	p.Close()
	select {
	case <-p.drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Cap returns the pool's slot count.
func (p *Pool) Cap() int { return cap(p.slots) }

// InUse returns the number of currently held slots.
func (p *Pool) InUse() int { return len(p.slots) }
