// Package parallel provides the bounded worker pool underneath the
// experiment engine's fan-out paths: concurrent (workload,
// implementation) simulations and per-geometry trace replays.
//
// Results stay deterministic because callers index their output by task
// position, never by completion order; the pool only decides *when* a
// task runs, not *where* its result lands.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a parallelism setting: values above zero are taken
// as-is, anything else selects GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach invokes fn(i) for every i in [0,n) on at most workers
// goroutines (workers <= 0 selects GOMAXPROCS). Tasks are claimed in
// index order. The first error stops the pool: running tasks finish,
// unclaimed tasks are abandoned, and that error is returned.
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachContext(context.Background(), workers, n, fn)
}

// ForEachContext is ForEach with cooperative cancellation: the context
// is checked before each task is claimed, so cancellation stops the
// pool after at most one in-flight task per worker. When the context is
// cancelled and no task error occurred first, the context's error is
// returned. A context that can never be cancelled pays no overhead.
func ForEachContext(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	done := ctx.Done()
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	cancelled := func() bool {
		if done == nil {
			return false
		}
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	if workers == 1 {
		// Serial fast path: no goroutines, deterministic error (lowest
		// failing index).
		for i := 0; i < n; i++ {
			if cancelled() {
				return ctx.Err()
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next    atomic.Int64
		stopped atomic.Bool
		mu      sync.Mutex
		first   error
		wg      sync.WaitGroup
	)
	fail := func(err error) {
		stopped.Store(true)
		mu.Lock()
		if first == nil {
			first = err
		}
		mu.Unlock()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if cancelled() {
					fail(ctx.Err())
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n || stopped.Load() {
					return
				}
				if err := fn(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}
