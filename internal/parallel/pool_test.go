package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolBounds(t *testing.T) {
	p := NewPool(2)
	if p.Cap() != 2 {
		t.Fatalf("Cap = %d, want 2", p.Cap())
	}
	if !p.TryAcquire() || !p.TryAcquire() {
		t.Fatal("could not fill an empty pool")
	}
	if p.InUse() != 2 {
		t.Errorf("InUse = %d, want 2", p.InUse())
	}
	if p.TryAcquire() {
		t.Fatal("TryAcquire succeeded on a full pool")
	}
	p.Release()
	if !p.TryAcquire() {
		t.Fatal("TryAcquire failed after Release")
	}
	p.Release()
	p.Release()
}

func TestPoolAcquireBlocksUntilRelease(t *testing.T) {
	p := NewPool(1)
	if err := p.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan error, 1)
	go func() { acquired <- p.Acquire(context.Background()) }()
	select {
	case <-acquired:
		t.Fatal("Acquire returned while the pool was full")
	case <-time.After(20 * time.Millisecond):
	}
	p.Release()
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("Acquire did not return after Release")
	}
	p.Release()
}

func TestPoolAcquireCancelled(t *testing.T) {
	p := NewPool(1)
	if err := p.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Acquire on cancelled ctx = %v, want context.Canceled", err)
	}
	if p.InUse() != 1 {
		t.Errorf("InUse = %d after failed acquire, want 1", p.InUse())
	}
	p.Release()
}

func TestPoolClosedAcquire(t *testing.T) {
	p := NewPool(2)
	if err := p.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close() // idempotent
	if err := p.Acquire(context.Background()); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Acquire on closed pool = %v, want ErrPoolClosed", err)
	}
	if p.TryAcquire() {
		t.Fatal("TryAcquire succeeded on a closed pool")
	}
	if p.InUse() != 1 {
		t.Errorf("InUse = %d after rejected acquires, want 1", p.InUse())
	}
	p.Release()
}

func TestPoolCloseWakesBlockedAcquire(t *testing.T) {
	p := NewPool(1)
	if err := p.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- p.Acquire(context.Background()) }()
	time.Sleep(10 * time.Millisecond)
	p.Close()
	select {
	case err := <-got:
		if !errors.Is(err, ErrPoolClosed) {
			t.Fatalf("blocked Acquire = %v, want ErrPoolClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Close did not wake the blocked Acquire")
	}
	p.Release()
}

func TestPoolDrainWaitsForRelease(t *testing.T) {
	p := NewPool(2)
	if err := p.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		p.Release()
	}()
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if p.InUse() != 0 {
		t.Errorf("InUse = %d after Drain, want 0", p.InUse())
	}
}

func TestPoolDrainBounded(t *testing.T) {
	p := NewPool(1)
	if err := p.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain with a held slot = %v, want deadline exceeded", err)
	}
	p.Release()
	// A later Drain with the slot back succeeds immediately.
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestPoolDrainIdle(t *testing.T) {
	p := NewPool(4)
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := p.Acquire(context.Background()); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Acquire after Drain = %v, want ErrPoolClosed", err)
	}
}

func TestForEachContextCancelSerial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForEachContext(ctx, 1, 100, func(i int) error {
		if ran.Add(1) == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 3 {
		t.Errorf("ran %d tasks after cancellation at task 3", got)
	}
}

func TestForEachContextCancelParallel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForEachContext(ctx, 4, 1000, func(i int) error {
		if ran.Add(1) == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Each worker may finish its in-flight task; nothing close to the
	// full range runs.
	if got := ran.Load(); got > 20 {
		t.Errorf("ran %d tasks after early cancellation", got)
	}
}

func TestForEachContextTaskErrorBeatsCancel(t *testing.T) {
	boom := errors.New("boom")
	err := ForEachContext(context.Background(), 1, 10, func(i int) error {
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want task error", err)
	}
}
