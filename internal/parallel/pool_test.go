package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolBounds(t *testing.T) {
	p := NewPool(2)
	if p.Cap() != 2 {
		t.Fatalf("Cap = %d, want 2", p.Cap())
	}
	if !p.TryAcquire() || !p.TryAcquire() {
		t.Fatal("could not fill an empty pool")
	}
	if p.InUse() != 2 {
		t.Errorf("InUse = %d, want 2", p.InUse())
	}
	if p.TryAcquire() {
		t.Fatal("TryAcquire succeeded on a full pool")
	}
	p.Release()
	if !p.TryAcquire() {
		t.Fatal("TryAcquire failed after Release")
	}
	p.Release()
	p.Release()
}

func TestPoolAcquireBlocksUntilRelease(t *testing.T) {
	p := NewPool(1)
	if err := p.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan error, 1)
	go func() { acquired <- p.Acquire(context.Background()) }()
	select {
	case <-acquired:
		t.Fatal("Acquire returned while the pool was full")
	case <-time.After(20 * time.Millisecond):
	}
	p.Release()
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("Acquire did not return after Release")
	}
	p.Release()
}

func TestPoolAcquireCancelled(t *testing.T) {
	p := NewPool(1)
	if err := p.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Acquire on cancelled ctx = %v, want context.Canceled", err)
	}
	if p.InUse() != 1 {
		t.Errorf("InUse = %d after failed acquire, want 1", p.InUse())
	}
	p.Release()
}

func TestForEachContextCancelSerial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForEachContext(ctx, 1, 100, func(i int) error {
		if ran.Add(1) == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 3 {
		t.Errorf("ran %d tasks after cancellation at task 3", got)
	}
}

func TestForEachContextCancelParallel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForEachContext(ctx, 4, 1000, func(i int) error {
		if ran.Add(1) == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Each worker may finish its in-flight task; nothing close to the
	// full range runs.
	if got := ran.Load(); got > 20 {
		t.Errorf("ran %d tasks after early cancellation", got)
	}
}

func TestForEachContextTaskErrorBeatsCancel(t *testing.T) {
	boom := errors.New("boom")
	err := ForEachContext(context.Background(), 1, 10, func(i int) error {
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want task error", err)
	}
}
