// Package tracestore is a content-addressed store for compacted trace
// recordings. Keys are SHA-256 digests of the canonical run descriptor
// (program, argument, implementation, mesh size, placement), so every
// daemon in a fleet derives the same key for the same simulation and a
// recording made anywhere serves replays everywhere. The store has an
// in-memory LRU tier bounded by bytes and an optional disk tier with
// atomic writes; Fleet layers peer fetch and singleflight on top so a
// fleet records each key at most once.
package tracestore

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Metrics receives the store's observability stream; it matches the
// shard and server metric sinks so counters land on /metricz. All
// methods may be called concurrently. A nil Metrics is valid.
type Metrics interface {
	Count(name string, d uint64)
	GaugeSet(name string, v int64)
	Observe(name string, v uint64)
}

// DefaultMemBytes bounds the in-memory tier when New is given a zero
// budget: 256 MiB of compacted recordings, roughly a paper-scale sweep.
const DefaultMemBytes = 256 << 20

// Store is a two-tier content-addressed blob store. The memory tier is
// an LRU bounded by total bytes; the disk tier (optional) persists
// every Put and backfills memory on Get. Values are immutable once
// stored — content addressing means a key's bytes never change — so
// Get returns the stored slice without copying; callers must not
// mutate it.
type Store struct {
	mu       sync.Mutex
	maxBytes int64
	dir      string
	metrics  Metrics
	ext      string
	prefix   string

	ll    *list.List // front = most recently used
	idx   map[string]*list.Element
	bytes int64

	// quarantined tracks keys whose disk blob failed its checksum and
	// was renamed aside, until a Put repairs them or Dismiss gives up.
	quarantined map[string]struct{}
}

type entry struct {
	key  string
	data []byte
}

// Options customizes a Store beyond New's defaults, so the same
// LRU/disk machinery can hold payloads other than trace recordings
// (the server's result cache stores JSON documents through it).
type Options struct {
	// Ext is the disk filename extension, default ".jtr". Stores
	// sharing a directory must use distinct extensions.
	Ext string
	// Prefix replaces "store" in metric names ("<prefix>.hits",
	// "<prefix>.mem.bytes", ...), keeping tiers distinguishable on
	// /metricz.
	Prefix string
}

// New returns a store with the given disk directory ("" = memory only)
// and memory budget in bytes (0 = DefaultMemBytes; negative = no
// memory tier, disk only). The directory is created if missing.
func New(dir string, memBytes int64, m Metrics) (*Store, error) {
	return NewWith(dir, memBytes, m, Options{})
}

// NewWith is New with explicit Options.
func NewWith(dir string, memBytes int64, m Metrics, o Options) (*Store, error) {
	if memBytes == 0 {
		memBytes = DefaultMemBytes
	}
	if memBytes < 0 {
		memBytes = 0
	}
	if o.Ext == "" {
		o.Ext = ".jtr"
	}
	if o.Prefix == "" {
		o.Prefix = "store"
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("tracestore: %w", err)
		}
	}
	return &Store{
		maxBytes:    memBytes,
		dir:         dir,
		metrics:     m,
		ext:         o.Ext,
		prefix:      o.Prefix,
		ll:          list.New(),
		idx:         make(map[string]*list.Element),
		quarantined: make(map[string]struct{}),
	}, nil
}

// ValidKey reports whether key is a well-formed content address: 64
// lowercase hex digits.
func ValidKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

var errBadKey = errors.New("tracestore: key is not a 64-digit hex content address")

func (s *Store) count(name string, d uint64) {
	if s.metrics != nil {
		s.metrics.Count(s.prefix+name, d)
	}
}

func (s *Store) gauges() {
	if s.metrics != nil {
		s.metrics.GaugeSet(s.prefix+".mem.bytes", s.bytes)
		s.metrics.GaugeSet(s.prefix+".mem.entries", int64(s.ll.Len()))
	}
}

// Get returns the stored bytes for key. A memory hit refreshes the
// entry's recency; a disk hit backfills the memory tier. The returned
// slice is shared and must not be modified.
func (s *Store) Get(key string) ([]byte, bool) {
	return s.lookup(key, true)
}

// lookup is Get with metrics optional: internal double-checks (e.g.
// the singleflight re-check after taking flight ownership) pass
// countMiss=false so one logical request counts at most one miss.
func (s *Store) lookup(key string, countMiss bool) ([]byte, bool) {
	if !ValidKey(key) {
		return nil, false
	}
	s.mu.Lock()
	if el, ok := s.idx[key]; ok {
		s.ll.MoveToFront(el)
		data := el.Value.(*entry).data
		s.mu.Unlock()
		s.count(".hits", 1)
		s.count(".mem.hits", 1)
		return data, true
	}
	s.mu.Unlock()
	if s.dir != "" {
		if data, err := os.ReadFile(s.path(key)); err == nil {
			if !s.verify(key, data) {
				// A corrupt blob is never served: quarantine it and fall
				// through to a miss, so the caller re-fetches or re-records.
				if countMiss {
					s.count(".misses", 1)
				}
				return nil, false
			}
			s.count(".hits", 1)
			s.count(".disk.hits", 1)
			s.admit(key, data)
			return data, true
		}
	}
	if countMiss {
		s.count(".misses", 1)
	}
	return nil, false
}

// checksum returns the content digest stored in a blob's ".sum"
// sidecar: SHA-256 over the blob bytes, hex-encoded. The content
// address (the key) hashes the run *descriptor*, not the bytes, so
// integrity needs its own digest.
func checksum(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

func (s *Store) sumPath(key string) string {
	return s.path(key) + ".sum"
}

// verify checks a disk blob against its sidecar checksum. A missing
// sidecar (a blob written before checksums existed) is healed by
// writing one for the current bytes; a mismatch quarantines the blob
// and reports false.
func (s *Store) verify(key string, data []byte) bool {
	want, err := os.ReadFile(s.sumPath(key))
	if err != nil {
		s.writeSum(key, data)
		return true
	}
	if strings.TrimSpace(string(want)) == checksum(data) {
		return true
	}
	s.quarantine(key)
	return false
}

// writeSum writes a blob's sidecar checksum atomically.
func (s *Store) writeSum(key string, data []byte) error {
	f, err := os.CreateTemp(s.dir, "."+key+".sum.tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.WriteString(checksum(data) + "\n"); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, s.sumPath(key)); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// quarantine renames a corrupt blob aside (".bad" suffix, kept for
// forensics), drops its sidecar, and tracks the key until a Put
// repairs it or Dismiss abandons it. The blob is gone from the serving
// path the moment this returns.
func (s *Store) quarantine(key string) {
	if err := os.Rename(s.path(key), s.path(key)+".bad"); err != nil {
		os.Remove(s.path(key))
	}
	os.Remove(s.sumPath(key))
	s.mu.Lock()
	s.quarantined[key] = struct{}{}
	n := len(s.quarantined)
	s.mu.Unlock()
	s.count(".corrupt", 1)
	if s.metrics != nil {
		s.metrics.GaugeSet(s.prefix+".quarantined", int64(n))
	}
}

// repaired clears a key's quarantine after a fresh Put replaced the
// corrupt blob.
func (s *Store) repaired(key string) {
	s.mu.Lock()
	_, was := s.quarantined[key]
	delete(s.quarantined, key)
	n := len(s.quarantined)
	s.mu.Unlock()
	if !was {
		return
	}
	s.count(".repaired", 1)
	if s.metrics != nil {
		s.metrics.GaugeSet(s.prefix+".quarantined", int64(n))
	}
}

// Dismiss abandons a key's quarantine without counting a repair — no
// peer had the blob, so there is nothing to wait for; the next demand
// re-records it as a plain record.
func (s *Store) Dismiss(key string) {
	s.mu.Lock()
	delete(s.quarantined, key)
	n := len(s.quarantined)
	s.mu.Unlock()
	if s.metrics != nil {
		s.metrics.GaugeSet(s.prefix+".quarantined", int64(n))
	}
}

// Quarantined returns the number of keys awaiting repair — the scrub
// backlog /readyz reports.
func (s *Store) Quarantined() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.quarantined)
}

// Scrub walks the disk tier verifying every blob against its sidecar
// checksum. Corrupt blobs are quarantined; when the memory tier still
// holds a good copy the disk blob is rewritten from it on the spot
// (counted as a repair), otherwise the key is returned for the caller
// to repair from peers or abandon. Blobs without a sidecar get one.
func (s *Store) Scrub() (needRepair []string, err error) {
	if s.dir == "" {
		return nil, nil
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	s.count(".scrubs", 1)
	checked := uint64(0)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, s.ext) || strings.HasPrefix(name, ".") {
			continue
		}
		key := strings.TrimSuffix(name, s.ext)
		if !ValidKey(key) {
			continue
		}
		data, err := os.ReadFile(s.path(key))
		if err != nil {
			continue // racing a concurrent quarantine or removal
		}
		checked++
		if s.verify(key, data) {
			continue
		}
		// The memory tier may still hold the intact bytes; re-persist
		// them instead of asking the fleet.
		s.mu.Lock()
		var good []byte
		if el, ok := s.idx[key]; ok {
			good = el.Value.(*entry).data
		}
		s.mu.Unlock()
		if good != nil && s.writeFile(key, good) == nil {
			s.repaired(key)
			continue
		}
		needRepair = append(needRepair, key)
	}
	s.count(".scrub.checked", checked)
	sort.Strings(needRepair)
	return needRepair, nil
}

// Put stores data under key in both tiers, alongside a ".sum" content
// checksum the read path and scrubber verify. The disk write is atomic
// (temp file + rename), so a crash never leaves a torn blob, and a
// concurrent Get on another daemon sharing the directory sees either
// nothing or the whole recording. A Put of a quarantined key counts as
// its repair.
func (s *Store) Put(key string, data []byte) error {
	if !ValidKey(key) {
		return errBadKey
	}
	if s.dir != "" {
		if err := s.writeFile(key, data); err != nil {
			return err
		}
	}
	s.admit(key, data)
	s.repaired(key)
	return nil
}

// admit inserts data into the memory tier (refreshing an existing
// entry) and evicts from the LRU tail until the tier is within budget.
func (s *Store) admit(key string, data []byte) {
	if s.maxBytes == 0 || int64(len(data)) > s.maxBytes {
		return
	}
	s.mu.Lock()
	if el, ok := s.idx[key]; ok {
		// Content addressing makes this a no-op rewrite; just refresh.
		s.ll.MoveToFront(el)
		s.gauges()
		s.mu.Unlock()
		return
	}
	s.idx[key] = s.ll.PushFront(&entry{key: key, data: data})
	s.bytes += int64(len(data))
	evicted := uint64(0)
	for s.bytes > s.maxBytes {
		tail := s.ll.Back()
		if tail == nil {
			break
		}
		e := tail.Value.(*entry)
		s.ll.Remove(tail)
		delete(s.idx, e.key)
		s.bytes -= int64(len(e.data))
		evicted++
	}
	s.gauges()
	s.mu.Unlock()
	if evicted > 0 {
		s.count(".evictions", evicted)
	}
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+s.ext)
}

func (s *Store) writeFile(key string, data []byte) error {
	f, err := os.CreateTemp(s.dir, "."+key+".tmp*")
	if err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	} else {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("tracestore: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tracestore: %w", err)
	}
	if err := os.Rename(tmp, s.path(key)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tracestore: %w", err)
	}
	if err := s.writeSum(key, data); err != nil {
		// The blob itself landed; a reader finding no sidecar heals it.
		return fmt.Errorf("tracestore: %w", err)
	}
	return nil
}

// Len returns the number of entries resident in the memory tier.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Bytes returns the memory tier's resident size.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}
