// Package tracestore is a content-addressed store for compacted trace
// recordings. Keys are SHA-256 digests of the canonical run descriptor
// (program, argument, implementation, mesh size, placement), so every
// daemon in a fleet derives the same key for the same simulation and a
// recording made anywhere serves replays everywhere. The store has an
// in-memory LRU tier bounded by bytes and an optional disk tier with
// atomic writes; Fleet layers peer fetch and singleflight on top so a
// fleet records each key at most once.
package tracestore

import (
	"container/list"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Metrics receives the store's observability stream; it matches the
// shard and server metric sinks so counters land on /metricz. All
// methods may be called concurrently. A nil Metrics is valid.
type Metrics interface {
	Count(name string, d uint64)
	GaugeSet(name string, v int64)
	Observe(name string, v uint64)
}

// DefaultMemBytes bounds the in-memory tier when New is given a zero
// budget: 256 MiB of compacted recordings, roughly a paper-scale sweep.
const DefaultMemBytes = 256 << 20

// Store is a two-tier content-addressed blob store. The memory tier is
// an LRU bounded by total bytes; the disk tier (optional) persists
// every Put and backfills memory on Get. Values are immutable once
// stored — content addressing means a key's bytes never change — so
// Get returns the stored slice without copying; callers must not
// mutate it.
type Store struct {
	mu       sync.Mutex
	maxBytes int64
	dir      string
	metrics  Metrics
	ext      string
	prefix   string

	ll    *list.List // front = most recently used
	idx   map[string]*list.Element
	bytes int64
}

type entry struct {
	key  string
	data []byte
}

// Options customizes a Store beyond New's defaults, so the same
// LRU/disk machinery can hold payloads other than trace recordings
// (the server's result cache stores JSON documents through it).
type Options struct {
	// Ext is the disk filename extension, default ".jtr". Stores
	// sharing a directory must use distinct extensions.
	Ext string
	// Prefix replaces "store" in metric names ("<prefix>.hits",
	// "<prefix>.mem.bytes", ...), keeping tiers distinguishable on
	// /metricz.
	Prefix string
}

// New returns a store with the given disk directory ("" = memory only)
// and memory budget in bytes (0 = DefaultMemBytes; negative = no
// memory tier, disk only). The directory is created if missing.
func New(dir string, memBytes int64, m Metrics) (*Store, error) {
	return NewWith(dir, memBytes, m, Options{})
}

// NewWith is New with explicit Options.
func NewWith(dir string, memBytes int64, m Metrics, o Options) (*Store, error) {
	if memBytes == 0 {
		memBytes = DefaultMemBytes
	}
	if memBytes < 0 {
		memBytes = 0
	}
	if o.Ext == "" {
		o.Ext = ".jtr"
	}
	if o.Prefix == "" {
		o.Prefix = "store"
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("tracestore: %w", err)
		}
	}
	return &Store{
		maxBytes: memBytes,
		dir:      dir,
		metrics:  m,
		ext:      o.Ext,
		prefix:   o.Prefix,
		ll:       list.New(),
		idx:      make(map[string]*list.Element),
	}, nil
}

// ValidKey reports whether key is a well-formed content address: 64
// lowercase hex digits.
func ValidKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

var errBadKey = errors.New("tracestore: key is not a 64-digit hex content address")

func (s *Store) count(name string, d uint64) {
	if s.metrics != nil {
		s.metrics.Count(s.prefix+name, d)
	}
}

func (s *Store) gauges() {
	if s.metrics != nil {
		s.metrics.GaugeSet(s.prefix+".mem.bytes", s.bytes)
		s.metrics.GaugeSet(s.prefix+".mem.entries", int64(s.ll.Len()))
	}
}

// Get returns the stored bytes for key. A memory hit refreshes the
// entry's recency; a disk hit backfills the memory tier. The returned
// slice is shared and must not be modified.
func (s *Store) Get(key string) ([]byte, bool) {
	return s.lookup(key, true)
}

// lookup is Get with metrics optional: internal double-checks (e.g.
// the singleflight re-check after taking flight ownership) pass
// countMiss=false so one logical request counts at most one miss.
func (s *Store) lookup(key string, countMiss bool) ([]byte, bool) {
	if !ValidKey(key) {
		return nil, false
	}
	s.mu.Lock()
	if el, ok := s.idx[key]; ok {
		s.ll.MoveToFront(el)
		data := el.Value.(*entry).data
		s.mu.Unlock()
		s.count(".hits", 1)
		s.count(".mem.hits", 1)
		return data, true
	}
	s.mu.Unlock()
	if s.dir != "" {
		if data, err := os.ReadFile(s.path(key)); err == nil {
			s.count(".hits", 1)
			s.count(".disk.hits", 1)
			s.admit(key, data)
			return data, true
		}
	}
	if countMiss {
		s.count(".misses", 1)
	}
	return nil, false
}

// Put stores data under key in both tiers. The disk write is atomic
// (temp file + rename), so a crash never leaves a torn blob, and a
// concurrent Get on another daemon sharing the directory sees either
// nothing or the whole recording.
func (s *Store) Put(key string, data []byte) error {
	if !ValidKey(key) {
		return errBadKey
	}
	if s.dir != "" {
		if err := s.writeFile(key, data); err != nil {
			return err
		}
	}
	s.admit(key, data)
	return nil
}

// admit inserts data into the memory tier (refreshing an existing
// entry) and evicts from the LRU tail until the tier is within budget.
func (s *Store) admit(key string, data []byte) {
	if s.maxBytes == 0 || int64(len(data)) > s.maxBytes {
		return
	}
	s.mu.Lock()
	if el, ok := s.idx[key]; ok {
		// Content addressing makes this a no-op rewrite; just refresh.
		s.ll.MoveToFront(el)
		s.gauges()
		s.mu.Unlock()
		return
	}
	s.idx[key] = s.ll.PushFront(&entry{key: key, data: data})
	s.bytes += int64(len(data))
	evicted := uint64(0)
	for s.bytes > s.maxBytes {
		tail := s.ll.Back()
		if tail == nil {
			break
		}
		e := tail.Value.(*entry)
		s.ll.Remove(tail)
		delete(s.idx, e.key)
		s.bytes -= int64(len(e.data))
		evicted++
	}
	s.gauges()
	s.mu.Unlock()
	if evicted > 0 {
		s.count(".evictions", evicted)
	}
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+s.ext)
}

func (s *Store) writeFile(key string, data []byte) error {
	f, err := os.CreateTemp(s.dir, "."+key+".tmp*")
	if err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	} else {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("tracestore: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tracestore: %w", err)
	}
	if err := os.Rename(tmp, s.path(key)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tracestore: %w", err)
	}
	return nil
}

// Len returns the number of entries resident in the memory tier.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Bytes returns the memory tier's resident size.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}
