package tracestore

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"jmtam/internal/trace"
)

// Desc is the canonical run descriptor a recording is addressed by:
// two daemons computing Key over the same descriptor always agree, so
// a recording made on one serves replays on all. Impl is the
// implementation's display name (core.Impl.String()). Placement is
// the frame-placement policy, "" on the uniprocessor path.
type Desc struct {
	Program   string `json:"program"`
	Arg       int    `json:"arg"`
	Impl      string `json:"impl"`
	Nodes     int    `json:"nodes"`
	Placement string `json:"placement,omitempty"`
}

// Key returns the descriptor's content address: SHA-256 over the
// canonical field encoding. The compact format version participates,
// so a format change invalidates every cached recording instead of
// feeding old bytes to a new decoder.
func (d Desc) Key() string {
	h := sha256.New()
	fmt.Fprintf(h, "jtr-v%d\x00%s\x00%d\x00%s\x00%d\x00%s",
		trace.CompactVersion, d.Program, d.Arg, d.Impl, d.Nodes, d.Placement)
	return hex.EncodeToString(h.Sum(nil))
}

// RunMeta is the simulation summary carried in a compacted recording's
// annotation, so a daemon that fetches a recording can assemble the
// full sweep unit without re-simulating. Floats round-trip exactly
// through JSON (Go emits the shortest representation that decodes to
// the same float64), which keeps fetched sweep documents byte-identical
// to locally recorded ones.
type RunMeta struct {
	Desc
	Instructions uint64  `json:"instructions"`
	TPQ          float64 `json:"tpq"`
	IPT          float64 `json:"ipt"`
	IPQ          float64 `json:"ipq"`
	Threads      uint64  `json:"threads"`
	Quanta       uint64  `json:"quanta"`
}

// Encode returns the annotation bytes for CompactAnnotated.
func (m RunMeta) Encode() []byte {
	b, err := json.Marshal(m)
	if err != nil {
		// RunMeta is plain data; Marshal cannot fail on it.
		panic(err)
	}
	return b
}

// DecodeMeta parses a recording's annotation back into its RunMeta.
func DecodeMeta(annotation []byte) (RunMeta, error) {
	var m RunMeta
	if len(annotation) == 0 {
		return m, errors.New("tracestore: recording carries no run metadata")
	}
	if err := json.Unmarshal(annotation, &m); err != nil {
		return m, fmt.Errorf("tracestore: run metadata: %w", err)
	}
	return m, nil
}

// Source says where GetOrRecord found a recording.
type Source int

const (
	// SourceLocal: the local store already had it.
	SourceLocal Source = iota
	// SourcePeer: fetched compacted from a peer daemon.
	SourcePeer
	// SourceRecorded: simulated from scratch on this daemon.
	SourceRecorded
)

func (s Source) String() string {
	switch s {
	case SourceLocal:
		return "local"
	case SourcePeer:
		return "peer"
	default:
		return "recorded"
	}
}

// Fleet resolves recordings fleet-wide: local store first, then peer
// daemons' /v1/recordings endpoints, and only on a full miss the
// record function — with singleflight per key, so concurrent requests
// for the same simulation record it once. A freshly recorded blob is
// pushed to the peers before GetOrRecord returns, so by the time a
// result is visible the fleet can serve the recording.
type Fleet struct {
	store   *Store
	peers   []string
	client  *http.Client
	metrics Metrics
	cfg     FleetConfig

	mu       sync.Mutex
	inflight map[string]*flight
}

type flight struct {
	done chan struct{}
	data []byte
	src  Source
	err  error
}

// FleetConfig customizes a Fleet for payloads other than trace
// recordings; zero values give the recording defaults.
type FleetConfig struct {
	// Path is the peer endpoint path prefix the key is appended to,
	// default "/v1/recordings/".
	Path string
	// Prefix replaces "store" in the fleet-layer metric names
	// ("<prefix>.records", "<prefix>.peer.hits", ...).
	Prefix string
	// Validate checks a peer-fetched payload before it is trusted;
	// default requires a parseable compact recording header.
	Validate func(data []byte) error
	// Saved, when non-nil, returns the byte savings to credit under
	// "<prefix>.bytes.saved" for a served payload (0 = none). The
	// default credits a recording's packed-minus-compact delta.
	Saved func(data []byte) uint64
}

// NewFleet wraps store with peer fetch against the given base URLs
// ("http://host:port", no trailing slash needed). client may be nil
// (http.DefaultClient); m may be nil.
func NewFleet(store *Store, peers []string, client *http.Client, m Metrics) *Fleet {
	return NewFleetWith(store, peers, client, m, FleetConfig{})
}

// NewFleetWith is NewFleet with explicit FleetConfig.
func NewFleetWith(store *Store, peers []string, client *http.Client, m Metrics, cfg FleetConfig) *Fleet {
	if client == nil {
		client = http.DefaultClient
	}
	if cfg.Path == "" {
		cfg.Path = "/v1/recordings/"
	}
	if cfg.Prefix == "" {
		cfg.Prefix = "store"
	}
	if cfg.Validate == nil {
		cfg.Validate = func(data []byte) error {
			_, err := trace.CompactStat(data)
			return err
		}
	}
	if cfg.Saved == nil {
		cfg.Saved = func(data []byte) uint64 {
			if info, err := trace.CompactStat(data); err == nil && info.PackedBytes > info.CompactBytes {
				return uint64(info.PackedBytes - info.CompactBytes)
			}
			return 0
		}
	}
	return &Fleet{
		store:    store,
		peers:    peers,
		client:   client,
		metrics:  m,
		cfg:      cfg,
		inflight: make(map[string]*flight),
	}
}

// Store returns the underlying local store.
func (f *Fleet) Store() *Store { return f.store }

func (f *Fleet) count(name string, d uint64) {
	if f.metrics != nil {
		f.metrics.Count(f.cfg.Prefix+name, d)
	}
}

func (f *Fleet) observe(name string, v uint64) {
	if f.metrics != nil {
		f.metrics.Observe(f.cfg.Prefix+name, v)
	}
}

// GetOrRecord returns the compacted recording for key, resolving
// local store → peers → record, with singleflight per key. The
// returned bytes are shared and must not be modified.
func (f *Fleet) GetOrRecord(ctx context.Context, key string, record func(ctx context.Context) ([]byte, error)) ([]byte, Source, error) {
	if data, ok := f.store.Get(key); ok {
		f.saved(data)
		return data, SourceLocal, nil
	}
	f.mu.Lock()
	if fl := f.inflight[key]; fl != nil {
		f.mu.Unlock()
		f.count(".coalesced", 1)
		select {
		case <-fl.done:
			return fl.data, fl.src, fl.err
		case <-ctx.Done():
			return nil, SourceRecorded, ctx.Err()
		}
	}
	fl := &flight{done: make(chan struct{})}
	f.inflight[key] = fl
	f.mu.Unlock()

	fl.data, fl.src, fl.err = f.fill(ctx, key, record)

	f.mu.Lock()
	delete(f.inflight, key)
	f.mu.Unlock()
	close(fl.done)
	return fl.data, fl.src, fl.err
}

// saved credits the byte savings of one served payload, per the
// config's Saved hook (for recordings: the packed bytes that never had
// to be materialized or moved, minus the compact bytes that did).
func (f *Fleet) saved(data []byte) {
	if f.metrics == nil {
		return
	}
	if d := f.cfg.Saved(data); d > 0 {
		f.count(".bytes.saved", d)
	}
}

func (f *Fleet) fill(ctx context.Context, key string, record func(ctx context.Context) ([]byte, error)) ([]byte, Source, error) {
	// A losing racer may have filled the store between our miss and
	// taking flight ownership. This re-check is part of the same logical
	// request, so it never counts a second miss.
	if data, ok := f.store.lookup(key, false); ok {
		f.saved(data)
		return data, SourceLocal, nil
	}
	for _, peer := range f.peers {
		data, err := f.fetchPeer(ctx, peer, key)
		if err == nil {
			f.count(".peer.hits", 1)
			f.saved(data)
			if err := f.store.Put(key, data); err != nil {
				return nil, SourcePeer, err
			}
			return data, SourcePeer, nil
		}
		if ctx.Err() != nil {
			return nil, SourceRecorded, ctx.Err()
		}
		if errors.Is(err, errPeerMiss) {
			f.count(".peer.misses", 1)
		} else {
			f.count(".peer.errors", 1)
		}
	}
	data, err := record(ctx)
	if err != nil {
		return nil, SourceRecorded, err
	}
	f.count(".records", 1)
	if err := f.store.Put(key, data); err != nil {
		return nil, SourceRecorded, err
	}
	// Push before returning: once a caller sees this result, every peer
	// can serve the recording, which is what makes "record once
	// fleet-wide" hold across sequentially dispatched shards.
	f.push(ctx, key, data)
	return data, SourceRecorded, nil
}

// Repair tries to restore quarantined blobs from peers: each key is
// fetched (validated before trust) and re-Put, which clears its
// quarantine and counts "<prefix>.repaired". A key no peer holds is
// dismissed — there is nothing to wait for; the next demand simply
// re-records it — and counted under "<prefix>.repair.misses". It
// returns the number of keys successfully repaired.
func (f *Fleet) Repair(ctx context.Context, keys []string) int {
	repaired := 0
	for _, key := range keys {
		if ctx.Err() != nil {
			return repaired
		}
		fixed := false
		for _, peer := range f.peers {
			data, err := f.fetchPeer(ctx, peer, key)
			if err != nil {
				continue
			}
			if err := f.store.Put(key, data); err != nil {
				continue
			}
			fixed = true
			break
		}
		if fixed {
			repaired++
		} else {
			f.count(".repair.misses", 1)
			f.store.Dismiss(key)
		}
	}
	return repaired
}

var errPeerMiss = errors.New("tracestore: peer does not have the recording")

func (f *Fleet) fetchPeer(ctx context.Context, peer, key string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.peerURL(peer, key), nil)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		io.Copy(io.Discard, resp.Body)
		return nil, errPeerMiss
	default:
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("tracestore: peer %s: %s", peer, resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	// Validate before trusting a network payload.
	if err := f.cfg.Validate(data); err != nil {
		return nil, fmt.Errorf("tracestore: peer %s sent a corrupt payload: %w", peer, err)
	}
	f.observe(".peer.fetch.ms", uint64(time.Since(start).Milliseconds()))
	return data, nil
}

// push uploads a freshly recorded blob to every peer, best-effort: a
// peer that is down just records the miss on its own next request.
func (f *Fleet) push(ctx context.Context, key string, data []byte) {
	for _, peer := range f.peers {
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, f.peerURL(peer, key), bytes.NewReader(data))
		if err != nil {
			continue
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		resp, err := f.client.Do(req)
		if err != nil {
			f.count(".push.errors", 1)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode >= 300 {
			f.count(".push.errors", 1)
			continue
		}
		f.count(".pushes", 1)
	}
}

func (f *Fleet) peerURL(peer, key string) string {
	return strings.TrimSuffix(peer, "/") + f.cfg.Path + key
}
