package tracestore

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"jmtam/internal/faultnet"
)

// corruptDiskBlob flips one bit in a stored blob's disk file.
func corruptDiskBlob(t *testing.T, st *Store, key string) {
	t.Helper()
	if _, err := faultnet.CorruptFile(st.path(key), 1); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptBlobNeverServed is the integrity tentpole: a bit-flipped
// disk blob is quarantined on read — never returned to a caller — and
// a fresh Put of the key counts as its repair.
func TestCorruptBlobNeverServed(t *testing.T) {
	dir := t.TempDir()
	m := newTestMetrics()
	st, err := New(dir, -1, m) // disk only: reads must hit the corrupt file
	if err != nil {
		t.Fatal(err)
	}
	key := keyOf("scrub-serve")
	data := blob(64)
	if err := st.Put(key, data); err != nil {
		t.Fatal(err)
	}
	corruptDiskBlob(t, st, key)

	if got, ok := st.Get(key); ok {
		t.Fatalf("corrupt blob served: %d bytes", len(got))
	}
	if m.counter("store.corrupt") != 1 {
		t.Fatalf("store.corrupt = %d, want 1", m.counter("store.corrupt"))
	}
	if st.Quarantined() != 1 {
		t.Fatalf("Quarantined() = %d, want 1", st.Quarantined())
	}
	// The blob was renamed aside for forensics and its sidecar removed.
	if _, err := os.Stat(st.path(key) + ".bad"); err != nil {
		t.Fatalf("no .bad quarantine file: %v", err)
	}
	if _, err := os.Stat(st.sumPath(key)); !os.IsNotExist(err) {
		t.Fatalf("sidecar survived quarantine: %v", err)
	}
	// Still a miss — the corrupt bytes are gone from the serving path.
	if _, ok := st.Get(key); ok {
		t.Fatal("quarantined key served on second read")
	}

	// A fresh Put repairs the key.
	if err := st.Put(key, data); err != nil {
		t.Fatal(err)
	}
	if m.counter("store.repaired") != 1 {
		t.Fatalf("store.repaired = %d, want 1", m.counter("store.repaired"))
	}
	if st.Quarantined() != 0 {
		t.Fatalf("Quarantined() = %d after repair, want 0", st.Quarantined())
	}
	got, ok := st.Get(key)
	if !ok || !bytes.Equal(got, data) {
		t.Fatalf("repaired get: ok=%v len=%d", ok, len(got))
	}
}

// TestScrubSelfHealsFromMemory corrupts the disk copy while the memory
// tier still holds good bytes: one scrub pass must rewrite the blob in
// place without asking for peer repair.
func TestScrubSelfHealsFromMemory(t *testing.T) {
	dir := t.TempDir()
	m := newTestMetrics()
	st, err := New(dir, 0, m)
	if err != nil {
		t.Fatal(err)
	}
	key := keyOf("scrub-heal")
	data := blob(32)
	if err := st.Put(key, data); err != nil {
		t.Fatal(err)
	}
	corruptDiskBlob(t, st, key)

	need, err := st.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(need) != 0 {
		t.Fatalf("needRepair = %v, want none (memory tier had the bytes)", need)
	}
	if m.counter("store.corrupt") != 1 || m.counter("store.repaired") != 1 {
		t.Fatalf("corrupt=%d repaired=%d, want 1/1", m.counter("store.corrupt"), m.counter("store.repaired"))
	}
	if st.Quarantined() != 0 {
		t.Fatalf("Quarantined() = %d after self-heal", st.Quarantined())
	}
	onDisk, err := os.ReadFile(st.path(key))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, data) {
		t.Fatal("disk blob not restored to original bytes")
	}
}

// TestScrubReportsUnrepairable: with no memory copy the scrubber can
// only quarantine and hand the key back for fleet repair; intact blobs
// are untouched.
func TestScrubReportsUnrepairable(t *testing.T) {
	dir := t.TempDir()
	m := newTestMetrics()
	st, err := New(dir, -1, m)
	if err != nil {
		t.Fatal(err)
	}
	good, bad := keyOf("scrub-good"), keyOf("scrub-bad")
	if err := st.Put(good, blob(8)); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(bad, blob(16)); err != nil {
		t.Fatal(err)
	}
	corruptDiskBlob(t, st, bad)

	need, err := st.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(need) != 1 || need[0] != bad {
		t.Fatalf("needRepair = %v, want [%s]", need, bad)
	}
	if m.counter("store.scrub.checked") != 2 {
		t.Fatalf("store.scrub.checked = %d, want 2", m.counter("store.scrub.checked"))
	}
	if _, ok := st.Get(good); !ok {
		t.Fatal("intact blob lost during scrub")
	}
	if st.Quarantined() != 1 {
		t.Fatalf("Quarantined() = %d, want 1", st.Quarantined())
	}
	st.Dismiss(bad)
	if st.Quarantined() != 0 {
		t.Fatalf("Quarantined() = %d after Dismiss", st.Quarantined())
	}
}

// TestLegacyBlobHealedWithSidecar: a blob written before checksums
// existed (no ".sum") is served and gains a sidecar on first read.
func TestLegacyBlobHealedWithSidecar(t *testing.T) {
	dir := t.TempDir()
	st, err := New(dir, -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	key := keyOf("legacy")
	data := blob(4)
	if err := os.WriteFile(st.path(key), data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, ok := st.Get(key)
	if !ok || !bytes.Equal(got, data) {
		t.Fatalf("legacy get: ok=%v", ok)
	}
	sum, err := os.ReadFile(st.sumPath(key))
	if err != nil {
		t.Fatalf("no healed sidecar: %v", err)
	}
	if want := checksum(data) + "\n"; string(sum) != want {
		t.Fatalf("sidecar = %q, want %q", sum, want)
	}
}

// TestFleetRepairFromPeer: a quarantined key is restored by fetching
// the blob from a peer; a key no peer holds is dismissed so the
// backlog (and /readyz) cannot wedge on it forever.
func TestFleetRepairFromPeer(t *testing.T) {
	dir := t.TempDir()
	m := newTestMetrics()
	st, err := New(dir, -1, m)
	if err != nil {
		t.Fatal(err)
	}
	held, lost := keyOf("repair-held"), keyOf("repair-lost")
	data := blob(24)
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/recordings/"+held {
			w.Write(data)
			return
		}
		http.Error(w, "no such recording", http.StatusNotFound)
	}))
	defer peer.Close()
	fl := NewFleet(st, []string{peer.URL}, nil, m)

	for i, key := range []string{held, lost} {
		if err := st.Put(key, blob(24+i)); err != nil {
			t.Fatal(err)
		}
		corruptDiskBlob(t, st, key)
		if _, ok := st.Get(key); ok {
			t.Fatalf("corrupt %s served", key)
		}
	}
	if st.Quarantined() != 2 {
		t.Fatalf("Quarantined() = %d, want 2", st.Quarantined())
	}

	fixed := fl.Repair(context.Background(), []string{held, lost})
	if fixed != 1 {
		t.Fatalf("Repair() = %d, want 1", fixed)
	}
	if m.counter("store.repaired") != 1 {
		t.Fatalf("store.repaired = %d, want 1", m.counter("store.repaired"))
	}
	if m.counter("store.repair.misses") != 1 {
		t.Fatalf("store.repair.misses = %d, want 1", m.counter("store.repair.misses"))
	}
	// Both keys left quarantine: one repaired, one dismissed.
	if st.Quarantined() != 0 {
		t.Fatalf("Quarantined() = %d after repair pass", st.Quarantined())
	}
	got, ok := st.Get(held)
	if !ok || !bytes.Equal(got, data) {
		t.Fatalf("repaired blob: ok=%v len=%d want %d", ok, len(got), len(data))
	}
	if _, ok := st.Get(lost); ok {
		t.Fatal("dismissed key served stale bytes")
	}
}

// TestCorruptorDeterministic: the same seed over the same directory
// strikes the same file at the same offset — chaos drills reproduce.
func TestCorruptorDeterministic(t *testing.T) {
	mk := func() string {
		dir := t.TempDir()
		for i := 0; i < 3; i++ {
			name := fmt.Sprintf("%s.jtr", keyOf(fmt.Sprint(i))[:8])
			if err := os.WriteFile(dir+"/"+name, blob(8+i), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.WriteFile(dir+"/.hidden.jtr", []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	p1, o1, err := faultnet.NewCorruptor(mk(), ".jtr", 42).Strike()
	if err != nil {
		t.Fatal(err)
	}
	p2, o2, err := faultnet.NewCorruptor(mk(), ".jtr", 42).Strike()
	if err != nil {
		t.Fatal(err)
	}
	if o1 != o2 || filepath.Base(p1) != filepath.Base(p2) {
		t.Fatalf("strikes diverge: (%s,%d) vs (%s,%d)", p1, o1, p2, o2)
	}
}
