package tracestore

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"jmtam/internal/trace"
)

// testMetrics is a concurrency-safe Metrics sink for assertions.
type testMetrics struct {
	mu       sync.Mutex
	counters map[string]uint64
	gauges   map[string]int64
}

func newTestMetrics() *testMetrics {
	return &testMetrics{counters: make(map[string]uint64), gauges: make(map[string]int64)}
}

func (m *testMetrics) Count(name string, d uint64) {
	m.mu.Lock()
	m.counters[name] += d
	m.mu.Unlock()
}

func (m *testMetrics) GaugeSet(name string, v int64) {
	m.mu.Lock()
	m.gauges[name] = v
	m.mu.Unlock()
}

func (m *testMetrics) Observe(string, uint64) {}

func (m *testMetrics) counter(name string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

func (m *testMetrics) gauge(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gauges[name]
}

func keyOf(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

// blob returns a valid compacted recording with n fetches, so peer
// validation accepts it.
func blob(n int) []byte {
	r := &trace.Recording{}
	for i := uint32(0); i < uint32(n); i++ {
		r.Fetch(0x1000 + i*4)
	}
	return r.Compact()
}

func TestValidKey(t *testing.T) {
	good := keyOf("x")
	for _, k := range []string{good} {
		if !ValidKey(k) {
			t.Errorf("ValidKey(%q) = false", k)
		}
	}
	for _, k := range []string{"", "abc", strings.ToUpper(good), good[:63] + "g", good + "0"} {
		if ValidKey(k) {
			t.Errorf("ValidKey(%q) = true", k)
		}
	}
}

func TestStoreLRUEviction(t *testing.T) {
	m := newTestMetrics()
	data := blob(100)
	// Budget fits exactly two blobs.
	st, err := New("", int64(2*len(data)), m)
	if err != nil {
		t.Fatal(err)
	}
	k1, k2, k3 := keyOf("1"), keyOf("2"), keyOf("3")
	for _, k := range []string{k1, k2} {
		if err := st.Put(k, data); err != nil {
			t.Fatal(err)
		}
	}
	// Touch k1 so k2 is the LRU victim.
	if _, ok := st.Get(k1); !ok {
		t.Fatal("k1 missing")
	}
	if err := st.Put(k3, data); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(k2); ok {
		t.Fatal("k2 should have been evicted")
	}
	if _, ok := st.Get(k1); !ok {
		t.Fatal("k1 evicted despite recency")
	}
	if _, ok := st.Get(k3); !ok {
		t.Fatal("k3 missing")
	}
	if got := m.counter("store.evictions"); got != 1 {
		t.Fatalf("store.evictions = %d, want 1", got)
	}
	if got := m.gauge("store.mem.entries"); got != 2 {
		t.Fatalf("store.mem.entries = %d, want 2", got)
	}
	if got := m.gauge("store.mem.bytes"); got != int64(2*len(data)) {
		t.Fatalf("store.mem.bytes = %d, want %d", got, 2*len(data))
	}
}

func TestStoreDiskTier(t *testing.T) {
	dir := t.TempDir()
	m := newTestMetrics()
	st, err := New(dir, 0, m)
	if err != nil {
		t.Fatal(err)
	}
	key := keyOf("persist")
	data := blob(500)
	if err := st.Put(key, data); err != nil {
		t.Fatal(err)
	}
	// A fresh store over the same directory (cold memory tier) must
	// serve from disk and promote.
	st2, err := New(dir, 0, m)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := st2.Get(key)
	if !ok || len(got) != len(data) {
		t.Fatalf("disk get: ok=%v len=%d want %d", ok, len(got), len(data))
	}
	if m.counter("store.disk.hits") != 1 {
		t.Fatalf("store.disk.hits = %d, want 1", m.counter("store.disk.hits"))
	}
	// Promoted: second get is a memory hit.
	if _, ok := st2.Get(key); !ok {
		t.Fatal("promoted get failed")
	}
	if m.counter("store.mem.hits") != 1 {
		t.Fatalf("store.mem.hits = %d, want 1", m.counter("store.mem.hits"))
	}
	// The atomic write left no temp files behind: just the blob and its
	// checksum sidecar.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	want := []string{key + ".jtr", key + ".jtr.sum"}
	if len(names) != 2 || names[0] != want[0] || names[1] != want[1] {
		t.Fatalf("dir contents = %v, want %v", names, want)
	}
}

func TestStoreDiskOnly(t *testing.T) {
	dir := t.TempDir()
	st, err := New(dir, -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	key := keyOf("diskonly")
	if err := st.Put(key, blob(10)); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 0 {
		t.Fatalf("memory tier holds %d entries with a negative budget", st.Len())
	}
	if _, ok := st.Get(key); !ok {
		t.Fatal("disk-only get failed")
	}
}

func TestStoreRejectsBadKey(t *testing.T) {
	st, err := New("", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put("not-a-key", blob(1)); err == nil {
		t.Fatal("Put accepted a malformed key")
	}
	if _, ok := st.Get("not-a-key"); ok {
		t.Fatal("Get accepted a malformed key")
	}
}

func TestDescKeyStable(t *testing.T) {
	d := Desc{Program: "mmt", Arg: 50, Impl: "AM", Nodes: 1}
	k1, k2 := d.Key(), d.Key()
	if k1 != k2 || !ValidKey(k1) {
		t.Fatalf("unstable or invalid key %q / %q", k1, k2)
	}
	variants := []Desc{
		{Program: "mmt", Arg: 51, Impl: "AM", Nodes: 1},
		{Program: "mmt", Arg: 50, Impl: "MD", Nodes: 1},
		{Program: "qs", Arg: 50, Impl: "AM", Nodes: 1},
		{Program: "mmt", Arg: 50, Impl: "AM", Nodes: 4},
		{Program: "mmt", Arg: 50, Impl: "AM", Nodes: 1, Placement: "local"},
	}
	for _, v := range variants {
		if v.Key() == k1 {
			t.Fatalf("descriptor %+v collides with %+v", v, d)
		}
	}
}

func TestRunMetaRoundTrip(t *testing.T) {
	m := RunMeta{
		Desc:         Desc{Program: "dtw", Arg: 8, Impl: "MD", Nodes: 1},
		Instructions: 123456789,
		TPQ:          3.0000000000000004, // not representable in short decimal
		IPT:          17.25,
		IPQ:          51.75000000000001,
		Threads:      4242,
		Quanta:       99,
	}
	got, err := DecodeMeta(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("round-trip = %+v, want %+v", got, m)
	}
	if _, err := DecodeMeta(nil); err == nil {
		t.Fatal("DecodeMeta accepted an empty annotation")
	}
}

func TestFleetSingleflight(t *testing.T) {
	m := newTestMetrics()
	st, err := New("", 0, m)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFleet(st, nil, nil, m)
	key := keyOf("singleflight")
	data := blob(50)

	var records atomic.Int32
	release := make(chan struct{})
	record := func(ctx context.Context) ([]byte, error) {
		records.Add(1)
		<-release
		return data, nil
	}

	const callers = 8
	var wg sync.WaitGroup
	results := make([][]byte, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, _, err := f.GetOrRecord(context.Background(), key, record)
			if err != nil {
				t.Error(err)
			}
			results[i] = got
		}(i)
	}
	// Let the goroutines pile onto the flight, then release the single
	// recorder.
	for records.Load() == 0 {
	}
	close(release)
	wg.Wait()
	if n := records.Load(); n != 1 {
		t.Fatalf("record ran %d times, want 1", n)
	}
	for i, r := range results {
		if len(r) != len(data) {
			t.Fatalf("caller %d got %d bytes, want %d", i, len(r), len(data))
		}
	}
	// The store now serves it without recording.
	got, src, err := f.GetOrRecord(context.Background(), key, func(ctx context.Context) ([]byte, error) {
		t.Fatal("record called on a warm store")
		return nil, nil
	})
	if err != nil || src != SourceLocal || len(got) != len(data) {
		t.Fatalf("warm get: src=%v err=%v", src, err)
	}
	if m.counter("store.records") != 1 {
		t.Fatalf("store.records = %d, want 1", m.counter("store.records"))
	}
}

func TestFleetPeerFetchAndPush(t *testing.T) {
	data := blob(200)
	key := keyOf("peered")

	// The peer is a minimal recordings endpoint over its own store.
	peerMetrics := newTestMetrics()
	peerStore, err := New("", 0, peerMetrics)
	if err != nil {
		t.Fatal(err)
	}
	var puts atomic.Int32
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		k := strings.TrimPrefix(r.URL.Path, "/v1/recordings/")
		switch r.Method {
		case http.MethodGet:
			if b, ok := peerStore.Get(k); ok {
				w.Write(b)
				return
			}
			http.Error(w, "no recording", http.StatusNotFound)
		case http.MethodPut:
			b, _ := io.ReadAll(r.Body)
			if err := peerStore.Put(k, b); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			puts.Add(1)
			w.WriteHeader(http.StatusNoContent)
		}
	}))
	defer peer.Close()

	// Fleet A misses everywhere, records, and pushes to the peer.
	mA := newTestMetrics()
	stA, _ := New("", 0, mA)
	fA := NewFleet(stA, []string{peer.URL}, peer.Client(), mA)
	got, src, err := fA.GetOrRecord(context.Background(), key, func(ctx context.Context) ([]byte, error) {
		return data, nil
	})
	if err != nil || src != SourceRecorded || len(got) != len(data) {
		t.Fatalf("record path: src=%v err=%v", src, err)
	}
	if puts.Load() != 1 {
		t.Fatalf("peer received %d pushes, want 1", puts.Load())
	}
	if mA.counter("store.pushes") != 1 || mA.counter("store.peer.misses") != 1 {
		t.Fatalf("fleet A counters: %+v", mA.counters)
	}

	// Fleet B (cold local store) fetches from the peer without recording.
	mB := newTestMetrics()
	stB, _ := New("", 0, mB)
	fB := NewFleet(stB, []string{peer.URL}, peer.Client(), mB)
	got, src, err = fB.GetOrRecord(context.Background(), key, func(ctx context.Context) ([]byte, error) {
		t.Fatal("recorded despite peer having the blob")
		return nil, nil
	})
	if err != nil || src != SourcePeer || len(got) != len(data) {
		t.Fatalf("peer path: src=%v err=%v", src, err)
	}
	if mB.counter("store.peer.hits") != 1 || mB.counter("store.records") != 0 {
		t.Fatalf("fleet B counters: %+v", mB.counters)
	}
	if mB.counter("store.bytes.saved") == 0 {
		t.Fatal("store.bytes.saved not credited on a peer hit")
	}
	// And it landed in B's local store.
	if _, ok := stB.Get(key); !ok {
		t.Fatal("peer fetch did not backfill the local store")
	}
}

func TestFleetRejectsCorruptPeerPayload(t *testing.T) {
	key := keyOf("corrupt")
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "this is not a recording")
	}))
	defer peer.Close()
	m := newTestMetrics()
	st, _ := New("", 0, m)
	f := NewFleet(st, []string{peer.URL}, peer.Client(), m)
	data := blob(5)
	got, src, err := f.GetOrRecord(context.Background(), key, func(ctx context.Context) ([]byte, error) {
		return data, nil
	})
	if err != nil || src != SourceRecorded || len(got) != len(data) {
		t.Fatalf("src=%v err=%v", src, err)
	}
	if m.counter("store.peer.errors") != 1 {
		t.Fatalf("store.peer.errors = %d, want 1", m.counter("store.peer.errors"))
	}
}
