package netsim

import (
	"testing"
	"testing/quick"

	"jmtam/internal/word"
)

func TestHopsManhattan(t *testing.T) {
	n := New(Config{Width: 4, Height: 4, Base: 1})
	cases := []struct{ a, b, want int }{
		{0, 0, 0},
		{0, 3, 3},  // same row
		{0, 12, 3}, // same column
		{0, 15, 6}, // opposite corner
		{5, 10, 2}, // (1,1) -> (2,2)
		{15, 0, 6}, // symmetric
	}
	for _, c := range cases {
		if got := n.Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestHopsSymmetryProperty(t *testing.T) {
	n := New(Config{Width: 5, Height: 3, Base: 1})
	f := func(a, b uint8) bool {
		x, y := int(a)%n.Nodes(), int(b)%n.Nodes()
		return n.Hops(x, y) == n.Hops(y, x) && n.Hops(x, x) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLatencyModel(t *testing.T) {
	n := New(Config{Width: 4, Height: 1, Base: 10, PerHop: 3, PerWord: 2})
	if got := n.Latency(0, 3, 5); got != 10+3*3+2*5 {
		t.Errorf("latency = %d", got)
	}
}

func TestDeliveryOrderAndTiming(t *testing.T) {
	n := New(Config{Width: 4, Height: 1, Base: 2, PerHop: 2, PerWord: 0})
	ws := []word.Word{word.Int(1)}
	// Far message sent first, near message second: near arrives first.
	if err := n.Send(0, 3, 0, ws, 0); err != nil { // due at 8
		t.Fatal(err)
	}
	if err := n.Send(0, 1, 0, ws, 0); err != nil { // due at 4
		t.Fatal(err)
	}
	var order []int
	deliver := func(now uint64) {
		n.Deliver(now, func(m *Message) error {
			order = append(order, m.Dst)
			return nil
		})
	}
	deliver(3)
	if len(order) != 0 {
		t.Fatal("delivered before due time")
	}
	deliver(4)
	if len(order) != 1 || order[0] != 1 {
		t.Fatalf("order after t=4: %v", order)
	}
	deliver(100)
	if len(order) != 2 || order[1] != 3 {
		t.Fatalf("final order: %v", order)
	}
	if n.Pending() != 0 || n.Delivered != 2 {
		t.Error("bookkeeping wrong")
	}
}

func TestFIFOBetweenSamePair(t *testing.T) {
	n := New(Config{Width: 2, Height: 1, Base: 1})
	for i := int64(0); i < 10; i++ {
		if err := n.Send(0, 1, 0, []word.Word{word.Int(i)}, 0); err != nil {
			t.Fatal(err)
		}
	}
	var got []int64
	n.Deliver(100, func(m *Message) error {
		got = append(got, m.Words[0].AsInt())
		return nil
	})
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("delivery order %v not FIFO", got)
		}
	}
}

func TestSendCopiesWords(t *testing.T) {
	n := New(Config{Width: 2, Height: 1, Base: 1})
	ws := []word.Word{word.Int(1)}
	n.Send(0, 1, 0, ws, 0)
	ws[0] = word.Int(99) // mutate the caller's slice
	n.Deliver(100, func(m *Message) error {
		if m.Words[0].AsInt() != 1 {
			t.Error("network aliased the sender's buffer")
		}
		return nil
	})
}

func TestBadDestination(t *testing.T) {
	n := New(Config{Width: 2, Height: 2, Base: 1})
	if err := n.Send(0, 4, 0, []word.Word{word.Int(1)}, 0); err == nil {
		t.Error("out-of-mesh destination accepted")
	}
	if err := n.Send(0, -1, 0, []word.Word{word.Int(1)}, 0); err == nil {
		t.Error("negative destination accepted")
	}
}

func TestDefaultConfigCovers(t *testing.T) {
	for _, nodes := range []int{1, 2, 4, 5, 9, 16, 17} {
		cfg := DefaultConfig(nodes)
		if cfg.Width*cfg.Height < nodes {
			t.Errorf("DefaultConfig(%d) = %dx%d too small", nodes, cfg.Width, cfg.Height)
		}
	}
}

func TestNextDue(t *testing.T) {
	n := New(DefaultConfig(4))
	if _, ok := n.NextDue(); ok {
		t.Error("empty network reports a due time")
	}
	n.Send(0, 1, 0, []word.Word{word.Int(1)}, 10)
	due, ok := n.NextDue()
	if !ok || due <= 10 {
		t.Errorf("NextDue = %d, %v", due, ok)
	}
}
