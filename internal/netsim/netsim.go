// Package netsim models the J-Machine's interconnect: a 2D mesh with
// dimension-order routing and per-hop, per-word latency. The paper's
// measurements are uniprocessor, but its systems "can run on multiple
// processors"; this package plus machine.Machine's router hook provide
// the multi-node substrate (see internal/cluster).
//
// The model is a delivery-time network: a message sent at tick T to a
// node H hops away becomes deliverable at T + Base + PerHop*H +
// PerWord*len. Messages between the same pair of nodes are delivered in
// FIFO order; ordering across pairs follows delivery times (ties broken
// by send order), which matches a non-adaptive wormhole mesh closely
// enough for scheduling studies.
package netsim

import (
	"container/heap"
	"fmt"

	"jmtam/internal/obs"
	"jmtam/internal/word"
)

// Config sets the mesh dimensions and the latency model (in machine
// ticks; one tick is one instruction in the cluster driver).
type Config struct {
	Width, Height int
	// Base is the fixed send/receive overhead; PerHop the per-hop
	// routing delay; PerWord the serialization cost per message word.
	Base, PerHop, PerWord uint64
}

// DefaultConfig returns a small mesh with J-Machine-flavoured latencies
// (a few cycles per hop, one word per cycle of serialization).
func DefaultConfig(nodes int) Config {
	w := 1
	for w*w < nodes {
		w++
	}
	h := (nodes + w - 1) / w
	return Config{Width: w, Height: h, Base: 4, PerHop: 2, PerWord: 1}
}

// Message is one in-flight network message.
type Message struct {
	Src, Dst int
	Pri      int
	Words    []word.Word

	due uint64
	seq uint64
}

type msgHeap []*Message

func (h msgHeap) Len() int { return len(h) }
func (h msgHeap) Less(i, j int) bool {
	if h[i].due != h[j].due {
		return h[i].due < h[j].due
	}
	return h[i].seq < h[j].seq
}
func (h msgHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *msgHeap) Push(x interface{}) { *h = append(*h, x.(*Message)) }
func (h *msgHeap) Pop() interface{} {
	old := *h
	n := len(old)
	m := old[n-1]
	*h = old[:n-1]
	return m
}

// Network is the mesh. Construct with New.
type Network struct {
	cfg      Config
	inflight msgHeap
	seq      uint64

	// Statistics.
	Sent        uint64
	Delivered   uint64
	WordsSent   uint64
	MaxInFlight int

	// Obs, when non-nil, receives per-message hop/latency/occupancy
	// metrics and — if the sink has an event buffer — one in-flight
	// duration span per message on the network track of the source node.
	Obs *obs.Sink
}

// New builds a network; it panics on non-positive dimensions.
func New(cfg Config) *Network {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		panic(fmt.Sprintf("netsim: bad mesh %dx%d", cfg.Width, cfg.Height))
	}
	return &Network{cfg: cfg}
}

// Nodes returns the number of nodes in the mesh.
func (n *Network) Nodes() int { return n.cfg.Width * n.cfg.Height }

// Hops returns the dimension-order route length between two nodes.
func (n *Network) Hops(src, dst int) int {
	sx, sy := src%n.cfg.Width, src/n.cfg.Width
	dx, dy := dst%n.cfg.Width, dst/n.cfg.Width
	return abs(sx-dx) + abs(sy-dy)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Latency returns the delivery delay for a message of length words
// between src and dst.
func (n *Network) Latency(src, dst, words int) uint64 {
	return n.cfg.Base + n.cfg.PerHop*uint64(n.Hops(src, dst)) + n.cfg.PerWord*uint64(words)
}

// Send injects a message at time now. The word slice is copied.
func (n *Network) Send(src, dst, pri int, ws []word.Word, now uint64) error {
	if dst < 0 || dst >= n.Nodes() {
		return fmt.Errorf("netsim: destination %d outside %dx%d mesh",
			dst, n.cfg.Width, n.cfg.Height)
	}
	m := &Message{
		Src: src, Dst: dst, Pri: pri,
		Words: append([]word.Word(nil), ws...),
		due:   now + n.Latency(src, dst, len(ws)),
		seq:   n.seq,
	}
	n.seq++
	heap.Push(&n.inflight, m)
	n.Sent++
	n.WordsSent += uint64(len(ws))
	if len(n.inflight) > n.MaxInFlight {
		n.MaxInFlight = len(n.inflight)
	}
	if s := n.Obs; s != nil {
		r := s.Metrics
		r.Counter("net.msgs").Add(1)
		r.Counter("net.words").Add(uint64(len(ws)))
		r.Histogram("net.hops").Observe(uint64(n.Hops(src, dst)))
		r.Histogram("net.latency").Observe(m.due - now)
		r.Histogram("net.inflight").Observe(uint64(len(n.inflight)))
		if s.Events != nil {
			s.Events.DurationArg(fmt.Sprintf("net %d->%d", src, dst), "net",
				int32(src), obs.TrackNet, now, m.due-now, "words", uint64(len(ws)))
		}
	}
	return nil
}

// Pending returns the number of in-flight messages.
func (n *Network) Pending() int { return len(n.inflight) }

// Deliver pops every message due at or before now, invoking f for each
// in delivery order. If f returns an error (e.g. a full destination
// queue), the message is dropped and the error returned.
func (n *Network) Deliver(now uint64, f func(m *Message) error) error {
	for len(n.inflight) > 0 && n.inflight[0].due <= now {
		m := heap.Pop(&n.inflight).(*Message)
		n.Delivered++
		if err := f(m); err != nil {
			return fmt.Errorf("netsim: delivering %d->%d: %w", m.Src, m.Dst, err)
		}
	}
	return nil
}

// NextDue returns the earliest in-flight delivery time, or false.
func (n *Network) NextDue() (uint64, bool) {
	if len(n.inflight) == 0 {
		return 0, false
	}
	return n.inflight[0].due, true
}
