package core

import (
	"fmt"
	"sort"
	"strings"

	"jmtam/internal/machine"
)

// The two post-1995 backends, built on the registry below. Both share
// the AM implementation's code generation (high-priority inlets, frame-
// resident continuation vectors, background scheduler) and differ only
// in where message handling executes:
//
//   - ImplOffload runs inlets on a per-node NIC engine with its own
//     small instruction/data cache, so handler code and inlet data never
//     touch the compute caches ("Network-accelerated Active Messages").
//     The instruction stream is identical to AM; the reference trace is
//     split by execution locus and attributed to separate cache pairs.
//
//   - ImplAA (Active Access, after Besta) services remote I-structure
//     fetches and stores directly against the owning node's memory at
//     message-delivery time — no inlet dispatch, no handler
//     instructions — while frame/heap allocation still runs as
//     handlers. On one node it is exactly AM.
const (
	ImplOffload Impl = iota + ImplOAM + 1
	ImplAA
)

// SchedulerKind says how a backend activates ready frames.
type SchedulerKind int

const (
	// SchedNone: no frame scheduler; the hardware message queue is the
	// task queue (MD).
	SchedNone SchedulerKind = iota
	// SchedBackground: a low-priority library routine spins over the
	// ready-frame queue and is booted at startup (AM, AM-enabled).
	SchedBackground
	// SchedMessage: the scheduler runs as low-priority scheduling
	// messages posted when the ready queue becomes non-empty (OAM).
	SchedMessage
)

// InterruptKind is the backend's interrupt discipline around threads.
type InterruptKind int

const (
	// IntNone: threads never toggle interrupts (MD, OAM — inlets share
	// the computation priority, so there is nothing to window).
	IntNone InterruptKind = iota
	// IntPulse: a brief EI;DI pulse at the top of every thread — the
	// paper's unenabled AM discipline (§2.4).
	IntPulse
	// IntEnabled: interrupts stay enabled during threads except a DI/EI
	// guard around continuation-vector access — the Figure 2 enabled
	// variant.
	IntEnabled
)

// Caps declares what a backend's code generator and runtime actually
// need to know: every former `impl == Impl*` conditional in codegen,
// the cluster driver and the machine now branches on one of these
// fields, so a new backend is a registry entry, not a scatter of enum
// checks.
type Caps struct {
	// InletPri is the hardware priority at which user inlets run.
	InletPri int64
	// RCV: frames carry a remote continuation vector (4-word header,
	// per-frame ready-thread list). Without it frames have a 2-word
	// header and enabled threads push onto the global LCV (MD §3.1).
	RCV bool
	// Scheduler picks how ready frames are activated.
	Scheduler SchedulerKind
	// Interrupts is the thread-body interrupt discipline.
	Interrupts InterruptKind
	// StaticOpt: the §2.3 message-driven static optimizations
	// (fall-through transfer, suspend conversion) apply, subject to
	// Options.NoMDOptimize.
	StaticOpt bool
	// DirectTransfer: inlets pass control directly to DirectOnly
	// threads instead of posting them (OAM's optimistic path).
	DirectTransfer bool
	// NICInlets: high-priority execution (inlets and system handlers)
	// runs on a per-node NIC engine with its own I/D cache; the
	// machine splits the reference trace by locus.
	NICInlets bool
	// DirectAccess: remote I-structure reads/writes are serviced
	// against the owning node's memory at delivery time, bypassing
	// inlet dispatch (Active Access).
	DirectAccess bool
}

// HeaderWords returns the frame header size implied by the caps.
func (c Caps) HeaderWords() int {
	if c.RCV {
		return amHeaderWords
	}
	return mdHeaderWords
}

// Backend is one registry entry: a backend's identity (wire name,
// display name, table tag) plus its capability declaration.
type Backend struct {
	Impl Impl
	// Name is the canonical wire/CLI name ("md", "am", "am-enabled",
	// "oam", "offload", "aa").
	Name string
	// Display is the presentation name used in tables, store
	// descriptors and result documents ("MD", "AM", "AM-enabled", ...).
	// It is part of the persisted wire format: existing backends'
	// display names must never change.
	Display string
	// Tag is the short table tag.
	Tag string
	// Aliases lists extra accepted spellings ("" means "default when
	// the field is absent").
	Aliases []string
	Caps    Caps
}

// amCaps is the shared capability set of the AM family.
var amCaps = Caps{
	InletPri:   machine.High,
	RCV:        true,
	Scheduler:  SchedBackground,
	Interrupts: IntPulse,
}

// registry lists every backend in canonical (display/report) order.
var registry = []*Backend{
	{Impl: ImplMD, Name: "md", Display: "MD", Tag: "MD", Aliases: []string{""},
		Caps: Caps{InletPri: machine.Low, Scheduler: SchedNone, Interrupts: IntNone, StaticOpt: true}},
	{Impl: ImplAM, Name: "am", Display: "AM", Tag: "AM", Caps: amCaps},
	{Impl: ImplAMEnabled, Name: "am-enabled", Display: "AM-enabled", Tag: "AM",
		Caps: Caps{InletPri: machine.High, RCV: true, Scheduler: SchedBackground, Interrupts: IntEnabled}},
	{Impl: ImplOAM, Name: "oam", Display: "OAM", Tag: "OAM",
		Caps: Caps{InletPri: machine.Low, RCV: true, Scheduler: SchedMessage, Interrupts: IntNone, DirectTransfer: true}},
	{Impl: ImplOffload, Name: "offload", Display: "offload", Tag: "OFF",
		Caps: func() Caps { c := amCaps; c.NICInlets = true; return c }()},
	{Impl: ImplAA, Name: "aa", Display: "aa", Tag: "AA",
		Caps: func() Caps { c := amCaps; c.DirectAccess = true; return c }()},
}

var (
	byImpl map[Impl]*Backend
	byName map[string]*Backend
)

func init() {
	byImpl = make(map[Impl]*Backend, len(registry))
	byName = make(map[string]*Backend, len(registry))
	for _, b := range registry {
		byImpl[b.Impl] = b
		byName[b.Name] = b
		// Display names are accepted on input too: normalized requests
		// carry them (e.g. a journaled job whose impl field was rewritten
		// to "MD"), and parsing must round-trip them.
		byName[b.Display] = b
		for _, a := range b.Aliases {
			byName[a] = b
		}
	}
}

// Backends returns the registry in canonical order. The slice is
// shared; callers must not mutate it.
func Backends() []*Backend { return registry }

// BackendNames returns every canonical wire name in registry order.
func BackendNames() []string {
	names := make([]string, len(registry))
	for i, b := range registry {
		names[i] = b.Name
	}
	return names
}

// Backend returns the registry entry for the implementation, or nil for
// an unknown value.
func (i Impl) Backend() *Backend { return byImpl[i] }

// Caps returns the implementation's capability declaration. Unknown
// values get the zero Caps, which codegen rejects at Compile.
func (i Impl) Caps() Caps {
	if b := byImpl[i]; b != nil {
		return b.Caps
	}
	return Caps{}
}

// Name returns the canonical wire name ("md", "am", ...).
func (i Impl) Name() string {
	if b := byImpl[i]; b != nil {
		return b.Name
	}
	return fmt.Sprintf("impl(%d)", int(i))
}

// Registered reports whether the value names a known backend.
func (i Impl) Registered() bool { return byImpl[i] != nil }

// knownNames renders the accepted backend names for error messages.
func knownNames() string { return strings.Join(BackendNames(), ", ") }

// ParseImpl resolves a wire/CLI backend name against the registry. The
// empty string resolves to MD (the historical default for an absent
// field).
func ParseImpl(s string) (Impl, error) {
	if b, ok := byName[s]; ok {
		return b.Impl, nil
	}
	return 0, fmt.Errorf("unknown impl %q (known backends: %s)", s, knownNames())
}

// ParseImpls resolves a comma-separated list of backend names,
// rejecting duplicates. An empty list is an error: callers supply their
// own defaults.
func ParseImpls(list string) ([]Impl, error) {
	var impls []Impl
	seen := make(map[Impl]bool)
	for _, f := range strings.Split(list, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		impl, err := ParseImpl(f)
		if err != nil {
			return nil, err
		}
		if seen[impl] {
			return nil, fmt.Errorf("duplicate impl %q", f)
		}
		seen[impl] = true
		impls = append(impls, impl)
	}
	if len(impls) == 0 {
		return nil, fmt.Errorf("no impls given (known backends: %s)", knownNames())
	}
	return impls, nil
}

// SortImpls orders implementations by registry (canonical report)
// order; unknown values sort last by numeric value.
func SortImpls(impls []Impl) {
	pos := make(map[Impl]int, len(registry))
	for i, b := range registry {
		pos[b.Impl] = i
	}
	sort.SliceStable(impls, func(a, b int) bool {
		pa, oka := pos[impls[a]]
		pb, okb := pos[impls[b]]
		if oka != okb {
			return oka
		}
		if !oka {
			return impls[a] < impls[b]
		}
		return pa < pb
	})
}
