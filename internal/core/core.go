// Package core implements the paper's primary contribution: two
// implementations of the Berkeley Threaded Abstract Machine (TAM) for a
// J-Machine-like message-driven processor, differing in their scheduling
// hierarchy.
//
//   - The Active Messages (AM) implementation runs inlets as high-priority
//     message handlers that write arguments into frames and post threads
//     through a library routine; a low-priority software scheduler
//     activates one frame at a time, running all of its enabled threads
//     (a quantum) to exploit data locality.
//
//   - The Message-Driven (MD) implementation uses the hardware message
//     queue as the task queue: inlets run at low priority and jump
//     directly to the threads they enable, arguments are consumed straight
//     from queue memory, and the only high-priority code is the system
//     handlers (frame allocation, I-structure access).
//
// Both backends compile the same TAM program representation (package-level
// Program/Codeblock/Inlet/Thread types) into simulated machine code, so
// the differences in instruction counts, memory traffic and cache
// behaviour measured by the paper arise from real code generation rather
// than modelling constants.
package core

import (
	"fmt"

	"jmtam/internal/machine"
	"jmtam/internal/mem"
	"jmtam/internal/queue"
)

// Impl selects a TAM backend.
type Impl int

// Backends. ImplAM is the paper's (unenabled) Active Messages
// implementation: interrupts are enabled only briefly at the top of each
// thread, which models multiprocessor behaviour most accurately (§2.4).
// ImplAMEnabled leaves interrupts enabled except around continuation-
// vector access, exhibiting the uniprocessor anomaly of Figure 2.
// ImplMD is the message-driven implementation.
const (
	ImplAM Impl = iota
	ImplMD
	ImplAMEnabled
	// ImplOAM is the hybrid of §2.4 in the style of Optimistic Active
	// Messages [KWW+94]: inlets run at low priority and pass control
	// directly to short (DirectOnly) threads as in the MD
	// implementation, while long threads go through the AM post/
	// scheduler machinery — itself driven by scheduling messages on
	// the low-priority queue rather than a background spin loop.
	ImplOAM
)

// String names the backend (its display name, from the registry).
func (i Impl) String() string {
	if b := i.Backend(); b != nil {
		return b.Display
	}
	return fmt.Sprintf("Impl(%d)", int(i))
}

// Short returns the short tag used in tables.
func (i Impl) Short() string {
	if b := i.Backend(); b != nil {
		return b.Tag
	}
	return "AM"
}

// Runtime global addresses in the system-data segment. The first words
// of system data hold the runtime's globals: the AM ready-frame queue
// head, the MD local continuation vector and its top pointer, allocator
// state, and the program result area.
const (
	GReadyHead  = mem.SysDataBase + 0  // AM: head of ready-frame list
	GLCVTop     = mem.SysDataBase + 4  // MD: LCV top pointer (byte addr)
	GFrameBump  = mem.SysDataBase + 8  // frame-region bump pointer
	GNodeFree   = mem.SysDataBase + 12 // deferred-node free list
	GNodeBump   = mem.SysDataBase + 16 // deferred-node bump pointer
	GHeapBump   = mem.SysDataBase + 20 // heap-region bump pointer
	GReadyTail  = mem.SysDataBase + 24 // AM: tail of ready-frame list (FIFO)
	GPlaceNext  = mem.SysDataBase + 28 // multi-node: round-robin placement cursor
	GResultBase = mem.SysDataBase + 256
	ResultWords = 64

	// The MD implementation's LCV: a small, hot array in system data.
	GLCVBase     = mem.SysDataBase + 1024
	LCVCapWords  = 2048
	descAreaBase = GLCVBase + LCVCapWords*mem.WordBytes
	descAreaEnd  = mem.SysDataBase + machine.GlobalsWords*mem.WordBytes
)

// nodePoolBase is where I-structure deferred-reader nodes live: after the
// runtime globals and the two hardware message queues.
const nodePoolBase = mem.SysDataBase +
	machine.GlobalsWords*mem.WordBytes +
	2*queue.DefaultCapWords*mem.WordBytes

// Frame header layout (byte offsets). The AM implementation keeps the
// frame's ready-thread list (the "remote continuation vector") inside the
// frame: fhRCVTail/fhRCVBase delimit it and fhFlags records membership in
// the ready-frame queue. The MD implementation eliminates the RCV
// entirely, so its frames carry only the descriptor pointer and free-list
// link (paper §3.1: "eliminating the remote continuation vector").
const (
	fhDesc    = 0
	fhLink    = 4
	fhRCVTail = 8
	fhFlags   = 12

	amHeaderWords = 4
	mdHeaderWords = 2
)

// Descriptor layout (byte offsets). Descriptors are materialized in
// system data and read by the frame-allocation handler.
const (
	dFrameWords = 0
	dNumCounts  = 4
	dFreeHead   = 8
	dRCVOff     = 12
	dCounts     = 16 // initial entry counts, one word each
)

// deferred-reader node layout (byte offsets), 4 words per node.
const (
	nNext  = 0
	nPri   = 4
	nInlet = 8
	nFrame = 12

	nodeBytes = 16
)

// MappingRow is one row of the paper's Table 1: how each TAM mechanism
// maps onto the J-Machine under the two implementations.
type MappingRow struct {
	Mechanism string
	AM        string
	MD        string
}

// Mapping returns Table 1 of the paper.
func Mapping() []MappingRow {
	return []MappingRow{
		{"inlet", "high priority message handler", "low priority message handler"},
		{"post from inlet", "place thread in frame", "jump directly to thread"},
		{"activation of frame", "low priority library routine", "n/a"},
		{"threads", "low priority code", "low priority code"},
		{"fork from thread", "jump or push onto LCV", "jump or push onto LCV"},
		{"system routines", "high priority message handlers", "high priority message handlers"},
	}
}

// inletPri returns the hardware priority at which inlets run, from the
// backend's capability declaration.
func (i Impl) inletPri() int64 { return i.Caps().InletPri }

// headerWords returns the frame header size for the backend.
func (i Impl) headerWords() int { return i.Caps().HeaderWords() }

// Placement selects the frame/heap placement policy for multi-node
// runs: where falloc and halloc requests are sent, and therefore which
// node owns (allocates and serves) the resulting frame or I-structure.
// Ignored on a uniprocessor.
type Placement int

const (
	// PlaceRoundRobin scatters allocations across the mesh: each node
	// keeps a cursor (GPlaceNext) and sends successive falloc/halloc
	// requests to successive nodes. This is the default, approximating
	// the flat work distribution of the paper's J-Machine runs.
	PlaceRoundRobin Placement = iota
	// PlaceLocal sends every allocation request to the requesting
	// node, so activation trees spread only through explicit FAllocOn
	// placement (locality-affinity: children inherit the parent's
	// node unless told otherwise).
	PlaceLocal
)

// String names the placement policy.
func (p Placement) String() string {
	switch p {
	case PlaceRoundRobin:
		return "round-robin"
	case PlaceLocal:
		return "local"
	}
	return fmt.Sprintf("Placement(%d)", int(p))
}

// ParsePlacement parses a placement-policy name as accepted by the
// command-line tools ("round-robin"/"rr" or "local").
func ParsePlacement(s string) (Placement, error) {
	switch s {
	case "round-robin", "rr", "roundrobin":
		return PlaceRoundRobin, nil
	case "local":
		return PlaceLocal, nil
	}
	return 0, fmt.Errorf("core: unknown placement %q (want round-robin or local)", s)
}

// partitionShifts returns the home-node shift for the frame and heap
// segments at the given node count: a segment address's owning node is
// (addr >> shift) & (nodes-1). Each node owns one 2^shift-byte chunk of
// the shared segment; the segment bases are segment-size aligned, so
// node 0's chunk starts at the base. nodes must be a power of two that
// divides both segment sizes.
func partitionShifts(nodes int) (frameShift, heapShift uint) {
	frameShift = log2u(uint32(mem.DefaultFrameWords)*mem.WordBytes) - log2u(uint32(nodes))
	heapShift = log2u(uint32(mem.DefaultHeapWords)*mem.WordBytes) - log2u(uint32(nodes))
	return frameShift, heapShift
}

func log2u(v uint32) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
