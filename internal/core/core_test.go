package core

import (
	"fmt"
	"testing"

	"jmtam/internal/word"
)

// sumLoopProgram builds a single-activation program that sums 1..n with a
// self-forking loop thread, exercising inlets, TakeArg/ReloadArg,
// DirectOnly fall-through, ForkEnd loops and multi-exit threads.
func sumLoopProgram(n int64) *Program {
	cb := &Codeblock{Name: "sum", NumSlots: 3}
	var tInit, tLoop *Thread
	tInit = cb.AddThread("init", -1, func(b *Body) {
		b.ReloadArg(0, 2) // n
		b.MovI(1, 0)
		b.STSlot(0, 1) // acc = 0
		b.MovI(1, 1)
		b.STSlot(1, 1) // i = 1
		b.ForkEnd(tLoop)
	})
	tLoop = cb.AddThread("loop", -1, func(b *Body) {
		b.LDSlot(1, 1) // i
		b.LDSlot(2, 2) // n
		b.BGT(1, 2, "sum.loop.done")
		b.LDSlot(0, 0)
		b.Add(0, 0, 1)
		b.STSlot(0, 0)
		b.AddI(1, 1, 1)
		b.STSlot(1, 1)
		b.ForkEnd(tLoop)
		b.Case("sum.loop.done")
		b.LDSlot(0, 0)
		b.StoreResult(0, 0)
		b.Stop()
	})
	start := cb.AddInlet("start", func(b *Body) {
		b.TakeArg(0, 2, 0, tInit)
		b.PostEnd(tInit)
	})
	return &Program{
		Name:   "sumloop",
		Blocks: []*Codeblock{cb},
		Setup: func(h *Host) error {
			f := h.AllocFrame(cb)
			return h.Start(start, f, word.Int(n))
		},
		Verify: func(h *Host) error {
			want := n * (n + 1) / 2
			if got := h.Result(0).AsInt(); got != want {
				return fmt.Errorf("sum = %d, want %d", got, want)
			}
			return nil
		},
	}
}

// callProgram builds a two-codeblock program in which main allocates a
// child activation, sends it an argument and a return continuation, and
// the child replies with 2n, exercising FAlloc/Release, SendMsg,
// SendMsgDyn and InletAddr.
func callProgram(n int64) *Program {
	child := &Codeblock{Name: "child", NumSlots: 3}
	var tBody *Thread
	tBody = child.AddThread("body", -1, func(b *Body) {
		b.ReloadArg(0, 0) // n
		b.ReloadArg(1, 1) // return inlet
		b.ReloadArg(2, 2) // return frame
		b.MulI(0, 0, 2)
		b.SendMsgDyn(1, 2, 0)
		b.ReleaseFrame()
		b.Stop()
	})
	tBody.DirectOnly = true
	childStart := child.AddInlet("start", func(b *Body) {
		b.TakeArg(0, 0, 0, tBody)
		b.TakeArg(1, 1, 1, tBody)
		b.TakeArg(2, 2, 2, tBody)
		b.PostEnd(tBody)
	})

	main := &Codeblock{Name: "main", NumSlots: 3}
	var tCall, tSend *Thread
	var iFrame, iResult *Inlet
	tCall = main.AddThread("call", -1, func(b *Body) {
		b.FAlloc(child, iFrame)
		b.Stop()
	})
	tSend = main.AddThread("send", -1, func(b *Body) {
		b.ReloadArg(0, 2) // child frame
		b.LDSlot(1, 1)    // n
		b.InletAddr(2, iResult)
		b.SendMsg(childStart, 0, 1, 2, 6)
		b.Stop()
	})
	tSend.DirectOnly = true
	start := main.AddInlet("start", func(b *Body) {
		b.TakeArg(0, 1, 0, tCall)
		b.PostEnd(tCall)
	})
	iFrame = main.AddInlet("gotframe", func(b *Body) {
		b.TakeArg(0, 2, 0, tSend)
		b.PostEnd(tSend)
	})
	iResult = main.AddInlet("result", func(b *Body) {
		b.Arg(0, 0)
		b.StoreResult(0, 0)
		b.EndInlet()
	})
	return &Program{
		Name:   "callret",
		Blocks: []*Codeblock{main, child},
		Setup: func(h *Host) error {
			f := h.AllocFrame(main)
			return h.Start(start, f, word.Int(n))
		},
		Verify: func(h *Host) error {
			want := 2 * n
			if got := h.Result(0).AsInt(); got != want {
				return fmt.Errorf("result = %d, want %d", got, want)
			}
			return nil
		},
	}
}

// istrProgram exercises split-phase I-structure reads, including the
// deferred path (the second fetch targets a cell that is written later
// by a producer thread) and a synchronizing thread with entry count 2.
func istrProgram(aVal int64) *Program {
	cb := &Codeblock{Name: "istr", NumCounts: 1, InitCounts: []int64{2}, NumSlots: 4}
	var tReq, tProd, tSum *Thread
	var iA, iB *Inlet
	tReq = cb.AddThread("req", -1, func(b *Body) {
		b.LDSlot(0, 2)
		b.IFetch(0, iA)
		b.LDSlot(0, 3)
		b.IFetch(0, iB)
		b.ForkEnd(tProd)
	})
	tProd = cb.AddThread("prod", -1, func(b *Body) {
		b.MovI(0, 99)
		b.LDSlot(1, 3)
		b.IStore(1, 0)
		b.Stop()
	})
	tSum = cb.AddThread("sum", 0, func(b *Body) {
		b.LDSlot(0, 0)
		b.LDSlot(1, 1)
		b.Add(0, 0, 1)
		b.StoreResult(0, 0)
		b.Stop()
	})
	iA = cb.AddInlet("gotA", func(b *Body) {
		b.Arg(0, 0)
		b.STSlot(0, 0)
		b.PostEnd(tSum)
	})
	iB = cb.AddInlet("gotB", func(b *Body) {
		b.Arg(0, 0)
		b.STSlot(1, 0)
		b.PostEnd(tSum)
	})
	start := cb.AddInlet("start", func(b *Body) {
		b.Arg(0, 0)
		b.STSlot(2, 0)
		b.Arg(0, 1)
		b.STSlot(3, 0)
		b.PostEnd(tReq)
	})
	return &Program{
		Name:   "istr",
		Blocks: []*Codeblock{cb},
		Setup: func(h *Host) error {
			ha := h.AllocIStruct(1)
			hb := h.AllocIStruct(1)
			h.PokeInt(ha, aVal) // already present
			f := h.AllocFrame(cb)
			return h.Start(start, f, word.Ptr(ha), word.Ptr(hb))
		},
		Verify: func(h *Host) error {
			want := aVal + 99
			if got := h.Result(0).AsInt(); got != want {
				return fmt.Errorf("result = %d, want %d", got, want)
			}
			return nil
		},
	}
}

var allImpls = []Impl{ImplAM, ImplMD, ImplAMEnabled, ImplOAM}

func runProgram(t *testing.T, impl Impl, p *Program) *Sim {
	t.Helper()
	sim, err := Build(impl, p, Options{MaxInstructions: 50_000_000})
	if err != nil {
		t.Fatalf("Build(%v): %v", impl, err)
	}
	if err := sim.Run(); err != nil {
		t.Fatalf("Run(%v): %v", impl, err)
	}
	return sim
}

func TestSumLoop(t *testing.T) {
	for _, impl := range allImpls {
		t.Run(impl.String(), func(t *testing.T) {
			sim := runProgram(t, impl, sumLoopProgram(100))
			if sim.Gran.Threads < 100 {
				t.Errorf("threads = %d, want >= 100", sim.Gran.Threads)
			}
			if sim.Gran.Quanta == 0 {
				t.Error("no quanta recorded")
			}
		})
	}
}

func TestCallReturn(t *testing.T) {
	for _, impl := range allImpls {
		t.Run(impl.String(), func(t *testing.T) {
			runProgram(t, impl, callProgram(21))
		})
	}
}

func TestIStructureDeferred(t *testing.T) {
	for _, impl := range allImpls {
		t.Run(impl.String(), func(t *testing.T) {
			runProgram(t, impl, istrProgram(41))
		})
	}
}

func TestMDExecutesFewerInstructions(t *testing.T) {
	am := runProgram(t, ImplAM, sumLoopProgram(200))
	md := runProgram(t, ImplMD, sumLoopProgram(200))
	if md.M.Instructions() >= am.M.Instructions() {
		t.Errorf("MD executed %d instructions, AM %d; MD should be fewer",
			md.M.Instructions(), am.M.Instructions())
	}
}

func TestMappingTable(t *testing.T) {
	rows := Mapping()
	if len(rows) != 6 {
		t.Fatalf("Table 1 has %d rows, want 6", len(rows))
	}
	if rows[1].MD != "jump directly to thread" {
		t.Errorf("post row MD = %q", rows[1].MD)
	}
}

func TestImplString(t *testing.T) {
	cases := map[Impl]string{ImplAM: "AM", ImplMD: "MD", ImplAMEnabled: "AM-enabled", Impl(9): "Impl(9)"}
	for impl, want := range cases {
		if got := impl.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(impl), got, want)
		}
	}
	if ImplAMEnabled.Short() != "AM" || ImplMD.Short() != "MD" {
		t.Error("Short() tags wrong")
	}
}
