package core

import (
	"fmt"

	"jmtam/internal/machine"
	"jmtam/internal/mem"
	"jmtam/internal/stats"
	"jmtam/internal/trace"
	"jmtam/internal/word"
)

// Compiled is the reusable product of one backend compilation: the
// runtime (system and user code segments plus system-routine addresses)
// and a snapshot of the layout assigned to the source program's
// codeblocks. A Compiled is immutable after Compile, so a serving
// daemon can cache one per (program, size, impl) and instantiate any
// number of concurrent simulations from it via NewSim — repeat jobs
// skip code generation entirely. Each NewSim call must be given its own
// *Program instance (programs carry per-run Setup/Verify closure state),
// which NewSim binds to the compiled layout.
type Compiled struct {
	Impl Impl
	RT   *Runtime
	Code *machine.CodeStore

	progName  string
	blocks    []compiledBlock
	noMDOpt   bool
	nodes     int
	placement Placement
}

// Nodes returns the node count the artifact was compiled for (1 for
// uniprocessor code).
func (c *Compiled) Nodes() int { return c.nodes }

// compiledBlock snapshots the layout and code addresses assigned to one
// codeblock during compilation, keyed for rebinding by structural
// position.
type compiledBlock struct {
	name        string
	frameWords  int
	descAddr    uint32
	inletAddrs  []uint32
	threadAddrs []uint32
}

// Compile runs code generation for prog under the given backend and
// returns the immutable compilation artifact. Only Options fields that
// affect code generation (NoMDOptimize, Nodes, Placement) are consulted.
// Code-generation panics (macro misuse in program bodies) are converted
// into errors.
func Compile(impl Impl, prog *Program, opt Options) (c *Compiled, err error) {
	defer func() {
		if r := recover(); r != nil {
			c, err = nil, fmt.Errorf("core: building %s/%v: %v", prog.Name, impl, r)
		}
	}()
	if err := prog.validate(); err != nil {
		return nil, err
	}
	nodes := opt.Nodes
	if nodes < 1 {
		nodes = 1
	}
	if nodes&(nodes-1) != 0 || nodes > 64 {
		return nil, fmt.Errorf("core: %d nodes: node count must be a power of two, at most 64", nodes)
	}
	rt := newRuntime(impl, nodes, opt.Placement)
	rt.mdOpt = !opt.NoMDOptimize

	// Lay out every descriptor before emitting code: FAlloc sites need
	// target descriptor addresses.
	addr := uint32(descAreaBase)
	for _, cb := range prog.Blocks {
		fw, rcvOff := cb.layout(impl)
		cb.frameWords = fw
		_ = rcvOff
		cb.descAddr = addr
		addr += uint32(4+cb.NumCounts) * mem.WordBytes
		if addr > descAreaEnd {
			return nil, fmt.Errorf("core: descriptor area overflow in %s", prog.Name)
		}
		// Reset per-build codegen state (a Program may be compiled by
		// several backends in one process).
		cb.needSusp = false
		cb.suspLabel = cb.Name + ".$susp"
		for _, t := range cb.threads {
			t.emitted = false
			t.entryLCVEmpty = false
			t.postCount = 0
			t.addr = 0
		}
		for _, in := range cb.inlets {
			in.addr = 0
		}
	}

	for _, cb := range prog.Blocks {
		rt.emitCodeblock(cb)
	}
	if err := rt.User.Finish(); err != nil {
		return nil, err
	}

	c = &Compiled{
		Impl:      impl,
		RT:        rt,
		Code:      machine.NewCodeStore(rt.Sys.Code(), rt.User.Code()),
		progName:  prog.Name,
		noMDOpt:   opt.NoMDOptimize,
		nodes:     nodes,
		placement: opt.Placement,
	}
	for _, cb := range prog.Blocks {
		b := compiledBlock{
			name:       cb.Name,
			frameWords: cb.frameWords,
			descAddr:   cb.descAddr,
		}
		for _, in := range cb.inlets {
			b.inletAddrs = append(b.inletAddrs, in.addr)
		}
		for _, t := range cb.threads {
			b.threadAddrs = append(b.threadAddrs, t.addr)
		}
		c.blocks = append(c.blocks, b)
	}
	return c, nil
}

// bind copies the compiled layout onto prog, which must be structurally
// identical to the program the artifact was compiled from (same
// codeblock, inlet and thread sequence — true for any program produced
// by the same deterministic builder at the same argument). After
// binding, the program's inlet addresses and frame layouts are valid
// for Host.Start and Host.AllocFrame against the compiled code.
func (c *Compiled) bind(prog *Program) error {
	if prog.Name != c.progName {
		return fmt.Errorf("core: compiled %s cannot bind program %s", c.progName, prog.Name)
	}
	if len(prog.Blocks) != len(c.blocks) {
		return fmt.Errorf("core: compiled %s: %d codeblocks, program has %d",
			c.progName, len(c.blocks), len(prog.Blocks))
	}
	for i, cb := range prog.Blocks {
		b := &c.blocks[i]
		if cb.Name != b.name || len(cb.inlets) != len(b.inletAddrs) ||
			len(cb.threads) != len(b.threadAddrs) {
			return fmt.Errorf("core: compiled %s: codeblock %d shape mismatch (%s vs %s)",
				c.progName, i, b.name, cb.Name)
		}
		cb.frameWords = b.frameWords
		cb.descAddr = b.descAddr
		for j, in := range cb.inlets {
			in.addr = b.inletAddrs[j]
		}
		for j, t := range cb.threads {
			t.addr = b.threadAddrs[j]
			t.emitted = true
		}
	}
	return nil
}

// NewSim instantiates one ready-to-run simulation from the compiled
// artifact: fresh memory, a fresh machine sharing the compiled code
// store, runtime globals and descriptors materialized, the program's
// Setup run, and (for the AM backends) the scheduler booted. Options
// fields affecting code generation are ignored here — they were fixed
// at Compile time. Concurrent NewSim calls on one Compiled are safe as
// long as each receives its own *Program instance.
func (c *Compiled) NewSim(prog *Program, opt Options) (sim *Sim, err error) {
	defer func() {
		if r := recover(); r != nil {
			sim, err = nil, fmt.Errorf("core: building %s/%v: %v", prog.Name, c.Impl, r)
		}
	}()
	if err := c.bind(prog); err != nil {
		return nil, err
	}
	if c.nodes > 1 {
		return nil, fmt.Errorf("core: %s/%v compiled for %d nodes; use NewCluster",
			prog.Name, c.Impl, c.nodes)
	}
	impl := c.Impl

	// Pooled: a sweep builds one Sim per (workload, impl) cell, and
	// zeroing fresh 24 MB segments per cell dominated the record phase.
	// Sim.Close returns the memory once its statistics are extracted.
	m := mem.GetDefault()
	mach := machine.NewMachine(m, c.Code, machine.Config{
		QueueCapWords:     opt.QueueCapWords,
		CountQueueWrites:  !opt.NoQueueWriteTrace,
		PairedQueueWrites: opt.PairedQueueWrites,
		MaxInstructions:   opt.MaxInstructions,
	})

	// Initialize runtime globals and materialize descriptors (untraced:
	// the loader, not the simulated program, performs these writes).
	m.Store(GFrameBump, word.Ptr(mem.FrameBase))
	m.Store(GNodeBump, word.Ptr(nodePoolBase))
	m.Store(GHeapBump, word.Ptr(mem.HeapBase))
	m.Store(GNodeFree, word.Int(0))
	m.Store(GReadyHead, word.Int(0))
	m.Store(GReadyTail, word.Int(0))
	m.Store(GLCVBase, word.Int(0)) // LCV bottom sentinel
	m.Store(GLCVTop, word.Ptr(GLCVBase+4))
	for _, cb := range prog.Blocks {
		_, rcvOff := cb.layout(impl)
		m.Store(cb.descAddr+dFrameWords, word.Int(int64(cb.frameWords)))
		m.Store(cb.descAddr+dNumCounts, word.Int(int64(cb.NumCounts)))
		m.Store(cb.descAddr+dFreeHead, word.Int(0))
		m.Store(cb.descAddr+dRCVOff, word.Int(rcvOff))
		for i, cnt := range cb.InitCounts {
			m.Store(cb.descAddr+dCounts+uint32(4*i), word.Int(cnt))
		}
	}

	sim = &Sim{
		Impl:      impl,
		Prog:      prog,
		RT:        c.RT,
		M:         mach,
		Collector: &trace.Collector{},
		Gran:      &stats.Granularity{},
		Obs:       opt.Obs,
	}
	sim.Host = newUniHost(impl, mach)

	// Attach the sink before Setup runs so boot-time message
	// injections are observed (their flow arrows start at ts 0).
	if sim.Obs != nil {
		mach.SetSink(sim.Obs)
		sim.Gran.Sink = sim.Obs
		if sim.Obs.Events != nil {
			sim.Obs.Events.SetProcessName(int32(mach.Node()),
				fmt.Sprintf("%s/%s node %d", prog.Name, impl, mach.Node()))
		}
	}

	if prog.Setup != nil {
		if err := prog.Setup(sim.Host); err != nil {
			return nil, fmt.Errorf("core: %s setup: %w", prog.Name, err)
		}
	}
	if impl.Caps().Scheduler == SchedBackground {
		// Backends with a background scheduler enter its loop at boot;
		// the others are driven entirely by messages.
		mach.Boot(c.RT.schedAddr)
	}
	return sim, nil
}
