package core

import (
	"jmtam/internal/asm"
	"jmtam/internal/isa"
	"jmtam/internal/word"
)

// Runtime holds the state of one backend compilation: the two code
// segments, the addresses of system routines, and the descriptor layout
// for every codeblock of the program being compiled.
type Runtime struct {
	Impl Impl
	Sys  *asm.Segment
	User *asm.Segment

	// System routine addresses, valid after emitSystem.
	fallocAddr  uint32
	releaseAddr uint32
	ireadAddr   uint32
	iwriteAddr  uint32
	hallocAddr  uint32
	postAddr    uint32 // AM only
	schedAddr   uint32 // AM only: scheduler entry (Boot target)
	popAddr     uint32 // AM only: per-thread pop loop (Stop target)

	// mdOpt enables the §2.3 static optimizations in the MD backend.
	mdOpt bool

	// Multi-node code generation. nodes > 1 turns the system handlers
	// and the Body message macros into mesh-aware code: requests are
	// routed to the node owning the addressed frame or heap cell, and
	// replies to the node owning the continuation frame. The frame and
	// heap segments are shared by all nodes but partitioned for
	// allocation into nodes equal power-of-two chunks; a segment
	// address's home node is (addr >> shift) & (nodes-1).
	nodes      int
	placement  Placement
	frameShift uint
	heapShift  uint

	labelSeq int
}

// newRuntime creates a runtime for the backend and emits its system code.
func newRuntime(impl Impl, nodes int, placement Placement) *Runtime {
	if nodes < 1 {
		nodes = 1
	}
	rt := &Runtime{
		Impl: impl, mdOpt: true,
		nodes: nodes, placement: placement,
		Sys: asm.NewSys(), User: asm.NewUser(),
	}
	rt.frameShift, rt.heapShift = partitionShifts(nodes)
	rt.emitSystem()
	return rt
}

// multi reports whether mesh-aware code is being generated.
func (rt *Runtime) multi() bool { return rt.nodes > 1 }

// routeReplySys emits the home-node computation for the continuation
// frame held in R4, directing the message being built to the frame's
// owner. Clobbers R7. No-op on a uniprocessor.
func (rt *Runtime) routeReplySys(s *asm.Segment) {
	if !rt.multi() {
		return
	}
	s.ShrI(7, 4, int64(rt.frameShift))
	s.AndI(7, 7, int64(rt.nodes-1))
	s.MsgDest(7)
}

// uniq generates a unique local label.
func (rt *Runtime) uniq(prefix string) string {
	rt.labelSeq++
	return prefix + "$" + itoa(rt.labelSeq)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// emitSystem assembles the backend's system code: the frame-allocation,
// frame-release, I-structure read and I-structure write handlers (high
// priority in both backends), and — for the AM backends — the post
// library routine and the background scheduler loop.
func (rt *Runtime) emitSystem() {
	s := rt.Sys

	rt.fallocAddr = rt.emitFAlloc()
	rt.releaseAddr = rt.emitRelease()
	rt.ireadAddr = rt.emitIRead()
	rt.iwriteAddr = rt.emitIWrite()
	rt.hallocAddr = rt.emitHAlloc()

	switch rt.Impl.Caps().Scheduler {
	case SchedBackground:
		rt.postAddr = rt.emitPost()
		rt.schedAddr, rt.popAddr = rt.emitScheduler()
	case SchedMessage:
		// The message-driven scheduler is emitted first: post references
		// rt.schedAddr when it enqueues a scheduling message.
		rt.schedAddr, rt.popAddr = rt.emitOAMScheduler()
		rt.postAddr = rt.emitPost()
	}

	if err := s.Finish(); err != nil {
		panic(err)
	}
}

// emitFAlloc emits the frame-allocation handler.
//
// Request message: [handler, desc, replyPri, replyInlet, replyFrame].
// Reply message:   [replyInlet, replyFrame, newFrame].
//
// The handler pops a frame from the descriptor's free list (or bumps the
// global frame pointer), initializes the header and the entry counts from
// the descriptor, and replies with the frame pointer. Under the MD
// backend the RCV fields do not exist and are not initialized.
func (rt *Runtime) emitFAlloc() uint32 {
	s := rt.Sys
	addr := s.Label("sys.falloc")
	s.LD(0, isa.RMsg, 4)  // R0 = desc
	s.LD(1, 0, dFreeHead) // R1 = free head
	s.BNZ(1, "fa.reuse")
	s.LDAbs(1, GFrameBump)
	s.LD(2, 0, dFrameWords)
	s.MulI(2, 2, 4)
	s.Add(2, 1, 2)
	if rt.multi() {
		// The new frame must fit this node's partition chunk: same
		// chunk iff the shifted addresses of its first and last byte
		// agree (chunks are 2^frameShift-aligned, so no mask needed).
		s.SubI(3, 2, 4)
		s.ShrI(3, 3, int64(rt.frameShift))
		s.ShrI(4, 1, int64(rt.frameShift))
		s.BEQ(3, 4, "fa.fit")
		s.Trap(TrapPartitionOverflow)
		s.Label("fa.fit")
	}
	s.STAbs(GFrameBump, 2)
	s.BR("fa.init")
	s.Label("fa.reuse")
	s.LD(2, 1, fhLink)
	s.ST(0, dFreeHead, 2)
	s.Label("fa.init")
	s.ST(1, fhDesc, 0)
	if rt.Impl.Caps().RCV {
		s.LD(2, 0, dRCVOff)
		s.Add(2, 1, 2)
		s.MovI(3, 0)
		s.ST(2, 0, 3) // bottom sentinel terminating the pop loop
		s.AddI(2, 2, 4)
		s.ST(1, fhRCVTail, 2)
		s.ST(1, fhFlags, 3)
	}
	// Initialize entry counts from the descriptor.
	s.LD(2, 0, dNumCounts)
	s.MovI(3, 0)
	s.Label("fa.loop")
	s.BGE(3, 2, "fa.done")
	s.MulI(4, 3, 4)
	s.Add(6, 0, 4)
	s.LD(6, 6, dCounts)
	s.Add(7, 1, 4)
	s.ST(7, int64(rt.Impl.headerWords())*4, 6)
	s.AddI(3, 3, 1)
	s.BR("fa.loop")
	s.Label("fa.done")
	s.LD(2, isa.RMsg, 8) // replyPri
	s.MsgR(2)
	s.LD(3, isa.RMsg, 12)
	s.SendW(3)
	s.LD(4, isa.RMsg, 16)
	rt.routeReplySys(s)
	s.SendW(4)
	s.SendW(1)
	s.SendE()
	s.Suspend()
	return addr
}

// emitRelease emits the frame-release handler.
// Request message: [handler, frame].
func (rt *Runtime) emitRelease() uint32 {
	s := rt.Sys
	addr := s.Label("sys.release")
	s.LD(0, isa.RMsg, 4) // frame
	s.LD(1, 0, fhDesc)
	s.LD(2, 1, dFreeHead)
	s.ST(0, fhLink, 2)
	s.ST(1, dFreeHead, 0)
	s.Suspend()
	return addr
}

// emitIRead emits the I-structure read handler.
//
// Request message: [handler, heapAddr, replyPri, replyInlet, replyFrame].
// If the cell is present, the value is sent to the continuation inlet;
// otherwise the continuation is chained onto the cell's deferred-reader
// list (paper's split-phase global reads).
func (rt *Runtime) emitIRead() uint32 {
	s := rt.Sys
	addr := s.Label("sys.iread")
	s.LD(0, isa.RMsg, 4) // heap addr
	s.LD(1, 0, 0)        // cell
	s.BTag(1, uint8(word.TagEmpty), "ir.empty")
	s.BTag(1, uint8(word.TagDefer), "ir.chain")
	s.LD(2, isa.RMsg, 8) // replyPri
	s.MsgR(2)
	s.LD(3, isa.RMsg, 12)
	s.SendW(3)
	s.LD(4, isa.RMsg, 16)
	rt.routeReplySys(s)
	s.SendW(4)
	s.SendW(1)
	s.SendE()
	s.Suspend()
	s.Label("ir.empty")
	s.MovI(2, 0)
	s.BR("ir.alloc")
	s.Label("ir.chain")
	s.TagSet(2, 1, uint8(word.TagPtr))
	s.Label("ir.alloc")
	s.LDAbs(3, GNodeFree)
	s.BNZ(3, "ir.pop")
	s.LDAbs(3, GNodeBump)
	s.LEA(4, 3, nodeBytes)
	s.STAbs(GNodeBump, 4)
	s.BR("ir.fill")
	s.Label("ir.pop")
	s.LD(4, 3, nNext)
	s.STAbs(GNodeFree, 4)
	s.Label("ir.fill")
	s.ST(3, nNext, 2)
	s.LD(4, isa.RMsg, 8)
	s.ST(3, nPri, 4)
	s.LD(4, isa.RMsg, 12)
	s.ST(3, nInlet, 4)
	s.LD(4, isa.RMsg, 16)
	s.ST(3, nFrame, 4)
	s.TagSet(2, 3, uint8(word.TagDefer))
	s.ST(0, 0, 2)
	s.Suspend()
	return addr
}

// emitIWrite emits the I-structure write handler.
//
// Request message: [handler, heapAddr, value]. Writing a present cell is
// an error (single-assignment); writing a deferred cell drains the
// deferred-reader chain, sending the value to every waiting continuation.
func (rt *Runtime) emitIWrite() uint32 {
	s := rt.Sys
	addr := s.Label("sys.iwrite")
	s.LD(0, isa.RMsg, 4)
	s.LD(1, 0, 0)
	s.BTag(1, uint8(word.TagDefer), "iw.drain")
	s.BTag(1, uint8(word.TagEmpty), "iw.store")
	s.Trap(TrapDoubleWrite)
	s.Label("iw.store")
	s.LD(2, isa.RMsg, 8)
	s.ST(0, 0, 2)
	s.Suspend()
	s.Label("iw.drain")
	s.LD(2, isa.RMsg, 8)
	s.ST(0, 0, 2)
	s.TagSet(3, 1, uint8(word.TagPtr))
	s.Label("iw.loop")
	s.BZ(3, "iw.done")
	s.LD(4, 3, nPri)
	s.MsgR(4)
	s.LD(4, 3, nInlet)
	s.SendW(4)
	s.LD(4, 3, nFrame)
	rt.routeReplySys(s)
	s.SendW(4)
	s.SendW(2)
	s.SendE()
	s.LD(4, 3, nNext)
	s.LDAbs(6, GNodeFree)
	s.ST(3, nNext, 6)
	s.STAbs(GNodeFree, 3)
	s.Mov(3, 4)
	s.BR("iw.loop")
	s.Label("iw.done")
	s.Suspend()
	return addr
}

// Trap codes raised by system code.
const (
	TrapDoubleWrite       = 1 // I-structure written twice
	TrapPartitionOverflow = 2 // multi-node: allocation overflowed the node's chunk
)

// emitHAlloc emits the heap-allocation handler, used for I-structure
// arrays whose size is known only at run time (e.g. quicksort partition
// arrays).
//
// Request message: [handler, words, replyPri, replyInlet, replyFrame].
// Reply message:   [replyInlet, replyFrame, base].
//
// Every allocated word is initialized to the I-structure empty state, so
// split-phase reads of not-yet-written cells defer correctly.
func (rt *Runtime) emitHAlloc() uint32 {
	s := rt.Sys
	addr := s.Label("sys.halloc")
	s.LD(0, isa.RMsg, 4) // words
	s.LDAbs(1, GHeapBump)
	s.MulI(2, 0, 4)
	s.Add(2, 1, 2)
	if rt.multi() {
		// Same partition-chunk check as falloc; a zero-word request
		// allocates nothing and cannot overflow.
		s.BZ(0, "ha.fit")
		s.SubI(3, 2, 4)
		s.ShrI(3, 3, int64(rt.heapShift))
		s.ShrI(4, 1, int64(rt.heapShift))
		s.BEQ(3, 4, "ha.fit")
		s.Trap(TrapPartitionOverflow)
		s.Label("ha.fit")
	}
	s.STAbs(GHeapBump, 2)
	s.TagSet(3, isa.RZ, uint8(word.TagEmpty)) // empty word
	s.Mov(2, 1)
	s.MovI(4, 0)
	s.Label("ha.loop")
	s.BGE(4, 0, "ha.done")
	s.ST(2, 0, 3)
	s.AddI(2, 2, 4)
	s.AddI(4, 4, 1)
	s.BR("ha.loop")
	s.Label("ha.done")
	s.LD(2, isa.RMsg, 8)
	s.MsgR(2)
	s.LD(3, isa.RMsg, 12)
	s.SendW(3)
	s.LD(4, isa.RMsg, 16)
	rt.routeReplySys(s)
	s.SendW(4)
	s.SendW(1)
	s.SendE()
	s.Suspend()
	return addr
}

// emitPost emits the AM post library routine.
//
// Calling convention: R6 = frame, R1 = thread address, R2 = address of
// the thread's entry count (0 for non-synchronizing threads), R7 = link.
// If the thread becomes enabled, its address is appended to the frame's
// ready list and the frame is linked into the global ready-frame queue
// unless already present. This is the "call to library routines to post
// threads and manage the queue of inactive frames" whose elimination is
// one of the MD implementation's main instruction-count benefits (§3.1).
func (rt *Runtime) emitPost() uint32 {
	s := rt.Sys
	addr := s.Label("sys.post")
	s.Mark(isa.MarkPost)
	s.BZ(2, "post.ready")
	s.LD(3, 2, 0)
	s.SubI(3, 3, 1)
	s.ST(2, 0, 3)
	s.BNZ(3, "post.out")
	s.Label("post.ready")
	s.LD(3, 6, fhRCVTail)
	s.Mark(isa.MarkRCVPush)
	s.STPost(3, 1)
	s.ST(6, fhRCVTail, 3)
	s.LD(3, 6, fhFlags)
	s.BNZ(3, "post.out")
	s.MovI(3, 1)
	s.ST(6, fhFlags, 3)
	// Append the frame to the FIFO ready-frame queue (TAM's global
	// list of frames with enabled threads). The scheduler detects the
	// end of the queue by comparing against the tail pointer, so the
	// link word need not be cleared here.
	s.LDAbs(3, GReadyTail)
	s.BZ(3, "post.qempty")
	s.ST(3, fhLink, 6)
	s.BR("post.qtail")
	s.Label("post.qempty")
	s.STAbs(GReadyHead, 6)
	if rt.Impl.Caps().Scheduler == SchedMessage {
		// The OAM scheduler is message-driven: when the ready-frame
		// queue transitions from empty to non-empty, enqueue a
		// low-priority scheduling message so the queued frames run
		// after the current task chain drains.
		s.MsgI(0)
		s.SendWA(rt.schedAddr)
		s.SendE()
	}
	s.Label("post.qtail")
	s.Mark(isa.MarkFrameEnq)
	s.STAbs(GReadyTail, 6)
	s.Label("post.out")
	s.JMP(7)
	return addr
}

// emitOAMScheduler emits the hybrid implementation's scheduler: a
// low-priority message handler that drains the ready-frame queue (an
// activation per frame, popping the frame's ready-thread list exactly as
// the AM scheduler does) and suspends when no frames remain, letting the
// hardware dispatch the next user message. Unlike the AM background
// loop it needs no interrupt windows: inlets run at the same priority,
// so continuation-vector access is naturally atomic.
func (rt *Runtime) emitOAMScheduler() (sched, pop uint32) {
	s := rt.Sys
	sched = s.Label("sys.oamsched")
	s.Label("oam.next")
	s.LDAbs(0, GReadyHead)
	s.BZ(0, "oam.out")
	s.Mark(isa.MarkActivate)
	s.Mov(isa.RFP, 0)
	s.LDAbs(1, GReadyTail)
	s.BNE(0, 1, "oam.mid")
	s.MovI(1, 0)
	s.STAbs(GReadyHead, 1)
	s.STAbs(GReadyTail, 1)
	s.BR("oam.pop")
	s.Label("oam.mid")
	s.LD(1, isa.RFP, fhLink)
	s.STAbs(GReadyHead, 1)
	pop = s.Label("oam.pop")
	s.LD(1, isa.RFP, fhRCVTail)
	s.Mark(isa.MarkRCVPop)
	s.LDPre(3, 1)
	s.BZ(3, "oam.drained")
	s.ST(isa.RFP, fhRCVTail, 1)
	s.JMP(3)
	s.Label("oam.drained")
	s.MovI(1, 0)
	s.ST(isa.RFP, fhFlags, 1)
	s.BR("oam.next")
	s.Label("oam.out")
	s.Suspend()
	return sched, pop
}

// emitScheduler emits the AM background scheduler: an idle loop that
// briefly enables interrupts (so pending inlets run), picks a frame from
// the ready queue, and pops threads from the frame's ready list until it
// drains. It returns the loop entry (Boot target) and the pop address
// that thread Stop macros branch to.
func (rt *Runtime) emitScheduler() (sched, pop uint32) {
	s := rt.Sys
	sched = s.Label("sys.sched")
	s.DI()
	s.Label("sched.idle")
	s.EI()
	s.DI()
	s.LDAbs(0, GReadyHead)
	s.BNZ(0, "sched.go")
	s.Wait()
	s.BR("sched.idle")
	s.Label("sched.go")
	s.Mark(isa.MarkActivate)
	s.Mov(isa.RFP, 0)
	s.LDAbs(1, GReadyTail)
	s.BNE(0, 1, "sched.mid")
	// The frame is the last in the queue: clear head and tail.
	s.MovI(1, 0)
	s.STAbs(GReadyHead, 1)
	s.STAbs(GReadyTail, 1)
	s.BR("sched.pop")
	s.Label("sched.mid")
	s.LD(1, isa.RFP, fhLink)
	s.STAbs(GReadyHead, 1)
	pop = s.Label("sched.pop")
	s.LD(1, isa.RFP, fhRCVTail)
	s.Mark(isa.MarkRCVPop)
	s.LDPre(3, 1)
	s.BZ(3, "sched.drained") // hit the bottom sentinel
	s.ST(isa.RFP, fhRCVTail, 1)
	s.JMP(3)
	s.Label("sched.drained")
	s.MovI(1, 0)
	s.ST(isa.RFP, fhFlags, 1)
	s.BR("sched.idle")
	return sched, pop
}
